// Reproduces paper Figure 1: the tensor X ~ N(0, 0.5) with 1% outliers
// uniform in [-6, 6]; (center) the distribution of quantized values per
// format; (right) the overall quantization MSE per format.
//
// A second panel repeats the experiment with LLM-scale outliers (+/-20),
// where INT8's stretched grid loses to every calibrated FP8 format.
#include <cstdio>

#include <cmath>

#include "fp8/cast.h"
#include "metrics/metrics.h"
#include "quant/quantizer.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

#include "bench_report.h"

using namespace fp8q;

namespace {

void run_panel(const char* title, float outlier_mag, double outlier_frac) {
  Rng rng(20240707);
  Tensor x = randn(rng, {200000}, 0.0f, std::sqrt(0.5f));
  inject_outliers(x, rng, outlier_frac, -outlier_mag, outlier_mag);
  const float amax = absmax(x);
  const auto [lo, hi] = minmax(x);
  const auto stats = summarize(x);

  std::printf("%s\n", title);
  std::printf("  tensor: n=%lld absmax=%.3f stddev=%.3f kurtosis=%.2f  "
              "(%.2f%% of mass within 3 sigma)\n",
              static_cast<long long>(x.numel()), amax, stats.stddev, stats.kurtosis,
              100.0 * fraction_within_sigma(x.flat(), 3.0));

  std::printf("  %-6s %14s %14s %22s\n", "format", "MSE", "SQNR (dB)",
              "grid pts in +/-3sigma");
  struct Config {
    const char* name;
    DType dtype;
  };
  for (const Config& c : {Config{"E5M2", DType::kE5M2}, Config{"E4M3", DType::kE4M3},
                          Config{"E3M4", DType::kE3M4}, Config{"INT8", DType::kINT8}}) {
    QuantParams p = c.dtype == DType::kINT8
                        ? make_activation_params(c.dtype, lo, hi)
                        : make_activation_params(c.dtype, amax);
    const Tensor q = apply_quant(x, p);
    // Count distinct representable values inside the 3-sigma band (the
    // Figure 1 center-panel density effect).
    const float band = 3.0f * static_cast<float>(stats.stddev);
    int grid_points = 0;
    if (is_fp8(c.dtype)) {
      for (float v : representable_values(fp8_spec(c.dtype))) {
        const float real = v / p.scale;
        if (std::fabs(real) <= band) ++grid_points;
      }
    } else {
      for (int k = p.int8.qmin; k <= p.int8.qmax; ++k) {
        const float real = int8_decode(static_cast<std::int8_t>(k), p.int8);
        if (std::fabs(real) <= band) ++grid_points;
      }
    }
    std::printf("  %-6s %14.3e %14.2f %22d\n", c.name, mse(x, q),
                sqnr_db(x.flat(), q.flat()), grid_points);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  fp8q::BenchReport bench_report("bench_fig1_quant_error");
  std::printf("Figure 1: quantization error on N(0, 0.5) + outliers\n\n");
  run_panel("(paper protocol) 1% outliers uniform in [-6, 6]:", 6.0f, 0.01);
  run_panel("(LLM-scale outliers) 0.2% outliers uniform in [-20, 20]:", 20.0f, 0.002);
  std::printf("paper shape: E4M3/E3M4 MSE well below INT8, E5M2 worst; FP8 formats\n"
              "concentrate far more grid points inside the 3-sigma band than INT8,\n"
              "whose fixed step is stretched by the outliers.\n");
  return 0;
}
