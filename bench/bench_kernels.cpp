// Hot-path kernel performance snapshot (docs/PERFORMANCE.md). Measures:
//
//   * fake-quant cast throughput, scalar fast-cast loop vs the batched
//     branch-free kernel, per FP8 format, pinned to one thread;
//   * blocked matmul throughput in GFLOP/s;
//   * packed FP8 GEMM (decode-in-register, docs/KERNELS.md) vs the
//     dequantize-then-matmul baseline, per FP8 format, at the dispatched
//     ISA tier (recorded in the row and the top-level "isa" field);
//   * accuracy-tuner wall time with the quantized-weight cache off vs on
//     (embedding-heavy workload, where weight quantization dominates).
//
// Writes BENCH_kernels.json (override with --out=<path>). `--smoke` runs a
// reduced configuration that skips the long tuner sweep; the CI perf gate
// is `fp8q_report check-bench` / `fp8q_report diff` over the written JSON
// with explicit thresholds (tools/ci.sh, docs/PERFORMANCE.md).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/cpu_dispatch.h"
#include "core/parallel.h"
#include "fp8/cast_fast.h"
#include "fp8/packed.h"
#include "nn/matmul.h"
#include "nn/packed_gemm.h"
#include "obs/trace.h"
#include "quant/weight_cache.h"
#include "tensor/rng.h"
#include "tune/tuner.h"
#include "workloads/registry.h"

#include "bench_report.h"

namespace {

using namespace fp8q;

double seconds_since(std::uint64_t t0_ns) {
  return static_cast<double>(obs_now_ns() - t0_ns) / 1e9;
}

struct CastResult {
  const char* format;
  double scalar_elems_per_sec;
  double batched_elems_per_sec;
};

CastResult measure_cast(Fp8Kind kind, std::int64_t n, int iters, int reps) {
  const FastCastSpec& spec = fast_cast_spec(kind);
  Rng rng(17);
  Tensor data = randn(rng, {n});
  Tensor out(data.shape());
  const float scale = spec.max_value / 17.0f;
  const float inv = 1.0f / scale;
  const auto in = data.flat();
  auto dst = out.flat();

  double scalar_best = 0.0;
  double batched_best = 0.0;
  volatile float sink = 0.0f;
  for (int r = 0; r < reps; ++r) {
    std::uint64_t t0 = obs_now_ns();
    for (int it = 0; it < iters; ++it) {
      for (std::size_t i = 0; i < in.size(); ++i) {
        dst[i] = fp8_quantize_fast(in[i] * scale, spec) * inv;
      }
      sink = dst[0];
    }
    const double scalar_rate =
        static_cast<double>(n) * iters / seconds_since(t0);

    t0 = obs_now_ns();
    for (int it = 0; it < iters; ++it) {
      fp8_quantize_batch(in, dst, spec, scale);
      sink = dst[0];
    }
    const double batched_rate =
        static_cast<double>(n) * iters / seconds_since(t0);

    if (scalar_rate > scalar_best) scalar_best = scalar_rate;
    if (batched_rate > batched_best) batched_best = batched_rate;
  }
  (void)sink;
  return {to_string(kind).data(), scalar_best, batched_best};
}

struct MatmulResult {
  std::int64_t m, k, n;
  double gflops;
};

MatmulResult measure_matmul(std::int64_t m, std::int64_t k, std::int64_t n, int iters,
                            int reps) {
  Rng rng(23);
  Tensor a = randn(rng, {m, k});
  Tensor b = randn(rng, {k, n});
  MatMulOp op(false, false);
  const std::vector<Tensor> in = {a, b};
  double best = 0.0;
  volatile float sink = 0.0f;
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t t0 = obs_now_ns();
    for (int it = 0; it < iters; ++it) {
      const Tensor y = op.forward(in);
      sink = y[0];
    }
    const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                         static_cast<double>(n) * iters;
    const double rate = flops / seconds_since(t0) / 1e9;
    if (rate > best) best = rate;
  }
  (void)sink;
  return {m, k, n, best};
}

struct PackedGemmResult {
  std::int64_t m, k, n;
  const char* format;
  double packed_gflops;
  double dequant_gflops;
  double speedup;
  std::int64_t packed_bytes;
  std::int64_t fp32_bytes;
};

/// Packed FP8 GEMM (decode codes in-register, nn/packed_gemm.h) against
/// the baseline a deployment would otherwise run: dequantize the stored
/// codes to an FP32 weight, then the blocked FP32 matmul. Both paths
/// produce bit-identical outputs (the packed kernels' contract), so the
/// comparison is pure throughput. The weight is [n, k] row-major like
/// LinearOp's, and the baseline's unpack() is inside the timed loop --
/// that materialization cost is exactly what the packed path deletes.
PackedGemmResult measure_packed_gemm(Fp8Kind kind, std::int64_t m, std::int64_t k,
                                     std::int64_t n, int iters, int reps) {
  Rng rng(29);
  Tensor a = randn(rng, {m, k});
  Tensor b = randn(rng, {n, k});
  const PackedFp8Tensor packed = PackedFp8Tensor::pack_per_channel(b, kind);
  const PackedWeightMatrix w = pack_gemm_weight(packed);
  MatMulOp op(false, /*transpose_b=*/true);
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n) * iters;
  double packed_best = 0.0;
  double dequant_best = 0.0;
  volatile float sink = 0.0f;
  for (int r = 0; r < reps; ++r) {
    std::uint64_t t0 = obs_now_ns();
    for (int it = 0; it < iters; ++it) {
      const Tensor y = packed_matmul(a, w);
      sink = y[0];
    }
    const double packed_rate = flops / seconds_since(t0) / 1e9;

    t0 = obs_now_ns();
    for (int it = 0; it < iters; ++it) {
      const Tensor wt = packed.unpack();
      const std::vector<Tensor> in = {a, wt};
      const Tensor y = op.forward(in);
      sink = y[0];
    }
    const double dequant_rate = flops / seconds_since(t0) / 1e9;

    if (packed_rate > packed_best) packed_best = packed_rate;
    if (dequant_rate > dequant_best) dequant_best = dequant_rate;
  }
  (void)sink;
  return {m,
          k,
          n,
          to_string(kind).data(),
          packed_best,
          dequant_best,
          dequant_best > 0.0 ? packed_best / dequant_best : 0.0,
          static_cast<std::int64_t>(w.storage_bytes()),
          static_cast<std::int64_t>(b.numel() * sizeof(float))};
}

struct TunerResult {
  std::string workload;
  int trials_off = 0;
  int trials_on = 0;
  double wall_ms_off = 0.0;
  double wall_ms_on = 0.0;
  double reduction_pct = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Times `rounds` autotune sweeps on one workload with the weight cache
/// disabled, then enabled. Embedding-heavy workloads spend most of each
/// trial quantizing the same large tables, which is exactly what the cache
/// elides; forward-dominated workloads see little change (the caveat is
/// documented in docs/PERFORMANCE.md). Multiple rounds amortize timer
/// noise and match the suite-sweep usage where one process tunes many
/// configurations against the same models.
TunerResult measure_tuner(const Workload& w, const EvalProtocol& protocol, int rounds) {
  TunerResult r;
  r.workload = w.name;
  TuneOptions options;
  options.accuracy_criterion = -1.0;  // never met: every arm runs

  set_weight_cache_capacity_bytes(0);
  weight_cache_clear();
  std::uint64_t t0 = obs_now_ns();
  for (int round = 0; round < rounds; ++round) {
    const TuneResult off = autotune(w, DType::kE4M3, protocol, options);
    r.trials_off = off.trials();
  }
  r.wall_ms_off = seconds_since(t0) * 1e3;

  set_weight_cache_capacity_bytes(256ll << 20);
  weight_cache_clear();
  const auto stats_before = weight_cache_stats();
  t0 = obs_now_ns();
  for (int round = 0; round < rounds; ++round) {
    const TuneResult on = autotune(w, DType::kE4M3, protocol, options);
    r.trials_on = on.trials();
  }
  r.wall_ms_on = seconds_since(t0) * 1e3;
  const auto stats_after = weight_cache_stats();
  r.cache_hits = stats_after.hits - stats_before.hits;
  r.cache_misses = stats_after.misses - stats_before.misses;

  set_weight_cache_capacity_bytes(-1);
  weight_cache_clear();
  r.reduction_pct =
      r.wall_ms_off > 0.0 ? (r.wall_ms_off - r.wall_ms_on) / r.wall_ms_off * 100.0 : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  fp8q::BenchReport bench_report("bench_kernels");
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  // One thread: the numbers measure the kernels, not the parallel runtime
  // (bench_parallel_scaling covers scaling).
  set_num_threads(1);

  const std::int64_t cast_n = smoke ? 65536 : 1 << 20;
  const int cast_iters = smoke ? 8 : 32;
  const int reps = smoke ? 2 : 3;

  std::vector<CastResult> casts;
  {
    ScopedStage stage("kernels/cast");
    for (Fp8Kind kind : {Fp8Kind::E5M2, Fp8Kind::E4M3, Fp8Kind::E3M4}) {
      casts.push_back(measure_cast(kind, cast_n, cast_iters, reps));
    }
  }

  std::vector<MatmulResult> matmuls;
  {
    ScopedStage stage("kernels/matmul");
    matmuls.push_back(measure_matmul(64, 256, 256, smoke ? 4 : 16, reps));
    if (!smoke) matmuls.push_back(measure_matmul(128, 512, 512, 8, reps));
  }

  std::vector<PackedGemmResult> packed_gemms;
  {
    ScopedStage stage("kernels/packed-gemm");
    for (Fp8Kind kind : {Fp8Kind::E5M2, Fp8Kind::E4M3, Fp8Kind::E3M4}) {
      packed_gemms.push_back(measure_packed_gemm(kind, 64, 256, 256, smoke ? 4 : 16, reps));
    }
    if (!smoke) {
      packed_gemms.push_back(measure_packed_gemm(Fp8Kind::E4M3, 128, 512, 512, 8, reps));
    }
  }

  std::vector<TunerResult> tuners;
  if (!smoke) {
    ScopedStage stage("kernels/tuner-cache");
    const auto suite = build_suite();
    EvalProtocol protocol;  // trimmed: weight quantization dominates
    protocol.calib_batches = 1;
    protocol.calib_batch_size = 4;
    protocol.eval_batches = 1;
    protocol.eval_batch_size = 8;
    protocol.bn_calibration_batches = 0;
    // The cache's target population: weight-quantization-dominated models
    // (large embedding tables, cheap forwards). Compute-dominated models
    // spend their trials in matmuls, not weight quantization, so they are
    // measured by the cast/matmul sections above instead.
    for (const char* name : {"dlrm-ish"}) {
      tuners.push_back(measure_tuner(find_workload(suite, name), protocol, 10));
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_kernels: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"version\": 1,\n  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"isa\": \"%s\",\n", isa_label());
  std::fprintf(f, "  \"cast\": [\n");
  for (std::size_t i = 0; i < casts.size(); ++i) {
    const auto& c = casts[i];
    std::fprintf(f,
                 "    {\"format\": \"%s\", \"scalar_elems_per_sec\": %.3e, "
                 "\"batched_elems_per_sec\": %.3e, \"speedup\": %.2f}%s\n",
                 c.format, c.scalar_elems_per_sec, c.batched_elems_per_sec,
                 c.batched_elems_per_sec / c.scalar_elems_per_sec,
                 i + 1 < casts.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"matmul\": [\n");
  for (std::size_t i = 0; i < matmuls.size(); ++i) {
    const auto& m = matmuls[i];
    std::fprintf(f,
                 "    {\"m\": %lld, \"k\": %lld, \"n\": %lld, \"gflops\": %.2f}%s\n",
                 static_cast<long long>(m.m), static_cast<long long>(m.k),
                 static_cast<long long>(m.n), m.gflops,
                 i + 1 < matmuls.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"packed_gemm\": [\n");
  for (std::size_t i = 0; i < packed_gemms.size(); ++i) {
    const auto& p = packed_gemms[i];
    std::fprintf(f,
                 "    {\"m\": %lld, \"k\": %lld, \"n\": %lld, \"format\": \"%s\", "
                 "\"packed_gflops\": %.2f, \"dequant_gflops\": %.2f, "
                 "\"speedup\": %.2f, \"packed_bytes\": %lld, \"fp32_bytes\": %lld}%s\n",
                 static_cast<long long>(p.m), static_cast<long long>(p.k),
                 static_cast<long long>(p.n), p.format, p.packed_gflops, p.dequant_gflops,
                 p.speedup, static_cast<long long>(p.packed_bytes),
                 static_cast<long long>(p.fp32_bytes),
                 i + 1 < packed_gemms.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"tuner\": [\n");
  for (std::size_t i = 0; i < tuners.size(); ++i) {
    const auto& t = tuners[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"trials\": %d, "
                 "\"wall_ms_cache_off\": %.1f, \"wall_ms_cache_on\": %.1f, "
                 "\"reduction_pct\": %.1f, \"cache_hits\": %llu, "
                 "\"cache_misses\": %llu}%s\n",
                 t.workload.c_str(), t.trials_on, t.wall_ms_off, t.wall_ms_on,
                 t.reduction_pct, static_cast<unsigned long long>(t.cache_hits),
                 static_cast<unsigned long long>(t.cache_misses),
                 i + 1 < tuners.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("bench_kernels (%s) -> %s\n", smoke ? "smoke" : "full", out_path.c_str());
  for (const auto& c : casts) {
    std::printf("  cast %-5s scalar %.3e elem/s  batched %.3e elem/s  (%.2fx)\n",
                c.format, c.scalar_elems_per_sec, c.batched_elems_per_sec,
                c.batched_elems_per_sec / c.scalar_elems_per_sec);
  }
  for (const auto& m : matmuls) {
    std::printf("  matmul %lldx%lldx%lld: %.2f GFLOP/s\n", static_cast<long long>(m.m),
                static_cast<long long>(m.k), static_cast<long long>(m.n), m.gflops);
  }
  for (const auto& p : packed_gemms) {
    std::printf("  packed_gemm %lldx%lldx%lld %-5s [%s]: packed %.2f GFLOP/s  dequant %.2f "
                "GFLOP/s  (%.2fx)\n",
                static_cast<long long>(p.m), static_cast<long long>(p.k),
                static_cast<long long>(p.n), p.format, isa_label(), p.packed_gflops,
                p.dequant_gflops, p.speedup);
  }
  for (const auto& t : tuners) {
    std::printf("  tuner %-16s off %.0f ms  on %.0f ms  (-%.1f%%, %llu hits)\n",
                t.workload.c_str(), t.wall_ms_off, t.wall_ms_on, t.reduction_pct,
                static_cast<unsigned long long>(t.cache_hits));
  }

  // The perf gate itself lives in `fp8q_report check-bench` (tools/ci.sh),
  // which reads the JSON written above and applies explicit thresholds;
  // this binary only measures.
  return 0;
}
