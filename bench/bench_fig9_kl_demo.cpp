// Reproduces paper Appendix A.1 / Figure 9: the KL-clipping pathology on
// FP8. A tensor with outliers around 6 is clipped at 2.0 (the KL pick for
// INT8); for FP8 the clipped mapping has *higher* MSE than keeping the
// full range, because FP8 already represents small values densely and the
// truncated outliers dominate the error.
#include <cstdio>

#include <cmath>

#include "quant/calibrate.h"
#include "quant/observer.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

#include "bench_report.h"

using namespace fp8q;

int main() {
  fp8q::BenchReport bench_report("bench_fig9_kl_demo");
  Rng rng(99);
  Tensor t = randn(rng, {100000}, 0.0f, std::sqrt(0.5f));
  inject_outliers(t, rng, 0.01, -6.0f, 6.0f);
  Observer obs(100000);
  obs.observe(t);
  const float amax = obs.absmax();

  std::printf("Figure 9: KL clipping demo on FP8 (tensor with outliers near 6)\n\n");
  std::printf("%-8s | %12s %12s | %12s %12s\n", "clip", "E4M3 MSE", "E4M3 KL",
              "INT8 MSE", "INT8 KL");
  for (float clip : {amax, 4.0f, 3.0f, 2.0f, 1.5f, 1.0f}) {
    std::printf("%-8.3f | %12.3e %12.4f | %12.3e %12.4f\n", clip,
                clip_quantization_mse(obs.sample(), clip, DType::kE4M3),
                clip_kl_divergence(obs.sample(), clip, DType::kE4M3, 512),
                clip_quantization_mse(obs.sample(), clip, DType::kINT8),
                clip_kl_divergence(obs.sample(), clip, DType::kINT8, 512));
  }

  std::printf("\nCalibrated clip per method (target E4M3):\n");
  for (CalibMethod m : {CalibMethod::kAbsMax, CalibMethod::kPercentile,
                        CalibMethod::kKlDivergence, CalibMethod::kMseSweep}) {
    const float clip = calibrate_clip(obs, m, DType::kE4M3, 0.999);
    std::printf("  %-12s clip=%.3f  MSE=%.3e\n", std::string(to_string(m)).c_str(), clip,
                clip_quantization_mse(obs.sample(), clip, DType::kE4M3));
  }
  std::printf("\npaper shape: clipping at 2.0 has larger E4M3 MSE than the full range;\n"
              "max scaling is sufficient for FP8 (section 3 / Appendix A.1).\n");
  return 0;
}
