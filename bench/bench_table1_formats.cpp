// Reproduces paper Table 1: the FP8 binary formats, their exponent bias,
// max/min representable values, subnormal support and special-value
// encoding -- verified against exhaustive enumeration of all 256 codes.
#include <cstdio>

#include "fp8/cast.h"
#include "fp8/format.h"

#include "bench_report.h"

int main() {
  fp8q::BenchReport bench_report("bench_table1_formats");
  using namespace fp8q;
  std::printf("Table 1: FP8 binary formats\n");
  std::printf("%-22s %12s %12s %12s\n", "", "E5M2", "E4M3", "E3M4");

  auto row = [](const char* label, auto fn) {
    std::printf("%-22s", label);
    for (Fp8Kind kind : kAllFp8Kinds) std::printf(" %12s", fn(format_spec(kind)).c_str());
    std::printf("\n");
  };

  row("Exponent bias (b)", [](const FormatSpec& f) { return std::to_string(f.bias); });
  row("Max value", [](const FormatSpec& f) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", f.max_value());
    return std::string(buf);
  });
  row("Min value", [](const FormatSpec& f) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2g", f.min_subnormal());
    return std::string(buf);
  });
  row("Subnormals", [](const FormatSpec&) { return std::string("Yes"); });
  row("NaNs", [](const FormatSpec& f) {
    return std::string(f.family == EncodingFamily::kIeee ? "all" : "single");
  });
  row("Infinity", [](const FormatSpec& f) {
    return std::string(f.has_infinity() ? "Yes" : "No");
  });

  std::printf("\nExhaustive code enumeration:\n");
  for (Fp8Kind kind : kAllFp8Kinds) {
    const auto& spec = format_spec(kind);
    int nan = 0;
    int inf = 0;
    for (int c = 0; c < 256; ++c) {
      const auto code = static_cast<std::uint8_t>(c);
      nan += fp8_is_nan(code, spec) ? 1 : 0;
      inf += fp8_is_inf(code, spec) ? 1 : 0;
    }
    const auto values = representable_values(spec);
    std::printf("  %s: %3d finite codes, %zu distinct finite values, %d NaN codes, "
                "%d Inf codes, grid density at 1.0 = %g per unit\n",
                std::string(to_string(kind)).c_str(), spec.finite_code_count(),
                values.size(), nan, inf, spec.grid_density_at(1.0));
  }
  std::printf("\npaper: E5M2 max 57344 / min 1.5e-5, E4M3 max 448 / min 1.9e-3, "
              "E3M4 max 30 / min 1.5e-2\n");
  return 0;
}
