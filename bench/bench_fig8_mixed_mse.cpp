// Reproduces paper Figure 8: output MSE of a BERT-style Linear operator
// under every (activation format x weight format) combination, showing the
// mixed-format sweet spot E4M3 activations + E3M4 weights (section 3.2).
#include <cstdio>

#include "metrics/metrics.h"
#include "nn/linear.h"
#include "quant/quantizer.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

#include "bench_report.h"

using namespace fp8q;

int main() {
  fp8q::BenchReport bench_report("bench_fig8_mixed_mse");
  // BERT-base-like intermediate Linear: activations carry channel outliers
  // (range-bound), weights are normal (precision-bound) -- Figure 3.
  Rng rng(42);
  const std::int64_t rows = 2048;
  const std::int64_t in = 64;
  const std::int64_t out = 64;
  Tensor x = randn(rng, {rows, in});
  // Two extreme outliers (LLM-style, ~6000x the bulk). The range demand is
  // past E3M4's last subnormal (30 / 2^-10 ~ 4000:1), so E3M4's max-scaled
  // grid annihilates the energy-dominant bulk; E4M3's wider exponent keeps
  // the bulk in its normal range while still carrying the outliers. The
  // normal-distributed weights remain precision-bound and favour E3M4.
  for (int k = 0; k < 2; ++k) {
    const std::int64_t idx = rng.randint(0, x.numel() - 1);
    x[idx] = (k % 2 == 0 ? 1.0f : -1.0f) * rng.uniform(5800.0f, 6200.0f);
  }
  Tensor w = randn(rng, {out, in}, 0.0f, 0.15f);

  LinearOp ref_op(w, Tensor{});
  std::vector<Tensor> ref_in;
  ref_in.push_back(x);
  const Tensor ref = ref_op.forward(ref_in);

  const DType formats[] = {DType::kE5M2, DType::kE4M3, DType::kE3M4};
  std::printf("Figure 8: Linear output MSE, activation format x weight format\n\n");
  std::printf("%-12s", "act \\ wgt");
  for (DType wf : formats) std::printf(" %12s", std::string(to_string(wf)).c_str());
  std::printf("\n");

  double best = 1e300;
  DType best_a = DType::kFP32;
  DType best_w = DType::kFP32;
  for (DType af : formats) {
    std::printf("%-12s", std::string(to_string(af)).c_str());
    for (DType wf : formats) {
      Tensor xq = apply_quant(x, make_activation_params(af, absmax(x)));
      Tensor wq = apply_quant(w, make_weight_params(w, wf));
      LinearOp op(wq, Tensor{});
      std::vector<Tensor> in_q;
      in_q.push_back(xq);
      const double m = mse(ref.flat(), op.forward(in_q).flat());
      std::printf(" %12.4e", m);
      if (m < best) {
        best = m;
        best_a = af;
        best_w = wf;
      }
    }
    std::printf("\n");
  }
  std::printf("\nbest combination: %s activations + %s weights (MSE %.4e)\n",
              std::string(to_string(best_a)).c_str(),
              std::string(to_string(best_w)).c_str(), best);
  std::printf("paper shape: E4M3 activations + E3M4 weights minimizes the output MSE\n"
              "on outlier-activation / normal-weight tensors (section 3.2, Figure 8).\n");
  return 0;
}
