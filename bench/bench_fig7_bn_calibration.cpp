// Reproduces paper Figure 7: BatchNorm calibration effectiveness vs
// calibration sample count, comparing "training transform" (augmented) and
// "inference transform" (clean) calibration data. The paper recommends 3K
// samples with the training transform.
#include <cstdio>

#include "metrics/metrics.h"
#include "models/zoo.h"
#include "quant/quantized_graph.h"
#include "tensor/rng.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

#include "bench_report.h"

using namespace fp8q;

namespace {

/// Augmented batch: random per-sample gain/shift plus pixel jitter --
/// the stand-in for the paper's training-transform augmentation (crops,
/// flips) which diversifies feature statistics.
Tensor augment(Rng& rng, const Tensor& clean) {
  Tensor out = clean;
  const std::int64_t n = out.size(0);
  const std::int64_t per = out.numel() / n;
  for (std::int64_t b = 0; b < n; ++b) {
    const float gain = rng.uniform(0.7f, 1.3f);
    const float shift = rng.normal(0.0f, 0.2f);
    float* d = out.data() + b * per;
    for (std::int64_t i = 0; i < per; ++i) {
      d[i] = d[i] * gain + shift + rng.normal(0.0f, 0.1f);
    }
  }
  return out;
}

}  // namespace

int main() {
  fp8q::BenchReport bench_report("bench_fig7_bn_calibration");
  const auto suite = build_suite();
  const Workload& w = find_workload(suite, "resnet50-ish");
  EvalProtocol protocol;
  protocol.eval_batches = 6;


  std::printf("Figure 7: BatchNorm calibration, sample size x transform (workload %s)\n\n",
              w.name.c_str());
  std::printf("%-10s | %14s %14s | %14s\n", "samples", "train-xform", "infer-xform",
              "no BN calib");

  // FP32 baseline once.
  const double fp32 = fp32_baseline(w, protocol);

  for (int samples : {128, 512, 1024, 3072}) {
    const int batch = 64;
    const int batches = samples / batch;
    double acc[3] = {0, 0, 0};
    int mode = 0;
    for (bool train_xform : {true, false}) {
      EvalProtocol p = protocol;
      p.calib_batches = batches;
      p.calib_batch_size = batch;
      p.bn_calibration_batches = batches;
      Workload wv = w;
      if (train_xform) {
        // Only the calibration set is augmented; evaluation stays clean.
        auto base = w.make_batch;
        wv.make_calib_batch = [base](Rng& rng, int bs) {
          auto in = base(rng, bs);
          in[0] = augment(rng, in[0]);
          return in;
        };
      }
      const auto rec = evaluate_workload(wv, standard_fp8_scheme(DType::kE3M4), p);
      acc[mode++] = rec.quant_accuracy;
    }
    {
      EvalProtocol p = protocol;
      p.calib_batches = batches;
      p.calib_batch_size = batch;
      p.bn_calibration_batches = 0;  // BN calibration disabled
      const auto rec = evaluate_workload(w, standard_fp8_scheme(DType::kE3M4), p);
      acc[2] = rec.quant_accuracy;
    }
    std::printf("%-10d | %14.4f %14.4f | %14.4f\n", samples, acc[0], acc[1], acc[2]);
    std::fflush(stdout);
  }
  std::printf("\nFP32 baseline accuracy: %.4f\n", fp32);
  std::printf("paper shape: accuracy recovers with more calibration samples; the\n"
              "training transform reaches peak accuracy at smaller sample sizes and\n"
              "~3K samples suffices (section 4.3.1).\n");
  return 0;
}
