// Reproduces paper Table 3: per-model accuracy for the ten representative
// workloads across FP32 / E5M2 / E4M3 / E3M4 / INT8. Bold in the paper
// marks <= 1% relative loss; here passes are marked with '*'.
//
// Observability (docs/OBSERVABILITY.md): FP8Q_REPORT=<path> writes a
// structured run report with one stage per model row plus all accuracy
// records; FP8Q_TRACE=1 additionally captures spans.
#include <cstdio>

#include <map>
#include <string>

#include "core/parallel.h"
#include "obs/report.h"
#include "workloads/registry.h"

#include "bench_report.h"

int main() {
  using namespace fp8q;
  const auto suite = build_suite();
  const EvalProtocol protocol;

  BenchReport bench_report("bench_table3_model_accuracy");

  struct PaperRow {
    double fp32, e5m2, e4m3, e3m4, int8;
  };
  const std::map<std::string, PaperRow> paper = {
      {"resnet50-ish", {0.7615, 0.7544, 0.7592, 0.7604, 0.7595}},
      {"densenet121-ish", {0.7444, 0.7435, 0.7451, 0.7459, 0.7253}},
      {"wav2vec2-ish", {0.9660, 0.9632, 0.9661, 0.9658, 0.9552}},
      {"dlrm-ish", {0.8027, 0.8016, 0.8025, 0.8025, 0.8024}},
      {"bert-base-stsb-ish", {0.8975, 0.8934, 0.8979, 0.8966, 0.8809}},
      {"bert-large-cola-ish", {0.6257, 0.6238, 0.6257, 0.6282, 0.6389}},
      {"distilbert-mrpc-ish", {0.8916, 0.8897, 0.8943, 0.8950, 0.9042}},
      {"bloom7b-ish", {0.5764, 0.5424, 0.5748, 0.5824, 0.5977}},
      {"bloom176b-ish", {0.6777, 0.6753, 0.6757, 0.6938, 0.6899}},
      {"llama65b-ish", {0.7908, 0.7840, 0.7914, 0.7778, 0.7155}},
  };

  std::printf("Table 3: model accuracy (measured; '*' = <=1%% relative loss)\n\n");
  std::printf("%-22s %8s %9s %9s %9s %9s   | paper fp32/e4m3/int8\n", "model", "FP32",
              "E5M2", "E4M3", "E3M4", "INT8");
  for (const auto& name : table3_workload_names()) {
    const Workload& w = find_workload(suite, name);
    std::printf("%-22s", name.c_str());

    AccuracyRecord recs[4];
    {
      ScopedStage stage("model/" + name);
      recs[0] = evaluate_workload(w, standard_fp8_scheme(DType::kE5M2), protocol);
      recs[1] = evaluate_workload(w, standard_fp8_scheme(DType::kE4M3), protocol);
      recs[2] = evaluate_workload(w, standard_fp8_scheme(DType::kE3M4), protocol);
      recs[3] = evaluate_workload(w, int8_scheme(w.domain != "CV"), protocol);
    }
    for (const auto& r : recs) bench_report.report.records.push_back(r);

    std::printf(" %8.4f", recs[0].fp32_accuracy);
    for (const auto& r : recs) {
      std::printf(" %8.4f%s", r.quant_accuracy, r.passes() ? "*" : " ");
    }
    const auto it = paper.find(name);
    if (it != paper.end()) {
      std::printf("  | %.4f/%.4f/%.4f", it->second.fp32, it->second.e4m3,
                  it->second.int8);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\npaper shape: FP8 (especially E4M3/E3M4) within 1%% nearly everywhere;\n"
              "INT8 fails DenseNet/Wav2Vec2/STS-B/LLaMA-class rows.\n");

  return 0;
}
