// Reproduces the paper's section 4.3.1 study: quantizing the first and last
// operators of convolutional networks. The paper reports pass-rate drops of
// ~25% (E5M2) and ~15% (E4M3) while E3M4 keeps ~70% with first/last
// quantized, and recommends exposing the exception as a tuning option.
#include <cstdio>

#include "workloads/registry.h"

#include "bench_report.h"

int main() {
  fp8q::BenchReport bench_report("bench_table_firstlast");
  using namespace fp8q;
  const auto suite = build_suite();
  EvalProtocol protocol;
  protocol.eval_batches = 6;


  // All convolutional CV workloads.
  std::vector<Workload> cnns;
  for (const auto& w : suite) {
    if (w.is_cnn && w.metric == MetricKind::kTop1) cnns.push_back(w);
  }
  if (cnns.size() > 6) cnns.resize(6);

  std::printf("Section 4.3.1: first/last operator quantization on %zu conv nets\n\n",
              cnns.size());
  std::printf("%-8s | %16s %16s %10s | %s\n", "format", "skip first/last",
              "quantize all", "drop", "paper drop");
  const char* paper_drop[] = {"-25%", "-15%", "keeps ~70%"};
  int idx = 0;
  for (DType fmt : {DType::kE5M2, DType::kE4M3, DType::kE3M4}) {
    std::vector<AccuracyRecord> skip_recs;
    std::vector<AccuracyRecord> all_recs;
    for (const auto& w : cnns) {
      SchemeConfig scheme = standard_fp8_scheme(fmt);
      scheme.skip_first_last = true;
      skip_recs.push_back(evaluate_workload(w, scheme, protocol));
      scheme.skip_first_last = false;
      all_recs.push_back(evaluate_workload(w, scheme, protocol));
    }
    const double skip_rate = pass_rate(skip_recs);
    const double all_rate = pass_rate(all_recs);
    std::printf("%-8s | %15.2f%% %15.2f%% %9.2f%% | %s\n",
                std::string(to_string(fmt)).c_str(), skip_rate, all_rate,
                all_rate - skip_rate, paper_drop[idx++]);
    std::fflush(stdout);
  }
  std::printf("\npaper shape: quantizing first/last hurts E5M2 most, E4M3 moderately,\n"
              "E3M4 least (its denser grid handles the sensitive layers).\n");
  return 0;
}
