// Reproduces paper Figure 6 (and Appendix A.2): Stable Diffusion image
// quality per format, scored by FID (lower is better).
//
// Substitution (DESIGN.md): the denoiser is a small U-Net; "images" are its
// outputs on noise+condition inputs; FID is the Frechet distance between
// the feature statistics of the FP32 outputs and each format's outputs --
// the same statistic FID computes, on the features our substitute model
// produces.
#include <cmath>
#include <cstdio>

#include "metrics/metrics.h"
#include "models/zoo.h"
#include "quant/quantized_graph.h"
#include "tensor/rng.h"
#include "workloads/registry.h"

#include "bench_report.h"

using namespace fp8q;

namespace {

/// 4x4-average-pooled features of a [n, c, h, w] batch -> [n, c*(h/4)*(w/4)].
Tensor pooled_features(const Tensor& images) {
  const std::int64_t n = images.size(0);
  const std::int64_t c = images.size(1);
  const std::int64_t h = images.size(2);
  const std::int64_t w = images.size(3);
  const std::int64_t ph = h / 4;
  const std::int64_t pw = w / 4;
  Tensor f({n, c * ph * pw});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = images.data() + (b * c + ch) * h * w;
      for (std::int64_t py = 0; py < ph; ++py) {
        for (std::int64_t px = 0; px < pw; ++px) {
          double s = 0.0;
          for (int dy = 0; dy < 4; ++dy) {
            for (int dx = 0; dx < 4; ++dx) s += plane[(py * 4 + dy) * w + px * 4 + dx];
          }
          f[b * (c * ph * pw) + (ch * ph + py) * pw + px] = static_cast<float>(s / 16.0);
        }
      }
    }
  }
  return f;
}

}  // namespace

int main() {
  fp8q::BenchReport bench_report("bench_fig6_diffusion_fid");
  UnetSpec spec;
  spec.in_channels = 2;
  spec.hw = 16;
  spec.base_channels = 8;
  spec.seed = 31;
  Graph unet = make_unet(spec);

  // "Prompted" inputs: latent noise plus a per-sample condition offset and
  // sparse high-magnitude entries (the attention / time-embedding outliers
  // real diffusion U-Nets carry in their activations).
  Rng rng(555);
  auto make_latents = [&](int n) {
    Tensor x = randn(rng, {n, 2, 16, 16});
    for (std::int64_t b = 0; b < n; ++b) {
      const float cond = rng.uniform(-1.0f, 1.0f);
      float* d = x.data() + b * 2 * 16 * 16;
      for (int i = 0; i < 16 * 16; ++i) d[i] += cond;  // condition channel 0
    }
    for (float& v : x.flat()) {
      if (rng.uniform01() < 0.01) v = (rng.uniform01() < 0.5 ? -1500.0f : 1500.0f);
    }
    return x;
  };

  std::vector<Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(make_latents(16));
  const int samples = 256;
  Tensor latents = make_latents(samples);

  const Tensor fp32_out = unet.forward(latents);
  Tensor fp32_feats = pooled_features(fp32_out);

  // Standardize features by the FP32 population statistics (Inception FID
  // features are similarly whitened): every feature dimension then counts
  // equally, instead of the few outlier-dominated ones.
  const std::int64_t feat_n = fp32_feats.size(0);
  const std::int64_t feat_d = fp32_feats.size(1);
  std::vector<float> mu(static_cast<size_t>(feat_d), 0.0f);
  std::vector<float> sd(static_cast<size_t>(feat_d), 0.0f);
  for (std::int64_t i = 0; i < feat_n; ++i) {
    for (std::int64_t j = 0; j < feat_d; ++j) mu[static_cast<size_t>(j)] += fp32_feats[i * feat_d + j];
  }
  for (auto& m : mu) m /= static_cast<float>(feat_n);
  for (std::int64_t i = 0; i < feat_n; ++i) {
    for (std::int64_t j = 0; j < feat_d; ++j) {
      const float d = fp32_feats[i * feat_d + j] - mu[static_cast<size_t>(j)];
      sd[static_cast<size_t>(j)] += d * d;
    }
  }
  for (auto& s : sd) s = std::sqrt(std::max(1e-12f, s / static_cast<float>(feat_n)));
  auto standardize = [&](Tensor f) {
    for (std::int64_t i = 0; i < f.size(0); ++i) {
      for (std::int64_t j = 0; j < feat_d; ++j) {
        auto& v = f[i * feat_d + j];
        v = (v - mu[static_cast<size_t>(j)]) / sd[static_cast<size_t>(j)];
      }
    }
    return f;
  };
  fp32_feats = standardize(std::move(fp32_feats));

  std::printf("Figure 6: diffusion-denoiser output quality per format\n");
  std::printf("(FID proxy: Frechet distance between FP32-output and quantized-output\n"
              " feature statistics over %d samples; lower is better)\n\n", samples);
  std::printf("%-14s | %12s %12s | paper FID (SD, 5k images)\n", "config", "FID-proxy",
              "out-MSE");

  struct Row {
    const char* name;
    SchemeConfig scheme;
    const char* paper;
  };
  const Row rows[] = {
      {"E5M2/direct", standard_fp8_scheme(DType::kE5M2), "~31 (worse than E4M3/E3M4)"},
      {"E4M3/static", standard_fp8_scheme(DType::kE4M3), "~30 (close to FP32)"},
      {"E3M4/static", standard_fp8_scheme(DType::kE3M4), "~30 (close to FP32)"},
      {"INT8/static", int8_scheme(false), "worst (visible artifacts)"},
  };
  for (const Row& r : rows) {
    ModelQuantConfig cfg;
    cfg.scheme = r.scheme;
    cfg.is_cnn = true;
    QuantizedGraph qg(&unet, cfg);
    qg.prepare(std::span<const Tensor>(calib));
    const Tensor out = qg.forward(latents);
    std::printf("%-14s | %12.5f %12.3e | %s\n", r.name,
                frechet_distance_diag(fp32_feats, standardize(pooled_features(out))),
                mse(fp32_out.flat(), out.flat()), r.paper);
    std::fflush(stdout);
  }
  std::printf("\npaper shape: E4M3/E3M4 stay near the FP32 distribution while E5M2 is\n"
              "clearly worse (reproduced). The paper additionally reports INT8 as the\n"
              "worst; our untrained denoiser does not reproduce that row because\n"
              "INT8's bounded absolute error is noise-like here, whereas on the real\n"
              "Stable Diffusion it produces systematic artifacts (see EXPERIMENTS.md).\n");
  return 0;
}
