// Extension study: the full EeMm design space (Kuzmin et al. 2022 /
// Noune et al. 2022 from the paper's related work) plus exponent-bias
// shifting (Sun et al. 2019). Quantization MSE of every legal 8-bit split
// on the three distribution regimes of the study.
#include <cstdio>

#include <cmath>

#include "fp8/cast.h"
#include "metrics/metrics.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

#include "bench_report.h"

using namespace fp8q;

namespace {

double max_scaled_mse(const Tensor& x, const FormatSpec& spec) {
  const float amax = absmax(x);
  const float scale = amax > 0.0f ? spec.max_value() / amax : 1.0f;
  Tensor q = x;
  fp8_quantize_scaled(q.flat(), q.flat(), spec, scale);
  return mse(x, q);
}

}  // namespace

int main() {
  fp8q::BenchReport bench_report("bench_formats_sweep");
  Rng rng(4242);
  Tensor gauss = randn(rng, {100000});
  Tensor outlier = randn(rng, {100000});
  inject_outliers(outlier, rng, 0.001, -80.0f, 80.0f);
  Tensor heavy = rand_student_t(rng, {100000}, 3.0f);

  std::printf("EeMm design-space sweep (max-scaled quantization MSE; lower = better)\n\n");
  std::printf("%-8s %14s %14s %14s\n", "format", "Gaussian", "outlier(80x)", "student-t(3)");
  for (int e = 1; e <= 6; ++e) {
    const int m = 7 - e;
    const FormatSpec spec = make_format(e, m);
    std::printf("E%dM%d     %14.4e %14.4e %14.4e\n", e, m, max_scaled_mse(gauss, spec),
                max_scaled_mse(outlier, spec), max_scaled_mse(heavy, spec));
  }

  std::printf("\nExponent-bias shifting for E4M3 (Sun et al. 2019): MSE of the\n"
              "outlier tensor under bias overrides (the shifted range trades top-end\n"
              "headroom for more subnormal-free small-value coverage):\n");
  for (int bias : {4, 5, 6, 7, 8, 9, 10}) {
    const FormatSpec spec = make_format(4, 3, bias);
    std::printf("  bias %2d (max %10.2f): MSE %12.4e\n", bias, spec.max_value(),
                max_scaled_mse(outlier, spec));
  }

  std::printf("\npaper context: more mantissa wins on well-behaved tensors, more\n"
              "exponent wins under outliers -- the E4M3/E3M4 trade-off the paper\n"
              "resolves per domain (NLP vs CV). E2M5/E1M6 are too narrow-ranged and\n"
              "E5M2/E6M1 too imprecise to win anywhere, matching Kuzmin et al.\n");
  return 0;
}
