// Reproduces paper Figure 4: box-plot statistics of the relative accuracy
// loss per data format, split by domain. INT8 shows far higher variability
// on CV (EfficientNet/MobileNetV3/ViT-class failures) than E4M3/E3M4.
//
// Usage: bench_fig4_variability [--full]   (default: every 2nd workload)
#include <cstdio>
#include <cstring>

#include "workloads/registry.h"

#include "bench_report.h"

int main(int argc, char** argv) {
  fp8q::BenchReport bench_report("bench_fig4_variability");
  using namespace fp8q;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  auto suite = build_suite();
  if (!full) {
    std::vector<Workload> subset;
    for (size_t i = 0; i < suite.size(); i += 5) subset.push_back(suite[i]);
    suite = std::move(subset);
  }

  EvalProtocol protocol;
  protocol.eval_batches = 6;  // distribution shape needs less resolution

  std::vector<AccuracyRecord> records;
  int done = 0;
  for (const auto& w : suite) {
    for (DType fmt : {DType::kE4M3, DType::kE3M4, DType::kE5M2}) {
      records.push_back(evaluate_workload(w, standard_fp8_scheme(fmt), protocol));
    }
    auto rec = evaluate_workload(w, int8_scheme(w.domain != "CV"), protocol);
    rec.config = "INT8";
    records.push_back(rec);
    std::fprintf(stderr, "\r[fig4] %d/%zu workloads", ++done, suite.size());
  }
  std::fprintf(stderr, "\n");

  std::printf("Figure 4: relative accuracy-loss distribution per format (%%)\n\n");
  std::printf("%-8s %-6s | %8s %8s %8s %8s %8s | %8s %9s\n", "format", "domain", "min",
              "q1", "median", "q3", "max", "mean", "outliers");
  for (const char* domain : {"CV", "NLP"}) {
    for (const char* config :
         {"E4M3/static", "E3M4/static", "E5M2/direct", "INT8"}) {
      const auto sel = filter_domain(filter_config(records, config), domain);
      const auto s = summarize_losses(sel);
      std::printf("%-8.7s %-6s | %8.2f %8.2f %8.2f %8.2f %8.2f | %8.2f %6d/%-2d\n",
                  config, domain, 100 * s.min, 100 * s.q1, 100 * s.median, 100 * s.q3,
                  100 * s.max, 100 * s.mean, s.outliers, s.count);
    }
  }
  std::printf("\npaper shape: INT8 has much wider spread (and more outliers) on CV than\n"
              "E4M3/E3M4; E4M3 and E3M4 are tight around zero on both domains.\n");
  return 0;
}
