// Scaling study of the parallel quantization runtime (docs/THREADING.md):
// wall-clock and speedup at 1/2/4/N threads for the three parallelized
// layers -- bulk FP8 casts, the matmul/conv kernels, and the suite-level
// workload sweep -- plus a bit-identity check of every result against the
// 1-thread run.
//
// Usage: bench_parallel_scaling [--full]
//   --full  sweep a 15-workload subset instead of 5 (slower, more stable)
//
// Observability (docs/OBSERVABILITY.md): FP8Q_REPORT=<path> writes a run
// report with one stage per (section, thread count) measurement.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "fp8/cast_fast.h"
#include "nn/matmul.h"
#include "obs/trace.h"
#include "tensor/rng.h"
#include "workloads/registry.h"

#include "bench_report.h"

namespace {

using fp8q::num_threads;
using fp8q::obs_now_ns;
using fp8q::set_num_threads;

// All timing goes through the obs-owned clock (obs_now_ns), the same
// domain the latency histograms and trace exports use.
double seconds_since(std::uint64_t t0_ns) {
  return static_cast<double>(obs_now_ns() - t0_ns) / 1e9;
}

/// Best-of-`reps` wall time of fn().
template <class Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t t0 = obs_now_ns();
    fn();
    const double s = seconds_since(t0);
    if (s < best) best = s;
  }
  return best;
}

std::vector<int> thread_points() {
  std::vector<int> pts = {1, 2, 4};
  const int hw = fp8q::hardware_threads();
  if (hw > 4) pts.push_back(hw);
  return pts;
}

void print_row(const char* name, int threads, double secs, double serial_secs,
               bool identical) {
  std::printf("%-24s %3d threads  %9.4f s  speedup %5.2fx  bit-identical: %s\n", name,
              threads, secs, serial_secs / secs, identical ? "yes" : "NO");
  fp8q::report_add_stage(std::string(name) + "@" + std::to_string(threads) + "t",
                         secs * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fp8q;
  BenchReport bench_report("bench_parallel_scaling");
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  std::printf("parallel scaling (hardware_concurrency = %d)\n\n", hardware_threads());

  // ------------------------------------------------------------- bulk cast
  {
    Rng rng(1);
    std::vector<float> in(1 << 22);
    for (float& v : in) v = rng.normal(0.0f, 2.0f);
    std::vector<float> out(in.size());
    const FastCastSpec& spec = fast_cast_spec(Fp8Kind::E4M3);

    set_num_threads(1);
    const double serial =
        time_best(3, [&] { fp8_quantize_scaled_fast(in, out, spec, 0.41f); });
    const std::vector<float> reference = out;
    for (int t : thread_points()) {
      set_num_threads(t);
      const double secs =
          time_best(3, [&] { fp8_quantize_scaled_fast(in, out, spec, 0.41f); });
      print_row("cast 4M floats E4M3", t, secs, serial, out == reference);
    }
    std::printf("\n");
  }

  // ---------------------------------------------------------------- matmul
  {
    Rng rng(2);
    const Tensor a = randn(rng, {8, 96, 192});
    const Tensor b = randn(rng, {8, 192, 96});
    MatMulOp mm(true, false);
    const std::vector<Tensor> in = {a, b};

    set_num_threads(1);
    Tensor y = mm.forward(in);
    const double serial = time_best(3, [&] { y = mm.forward(in); });
    const Tensor reference = y;
    for (int t : thread_points()) {
      set_num_threads(t);
      const double secs = time_best(3, [&] { y = mm.forward(in); });
      bool same = y.numel() == reference.numel();
      for (std::int64_t i = 0; same && i < y.numel(); ++i) {
        same = y.flat()[i] == reference.flat()[i];
      }
      print_row("matmul 8x[96x192x96]", t, secs, serial, same);
    }
    std::printf("\n");
  }

  // ------------------------------------------------- workload-suite sweep
  {
    auto suite = build_suite();
    std::vector<Workload> subset;
    const size_t stride = full ? 5 : 15;
    for (size_t i = 0; i < suite.size(); i += stride) subset.push_back(suite[i]);
    const std::vector<SchemeConfig> schemes = {standard_fp8_scheme(DType::kE4M3),
                                               standard_fp8_scheme(DType::kE3M4)};
    EvalProtocol protocol;
    std::printf("suite sweep: %zu workloads x %zu schemes\n", subset.size(),
                schemes.size());

    set_num_threads(1);
    std::uint64_t t0 = obs_now_ns();
    const auto reference = evaluate_suite(subset, schemes, protocol);
    const double serial = seconds_since(t0);
    for (int t : thread_points()) {
      set_num_threads(t);
      t0 = obs_now_ns();
      const auto records = evaluate_suite(subset, schemes, protocol);
      const double secs = seconds_since(t0);
      bool same = records.size() == reference.size();
      for (size_t i = 0; same && i < records.size(); ++i) {
        same = records[i].workload == reference[i].workload &&
               records[i].fp32_accuracy == reference[i].fp32_accuracy &&
               records[i].quant_accuracy == reference[i].quant_accuracy;
      }
      print_row("workload sweep", t, secs, serial, same);
    }
  }

  set_num_threads(0);
  return 0;
}
