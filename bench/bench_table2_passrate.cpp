// Reproduces paper Table 2: workload pass rate (<= 1% relative accuracy
// loss vs FP32) for every study configuration over the 75-workload suite.
//
//   Row order matches the paper: E5M2 direct, E4M3 static/dynamic,
//   E3M4 static/dynamic, INT8 (static CV / dynamic NLP).
//
// Usage: bench_table2_passrate [--quick] [--dump]
//   --quick  evaluate a 15-workload subset (CI-speed smoke run)
//   --dump   also print the per-workload accuracy records
//
// The sweep fans out over the global thread pool (FP8Q_NUM_THREADS /
// set_num_threads, see docs/THREADING.md); records are merged in workload
// order so the output is identical at any thread count.
//
// Observability (docs/OBSERVABILITY.md): FP8Q_REPORT=<path> writes a
// structured run report (per-phase timings, quantization-event counters,
// all accuracy records); FP8Q_TRACE=1 additionally captures spans.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "obs/report.h"
#include "workloads/registry.h"

#include "bench_report.h"

namespace {

struct Row {
  const char* config;
  const char* approach;
  double paper_cv;
  double paper_nlp;
  double paper_all;
};

constexpr Row kPaperRows[] = {
    {"E5M2/direct", "Direct", 55.26, 78.42, 74.89},
    {"E4M3/static", "Static", 73.68, 96.32, 92.64},
    {"E4M3/dynamic", "Dynamic", 71.05, 92.11, 88.74},
    {"E3M4/static", "Static", 78.95, 92.11, 90.04},
    {"E3M4/dynamic", "Dynamic", 78.95, 92.11, 90.04},
    {"INT8", "Static CV Dynamic NLP", 57.89, 67.65, 65.87},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fp8q;
  bool quick = false;
  bool dump = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--dump") == 0) dump = true;
  }

  auto suite = build_suite();
  if (quick) {
    std::vector<Workload> subset;
    for (size_t i = 0; i < suite.size(); i += 5) subset.push_back(suite[i]);
    suite = std::move(subset);
  }

  BenchReport bench_report("bench_table2_passrate");

  EvalProtocol protocol;
  const auto fp8_schemes = table2_fp8_schemes();
  const size_t total_pairs = suite.size() * (fp8_schemes.size() + 1);
  auto progress = [total_pairs](int done_pairs) {
    std::fprintf(stderr, "\r[table2] %d/%zu evaluations (%d threads)", done_pairs,
                 total_pairs, fp8q::num_threads());
  };

  // The five FP8 configurations, fanned out over (workload, scheme) pairs.
  std::vector<AccuracyRecord> fp8_records;
  {
    ScopedStage stage("suite/fp8");
    fp8_records = evaluate_suite(suite, fp8_schemes, protocol, progress);
  }
  // INT8 baseline: static on CV, dynamic on NLP (paper Table 2 row 6) --
  // the scheme depends on the workload's domain, so it runs as its own
  // per-workload fan-out.
  std::atomic<int> int8_done{0};
  const auto int8_offset = static_cast<int>(fp8_records.size());
  std::vector<AccuracyRecord> int8_records;
  {
    ScopedStage stage("suite/int8");
    int8_records =
        parallel_map(static_cast<std::int64_t>(suite.size()), [&](std::int64_t i) {
          const auto& w = suite[static_cast<size_t>(i)];
          auto rec = evaluate_workload(w, int8_scheme(w.domain != "CV"), protocol);
          rec.config = "INT8";
          progress(int8_offset + int8_done.fetch_add(1) + 1);
          return rec;
        });
  }
  std::fprintf(stderr, "\n");

  // Merge in workload-major order (FP8 rows then INT8), exactly the
  // sequence the original serial double loop produced.
  std::vector<AccuracyRecord> records;
  records.reserve(total_pairs);
  for (size_t wi = 0; wi < suite.size(); ++wi) {
    for (size_t si = 0; si < fp8_schemes.size(); ++si) {
      records.push_back(fp8_records[wi * fp8_schemes.size() + si]);
    }
    records.push_back(int8_records[wi]);
  }

  if (dump) {
    std::printf("%-26s %-6s %-14s %8s %8s %8s\n", "workload", "domain", "config", "fp32",
                "quant", "loss%");
    for (const auto& r : records) {
      std::printf("%-26s %-6s %-14s %8.4f %8.4f %8.2f\n", r.workload.c_str(),
                  r.domain.c_str(), r.config.c_str(), r.fp32_accuracy, r.quant_accuracy,
                  100.0 * r.relative_loss());
    }
    std::printf("\n");
  }

  std::printf("Table 2: Workload Pass Rate (measured vs paper)\n");
  std::printf("%-14s %-22s | %8s %8s %8s | %8s %8s %8s\n", "Data Type", "Approach",
              "CV", "NLP", "All", "CV*", "NLP*", "All*");
  std::printf("%.*s\n", 110,
              "--------------------------------------------------------------------------"
              "------------------------------------");
  for (const auto& row : kPaperRows) {
    const auto sel = filter_config(records, row.config);
    const double cv = pass_rate(filter_domain(sel, "CV"));
    const double nlp = pass_rate(filter_domain(sel, "NLP"));
    const double all = pass_rate(sel);
    std::printf("%-14s %-22s | %7.2f%% %7.2f%% %7.2f%% | %7.2f%% %7.2f%% %7.2f%%\n",
                row.config, row.approach, cv, nlp, all, row.paper_cv, row.paper_nlp,
                row.paper_all);
  }
  std::printf("(* = paper-reported values; shape to match: FP8 > INT8 overall,\n"
              " E4M3 best on NLP, E3M4 best on CV, E5M2 weakest FP8.)\n");

  bench_report.report.records = records;
  return 0;
}
