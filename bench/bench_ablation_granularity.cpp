// Ablation: weight-scaling granularity (per-tensor vs per-channel vs
// per-group) -- the design choice behind paper section 3.1's "per-channel
// scaling reduces rounding errors by effectively utilizing the full
// encoding space for each channel".
#include <cmath>
#include <cstdio>

#include "metrics/metrics.h"
#include "quant/quantizer.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

#include "bench_report.h"

using namespace fp8q;

int main() {
  fp8q::BenchReport bench_report("bench_ablation_granularity");
  // A weight matrix with widely spread per-channel ranges (2^0 .. 2^8) --
  // the depthwise / EfficientNet-style regime.
  Rng rng(77);
  const std::int64_t out = 64;
  const std::int64_t in = 256;
  Tensor w = randn(rng, {out, in});
  for (std::int64_t o = 0; o < out; ++o) {
    const float gain = std::exp2(rng.uniform(0.0f, 8.0f));
    for (std::int64_t i = 0; i < in; ++i) w.at({o, i}) *= gain;
  }

  std::printf("Weight-scaling granularity ablation (weight [64, 256], channel ranges\n"
              "spread over 8 octaves). SQNR in dB per format; scale count in braces.\n\n");
  std::printf("%-26s %10s %10s %10s %10s\n", "granularity", "E5M2", "E4M3", "E3M4",
              "INT8");

  auto row = [&](const char* name, auto make) {
    std::printf("%-26s", name);
    for (DType dt : {DType::kE5M2, DType::kE4M3, DType::kE3M4, DType::kINT8}) {
      const Tensor q = apply_quant(w, make(dt));
      std::printf(" %10.2f", sqnr_db(w.flat(), q.flat()));
    }
    std::printf("\n");
  };

  row("per-tensor {1}", [&](DType dt) {
    return make_weight_params(w, dt, Granularity::kPerTensor);
  });
  row("per-channel {64}", [&](DType dt) {
    return make_weight_params(w, dt, Granularity::kPerChannel);
  });
  row("per-group(1024) {16}", [&](DType dt) { return make_group_weight_params(w, dt, 1024); });
  row("per-group(256) {64}", [&](DType dt) { return make_group_weight_params(w, dt, 256); });
  row("per-group(64) {256}", [&](DType dt) { return make_group_weight_params(w, dt, 64); });

  std::printf("\nshape: per-channel scaling decisively rescues INT8 (fixed step, so the\n"
              "small channels need their own scale) and is cheap insurance for FP8,\n"
              "whose exponent already absorbs most of the spread (section 3.1 notes\n"
              "the FP8 benefit is in encoding-space utilization, i.e. smaller).\n"
              "Finer groups buy little beyond per-channel -- the paper's standard\n"
              "scheme stops there.\n");
  return 0;
}
