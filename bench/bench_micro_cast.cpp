// google-benchmark microbenchmarks of the emulation substrate: FP8/INT8
// casting throughput and quantized operator overhead.
#include <benchmark/benchmark.h>

#include "core/parallel.h"
#include "fp8/cast.h"
#include "fp8/cast_fast.h"
#include "fp8/int8.h"
#include "nn/linear.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "quant/quantizer.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

namespace {

using namespace fp8q;

Tensor make_data(std::int64_t n) {
  Rng rng(7);
  return randn(rng, {n});
}

void BM_Fp8QuantizeScalar(benchmark::State& state) {
  const auto kind = static_cast<Fp8Kind>(state.range(0));
  const auto& spec = format_spec(kind);
  Tensor data = make_data(4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp8_quantize(data[static_cast<std::int64_t>(i++ & 4095)], spec));
  }
}
BENCHMARK(BM_Fp8QuantizeScalar)->Arg(0)->Arg(1)->Arg(2);

void BM_Fp8QuantizeVector(benchmark::State& state) {
  const auto& spec = format_spec(Fp8Kind::E4M3);
  Tensor data = make_data(state.range(0));
  Tensor out(data.shape());
  for (auto _ : state) {
    fp8_quantize(data.flat(), out.flat(), spec);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fp8QuantizeVector)->Arg(1024)->Arg(65536);

void BM_Fp8QuantizeScaled(benchmark::State& state) {
  const auto& spec = format_spec(Fp8Kind::E4M3);
  Tensor data = make_data(state.range(0));
  Tensor out(data.shape());
  const float scale = spec.max_value() / absmax(data);
  for (auto _ : state) {
    fp8_quantize_scaled(data.flat(), out.flat(), spec, scale);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fp8QuantizeScaled)->Arg(65536);

// Scalar fast-cast loop vs the batched branch-free kernel, per format: the
// pair measures what the auto-vectorizable rewrite buys on the same data
// (docs/PERFORMANCE.md). Both compute out = quantize(x * scale) / scale.
void BM_Fp8QuantizeScaledScalarLoop(benchmark::State& state) {
  const auto kind = static_cast<Fp8Kind>(state.range(0));
  const FastCastSpec& spec = fast_cast_spec(kind);
  Tensor data = make_data(65536);
  Tensor out(data.shape());
  const float scale = spec.max_value / 17.0f;
  const float inv = 1.0f / scale;
  const auto in = data.flat();
  auto dst = out.flat();
  for (auto _ : state) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      dst[i] = fp8_quantize_fast(in[i] * scale, spec) * inv;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_Fp8QuantizeScaledScalarLoop)->Arg(0)->Arg(1)->Arg(2);

void BM_Fp8QuantizeBatched(benchmark::State& state) {
  const auto kind = static_cast<Fp8Kind>(state.range(0));
  const FastCastSpec& spec = fast_cast_spec(kind);
  Tensor data = make_data(65536);
  Tensor out(data.shape());
  const float scale = spec.max_value / 17.0f;
  const auto in = data.flat();
  auto dst = out.flat();
  for (auto _ : state) {
    fp8_quantize_batch(in, dst, spec, scale);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_Fp8QuantizeBatched)->Arg(0)->Arg(1)->Arg(2);

// Disabled-path overhead check for the full bulk entry point: with
// counters, histograms and tracing all off, fp8_quantize_scaled_fast must
// cost the batched kernel plus a few relaxed atomic flag loads per bulk
// call. Compare against BM_Fp8QuantizeBatched; a gap beyond noise means an
// instrumentation branch leaked into the per-element path.
void BM_Fp8QuantizeScaledFastDisabledObs(benchmark::State& state) {
  const auto kind = static_cast<Fp8Kind>(state.range(0));
  const FastCastSpec& spec = fast_cast_spec(kind);
  Tensor data = make_data(65536);
  Tensor out(data.shape());
  const float scale = spec.max_value / 17.0f;
  const bool counters_before = counters_enabled();
  const bool hists_before = histograms_enabled();
  set_num_threads(1);  // measure the kernel, not the pool
  set_counters_enabled(false);
  set_histograms_enabled(false);
  for (auto _ : state) {
    fp8_quantize_scaled_fast(data.flat(), out.flat(), spec, scale);
    benchmark::DoNotOptimize(out.data());
  }
  set_counters_enabled(counters_before);
  set_histograms_enabled(hists_before);
  set_num_threads(0);
  state.SetItemsProcessed(state.iterations() * data.numel());
}
BENCHMARK(BM_Fp8QuantizeScaledFastDisabledObs)->Arg(0)->Arg(1)->Arg(2);

void BM_Int8Quantize(benchmark::State& state) {
  Tensor data = make_data(state.range(0));
  Tensor out(data.shape());
  const auto params = int8_symmetric_params(absmax(data));
  for (auto _ : state) {
    int8_quantize(data.flat(), out.flat(), params);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Int8Quantize)->Arg(65536);

void BM_Fp8EncodeDecodeRoundTrip(benchmark::State& state) {
  const auto& spec = format_spec(Fp8Kind::E4M3);
  Tensor data = make_data(4096);
  size_t i = 0;
  for (auto _ : state) {
    const float x = data[static_cast<std::int64_t>(i++ & 4095)];
    benchmark::DoNotOptimize(fp8_decode(fp8_encode(x, spec), spec));
  }
}
BENCHMARK(BM_Fp8EncodeDecodeRoundTrip);

void BM_PerChannelWeightQuant(benchmark::State& state) {
  Rng rng(9);
  Tensor w = randn(rng, {state.range(0), 256});
  for (auto _ : state) {
    state.PauseTiming();
    Tensor copy = w;
    state.ResumeTiming();
    apply_quant_inplace(copy, make_weight_params(copy, DType::kE4M3));
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_PerChannelWeightQuant)->Arg(64)->Arg(512);

void BM_QuantizedLinearForward(benchmark::State& state) {
  Rng rng(11);
  const std::int64_t dim = state.range(0);
  LinearOp op(randn(rng, {dim, dim}), Tensor{});
  Tensor x = randn(rng, {32, dim});
  const auto params = make_activation_params(DType::kE4M3, absmax(x));
  for (auto _ : state) {
    Tensor xq = apply_quant(x, params);
    std::vector<Tensor> in;
    in.push_back(std::move(xq));
    benchmark::DoNotOptimize(op.forward(in).data());
  }
  state.SetItemsProcessed(state.iterations() * 32 * dim * dim);
}
BENCHMARK(BM_QuantizedLinearForward)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
