// Reproduces paper Table 6: static vs dynamic activation quantization on
// NLP workloads for E4M3 / E3M4. Dynamic per-batch ranges track the data
// and give a small but consistent accuracy improvement.
#include <cstdio>

#include "workloads/registry.h"

#include "bench_report.h"

int main() {
  fp8q::BenchReport bench_report("bench_table6_static_dynamic");
  using namespace fp8q;
  const auto suite = build_suite();
  const EvalProtocol protocol;

  struct Row {
    const char* workload;
    DType fmt;
    const char* paper;
  };
  const Row rows[] = {
      {"distilbert-mrpc-ish", DType::kE4M3, "0.9151 vs 0.9072 (+0.87%)"},
      {"nlp/bert-ish-1", DType::kE4M3, "0.6058 vs 0.6033 (+0.41%)"},
      {"bert-large-cola-ish", DType::kE4M3, "0.7401 vs 0.7329 (+0.98%)"},
      {"nlp/bert-outlier-0", DType::kE3M4, "0.8962 vs 0.8919 (+0.48%)"},
  };

  std::printf("Table 6: static vs dynamic activation quantization (measured)\n\n");
  std::printf("%-22s %-6s | %10s %10s %12s | paper (dyn vs static)\n", "workload",
              "fmt", "dynamic", "static", "improvement");
  for (const Row& r : rows) {
    const Workload& w = find_workload(suite, r.workload);
    const auto stat = evaluate_workload(w, standard_fp8_scheme(r.fmt, false), protocol);
    const auto dyn = evaluate_workload(w, standard_fp8_scheme(r.fmt, true), protocol);
    const double improvement =
        100.0 * (dyn.quant_accuracy - stat.quant_accuracy) /
        (stat.quant_accuracy != 0.0 ? stat.quant_accuracy : 1.0);
    std::printf("%-22s %-6s | %10.4f %10.4f %+11.2f%% | %s\n", r.workload,
                std::string(to_string(r.fmt)).c_str(), dyn.quant_accuracy,
                stat.quant_accuracy, improvement, r.paper);
    std::fflush(stdout);
  }
  std::printf("\npaper shape: dynamic quantization gives small positive improvements\n"
              "(+0.4%% to +1%%) for E4M3/E3M4 on NLP models.\n");
  return 0;
}
