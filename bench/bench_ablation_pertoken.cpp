// Ablation: per-tensor static vs per-tensor dynamic vs per-token dynamic
// activation scaling -- the paper's section 3.1 notes that per-channel /
// per-token activation schemes "may require special kernel implementations
// ... hence they are not included in our study"; this bench quantifies
// what that exclusion costs on outlier-token activations.
#include <cstdio>

#include "metrics/metrics.h"
#include "models/zoo.h"
#include "quant/quantized_graph.h"
#include "tensor/rng.h"
#include "workloads/registry.h"

#include "bench_report.h"

using namespace fp8q;

int main() {
  fp8q::BenchReport bench_report("bench_ablation_pertoken");
  TransformerSpec spec;
  spec.dim = 48;
  spec.seq = 8;
  spec.layers = 2;
  spec.input_proj = true;
  spec.seed = 9;
  Graph g = make_transformer_encoder(spec);

  Rng rng(21);
  auto make_batch = [&](int n) {
    Tensor x = randn(rng, {n, 8, 48});
    for (float& v : x.flat()) {
      if (rng.uniform01() < 0.01) v *= 120.0f;  // INT8-killer element spikes
    }
    return x;
  };
  std::vector<Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(make_batch(32));
  Tensor x = make_batch(64);
  const Tensor ref = g.forward(x);

  std::printf("Activation-scaling ablation on an outlier-token encoder (SQNR dB)\n\n");
  std::printf("%-24s %10s %10s %10s %10s\n", "scheme", "E5M2", "E4M3", "E3M4", "INT8");

  auto row = [&](const char* name, bool dynamic, bool per_token) {
    std::printf("%-24s", name);
    for (DType dt : {DType::kE5M2, DType::kE4M3, DType::kE3M4, DType::kINT8}) {
      ModelQuantConfig cfg;
      cfg.scheme = dt == DType::kINT8 ? int8_scheme(dynamic)
                                      : standard_fp8_scheme(dt, dynamic);
      cfg.scheme.per_token_activations = per_token;
      cfg.scheme.smoothquant = true;
      QuantizedGraph qg(&g, cfg);
      qg.prepare(std::span<const Tensor>(calib));
      const Tensor got = qg.forward(x);
      std::printf(" %10.2f", sqnr_db(ref.flat(), got.flat()));
    }
    std::printf("\n");
  };
  row("per-tensor static", false, false);
  row("per-tensor dynamic", true, false);
  row("per-token dynamic", true, true);

  std::printf("\nshape: per-token scales rescue INT8 on token-outlier activations (the\n"
              "rescue the paper forgoes to keep standard kernels), while the FP8\n"
              "formats barely need it -- their exponent already absorbs the range.\n");
  return 0;
}
