// Reproduces paper Figure 3: the tensor-distribution taxonomy.
//   (left)   NLP activations contain outliers -> range-bound
//   (center) CV activations are well behaved  -> precision-bound
//   (right)  weights in both domains          -> precision-bound
// We sample real tensors from the synthetic workload suite and report the
// statistics that define the taxonomy (absmax/stddev ratio, kurtosis).
#include <cstdio>

#include <string>
#include <vector>

#include "nn/graph.h"
#include "tensor/stats.h"
#include "workloads/registry.h"

#include "bench_report.h"

using namespace fp8q;

namespace {

struct Probe {
  double max_ratio = 0.0;   ///< absmax / stddev across sampled tensors (max)
  double kurtosis = 0.0;    ///< worst-case excess kurtosis
  int tensors = 0;
};

Probe probe_activations(const Workload& w) {
  Probe p;
  Graph g = w.build();
  Rng rng(w.data_seed + 5);
  g.set_output_tap([&](Graph::NodeId id, const Tensor& t) {
    if (!is_quantizable_op(g.node(id).kind)) return;
    const auto s = summarize(t);
    if (s.stddev > 0.0) {
      p.max_ratio = std::max(p.max_ratio, s.absmax / s.stddev);
      p.kurtosis = std::max(p.kurtosis, s.kurtosis);
      ++p.tensors;
    }
  });
  // Sample the deployment data path: outliers ride on the perturbed
  // inputs for several families.
  auto batch = w.make_batch(rng, 16);
  batch = w.perturb(rng, batch);
  (void)g.forward(batch);
  g.clear_taps();
  return p;
}

Probe probe_weights(const Workload& w) {
  Probe p;
  Graph g = w.build();
  for (Graph::NodeId id : g.node_ids()) {
    auto& node = g.node(id);
    if (!node.op || !is_compute_op(node.kind)) continue;
    const auto ws = node.op->weights();
    if (ws.empty()) continue;
    const auto s = summarize(*ws[0]);
    if (s.stddev > 0.0) {
      p.max_ratio = std::max(p.max_ratio, s.absmax / s.stddev);
      p.kurtosis = std::max(p.kurtosis, s.kurtosis);
      ++p.tensors;
    }
  }
  return p;
}

}  // namespace

int main() {
  fp8q::BenchReport bench_report("bench_fig3_distributions");
  const auto suite = build_suite();
  std::printf("Figure 3: tensor distribution taxonomy (absmax/stddev ratio; higher =\n"
              "more range-bound; a pure Gaussian sits near 4-5)\n\n");
  std::printf("%-26s %-6s | %12s %10s | %12s %10s\n", "workload", "domain", "act ratio",
              "act kurt", "wgt ratio", "wgt kurt");

  double cv_act = 0.0;
  double nlp_act = 0.0;
  double cv_w = 0.0;
  double nlp_w = 0.0;
  int cv_n = 0;
  int nlp_n = 0;
  int shown = 0;
  for (const auto& w : suite) {
    const Probe a = probe_activations(w);
    const Probe wt = probe_weights(w);
    if (w.domain == "CV") {
      cv_act += a.max_ratio;
      cv_w += wt.max_ratio;
      ++cv_n;
    } else {
      nlp_act += a.max_ratio;
      nlp_w += wt.max_ratio;
      ++nlp_n;
    }
    if (shown < 12 && (shown % 2 == 0 ? w.domain == "CV" : w.domain == "NLP")) {
      std::printf("%-26s %-6s | %12.1f %10.1f | %12.1f %10.1f\n", w.name.c_str(),
                  w.domain.c_str(), a.max_ratio, a.kurtosis, wt.max_ratio, wt.kurtosis);
    }
    ++shown;
  }
  std::printf("\nDomain means (activation absmax/stddev ratio):\n");
  std::printf("  NLP activations: %8.1f   (paper: outlier-heavy, range-bound)\n",
              nlp_act / nlp_n);
  std::printf("  CV  activations: %8.1f   (paper: well-behaved, precision-bound)\n",
              cv_act / cv_n);
  std::printf("  NLP weights:     %8.1f   (paper: precision-bound)\n", nlp_w / nlp_n);
  std::printf("  CV  weights:     %8.1f   (paper: precision-bound)\n", cv_w / cv_n);
  return 0;
}
