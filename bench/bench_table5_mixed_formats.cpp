// Reproduces paper Table 5: single vs mixed FP8 formats on NLP workloads.
// The mixed scheme (E4M3 activations + E3M4 weights) should match or beat
// every single format.
#include <cstdio>

#include "workloads/registry.h"

#include "bench_report.h"

int main() {
  fp8q::BenchReport bench_report("bench_table5_mixed_formats");
  using namespace fp8q;
  const auto suite = build_suite();
  const EvalProtocol protocol;

  // Four NLP workloads standing in for the paper's Bert-Base/MRPC,
  // Bert-Large/RTE, Funnel/MRPC and Longformer/MRPC rows. The "funnel" row
  // uses the range-extreme longformer variant, reproducing the paper's
  // catastrophic E3M4 failure (0.3704 vs FP32 0.9225).
  const char* names[] = {"distilbert-mrpc-ish", "bert-large-cola-ish",
                         "nlp/longformer-ish-1", "nlp/longformer-ish-0"};
  const char* paper_rows[] = {
      "Bert-Base/MRPC   0.9069 | 0.9040 0.9050 0.9050 | 0.9069",
      "Bert-Large/RTE   0.7256 | 0.6968 0.7329 0.6931 | 0.7365",
      "Funnel/MRPC      0.9225 | 0.9215 0.9207 0.3704 | 0.9233",
      "Longformer/MRPC  0.9146 | 0.8374 0.9113 0.9084 | 0.9143",
  };

  std::printf("Table 5: single vs mixed FP8 formats (measured)\n\n");
  std::printf("%-22s %8s | %8s %8s %8s | %8s\n", "workload", "FP32", "E5M2", "E4M3",
              "E3M4", "Mixed");
  int i = 0;
  for (const char* name : names) {
    const Workload& w = find_workload(suite, name);
    const auto e5 = evaluate_workload(w, standard_fp8_scheme(DType::kE5M2), protocol);
    const auto e4 = evaluate_workload(w, standard_fp8_scheme(DType::kE4M3), protocol);
    const auto e3 = evaluate_workload(w, standard_fp8_scheme(DType::kE3M4), protocol);
    const auto mx = evaluate_workload(w, mixed_fp8_scheme(), protocol);
    std::printf("%-22s %8.4f | %8.4f %8.4f %8.4f | %8.4f\n", name, e4.fp32_accuracy,
                e5.quant_accuracy, e4.quant_accuracy, e3.quant_accuracy,
                mx.quant_accuracy);
    std::printf("  paper: %s\n", paper_rows[i++]);
    std::fflush(stdout);
  }
  std::printf("\npaper shape: mixed E4M3-act/E3M4-weight matches or beats every single\n"
              "format; E3M4 collapses on the range-extreme (Funnel-like) row.\n");
  return 0;
}
