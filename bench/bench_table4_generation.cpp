// Reproduces paper Table 4 / Appendix A.3: text-generation quality of a
// Bloom-class decoder LM under each data format, beam search size 4.
//
// The paper's finding is qualitative: INT8 output degenerates into
// repetition ("She saw many strange... She saw many strange...") while
// FP8 formats stay close to the FP32 continuation. We quantify exactly
// that with repeated-4-gram fraction, distinct-2 and token agreement
// against the FP32 generation.
#include <cstdio>

#include "models/generation.h"
#include "models/zoo.h"
#include "quant/quantized_graph.h"
#include "tensor/rng.h"
#include "workloads/registry.h"

#include "bench_report.h"

using namespace fp8q;

int main() {
  fp8q::BenchReport bench_report("bench_table4_generation");
  // Bloom-like decoder with token-level embedding outliers reaching the
  // embedding projection -- the regime where INT8's grid is stretched.
  DecoderLmSpec spec;
  spec.vocab = 48;
  spec.dim = 48;
  spec.layers = 2;
  spec.embed_proj = true;
  spec.outlier_channel_fraction = 0.06f;
  spec.outlier_gamma_gain = 5.0f;
  spec.embedding_outlier_fraction = 0.04f;
  spec.embedding_outlier_gain = 300.0f;
  spec.seed = 77;
  Graph lm = make_decoder_lm(spec);

  // Prompt: "32 input tokens" scaled to our sequence budget.
  Rng rng(123);
  std::vector<int> prompt;
  for (int i = 0; i < 8; ++i) prompt.push_back(static_cast<int>(rng.randint(0, spec.vocab - 1)));
  const int steps = 32;
  const int beam = 4;

  // Calibration set for the static schemes.
  std::vector<std::vector<Tensor>> calib;
  for (int b = 0; b < 4; ++b) {
    Tensor ids({8, 10});
    for (float& v : ids.flat()) v = static_cast<float>(rng.randint(0, spec.vocab - 1));
    Tensor pos({8, 10});
    for (std::int64_t r = 0; r < 8; ++r) {
      for (std::int64_t s = 0; s < 10; ++s) pos.at({r, s}) = static_cast<float>(s);
    }
    std::vector<Tensor> one;
    one.push_back(std::move(ids));
    one.push_back(std::move(pos));
    calib.push_back(std::move(one));
  }

  const auto fp32_tokens = beam_generate(make_lm_forward(lm), prompt, steps, beam);

  std::printf("Table 4: generation quality, beam search size %d, %d new tokens\n\n", beam,
              steps);
  std::printf("%-14s | %14s %12s %14s\n", "config", "rep-4gram", "distinct-2",
              "match-vs-FP32");
  std::printf("%-14s | %14.3f %12.3f %14s\n", "FP32",
              repeated_ngram_fraction(fp32_tokens, 4), distinct_n(fp32_tokens, 2), "1.000");

  struct Config {
    const char* name;
    SchemeConfig scheme;
  };
  std::vector<Config> configs = {
      {"E5M2/direct", standard_fp8_scheme(DType::kE5M2)},
      {"E4M3/static", standard_fp8_scheme(DType::kE4M3, false)},
      {"E4M3/dynamic", standard_fp8_scheme(DType::kE4M3, true)},
      {"E3M4/static", standard_fp8_scheme(DType::kE3M4, false)},
      {"E3M4/dynamic", standard_fp8_scheme(DType::kE3M4, true)},
      {"FP8 mixed", mixed_fp8_scheme()},
      {"INT8/dynamic", int8_scheme(true)},
  };
  for (auto& c : configs) {
    ModelQuantConfig cfg;
    cfg.scheme = c.scheme;
    cfg.scheme.smoothquant = true;  // NLP default
    QuantizedGraph qg(&lm, cfg);
    qg.prepare(std::span<const std::vector<Tensor>>(calib));
    const auto tokens = beam_generate(make_lm_forward(qg), prompt, steps, beam);
    std::printf("%-14s | %14.3f %12.3f %14.3f\n", c.name,
                repeated_ngram_fraction(tokens, 4), distinct_n(tokens, 2),
                token_agreement(fp32_tokens, tokens));
    std::fflush(stdout);
  }
  std::printf("\npaper shape: INT8 generation degenerates (high repetition, low\n"
              "diversity); E3M4/E4M3 stay close to the FP32 continuation (Table 4,\n"
              "Appendix A.3).\n");
  return 0;
}
