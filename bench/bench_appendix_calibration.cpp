// Appendix A.1 study: range-calibration algorithms (max / percentile / KL /
// MSE) across formats and distribution regimes. The paper's finding: max
// scaling is sufficient for FP8; the clipping calibrators that help INT8
// provide no additional benefit for FP8.
#include <cstdio>

#include <cmath>

#include "quant/calibrate.h"
#include "quant/observer.h"
#include "quant/quantizer.h"
#include "metrics/metrics.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

#include "bench_report.h"

using namespace fp8q;

namespace {

void study(const char* title, const Tensor& x) {
  Observer obs(static_cast<size_t>(x.numel()));
  obs.observe(x);
  std::printf("%s\n", title);
  std::printf("  %-12s | %12s %12s | %12s %12s\n", "method", "E4M3 clip", "E4M3 MSE",
              "INT8 clip", "INT8 MSE");
  for (CalibMethod m : {CalibMethod::kAbsMax, CalibMethod::kPercentile,
                        CalibMethod::kKlDivergence, CalibMethod::kMseSweep}) {
    std::printf("  %-12s |", std::string(to_string(m)).c_str());
    for (DType dt : {DType::kE4M3, DType::kINT8}) {
      const float clip = calibrate_clip(obs, m, dt, 0.999);
      std::printf(" %12.3f %12.3e", clip, clip_quantization_mse(x.flat(), clip, dt));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  fp8q::BenchReport bench_report("bench_appendix_calibration");
  std::printf("Appendix A.1: range-calibration method comparison\n\n");
  Rng rng(2024);

  Tensor clean = randn(rng, {100000});
  study("Gaussian activations (CV-like, precision-bound):", clean);

  Tensor mild = randn(rng, {100000}, 0.0f, std::sqrt(0.5f));
  inject_outliers(mild, rng, 0.01, -6.0f, 6.0f);
  study("Figure-1 tensor (1% outliers at +/-6):", mild);

  Tensor llm = randn(rng, {100000});
  inject_outliers(llm, rng, 0.0002, -60.0f, 60.0f);
  study("LLM-like tensor (0.02% outliers at +/-60, range-bound):", llm);

  std::printf("paper shape: for E4M3 every method lands at (or near) the absmax clip\n"
              "with no MSE win -- max scaling suffices for FP8. For INT8 the clipping\n"
              "methods pick smaller clips on the outlier-heavy tensors.\n");
  return 0;
}
