// Reproduces paper Figure 5: relative accuracy loss vs model size per
// format and domain. The paper buckets models into tiny/small/medium/large
// by on-disk MB; our synthetic zoo spans ~4 orders of magnitude of
// parameter count, so the bucket boundaries are log-size quartiles of the
// suite (the shape -- loss roughly flat in size for FP8, erratic for INT8
// -- is the reproduction target).
//
// Usage: bench_fig5_size_sweep [--full]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "workloads/registry.h"

#include "bench_report.h"

int main(int argc, char** argv) {
  fp8q::BenchReport bench_report("bench_fig5_size_sweep");
  using namespace fp8q;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  auto suite = build_suite();
  if (!full) {
    std::vector<Workload> subset;
    for (size_t i = 0; i < suite.size(); i += 5) subset.push_back(suite[i]);
    suite = std::move(subset);
  }

  EvalProtocol protocol;
  protocol.eval_batches = 6;

  std::vector<AccuracyRecord> records;
  int done = 0;
  for (const auto& w : suite) {
    for (DType fmt : {DType::kE4M3, DType::kE3M4, DType::kE5M2}) {
      records.push_back(evaluate_workload(w, standard_fp8_scheme(fmt), protocol));
    }
    auto rec = evaluate_workload(w, int8_scheme(w.domain != "CV"), protocol);
    rec.config = "INT8";
    records.push_back(rec);
    std::fprintf(stderr, "\r[fig5] %d/%zu workloads", ++done, suite.size());
  }
  std::fprintf(stderr, "\n");

  // Log-size quartile buckets over the evaluated suite.
  std::vector<double> sizes;
  for (const auto& r : records) sizes.push_back(r.model_size_mb);
  std::sort(sizes.begin(), sizes.end());
  const double q1 = sizes[sizes.size() / 4];
  const double q2 = sizes[sizes.size() / 2];
  const double q3 = sizes[3 * sizes.size() / 4];
  auto bucket = [&](double mb) {
    if (mb <= q1) return "tiny";
    if (mb <= q2) return "small";
    if (mb <= q3) return "medium";
    return "large";
  };

  std::printf("Figure 5: mean relative accuracy loss (%%) by model-size bucket\n");
  std::printf("(suite quartile boundaries: %.3f / %.3f / %.3f MB)\n\n", q1, q2, q3);
  std::printf("%-6s %-8s | %8s %8s %8s %8s\n", "domain", "format", "tiny", "small",
              "medium", "large");
  for (const char* domain : {"CV", "NLP"}) {
    for (const char* config : {"E4M3/static", "E3M4/static", "E5M2/direct", "INT8"}) {
      std::printf("%-6s %-8.7s |", domain, config);
      for (const char* b : {"tiny", "small", "medium", "large"}) {
        double sum = 0.0;
        int n = 0;
        for (const auto& r : records) {
          if (r.domain == domain && r.config == config &&
              std::strcmp(bucket(r.model_size_mb), b) == 0) {
            sum += r.relative_loss();
            ++n;
          }
        }
        if (n > 0) {
          std::printf(" %7.2f%%", 100.0 * sum / n);
        } else {
          std::printf(" %8s", "-");
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\npaper shape: E4M3/E3M4 losses stay near zero across all sizes; INT8\n"
              "and E5M2 show large losses concentrated in specific buckets.\n");
  return 0;
}
