// Shared report harness for the bench binaries (docs/OBSERVABILITY.md).
//
// Every bench constructs one BenchReport at the top of main(): the run
// report becomes the process's active report (so ScopedStage and the
// tuner append to it), and on destruction the report is finalized and --
// when FP8Q_REPORT / FP8Q_TRACE_JSON are set -- written out. This makes
// every bench report- and trace-instrumented via the environment alone,
// with zero cost when neither variable is set.
//
// Benches that collect AccuracyRecords push them onto `report.records`
// before main() returns (the member is public for exactly that).
#pragma once

#include <cstdio>
#include <exception>

#include "core/cpu_dispatch.h"
#include "core/parallel.h"
#include "obs/report.h"
#include "obs/trace_export.h"

namespace fp8q {

class BenchReport {
 public:
  explicit BenchReport(const char* tool) {
    report.tool = tool;
    set_active_report(&report);
  }

  ~BenchReport() {
    report.num_threads = num_threads();
    // The obs layer cannot link core, so the dispatch tier is stamped here
    // (and by every other report writer) rather than inside report.cpp.
    report.isa = std::string(isa_label());
    set_active_report(nullptr);
    try {
      if (write_report_if_requested(report)) {
        std::fprintf(stderr, "[%s] report written to %s\n", report.tool.c_str(),
                     report_env_path());
      }
      if (write_chrome_trace_if_requested()) {
        std::fprintf(stderr, "[%s] chrome trace written to %s\n", report.tool.c_str(),
                     trace_json_env_path());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[%s] report/trace write failed: %s\n", report.tool.c_str(),
                   e.what());
    }
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  RunReport report;
};

}  // namespace fp8q
