// Reproduces paper Figure 12 (Appendix A.4): accuracy impact of the
// extended quantization recipes -- expanding operator coverage to
// LayerNorm / Add / Mul (and BatchMatMul, already in the standard set) --
// across NLP workloads and formats.
#include <cstdio>

#include "workloads/registry.h"

#include "bench_report.h"

int main() {
  fp8q::BenchReport bench_report("bench_fig12_extended_ops");
  using namespace fp8q;
  const auto suite = build_suite();
  EvalProtocol protocol;
  protocol.eval_batches = 6;


  // NLP workloads with LayerNorm/Add/Mul content.
  std::vector<Workload> nlp;
  for (const auto& w : suite) {
    if (w.domain == "NLP" && (w.family == "bert-ish" || w.family == "marian-ish" ||
                              w.family == "longformer-ish")) {
      nlp.push_back(w);
    }
  }
  if (nlp.size() > 6) nlp.resize(6);

  std::printf("Figure 12: extended operator coverage (LayerNorm/Add/Mul) on %zu NLP\n"
              "workloads -- mean relative loss and pass rate per format\n\n",
              nlp.size());
  std::printf("%-14s %-10s | %12s %10s | %12s %10s\n", "format", "approach",
              "std loss", "std pass", "ext loss", "ext pass");

  for (DType fmt : {DType::kE5M2, DType::kE4M3, DType::kE3M4}) {
    for (bool dynamic : {false, true}) {
      if (fmt == DType::kE5M2 && dynamic) continue;
      std::vector<AccuracyRecord> std_recs;
      std::vector<AccuracyRecord> ext_recs;
      for (const auto& w : nlp) {
        SchemeConfig scheme = standard_fp8_scheme(fmt, dynamic);
        std_recs.push_back(evaluate_workload(w, scheme, protocol));
        scheme.quantize_extended_ops = true;
        ext_recs.push_back(evaluate_workload(w, scheme, protocol));
      }
      const auto std_sum = summarize_losses(std_recs);
      const auto ext_sum = summarize_losses(ext_recs);
      std::printf("%-14s %-10s | %11.2f%% %9.1f%% | %11.2f%% %9.1f%%\n",
                  std::string(to_string(fmt)).c_str(), dynamic ? "dynamic" : "static",
                  100.0 * std_sum.mean, pass_rate(std_recs), 100.0 * ext_sum.mean,
                  pass_rate(ext_recs));
      std::fflush(stdout);
    }
  }
  std::printf("\npaper shape: FP8 formats absorb the expanded memory-op coverage with\n"
              "little extra loss; E4M3 shows the best accuracy and smallest\n"
              "variability across the extended recipes (Appendix A.4).\n");
  return 0;
}
