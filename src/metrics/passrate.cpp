#include "metrics/passrate.h"

#include <algorithm>
#include <cmath>

namespace fp8q {

double AccuracyRecord::relative_loss() const {
  if (fp32_accuracy == 0.0) return quant_accuracy == 0.0 ? 0.0 : -1.0;
  return (fp32_accuracy - quant_accuracy) / std::fabs(fp32_accuracy);
}

double pass_rate(const std::vector<AccuracyRecord>& records, double threshold) {
  if (records.empty()) return 0.0;
  std::int64_t passed = 0;
  for (const auto& r : records) {
    if (r.passes(threshold)) ++passed;
  }
  return 100.0 * static_cast<double>(passed) / static_cast<double>(records.size());
}

std::vector<AccuracyRecord> filter_domain(const std::vector<AccuracyRecord>& records,
                                          const std::string& domain) {
  std::vector<AccuracyRecord> out;
  for (const auto& r : records) {
    if (r.domain == domain) out.push_back(r);
  }
  return out;
}

std::vector<AccuracyRecord> filter_config(const std::vector<AccuracyRecord>& records,
                                          const std::string& config) {
  std::vector<AccuracyRecord> out;
  for (const auto& r : records) {
    if (r.config == config) out.push_back(r);
  }
  return out;
}

namespace {
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

LossSummary summarize_losses(const std::vector<AccuracyRecord>& records) {
  LossSummary s;
  if (records.empty()) return s;
  std::vector<double> losses;
  losses.reserve(records.size());
  double sum = 0.0;
  for (const auto& r : records) {
    losses.push_back(r.relative_loss());
    sum += losses.back();
  }
  std::sort(losses.begin(), losses.end());
  s.count = static_cast<int>(losses.size());
  s.min = losses.front();
  s.max = losses.back();
  s.q1 = quantile_sorted(losses, 0.25);
  s.median = quantile_sorted(losses, 0.5);
  s.q3 = quantile_sorted(losses, 0.75);
  s.mean = sum / static_cast<double>(losses.size());
  const double iqr = s.q3 - s.q1;
  const double lo = s.q1 - 1.5 * iqr;
  const double hi = s.q3 + 1.5 * iqr;
  for (double l : losses) {
    if (l < lo || l > hi) ++s.outliers;
  }
  return s;
}

const char* size_bucket(double model_size_mb) {
  if (model_size_mb <= 32.0) return "tiny";
  if (model_size_mb <= 384.0) return "small";
  if (model_size_mb <= 512.0) return "medium";
  return "large";
}

}  // namespace fp8q
