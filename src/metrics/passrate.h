// Pass-rate aggregation and accuracy-loss summary statistics for the
// workload study (paper Table 2, Figures 4 and 5).
#pragma once

#include <string>
#include <vector>

namespace fp8q {

/// The paper's acceptance criterion: quantized accuracy must be within 1%
/// relative loss of the FP32 baseline.
inline constexpr double kDefaultPassThreshold = 0.01;

/// One (workload, configuration) accuracy measurement.
struct AccuracyRecord {
  std::string workload;
  std::string domain;   ///< "CV" or "NLP" (speech/rec are grouped with NLP,
                        ///< matching the paper's All = CV + NLP split)
  std::string config;   ///< e.g. "E4M3/static"
  double fp32_accuracy = 0.0;
  double quant_accuracy = 0.0;
  double model_size_mb = 0.0;

  /// Relative accuracy loss: (fp32 - quant) / fp32. Negative = improvement.
  [[nodiscard]] double relative_loss() const;

  [[nodiscard]] bool passes(double threshold = kDefaultPassThreshold) const {
    // Epsilon keeps a loss of exactly threshold (e.g. 1%) passing despite
    // floating-point rounding in the division.
    return relative_loss() <= threshold + 1e-12;
  }
};

/// Percentage of records meeting the criterion; 0 for an empty set.
[[nodiscard]] double pass_rate(const std::vector<AccuracyRecord>& records,
                               double threshold = kDefaultPassThreshold);

/// Records filtered to one domain ("CV"/"NLP") or config.
[[nodiscard]] std::vector<AccuracyRecord> filter_domain(
    const std::vector<AccuracyRecord>& records, const std::string& domain);
[[nodiscard]] std::vector<AccuracyRecord> filter_config(
    const std::vector<AccuracyRecord>& records, const std::string& config);

/// Box-plot style summary of relative losses (paper Figure 4).
struct LossSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  int count = 0;
  int outliers = 0;  ///< points beyond 1.5 IQR whiskers
};

[[nodiscard]] LossSummary summarize_losses(const std::vector<AccuracyRecord>& records);

/// Paper Figure 5 size buckets (MB): tiny <=32, small (32,384],
/// medium (384,512], large >512.
[[nodiscard]] const char* size_bucket(double model_size_mb);

}  // namespace fp8q
