#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fp8q {

namespace {
void check_sizes(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) throw std::invalid_argument("metric: size mismatch");
}
}  // namespace

double mse(std::span<const float> ref, std::span<const float> got) {
  check_sizes(ref, got);
  if (ref.empty()) return 0.0;
  double acc = 0.0;
  std::int64_t n = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (std::isnan(ref[i]) || std::isnan(got[i])) continue;
    const double d = static_cast<double>(ref[i]) - static_cast<double>(got[i]);
    acc += d * d;
    ++n;
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

double mae(std::span<const float> ref, std::span<const float> got) {
  check_sizes(ref, got);
  if (ref.empty()) return 0.0;
  double acc = 0.0;
  std::int64_t n = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (std::isnan(ref[i]) || std::isnan(got[i])) continue;
    acc += std::fabs(static_cast<double>(ref[i]) - static_cast<double>(got[i]));
    ++n;
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

double max_abs_error(std::span<const float> ref, std::span<const float> got) {
  check_sizes(ref, got);
  double m = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (std::isnan(ref[i]) || std::isnan(got[i])) continue;
    m = std::max(m, std::fabs(static_cast<double>(ref[i]) - static_cast<double>(got[i])));
  }
  return m;
}

double sqnr_db(std::span<const float> ref, std::span<const float> got) {
  check_sizes(ref, got);
  double signal = 0.0;
  double noise = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (std::isnan(ref[i]) || std::isnan(got[i])) continue;
    const double r = ref[i];
    const double d = r - static_cast<double>(got[i]);
    signal += r * r;
    noise += d * d;
  }
  if (noise == 0.0) return std::numeric_limits<double>::infinity();
  if (signal == 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(signal / noise);
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  check_sizes(a, b);
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 && nb == 0.0) return 1.0;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double pearson(std::span<const float> a, std::span<const float> b) {
  check_sizes(a, b);
  const auto n = static_cast<double>(a.size());
  if (a.empty()) return 0.0;
  double sa = 0.0;
  double sb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sa += a[i];
    sb += b[i];
  }
  const double ma = sa / n;
  const double mb = sb / n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return va == vb ? 1.0 : 0.0;
  return cov / std::sqrt(va * vb);
}

std::int64_t argmax(std::span<const float> v) {
  if (v.empty()) return -1;
  size_t best = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return static_cast<std::int64_t>(best);
}

double top1_agreement(const Tensor& ref_scores, const Tensor& got_scores) {
  if (!ref_scores.same_shape(got_scores)) {
    throw std::invalid_argument("top1_agreement: shape mismatch");
  }
  if (ref_scores.dim() < 1 || ref_scores.numel() == 0) return 1.0;
  const std::int64_t classes = ref_scores.size(-1);
  const std::int64_t rows = ref_scores.numel() / classes;
  const auto ref = ref_scores.flat();
  const auto got = got_scores.flat();
  std::int64_t agree = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const auto off = static_cast<size_t>(r * classes);
    const auto c = static_cast<size_t>(classes);
    if (argmax(ref.subspan(off, c)) == argmax(got.subspan(off, c))) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(rows);
}

double nmse_accuracy(std::span<const float> ref, std::span<const float> got) {
  check_sizes(ref, got);
  double signal = 0.0;
  for (float r : ref) signal += static_cast<double>(r) * r;
  if (signal == 0.0) return 1.0;
  const double err = mse(ref, got) * static_cast<double>(ref.size());
  return std::clamp(1.0 - err / signal, 0.0, 1.0);
}

double frechet_distance_diag(const Tensor& features_a, const Tensor& features_b) {
  if (features_a.dim() != 2 || features_b.dim() != 2 ||
      features_a.size(1) != features_b.size(1)) {
    throw std::invalid_argument("frechet_distance_diag: expected [n, d] feature matrices");
  }
  const std::int64_t d = features_a.size(1);
  auto moments = [&](const Tensor& f, std::vector<double>& mu, std::vector<double>& var) {
    const std::int64_t n = f.size(0);
    mu.assign(static_cast<size_t>(d), 0.0);
    var.assign(static_cast<size_t>(d), 0.0);
    const auto data = f.flat();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < d; ++j) {
        mu[static_cast<size_t>(j)] += data[static_cast<size_t>(i * d + j)];
      }
    }
    for (auto& m : mu) m /= static_cast<double>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < d; ++j) {
        const double dd = data[static_cast<size_t>(i * d + j)] - mu[static_cast<size_t>(j)];
        var[static_cast<size_t>(j)] += dd * dd;
      }
    }
    for (auto& v : var) v /= std::max<double>(1.0, static_cast<double>(n - 1));
  };
  std::vector<double> mu1;
  std::vector<double> var1;
  std::vector<double> mu2;
  std::vector<double> var2;
  moments(features_a, mu1, var1);
  moments(features_b, mu2, var2);
  // Diagonal-covariance Frechet distance:
  //   |mu1-mu2|^2 + sum_j (v1_j + v2_j - 2*sqrt(v1_j v2_j))
  double dist = 0.0;
  for (std::int64_t j = 0; j < d; ++j) {
    const auto ju = static_cast<size_t>(j);
    const double dm = mu1[ju] - mu2[ju];
    dist += dm * dm + var1[ju] + var2[ju] - 2.0 * std::sqrt(var1[ju] * var2[ju]);
  }
  return dist;
}

}  // namespace fp8q
