// Error and fidelity metrics.
//
// The paper reports task accuracy against an FP32 baseline; our synthetic
// substitution measures fidelity of the quantized network against the FP32
// reference network (see DESIGN.md section 1), so the core metrics are
// distortion (MSE/SQNR) and agreement (top-1 match, Pearson correlation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace fp8q {

/// Mean squared error between reference and candidate; NaN pairs are skipped.
[[nodiscard]] double mse(std::span<const float> ref, std::span<const float> got);
[[nodiscard]] inline double mse(const Tensor& a, const Tensor& b) {
  return mse(a.flat(), b.flat());
}

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const float> ref, std::span<const float> got);

/// Largest absolute difference.
[[nodiscard]] double max_abs_error(std::span<const float> ref, std::span<const float> got);

/// Signal-to-quantization-noise ratio in dB: 10*log10(E[x^2]/E[(x-q)^2]).
/// Returns +inf for a perfect match.
[[nodiscard]] double sqnr_db(std::span<const float> ref, std::span<const float> got);

/// Cosine similarity; 1.0 when either vector is all-zero and they match.
[[nodiscard]] double cosine_similarity(std::span<const float> a, std::span<const float> b);

/// Pearson correlation coefficient (the STS-B metric).
[[nodiscard]] double pearson(std::span<const float> a, std::span<const float> b);

/// Index of the largest element (first on ties).
[[nodiscard]] std::int64_t argmax(std::span<const float> v);

/// Fraction of rows where argmax over the last axis agrees between the two
/// [rows, classes] score matrices — top-1 agreement, our classification /
/// next-token fidelity metric.
[[nodiscard]] double top1_agreement(const Tensor& ref_scores, const Tensor& got_scores);

/// 1 - normalized MSE, clamped to [0, 1]: a bounded regression "accuracy".
[[nodiscard]] double nmse_accuracy(std::span<const float> ref, std::span<const float> got);

/// Fréchet distance between two feature-vector populations using diagonal
/// Gaussian statistics — the FID proxy for the diffusion experiment
/// (paper Figure 6). Rows are samples, columns are features.
[[nodiscard]] double frechet_distance_diag(const Tensor& features_a, const Tensor& features_b);

}  // namespace fp8q
