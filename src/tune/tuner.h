// Accuracy-driven automatic tuning (paper Figure 2 feedback loop and
// Appendix A.1): starts from the standard scheme and incrementally applies
// extended-scheme options until the model meets the accuracy criterion.
//
// The search order follows the paper's incremental philosophy:
//   1. standard scheme, preferred format (static)
//   2. dynamic activation quantization           (section 3.2, Table 6)
//   3. mixed FP8 formats E4M3 act / E3M4 weight  (section 3.2, Table 5)
//   4. the other FP8 formats
//   5. operator-kind fallback (most sensitive kind to FP32 first)
//   6. per-node fallback (most sensitive nodes to FP32 first)
#pragma once

#include <vector>

#include "workloads/workload.h"

namespace fp8q {

struct TuneOptions {
  /// The paper's pass criterion: relative loss vs FP32 <= 1%.
  double accuracy_criterion = kDefaultPassThreshold;
  /// Hard cap on evaluated configurations.
  int max_trials = 24;
  /// How many of the most sensitive nodes per-node fallback may disable.
  int max_node_fallbacks = 4;
};

struct TuneStep {
  std::string description;
  ModelQuantConfig config;
  AccuracyRecord record;
  /// Parameter-weighted fraction of compute quantized under this config
  /// (the Pareto efficiency axis of Appendix A.1).
  double quantized_fraction = 0.0;
  /// Wall time spent evaluating this trial (nondeterministic; reported to
  /// the active RunReport as a "trial:..." stage, see obs/report.h).
  double eval_ms = 0.0;
  bool met = false;
};

struct TuneResult {
  bool success = false;
  ModelQuantConfig best;        ///< config of the best trial
  AccuracyRecord best_record;   ///< its accuracy record
  std::vector<TuneStep> history;

  [[nodiscard]] int trials() const { return static_cast<int>(history.size()); }
};

/// Runs the tuning loop for one workload starting from `preferred` (the
/// paper's recommended default: E4M3 for NLP, E3M4 for CV).
[[nodiscard]] TuneResult autotune(const Workload& workload, DType preferred,
                                  const EvalProtocol& protocol = {},
                                  const TuneOptions& options = {});

/// Per-node quantization sensitivity: relative accuracy loss when ONLY that
/// node is quantized (descending). Drives the per-node fallback order and
/// the operator-level analyses of Appendix A.1.
[[nodiscard]] std::vector<std::pair<Graph::NodeId, double>> node_sensitivity(
    const Workload& workload, const SchemeConfig& scheme, const EvalProtocol& protocol = {});

/// The paper's recommended default format per domain (section 5):
/// E3M4 for CV, E4M3 for NLP.
[[nodiscard]] inline DType recommended_format(const std::string& domain) {
  return domain == "CV" ? DType::kE3M4 : DType::kE4M3;
}

}  // namespace fp8q
