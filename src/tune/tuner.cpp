#include "tune/tuner.h"

#include <algorithm>

namespace fp8q {

namespace {

/// Applies one trial and records it; returns true when the criterion is met.
bool try_config(const Workload& w, const std::string& description,
                const ModelQuantConfig& config, const EvalProtocol& protocol,
                const TuneOptions& options, TuneResult& result) {
  TuneStep step;
  step.description = description;
  step.config = config;
  step.record = evaluate_workload_config(w, config, protocol);
  {
    Graph g = w.build();
    QuantizedGraph qg(&g, config);
    step.quantized_fraction = qg.quantized_compute_fraction();
  }
  step.met = step.record.passes(options.accuracy_criterion);
  const bool first = result.history.empty();
  const bool better =
      first || step.record.relative_loss() < result.best_record.relative_loss();
  result.history.push_back(step);
  if (better) {
    result.best = config;
    result.best_record = step.record;
  }
  if (step.met) result.success = true;
  return step.met;
}

}  // namespace

std::vector<std::pair<Graph::NodeId, double>> node_sensitivity(
    const Workload& w, const SchemeConfig& scheme, const EvalProtocol& protocol) {
  Graph g = w.build();
  const ModelQuantConfig base = default_model_config(w, scheme, protocol);
  // Node set actually covered under this config.
  std::set<Graph::NodeId> covered;
  {
    QuantizedGraph qg(&g, base);
    covered = qg.quantized_nodes();
  }

  std::vector<std::pair<Graph::NodeId, double>> sensitivity;
  sensitivity.reserve(covered.size());
  for (Graph::NodeId id : covered) {
    ModelQuantConfig solo = base;
    // Quantize only `id`: everything else falls back to FP32.
    for (Graph::NodeId other : covered) {
      if (other != id) solo.fallback_nodes.insert(other);
    }
    const AccuracyRecord rec = evaluate_workload_config(w, solo, protocol);
    sensitivity.emplace_back(id, rec.relative_loss());
  }
  std::sort(sensitivity.begin(), sensitivity.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return sensitivity;
}

TuneResult autotune(const Workload& w, DType preferred, const EvalProtocol& protocol,
                    const TuneOptions& options) {
  TuneResult result;
  auto budget = [&] { return result.trials() < options.max_trials; };

  // 1. Standard scheme, preferred format, static.
  const SchemeConfig standard = standard_fp8_scheme(preferred, false);
  if (try_config(w, std::string("standard ") + standard.label(),
                 default_model_config(w, standard, protocol), protocol, options, result)) {
    return result;
  }

  // 2. Dynamic activation quantization (no effect for E5M2's direct cast).
  if (preferred != DType::kE5M2 && budget()) {
    const SchemeConfig dynamic = standard_fp8_scheme(preferred, true);
    if (try_config(w, std::string("dynamic ") + dynamic.label(),
                   default_model_config(w, dynamic, protocol), protocol, options, result)) {
      return result;
    }
  }

  // 3. Mixed FP8 formats: E4M3 activations with E3M4 weights.
  if (budget()) {
    const SchemeConfig mixed = mixed_fp8_scheme();
    if (try_config(w, std::string("mixed ") + mixed.label(),
                   default_model_config(w, mixed, protocol), protocol, options, result)) {
      return result;
    }
  }

  // 4. The remaining FP8 formats, static then dynamic.
  for (DType fmt : {DType::kE4M3, DType::kE3M4, DType::kE5M2}) {
    if (fmt == preferred) continue;
    for (bool dyn : {false, true}) {
      if (fmt == DType::kE5M2 && dyn) continue;
      if (!budget()) break;
      const SchemeConfig alt = standard_fp8_scheme(fmt, dyn);
      if (try_config(w, std::string("alt-format ") + alt.label(),
                     default_model_config(w, alt, protocol), protocol, options, result)) {
        return result;
      }
    }
  }

  // 5. Operator-kind fallback on the best config so far.
  const ModelQuantConfig base = result.best;
  for (OpKind kind : {OpKind::kBatchMatMul, OpKind::kMatMul, OpKind::kEmbedding,
                      OpKind::kConv2d}) {
    if (!budget()) break;
    ModelQuantConfig cfg = base;
    if (cfg.fallback_kinds.contains(kind)) continue;
    cfg.fallback_kinds.insert(kind);
    if (try_config(w, std::string("fallback-kind ") + std::string(to_string(kind)), cfg,
                   protocol, options, result)) {
      return result;
    }
  }

  // 6. Per-node fallback, most sensitive first (cumulative).
  if (budget() && options.max_node_fallbacks > 0) {
    const auto sensitivity = node_sensitivity(w, base.scheme, protocol);
    ModelQuantConfig cfg = result.best;
    int disabled = 0;
    for (const auto& [id, loss] : sensitivity) {
      if (disabled >= options.max_node_fallbacks || !budget()) break;
      if (loss <= 0.0) break;  // remaining nodes are harmless
      cfg.fallback_nodes.insert(id);
      ++disabled;
      if (try_config(w, "fallback-node #" + std::to_string(id), cfg, protocol, options,
                     result)) {
        return result;
      }
    }
  }

  return result;
}

}  // namespace fp8q
