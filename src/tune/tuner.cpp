#include "tune/tuner.h"

#include <algorithm>
#include <optional>

#include "core/parallel.h"
#include "obs/histogram.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace fp8q {

namespace {

/// One candidate configuration of the tuning ladder.
struct Arm {
  std::string description;
  ModelQuantConfig config;
};

/// Evaluates one arm (accuracy record + quantized-compute fraction)
/// against the shared plan. The plan carries the trial-invariant state
/// (model prototype, data, FP32 targets), so each trial only pays for a
/// clone plus the quantized passes -- and repeated weights hit the
/// quantized-weight cache across trials.
TuneStep make_step(const EvalPlan& plan, const Arm& arm, const TuneOptions& options) {
  TuneStep step;
  step.description = arm.description;
  step.config = arm.config;
  std::optional<TraceSpan> span;
  if (trace_enabled()) span.emplace("tune/trial:" + arm.description);
  // Timing goes through the obs-owned clock: wall-clock reads outside
  // src/obs/ are a determinism hazard the linter rejects (fp8q_lint).
  const std::uint64_t t0 = obs_now_ns();
  step.record = evaluate_with_plan(plan, arm.config);
  {
    Graph g = plan.prototype.clone();
    QuantizedGraph qg(&g, arm.config);
    step.quantized_fraction = qg.quantized_compute_fraction();
  }
  step.eval_ms = static_cast<double>(obs_now_ns() - t0) / 1e6;
  step.met = step.record.passes(options.accuracy_criterion);
  return step;
}

/// Records an evaluated step (best/success bookkeeping); returns step.met.
/// Runs on the folding thread, so trials reach the active report in
/// deterministic history order even when the arms evaluated in parallel.
bool absorb(TuneResult& result, TuneStep step) {
  report_add_stage("trial:" + step.description, step.eval_ms);
  if (histograms_enabled()) {
    hist_record(HistChannel::kTuneTrialNs, step.eval_ms * 1e6);
  }
  const bool first = result.history.empty();
  const bool better =
      first || step.record.relative_loss() < result.best_record.relative_loss();
  if (better) {
    result.best = step.config;
    result.best_record = step.record;
  }
  if (step.met) result.success = true;
  result.history.push_back(std::move(step));
  return result.history.back().met;
}

/// Applies one trial and records it; returns true when the criterion is met.
bool try_config(const EvalPlan& plan, const std::string& description,
                const ModelQuantConfig& config, const TuneOptions& options,
                TuneResult& result) {
  return absorb(result, make_step(plan, {description, config}, options));
}

/// node_sensitivity against a prebuilt plan (autotune reuses its own).
std::vector<std::pair<Graph::NodeId, double>> node_sensitivity_with_plan(
    const EvalPlan& plan, const ModelQuantConfig& base) {
  ScopedStage stage("tune/sensitivity");
  Graph g = plan.prototype.clone();
  // Node set actually covered under this config.
  std::set<Graph::NodeId> covered;
  {
    QuantizedGraph qg(&g, base);
    covered = qg.quantized_nodes();
  }

  // One independent evaluation per node (quantize only that node) -- the
  // embarrassingly parallel half of the tuner. parallel_map returns the
  // losses in node order, so the sort below sees the same input sequence
  // at any thread count.
  const std::vector<Graph::NodeId> ids(covered.begin(), covered.end());
  const std::vector<double> losses =
      parallel_map(static_cast<std::int64_t>(ids.size()), [&](std::int64_t i) {
        ModelQuantConfig solo = base;
        for (Graph::NodeId other : covered) {
          if (other != ids[static_cast<std::size_t>(i)]) solo.fallback_nodes.insert(other);
        }
        return evaluate_with_plan(plan, solo).relative_loss();
      });

  std::vector<std::pair<Graph::NodeId, double>> sensitivity;
  sensitivity.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) sensitivity.emplace_back(ids[i], losses[i]);
  std::sort(sensitivity.begin(), sensitivity.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return sensitivity;
}

}  // namespace

std::vector<std::pair<Graph::NodeId, double>> node_sensitivity(
    const Workload& w, const SchemeConfig& scheme, const EvalProtocol& protocol) {
  return node_sensitivity_with_plan(make_eval_plan(w, protocol),
                                    default_model_config(w, scheme, protocol));
}

TuneResult autotune(const Workload& w, DType preferred, const EvalProtocol& protocol,
                    const TuneOptions& options) {
  TuneResult result;
  auto budget = [&] { return result.trials() < options.max_trials; };

  // All trial-invariant work (model build, data generation, FP32 teacher
  // passes) happens once; every trial below evaluates against this plan.
  const EvalPlan plan = make_eval_plan(w, protocol);

  // Stages 1-4 form a fixed ladder whose configurations do not depend on
  // earlier outcomes (only the early exit does), so the arms evaluate in
  // parallel and are folded in ladder order afterwards: history, best and
  // trial count are identical to the serial loop, which stops at (and
  // records) the first arm that meets the criterion.
  std::vector<Arm> arms;

  // 1. Standard scheme, preferred format, static.
  const SchemeConfig standard = standard_fp8_scheme(preferred, false);
  arms.push_back({std::string("standard ") + standard.label(),
                  default_model_config(w, standard, protocol)});

  // 2. Dynamic activation quantization (no effect for E5M2's direct cast).
  if (preferred != DType::kE5M2) {
    const SchemeConfig dynamic = standard_fp8_scheme(preferred, true);
    arms.push_back({std::string("dynamic ") + dynamic.label(),
                    default_model_config(w, dynamic, protocol)});
  }

  // 3. Mixed FP8 formats: E4M3 activations with E3M4 weights.
  {
    const SchemeConfig mixed = mixed_fp8_scheme();
    arms.push_back({std::string("mixed ") + mixed.label(),
                    default_model_config(w, mixed, protocol)});
  }

  // 4. The remaining FP8 formats, static then dynamic.
  for (DType fmt : {DType::kE4M3, DType::kE3M4, DType::kE5M2}) {
    if (fmt == preferred) continue;
    for (bool dyn : {false, true}) {
      if (fmt == DType::kE5M2 && dyn) continue;
      const SchemeConfig alt = standard_fp8_scheme(fmt, dyn);
      arms.push_back({std::string("alt-format ") + alt.label(),
                      default_model_config(w, alt, protocol)});
    }
  }

  // Stage 1 always runs even when max_trials <= 0 (matching the old
  // unconditional stage-1 behavior); a negative count must not convert to
  // a huge size_t.
  const int arm_budget = options.max_trials > 0 ? options.max_trials : 1;
  if (static_cast<int>(arms.size()) > arm_budget) {
    arms.resize(static_cast<std::size_t>(arm_budget));
  }
  {
    ScopedStage stage("tune/ladder");
    std::vector<TuneStep> steps =
        parallel_map(static_cast<std::int64_t>(arms.size()), [&](std::int64_t i) {
          return make_step(plan, arms[static_cast<std::size_t>(i)], options);
        });
    for (TuneStep& step : steps) {
      if (absorb(result, std::move(step))) return result;
    }
  }

  // 5. Operator-kind fallback on the best config so far.
  const ModelQuantConfig base = result.best;
  {
    ScopedStage stage("tune/fallback-kinds");
    for (OpKind kind : {OpKind::kBatchMatMul, OpKind::kMatMul, OpKind::kEmbedding,
                        OpKind::kConv2d}) {
      if (!budget()) break;
      ModelQuantConfig cfg = base;
      if (cfg.fallback_kinds.contains(kind)) continue;
      cfg.fallback_kinds.insert(kind);
      if (try_config(plan, std::string("fallback-kind ") + std::string(to_string(kind)),
                     cfg, options, result)) {
        return result;
      }
    }
  }

  // 6. Per-node fallback, most sensitive first (cumulative).
  if (budget() && options.max_node_fallbacks > 0) {
    ScopedStage stage("tune/fallback-nodes");
    const auto sensitivity =
        node_sensitivity_with_plan(plan, default_model_config(w, base.scheme, protocol));
    ModelQuantConfig cfg = result.best;
    int disabled = 0;
    for (const auto& [id, loss] : sensitivity) {
      if (disabled >= options.max_node_fallbacks || !budget()) break;
      if (loss <= 0.0) break;  // remaining nodes are harmless
      cfg.fallback_nodes.insert(id);
      ++disabled;
      if (try_config(plan, "fallback-node #" + std::to_string(id), cfg, options, result)) {
        return result;
      }
    }
  }

  return result;
}

}  // namespace fp8q
