#include "service/server.h"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "core/cpu_dispatch.h"
#include "core/parallel.h"
#include "fp8/format.h"
#include "obs/counters.h"
#include "obs/domain.h"
#include "obs/memory.h"
#include "obs/trace.h"
#include "quant/qconfig.h"
#include "quant/quantized_graph.h"
#include "quant/weight_cache.h"
#include "service/protocol.h"
#include "tensor/rng.h"
#include "tune/tuner.h"
#include "workloads/registry.h"

namespace fp8q::service {

namespace {

/// The CLI's scheme mapping (fp8q_cli scheme_from_args), shared verbatim
/// so a served job and a one-shot run resolve formats identically.
SchemeConfig scheme_for_spec(const JobSpec& spec) {
  if (spec.format == "INT8" || spec.format == "int8") return int8_scheme(spec.dynamic);
  if (spec.format == "mixed") return mixed_fp8_scheme();
  switch (fp8_kind_from_string(spec.format)) {
    case Fp8Kind::E5M2: return standard_fp8_scheme(DType::kE5M2, spec.dynamic);
    case Fp8Kind::E4M3: return standard_fp8_scheme(DType::kE4M3, spec.dynamic);
    case Fp8Kind::E3M4: return standard_fp8_scheme(DType::kE3M4, spec.dynamic);
  }
  throw std::runtime_error("unknown format \"" + spec.format + "\"");
}

/// Evaluation budget for a job: the full protocol, or the smoke-sized one
/// when the spec asks for quick (same shape the unit tests use -- seconds
/// instead of minutes per job, with every determinism property intact).
EvalProtocol protocol_for_spec(const JobSpec& spec) {
  EvalProtocol protocol;
  if (spec.quick) {
    protocol.calib_batches = 2;
    protocol.calib_batch_size = 8;
    protocol.eval_batches = 2;
    protocol.eval_batch_size = 32;
    protocol.bn_calibration_batches = 2;
  }
  return protocol;
}

DType preferred_tune_format(const std::string& format) {
  if (format == "E5M2" || format == "e5m2") return DType::kE5M2;
  if (format == "E3M4" || format == "e3m4") return DType::kE3M4;
  return DType::kE4M3;
}

void append_hist_ms(std::string& out, const char* key, const HistogramSnapshot& h) {
  out += '"';
  out += key;
  out += "\":{\"count\":";
  out += std::to_string(h.total);
  const double to_ms = 1.0 / 1e6;
  for (const auto& [name, q] : {std::pair{"p50", 0.50}, std::pair{"p95", 0.95},
                                std::pair{"p99", 0.99}}) {
    out += ",\"";
    out += name;
    out += "\":";
    out += std::to_string(h.quantile(q) * to_ms);
  }
  out += ",\"max\":";
  out += std::to_string((h.total != 0 ? h.max_value : 0.0) * to_ms);
  out += "}";
}

}  // namespace

ServerOptions options_from_env() {
  ServerOptions opts;
  const char* sock = std::getenv("FP8QD_SOCKET");
  opts.unix_path = (sock != nullptr && sock[0] != '\0') ? sock : "fp8qd.sock";
  if (const char* port = std::getenv("FP8QD_TCP_PORT"); port != nullptr && port[0] != '\0') {
    opts.tcp_port = std::atoi(port);
  }
  if (const char* qmax = std::getenv("FP8QD_QUEUE_MAX"); qmax != nullptr && qmax[0] != '\0') {
    const int n = std::atoi(qmax);
    if (n > 0) opts.queue_max = static_cast<std::size_t>(n);
  }
  if (const char* workers = std::getenv("FP8QD_WORKERS");
      workers != nullptr && workers[0] != '\0') {
    const int n = std::atoi(workers);
    if (n > 0) opts.workers = n;
  }
  return opts;
}

RunReport run_job_oneshot(const std::vector<Workload>& suite, const JobSpec& spec) {
  const Workload& w = find_workload(suite, spec.workload);
  const EvalProtocol protocol = protocol_for_spec(spec);

  RunReport report;
  report.tool = std::string("fp8qd ") + to_string(spec.kind);
  report.num_threads = num_threads();
  report.isa = isa_label();

  // The whole job body runs under a fresh observation domain: every
  // counter, cache/kernel event, allocation and histogram channel the job
  // (and its parallel fan-out) produces lands in `domain`, so the
  // report's counter blocks are this job's exact events -- no global
  // before/after snapshots, hence exact even with other jobs running
  // concurrently. The fold guard moves the tallies into the caller's
  // enclosing sink (normally the process globals) on every exit path, so
  // cumulative process-wide totals are unchanged by the detour.
  CounterDomain domain;
  struct FoldGuard {
    CounterDomain& domain;
    ~FoldGuard() { domain.fold_into_global(); }
  } fold_guard{domain};
  {
    ScopedCounterDomain domain_scope(&domain);
    ScopedThreadReport report_scope(&report);
    switch (spec.kind) {
      case JobKind::kEval: {
        report.records.push_back(evaluate_workload(w, scheme_for_spec(spec), protocol));
        break;
      }
      case JobKind::kTune: {
        TuneOptions options;
        if (spec.quick) options.max_trials = 6;
        const TuneResult r =
            autotune(w, preferred_tune_format(spec.format), protocol, options);
        for (const auto& step : r.history) report.records.push_back(step.record);
        break;
      }
      case JobKind::kQuantize: {
        ScopedStage stage("quantize:" + w.name);
        const ModelQuantConfig cfg = default_model_config(w, scheme_for_spec(spec), protocol);
        Graph graph = w.build();
        // Exactly make_eval_plan's calibration stream (same generator and
        // seed derivation), so quantize jobs hit the same weight-cache
        // entries the eval path populates.
        const auto& calib_gen = w.make_calib_batch ? w.make_calib_batch : w.make_batch;
        Rng calib_rng(w.data_seed * 7919 + 1);
        std::vector<std::vector<Tensor>> calib;
        calib.reserve(static_cast<std::size_t>(protocol.calib_batches));
        for (int b = 0; b < protocol.calib_batches; ++b) {
          calib.push_back(calib_gen(calib_rng, protocol.calib_batch_size));
        }
        QuantizedGraph quantized(&graph, cfg);
        quantized.prepare(std::span<const std::vector<Tensor>>(calib));
        break;
      }
    }
  }

  report.counters = domain.counters();
  report.weight_cache = domain.cache_counters();
  report.kernel_paths = domain.kernel_counters();
  const AllocCounterSnapshot alloc_delta = domain.alloc_counters();
  report.memory.alloc_bytes = alloc_delta.bytes;
  report.memory.allocs = alloc_delta.allocs;
  report.memory.peak_rss_bytes = peak_rss_bytes();
  return report;
}

Server::Server(ServerOptions options)
    : queue_(options.queue_max == 0 ? 1 : options.queue_max) {
  if (options.unix_path.empty() && options.tcp_port < 0) {
    throw std::runtime_error("fp8qd: no listener configured (need a socket path or a "
                             "TCP port)");
  }
  if (!options.unix_path.empty()) {
    unix_listener_ = listen_unix(options.unix_path);
    unix_path_ = options.unix_path;
  }
  if (options.tcp_port >= 0) {
    tcp_listener_ = listen_tcp_loopback(options.tcp_port);
    tcp_port_ = tcp_listener_.tcp_port();
  }
  workers_ = options.workers < 1 ? 1 : (options.workers > 64 ? 64 : options.workers);
  // Split the machine across the executor workers: each job's parallel
  // arena gets num_threads()/workers threads (at least 1), so full
  // occupancy never oversubscribes. Sampled once here -- the budget is
  // part of the server's configuration, not a per-job lookup.
  const int base_threads = num_threads();
  job_threads_ = base_threads / workers_ < 1 ? 1 : base_threads / workers_;
  slots_.resize(static_cast<std::size_t>(workers_));
  // The daemon always counts: per-job reports are the product it serves.
  set_counters_enabled(true);
  suite_ = build_suite();
  start_ns_ = obs_now_ns();
}

Server::~Server() {
  // run() joins the executors on the normal path; this covers a Server
  // that was constructed but whose run() threw or was never called.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drain_mode_ = true;
  }
  executor_cv_.notify_all();
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
}

void Server::request_shutdown() noexcept {
  shutdown_requested_.store(true, std::memory_order_relaxed);
  wake_.signal();
}

ServiceStats Server::stats_snapshot() const {
  const std::uint64_t now = obs_now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats s;
  s.uptime_ns = now - start_ns_;
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.expired = expired_;
  s.rejected = rejected_;
  s.queue_depth = queue_.size();
  s.queue_capacity = queue_.capacity();
  s.workers = workers_;
  s.job_threads = job_threads_;
  s.active_jobs = active_jobs_;
  s.job_running = active_jobs_ != 0;
  s.draining = drain_mode_;
  s.per_worker.reserve(slots_.size());
  for (const WorkerSlot& slot : slots_) {
    WorkerStats w;
    w.jobs = slot.jobs;
    std::uint64_t busy = slot.busy_ns;
    if (slot.busy_since_ns != 0 && now > slot.busy_since_ns) busy += now - slot.busy_since_ns;
    w.busy_fraction = s.uptime_ns != 0
                          ? static_cast<double>(busy) / static_cast<double>(s.uptime_ns)
                          : 0.0;
    if (w.busy_fraction > 1.0) w.busy_fraction = 1.0;
    s.per_worker.push_back(w);
  }
  s.job_wall_ns = job_wall_ns_.snap;
  s.queue_wait_ns = queue_wait_ns_.snap;
  return s;
}

void Server::executor_loop(int slot) {
  // This worker's slice of the parallel runtime: every job it runs fans
  // out over its own arena (budget job_threads_), so full occupancy uses
  // workers x job_threads_ <= num_threads() threads and jobs never
  // serialize on the global pool's region lock (core/parallel.h).
  ParallelArena arena(job_threads_);
  ScopedArenaBinding arena_binding(&arena);
  WorkerSlot& mine = slots_[static_cast<std::size_t>(slot)];
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      executor_cv_.wait(lock, [this] { return drain_mode_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Drain mode with nothing left: this worker is done for good.
        ++executors_done_;
        wake_.signal();
        return;
      }
      job = queue_.pop_best();
      if (expire_if_overdue_locked(*job, /*already_popped=*/true)) {
        wake_.signal();
        continue;
      }
      job->state = JobState::kRunning;
      job->start_ns = obs_now_ns();
      ++active_jobs_;
      ++mine.jobs;
      mine.busy_since_ns = job->start_ns;
    }

    // Run the job body outside the lock: submits/status/stats stay
    // responsive, and the other workers run their own jobs concurrently
    // -- each under its own observation domain (run_job_oneshot).
    std::string report_json;
    std::string error;
    try {
      report_json = run_job_oneshot(suite_, job->spec).to_json();
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown error";
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      job->finish_ns = obs_now_ns();
      if (error.empty()) {
        job->state = JobState::kDone;
        job->report_json = std::move(report_json);
        ++completed_;
      } else {
        job->state = JobState::kFailed;
        job->error = std::move(error);
        ++failed_;
      }
      job_wall_ns_.record(static_cast<double>(job->finish_ns - job->start_ns));
      queue_wait_ns_.record(static_cast<double>(job->start_ns - job->submit_ns));
      mine.busy_ns += job->finish_ns - job->start_ns;
      mine.busy_since_ns = 0;
      --active_jobs_;
    }
    if (histograms_enabled()) {
      hist_record_named("service:job_wall_ns",
                        static_cast<double>(job->finish_ns - job->start_ns));
      hist_record_named("service:queue_wait_ns",
                        static_cast<double>(job->start_ns - job->submit_ns));
    }
    wake_.signal();
  }
}

bool Server::expire_if_overdue_locked(Job& job, bool already_popped) {
  if (job.spec.deadline_ms <= 0.0 || job.state != JobState::kQueued) return false;
  const std::uint64_t now = obs_now_ns();
  if (static_cast<double>(now - job.submit_ns) <= job.spec.deadline_ms * 1e6) return false;
  // Dequeue path: the worker already popped the job, nothing to remove.
  // Observation path (status/result): the job must still be removable --
  // losing the remove race means a worker claimed it, and a claimed job
  // runs to completion.
  if (!already_popped && queue_.remove(job.id) == nullptr) return false;
  job.state = JobState::kExpired;
  job.finish_ns = now;
  job.error = "deadline of " + std::to_string(job.spec.deadline_ms) +
              " ms elapsed while queued";
  ++expired_;
  return true;
}

void Server::begin_drain(bool cancel_queued) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cancel_queued) {
      while (std::shared_ptr<Job> job = queue_.pop_best()) {
        job->state = JobState::kCancelled;
        job->finish_ns = obs_now_ns();
        job->error = "cancelled by non-draining shutdown";
        ++cancelled_;
      }
    }
    drain_mode_ = true;
  }
  executor_cv_.notify_all();
}

std::string Server::result_response_locked(const Job& job) {
  std::string out = "{\"ok\":true,\"job_id\":";
  out += std::to_string(job.id);
  out += ",\"state\":";
  append_json_string(out, to_string(job.state));
  if (job.state == JobState::kDone) {
    out += ",\"wall_ms\":";
    out += std::to_string(static_cast<double>(job.finish_ns - job.start_ns) / 1e6);
    out += ",\"queue_wait_ms\":";
    out += std::to_string(static_cast<double>(job.start_ns - job.submit_ns) / 1e6);
    out += ",\"report\":";
    out += job.report_json;  // already a JSON object
  } else if (is_terminal(job.state)) {
    out += ",\"error\":";
    append_json_string(out, job.error);
  }
  out += "}";
  return out;
}

std::string Server::stats_response_locked() {
  const WeightCacheStats cache = weight_cache_stats();
  const std::uint64_t lookups = cache.hits + cache.misses;

  std::string out = "{\"ok\":true,\"uptime_ms\":";
  out += std::to_string(static_cast<double>(obs_now_ns() - start_ns_) / 1e6);
  out += ",\"isa\":";
  append_json_string(out, isa_label());
  out += ",\"num_threads\":";
  out += std::to_string(num_threads());
  out += ",\"jobs\":{\"submitted\":";
  out += std::to_string(submitted_);
  out += ",\"completed\":";
  out += std::to_string(completed_);
  out += ",\"failed\":";
  out += std::to_string(failed_);
  out += ",\"cancelled\":";
  out += std::to_string(cancelled_);
  out += ",\"expired\":";
  out += std::to_string(expired_);
  out += ",\"rejected\":";
  out += std::to_string(rejected_);
  out += "},\"queue\":{\"depth\":";
  out += std::to_string(queue_.size());
  out += ",\"capacity\":";
  out += std::to_string(queue_.capacity());
  out += ",\"running\":";
  out += std::to_string(active_jobs_);
  out += ",\"draining\":";
  out += drain_mode_ ? "true" : "false";
  out += "},\"scheduler\":{\"workers\":";
  out += std::to_string(workers_);
  out += ",\"job_threads\":";
  out += std::to_string(job_threads_);
  out += ",\"active_jobs\":";
  out += std::to_string(active_jobs_);
  out += ",\"per_worker\":[";
  const std::uint64_t now = obs_now_ns();
  const std::uint64_t uptime = now - start_ns_;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const WorkerSlot& slot = slots_[i];
    std::uint64_t busy = slot.busy_ns;
    if (slot.busy_since_ns != 0 && now > slot.busy_since_ns) busy += now - slot.busy_since_ns;
    double fraction =
        uptime != 0 ? static_cast<double>(busy) / static_cast<double>(uptime) : 0.0;
    if (fraction > 1.0) fraction = 1.0;
    out += i == 0 ? "{" : ",{";
    out += "\"jobs\":";
    out += std::to_string(slot.jobs);
    out += ",\"busy_fraction\":";
    out += std::to_string(fraction);
    out += "}";
  }
  out += "]},\"weight_cache\":{\"hits\":";
  out += std::to_string(cache.hits);
  out += ",\"misses\":";
  out += std::to_string(cache.misses);
  out += ",\"evictions\":";
  out += std::to_string(cache.evictions);
  out += ",\"bypasses\":";
  out += std::to_string(cache.bypasses);
  out += ",\"bytes\":";
  out += std::to_string(cache.bytes);
  out += ",\"entries\":";
  out += std::to_string(cache.entries);
  out += ",\"hit_rate\":";
  out += std::to_string(lookups != 0 ? static_cast<double>(cache.hits) /
                                           static_cast<double>(lookups)
                                     : 0.0);
  out += "},\"latency_ms\":{";
  append_hist_ms(out, "job_wall", job_wall_ns_.snap);
  out += ",";
  append_hist_ms(out, "queue_wait", queue_wait_ns_.snap);
  out += "}}";
  return out;
}

std::optional<std::string> Server::handle_frame(const std::string& payload,
                                                Client& client) {
  Request req;
  try {
    req = parse_request(payload);
  } catch (const std::exception& e) {
    return error_response("bad_request", e.what());
  }

  switch (req.cmd) {
    case Request::Cmd::kSubmit: {
      // Validate outside the lock; both throw on bad input.
      try {
        (void)find_workload(suite_, req.spec.workload);
        (void)scheme_for_spec(req.spec);
      } catch (const std::exception& e) {
        return error_response("unknown_workload", e.what());
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (drain_mode_) {
        return error_response("draining", "server is shutting down; not accepting jobs");
      }
      auto job = std::make_shared<Job>();
      job->spec = req.spec;
      job->submit_ns = obs_now_ns();
      job->id = next_job_id_;
      if (!queue_.push(job)) {
        ++rejected_;
        return error_response("queue_full",
                              "admission queue is full (" +
                                  std::to_string(queue_.capacity()) +
                                  " jobs); retry after a result is consumed");
      }
      ++next_job_id_;
      ++submitted_;
      jobs_.emplace(job->id, job);
      executor_cv_.notify_one();
      std::string out = "{\"ok\":true,\"job_id\":";
      out += std::to_string(job->id);
      out += ",\"state\":\"queued\",\"queue_depth\":";
      out += std::to_string(queue_.size());
      out += "}";
      return out;
    }
    case Request::Cmd::kStatus: {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = jobs_.find(req.job_id);
      if (it == jobs_.end()) {
        return error_response("unknown_job", "no job " + std::to_string(req.job_id));
      }
      // A past-deadline job expires the moment anyone observes it, not
      // only when a worker would have dequeued it.
      if (expire_if_overdue_locked(*it->second)) wake_.signal();
      std::string out = "{\"ok\":true,\"job_id\":";
      out += std::to_string(req.job_id);
      out += ",\"state\":";
      append_json_string(out, to_string(it->second->state));
      out += ",\"queue_depth\":";
      out += std::to_string(queue_.size());
      out += "}";
      return out;
    }
    case Request::Cmd::kResult: {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = jobs_.find(req.job_id);
      if (it == jobs_.end()) {
        return error_response("unknown_job", "no job " + std::to_string(req.job_id));
      }
      if (expire_if_overdue_locked(*it->second)) wake_.signal();
      if (is_terminal(it->second->state)) return result_response_locked(*it->second);
      if (req.wait) {
        client.waiting.push_back(req.job_id);
        return std::nullopt;  // answered by flush_waiters when terminal
      }
      std::string out = "{\"ok\":true,\"job_id\":";
      out += std::to_string(req.job_id);
      out += ",\"state\":";
      append_json_string(out, to_string(it->second->state));
      out += "}";
      return out;
    }
    case Request::Cmd::kCancel: {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = jobs_.find(req.job_id);
      if (it == jobs_.end()) {
        return error_response("unknown_job", "no job " + std::to_string(req.job_id));
      }
      std::shared_ptr<Job> job = it->second;
      bool cancelled = false;
      if (job->state == JobState::kQueued && queue_.remove(req.job_id) != nullptr) {
        job->state = JobState::kCancelled;
        job->finish_ns = obs_now_ns();
        job->error = "cancelled by request";
        ++cancelled_;
        cancelled = true;
      }
      std::string out = "{\"ok\":true,\"job_id\":";
      out += std::to_string(req.job_id);
      out += ",\"cancelled\":";
      out += cancelled ? "true" : "false";
      out += ",\"state\":";
      append_json_string(out, to_string(job->state));
      out += "}";
      return out;
    }
    case Request::Cmd::kStats: {
      std::lock_guard<std::mutex> lock(mutex_);
      return stats_response_locked();
    }
    case Request::Cmd::kShutdown: {
      std::size_t queued = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        queued = queue_.size();
      }
      begin_drain(/*cancel_queued=*/!req.drain);
      std::string out = "{\"ok\":true,\"state\":\"draining\",\"queued\":";
      out += std::to_string(req.drain ? queued : 0);
      out += "}";
      return out;
    }
  }
  return error_response("bad_request", "unhandled command");
}

void Server::flush_waiters(std::vector<Client>& clients) {
  for (Client& client : clients) {
    if (client.waiting.empty() || !client.conn.valid()) continue;
    std::vector<std::string> responses;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::vector<std::uint64_t> still_waiting;
      for (const std::uint64_t id : client.waiting) {
        const auto it = jobs_.find(id);
        if (it != jobs_.end() && is_terminal(it->second->state)) {
          responses.push_back(result_response_locked(*it->second));
        } else {
          still_waiting.push_back(id);
        }
      }
      client.waiting = std::move(still_waiting);
    }
    for (const std::string& response : responses) {
      try {
        client.conn.send_frame(response);
      } catch (const std::exception&) {
        client.conn = Connection();  // peer vanished; drop the connection
        break;
      }
    }
  }
}

void Server::run() {
  executors_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    executors_.emplace_back([this, i] { executor_loop(i); });
  }
  std::vector<Client> clients;

  for (;;) {
    if (shutdown_requested_.exchange(false, std::memory_order_relaxed)) {
      begin_drain(/*cancel_queued=*/false);
    }

    // Exit once draining is complete and every answerable waiter has been
    // answered (all jobs are terminal at that point, so flush_waiters has
    // emptied the waiting lists).
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (drain_mode_ && executors_done_ == static_cast<std::size_t>(workers_)) break;
    }

    std::vector<PollFd> fds;
    fds.push_back(PollFd{wake_.read_fd(), false});
    if (unix_listener_.valid()) fds.push_back(PollFd{unix_listener_.fd(), false});
    if (tcp_listener_.valid()) fds.push_back(PollFd{tcp_listener_.fd(), false});
    const std::size_t first_client = fds.size();
    const std::size_t polled_clients = clients.size();
    for (const Client& client : clients) {
      if (client.conn.valid()) fds.push_back(PollFd{client.conn.fd(), false});
    }
    (void)poll_readable(fds, /*timeout_ms=*/250);

    std::size_t at = 0;
    if (fds[at++].readable) wake_.drain();
    for (Listener* listener : {&unix_listener_, &tcp_listener_}) {
      if (!listener->valid()) continue;
      if (fds[at++].readable) {
        while (auto conn = listener->accept_connection()) {
          clients.push_back(Client{std::move(*conn), {}});
        }
      }
    }

    // Read every readable connection and answer complete frames. fds
    // indexes only the connections that existed when polled -- clients
    // accepted above wait for the next poll round.
    std::size_t poll_idx = first_client;
    for (std::size_t ci = 0; ci < polled_clients; ++ci) {
      Client& client = clients[ci];
      if (!client.conn.valid()) continue;
      const bool readable = fds[poll_idx++].readable;
      if (!readable) continue;
      bool alive = true;
      try {
        alive = client.conn.fill_from_socket();
        while (auto frame = client.conn.next_buffered_frame()) {
          if (auto response = handle_frame(*frame, client)) {
            client.conn.send_frame(*response);
          }
        }
      } catch (const std::exception&) {
        // Malformed framing or a send failure: drop the connection. A
        // frame-level protocol error cannot be answered reliably because
        // the byte stream is no longer aligned.
        alive = false;
      }
      if (!alive) client.conn = Connection();
    }

    flush_waiters(clients);
    std::erase_if(clients, [](const Client& c) { return !c.conn.valid(); });
  }

  // Final flush: answer waiters whose jobs finished in the last executor
  // round before the loop observed the last executors_done_ increment.
  flush_waiters(clients);
  for (std::thread& t : executors_) t.join();
  executors_.clear();
}

}  // namespace fp8q::service
