#include "service/job_queue.h"

namespace fp8q::service {

bool JobQueue::push(std::shared_ptr<Job> job) {
  if (entries_.size() >= capacity_) return false;
  entries_.push_back(Entry{next_seq_++, std::move(job)});
  return true;
}

std::shared_ptr<Job> JobQueue::pop_best() {
  if (entries_.empty()) return nullptr;
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const Entry& b = entries_[best];
    if (e.job->spec.priority > b.job->spec.priority ||
        (e.job->spec.priority == b.job->spec.priority && e.seq < b.seq)) {
      best = i;
    }
  }
  std::shared_ptr<Job> job = std::move(entries_[best].job);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(best));
  return job;
}

std::shared_ptr<Job> JobQueue::remove(std::uint64_t id) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].job->id == id) {
      std::shared_ptr<Job> job = std::move(entries_[i].job);
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      return job;
    }
  }
  return nullptr;
}

}  // namespace fp8q::service
