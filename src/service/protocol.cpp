#include "service/protocol.h"

#include <stdexcept>

#include "io/json.h"

namespace fp8q::service {

namespace {

/// Boolean under `key` if present; `fallback` otherwise. Non-boolean
/// values are a protocol error (strictness mirrors io/json.h).
bool bool_or(const json::Value& v, std::string_view key, bool fallback) {
  const json::Value* f = v.find(key);
  if (f == nullptr) return fallback;
  if (f->kind != json::Value::Kind::kBool) {
    throw std::runtime_error(std::string("field \"") + std::string(key) +
                             "\" must be a boolean");
  }
  return f->boolean;
}

double number_field(const json::Value& v, std::string_view key, double fallback) {
  const json::Value* f = v.find(key);
  if (f == nullptr) return fallback;
  if (f->kind != json::Value::Kind::kNumber) {
    throw std::runtime_error(std::string("field \"") + std::string(key) +
                             "\" must be a number");
  }
  return f->number;
}

std::string string_field(const json::Value& v, std::string_view key) {
  const json::Value* f = v.find(key);
  if (f == nullptr) return {};
  if (f->kind != json::Value::Kind::kString) {
    throw std::runtime_error(std::string("field \"") + std::string(key) +
                             "\" must be a string");
  }
  return f->str;
}

std::uint64_t job_id_field(const json::Value& v) {
  const json::Value* f = v.find("job_id");
  if (f == nullptr || f->kind != json::Value::Kind::kNumber || f->number < 1 ||
      f->number != static_cast<double>(static_cast<std::uint64_t>(f->number))) {
    throw std::runtime_error("field \"job_id\" must be a positive integer");
  }
  return static_cast<std::uint64_t>(f->number);
}

}  // namespace

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kQuantize: return "quantize";
    case JobKind::kEval: return "eval";
    case JobKind::kTune: return "tune";
  }
  return "?";
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
  }
  return "?";
}

JobKind job_kind_from_string(std::string_view s) {
  if (s == "quantize") return JobKind::kQuantize;
  if (s == "eval") return JobKind::kEval;
  if (s == "tune") return JobKind::kTune;
  throw std::runtime_error("unknown job kind \"" + std::string(s) +
                           "\" (expected quantize | eval | tune)");
}

Request parse_request(std::string_view payload) {
  const json::Value root = json::parse(std::string(payload));
  if (!root.is_object()) throw std::runtime_error("request is not a JSON object");

  const std::string cmd = string_field(root, "cmd");
  if (cmd.empty()) throw std::runtime_error("missing \"cmd\" field");

  Request req;
  if (cmd == "submit") {
    req.cmd = Request::Cmd::kSubmit;
    req.spec.kind = job_kind_from_string(string_field(root, "kind"));
    req.spec.workload = string_field(root, "workload");
    if (req.spec.workload.empty()) {
      throw std::runtime_error("submit requires a \"workload\" name");
    }
    if (const json::Value* f = root.find("format"); f != nullptr) {
      req.spec.format = string_field(root, "format");
    }
    req.spec.dynamic = bool_or(root, "dynamic", false);
    req.spec.quick = bool_or(root, "quick", false);
    const double priority = number_field(root, "priority", 0.0);
    if (priority < -1000 || priority > 1000 ||
        priority != static_cast<double>(static_cast<int>(priority))) {
      throw std::runtime_error("\"priority\" must be an integer in [-1000, 1000]");
    }
    req.spec.priority = static_cast<int>(priority);
    req.spec.deadline_ms = number_field(root, "deadline_ms", 0.0);
    if (req.spec.deadline_ms < 0) {
      throw std::runtime_error("\"deadline_ms\" must be >= 0");
    }
    return req;
  }
  if (cmd == "status") {
    req.cmd = Request::Cmd::kStatus;
    req.job_id = job_id_field(root);
    return req;
  }
  if (cmd == "result") {
    req.cmd = Request::Cmd::kResult;
    req.job_id = job_id_field(root);
    req.wait = bool_or(root, "wait", false);
    return req;
  }
  if (cmd == "cancel") {
    req.cmd = Request::Cmd::kCancel;
    req.job_id = job_id_field(root);
    return req;
  }
  if (cmd == "stats") {
    req.cmd = Request::Cmd::kStats;
    return req;
  }
  if (cmd == "shutdown") {
    req.cmd = Request::Cmd::kShutdown;
    req.drain = bool_or(root, "drain", true);
    return req;
  }
  throw std::runtime_error("unknown command \"" + cmd +
                           "\" (expected submit | status | result | cancel | stats | "
                           "shutdown)");
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string error_response(std::string_view code, std::string_view message) {
  std::string out = "{\"ok\":false,\"code\":";
  append_json_string(out, code);
  out += ",\"error\":";
  append_json_string(out, message);
  out += "}";
  return out;
}

}  // namespace fp8q::service
