// Bounded admission queue for the fp8qd service (docs/SERVICE.md).
//
// Admission control is the service's overload story: the queue holds at
// most `capacity` jobs, and a submit that arrives when it is full is
// rejected immediately with a queue_full error rather than buffered --
// the client sees back-pressure instead of unbounded latency. Dispatch
// order is priority-then-FIFO: pop_best() returns the highest-priority
// queued job, oldest first within a priority, which is deterministic for
// any submission history.
//
// Not internally synchronized: the Server guards it with its own mutex
// (the queue is touched from the poll loop and the executor thread, both
// under that lock). Linear scans are fine -- capacity is O(64), and each
// job behind it runs for milliseconds to minutes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace fp8q::service {

/// One submitted job, shared between the queue, the id table, the
/// executor and any waiting result responses. All fields are guarded by
/// the Server's mutex after submission.
struct Job {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::uint64_t submit_ns = 0;  ///< obs_now_ns() at admission
  std::uint64_t start_ns = 0;   ///< when the executor picked it up
  std::uint64_t finish_ns = 0;  ///< when it reached a terminal state
  std::string report_json;      ///< report-v4 JSON (state == kDone)
  std::string error;            ///< failure reason (kFailed/kExpired/kCancelled)
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admits a job; false when the queue is at capacity (caller rejects).
  bool push(std::shared_ptr<Job> job);

  /// Removes and returns the best queued job: max priority, then earliest
  /// admission. nullptr when empty.
  [[nodiscard]] std::shared_ptr<Job> pop_best();

  /// Removes a specific queued job (cancel path). nullptr when `id` is
  /// not in the queue (already running, finished, or never admitted).
  [[nodiscard]] std::shared_ptr<Job> remove(std::uint64_t id);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    std::uint64_t seq = 0;  ///< admission order, for FIFO within a priority
    std::shared_ptr<Job> job;
  };

  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace fp8q::service
