// Socket transport for the fp8qd service (docs/SERVICE.md).
//
// Everything POSIX lives behind this header: RAII file descriptors,
// Unix-domain / loopback-TCP listeners, a framed connection, a self-pipe
// for waking the poll loop from another thread, and a thin poll(2)
// wrapper. net_posix.cpp is the single translation unit in src/ that is
// allowed to call the raw socket syscalls (accept/read/write/recv/send);
// the `raw-socket-io` rule of tools/fp8q_lint.cpp enforces that every
// other file goes through this API, so EINTR handling, partial-write
// loops and frame-size limits are audited in one place.
//
// Framing: every message in either direction is one frame,
//
//   <decimal payload length> '\n' <payload bytes>
//
// e.g. "17\n{\"cmd\":\"status\"}" + one JSON document as the payload.
// The length prefix makes message boundaries explicit without escaping
// rules, keeps the wire format printf/netcat-debuggable, and lets the
// reader reject oversized frames (kMaxFrameBytes) before buffering them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fp8q::service {

/// Hard cap on one frame's payload. Large enough for any report-v4 JSON
/// (full 75-workload sweeps serialize well under 1 MB), small enough that
/// a malicious or corrupt length prefix cannot make the server buffer
/// unbounded memory.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// One framed byte stream. Client side uses the blocking calls
/// (send_frame / recv_frame); the server's poll loop uses the
/// non-blocking pair (fill_from_socket / next_buffered_frame) so one slow
/// connection never stalls the others.
class Connection {
 public:
  Connection() = default;
  explicit Connection(Fd fd) : fd_(std::move(fd)) {}

  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] int fd() const { return fd_.get(); }

  /// Writes one complete frame (blocking; loops over partial writes).
  /// Throws std::runtime_error on EPIPE/reset or oversized payload.
  void send_frame(std::string_view payload);

  /// Blocks until one complete frame arrives. Returns std::nullopt on
  /// clean EOF at a frame boundary; throws on malformed framing,
  /// oversized frames, or mid-frame EOF.
  [[nodiscard]] std::optional<std::string> recv_frame();

  /// Non-blocking read into the internal buffer. Returns false when the
  /// peer closed (or errored); true while the connection is live, even if
  /// no bytes were available. Throws on malformed framing.
  [[nodiscard]] bool fill_from_socket();

  /// Pops the next complete frame out of the internal buffer, if one has
  /// fully arrived. Throws on malformed framing (bad length prefix).
  [[nodiscard]] std::optional<std::string> next_buffered_frame();

 private:
  Fd fd_;
  std::string inbuf_;
};

/// A listening socket. Unix-domain sockets unlink their path on
/// destruction; TCP listeners bind to 127.0.0.1 only (the service speaks
/// an unauthenticated protocol, see docs/SERVICE.md).
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] int fd() const { return fd_.get(); }
  /// Bound TCP port (valid after listen_tcp; useful with port 0).
  [[nodiscard]] int tcp_port() const { return tcp_port_; }
  [[nodiscard]] const std::string& unix_path() const { return unix_path_; }

  /// Accepts one pending connection; std::nullopt when none is pending
  /// (the listener is non-blocking).
  [[nodiscard]] std::optional<Connection> accept_connection();

  friend Listener listen_unix(const std::string& path);
  friend Listener listen_tcp_loopback(int port);

 private:
  Fd fd_;
  std::string unix_path_;  ///< unlinked on destruction when non-empty
  int tcp_port_ = -1;
};

/// Binds + listens on a Unix-domain socket at `path` (an existing socket
/// file at that path is replaced). Throws std::runtime_error on failure.
[[nodiscard]] Listener listen_unix(const std::string& path);

/// Binds + listens on 127.0.0.1:`port` (0 picks an ephemeral port, read
/// it back with tcp_port()). Throws std::runtime_error on failure.
[[nodiscard]] Listener listen_tcp_loopback(int port);

/// Client connect calls. Throw std::runtime_error on failure.
[[nodiscard]] Connection connect_unix(const std::string& path);
[[nodiscard]] Connection connect_tcp_loopback(int port);

/// Self-pipe for waking the server's poll loop from the executor thread
/// or a signal handler. signal() is async-signal-safe (one write(2) of
/// one byte, EAGAIN ignored -- a full pipe already guarantees a wakeup).
class WakePipe {
 public:
  WakePipe();  ///< throws std::runtime_error on pipe() failure

  [[nodiscard]] int read_fd() const { return read_end_.get(); }
  void signal() const noexcept;
  /// Consumes every pending wake byte (call when read_fd polls readable).
  void drain() const;

 private:
  Fd read_end_;
  Fd write_end_;
};

/// One poll(2) entry: fd in, readable out.
struct PollFd {
  int fd = -1;
  bool readable = false;
};

/// Waits until at least one fd is readable or `timeout_ms` elapses
/// (negative = wait forever). Returns the number of readable fds; retries
/// EINTR internally.
int poll_readable(std::vector<PollFd>& fds, int timeout_ms);

}  // namespace fp8q::service
