// POSIX implementation of the service transport (see net.h). This is the
// one translation unit in src/ permitted to use the raw socket syscalls;
// the `raw-socket-io` lint rule points everyone else here.
#include "service/net.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fp8q::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// Parses "<decimal>\n" at the front of `buf`. Returns the payload length
/// and sets `header_len`; std::nullopt when the prefix is still
/// incomplete. Throws on a malformed or oversized prefix.
std::optional<std::size_t> parse_length_prefix(const std::string& buf,
                                               std::size_t* header_len) {
  // Longest valid prefix: kMaxFrameBytes has 8 digits; allow 9 + '\n'.
  constexpr std::size_t kMaxPrefix = 10;
  std::size_t value = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const char c = buf[i];
    if (c == '\n') {
      if (i == 0) throw std::runtime_error("fp8qd frame: empty length prefix");
      if (value > kMaxFrameBytes) {
        throw std::runtime_error("fp8qd frame: payload length " + std::to_string(value) +
                                 " exceeds the " + std::to_string(kMaxFrameBytes) +
                                 "-byte frame cap");
      }
      *header_len = i + 1;
      return value;
    }
    if (c < '0' || c > '9' || i >= kMaxPrefix) {
      throw std::runtime_error("fp8qd frame: malformed length prefix");
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return std::nullopt;  // prefix not fully received yet
}

}  // namespace

// --- Fd ---------------------------------------------------------------

Fd::~Fd() { reset(); }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

// --- Connection -------------------------------------------------------

void Connection::send_frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("fp8qd frame: payload exceeds the frame cap");
  }
  std::string frame = std::to_string(payload.size());
  frame += '\n';
  frame += payload;
  std::size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t n =
        ::send(fd_.get(), frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("fp8qd send");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> Connection::recv_frame() {
  for (;;) {
    if (auto frame = next_buffered_frame()) return frame;
    char chunk[4096];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("fp8qd recv");
    }
    if (n == 0) {
      if (!inbuf_.empty()) {
        throw std::runtime_error("fp8qd recv: connection closed mid-frame");
      }
      return std::nullopt;
    }
    inbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Connection::fill_from_socket() {
  for (;;) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof chunk, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // ECONNRESET etc.: treat like EOF
    }
    if (n == 0) return false;
    inbuf_.append(chunk, static_cast<std::size_t>(n));
    // Fast-fail oversized frames before the sender finishes streaming one.
    std::size_t header_len = 0;
    (void)parse_length_prefix(inbuf_, &header_len);
  }
}

std::optional<std::string> Connection::next_buffered_frame() {
  std::size_t header_len = 0;
  const auto payload_len = parse_length_prefix(inbuf_, &header_len);
  if (!payload_len) return std::nullopt;
  if (inbuf_.size() < header_len + *payload_len) return std::nullopt;
  std::string payload = inbuf_.substr(header_len, *payload_len);
  inbuf_.erase(0, header_len + *payload_len);
  return payload;
}

// --- Listener ---------------------------------------------------------

Listener::~Listener() {
  if (!unix_path_.empty()) (void)::unlink(unix_path_.c_str());
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::move(other.fd_)),
      unix_path_(std::move(other.unix_path_)),
      tcp_port_(other.tcp_port_) {
  other.unix_path_.clear();
  other.tcp_port_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (!unix_path_.empty()) (void)::unlink(unix_path_.c_str());
    fd_ = std::move(other.fd_);
    unix_path_ = std::move(other.unix_path_);
    tcp_port_ = other.tcp_port_;
    other.unix_path_.clear();
    other.tcp_port_ = -1;
  }
  return *this;
}

std::optional<Connection> Listener::accept_connection() {
  for (;;) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
      throw_errno("fp8qd accept");
    }
    set_cloexec(fd);
    set_nonblocking(fd);
    return Connection(Fd(fd));
  }
}

Listener listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("fp8qd listen: socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("fp8qd socket(AF_UNIX)");
  set_cloexec(fd.get());
  (void)::unlink(path.c_str());  // replace a stale socket file
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw_errno("fp8qd bind " + path);
  }
  if (::listen(fd.get(), 64) < 0) throw_errno("fp8qd listen " + path);
  set_nonblocking(fd.get());

  Listener l;
  l.fd_ = std::move(fd);
  l.unix_path_ = path;
  return l;
}

Listener listen_tcp_loopback(int port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("fp8qd socket(AF_INET)");
  set_cloexec(fd.get());
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw_errno("fp8qd bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd.get(), 64) < 0) throw_errno("fp8qd listen tcp");
  set_nonblocking(fd.get());

  socklen_t len = sizeof addr;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("fp8qd getsockname");
  }

  Listener l;
  l.fd_ = std::move(fd);
  l.tcp_port_ = static_cast<int>(ntohs(addr.sin_port));
  return l;
}

Connection connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("fp8qd connect: socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("fp8qd socket(AF_UNIX)");
  set_cloexec(fd.get());
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw_errno("fp8qd connect " + path);
  }
  return Connection(std::move(fd));
}

Connection connect_tcp_loopback(int port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("fp8qd socket(AF_INET)");
  set_cloexec(fd.get());
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw_errno("fp8qd connect 127.0.0.1:" + std::to_string(port));
  }
  return Connection(std::move(fd));
}

// --- WakePipe ---------------------------------------------------------

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("fp8qd pipe");
  read_end_.reset(fds[0]);
  write_end_.reset(fds[1]);
  set_cloexec(fds[0]);
  set_cloexec(fds[1]);
  set_nonblocking(fds[0]);
  set_nonblocking(fds[1]);
}

void WakePipe::signal() const noexcept {
  const char byte = 1;
  // EAGAIN means the pipe already holds unread wake bytes -- the poll loop
  // is guaranteed to wake, so dropping this byte is fine. Any other error
  // is ignored too: this runs from signal handlers.
  (void)!::write(write_end_.get(), &byte, 1);
}

void WakePipe::drain() const {
  char sink[64];
  while (::read(read_end_.get(), sink, sizeof sink) > 0) {
  }
}

// --- poll -------------------------------------------------------------

int poll_readable(std::vector<PollFd>& fds, int timeout_ms) {
  std::vector<pollfd> raw(fds.size());
  for (std::size_t i = 0; i < fds.size(); ++i) {
    raw[i] = pollfd{fds[i].fd, POLLIN, 0};
    fds[i].readable = false;
  }
  for (;;) {
    const int n = ::poll(raw.data(), raw.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("fp8qd poll");
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      // HUP/ERR count as readable: the next read observes EOF/error and
      // the connection is torn down there, not here.
      fds[i].readable = (raw[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    }
    return n;
  }
}

}  // namespace fp8q::service
