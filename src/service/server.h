// The fp8qd resident quantization server (docs/SERVICE.md).
//
// Turns the one-shot CLI workflow into a long-running daemon: clients
// connect over a Unix-domain (or loopback-TCP) socket, submit
// quantize/eval/tune jobs against the 75-workload suite, and stream back
// the same structured report-v4 JSON the CLI writes -- with the process
// staying resident, so the quantized-weight cache (quant/weight_cache.h)
// and the warmed thread pool carry over between requests.
//
// Concurrency model: one poll(2) I/O thread (the caller of run())
// multiplexes every connection and owns all protocol state, and one
// executor thread runs jobs strictly one at a time, each job fanning out
// internally over the core/parallel pool. Serializing job *execution* is
// what makes per-job reports exact: the executor snapshots the
// process-global counters before and after a job and stores the delta,
// which -- because counter totals are deterministic and thread-count-
// invariant (docs/THREADING.md), and the weight cache replays miss
// tallies on hits -- equals the counters a fresh one-shot run of the same
// job would report. Concurrency for clients comes from the bounded
// priority queue in front of the executor, not from overlapping jobs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.h"
#include "obs/histogram.h"
#include "obs/report.h"
#include "service/job_queue.h"
#include "service/net.h"
#include "workloads/workload.h"

// Lint note (tools/fp8q_lint.cpp raw-thread rule): service/server.cpp is
// exempt -- the daemon's executor is a long-lived service thread by
// design, not pool work; everything *inside* a job still runs on the
// core/parallel pool.
#include <condition_variable>

namespace fp8q::service {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string unix_path;
  /// Loopback TCP port: -1 disables, 0 picks an ephemeral port.
  int tcp_port = -1;
  /// Admission-queue capacity (jobs queued beyond the one running).
  std::size_t queue_max = 64;
};

/// ServerOptions from the environment: FP8QD_SOCKET (default
/// "fp8qd.sock"), FP8QD_TCP_PORT, FP8QD_QUEUE_MAX.
[[nodiscard]] ServerOptions options_from_env();

/// Point-in-time service statistics (the stats endpoint's source).
struct ServiceStats {
  std::uint64_t uptime_ns = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t rejected = 0;  ///< queue_full submit rejections
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  bool job_running = false;
  bool draining = false;
  HistogramSnapshot job_wall_ns;    ///< executor wall time per finished job
  HistogramSnapshot queue_wait_ns;  ///< admission -> executor pickup
};

/// Executes one job spec end to end and returns its report -- exactly the
/// code path the daemon's executor runs, minus the queueing. Public so the
/// end-to-end test (and any embedder) can compare a served job's report
/// against a direct one-shot run of the same spec. Throws on unknown
/// workloads/formats and on job-body failures.
[[nodiscard]] RunReport run_job_oneshot(const std::vector<Workload>& suite,
                                        const JobSpec& spec);

class Server {
 public:
  /// Binds the listeners and builds the workload suite; throws
  /// std::runtime_error when a socket cannot be bound.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] const std::string& unix_path() const { return unix_path_; }
  /// Bound TCP port, or -1 when the TCP listener is disabled.
  [[nodiscard]] int tcp_port() const { return tcp_port_; }

  /// Serves until a shutdown request has been honored and the executor
  /// drained. Call from exactly one thread; it becomes the I/O thread.
  void run();

  /// Requests a draining shutdown from any thread or signal handler
  /// (async-signal-safe: one atomic store + one self-pipe write).
  void request_shutdown() noexcept;

  /// Snapshot for embedders/tools (the JSON stats endpoint carries the
  /// same numbers plus weight-cache and ISA details).
  [[nodiscard]] ServiceStats stats_snapshot() const;

 private:
  struct Client {
    Connection conn;
    std::vector<std::uint64_t> waiting;  ///< deferred result-wait job ids
  };

  void executor_loop();
  /// Handles one request frame; nullopt when the response is deferred
  /// (result with wait=true on a non-terminal job).
  [[nodiscard]] std::optional<std::string> handle_frame(const std::string& payload,
                                                        Client& client);
  /// Answers every deferred result-wait whose job reached a terminal
  /// state.
  void flush_waiters(std::vector<Client>& clients);
  /// Enters drain mode; with cancel_queued, empties the queue as
  /// kCancelled first.
  void begin_drain(bool cancel_queued);

  // "_locked" = caller holds mutex_.
  [[nodiscard]] std::string result_response_locked(const Job& job);
  [[nodiscard]] std::string stats_response_locked();

  // Immutable after construction.
  Listener unix_listener_;
  Listener tcp_listener_;
  std::string unix_path_;
  int tcp_port_ = -1;
  std::vector<Workload> suite_;
  std::uint64_t start_ns_ = 0;

  WakePipe wake_;
  std::atomic<bool> shutdown_requested_{false};

  mutable std::mutex mutex_;
  std::condition_variable executor_cv_;
  JobQueue queue_ FP8Q_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_ FP8Q_GUARDED_BY(mutex_);
  std::uint64_t next_job_id_ FP8Q_GUARDED_BY(mutex_) = 1;
  std::shared_ptr<Job> running_ FP8Q_GUARDED_BY(mutex_);
  bool drain_mode_ FP8Q_GUARDED_BY(mutex_) = false;
  bool executor_done_ FP8Q_GUARDED_BY(mutex_) = false;
  std::uint64_t submitted_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t failed_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t cancelled_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t expired_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ FP8Q_GUARDED_BY(mutex_) = 0;
  LocalHistogram job_wall_ns_ FP8Q_GUARDED_BY(mutex_);
  LocalHistogram queue_wait_ns_ FP8Q_GUARDED_BY(mutex_);

  std::thread executor_;
};

}  // namespace fp8q::service
