// The fp8qd resident quantization server (docs/SERVICE.md).
//
// Turns the one-shot CLI workflow into a long-running daemon: clients
// connect over a Unix-domain (or loopback-TCP) socket, submit
// quantize/eval/tune jobs against the 75-workload suite, and stream back
// the same structured report-v4 JSON the CLI writes -- with the process
// staying resident, so the quantized-weight cache (quant/weight_cache.h)
// and the warmed thread pool carry over between requests.
//
// Concurrency model: one poll(2) I/O thread (the caller of run())
// multiplexes every connection and owns all protocol state, and a pool of
// FP8QD_WORKERS executor threads pulls jobs from the bounded priority
// queue and runs them CONCURRENTLY. Two mechanisms make that correct:
//
//   * Scoped observation domains (obs/domain.h): every job runs under a
//     fresh CounterDomain, bound on its executor and propagated to the
//     core/parallel threads it fans out to, so its report-v4 counter
//     blocks are exact per-job deltas by construction -- bit-identical to
//     a one-shot run of the same spec at any worker count and any
//     interleaving (the weight cache replays miss tallies on hits into
//     the calling job's domain). The domain folds into the process
//     globals when the job finishes, so cumulative totals still add up.
//   * Per-worker arenas (core/parallel.h, ParallelArena): each executor
//     owns a max(1, num_threads()/workers)-budget slice of the parallel
//     runtime, so N workers x M pool threads never oversubscribe the
//     machine and jobs never serialize on the global pool's region lock.
//
// The weight-cache mutex (bookkeeping only; payload delivery happens
// outside it) is the one remaining cross-job serialization point.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.h"
#include "obs/histogram.h"
#include "obs/report.h"
#include "service/job_queue.h"
#include "service/net.h"
#include "workloads/workload.h"

// Lint note (tools/fp8q_lint.cpp raw-thread rule): service/server.cpp is
// exempt -- the daemon's executor is a long-lived service thread by
// design, not pool work; everything *inside* a job still runs on the
// core/parallel pool.
#include <condition_variable>

namespace fp8q::service {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string unix_path;
  /// Loopback TCP port: -1 disables, 0 picks an ephemeral port.
  int tcp_port = -1;
  /// Admission-queue capacity (jobs queued beyond the ones running).
  std::size_t queue_max = 64;
  /// Executor worker count: jobs running concurrently, each under its own
  /// observation domain and a num_threads()/workers parallel arena.
  /// Clamped to [1, 64].
  int workers = 1;
};

/// ServerOptions from the environment: FP8QD_SOCKET (default
/// "fp8qd.sock"), FP8QD_TCP_PORT, FP8QD_QUEUE_MAX, FP8QD_WORKERS.
[[nodiscard]] ServerOptions options_from_env();

/// One executor worker's utilization (the stats endpoint's per_worker row).
struct WorkerStats {
  std::uint64_t jobs = 0;      ///< jobs this worker picked up
  double busy_fraction = 0.0;  ///< busy wall time / server uptime, [0, 1]
};

/// Point-in-time service statistics (the stats endpoint's source).
struct ServiceStats {
  std::uint64_t uptime_ns = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t rejected = 0;  ///< queue_full submit rejections
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  int workers = 1;              ///< executor worker count
  int job_threads = 1;          ///< per-job parallel arena budget
  std::size_t active_jobs = 0;  ///< jobs running right now (<= workers)
  bool job_running = false;     ///< active_jobs != 0 (pre-scheduler field)
  bool draining = false;
  std::vector<WorkerStats> per_worker;  ///< one row per executor worker
  HistogramSnapshot job_wall_ns;    ///< executor wall time per finished job
  HistogramSnapshot queue_wait_ns;  ///< admission -> executor pickup
};

/// Executes one job spec end to end and returns its report -- exactly the
/// code path the daemon's executors run, minus the queueing. The job body
/// runs under a fresh CounterDomain (obs/domain.h) that folds into the
/// caller's enclosing sink on return, so the report's counter blocks are
/// the job's exact events whether the caller is an executor worker, a
/// test, or an embedder -- served and one-shot runs are the same code by
/// construction. Public so the end-to-end tests can compare a served
/// job's report against a direct run of the same spec. Throws on unknown
/// workloads/formats and on job-body failures.
[[nodiscard]] RunReport run_job_oneshot(const std::vector<Workload>& suite,
                                        const JobSpec& spec);

class Server {
 public:
  /// Binds the listeners and builds the workload suite; throws
  /// std::runtime_error when a socket cannot be bound.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] const std::string& unix_path() const { return unix_path_; }
  /// Bound TCP port, or -1 when the TCP listener is disabled.
  [[nodiscard]] int tcp_port() const { return tcp_port_; }

  /// Serves until a shutdown request has been honored and the executor
  /// drained. Call from exactly one thread; it becomes the I/O thread.
  void run();

  /// Requests a draining shutdown from any thread or signal handler
  /// (async-signal-safe: one atomic store + one self-pipe write).
  void request_shutdown() noexcept;

  /// Snapshot for embedders/tools (the JSON stats endpoint carries the
  /// same numbers plus weight-cache and ISA details).
  [[nodiscard]] ServiceStats stats_snapshot() const;

 private:
  struct Client {
    Connection conn;
    std::vector<std::uint64_t> waiting;  ///< deferred result-wait job ids
  };

  void executor_loop(int slot);
  /// Expires a queued, past-deadline job. Called at dequeue (the worker
  /// just popped it: already_popped) AND when a status/result request
  /// observes a pending job -- so expiry does not wait for a worker to
  /// come free. In the observation path the job must still be removable
  /// from the queue; losing that race means a worker claimed it, and a
  /// claimed job runs. Returns true when the job was expired. Caller
  /// holds mutex_.
  bool expire_if_overdue_locked(Job& job, bool already_popped = false);
  /// Handles one request frame; nullopt when the response is deferred
  /// (result with wait=true on a non-terminal job).
  [[nodiscard]] std::optional<std::string> handle_frame(const std::string& payload,
                                                        Client& client);
  /// Answers every deferred result-wait whose job reached a terminal
  /// state.
  void flush_waiters(std::vector<Client>& clients);
  /// Enters drain mode; with cancel_queued, empties the queue as
  /// kCancelled first.
  void begin_drain(bool cancel_queued);

  // "_locked" = caller holds mutex_.
  [[nodiscard]] std::string result_response_locked(const Job& job);
  [[nodiscard]] std::string stats_response_locked();

  /// One executor worker's utilization ledger. busy_since_ns != 0 marks a
  /// job in flight; the stats endpoint adds the open interval so
  /// busy_fraction is live, not end-of-job.
  struct WorkerSlot {
    std::uint64_t jobs = 0;
    std::uint64_t busy_ns = 0;
    std::uint64_t busy_since_ns = 0;  ///< 0 = idle
  };

  // Immutable after construction.
  Listener unix_listener_;
  Listener tcp_listener_;
  std::string unix_path_;
  int tcp_port_ = -1;
  std::vector<Workload> suite_;
  std::uint64_t start_ns_ = 0;
  int workers_ = 1;       ///< executor worker count
  int job_threads_ = 1;   ///< per-job parallel arena budget

  WakePipe wake_;
  std::atomic<bool> shutdown_requested_{false};

  mutable std::mutex mutex_;
  std::condition_variable executor_cv_;
  JobQueue queue_ FP8Q_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_ FP8Q_GUARDED_BY(mutex_);
  std::uint64_t next_job_id_ FP8Q_GUARDED_BY(mutex_) = 1;
  std::size_t active_jobs_ FP8Q_GUARDED_BY(mutex_) = 0;
  bool drain_mode_ FP8Q_GUARDED_BY(mutex_) = false;
  std::size_t executors_done_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::vector<WorkerSlot> slots_ FP8Q_GUARDED_BY(mutex_);
  std::uint64_t submitted_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t failed_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t cancelled_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t expired_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ FP8Q_GUARDED_BY(mutex_) = 0;
  LocalHistogram job_wall_ns_ FP8Q_GUARDED_BY(mutex_);
  LocalHistogram queue_wait_ns_ FP8Q_GUARDED_BY(mutex_);

  std::vector<std::thread> executors_;
};

}  // namespace fp8q::service
