// The fp8qd wire protocol: request parsing and response building
// (docs/SERVICE.md has the full spec with examples).
//
// Every frame payload is one JSON object. Requests carry a "cmd" field
// (submit / status / result / cancel / stats / shutdown); responses always
// carry "ok" (true/false) and, on failure, a stable machine-readable
// "code" plus a human-readable "error". Requests are parsed with the
// hardened io/json reader -- a truncated or malformed request throws and
// is answered with a bad_request error, never half-applied.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fp8q::service {

/// What a submitted job runs. Mirrors the fp8q_cli subcommands.
enum class JobKind : std::uint8_t {
  kQuantize,  ///< PTQ pipeline only (QuantizedGraph::prepare), no scoring
  kEval,      ///< full PTQ + fidelity evaluation (evaluate_workload)
  kTune,      ///< accuracy-driven autotune ladder
};

/// Job lifecycle. Terminal states: kDone, kFailed, kCancelled, kExpired.
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,     ///< the job body threw; the error string is retained
  kCancelled,  ///< removed from the queue by a cancel request (or shutdown)
  kExpired,    ///< deadline_ms elapsed before the job reached the executor
};

[[nodiscard]] const char* to_string(JobKind kind);
[[nodiscard]] const char* to_string(JobState state);

/// Parses "quantize" / "eval" / "tune"; throws std::runtime_error.
[[nodiscard]] JobKind job_kind_from_string(std::string_view s);

/// True when the state is final (the job will never change again).
[[nodiscard]] constexpr bool is_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled || state == JobState::kExpired;
}

/// One job request, as carried by a submit command.
struct JobSpec {
  JobKind kind = JobKind::kEval;
  std::string workload;        ///< suite workload name, e.g. "dlrm-ish"
  std::string format = "E4M3"; ///< E5M2 | E4M3 | E3M4 | INT8 | mixed
  bool dynamic = false;        ///< dynamic activation quantization (eval)
  bool quick = false;          ///< smoke-sized EvalProtocol (see protocol.cpp)
  int priority = 0;            ///< higher runs first; ties are FIFO
  double deadline_ms = 0.0;    ///< queue-wait budget; 0 = none
};

/// One parsed request frame.
struct Request {
  enum class Cmd : std::uint8_t { kSubmit, kStatus, kResult, kCancel, kStats, kShutdown };

  Cmd cmd = Cmd::kStats;
  JobSpec spec;               ///< submit only
  std::uint64_t job_id = 0;   ///< status / result / cancel
  bool wait = false;          ///< result: defer the response until terminal
  bool drain = true;          ///< shutdown: finish queued jobs (false = drop them)
};

/// Parses one request payload. Throws std::runtime_error on anything
/// malformed: bad JSON, missing/unknown "cmd", bad field types, unknown
/// job kind, out-of-range priority or deadline.
[[nodiscard]] Request parse_request(std::string_view payload);

/// Appends `s` as a quoted JSON string (with escaping) to `out`.
void append_json_string(std::string& out, std::string_view s);

/// {"ok":false,"code":code,"error":message} -- codes are part of the
/// protocol contract: bad_request, unknown_workload, unknown_job,
/// queue_full, draining.
[[nodiscard]] std::string error_response(std::string_view code, std::string_view message);

}  // namespace fp8q::service
