// Runtime CPU dispatch for the packed FP8 kernels (docs/KERNELS.md).
//
// The packed GEMM/conv kernels (nn/packed_gemm.h) come in three tiers
// that produce bit-identical results and differ only in speed:
//
//   kScalar   portable reference: table-lookup decode, plain loops. The
//             bit-exactness anchor every other tier is tested against.
//   kBatched  branch-free uint32-lane decode written so the compiler
//             auto-vectorizes it (the fp8_quantize_batch style). Works on
//             every target; the default when no native path exists.
//   kNative   explicit SIMD (AVX2 on x86-64, NEON on aarch64) with the
//             same per-element operation order as the scalar tier.
//
// Tier resolution order: set_isa_tier() override > the FP8Q_ISA
// environment variable ("scalar" | "batched" | "native"; "avx2"/"neon"
// are accepted aliases for "native") > the best tier the CPU supports.
// A request for kNative on a machine without a native path clamps to
// kBatched, so isa_tier() always names a tier that can actually run.
//
// The probe is a one-time cpuid check (__builtin_cpu_supports on x86-64;
// NEON is baseline on aarch64), cached after first use. Dispatch happens
// per kernel call by indexing a per-kernel function table with the tier
// (packed_kernels in nn/packed_gemm.h), so tests can flip tiers between
// calls with set_isa_tier().
//
// FP8Q_PACKED gates whether the quantization pipeline attaches packed
// weights to ops at all (QuantizedGraph::prepare); default on, "0"
// disables and restores the dequantize-to-FP32 path. Because the packed
// kernels are bit-identical to that path, the knob is a performance
// switch, not a numerics switch.
#pragma once

namespace fp8q {

/// Kernel implementation tiers, ordered from reference to fastest.
enum class IsaTier { kScalar = 0, kBatched = 1, kNative = 2 };
inline constexpr int kIsaTierCount = 3;

/// Stable lowercase tier names used in reports and bench JSON
/// ("scalar", "batched", "native").
[[nodiscard]] const char* to_string(IsaTier tier);

/// The tier packed kernels dispatch on (see resolution order above).
/// Always satisfiable: never returns kNative unless isa_native_available().
[[nodiscard]] IsaTier isa_tier();

/// Programmatic override of the FP8Q_ISA / probe default (tests, benches).
/// A kNative request without native support clamps to kBatched.
void set_isa_tier(IsaTier tier);

/// Clears the override and restores the FP8Q_ISA / probe default.
void reset_isa_tier();

/// True when an explicit SIMD path exists for this CPU (AVX2 or NEON).
[[nodiscard]] bool isa_native_available();

/// Name of the native path: "avx2", "neon", or "none". Independent of the
/// selected tier -- reports record both.
[[nodiscard]] const char* isa_native_name();

/// "scalar" / "batched" / "native:avx2" -- the fully resolved dispatch
/// label written into run reports and bench rows.
[[nodiscard]] const char* isa_label();

/// True when QuantizedGraph should attach packed weights to compute ops
/// (FP8Q_PACKED, default on; set_packed_compute_enabled overrides).
[[nodiscard]] bool packed_compute_enabled();

/// Programmatic override of FP8Q_PACKED (tests).
void set_packed_compute_enabled(bool enabled);

/// Clears the override and restores the FP8Q_PACKED default.
void reset_packed_compute_enabled();

}  // namespace fp8q
