// fp8q -- umbrella public header.
//
// A C++20 library reproducing "Efficient Post-training Quantization with
// FP8 Formats" (MLSys 2024): software-emulated E5M2 / E4M3 / E3M4 (and
// generic EeMm) casting, an INT8 baseline, a dataflow-graph NN substrate,
// the paper's standard + extended post-training quantization schemes
// (per-channel weights, per-tensor activations, SmoothQuant, BatchNorm
// calibration, mixed formats, dynamic quantization), an accuracy-driven
// auto-tuner and the 75-workload study suite.
//
// The three FP8 formats (paper Table 1) at a glance -- every byte is
// 1 sign bit, e exponent bits, m mantissa bits (1 + e + m == 8), with
// signed zero and gradual underflow via subnormals:
//
//   format  layout        bias  max finite  min subnormal  Inf?  NaN codes
//   E5M2    s eeeee mm      15     57344        1.53e-5    yes   6 (0x7D-7F/FD-FF)
//   E4M3    s eeee mmm       7       448        1.95e-3    no    2 (0x7F/0xFF)
//   E3M4    s eee mmmm       3        30        1.56e-2    no    2 (0x7F/0xFF)
//
// E5M2 is IEEE-like: a scaled-down binary16 whose all-ones exponent field
// is reserved (mantissa == 0 encodes +/-Inf, mantissa != 0 a NaN). E4M3
// and E3M4 use the paper's extended encoding: the all-ones exponent field
// holds ordinary values, only the single all-ones exponent+mantissa
// pattern per sign is NaN, and there is no Inf -- buying one extra binade
// of finite range. By default casts SATURATE: any value beyond the max
// finite magnitude (including +/-Inf inputs) clamps to +/-max rather than
// producing Inf/NaN, which is what PTQ wants after range calibration; the
// IEEE-faithful overflow-to-Inf/NaN behavior is available per cast via
// CastOptions::overflow (fp8/cast.h). NaN inputs stay NaN in every mode.
//
// Quick start:
//
//   #include "core/fp8q.h"
//   using namespace fp8q;
//
//   Graph model = make_transformer_encoder({});   // or your own Graph
//   ModelQuantConfig cfg;
//   cfg.scheme = standard_fp8_scheme(DType::kE4M3);
//   QuantizedGraph qg(&model, cfg);
//   qg.prepare(calibration_batches);              // PTQ pipeline
//   Tensor logits = qg.forward(input);            // FP8 inference
//
// Bulk casts, the matmul/conv kernels and the suite-level sweeps run on a
// global thread pool (core/parallel.h). Results are bit-identical at any
// thread count; size the pool with FP8Q_NUM_THREADS or set_num_threads()
// (docs/THREADING.md).
#pragma once

#include "core/cpu_dispatch.h" // IWYU pragma: export
#include "core/parallel.h" // IWYU pragma: export
#include "fp8/cast.h"      // IWYU pragma: export
#include "fp8/convert.h"   // IWYU pragma: export
#include "fp8/format.h"    // IWYU pragma: export
#include "fp8/int8.h"      // IWYU pragma: export
#include "fp8/packed.h"    // IWYU pragma: export
#include "io/serialize.h"   // IWYU pragma: export
#include "metrics/metrics.h"   // IWYU pragma: export
#include "metrics/passrate.h"  // IWYU pragma: export
#include "models/generation.h"  // IWYU pragma: export
#include "models/zoo.h"    // IWYU pragma: export
#include "nn/conv.h"       // IWYU pragma: export
#include "nn/elementwise.h"  // IWYU pragma: export
#include "nn/embedding.h"  // IWYU pragma: export
#include "nn/graph.h"      // IWYU pragma: export
#include "nn/linear.h"     // IWYU pragma: export
#include "nn/matmul.h"     // IWYU pragma: export
#include "nn/norm.h"       // IWYU pragma: export
#include "nn/packed_gemm.h"  // IWYU pragma: export
#include "nn/shape_ops.h"  // IWYU pragma: export
#include "obs/counters.h"  // IWYU pragma: export
#include "obs/report.h"    // IWYU pragma: export
#include "obs/trace.h"     // IWYU pragma: export
#include "quant/calibrate.h"       // IWYU pragma: export
#include "quant/observer.h"        // IWYU pragma: export
#include "quant/qconfig.h"         // IWYU pragma: export
#include "quant/quantized_graph.h" // IWYU pragma: export
#include "quant/quantizer.h"       // IWYU pragma: export
#include "quant/smoothquant.h"     // IWYU pragma: export
#include "tensor/rng.h"    // IWYU pragma: export
#include "tensor/stats.h"  // IWYU pragma: export
#include "tensor/tensor.h" // IWYU pragma: export
#include "tune/tuner.h"    // IWYU pragma: export
#include "workloads/registry.h"  // IWYU pragma: export
#include "workloads/workload.h"  // IWYU pragma: export

namespace fp8q {

/// Library semantic version.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

}  // namespace fp8q
