// fp8q -- umbrella public header.
//
// A C++20 library reproducing "Efficient Post-training Quantization with
// FP8 Formats" (MLSys 2024): software-emulated E5M2 / E4M3 / E3M4 (and
// generic EeMm) casting, an INT8 baseline, a dataflow-graph NN substrate,
// the paper's standard + extended post-training quantization schemes
// (per-channel weights, per-tensor activations, SmoothQuant, BatchNorm
// calibration, mixed formats, dynamic quantization), an accuracy-driven
// auto-tuner and the 75-workload study suite.
//
// Quick start:
//
//   #include "core/fp8q.h"
//   using namespace fp8q;
//
//   Graph model = make_transformer_encoder({});   // or your own Graph
//   ModelQuantConfig cfg;
//   cfg.scheme = standard_fp8_scheme(DType::kE4M3);
//   QuantizedGraph qg(&model, cfg);
//   qg.prepare(calibration_batches);              // PTQ pipeline
//   Tensor logits = qg.forward(input);            // FP8 inference
#pragma once

#include "fp8/cast.h"      // IWYU pragma: export
#include "fp8/format.h"    // IWYU pragma: export
#include "fp8/int8.h"      // IWYU pragma: export
#include "fp8/packed.h"    // IWYU pragma: export
#include "io/serialize.h"   // IWYU pragma: export
#include "metrics/metrics.h"   // IWYU pragma: export
#include "metrics/passrate.h"  // IWYU pragma: export
#include "models/generation.h"  // IWYU pragma: export
#include "models/zoo.h"    // IWYU pragma: export
#include "nn/conv.h"       // IWYU pragma: export
#include "nn/elementwise.h"  // IWYU pragma: export
#include "nn/embedding.h"  // IWYU pragma: export
#include "nn/graph.h"      // IWYU pragma: export
#include "nn/linear.h"     // IWYU pragma: export
#include "nn/matmul.h"     // IWYU pragma: export
#include "nn/norm.h"       // IWYU pragma: export
#include "nn/shape_ops.h"  // IWYU pragma: export
#include "quant/calibrate.h"       // IWYU pragma: export
#include "quant/observer.h"        // IWYU pragma: export
#include "quant/qconfig.h"         // IWYU pragma: export
#include "quant/quantized_graph.h" // IWYU pragma: export
#include "quant/quantizer.h"       // IWYU pragma: export
#include "quant/smoothquant.h"     // IWYU pragma: export
#include "tensor/rng.h"    // IWYU pragma: export
#include "tensor/stats.h"  // IWYU pragma: export
#include "tensor/tensor.h" // IWYU pragma: export
#include "tune/tuner.h"    // IWYU pragma: export
#include "workloads/registry.h"  // IWYU pragma: export
#include "workloads/workload.h"  // IWYU pragma: export

namespace fp8q {

/// Library semantic version.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

}  // namespace fp8q
