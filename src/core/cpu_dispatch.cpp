#include "core/cpu_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace fp8q {

namespace {

bool probe_native() {
#if defined(__aarch64__)
  // Advanced SIMD (NEON) is architecturally mandatory on AArch64.
  return true;
#elif defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool native_available_cached() {
  static const bool value = probe_native();
  return value;
}

/// FP8Q_ISA parse; falls back to the best supported tier on unset/unknown.
IsaTier env_default_tier() {
  const char* v = std::getenv("FP8Q_ISA");
  const IsaTier best = native_available_cached() ? IsaTier::kNative : IsaTier::kBatched;
  if (v == nullptr || v[0] == '\0') return best;
  if (std::strcmp(v, "scalar") == 0) return IsaTier::kScalar;
  if (std::strcmp(v, "batched") == 0) return IsaTier::kBatched;
  if (std::strcmp(v, "native") == 0 || std::strcmp(v, "avx2") == 0 ||
      std::strcmp(v, "neon") == 0) {
    return best;  // a native request clamps to batched when unsupported
  }
  return best;
}

IsaTier env_tier_cached() {
  static const IsaTier value = env_default_tier();
  return value;
}

/// -1 = use the FP8Q_ISA / probe default; otherwise an IsaTier value.
std::atomic<int> g_tier_override{-1};

/// -1 = use the FP8Q_PACKED default; 0/1 = explicit override.
std::atomic<int> g_packed_override{-1};

bool env_packed_default() {
  // Default ON: packed compute is bit-identical to the dequantized path
  // (docs/KERNELS.md), so the knob only exists to measure the difference.
  static const bool value = [] {
    const char* v = std::getenv("FP8Q_PACKED");
    return !(v != nullptr && v[0] == '0' && v[1] == '\0');
  }();
  return value;
}

}  // namespace

const char* to_string(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar: return "scalar";
    case IsaTier::kBatched: return "batched";
    case IsaTier::kNative: return "native";
  }
  return "?";
}

IsaTier isa_tier() {
  const int override_v = g_tier_override.load(std::memory_order_relaxed);
  if (override_v >= 0) return static_cast<IsaTier>(override_v);
  return env_tier_cached();
}

void set_isa_tier(IsaTier tier) {
  if (tier == IsaTier::kNative && !native_available_cached()) tier = IsaTier::kBatched;
  g_tier_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void reset_isa_tier() { g_tier_override.store(-1, std::memory_order_relaxed); }

bool isa_native_available() { return native_available_cached(); }

const char* isa_native_name() {
#if defined(__aarch64__)
  return "neon";
#elif defined(__x86_64__) || defined(__i386__)
  return native_available_cached() ? "avx2" : "none";
#else
  return "none";
#endif
}

const char* isa_label() {
  switch (isa_tier()) {
    case IsaTier::kScalar: return "scalar";
    case IsaTier::kBatched: return "batched";
    case IsaTier::kNative:
#if defined(__aarch64__)
      return "native:neon";
#else
      return "native:avx2";
#endif
  }
  return "?";
}

bool packed_compute_enabled() {
  const int override_v = g_packed_override.load(std::memory_order_relaxed);
  return override_v >= 0 ? override_v != 0 : env_packed_default();
}

void set_packed_compute_enabled(bool enabled) {
  g_packed_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void reset_packed_compute_enabled() {
  g_packed_override.store(-1, std::memory_order_relaxed);
}

}  // namespace fp8q
