#include "core/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "core/thread_annotations.h"
#include "obs/domain.h"
#include "obs/histogram.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace fp8q {

namespace {

/// Set while a thread is executing region tasks (worker, or the caller
/// participating in its own region): nested parallel calls go inline.
thread_local bool tls_in_region = false;

/// The calling thread's arena binding (ScopedArenaBinding), or nullptr.
thread_local ParallelArena* tls_arena = nullptr;

constexpr int kMaxThreads = 256;

int clamp_threads(int n) {
  if (n < 1) return 1;
  return n < kMaxThreads ? n : kMaxThreads;
}

/// FP8Q_NUM_THREADS, or hardware_threads() when unset/invalid. Read once.
int env_default_threads() {
  static const int value = [] {
    if (const char* env = std::getenv("FP8Q_NUM_THREADS")) {
      const int n = std::atoi(env);
      if (n > 0) return clamp_threads(n);
    }
    return hardware_threads();
  }();
  return value;
}

/// set_num_threads() override; 0 means "no override, use the default".
std::atomic<int> g_thread_override{0};

/// One-job-at-a-time pool. Concurrent top-level regions (from distinct
/// user threads) serialize on run_mutex_; nested regions never reach the
/// pool (they run inline via tls_in_region). The default-constructed
/// global pool tracks num_threads()-1 workers; arena pools
/// (ParallelArena) construct with a fixed worker count.
///
/// Obs-context propagation: each job publishes the dispatching thread's
/// CounterDomain and per-thread report binding (obs/domain.h,
/// obs/report.h) with the job state, and every worker binds both around
/// its share of the region -- so a job running under a scoped observation
/// domain keeps its counters exact when it fans out across the pool.
class ThreadPool {
 public:
  /// Global-sized pool: resizes to num_threads()-1 at each region.
  ThreadPool() = default;
  /// Fixed-size pool with exactly `workers` workers (may be 0).
  explicit ThreadPool(int workers) : fixed_workers_(workers < 0 ? 0 : workers) {}

  static ThreadPool& global() {
    static ThreadPool pool;
    return pool;
  }

  /// Executes fn(i) for every i in [0, n) across the workers plus the
  /// calling thread; returns after all indices complete. Rethrows the
  /// first captured worker exception.
  void run(std::int64_t n, const std::function<void(std::int64_t)>& fn)
      FP8Q_EXCLUDES(run_mutex_) {
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    resize_locked(fixed_workers_ >= 0 ? fixed_workers_ : num_threads() - 1);

    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_fn_ = &fn;
      job_n_ = n;
      job_domain_ = current_counter_domain();
      job_report_ = current_thread_report();
      next_.store(0, std::memory_order_relaxed);
      active_ = static_cast<int>(workers_.size());
      error_ = nullptr;
      ++job_id_;
    }
    work_cv_.notify_all();

    // The caller participates in its own region.
    tls_in_region = true;
    drain(n, fn);
    tls_in_region = false;

    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [this] { return active_ == 0; });
      job_fn_ = nullptr;
      error = error_;
      error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

  ~ThreadPool() {
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    resize_locked(0);
  }

 private:

  /// Claims indices until the job is exhausted, capturing the first error.
  void drain(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
    for (;;) {
      const std::int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }

  /// `seen` starts at the job_id_ current when the worker was spawned:
  /// job_id_ persists across resize_locked(), so a fresh worker must not
  /// treat jobs published before its creation as pending (it would pass
  /// the wait predicate with job_fn_ == nullptr and decrement active_ for
  /// a job it never joined).
  void worker_loop(std::uint64_t seen) {
    tls_in_region = true;
    for (;;) {
      const std::function<void(std::int64_t)>* fn = nullptr;
      std::int64_t n = 0;
      CounterDomain* domain = nullptr;
      ThreadReportBinding report;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return stop_ || job_id_ != seen; });
        if (stop_) return;
        seen = job_id_;
        fn = job_fn_;
        n = job_n_;
        domain = job_domain_;
        report = job_report_;
      }
      if (fn) {
        // Adopt the dispatcher's obs context for this region: its domain
        // (or nullptr = global routing) and its report binding.
        ScopedCounterDomain domain_scope(domain);
        const ThreadReportBinding prev = set_thread_report(report);
        drain(n, *fn);
        set_thread_report(prev);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--active_ == 0) done_cv_.notify_all();
      }
    }
  }

  /// Adjusts the worker count; requires run_mutex_ held and no active job.
  void resize_locked(int target) FP8Q_REQUIRES(run_mutex_) {
    if (static_cast<int>(workers_.size()) == target) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = false;
    }
    workers_.reserve(static_cast<std::size_t>(target));
    for (int i = 0; i < target; ++i) {
      workers_.emplace_back([this, cur = job_id_] { worker_loop(cur); });
    }
  }

  std::mutex run_mutex_ FP8Q_ACQUIRED_BEFORE(mutex_);  ///< serializes top-level regions
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_ FP8Q_GUARDED_BY(run_mutex_);
  bool stop_ FP8Q_GUARDED_BY(mutex_) = false;

  // Current job (guarded by mutex_ except the lock-free index counter).
  const std::function<void(std::int64_t)>* job_fn_ FP8Q_GUARDED_BY(mutex_) = nullptr;
  std::int64_t job_n_ FP8Q_GUARDED_BY(mutex_) = 0;
  CounterDomain* job_domain_ FP8Q_GUARDED_BY(mutex_) = nullptr;
  ThreadReportBinding job_report_ FP8Q_GUARDED_BY(mutex_);
  std::atomic<std::int64_t> next_{0};
  int active_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::uint64_t job_id_ FP8Q_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ FP8Q_GUARDED_BY(mutex_);

  /// -1 = track num_threads()-1 (the global pool); >= 0 = fixed size.
  const int fixed_workers_ = -1;
};

}  // namespace

int hardware_threads() {
  static const int value = clamp_threads(static_cast<int>(std::thread::hardware_concurrency()));
  return value;
}

int num_threads() {
  if (const ParallelArena* arena = tls_arena) return arena->budget();
  const int override_n = g_thread_override.load(std::memory_order_relaxed);
  return override_n > 0 ? override_n : env_default_threads();
}

void set_num_threads(int n) {
  g_thread_override.store(n > 0 ? clamp_threads(n) : 0, std::memory_order_relaxed);
}

bool in_parallel_region() { return tls_in_region; }

/// A fixed pool of budget-1 workers, created lazily by the pool itself at
/// the first multi-chunk region (a budget-1 arena never constructs one).
struct ParallelArena::Impl {
  ThreadPool pool;

  explicit Impl(int workers) : pool(workers) {}
};

ParallelArena::ParallelArena(int budget) : budget_(clamp_threads(budget)) {
  if (budget_ > 1) impl_ = std::make_unique<Impl>(budget_ - 1);
}

ParallelArena::~ParallelArena() = default;

/// Runs one region on the arena's own pool (friend of ParallelArena).
void arena_run_region(ParallelArena& arena, std::int64_t n,
                      const std::function<void(std::int64_t)>& fn) {
  arena.impl_->pool.run(n, fn);
}

ParallelArena* current_arena() { return tls_arena; }

ScopedArenaBinding::ScopedArenaBinding(ParallelArena* arena) : prev_(tls_arena) {
  tls_arena = arena;
}

ScopedArenaBinding::~ScopedArenaBinding() { tls_arena = prev_; }

namespace {

void run_region(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  if (n == 1 || num_threads() == 1 || tls_in_region) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // num_threads() > 1 here, so a bound arena has budget > 1 and owns a pool.
  if (ParallelArena* arena = tls_arena) {
    arena_run_region(*arena, n, fn);
    return;
  }
  ThreadPool::global().run(n, fn);
}

}  // namespace

void parallel_run(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  if (!trace_enabled()) {
    run_region(n, fn);
    return;
  }
  // Per-task spans cross threads when the pool is engaged, so the logical
  // parent (the innermost span open on the *dispatching* thread) is
  // captured here and passed explicitly; see obs/trace.h.
  const std::int64_t parent = current_span_id();
  const bool histed = histograms_enabled();
  const std::function<void(std::int64_t)> traced = [&fn, parent, histed](std::int64_t i) {
    TraceSpan span("parallel/task", parent);
    if (!histed) {
      fn(i);
      return;
    }
    // latency/parallel_task_ns: observational (wall-clock), feeds the
    // per-task latency histogram when histograms are on alongside tracing.
    const std::uint64_t t0 = obs_now_ns();
    fn(i);
    hist_record(HistChannel::kParallelTaskNs,
                static_cast<double>(obs_now_ns() - t0));
  };
  run_region(n, traced);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;

  // Deterministic static partition: a pure function of the arguments and
  // num_threads(). chunks = min(threads, ceil(n / grain)); chunk c gets
  // the c-th near-equal contiguous slice.
  const std::int64_t max_chunks = (n + grain - 1) / grain;
  std::int64_t chunks = num_threads();
  if (chunks > max_chunks) chunks = max_chunks;
  if (chunks <= 1 || tls_in_region) {
    fn(begin, end);
    return;
  }

  const std::int64_t base = n / chunks;
  const std::int64_t rem = n % chunks;
  parallel_run(chunks, [&](std::int64_t c) {
    const std::int64_t lo = begin + c * base + (c < rem ? c : rem);
    const std::int64_t hi = lo + base + (c < rem ? 1 : 0);
    fn(lo, hi);
  });
}

}  // namespace fp8q
