// Parallel quantization runtime (see docs/THREADING.md for the contract).
//
// A lazily-initialized global thread pool drives two primitives:
//
//   * parallel_for(begin, end, grain, fn)  -- data-parallel loops. The
//     range is split into near-equal contiguous chunks, never more than
//     num_threads() of them and never more than ceil(n / grain), so
//     `grain` bounds the fan-out for small ranges. The partition depends
//     only on (begin, end, grain, num_threads()), never on timing:
//     per-index writes are bit-identical at every thread count, while
//     per-chunk accumulations merged in chunk order are deterministic for
//     a given num_threads() but may differ across thread counts (chunk
//     boundaries move with the thread count).
//   * parallel_map(n, fn)                  -- task-level fan-out. Runs
//     fn(0..n-1) across the pool (dynamic scheduling for load balance)
//     and returns the results in index order, so callers observe the
//     exact sequence a serial loop would have produced.
//
// Thread-count precedence: set_num_threads(n) > FP8Q_NUM_THREADS >
// std::thread::hardware_concurrency(). Nested calls from inside a worker
// run serially inline (no pool re-entry, no deadlock). Exceptions thrown
// by workers are captured and the first one (in chunk/index order of
// observation) is rethrown on the calling thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace fp8q {

/// Parallelization grain for memory-bound elementwise kernels, in BYTES of
/// input touched per chunk. Pass `kParallelGrainBytes / sizeof(T)` as the
/// parallel_for grain so a chunk covers ~64 KiB regardless of element
/// width -- enough work to amortize the fork/join handshake, small enough
/// that short tensors still fan out. Kernels must not hard-code their own
/// thresholds (lint rule "parallel-grain", tools/lint/rules.cpp).
inline constexpr std::int64_t kParallelGrainBytes = 65536;

/// Parallelization grain for compute-bound kernels (matmul/linear/conv), in
/// FLOPs per chunk: the parallel_for grain is kParallelGrainFlops divided by
/// the per-iteration cost, so a chunk carries ~64k FLOPs no matter how the
/// loop is shaped.
inline constexpr std::int64_t kParallelGrainFlops = 65536;

/// Overflow-safe cost product for grain heuristics: a * b saturated to
/// `cap`. Chainable (capped_cost(capped_cost(a, b, cap), c, cap)) because a
/// saturated intermediate stays saturated. Any zero factor gives zero; the
/// caller clamps (grain heuristics use max(1, ...) on both cost and grain).
[[nodiscard]] constexpr std::int64_t capped_cost(std::int64_t a, std::int64_t b,
                                                std::int64_t cap) {
  if (a <= 0 || b <= 0) return 0;
  return a > cap / b ? cap : a * b;
}

/// std::thread::hardware_concurrency(), clamped to >= 1. Cached.
[[nodiscard]] int hardware_threads();

/// The number of threads (pool workers + the calling thread) parallel
/// regions may use. A thread bound to a ParallelArena (below) reports the
/// arena's budget; otherwise resolution order is the last
/// set_num_threads() value, else FP8Q_NUM_THREADS (read once, on first
/// use), else hardware_threads(). Always >= 1.
[[nodiscard]] int num_threads();

/// Overrides the thread count for all subsequent parallel regions.
/// `n <= 0` clears the override and restores the env-var/hardware default.
/// The pool resizes lazily at the next parallel region. Not safe to call
/// concurrently with a running parallel region.
void set_num_threads(int n);

/// True when the calling thread is already executing inside a parallel
/// region (pool worker, or the caller participating in its own region).
/// Such threads execute nested parallel calls serially inline.
[[nodiscard]] bool in_parallel_region();

/// A private, fixed-budget slice of the parallel runtime
/// (docs/THREADING.md, "Nested-parallelism budget"). While a thread is
/// bound to an arena (ScopedArenaBinding), num_threads() reports the
/// arena's budget and parallel regions dispatched from that thread run on
/// the arena's own workers instead of the shared global pool -- so
/// concurrent top-level dispatchers (fp8qd's executor workers) neither
/// serialize on the global pool's one-region-at-a-time lock nor
/// oversubscribe the machine: N executors with budget max(1, threads/N)
/// each use their slice. A budget-1 arena owns no threads at all; every
/// region runs inline on the binding thread. The deterministic partition
/// contract is unchanged: parallel_for under an arena chunks exactly as
/// it would with num_threads() == budget.
class ParallelArena {
 public:
  /// Budget counts the binding thread itself: budget 1 = serial, budget k
  /// = the binding thread plus k-1 arena workers (spawned lazily at the
  /// first parallel region). Clamped to >= 1.
  explicit ParallelArena(int budget);
  ~ParallelArena();

  ParallelArena(const ParallelArena&) = delete;
  ParallelArena& operator=(const ParallelArena&) = delete;

  [[nodiscard]] int budget() const { return budget_; }

 private:
  friend void arena_run_region(ParallelArena& arena, std::int64_t n,
                               const std::function<void(std::int64_t)>& fn);
  int budget_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The calling thread's bound arena, or nullptr (global pool).
[[nodiscard]] ParallelArena* current_arena();

/// RAII arena binding: parallel regions (and num_threads()) on this
/// thread use `arena` for the scope's lifetime; nullptr pins the global
/// pool. Bindings nest; the previous binding is restored on destruction.
/// The arena must outlive the binding, and at most one thread may be
/// bound to a given arena at a time (its pool runs one region at a time).
class ScopedArenaBinding {
 public:
  explicit ScopedArenaBinding(ParallelArena* arena);
  ~ScopedArenaBinding();

  ScopedArenaBinding(const ScopedArenaBinding&) = delete;
  ScopedArenaBinding& operator=(const ScopedArenaBinding&) = delete;

 private:
  ParallelArena* prev_;
};

/// Splits [begin, end) into min(num_threads(), ceil(n / grain)) near-equal
/// contiguous chunks (grain < 1 behaves as 1) and invokes
/// fn(chunk_begin, chunk_end) for each chunk, concurrently. Empty and
/// single-chunk ranges run inline on the calling thread. The chunk
/// partition is a pure function of (begin, end, grain, num_threads()):
/// per-index writes are deterministic at any thread count; per-chunk
/// accumulations merged in chunk order are deterministic for a given
/// num_threads() but may differ across thread counts as the chunk
/// boundaries (and thus floating-point summation order) move.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Task-level fan-out: invokes fn(i) for i in [0, n) across the pool.
/// Scheduling is dynamic (an idle thread takes the next unclaimed index,
/// which load-balances heterogeneous tasks), but each index is executed
/// exactly once and completion of the call is a full barrier.
void parallel_run(std::int64_t n, const std::function<void(std::int64_t)>& fn);

/// Runs fn(i) for i in [0, n) across the pool and collects the results in
/// INDEX order -- result[i] is always fn(i), regardless of which thread
/// finished first. The result type must be default-constructible and
/// movable.
template <class Fn>
[[nodiscard]] auto parallel_map(std::int64_t n, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::int64_t{}))>> {
  using R = std::decay_t<decltype(fn(std::int64_t{}))>;
  static_assert(!std::is_same_v<R, bool>,
                "parallel_map cannot return bool: std::vector<bool> packs bits, so "
                "concurrent out[i] writes race on shared words; return e.g. char or int");
  if (n < 0) n = 0;
  std::vector<R> out(static_cast<std::size_t>(n));
  parallel_run(n, [&out, &fn](std::int64_t i) { out[static_cast<std::size_t>(i)] = fn(i); });
  return out;
}

}  // namespace fp8q
