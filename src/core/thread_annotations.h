// Portable clang thread-safety annotation macros (docs/STATIC_ANALYSIS.md).
//
// Clang's -Wthread-safety analysis statically proves that every access to
// a FP8Q_GUARDED_BY(mu) member happens with `mu` held, that functions
// marked FP8Q_REQUIRES(mu) are only called under the lock, and so on.
// The attributes are a clang extension: on every other compiler the
// macros expand to nothing, so annotated code stays portable. The root
// CMakeLists.txt adds -Wthread-safety -Werror=thread-safety on clang
// (FP8Q_THREAD_SAFETY=OFF opts out on toolchains whose standard library
// does not expose capability attributes on std::mutex).
//
// Naming follows the conventional capability vocabulary (see the clang
// Thread Safety Analysis manual); annotate the *data* with
// FP8Q_GUARDED_BY and the *functions* with FP8Q_REQUIRES/FP8Q_EXCLUDES.
#pragma once

#if defined(__clang__)
#define FP8Q_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define FP8Q_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability (mutex wrappers).
#define FP8Q_CAPABILITY(x) FP8Q_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor (lock-guard wrappers).
#define FP8Q_SCOPED_CAPABILITY FP8Q_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The annotated member may only be read or written with `x` held.
#define FP8Q_GUARDED_BY(x) FP8Q_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The data *pointed to* by the annotated pointer is guarded by `x`
/// (the pointer itself may be read freely).
#define FP8Q_PT_GUARDED_BY(x) FP8Q_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Lock-ordering edges: this capability must be acquired before/after
/// the listed ones.
#define FP8Q_ACQUIRED_BEFORE(...) \
  FP8Q_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define FP8Q_ACQUIRED_AFTER(...) \
  FP8Q_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// The annotated function may only be called with the capability held;
/// it does not acquire or release it.
#define FP8Q_REQUIRES(...) \
  FP8Q_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The annotated function acquires/releases the capability.
#define FP8Q_ACQUIRE(...) \
  FP8Q_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define FP8Q_RELEASE(...) \
  FP8Q_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define FP8Q_TRY_ACQUIRE(...) \
  FP8Q_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The annotated function must NOT be called with the capability held
/// (it acquires the lock itself; calling under the lock would deadlock).
#define FP8Q_EXCLUDES(...) FP8Q_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the named capability.
#define FP8Q_RETURN_CAPABILITY(x) FP8Q_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only where
/// the locking pattern is correct but inexpressible (e.g. condition
/// variable predicates re-checked under a lock the analysis cannot see).
#define FP8Q_NO_THREAD_SAFETY_ANALYSIS \
  FP8Q_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
