#include "fp8/cast.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/parallel.h"
#include "obs/counters.h"

namespace fp8q {

namespace {

/// Iterations per chunk for the element-wise quantize loops. The scalar
/// slow path costs ~50-100ns/element, so this keeps chunks well above the
/// pool's dispatch overhead while still splitting megabyte tensors.
constexpr std::int64_t kCastGrain = 2048;

/// xorshift64* step for stochastic rounding; returns uniform double in [0,1).
double next_uniform(std::uint64_t* state) {
  std::uint64_t x = *state ? *state : 0x9E3779B97F4A7C15ull;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return static_cast<double>((x * 0x2545F4914F6CDD1Dull) >> 11) * 0x1.0p-53;
}

/// Rounds a non-negative scaled significand to an integer per `opts`.
/// `v` is always < 2^(m+1) + 1 <= 33, so the double arithmetic is exact.
std::uint32_t round_significand(double v, const CastOptions& opts) {
  const double f = std::floor(v);
  const double frac = v - f;
  auto fi = static_cast<std::uint32_t>(f);
  switch (opts.rounding) {
    case RoundingMode::kNearestEven:
      if (frac > 0.5 || (frac == 0.5 && (fi & 1u))) ++fi;
      return fi;
    case RoundingMode::kTowardZero:
      return fi;
    case RoundingMode::kStochastic: {
      std::uint64_t fallback = 0x1234567890ABCDEFull;
      std::uint64_t* state = opts.rng_state ? opts.rng_state : &fallback;
      if (frac > 0.0 && next_uniform(state) < frac) ++fi;
      return fi;
    }
  }
  return fi;
}

// Code-point assembly is done in unsigned arithmetic throughout: shifting
// into (or past) the sign bit of a signed int is implementation-defined at
// best, and the 8-bit codes are bit patterns, not quantities.
std::uint8_t max_finite_code(const FormatSpec& spec) {
  const unsigned m = static_cast<unsigned>(spec.man_bits);
  if (spec.family == EncodingFamily::kIeee) {
    const unsigned exp_field = (1u << spec.exp_bits) - 2u;
    const unsigned mant = (1u << m) - 1u;
    return static_cast<std::uint8_t>((exp_field << m) | mant);
  }
  const unsigned exp_field = (1u << spec.exp_bits) - 1u;
  const unsigned mant = (1u << m) - 2u;
  return static_cast<std::uint8_t>((exp_field << m) | mant);
}

std::uint8_t infinity_code(const FormatSpec& spec) {
  // Only meaningful for the IEEE family: top exponent, zero mantissa.
  return static_cast<std::uint8_t>(((1u << spec.exp_bits) - 1u) << spec.man_bits);
}

/// Per-chunk quantization-event tally for the reference bulk casts; events
/// are classified from (input, output) pairs, so every overflow policy and
/// rounding mode is covered without duplicating cast logic.
struct EventTally {
  std::uint64_t quantized = 0;
  std::uint64_t saturated = 0;
  std::uint64_t flushed = 0;
  std::uint64_t nan_produced = 0;
  std::uint64_t inf_produced = 0;

  /// `x` is the value in the format's domain (already scaled), `q` the
  /// quantized result before any inverse scaling.
  void classify(float x, float q, float max_value) {
    ++quantized;
    if (std::isnan(q)) {
      if (!std::isnan(x)) ++nan_produced;  // NaN pass-through is not an event
    } else if (std::isinf(q)) {
      if (!std::isinf(x)) ++inf_produced;
    } else if (q == 0.0f) {
      if (x != 0.0f) ++flushed;
    } else if (std::fabs(q) == max_value && std::fabs(x) > max_value) {
      ++saturated;  // includes +/-Inf inputs under the saturating policy
    }
  }

  void flush(ObsFormat fmt) const {
    counter_add(fmt, ObsEvent::kQuantized, quantized);
    counter_add(fmt, ObsEvent::kSaturated, saturated);
    counter_add(fmt, ObsEvent::kFlushedToZero, flushed);
    counter_add(fmt, ObsEvent::kNanProduced, nan_produced);
    counter_add(fmt, ObsEvent::kInfProduced, inf_produced);
  }
};

}  // namespace

std::uint8_t fp8_nan_code(const FormatSpec& /*spec*/) {
  // Exponent and mantissa fields all ones, sign clear: 0x7F for every
  // 1-e-m split. For E5M2 this is the canonical (largest-payload) NaN; for
  // the extended formats it is the single NaN encoding from Table 1.
  return 0x7F;
}

bool fp8_is_nan(std::uint8_t code, const FormatSpec& spec) {
  const unsigned m = static_cast<unsigned>(spec.man_bits);
  const unsigned exp_field = (code >> m) & ((1u << spec.exp_bits) - 1u);
  const unsigned mant = code & ((1u << m) - 1u);
  if (spec.family == EncodingFamily::kIeee) {
    return exp_field == (1u << spec.exp_bits) - 1u && mant != 0u;
  }
  return (code & 0x7F) == 0x7F;
}

bool fp8_is_inf(std::uint8_t code, const FormatSpec& spec) {
  if (spec.family != EncodingFamily::kIeee) return false;
  const unsigned m = static_cast<unsigned>(spec.man_bits);
  const unsigned exp_field = (code >> m) & ((1u << spec.exp_bits) - 1u);
  const unsigned mant = code & ((1u << m) - 1u);
  return exp_field == (1u << spec.exp_bits) - 1u && mant == 0u;
}

std::uint8_t fp8_encode(float x, const FormatSpec& spec, const CastOptions& opts) {
  const int m = spec.man_bits;
  const std::uint8_t sign = std::signbit(x) ? 0x80 : 0x00;

  if (std::isnan(x)) return static_cast<std::uint8_t>(sign | fp8_nan_code(spec));

  if (std::isinf(x)) {
    if (opts.overflow == OverflowPolicy::kInfinityNan) {
      return static_cast<std::uint8_t>(
          sign | (spec.has_infinity() ? infinity_code(spec) : fp8_nan_code(spec)));
    }
    return static_cast<std::uint8_t>(sign | max_finite_code(spec));
  }

  const double a = std::fabs(static_cast<double>(x));
  if (a == 0.0) return sign;  // +/-0

  // Pick the exponent of the grid the value falls on. Values below the
  // normal range share the subnormal grid at min_unbiased_exp().
  int e = std::max(std::ilogb(a), spec.min_unbiased_exp());
  std::uint32_t k = round_significand(std::ldexp(a, m - e), opts);
  if (k >= (2u << m)) {  // rounded up across a binade boundary
    k >>= 1;
    ++e;
  }
  if (k == 0) return sign;  // rounded to zero

  std::uint8_t code;
  if (k < (1u << m)) {
    // Subnormal: exponent field zero (only reachable at the minimum grid).
    code = static_cast<std::uint8_t>(k);
  } else {
    const int biased = e + spec.bias;
    const int mant = static_cast<int>(k) - (1 << m);
    const int max_field = (spec.family == EncodingFamily::kIeee)
                              ? (1 << spec.exp_bits) - 2
                              : (1 << spec.exp_bits) - 1;
    bool overflow = biased > max_field;
    if (!overflow && spec.family == EncodingFamily::kExtended &&
        biased == max_field && mant == (1 << m) - 1) {
      overflow = true;  // this code point is the NaN encoding
    }
    if (overflow) {
      if (opts.overflow == OverflowPolicy::kInfinityNan) {
        return static_cast<std::uint8_t>(
            sign | (spec.has_infinity() ? infinity_code(spec) : fp8_nan_code(spec)));
      }
      return static_cast<std::uint8_t>(sign | max_finite_code(spec));
    }
    code = static_cast<std::uint8_t>((static_cast<unsigned>(biased) << m) |
                                     static_cast<unsigned>(mant));
  }
  return static_cast<std::uint8_t>(sign | code);
}

float fp8_decode(std::uint8_t code, const FormatSpec& spec) {
  const int m = spec.man_bits;
  const bool negative = (code & 0x80) != 0;
  const int exp_field =
      static_cast<int>((code >> static_cast<unsigned>(m)) & ((1u << spec.exp_bits) - 1u));
  const int mant = static_cast<int>(code & ((1u << m) - 1u));

  if (fp8_is_nan(code, spec)) return std::numeric_limits<float>::quiet_NaN();
  if (fp8_is_inf(code, spec)) {
    const float inf = std::numeric_limits<float>::infinity();
    return negative ? -inf : inf;
  }

  double value;
  if (exp_field == 0) {
    value = std::ldexp(static_cast<double>(mant), spec.min_unbiased_exp() - m);
  } else {
    value = std::ldexp(static_cast<double>((1 << m) + mant), exp_field - spec.bias - m);
  }
  const auto v = static_cast<float>(value);
  return negative ? -v : v;
}

float fp8_quantize(float x, const FormatSpec& spec, const CastOptions& opts) {
  const int m = spec.man_bits;

  if (std::isnan(x)) return x;
  if (std::isinf(x)) {
    if (opts.overflow == OverflowPolicy::kInfinityNan) {
      return spec.has_infinity() ? x : std::numeric_limits<float>::quiet_NaN();
    }
    return std::copysign(spec.max_value(), x);
  }

  const double a = std::fabs(static_cast<double>(x));
  if (a == 0.0) return x;  // preserve signed zero

  int e = std::max(std::ilogb(a), spec.min_unbiased_exp());
  std::uint32_t k = round_significand(std::ldexp(a, m - e), opts);
  if (k >= (2u << m)) {
    k >>= 1;
    ++e;
  }
  if (k == 0) return std::copysign(0.0f, x);

  auto v = static_cast<float>(std::ldexp(static_cast<double>(k), e - m));
  const float maxv = spec.max_value();
  if (v > maxv) {
    if (opts.overflow == OverflowPolicy::kInfinityNan) {
      return spec.has_infinity() ? std::copysign(std::numeric_limits<float>::infinity(), x)
                                 : std::numeric_limits<float>::quiet_NaN();
    }
    v = maxv;
  }
  return std::copysign(v, x);
}

void fp8_quantize(std::span<const float> in, std::span<float> out,
                  const FormatSpec& spec, const CastOptions& opts) {
  const auto n = static_cast<std::int64_t>(std::min(in.size(), out.size()));
  // Event counting is decided once per bulk call; the instrumented loops
  // classify from (input, output) pairs and flush one tally per chunk, so
  // outputs are bit-identical with counters on or off.
  const bool counted = counters_enabled();
  const ObsFormat fmt = counted ? obs_format(spec) : ObsFormat::kOther;
  const float maxv = counted ? spec.max_value() : 0.0f;
  if (opts.rounding == RoundingMode::kStochastic) {
    // Stochastic rounding consumes a single rng stream in element order;
    // stays serial so the draw sequence is identical at any thread count.
    EventTally tally;
    for (std::int64_t i = 0; i < n; ++i) {
      out[i] = fp8_quantize(in[i], spec, opts);
      if (counted) tally.classify(in[i], out[i], maxv);
    }
    if (counted) tally.flush(fmt);
    return;
  }
  parallel_for(0, n, kCastGrain, [&, counted](std::int64_t lo, std::int64_t hi) {
    if (!counted) {
      for (std::int64_t i = lo; i < hi; ++i) out[i] = fp8_quantize(in[i], spec, opts);
      return;
    }
    EventTally tally;
    for (std::int64_t i = lo; i < hi; ++i) {
      out[i] = fp8_quantize(in[i], spec, opts);
      tally.classify(in[i], out[i], maxv);
    }
    tally.flush(fmt);
  });
}

void fp8_quantize_scaled(std::span<const float> in, std::span<float> out,
                         const FormatSpec& spec, float scale, const CastOptions& opts) {
  if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
  const float inv = 1.0f / scale;
  const auto n = static_cast<std::int64_t>(std::min(in.size(), out.size()));
  // Events are classified in the scaled domain (the format's own range),
  // before the inverse scale is applied to the stored output.
  const bool counted = counters_enabled();
  const ObsFormat fmt = counted ? obs_format(spec) : ObsFormat::kOther;
  const float maxv = counted ? spec.max_value() : 0.0f;
  if (opts.rounding == RoundingMode::kStochastic) {
    EventTally tally;
    for (std::int64_t i = 0; i < n; ++i) {
      const float scaled = in[i] * scale;
      const float q = fp8_quantize(scaled, spec, opts);
      out[i] = q * inv;
      if (counted) tally.classify(scaled, q, maxv);
    }
    if (counted) tally.flush(fmt);
    return;
  }
  parallel_for(0, n, kCastGrain, [&, counted](std::int64_t lo, std::int64_t hi) {
    if (!counted) {
      for (std::int64_t i = lo; i < hi; ++i) {
        out[i] = fp8_quantize(in[i] * scale, spec, opts) * inv;
      }
      return;
    }
    EventTally tally;
    for (std::int64_t i = lo; i < hi; ++i) {
      const float scaled = in[i] * scale;
      const float q = fp8_quantize(scaled, spec, opts);
      out[i] = q * inv;
      tally.classify(scaled, q, maxv);
    }
    tally.flush(fmt);
  });
}

std::vector<float> representable_values(const FormatSpec& spec) {
  std::vector<float> values;
  values.reserve(256);
  for (int c = 0; c < 256; ++c) {
    const auto code = static_cast<std::uint8_t>(c);
    if (fp8_is_nan(code, spec) || fp8_is_inf(code, spec)) continue;
    values.push_back(fp8_decode(code, spec));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace fp8q
