#include "fp8/packed.h"

#include <array>
#include <bit>
#include <stdexcept>

#include "fp8/cast.h"
#include "tensor/stats.h"

namespace fp8q {

const Fp8DecodeTable& fp8_decode_table(Fp8Kind kind) {
  // Built from the reference decoder once; the table IS the scalar kernel
  // tier and the bit-exactness anchor for the arithmetic decode.
  static const std::array<Fp8DecodeTable, 3> tables = [] {
    std::array<Fp8DecodeTable, 3> t{};
    for (int k = 0; k < 3; ++k) {
      const FormatSpec& spec = format_spec(static_cast<Fp8Kind>(k));
      for (int c = 0; c < 256; ++c) {
        t[static_cast<size_t>(k)].values[c] = fp8_decode(static_cast<std::uint8_t>(c), spec);
      }
    }
    return t;
  }();
  return tables[static_cast<size_t>(kind)];
}

Fp8DecodeSpec::Fp8DecodeSpec(const FormatSpec& spec)
    : man_shift(static_cast<std::uint32_t>(23 - spec.man_bits)),
      exp_add(static_cast<std::uint32_t>(127 - spec.bias) << 23),
      // 2^(1 - bias - man_bits), assembled as a float32 bit pattern:
      // always a normal power of two for the paper formats (the smallest,
      // E5M2's 2^-16, has biased exponent 111).
      sub_scale(std::bit_cast<float>(
          static_cast<std::uint32_t>(127 + 1 - spec.bias - spec.man_bits) << 23)),
      sub_lo(1u << spec.man_bits),
      special_lo(spec.family == EncodingFamily::kIeee
                     ? (((1u << spec.exp_bits) - 1u) << spec.man_bits)
                     : 0x7Fu),
      ieee(spec.family == EncodingFamily::kIeee) {}

const Fp8DecodeSpec& fp8_decode_spec(Fp8Kind kind) {
  static const Fp8DecodeSpec specs[3] = {Fp8DecodeSpec(format_spec(Fp8Kind::E5M2)),
                                         Fp8DecodeSpec(format_spec(Fp8Kind::E4M3)),
                                         Fp8DecodeSpec(format_spec(Fp8Kind::E3M4))};
  return specs[static_cast<int>(kind)];
}

PackedFp8Tensor PackedFp8Tensor::pack_per_channel(const Tensor& t, Fp8Kind kind) {
  if (t.dim() < 1) throw std::invalid_argument("pack_per_channel: need rank >= 1");
  if (t.size(0) == 0) {
    // channels == 0 would divide by zero computing the block size below.
    throw std::invalid_argument("pack_per_channel: need size(0) > 0");
  }
  const auto& spec = format_spec(kind);
  const auto maxima = absmax_per_channel(t, 0);
  std::vector<float> scales(maxima.size());
  for (size_t c = 0; c < maxima.size(); ++c) {
    scales[c] = maxima[c] > 0.0f ? spec.max_value() / maxima[c] : 1.0f;
  }
  return pack_per_channel_scaled(t, kind, std::move(scales));
}

PackedFp8Tensor PackedFp8Tensor::pack_per_channel_scaled(const Tensor& t, Fp8Kind kind,
                                                         std::vector<float> scales) {
  if (t.dim() < 1) throw std::invalid_argument("pack_per_channel_scaled: need rank >= 1");
  if (t.size(0) == 0 || scales.size() != static_cast<size_t>(t.size(0))) {
    throw std::invalid_argument("pack_per_channel_scaled: need one scale per channel");
  }
  PackedFp8Tensor p;
  p.kind_ = kind;
  p.shape_ = t.shape();
  p.scales_ = std::move(scales);
  const auto& spec = format_spec(kind);
  const std::int64_t channels = t.size(0);
  const std::int64_t block = t.numel() / channels;
  p.codes_.resize(static_cast<size_t>(t.numel()));
  const auto data = t.flat();
  for (std::int64_t c = 0; c < channels; ++c) {
    const float s = p.scales_[static_cast<size_t>(c)];
    for (std::int64_t i = 0; i < block; ++i) {
      const auto idx = static_cast<size_t>(c * block + i);
      p.codes_[idx] = fp8_encode(data[idx] * s, spec);
    }
  }
  return p;
}

PackedFp8Tensor PackedFp8Tensor::pack_per_tensor(const Tensor& t, Fp8Kind kind) {
  PackedFp8Tensor p;
  p.kind_ = kind;
  p.shape_ = t.shape();
  const auto& spec = format_spec(kind);
  const float amax = absmax(t);
  p.scales_ = {amax > 0.0f ? spec.max_value() / amax : 1.0f};
  p.codes_.resize(static_cast<size_t>(t.numel()));
  const auto data = t.flat();
  const float s = p.scales_[0];
  for (size_t i = 0; i < p.codes_.size(); ++i) {
    p.codes_[i] = fp8_encode(data[i] * s, spec);
  }
  return p;
}

Tensor PackedFp8Tensor::unpack() const {
  Tensor t(shape_);
  const auto& spec = format_spec(kind_);
  auto data = t.flat();
  if (scales_.size() <= 1) {
    const float inv = scales_.empty() ? 1.0f : 1.0f / scales_[0];
    for (size_t i = 0; i < codes_.size(); ++i) data[i] = fp8_decode(codes_[i], spec) * inv;
    return t;
  }
  const auto channels = static_cast<std::int64_t>(scales_.size());
  const std::int64_t block = t.numel() / channels;
  for (std::int64_t c = 0; c < channels; ++c) {
    const float inv = 1.0f / scales_[static_cast<size_t>(c)];
    for (std::int64_t i = 0; i < block; ++i) {
      const auto idx = static_cast<size_t>(c * block + i);
      data[idx] = fp8_decode(codes_[idx], spec) * inv;
    }
  }
  return t;
}

}  // namespace fp8q
