#include "fp8/packed.h"

#include <stdexcept>

#include "fp8/cast.h"
#include "tensor/stats.h"

namespace fp8q {

PackedFp8Tensor PackedFp8Tensor::pack_per_channel(const Tensor& t, Fp8Kind kind) {
  if (t.dim() < 1) throw std::invalid_argument("pack_per_channel: need rank >= 1");
  if (t.size(0) == 0) {
    // channels == 0 would divide by zero computing the block size below.
    throw std::invalid_argument("pack_per_channel: need size(0) > 0");
  }
  PackedFp8Tensor p;
  p.kind_ = kind;
  p.shape_ = t.shape();
  const auto& spec = format_spec(kind);
  const auto maxima = absmax_per_channel(t, 0);
  p.scales_.resize(maxima.size());
  for (size_t c = 0; c < maxima.size(); ++c) {
    p.scales_[c] = maxima[c] > 0.0f ? spec.max_value() / maxima[c] : 1.0f;
  }
  const std::int64_t channels = t.size(0);
  const std::int64_t block = t.numel() / channels;
  p.codes_.resize(static_cast<size_t>(t.numel()));
  const auto data = t.flat();
  for (std::int64_t c = 0; c < channels; ++c) {
    const float s = p.scales_[static_cast<size_t>(c)];
    for (std::int64_t i = 0; i < block; ++i) {
      const auto idx = static_cast<size_t>(c * block + i);
      p.codes_[idx] = fp8_encode(data[idx] * s, spec);
    }
  }
  return p;
}

PackedFp8Tensor PackedFp8Tensor::pack_per_tensor(const Tensor& t, Fp8Kind kind) {
  PackedFp8Tensor p;
  p.kind_ = kind;
  p.shape_ = t.shape();
  const auto& spec = format_spec(kind);
  const float amax = absmax(t);
  p.scales_ = {amax > 0.0f ? spec.max_value() / amax : 1.0f};
  p.codes_.resize(static_cast<size_t>(t.numel()));
  const auto data = t.flat();
  const float s = p.scales_[0];
  for (size_t i = 0; i < p.codes_.size(); ++i) {
    p.codes_[i] = fp8_encode(data[i] * s, spec);
  }
  return p;
}

Tensor PackedFp8Tensor::unpack() const {
  Tensor t(shape_);
  const auto& spec = format_spec(kind_);
  auto data = t.flat();
  if (scales_.size() <= 1) {
    const float inv = scales_.empty() ? 1.0f : 1.0f / scales_[0];
    for (size_t i = 0; i < codes_.size(); ++i) data[i] = fp8_decode(codes_[i], spec) * inv;
    return t;
  }
  const auto channels = static_cast<std::int64_t>(scales_.size());
  const std::int64_t block = t.numel() / channels;
  for (std::int64_t c = 0; c < channels; ++c) {
    const float inv = 1.0f / scales_[static_cast<size_t>(c)];
    for (std::int64_t i = 0; i < block; ++i) {
      const auto idx = static_cast<size_t>(c * block + i);
      data[idx] = fp8_decode(codes_[idx], spec) * inv;
    }
  }
  return t;
}

}  // namespace fp8q
