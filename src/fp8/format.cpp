#include "fp8/format.h"

#include <cmath>
#include <stdexcept>

namespace fp8q {

namespace {

constexpr FormatSpec kE5M2{5, 2, 15, EncodingFamily::kIeee, "E5M2"};
constexpr FormatSpec kE4M3{4, 3, 7, EncodingFamily::kExtended, "E4M3"};
constexpr FormatSpec kE3M4{3, 4, 3, EncodingFamily::kExtended, "E3M4"};

}  // namespace

float FormatSpec::max_value() const {
  // IEEE family: largest mantissa (all ones) at the top normal exponent.
  // Extended family: mantissa all-ones at the top exponent is NaN, so the
  // largest finite value uses mantissa all-ones-minus-one.
  const double top_fraction = (family == EncodingFamily::kIeee)
                                  ? 2.0 - std::ldexp(1.0, -man_bits)
                                  : 2.0 - std::ldexp(2.0, -man_bits);
  return static_cast<float>(std::ldexp(top_fraction, max_unbiased_exp()));
}

float FormatSpec::min_normal() const {
  return static_cast<float>(std::ldexp(1.0, min_unbiased_exp()));
}

float FormatSpec::min_subnormal() const {
  return static_cast<float>(std::ldexp(1.0, min_unbiased_exp() - man_bits));
}

int FormatSpec::finite_code_count() const {
  if (family == EncodingFamily::kIeee) {
    // Exclude the whole top exponent plane (Inf + NaNs) for both signs.
    return 256 - 2 * (1 << man_bits);
  }
  // Extended: only the two all-ones-payload codes (0x7F-like and its
  // negative counterpart) are NaN.
  return 256 - 2;
}

double FormatSpec::grid_density_at(double magnitude) const {
  if (!(magnitude > 0.0)) return 0.0;
  const double n = std::floor(std::log2(magnitude));
  return std::ldexp(1.0, man_bits - static_cast<int>(n));
}

const FormatSpec& format_spec(Fp8Kind kind) {
  switch (kind) {
    case Fp8Kind::E5M2:
      return kE5M2;
    case Fp8Kind::E4M3:
      return kE4M3;
    case Fp8Kind::E3M4:
      return kE3M4;
  }
  throw std::invalid_argument("unknown Fp8Kind");
}

FormatSpec make_format(int exp_bits, int man_bits, int bias_override, bool ieee) {
  if (exp_bits < 1 || man_bits < 0 || exp_bits + man_bits != 7) {
    throw std::invalid_argument("FP8 format requires 1 sign + e + m == 8 bits");
  }
  FormatSpec spec;
  spec.exp_bits = exp_bits;
  spec.man_bits = man_bits;
  spec.bias = bias_override >= 0 ? bias_override : (1 << (exp_bits - 1)) - 1;
  spec.family = ieee ? EncodingFamily::kIeee : EncodingFamily::kExtended;
  spec.name = "custom";
  return spec;
}

std::string_view to_string(Fp8Kind kind) { return format_spec(kind).name; }

ObsFormat obs_format(const FormatSpec& spec) {
  if (spec.exp_bits == 5 && spec.man_bits == 2 && spec.family == EncodingFamily::kIeee) {
    return ObsFormat::kE5M2;
  }
  if (spec.family == EncodingFamily::kExtended) {
    if (spec.exp_bits == 4 && spec.man_bits == 3) return ObsFormat::kE4M3;
    if (spec.exp_bits == 3 && spec.man_bits == 4) return ObsFormat::kE3M4;
  }
  return ObsFormat::kOther;
}

Fp8Kind fp8_kind_from_string(std::string_view s) {
  auto eq = [&](std::string_view t) {
    if (s.size() != t.size()) return false;
    for (size_t i = 0; i < s.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(s[i])) != t[i]) return false;
    }
    return true;
  };
  if (eq("E5M2")) return Fp8Kind::E5M2;
  if (eq("E4M3")) return Fp8Kind::E4M3;
  if (eq("E3M4")) return Fp8Kind::E3M4;
  throw std::invalid_argument("unknown FP8 format: " + std::string(s));
}

}  // namespace fp8q
