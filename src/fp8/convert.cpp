#include "fp8/convert.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/parallel.h"
#include "fp8/cast.h"

namespace fp8q {

std::uint8_t fp8_convert(std::uint8_t code, const FormatSpec& from, const FormatSpec& to) {
  const float v = fp8_decode(code, from);
  if (std::isnan(v)) return fp8_nan_code(to) | static_cast<std::uint8_t>(code & 0x80);
  return fp8_encode(v, to);  // default options: RNE + saturate
}

void fp8_convert(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                 const FormatSpec& from, const FormatSpec& to) {
  std::array<std::uint8_t, 256> lut;
  for (int c = 0; c < 256; ++c) {
    lut[static_cast<std::size_t>(c)] = fp8_convert(static_cast<std::uint8_t>(c), from, to);
  }
  const auto n = static_cast<std::int64_t>(std::min(in.size(), out.size()));
  // Table lookups are memory-bound; only tensors of ~100k+ codes are worth
  // fanning out.
  parallel_for(0, n, 65536, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) out[i] = lut[in[i]];
  });
}

bool fp8_convert_lossless(const FormatSpec& from, const FormatSpec& to) {
  for (int c = 0; c < 256; ++c) {
    const auto code = static_cast<std::uint8_t>(c);
    if (fp8_is_nan(code, from) || fp8_is_inf(code, from)) continue;
    const float v = fp8_decode(code, from);
    const float round_trip = fp8_decode(fp8_encode(v, to), to);
    if (std::isnan(round_trip) || round_trip != v) return false;
  }
  return true;
}

}  // namespace fp8q
