#include "fp8/convert.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/parallel.h"
#include "fp8/cast.h"
#include "obs/counters.h"

namespace fp8q {

std::uint8_t fp8_convert(std::uint8_t code, const FormatSpec& from, const FormatSpec& to) {
  const float v = fp8_decode(code, from);
  if (std::isnan(v)) return fp8_nan_code(to) | static_cast<std::uint8_t>(code & 0x80);
  return fp8_encode(v, to);  // default options: RNE + saturate
}

namespace {

/// Per-code event bitmask for the bulk converter: events are classified once
/// per code point against the target format, then chunks tally via lookups.
enum : std::uint8_t {
  kEvSaturated = 1u << 0,
  kEvFlushed = 1u << 1,
  kEvNan = 1u << 2,
  kEvInf = 1u << 3,
};

std::uint8_t classify_convert(std::uint8_t in_code, std::uint8_t out_code,
                              const FormatSpec& from, const FormatSpec& to) {
  const float x = fp8_decode(in_code, from);
  const float q = fp8_decode(out_code, to);
  if (std::isnan(q)) return std::isnan(x) ? 0 : kEvNan;
  if (std::isinf(q)) return std::isinf(x) ? 0 : kEvInf;
  if (q == 0.0f) return x != 0.0f ? kEvFlushed : 0;
  if (std::fabs(q) == to.max_value() && std::fabs(x) > to.max_value()) return kEvSaturated;
  return 0;
}

}  // namespace

void fp8_convert(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                 const FormatSpec& from, const FormatSpec& to) {
  std::array<std::uint8_t, 256> lut;
  for (int c = 0; c < 256; ++c) {
    lut[static_cast<std::size_t>(c)] = fp8_convert(static_cast<std::uint8_t>(c), from, to);
  }
  const auto n = static_cast<std::int64_t>(std::min(in.size(), out.size()));
  // Event accounting piggybacks on the value LUT: a second 256-entry table
  // of per-code event bitmasks, classified once up front, attributed to the
  // TARGET format's counter bucket.
  const bool counted = counters_enabled();
  std::array<std::uint8_t, 256> events{};
  ObsFormat fmt = ObsFormat::kOther;
  if (counted) {
    fmt = obs_format(to);
    for (int c = 0; c < 256; ++c) {
      const auto code = static_cast<std::uint8_t>(c);
      events[static_cast<std::size_t>(c)] = classify_convert(code, lut[code], from, to);
    }
  }
  // Table lookups are memory-bound; only tensors of ~100k+ codes are worth
  // fanning out (one code is one byte, so the byte grain is the grain).
  constexpr std::int64_t kGrain = kParallelGrainBytes / static_cast<std::int64_t>(sizeof(std::uint8_t));
  parallel_for(0, n, kGrain, [&, counted](std::int64_t lo, std::int64_t hi) {
    if (!counted) {
      for (std::int64_t i = lo; i < hi; ++i) out[i] = lut[in[i]];
      return;
    }
    std::uint64_t saturated = 0;
    std::uint64_t flushed = 0;
    std::uint64_t nans = 0;
    std::uint64_t infs = 0;
    for (std::int64_t i = lo; i < hi; ++i) {
      const std::uint8_t code = in[i];
      out[i] = lut[code];
      const std::uint8_t ev = events[code];
      saturated += (ev >> 0) & 1u;
      flushed += (ev >> 1) & 1u;
      nans += (ev >> 2) & 1u;
      infs += (ev >> 3) & 1u;
    }
    counter_add(fmt, ObsEvent::kQuantized, static_cast<std::uint64_t>(hi - lo));
    counter_add(fmt, ObsEvent::kSaturated, saturated);
    counter_add(fmt, ObsEvent::kFlushedToZero, flushed);
    counter_add(fmt, ObsEvent::kNanProduced, nans);
    counter_add(fmt, ObsEvent::kInfProduced, infs);
  });
}

bool fp8_convert_lossless(const FormatSpec& from, const FormatSpec& to) {
  for (int c = 0; c < 256; ++c) {
    const auto code = static_cast<std::uint8_t>(c);
    if (fp8_is_nan(code, from) || fp8_is_inf(code, from)) continue;
    const float v = fp8_decode(code, from);
    const float round_trip = fp8_decode(fp8_encode(v, to), to);
    if (std::isnan(round_trip) || round_trip != v) return false;
  }
  return true;
}

}  // namespace fp8q
