// FP8 binary format descriptions (paper Table 1).
//
// An FP8 format is described by an exponent width `e`, a mantissa width `m`
// (1 + e + m == 8), an exponent bias `b`, and an encoding family. The byte
// layout is sign | exponent | mantissa, most-significant bit first:
//
//   E5M2:  s eeeee mm    bias 15   (IEEE family)
//   E4M3:  s eeee mmm    bias  7   (extended family)
//   E3M4:  s eee mmmm    bias  3   (extended family)
//
// Value rules (identical to IEEE-754 scaled down to 8 bits):
//   * exponent field E > 0:  value = (-1)^s * (1 + mant/2^m) * 2^(E - b)
//   * exponent field E == 0: value = (-1)^s * (mant/2^m) * 2^(1 - b)
//     (subnormals: gradual underflow on the grid of the smallest normal
//     binade; mant == 0 gives signed zero)
//
// The two families differ only in what the TOP exponent field means:
//   * IEEE-like (E5M2): the all-ones exponent field is reserved for
//     +/-Infinity (mantissa == 0) and NaNs (mantissa != 0), exactly like
//     binary16/32/64 scaled down. 6 NaN codes (0x7D-0x7F, 0xFD-0xFF),
//     Inf at 0x7C/0xFC, max finite 0x7B = 57344.
//   * Extended (E4M3, E3M4): +/-Infinity is reclaimed for useful
//     encodings; only the single bit pattern with exponent AND mantissa
//     all-ones is NaN (one per sign: 0x7F/0xFF), every other code is a
//     finite value. This buys roughly one extra binade of range:
//     max finite 0x7E = 448 (E4M3) / 30 (E3M4).
//
// Saturation (paper section 2): the default cast policy clamps anything
// beyond the max finite magnitude -- overflow, and +/-Inf inputs -- to
// +/-max instead of producing Inf/NaN, the right behavior after PTQ range
// calibration. CastOptions::overflow == kInfinityNan (fp8/cast.h) selects
// the IEEE-faithful alternative: overflow goes to Inf where the format
// has one (E5M2), else to NaN. NaN inputs encode to NaN in every mode.
// All formats support signed zero and subnormals; canonical constants for
// the three paper formats are tabulated in core/fp8q.h.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/counters.h"

namespace fp8q {

/// The three formats studied in the paper.
enum class Fp8Kind : std::uint8_t { E5M2, E4M3, E3M4 };

/// Encoding family for the maximum exponent field.
enum class EncodingFamily : std::uint8_t {
  kIeee,      ///< all-ones exponent reserved for Inf/NaN (E5M2)
  kExtended,  ///< all-ones exponent holds normal values; single NaN code
};

/// Full description of an 8-bit floating point format. Immutable value type.
struct FormatSpec {
  int exp_bits = 0;       ///< e: exponent field width in bits
  int man_bits = 0;       ///< m: mantissa (fraction) field width in bits
  int bias = 0;           ///< exponent bias b
  EncodingFamily family = EncodingFamily::kIeee;
  std::string_view name = "";

  /// Unbiased exponent of the smallest normal number (also used for
  /// subnormals): 1 - bias.
  [[nodiscard]] constexpr int min_unbiased_exp() const { return 1 - bias; }

  /// Unbiased exponent of the largest normal number.
  [[nodiscard]] constexpr int max_unbiased_exp() const {
    const int max_field =
        (family == EncodingFamily::kIeee) ? (1 << exp_bits) - 2 : (1 << exp_bits) - 1;
    return max_field - bias;
  }

  /// Largest finite representable magnitude (448.0 for E4M3, ...).
  [[nodiscard]] float max_value() const;

  /// Smallest positive normal magnitude: 2^(1-bias).
  [[nodiscard]] float min_normal() const;

  /// Smallest positive subnormal magnitude: 2^(1-bias-m).
  [[nodiscard]] float min_subnormal() const;

  /// True if the format can encode +/-Infinity (IEEE family only).
  [[nodiscard]] constexpr bool has_infinity() const {
    return family == EncodingFamily::kIeee;
  }

  /// Number of distinct finite non-NaN codes (including both zeros).
  [[nodiscard]] int finite_code_count() const;

  /// Quantization grid density around decimal magnitude N (Appendix A.1,
  /// Eq. 2): 2^(m - floor(log2 N)) representable values per unit interval.
  [[nodiscard]] double grid_density_at(double magnitude) const;
};

/// Returns the spec for one of the three paper formats.
[[nodiscard]] const FormatSpec& format_spec(Fp8Kind kind);

/// Builds a custom E(e)M(m) spec (e.g. E2M5 from Kuzmin et al.). The bias
/// defaults to 2^(e-1) - 1; extended encoding unless `ieee` is set.
[[nodiscard]] FormatSpec make_format(int exp_bits, int man_bits, int bias_override = -1,
                                     bool ieee = false);

[[nodiscard]] std::string_view to_string(Fp8Kind kind);

/// Counter bucket for quantization-event accounting (obs/counters.h): the
/// three paper formats map to their own buckets, custom EeMm formats from
/// make_format to ObsFormat::kOther.
[[nodiscard]] ObsFormat obs_format(const FormatSpec& spec);

/// Parses "E5M2"/"e4m3"/... ; throws std::invalid_argument on other input.
[[nodiscard]] Fp8Kind fp8_kind_from_string(std::string_view s);

/// All three paper formats, in dynamic-range order.
inline constexpr Fp8Kind kAllFp8Kinds[] = {Fp8Kind::E5M2, Fp8Kind::E4M3, Fp8Kind::E3M4};

}  // namespace fp8q
