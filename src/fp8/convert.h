// Cross-format FP8 conversion: re-encoding a tensor of one FP8 format's
// codes into another format (mixed-format pipelines hand tensors between
// E4M3 activations and E3M4 weights; a deployment runtime converts at the
// boundary).
#pragma once

#include <cstdint>
#include <span>

#include "fp8/format.h"

namespace fp8q {

/// Re-encodes a code of `from` into `to` (round-to-nearest-even,
/// saturating). NaN maps to NaN; Inf (E5M2) saturates to the target max.
[[nodiscard]] std::uint8_t fp8_convert(std::uint8_t code, const FormatSpec& from,
                                       const FormatSpec& to);

/// Bulk re-encoding of a tensor of `from`-codes into `to`-codes (the
/// mixed-format boundary cast of a deployment runtime). Builds the
/// 256-entry conversion table once, then streams it over the span in
/// parallel; out[i] == fp8_convert(in[i], from, to) for every i. `in` and
/// `out` may alias exactly (in-place) but must not partially overlap.
/// Processes min(in.size(), out.size()) elements.
void fp8_convert(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                 const FormatSpec& from, const FormatSpec& to);

/// True if every finite value of `from` is exactly representable in `to`
/// (i.e. conversion is lossless). E.g. no 8-bit pair satisfies this in
/// both directions unless the formats are identical.
[[nodiscard]] bool fp8_convert_lossless(const FormatSpec& from, const FormatSpec& to);

}  // namespace fp8q
