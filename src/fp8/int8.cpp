#include "fp8/int8.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/counters.h"
#include "obs/histogram.h"

namespace fp8q {

namespace {

/// Round half to even, matching the FP8 cast path and typical INT8 kernels.
/// Total over all finite floats: inputs beyond the int32 range clamp to the
/// range bounds first — converting an out-of-range float to an integer is
/// undefined behaviour (UBSan float-cast-overflow), and every caller clamps
/// to [qmin, qmax] afterwards anyway, so the result is unchanged.
std::int32_t round_nearest_even(float v) {
  constexpr float kLo = -2147483648.0f;  // exactly INT32_MIN
  constexpr float kHi = 2147483520.0f;   // largest float < INT32_MAX
  if (v <= kLo) return std::numeric_limits<std::int32_t>::min();
  if (v >= kHi) return std::numeric_limits<std::int32_t>::max();
  const float f = std::floor(v);
  const float frac = v - f;
  auto fi = static_cast<std::int64_t>(f);
  if (frac > 0.5f || (frac == 0.5f && (fi & 1))) ++fi;
  return static_cast<std::int32_t>(fi);
}

}  // namespace

Int8Params int8_symmetric_params(float absmax) {
  Int8Params p;
  p.qmin = -127;
  p.qmax = 127;
  p.zero_point = 0;
  p.scale = (absmax > 0.0f && std::isfinite(absmax)) ? absmax / 127.0f : 1.0f;
  return p;
}

Int8Params int8_asymmetric_params(float min_value, float max_value) {
  // The range must include zero so that padding/ReLU zeros are exact.
  min_value = std::min(min_value, 0.0f);
  max_value = std::max(max_value, 0.0f);
  Int8Params p;
  p.qmin = -128;
  p.qmax = 127;
  const float span = max_value - min_value;
  p.scale = (span > 0.0f && std::isfinite(span)) ? span / 255.0f : 1.0f;
  const float zp = static_cast<float>(p.qmin) - min_value / p.scale;
  p.zero_point = std::clamp(round_nearest_even(zp), p.qmin, p.qmax);
  return p;
}

std::int8_t int8_encode(float x, const Int8Params& p) {
  if (std::isnan(x)) return 0;
  const float scaled = x / p.scale + static_cast<float>(p.zero_point);
  const std::int32_t q = std::clamp(round_nearest_even(scaled), p.qmin, p.qmax);
  return static_cast<std::int8_t>(q);
}

float int8_decode(std::int8_t q, const Int8Params& p) {
  return (static_cast<float>(q) - static_cast<float>(p.zero_point)) * p.scale;
}

float int8_quantize(float x, const Int8Params& p) {
  return int8_decode(int8_encode(x, p), p);
}

void int8_quantize(std::span<const float> in, std::span<float> out, const Int8Params& p) {
  const size_t n = std::min(in.size(), out.size());
  if (histograms_enabled()) {
    // Pre-quant magnitude sweep over the raw inputs, done first because
    // `out` may alias `in`. Per-element classification, so the merged
    // counts do not depend on call granularity.
    LocalHistogram local;
    for (size_t i = 0; i < n; ++i) local.record(std::fabs(static_cast<double>(in[i])));
    hist_merge(HistChannel::kCastMagInt8, local);
  }
  if (!counters_enabled()) {
    for (size_t i = 0; i < n; ++i) out[i] = int8_quantize(in[i], p);
    return;
  }
  // Saturation = rounded value clipped by [qmin, qmax]; flush-to-zero =
  // nonzero input decodes to exactly 0 (NaN inputs also land here by the
  // encode rule). Tallied locally, flushed once per call.
  std::uint64_t saturated = 0;
  std::uint64_t flushed = 0;
  for (size_t i = 0; i < n; ++i) {
    const float x = in[i];
    const float q = int8_quantize(x, p);
    out[i] = q;
    if (!std::isnan(x)) {
      const float scaled = x / p.scale + static_cast<float>(p.zero_point);
      const std::int32_t rounded = round_nearest_even(scaled);
      if (rounded < p.qmin || rounded > p.qmax) {
        ++saturated;
      } else if (q == 0.0f && x != 0.0f) {
        ++flushed;
      }
    }
  }
  counter_add(ObsFormat::kInt8, ObsEvent::kQuantized, static_cast<std::uint64_t>(n));
  counter_add(ObsFormat::kInt8, ObsEvent::kSaturated, saturated);
  counter_add(ObsFormat::kInt8, ObsEvent::kFlushedToZero, flushed);
}

}  // namespace fp8q
