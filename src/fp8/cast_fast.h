// Branch-light FP8 fake-quantization via float32 bit manipulation.
//
// Semantics: identical to fp8_quantize(x, spec) with the default options
// (round-to-nearest-even, saturate-on-overflow) -- verified exhaustively
// against the reference implementation in the test suite. This is the hot
// path of the emulation framework: every activation element of every
// quantized operator passes through it.
//
// Two forms (docs/PERFORMANCE.md):
//   * fp8_quantize_fast      -- scalar, early-exit branches. Kept as the
//                               exhaustive-test reference.
//   * fp8_quantize_batch     -- branch-free loop over a contiguous chunk,
//                               written so the compiler auto-vectorizes it
//                               (constant shifts, compare-selects, no
//                               per-lane control flow). Bit-identical to
//                               the scalar path, including NaN payloads.
//
// The packed GEMM kernels (nn/packed_gemm.h, docs/KERNELS.md) apply the
// same design to the DECODE direction: fp8_decode_bits in fp8/packed.h is
// the uint32-lane counterpart of fp8_quantize_batch's encode, with the
// same reference-vs-batched pairing and the same exhaustive bit-equality
// test policy.
#pragma once

#include <cstdint>
#include <span>

#include "fp8/format.h"

namespace fp8q {

/// Precomputed per-format constants for the fast path.
struct FastCastSpec {
  explicit FastCastSpec(const FormatSpec& spec);

  int man_bits;
  int min_unbiased_exp;           ///< grid exponent floor (1 - bias)
  std::uint32_t max_bits;         ///< bit pattern of the largest finite value
  std::uint32_t half_min_sub;     ///< bit pattern of min_subnormal / 2
  float min_subnormal;
  std::uint32_t min_biased_exp;   ///< min_unbiased_exp + 127 (float32 bias)
  float max_value;                ///< largest finite representable magnitude
  ObsFormat obs_fmt;              ///< counter bucket for event accounting
};

/// Per-chunk quantization-event tally produced by fp8_quantize_batch.
/// Semantics match the per-element counters the scalar path feeds into
/// obs/counters.h: `quantized` counts every element, `saturated` counts
/// finite overflow and +/-Inf (not NaN), `flushed` counts nonzero inputs
/// at or below half the smallest subnormal -- all classified on the
/// SCALED value, before dividing the scale back out.
struct CastTally {
  std::uint64_t quantized = 0;
  std::uint64_t saturated = 0;
  std::uint64_t flushed = 0;
};

/// RNE + saturating fake quantization; NaN passes through.
[[nodiscard]] float fp8_quantize_fast(float x, const FastCastSpec& spec);

/// Batched chunk kernel: out[i] = fp8_quantize_fast(in[i] * scale) / scale
/// for i in [0, min(in.size, out.size)), single-threaded and branch-free.
/// `out` may alias `in` exactly (same base pointer) or not overlap at all.
/// The caller must pre-sanitize `scale` (positive, finite). When `tally`
/// is non-null the chunk's events are accumulated into it via a separate
/// classification pass over `in` BEFORE quantizing, so outputs are
/// bit-identical whether or not events are tallied.
void fp8_quantize_batch(std::span<const float> in, std::span<float> out,
                        const FastCastSpec& spec, float scale,
                        CastTally* tally = nullptr);

/// Vector form: out[i] = fp8_quantize_fast(in[i] * scale) / scale.
/// `out` may alias `in`. A non-finite or non-positive scale is treated as 1.
/// Parallelizes over ~kParallelGrainBytes chunks and folds one event tally
/// per chunk into the sharded counters when counting is enabled.
void fp8_quantize_scaled_fast(std::span<const float> in, std::span<float> out,
                              const FastCastSpec& spec, float scale);

/// Cached FastCastSpec for one of the three paper formats.
[[nodiscard]] const FastCastSpec& fast_cast_spec(Fp8Kind kind);

}  // namespace fp8q
