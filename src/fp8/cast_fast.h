// Branch-light FP8 fake-quantization via float32 bit manipulation.
//
// Semantics: identical to fp8_quantize(x, spec) with the default options
// (round-to-nearest-even, saturate-on-overflow) -- verified exhaustively
// against the reference implementation in the test suite. This is the hot
// path of the emulation framework: every activation element of every
// quantized operator passes through it.
#pragma once

#include <span>

#include "fp8/format.h"

namespace fp8q {

/// Precomputed per-format constants for the fast path.
struct FastCastSpec {
  explicit FastCastSpec(const FormatSpec& spec);

  int man_bits;
  int min_unbiased_exp;        ///< grid exponent floor (1 - bias)
  std::uint32_t max_bits;      ///< bit pattern of the largest finite value
  std::uint32_t half_min_sub;  ///< bit pattern of min_subnormal / 2
  float min_subnormal;
  ObsFormat obs_fmt;           ///< counter bucket for event accounting
};

/// RNE + saturating fake quantization; NaN passes through.
[[nodiscard]] float fp8_quantize_fast(float x, const FastCastSpec& spec);

/// Vector form: out[i] = fp8_quantize_fast(in[i] * scale) / scale.
/// `out` may alias `in`. A non-finite or non-positive scale is treated as 1.
void fp8_quantize_scaled_fast(std::span<const float> in, std::span<float> out,
                              const FastCastSpec& spec, float scale);

/// Cached FastCastSpec for one of the three paper formats.
[[nodiscard]] const FastCastSpec& fast_cast_spec(Fp8Kind kind);

}  // namespace fp8q
