#include "fp8/cast_fast.h"

#include <bit>
#include <cmath>

#include "core/parallel.h"
#include "obs/counters.h"

namespace fp8q {

FastCastSpec::FastCastSpec(const FormatSpec& spec)
    : man_bits(spec.man_bits),
      min_unbiased_exp(spec.min_unbiased_exp()),
      max_bits(std::bit_cast<std::uint32_t>(spec.max_value())),
      half_min_sub(std::bit_cast<std::uint32_t>(spec.min_subnormal() * 0.5f)),
      min_subnormal(spec.min_subnormal()),
      obs_fmt(obs_format(spec)) {}

float fp8_quantize_fast(float x, const FastCastSpec& spec) {
  std::uint32_t u = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t sign = u & 0x80000000u;
  std::uint32_t au = u & 0x7FFFFFFFu;

  if (au >= 0x7F800000u) {
    // NaN passes through; +/-Inf saturates to +/-max.
    if (au > 0x7F800000u) return x;
    return std::bit_cast<float>(sign | spec.max_bits);
  }
  if (au <= spec.half_min_sub) {
    // At or below half the smallest subnormal: rounds to (signed) zero.
    // The exact tie (== half) goes to zero by round-to-even.
    return std::bit_cast<float>(sign);
  }

  // Effective mantissa width shrinks by one bit per binade below the
  // normal range (shared subnormal grid at min_unbiased_exp).
  const int e32 = static_cast<int>(au >> 23) - 127;
  int shift = 23 - spec.man_bits;
  if (e32 < spec.min_unbiased_exp) shift += spec.min_unbiased_exp - e32;

  if (shift >= 24) {
    // Value in (half_min_sub, min_subnormal): rounds up to the smallest
    // subnormal (the exact tie was handled above).
    const float mag = spec.min_subnormal;
    return sign ? -mag : mag;
  }

  // Round-to-nearest-even at `shift` dropped bits: add the rounding bias
  // (carry propagates naturally into the exponent field). When the whole
  // mantissa is dropped (shift == 23, the lowest subnormal binade with one
  // effective bit), the kept LSB lies in the exponent field and no longer
  // encodes grid parity; there the upper neighbour (2 ulp, even) always
  // wins ties, which is exactly round-half-up.
  const std::uint32_t bias = shift == 23
                                 ? (1u << 22)
                                 : ((1u << (shift - 1)) - 1u) + ((au >> shift) & 1u);
  au += bias;
  au &= ~((1u << shift) - 1u);

  if (au > spec.max_bits) au = spec.max_bits;  // saturate
  return std::bit_cast<float>(sign | au);
}

void fp8_quantize_scaled_fast(std::span<const float> in, std::span<float> out,
                              const FastCastSpec& spec, float scale) {
  if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
  const float inv = 1.0f / scale;
  const auto n = static_cast<std::int64_t>(in.size() < out.size() ? in.size() : out.size());
  // Event counting is decided once per bulk call (not per element); the
  // instrumented loop classifies each scaled input from its bit pattern --
  // the same comparisons the cast itself performs -- and flushes one tally
  // per chunk, so outputs are bit-identical with counters on or off.
  const bool counted = counters_enabled();
  // Pure per-element bit math: each index writes only out[i], so the
  // result is bit-identical at any thread count. The fast path runs at a
  // few ns/element; a large grain keeps single-batch calls inline.
  parallel_for(0, n, 16384, [&, counted](std::int64_t lo, std::int64_t hi) {
    if (!counted) {
      for (std::int64_t i = lo; i < hi; ++i) {
        out[i] = fp8_quantize_fast(in[i] * scale, spec) * inv;
      }
      return;
    }
    std::uint64_t saturated = 0;
    std::uint64_t flushed = 0;
    for (std::int64_t i = lo; i < hi; ++i) {
      const float scaled = in[i] * scale;
      out[i] = fp8_quantize_fast(scaled, spec) * inv;
      const std::uint32_t au = std::bit_cast<std::uint32_t>(scaled) & 0x7FFFFFFFu;
      if (au > spec.max_bits) {
        // Finite overflow and +/-Inf clamp to +/-max; NaN (au above the
        // Inf pattern) passes through and is not an event.
        if (au <= 0x7F800000u) ++saturated;
      } else if (au != 0 && au <= spec.half_min_sub) {
        ++flushed;  // at or below half the smallest subnormal: rounds to 0
      }
    }
    counter_add(spec.obs_fmt, ObsEvent::kQuantized, static_cast<std::uint64_t>(hi - lo));
    counter_add(spec.obs_fmt, ObsEvent::kSaturated, saturated);
    counter_add(spec.obs_fmt, ObsEvent::kFlushedToZero, flushed);
  });
}

const FastCastSpec& fast_cast_spec(Fp8Kind kind) {
  static const FastCastSpec specs[3] = {FastCastSpec(format_spec(Fp8Kind::E5M2)),
                                        FastCastSpec(format_spec(Fp8Kind::E4M3)),
                                        FastCastSpec(format_spec(Fp8Kind::E3M4))};
  return specs[static_cast<int>(kind)];
}

}  // namespace fp8q
