#include "fp8/cast_fast.h"

#include <bit>
#include <cmath>
#include <cstddef>

#include "core/parallel.h"
#include "obs/counters.h"
#include "obs/histogram.h"

namespace fp8q {

FastCastSpec::FastCastSpec(const FormatSpec& spec)
    : man_bits(spec.man_bits),
      min_unbiased_exp(spec.min_unbiased_exp()),
      max_bits(std::bit_cast<std::uint32_t>(spec.max_value())),
      half_min_sub(std::bit_cast<std::uint32_t>(spec.min_subnormal() * 0.5f)),
      min_subnormal(spec.min_subnormal()),
      min_biased_exp(static_cast<std::uint32_t>(spec.min_unbiased_exp() + 127)),
      max_value(spec.max_value()),
      obs_fmt(obs_format(spec)) {}

float fp8_quantize_fast(float x, const FastCastSpec& spec) {
  std::uint32_t u = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t sign = u & 0x80000000u;
  std::uint32_t au = u & 0x7FFFFFFFu;

  if (au >= 0x7F800000u) {
    // NaN passes through; +/-Inf saturates to +/-max.
    if (au > 0x7F800000u) return x;
    return std::bit_cast<float>(sign | spec.max_bits);
  }
  if (au <= spec.half_min_sub) {
    // At or below half the smallest subnormal: rounds to (signed) zero.
    // The exact tie (== half) goes to zero by round-to-even.
    return std::bit_cast<float>(sign);
  }

  // Effective mantissa width shrinks by one bit per binade below the
  // normal range (shared subnormal grid at min_unbiased_exp).
  const int e32 = static_cast<int>(au >> 23) - 127;
  int shift = 23 - spec.man_bits;
  if (e32 < spec.min_unbiased_exp) shift += spec.min_unbiased_exp - e32;

  if (shift >= 24) {
    // Value in (half_min_sub, min_subnormal): rounds up to the smallest
    // subnormal (the exact tie was handled above).
    const float mag = spec.min_subnormal;
    return sign ? -mag : mag;
  }

  // Round-to-nearest-even at `shift` dropped bits: add the rounding bias
  // (carry propagates naturally into the exponent field). When the whole
  // mantissa is dropped (shift == 23, the lowest subnormal binade with one
  // effective bit), the kept LSB lies in the exponent field and no longer
  // encodes grid parity; there the upper neighbour (2 ulp, even) always
  // wins ties, which is exactly round-half-up.
  const std::uint32_t bias = shift == 23
                                 ? (1u << 22)
                                 : ((1u << (shift - 1)) - 1u) + ((au >> shift) & 1u);
  au += bias;
  au &= ~((1u << shift) - 1u);

  if (au > spec.max_bits) au = spec.max_bits;  // saturate
  return std::bit_cast<float>(sign | au);
}

void fp8_quantize_batch(std::span<const float> in, std::span<float> out,
                        const FastCastSpec& spec, float scale, CastTally* tally) {
  const std::size_t n = in.size() < out.size() ? in.size() : out.size();
  const float inv = 1.0f / scale;
  const auto man = static_cast<std::uint32_t>(spec.man_bits);
  const std::uint32_t min_eb = spec.min_biased_exp;
  const std::uint32_t max_bits = spec.max_bits;
  const std::uint32_t half_min_sub = spec.half_min_sub;
  const float max_value = spec.max_value;

  if (tally != nullptr) {
    // Classification pass over the inputs FIRST: `out` may alias `in`, and
    // tallying in a separate read-only sweep keeps the quantize loop below
    // byte-identical whether or not events are being counted.
    std::uint64_t saturated = 0;
    std::uint64_t flushed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t au = std::bit_cast<std::uint32_t>(in[i] * scale) & 0x7FFFFFFFu;
      // Finite overflow and +/-Inf clamp to +/-max; NaN (above the Inf
      // pattern) passes through and is not an event.
      saturated += static_cast<std::uint64_t>(au > max_bits && au <= 0x7F800000u);
      // Nonzero but at or below half the smallest subnormal: rounds to 0.
      flushed += static_cast<std::uint64_t>(au != 0u && au <= half_min_sub);
    }
    tally->quantized += static_cast<std::uint64_t>(n);
    tally->saturated += saturated;
    tally->flushed += flushed;
  }

  // Branch-free rounding in the float domain. For a magnitude `ax` with
  // (clamped) biased exponent eb, the grid spacing is step = 2^(eb-127-man)
  // -- man mantissa bits per binade, widening to the shared subnormal grid
  // below min_biased_exp. Both step and 1/step are built by shifting an
  // exponent into a float, so `v = ax / step` and the final `k * step` are
  // EXACT power-of-two scalings; the single rounding happens in the magic
  // add, which snaps v < 2^22 to the nearest integer with ties-to-even.
  // That reproduces the scalar path bit for bit, including its two rounding
  // corners: in the lowest subnormal binade v lies in [1, 2), where the
  // RNE tie at 1.5 picks 2 (the even integer) -- the scalar shift == 23
  // round-half-up -- and in (half_min_sub, min_subnormal), v lies in
  // (0.5, 1), rounding up to one grid step, the scalar shift >= 24 case.
  // Inf survives the arithmetic (v = k = q = Inf) and the saturate select
  // clamps it to max_value; NaN fails every compare and is passed through
  // by the final select with its payload intact. All operations are
  // constant shifts, adds, multiplies and compare-selects, so the loop
  // auto-vectorizes (this file builds at -O3, src/fp8/CMakeLists.txt).
  constexpr float kRoundMagic = 12582912.0f;  // 1.5 * 2^23
  for (std::size_t i = 0; i < n; ++i) {
    const float scaled = in[i] * scale;
    const std::uint32_t u = std::bit_cast<std::uint32_t>(scaled);
    const std::uint32_t sign = u & 0x80000000u;
    const std::uint32_t au = u & 0x7FFFFFFFu;
    std::uint32_t eb = au >> 23;
    eb = eb < min_eb ? min_eb : eb;
    const float step = std::bit_cast<float>((eb - man) << 23);
    const float inv_step = std::bit_cast<float>((254u + man - eb) << 23);
    const float ax = std::bit_cast<float>(au);
    const float v = ax * inv_step;                        // exact
    const float k = (v + kRoundMagic) - kRoundMagic;      // RNE to integer
    float q = k * step;                                   // exact
    q = q > max_value ? max_value : q;                    // saturate
    std::uint32_t rbits = sign | std::bit_cast<std::uint32_t>(q);
    rbits = au <= half_min_sub ? sign : rbits;            // flush to zero
    rbits = au > 0x7F800000u ? u : rbits;                 // NaN passthrough
    out[i] = std::bit_cast<float>(rbits) * inv;
  }
}

void fp8_quantize_scaled_fast(std::span<const float> in, std::span<float> out,
                              const FastCastSpec& spec, float scale) {
  if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
  const auto n = static_cast<std::int64_t>(in.size() < out.size() ? in.size() : out.size());
  // Event counting is decided once per bulk call (not per element); tallies
  // are folded into the sharded counters once per chunk, and the batch
  // kernel computes them in a separate pass so outputs are bit-identical
  // with counters on or off.
  const bool counted = counters_enabled();
  const bool histed = histograms_enabled();
  // Pure per-element bit math: each index writes only out[i], so the
  // result is bit-identical at any thread count. The fast path runs at a
  // fraction of a ns/element; a large grain keeps single-batch calls inline.
  constexpr std::int64_t kGrain = kParallelGrainBytes / static_cast<std::int64_t>(sizeof(float));
  parallel_for(0, n, kGrain, [&, counted, histed](std::int64_t lo, std::int64_t hi) {
    const auto len = static_cast<std::size_t>(hi - lo);
    const auto src = in.subspan(static_cast<std::size_t>(lo), len);
    const auto dst = out.subspan(static_cast<std::size_t>(lo), len);
    if (histed) {
      // Pre-quant magnitude distribution. Like the tally pass this reads
      // the inputs BEFORE the quantize loop (out may alias in), and each
      // element is classified into a bucket exactly once per bulk call, so
      // the merged counts are invariant to chunking / thread count.
      LocalHistogram local;
      for (std::size_t i = 0; i < len; ++i) {
        local.record(std::fabs(static_cast<double>(src[i]) * scale));
      }
      hist_merge(cast_mag_channel(spec.obs_fmt), local);
    }
    if (!counted) {
      fp8_quantize_batch(src, dst, spec, scale);
      return;
    }
    CastTally tally;
    fp8_quantize_batch(src, dst, spec, scale, &tally);
    counter_add(spec.obs_fmt, ObsEvent::kQuantized, tally.quantized);
    counter_add(spec.obs_fmt, ObsEvent::kSaturated, tally.saturated);
    counter_add(spec.obs_fmt, ObsEvent::kFlushedToZero, tally.flushed);
  });
}

const FastCastSpec& fast_cast_spec(Fp8Kind kind) {
  static const FastCastSpec specs[3] = {FastCastSpec(format_spec(Fp8Kind::E5M2)),
                                        FastCastSpec(format_spec(Fp8Kind::E4M3)),
                                        FastCastSpec(format_spec(Fp8Kind::E3M4))};
  return specs[static_cast<int>(kind)];
}

}  // namespace fp8q
