// INT8 affine quantization baseline (paper Table 2 comparison row).
//
// Standard symmetric / asymmetric INT8 with round-to-nearest-even, the
// scheme the paper's INT8 baseline uses through Neural Compressor:
// per-channel symmetric weights, per-tensor activations (static for CV,
// dynamic for NLP).
#pragma once

#include <cstdint>
#include <span>

namespace fp8q {

/// Affine quantization parameters: real = (q - zero_point) * scale.
struct Int8Params {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
  std::int32_t qmin = -128;
  std::int32_t qmax = 127;
};

/// Symmetric parameters from a calibrated absolute maximum. Uses the
/// restricted range [-127, 127] so the grid is symmetric around zero.
[[nodiscard]] Int8Params int8_symmetric_params(float absmax);

/// Asymmetric parameters from calibrated [min, max]; full [-128, 127] range
/// with a zero-point chosen so that real 0.0 is exactly representable.
[[nodiscard]] Int8Params int8_asymmetric_params(float min_value, float max_value);

/// Quantizes one value to its integer code (round-to-nearest-even, clamped).
[[nodiscard]] std::int8_t int8_encode(float x, const Int8Params& p);

/// Dequantizes an integer code back to float32.
[[nodiscard]] float int8_decode(std::int8_t q, const Int8Params& p);

/// Fused quantize-dequantize of one value.
[[nodiscard]] float int8_quantize(float x, const Int8Params& p);

/// Vectorized fused quantize-dequantize. `out` may alias `in`.
void int8_quantize(std::span<const float> in, std::span<float> out, const Int8Params& p);

}  // namespace fp8q
