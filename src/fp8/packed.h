// Packed FP8 tensor storage: real uint8 codes plus scale metadata.
//
// The emulation framework computes in FP32 (fake quantization), but a
// deployed FP8 model stores weights as 8-bit codes -- 4x smaller than
// FP32. PackedFp8Tensor materializes that storage format: encode once,
// carry codes + per-channel scales, decode on demand. Round-tripping
// through the packed form is exactly the fake-quantized tensor (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "fp8/format.h"
#include "tensor/tensor.h"

namespace fp8q {

class PackedFp8Tensor {
 public:
  PackedFp8Tensor() = default;

  /// Packs with one scale per leading-axis channel (the paper's weight
  /// scheme): scale_c = float_max / absmax(channel c).
  [[nodiscard]] static PackedFp8Tensor pack_per_channel(const Tensor& t, Fp8Kind kind);

  /// Packs with a single tensor-wide scale.
  [[nodiscard]] static PackedFp8Tensor pack_per_tensor(const Tensor& t, Fp8Kind kind);

  /// Decodes back to float32: decode(code) / scale.
  [[nodiscard]] Tensor unpack() const;

  [[nodiscard]] Fp8Kind kind() const { return kind_; }
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] const std::vector<std::uint8_t>& codes() const { return codes_; }
  [[nodiscard]] const std::vector<float>& scales() const { return scales_; }
  [[nodiscard]] bool per_channel() const { return scales_.size() > 1; }

  /// Stored bytes (codes + scales), vs numel*4 for FP32.
  [[nodiscard]] std::size_t storage_bytes() const {
    return codes_.size() + scales_.size() * sizeof(float);
  }

 private:
  Fp8Kind kind_ = Fp8Kind::E4M3;
  Shape shape_;
  std::vector<std::uint8_t> codes_;
  std::vector<float> scales_;  ///< one per channel, or a single entry
};

}  // namespace fp8q
