// Packed FP8 tensor storage: real uint8 codes plus scale metadata.
//
// The emulation framework computes in FP32 (fake quantization), but a
// deployed FP8 model stores weights as 8-bit codes -- 4x smaller than
// FP32. PackedFp8Tensor materializes that storage format: encode once,
// carry codes + per-channel scales, decode on demand.
//
// Since the packed-GEMM work (docs/KERNELS.md) this file is also the home
// of the two decode primitives the compute kernels are built on:
//
//   * fp8_decode_table  -- a 256-entry float LUT per format, built from
//     the reference fp8_decode. The scalar kernel tier reads it directly;
//     every other tier is tested bit-equal against it.
//   * Fp8DecodeSpec     -- the constants for the branch-free uint32-lane
//     decode (fp8_decode_bits) used by the batched and native tiers.
//     Normal codes are rebuilt as float32 bits with pure integer ops
//     (shift the magnitude into position, ADD the rebias to the exponent
//     field); subnormal codes -- whose magnitude bits are just an integer
//     mantissa m encoding m * 2^(1 - bias - man_bits) -- go through an
//     exact int-to-float convert and one exact power-of-two multiply.
//     Every step is exact and every float32 operand is normal (the
//     smallest FP8 subnormal is >= 2^-16, far above float32's subnormal
//     range), so the decode is bit-identical to the LUT for all 256 codes
//     -- signed zero, subnormals, Inf (IEEE family), NaN (canonical
//     quiet-NaN bits) -- and never touches a denormal float32 operand,
//     which would stall the SIMD tiers with microcode assists on x86.
//
// Round-tripping through the packed form reproduces the fake-quantized
// tensor exactly for every non-NaN input: unpack computes
// decode(code) * (1/scale), the same single multiply by the same
// reciprocal the batched fake-quant kernel applies, and
// fp8_decode(fp8_encode(x)) == fp8_quantize(x) holds for every input
// (tested exhaustively). NaN inputs are the one exception -- fake quant
// passes NaN payloads through, and an 8-bit code cannot carry them -- so
// consumers that need unconditional bit-exactness verify at pack time
// (quant/weight_cache.h does).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "fp8/format.h"
#include "tensor/tensor.h"

namespace fp8q {

/// 256-entry decode LUT: values[c] == fp8_decode(c, spec) bit for bit.
struct Fp8DecodeTable {
  float values[256];
};

/// Cached decode table for one of the three paper formats.
[[nodiscard]] const Fp8DecodeTable& fp8_decode_table(Fp8Kind kind);

/// Precomputed constants for the branch-free arithmetic decode.
struct Fp8DecodeSpec {
  explicit Fp8DecodeSpec(const FormatSpec& spec);

  std::uint32_t man_shift;   ///< 23 - man_bits: magnitude-to-f32 shift
  std::uint32_t exp_add;     ///< (127 - bias) << 23: integer exponent rebias
  float sub_scale;           ///< 2^(1 - bias - man_bits): subnormal step
  std::uint32_t sub_lo;      ///< 1 << man_bits: smallest normal mag-7 code
  std::uint32_t special_lo;  ///< smallest magnitude-7 code that is Inf/NaN
  bool ieee;                 ///< IEEE family: Inf exists, NaN is a range
};

/// Cached Fp8DecodeSpec for one of the three paper formats.
[[nodiscard]] const Fp8DecodeSpec& fp8_decode_spec(Fp8Kind kind);

/// Branch-free arithmetic decode: the float32 BIT PATTERN of
/// fp8_decode(code). Identical to the table for all 256 codes; written in
/// uint32 lanes (shift, bit-or, one exact multiply, compare-selects) so
/// the same operation sequence maps 1:1 onto SIMD in the kernel tiers.
/// Inline so the batched tier's inner loop auto-vectorizes through it.
[[nodiscard]] inline std::uint32_t fp8_decode_bits(std::uint8_t code,
                                                   const Fp8DecodeSpec& spec) {
  const auto c = static_cast<std::uint32_t>(code);
  const std::uint32_t sign = (c & 0x80u) << 24;
  const std::uint32_t mag7 = c & 0x7Fu;
  // Normal codes (exponent field >= 1): shift the magnitude into float32
  // position, then rebias the exponent with an integer ADD -- the result
  // is the exact float32 bit pattern, no floating-point op involved.
  const std::uint32_t norm = (mag7 << spec.man_shift) + spec.exp_add;
  // Subnormal codes (exponent field 0): mag7 IS the integer mantissa m of
  // m * 2^(1 - bias - man_bits). Int-to-float convert is exact (m < 2^7)
  // and the power-of-two scale is exact; the product is a NORMAL float32
  // (FP8's smallest subnormal is >= 2^-16), so no denormal operand ever
  // reaches the multiplier. Computed unconditionally so the SIMD tiers
  // can transcribe this as a lane select.
  const float sub = static_cast<float>(mag7) * spec.sub_scale;
  const std::uint32_t val =
      mag7 < spec.sub_lo ? std::bit_cast<std::uint32_t>(sub) : norm;
  // Specials as compare-selects (if-convertible): the IEEE family has Inf
  // at special_lo and NaN above it; the extended family has the single NaN
  // code 0x7F. The reference decoder returns the canonical unsigned quiet
  // NaN for every NaN code and keeps the sign on Inf.
  const bool special = mag7 >= spec.special_lo;
  const bool is_nan = spec.ieee ? mag7 > spec.special_lo : special;
  const std::uint32_t spec_bits = is_nan ? 0x7FC00000u : (sign | 0x7F800000u);
  return special ? spec_bits : (sign | val);
}

class PackedFp8Tensor {
 public:
  PackedFp8Tensor() = default;

  /// Packs with one scale per leading-axis channel (the paper's weight
  /// scheme): scale_c = float_max / absmax(channel c). Scales are NOT
  /// sanitized (a non-finite channel yields a non-finite scale); callers
  /// that must match the weight-quantization pipeline use
  /// pack_per_channel_scaled with its sanitized scales.
  [[nodiscard]] static PackedFp8Tensor pack_per_channel(const Tensor& t, Fp8Kind kind);

  /// Packs with caller-provided per-channel scales (one per size(0) slice,
  /// already sanitized): code = fp8_encode(x * scale_c). This is how the
  /// weight cache builds packed entries that decode bit-identically to the
  /// fake-quantized payload (quant/weight_cache.h).
  [[nodiscard]] static PackedFp8Tensor pack_per_channel_scaled(const Tensor& t,
                                                               Fp8Kind kind,
                                                               std::vector<float> scales);

  /// Packs with a single tensor-wide scale.
  [[nodiscard]] static PackedFp8Tensor pack_per_tensor(const Tensor& t, Fp8Kind kind);

  /// Decodes back to float32: fp8_decode(code) * (1/scale) -- the same
  /// reciprocal multiply the fake-quant kernels apply, so the result is
  /// the fake-quantized tensor bit for bit (non-NaN inputs; file comment).
  [[nodiscard]] Tensor unpack() const;

  [[nodiscard]] Fp8Kind kind() const { return kind_; }
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] const std::vector<std::uint8_t>& codes() const { return codes_; }
  [[nodiscard]] const std::vector<float>& scales() const { return scales_; }
  [[nodiscard]] bool per_channel() const { return scales_.size() > 1; }

  /// Stored bytes (codes + scales), vs numel*4 for FP32.
  [[nodiscard]] std::size_t storage_bytes() const {
    return codes_.size() + scales_.size() * sizeof(float);
  }

 private:
  Fp8Kind kind_ = Fp8Kind::E4M3;
  Shape shape_;
  std::vector<std::uint8_t> codes_;
  std::vector<float> scales_;  ///< one per channel, or a single entry
};

}  // namespace fp8q
