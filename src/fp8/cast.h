// FP8 casting: bit-exact encode/decode between float32 and 8-bit codes,
// plus the fused quantize-dequantize ("fake quant") used throughout the
// emulation framework. This mirrors the role of the FP8 Emulation Toolkit
// referenced by the paper: all arithmetic stays in FP32, values are snapped
// onto the FP8 grid at operator boundaries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fp8/format.h"

namespace fp8q {

/// Rounding mode applied when a float32 value falls between two FP8 grid
/// points. The paper (and all FP8 inference hardware) uses round-to-nearest-
/// even; stochastic rounding is provided for completeness/ablation.
enum class RoundingMode : std::uint8_t { kNearestEven, kStochastic, kTowardZero };

/// What to do with magnitudes beyond the largest finite value.
enum class OverflowPolicy : std::uint8_t {
  kSaturate,     ///< clamp to +/-max (inference default)
  kInfinityNan,  ///< IEEE behaviour: overflow to Inf (E5M2) or NaN (extended)
};

/// Options bundle for the casting routines.
struct CastOptions {
  RoundingMode rounding = RoundingMode::kNearestEven;
  OverflowPolicy overflow = OverflowPolicy::kSaturate;
  /// State for stochastic rounding; ignored for deterministic modes.
  std::uint64_t* rng_state = nullptr;
};

/// Encodes a float32 value into the 8-bit code of `spec`.
[[nodiscard]] std::uint8_t fp8_encode(float x, const FormatSpec& spec,
                                      const CastOptions& opts = {});

/// Decodes an 8-bit code of `spec` into the exact float32 value it denotes.
/// NaN codes produce quiet NaN; Inf codes (IEEE family) produce +/-Inf.
[[nodiscard]] float fp8_decode(std::uint8_t code, const FormatSpec& spec);

/// Fused quantize-dequantize: the float32 value nearest-representable in
/// `spec`. Equal to fp8_decode(fp8_encode(x)) for every input (tested
/// exhaustively) but avoids the intermediate code.
[[nodiscard]] float fp8_quantize(float x, const FormatSpec& spec,
                                 const CastOptions& opts = {});

/// Convenience overloads on the paper's three formats.
[[nodiscard]] inline float fp8_quantize(float x, Fp8Kind kind,
                                        const CastOptions& opts = {}) {
  return fp8_quantize(x, format_spec(kind), opts);
}
[[nodiscard]] inline std::uint8_t fp8_encode(float x, Fp8Kind kind,
                                             const CastOptions& opts = {}) {
  return fp8_encode(x, format_spec(kind), opts);
}
[[nodiscard]] inline float fp8_decode(std::uint8_t code, Fp8Kind kind) {
  return fp8_decode(code, format_spec(kind));
}

/// Vectorized fake-quant: out[i] = fp8_quantize(in[i]). `out` may alias `in`.
void fp8_quantize(std::span<const float> in, std::span<float> out,
                  const FormatSpec& spec, const CastOptions& opts = {});

/// Scaled fake-quant used by the quantization schemes:
///   out[i] = fp8_quantize(in[i] * scale) / scale.
/// `scale` maps the calibrated tensor range onto the format's full range
/// (s = float_max / max_T, paper section 3.1). `out` may alias `in`.
void fp8_quantize_scaled(std::span<const float> in, std::span<float> out,
                         const FormatSpec& spec, float scale,
                         const CastOptions& opts = {});

/// Every finite value representable by `spec`, ascending, deduplicated
/// (+0 and -0 collapse to one entry). Useful for grid/density analyses
/// (paper Figure 1 center panel).
[[nodiscard]] std::vector<float> representable_values(const FormatSpec& spec);

/// Canonical NaN code for `spec` (sign bit clear).
[[nodiscard]] std::uint8_t fp8_nan_code(const FormatSpec& spec);

/// True if `code` denotes NaN under `spec`.
[[nodiscard]] bool fp8_is_nan(std::uint8_t code, const FormatSpec& spec);

/// True if `code` denotes +/-Infinity under `spec` (always false for the
/// extended-encoding formats).
[[nodiscard]] bool fp8_is_inf(std::uint8_t code, const FormatSpec& spec);

}  // namespace fp8q
