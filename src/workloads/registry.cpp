#include "workloads/registry.h"

#include <atomic>
#include <stdexcept>

#include "core/parallel.h"
#include "models/zoo.h"
#include "nn/norm.h"

namespace fp8q {

namespace {

/// Gaussian feature perturbation applied to every input tensor.
std::function<std::vector<Tensor>(Rng&, const std::vector<Tensor>&)> noise_perturb(
    float stddev) {
  return [stddev](Rng& rng, const std::vector<Tensor>& clean) {
    std::vector<Tensor> out;
    out.reserve(clean.size());
    for (const Tensor& t : clean) {
      Tensor p = t;
      for (float& v : p.flat()) v += rng.normal(0.0f, stddev);
      out.push_back(std::move(p));
    }
    return out;
  };
}

/// Token-substitution perturbation for discrete-id inputs.
std::function<std::vector<Tensor>(Rng&, const std::vector<Tensor>&)> token_perturb(
    double flip_prob, std::int64_t vocab) {
  return [flip_prob, vocab](Rng& rng, const std::vector<Tensor>& clean) {
    std::vector<Tensor> out = clean;
    for (float& v : out[0].flat()) {
      if (rng.uniform01() < flip_prob) v = static_cast<float>(rng.randint(0, vocab - 1));
    }
    return out;
  };
}

/// Injects element-level spikes of magnitude ~mag into a fraction of
/// entries. Element spikes are neither channel- nor token-aligned, so
/// neither SmoothQuant nor LayerNorm row normalization can remove them --
/// this is the *range-bound* tensor regime of paper Figure 3 and the
/// residual failure mode of per-tensor INT8 on LLM-class activations.
void spike(Tensor& t, Rng& rng, double frac, float mag) {
  if (frac <= 0.0 || mag <= 0.0f) return;
  for (float& v : t.flat()) {
    if (rng.uniform01() < frac) {
      v = (rng.uniform01() < 0.5 ? -1.0f : 1.0f) * mag * rng.uniform(0.7f, 1.3f);
    }
  }
}

void settle_batchnorm_stats(Graph& g,
                            const std::function<std::vector<Tensor>(Rng&, int)>& make_batch,
                            std::uint64_t seed) {
  // Makes BatchNorm running statistics self-consistent with the synthetic
  // data so that PTQ BatchNorm calibration compensates quantization shift
  // instead of re-defining the FP32 reference.
  std::vector<BatchNorm2dOp*> bns;
  for (Graph::NodeId id : g.node_ids()) {
    if (auto* bn = dynamic_cast<BatchNorm2dOp*>(g.node(id).op.get())) bns.push_back(bn);
  }
  if (bns.empty()) return;
  // BatchNorm calibration runs in training mode (batch statistics), so a
  // single round is already self-consistent at any depth; a second round
  // only refines the running averages.
  Rng rng(seed ^ 0xB47C4A11Bu);
  for (int round = 0; round < 2; ++round) {
    for (auto* bn : bns) bn->begin_calibration();
    for (int i = 0; i < 4; ++i) (void)g.forward(make_batch(rng, 16));
    for (auto* bn : bns) bn->finish_calibration();
  }
}

std::function<std::vector<Tensor>(Rng&, int)> image_batch(int c, int hw,
                                                          double spike_frac = 0.0,
                                                          float spike_mag = 0.0f) {
  return [=](Rng& rng, int batch) {
    Tensor x = randn(rng, {batch, c, hw, hw});
    spike(x, rng, spike_frac, spike_mag);
    std::vector<Tensor> in;
    in.push_back(std::move(x));
    return in;
  };
}

std::function<std::vector<Tensor>(Rng&, int)> sequence_batch(int seq, int dim,
                                                             double spike_frac = 0.0,
                                                             float spike_mag = 0.0f) {
  return [=](Rng& rng, int batch) {
    Tensor x = randn(rng, {batch, seq, dim});
    spike(x, rng, spike_frac, spike_mag);
    std::vector<Tensor> in;
    in.push_back(std::move(x));
    return in;
  };
}

std::function<std::vector<Tensor>(Rng&, int)> vector_batch(int dim,
                                                           double spike_frac = 0.0,
                                                           float spike_mag = 0.0f) {
  return [=](Rng& rng, int batch) {
    Tensor x = randn(rng, {batch, dim});
    spike(x, rng, spike_frac, spike_mag);
    std::vector<Tensor> in;
    in.push_back(std::move(x));
    return in;
  };
}

Workload cnn_workload(std::string name, CnnSpec spec, float noise, std::string family,
                      double spike_frac = 0.0, float spike_mag = 0.0f,
                      MetricKind metric = MetricKind::kTop1,
                      std::string task = "image-classification") {
  Workload w;
  w.name = std::move(name);
  w.domain = "CV";
  w.task = std::move(task);
  w.family = std::move(family);
  w.is_cnn = true;
  w.metric = metric;
  w.data_seed = spec.seed * 31 + 7;
  // Labels come from clean images; the activation outliers (swish /
  // squeeze-excite spikes of the EfficientNet class) appear in the
  // calibration and evaluation data, where they stretch per-tensor grids
  // without carrying the class signal.
  auto clean_fn = image_batch(spec.in_channels, spec.image_hw);
  auto spiky_fn = image_batch(spec.in_channels, spec.image_hw, spike_frac, spike_mag);
  // Settle the reference BatchNorm statistics on the *deployment*
  // distribution (spikes included): PTQ BatchNorm calibration then merely
  // compensates quantization shift instead of re-defining the function.
  w.build = [spec, clean_fn] {
    Graph g = make_cnn(spec);
    settle_batchnorm_stats(g, clean_fn, spec.seed);
    return g;
  };
  w.make_batch = clean_fn;
  if (spike_frac > 0.0) w.make_calib_batch = spiky_fn;
  w.perturb = [noise, spike_frac, spike_mag](Rng& rng, const std::vector<Tensor>& clean) {
    std::vector<Tensor> out = clean;
    for (float& v : out[0].flat()) v += rng.normal(0.0f, noise);
    spike(out[0], rng, spike_frac, spike_mag);
    return out;
  };
  if (metric == MetricKind::kTop1) w.margin_quantile = 0.5;
  return w;
}

Workload unet_workload(std::string name, UnetSpec spec, float noise,
                       std::string task = "image-segmentation") {
  Workload w;
  w.name = std::move(name);
  w.domain = "CV";
  w.task = std::move(task);
  w.family = "unet-ish";
  w.is_cnn = true;
  w.metric = MetricKind::kNmse;
  w.data_seed = spec.seed * 47 + 19;
  w.build = [spec] { return make_unet(spec); };
  w.make_batch = image_batch(spec.in_channels, spec.hw);
  w.perturb = noise_perturb(noise);
  return w;
}

Workload encoder_workload(std::string name, TransformerSpec spec, float noise,
                          MetricKind metric, double spike_frac, float spike_mag,
                          std::string domain = "NLP", std::string family = "bert-ish",
                          std::string task = "text-classification",
                          double margin_quantile = 0.93) {
  Workload w;
  w.name = std::move(name);
  w.domain = std::move(domain);
  w.task = std::move(task);
  w.family = std::move(family);
  w.is_cnn = false;
  w.metric = metric;
  w.data_seed = spec.seed * 37 + 11;
  w.build = [spec] { return make_transformer_encoder(spec); };
  w.make_batch = sequence_batch(spec.seq, spec.dim, spike_frac, spike_mag);
  w.perturb = noise_perturb(noise);
  if (metric == MetricKind::kTop1) w.margin_quantile = margin_quantile;
  return w;
}

Workload lm_workload(std::string name, DecoderLmSpec spec, int seq, double flip_prob,
                     std::string family = "bloom-ish") {
  Workload w;
  w.name = std::move(name);
  w.domain = "NLP";
  w.task = "language-modeling";
  w.family = std::move(family);
  w.is_cnn = false;
  w.metric = MetricKind::kTop1;
  w.data_seed = spec.seed * 41 + 13;
  w.build = [spec] { return make_decoder_lm(spec); };
  const std::int64_t vocab = spec.vocab;
  w.make_batch = [seq, vocab](Rng& rng, int batch) {
    Tensor ids({batch, seq});
    for (float& v : ids.flat()) v = static_cast<float>(rng.randint(0, vocab - 1));
    Tensor pos({batch, seq});
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t s = 0; s < seq; ++s) pos.at({b, s}) = static_cast<float>(s);
    }
    std::vector<Tensor> in;
    in.push_back(std::move(ids));
    in.push_back(std::move(pos));
    return in;
  };
  w.perturb = token_perturb(flip_prob, vocab);
  w.margin_quantile = 0.97;
  return w;
}

Workload mlp_workload(std::string name, MlpSpec spec, float noise, MetricKind metric,
                      std::string domain, std::string task, std::string family,
                      double spike_frac = 0.0, float spike_mag = 0.0f) {
  Workload w;
  w.name = std::move(name);
  w.domain = std::move(domain);
  w.task = std::move(task);
  w.family = std::move(family);
  w.is_cnn = false;
  w.metric = metric;
  w.data_seed = spec.seed * 43 + 17;
  w.build = [spec] { return make_mlp_model(spec); };
  w.make_batch = vector_batch(spec.in_dim, spike_frac, spike_mag);
  w.perturb = noise_perturb(noise);
  if (metric == MetricKind::kTop1) w.margin_quantile = 0.93;
  return w;
}

Workload dlrm_workload(std::string name, DlrmSpec spec, float noise, double flip_prob) {
  Workload w;
  w.name = std::move(name);
  w.domain = "NLP";  // grouped with the non-CV bucket, as in Table 2
  w.task = "recommendation";
  w.family = "dlrm-ish";
  w.is_cnn = false;
  w.metric = MetricKind::kPearson;
  w.data_seed = spec.seed * 53 + 23;
  w.build = [spec] { return make_dlrm(spec); };
  const int dense = spec.dense_features;
  const std::int64_t vocab = spec.vocab;
  w.make_batch = [dense, vocab](Rng& rng, int batch) {
    std::vector<Tensor> in;
    in.push_back(randn(rng, {batch, dense}));
    Tensor ids({batch});
    for (float& v : ids.flat()) v = static_cast<float>(rng.randint(0, vocab - 1));
    in.push_back(std::move(ids));
    return in;
  };
  w.perturb = [noise, flip_prob, vocab](Rng& rng, const std::vector<Tensor>& clean) {
    std::vector<Tensor> out = clean;
    for (float& v : out[0].flat()) v += rng.normal(0.0f, noise);
    for (float& v : out[1].flat()) {
      if (rng.uniform01() < flip_prob) v = static_cast<float>(rng.randint(0, vocab - 1));
    }
    return out;
  };
  return w;
}

TransformerSpec nlp_encoder_spec(int dim, int layers, std::uint64_t seed) {
  TransformerSpec s;
  s.dim = dim;
  s.layers = layers;
  s.seq = 8;
  s.classes = 8;
  s.input_proj = true;
  s.outlier_channel_fraction = 0.06f;
  s.outlier_gamma_gain = 5.0f;
  s.seed = seed;
  return s;
}

}  // namespace

std::vector<Workload> build_suite() {
  std::vector<Workload> suite;
  suite.reserve(75);
  std::uint64_t seed = 100;

  // ---------------------------------------------------------------- CV (34)
  // 10 residual CNN classifiers (ResNet family): clean, precision-bound.
  for (int base : {8, 12, 16, 24}) {
    for (int blocks : {2, 3}) {
      CnnSpec s;
      s.image_hw = 10;
      s.base_channels = base;
      s.blocks = blocks;
      s.act_spread = 0.5f;
      s.seed = ++seed;
      std::string name =
          "cv/resnet-ish-c" + std::to_string(base) + "-b" + std::to_string(blocks);
      if (base == 16 && blocks == 3) name = "resnet50-ish";
      suite.push_back(cnn_workload(name, s, 0.5f, "resnet-ish"));
    }
  }
  for (int blocks : {4, 5}) {
    CnnSpec s;
    s.image_hw = 10;
    s.base_channels = 12;
    s.blocks = blocks;
    s.act_spread = 0.5f;
    s.seed = ++seed;
    suite.push_back(
        cnn_workload("cv/resnet-deep-b" + std::to_string(blocks), s, 0.5f, "resnet-ish"));
  }
  // 4 plain CNNs (VGG / DenseNet family).
  for (int i = 0; i < 4; ++i) {
    CnnSpec s;
    s.image_hw = 10;
    s.base_channels = 10 + 4 * i;
    s.blocks = 3;
    s.residual = false;
    s.batchnorm = i % 2 == 0;
    s.seed = ++seed;
    std::string name = "cv/vgg-ish-" + std::to_string(i);
    if (i == 0) name = "densenet121-ish";
    suite.push_back(cnn_workload(name, s, 0.5f, "vgg-ish"));
  }
  // 6 depthwise CNNs with activation spikes + channel imbalance
  // (EfficientNet / MobileNetV3 family: the INT8 failure cases).
  // 2 depthwise CNNs with rare high-magnitude activation spikes + 4
  // MobileViT-class hybrids (depthwise front ends are paired with
  // LayerNorm attention blocks in that family; the LN-decoupled token
  // spikes are the INT8 failure mechanism).
  {
    int i = 0;
    for (float mag : {40.0f, 55.0f}) {
      CnnSpec s;
      s.image_hw = 10;
      s.base_channels = 12;
      s.blocks = 3;
      s.depthwise = true;
      s.weight_spread = 4.0f;
      s.act_spread = 0.5f;
      s.seed = ++seed;
      suite.push_back(cnn_workload("cv/effnet-ish-" + std::to_string(i++), s, 0.5f,
                                   "efficientnet-ish", 0.0005, mag));
    }
    for (float mag : {50.0f, 90.0f, 140.0f, 220.0f}) {
      TransformerSpec s = nlp_encoder_spec(32, 2, ++seed);
      s.classes = 10;
      suite.push_back(encoder_workload("cv/mobilevit-ish-" + std::to_string(i++ - 2), s,
                                       0.25f, MetricKind::kTop1, 0.01, mag, "CV",
                                       "efficientnet-ish", "image-classification"));
    }
  }
  // 4 vision transformers (ViT family: patch projection sees raw spikes).
  {
    int i = 0;
    for (float mag : {40.0f, 80.0f, 150.0f, 250.0f}) {
      TransformerSpec s = nlp_encoder_spec(32, 2, ++seed);
      s.classes = 10;
      suite.push_back(encoder_workload("cv/vit-ish-" + std::to_string(i++), s, 0.25f,
                                       MetricKind::kTop1, 0.01, mag, "CV", "vit-ish",
                                       "image-classification"));
    }
  }
  // 3 U-Nets (segmentation family, continuous metric).
  for (int base : {6, 8, 10}) {
    UnetSpec s;
    s.base_channels = base;
    s.hw = 12;
    s.seed = ++seed;
    suite.push_back(unet_workload("cv/unet-ish-c" + std::to_string(base), s, 0.25f));
  }
  // 3 detection-regression CNNs (YOLO-style box-regression head proxy,
  // continuous metric).
  for (int i = 0; i < 3; ++i) {
    CnnSpec s;
    s.image_hw = 10;
    s.base_channels = 10 + 2 * i;
    s.blocks = 3;
    s.classes = 16;  // regression targets
    s.act_spread = 0.5f;
    s.seed = ++seed;
    suite.push_back(cnn_workload("cv/yolo-reg-" + std::to_string(i), s, 0.25f, "yolo-ish",
                                 0.0, 0.0f, MetricKind::kNmse, "object-detection"));
  }
  // 2 super-resolution U-Nets (image generation proxy, continuous metric).
  for (int i = 0; i < 2; ++i) {
    UnetSpec s;
    s.base_channels = 6 + 2 * i;
    s.hw = 8;
    s.seed = ++seed;
    suite.push_back(unet_workload("cv/superres-" + std::to_string(i), s, 0.2f,
                                  "image-generation"));
  }
  // 2 CIFAR-scale tiny CNNs.
  for (int i = 0; i < 2; ++i) {
    CnnSpec s;
    s.base_channels = 8 + 8 * i;
    s.blocks = 2;
    s.image_hw = 8;
    s.act_spread = 1.0f;
    s.seed = ++seed;
    suite.push_back(
        cnn_workload("cv/cifar-cnn-" + std::to_string(i), s, 0.5f, "shufflenet-ish"));
  }

  // --------------------------------------------------------------- NLP (38)
  // 12 BERT-family text classifiers: 6 clean + 6 spiky (range-bound).
  {
    int i = 0;
    for (int dim : {32, 48, 64}) {
      for (int seq_len : {8, 12}) {
        TransformerSpec s = nlp_encoder_spec(dim, 2, ++seed);
        s.seq = seq_len;
        std::string name = "nlp/bert-ish-" + std::to_string(i);
        if (dim == 48 && seq_len == 8) name = "distilbert-mrpc-ish";
        suite.push_back(encoder_workload(name, s, 0.25f, MetricKind::kTop1, 0.0, 0.0f));
        ++i;
      }
    }
    int j = 0;
    for (int dim : {32, 48, 64}) {
      for (float mag : {60.0f, 150.0f}) {
        TransformerSpec s = nlp_encoder_spec(dim, 2, ++seed);
        std::string name = "nlp/bert-outlier-" + std::to_string(j++);
        if (dim == 64 && mag == 150.0f) name = "bert-large-cola-ish";
        suite.push_back(encoder_workload(name, s, 0.25f, MetricKind::kTop1, 0.01, mag));
      }
    }
  }
  // 4 STS-B-style regression encoders (Pearson, precision-bound).
  {
    int i = 0;
    for (int dim : {32, 48}) {
      for (int seq_len : {8, 12}) {
        TransformerSpec s = nlp_encoder_spec(dim, 2, ++seed);
        s.seq = seq_len;
        s.classes = 1;
        std::string name = "nlp/stsb-ish-" + std::to_string(i++);
        if (dim == 48 && seq_len == 8) name = "bert-base-stsb-ish";
        suite.push_back(encoder_workload(name, s, 0.25f, MetricKind::kPearson, 0.0, 0.0f,
                                         "NLP", "bert-ish", "sentence-similarity"));
      }
    }
  }
  // 8 decoder LMs (Bloom / LLaMA family): 5 mild + 3 with outlier token
  // embeddings reaching the factorized embedding projection.
  {
    int i = 0;
    for (int dim : {32, 48}) {
      for (int layers : {1, 2}) {
        DecoderLmSpec s;
        s.vocab = 48;
        s.dim = dim;
        s.layers = layers;
        s.embed_proj = true;
        s.outlier_channel_fraction = 0.06f;
        s.outlier_gamma_gain = 5.0f;
        s.embedding_outlier_fraction = 0.03f;
        s.embedding_outlier_gain = 8.0f;
        s.seed = ++seed;
        std::string name = "nlp/lm-ish-" + std::to_string(i);
        if (dim == 48 && layers == 2) name = "bloom7b-ish";
        suite.push_back(lm_workload(name, s, 10, 0.06));
        ++i;
      }
    }
    {
      DecoderLmSpec s;
      s.vocab = 48;
      s.dim = 40;
      s.layers = 2;
      s.embed_proj = true;
      s.embedding_outlier_fraction = 0.03f;
      s.embedding_outlier_gain = 8.0f;
      s.seed = ++seed;
      suite.push_back(lm_workload("nlp/lm-ish-4", s, 10, 0.06));
    }
    int j = 0;
    for (float mag : {120.0f, 250.0f, 500.0f}) {
      DecoderLmSpec s;
      s.vocab = 48;
      s.dim = 48;
      s.layers = 1;
      s.embed_proj = true;
      s.outlier_channel_fraction = 0.06f;
      s.outlier_gamma_gain = 5.0f;
      s.embedding_outlier_fraction = 0.04f;
      s.embedding_outlier_gain = 2.0f * mag;  // table stddev 0.5 -> rows ~mag
      s.seed = ++seed;
      std::string name = "nlp/lm-outlier-" + std::to_string(j++);
      if (mag == 250.0f) name = "llama65b-ish";
      suite.push_back(lm_workload(name, s, 10, 0.06, "llama-ish"));
    }
  }
  // 4 outlier-extreme LLMs (176B-class): range demand beyond E3M4.
  {
    int i = 0;
    for (float mag : {4000.0f, 8000.0f, 15000.0f, 30000.0f}) {
      DecoderLmSpec s;
      s.vocab = 48;
      s.dim = 48;
      s.layers = 1;
      s.embed_proj = true;
      s.outlier_channel_fraction = 0.06f;
      s.outlier_gamma_gain = 5.0f;
      s.embedding_outlier_fraction = 0.04f;
      s.embedding_outlier_gain = 2.0f * mag;
      s.seed = ++seed;
      std::string name = "nlp/lm-extreme-" + std::to_string(i++);
      if (mag == 8000.0f) name = "bloom176b-ish";
      suite.push_back(lm_workload(name, s, 10, 0.06, "llama-ish"));
    }
  }
  // 4 compact MLP classifiers (DistilBert-class): 2 mild with LayerNorm,
  // 2 spiky without (feature front-end, range-bound).
  for (int i = 0; i < 2; ++i) {
    MlpSpec s;
    s.in_dim = 32;
    s.hidden = 48 + 48 * i;
    s.layers = 2;
    s.out_dim = 8;
    s.layernorm = true;
    s.outlier_channel_fraction = 0.08f;
    s.outlier_gamma_gain = 6.0f;
    s.seed = ++seed;
    suite.push_back(mlp_workload("nlp/distil-mlp-" + std::to_string(i), s, 0.3f,
                                 MetricKind::kTop1, "NLP", "text-classification",
                                 "distilbert-ish"));
  }
  for (int i = 0; i < 2; ++i) {
    MlpSpec s;
    s.in_dim = 32;
    s.hidden = 64;
    s.layers = 2;
    s.out_dim = 8;
    s.layernorm = true;
    s.outlier_channel_fraction = 0.08f;
    s.outlier_gamma_gain = 10.0f;
    s.seed = ++seed;
    suite.push_back(mlp_workload("nlp/distil-mlp-" + std::to_string(2 + i), s, 0.3f,
                                 MetricKind::kTop1, "NLP", "text-classification",
                                 "distilbert-ish"));
  }
  // 4 translation/summarization encoders (Marian / Pegasus family).
  {
    int i = 0;
    for (float mag : {0.0f, 0.0f, 0.0f, 120.0f}) {
      TransformerSpec s = nlp_encoder_spec(48 + 16 * (i % 2), 2, ++seed);
      s.classes = 32;
      suite.push_back(encoder_workload("nlp/marian-ish-" + std::to_string(i++), s, 0.25f,
                                       MetricKind::kTop1, mag > 0 ? 0.01 : 0.0, mag,
                                       "NLP", "marian-ish", "translation", 0.95));
    }
  }
  // 2 long-sequence encoders (Longformer family): 1 mild + 1 range-extreme
  // (beyond E3M4's usable range).
  {
    TransformerSpec s = nlp_encoder_spec(32, 2, ++seed);
    s.seq = 24;
    suite.push_back(encoder_workload("nlp/longformer-ish-0", s, 0.25f, MetricKind::kTop1,
                                     0.0, 0.0f, "NLP", "longformer-ish",
                                     "text-classification", 0.95));
    TransformerSpec s2 = nlp_encoder_spec(32, 2, ++seed);
    s2.seq = 24;
    suite.push_back(encoder_workload("nlp/longformer-ish-1", s2, 0.25f, MetricKind::kTop1,
                                     0.01, 6000.0f, "NLP", "longformer-ish",
                                     "text-classification", 0.95));
  }
  // 2 speech models (Wav2Vec2 / HuBERT stand-ins; continuous metric).
  for (int i = 0; i < 2; ++i) {
    MlpSpec s;
    s.in_dim = 64;
    s.hidden = 96;
    s.layers = 2;
    s.out_dim = 32;
    s.layernorm = true;
    s.outlier_channel_fraction = 0.04f;
    s.outlier_gamma_gain = 6.0f;
    s.seed = ++seed;
    suite.push_back(mlp_workload(i == 0 ? "wav2vec2-ish" : "hubert-ish", s, 0.3f,
                                 MetricKind::kNmse, "NLP", "speech-recognition",
                                 "wav2vec-ish"));
  }
  // 1 recommender (DLRM).
  {
    DlrmSpec s;
    s.seed = ++seed;
    suite.push_back(dlrm_workload("dlrm-ish", s, 0.3f, 0.02));
  }

  if (suite.size() != 75) {
    throw std::logic_error("build_suite: expected 75 workloads, got " +
                           std::to_string(suite.size()));
  }
  return suite;
}

std::vector<AccuracyRecord> evaluate_suite(const std::vector<Workload>& suite,
                                           const std::vector<SchemeConfig>& schemes,
                                           const EvalProtocol& protocol,
                                           const std::function<void(int)>& progress) {
  const auto n_schemes = static_cast<std::int64_t>(schemes.size());
  const auto total = static_cast<std::int64_t>(suite.size()) * n_schemes;
  std::atomic<int> completed{0};
  // One task per (workload, scheme) pair; parallel_map stores each record
  // at its pair index, so the returned order matches the serial double
  // loop no matter how tasks are scheduled.
  return parallel_map(total, [&](std::int64_t pair) {
    const auto& w = suite[static_cast<std::size_t>(pair / n_schemes)];
    const auto& scheme = schemes[static_cast<std::size_t>(pair % n_schemes)];
    AccuracyRecord rec = evaluate_workload(w, scheme, protocol);
    if (progress) progress(completed.fetch_add(1, std::memory_order_relaxed) + 1);
    return rec;
  });
}

const Workload& find_workload(const std::vector<Workload>& suite, const std::string& name) {
  for (const auto& w : suite) {
    if (w.name == name) return w;
  }
  throw std::out_of_range("workload not found: " + name);
}

std::vector<std::string> table3_workload_names() {
  return {"resnet50-ish",  "densenet121-ish",    "wav2vec2-ish",
          "dlrm-ish",      "bert-base-stsb-ish", "bert-large-cola-ish",
          "distilbert-mrpc-ish", "bloom7b-ish",  "bloom176b-ish",
          "llama65b-ish"};
}

std::vector<SchemeConfig> table2_fp8_schemes() {
  return {standard_fp8_scheme(DType::kE5M2),
          standard_fp8_scheme(DType::kE4M3, false),
          standard_fp8_scheme(DType::kE4M3, true),
          standard_fp8_scheme(DType::kE3M4, false),
          standard_fp8_scheme(DType::kE3M4, true)};
}

}  // namespace fp8q
