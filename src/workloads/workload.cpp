#include "workloads/workload.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "metrics/metrics.h"
#include "quant/quantized_graph.h"

namespace fp8q {

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kTop1: return "top1";
    case MetricKind::kPearson: return "pearson";
    case MetricKind::kNmse: return "nmse";
  }
  return "unknown";
}

namespace {

/// Argmax per row over the last axis of a [rows..., classes] score tensor.
std::vector<std::int64_t> labels_from(const Tensor& scores) {
  const std::int64_t classes = scores.size(-1);
  const std::int64_t rows = scores.numel() / classes;
  std::vector<std::int64_t> labels(static_cast<size_t>(rows));
  const auto flat = scores.flat();
  for (std::int64_t r = 0; r < rows; ++r) {
    labels[static_cast<size_t>(r)] =
        argmax(flat.subspan(static_cast<size_t>(r * classes), static_cast<size_t>(classes)));
  }
  return labels;
}

/// Top-2 margin of each row of a [rows..., classes] score tensor.
std::vector<float> margins_from(const Tensor& scores) {
  const std::int64_t classes = scores.size(-1);
  const std::int64_t rows = scores.numel() / classes;
  std::vector<float> margins(static_cast<size_t>(rows));
  const auto flat = scores.flat();
  for (std::int64_t r = 0; r < rows; ++r) {
    const auto row =
        flat.subspan(static_cast<size_t>(r * classes), static_cast<size_t>(classes));
    float best = row[0];
    float second = -std::numeric_limits<float>::infinity();
    for (size_t c = 1; c < row.size(); ++c) {
      if (row[c] > best) {
        second = best;
        best = row[c];
      } else if (row[c] > second) {
        second = row[c];
      }
    }
    margins[static_cast<size_t>(r)] = best - second;
  }
  return margins;
}

/// Running accumulator for the three metric kinds.
struct ScoreAccumulator {
  ScoreAccumulator(MetricKind k, double mq) : kind(k), margin_quantile(mq) {}

  MetricKind kind;
  double margin_quantile = 0.0;
  std::int64_t agree = 0;
  std::int64_t total = 0;
  std::vector<float> targets;
  std::vector<float> outputs;

  void add(const Tensor& target_scores, const Tensor& output_scores) {
    if (kind == MetricKind::kTop1) {
      const auto labels = labels_from(target_scores);
      const std::int64_t classes = output_scores.size(-1);
      const auto flat = output_scores.flat();
      // Margin filter: emulates the confident-prediction structure of
      // trained classifiers (see Workload::margin_quantile).
      float threshold = -std::numeric_limits<float>::infinity();
      std::vector<float> margins;
      if (margin_quantile > 0.0) {
        margins = margins_from(target_scores);
        std::vector<float> sorted = margins;
        std::sort(sorted.begin(), sorted.end());
        const auto k = static_cast<size_t>(margin_quantile *
                                           static_cast<double>(sorted.size() - 1));
        threshold = sorted[k];
      }
      for (size_t r = 0; r < labels.size(); ++r) {
        if (!margins.empty() && margins[r] < threshold) continue;
        const auto row = flat.subspan(r * static_cast<size_t>(classes),
                                      static_cast<size_t>(classes));
        if (argmax(row) == labels[r]) ++agree;
        ++total;
      }
      return;
    }
    const auto t = target_scores.flat();
    const auto o = output_scores.flat();
    targets.insert(targets.end(), t.begin(), t.end());
    outputs.insert(outputs.end(), o.begin(), o.end());
  }

  [[nodiscard]] double score() const {
    switch (kind) {
      case MetricKind::kTop1:
        return total > 0 ? static_cast<double>(agree) / static_cast<double>(total) : 0.0;
      case MetricKind::kPearson:
        return pearson(targets, outputs);
      case MetricKind::kNmse:
        return nmse_accuracy(targets, outputs);
    }
    return 0.0;
  }
};

}  // namespace

double fp32_baseline(const Workload& w, const EvalProtocol& protocol) {
  Graph g = w.build();
  Rng eval_rng(w.data_seed * 104729 + 2);
  ScoreAccumulator acc{w.metric, w.margin_quantile};
  for (int b = 0; b < protocol.eval_batches; ++b) {
    auto clean = w.make_batch(eval_rng, protocol.eval_batch_size);
    auto perturbed = w.perturb(eval_rng, clean);
    const Tensor target = g.forward(clean);
    const Tensor out = g.forward(perturbed);
    acc.add(target, out);
  }
  return acc.score();
}

ModelQuantConfig default_model_config(const Workload& w, const SchemeConfig& scheme,
                                      const EvalProtocol& protocol) {
  ModelQuantConfig cfg;
  cfg.scheme = scheme;
  if (scheme.act_dtype != DType::kFP32 && w.domain != "CV") {
    cfg.scheme.smoothquant = true;  // SmoothQuant on all NLP workloads
  }
  cfg.is_cnn = w.is_cnn;
  cfg.bn_calibration_batches = w.is_cnn ? protocol.bn_calibration_batches : 0;
  return cfg;
}

AccuracyRecord evaluate_workload(const Workload& w, const SchemeConfig& scheme,
                                 const EvalProtocol& protocol) {
  return evaluate_workload_config(w, default_model_config(w, scheme, protocol), protocol);
}

EvalPlan make_eval_plan(const Workload& w, const EvalProtocol& protocol) {
  if (!w.build || !w.make_batch || !w.perturb) {
    throw std::invalid_argument("make_eval_plan: incomplete workload " + w.name);
  }
  EvalPlan plan;
  plan.workload_name = w.name;
  plan.domain = w.domain;
  plan.metric = w.metric;
  plan.margin_quantile = w.margin_quantile;
  plan.prototype = w.build();
  plan.model_size_mb = plan.prototype.size_mb();

  // Calibration set (clean data, as in real PTQ; Figure 7 swaps in an
  // augmented generator via make_calib_batch).
  const auto& calib_gen = w.make_calib_batch ? w.make_calib_batch : w.make_batch;
  Rng calib_rng(w.data_seed * 7919 + 1);
  plan.calib.reserve(static_cast<size_t>(protocol.calib_batches));
  for (int b = 0; b < protocol.calib_batches; ++b) {
    plan.calib.push_back(calib_gen(calib_rng, protocol.calib_batch_size));
  }

  // Evaluation set; FP32 targets and the FP32 baseline come first, while
  // the weights are pristine. Exactly evaluate_workload_config's stream:
  // same seed, same per-batch draw order (clean, then perturbed).
  Rng eval_rng(w.data_seed * 104729 + 2);
  plan.batches.reserve(static_cast<size_t>(protocol.eval_batches));
  ScoreAccumulator fp32_acc{w.metric, w.margin_quantile};
  for (int b = 0; b < protocol.eval_batches; ++b) {
    EvalPlan::PlanBatch pb;
    auto clean = w.make_batch(eval_rng, protocol.eval_batch_size);
    pb.perturbed = w.perturb(eval_rng, clean);
    pb.clean_fp32_out = plan.prototype.forward(clean);
    const Tensor fp32_out = plan.prototype.forward(pb.perturbed);
    fp32_acc.add(pb.clean_fp32_out, fp32_out);
    plan.batches.push_back(std::move(pb));
  }
  plan.fp32_score = fp32_acc.score();

  // Stamp every weight identity now, so per-trial clones inherit stamped
  // identities and the weight cache's memo skips rehashing across trials.
  for (Graph::NodeId id : plan.prototype.node_ids()) {
    auto& node = plan.prototype.node(id);
    if (!node.op) continue;
    for (Tensor* t : node.op->weights()) (void)t->identity();
  }
  return plan;
}

AccuracyRecord evaluate_with_plan(const EvalPlan& plan, const ModelQuantConfig& config) {
  Graph g = plan.prototype.clone();
  ScoreAccumulator quant_acc{plan.metric, plan.margin_quantile};
  {
    QuantizedGraph qg(&g, config);
    qg.prepare(std::span<const std::vector<Tensor>>(plan.calib));
    for (const auto& pb : plan.batches) {
      const Tensor out = qg.forward(pb.perturbed);
      quant_acc.add(pb.clean_fp32_out, out);
    }
  }

  AccuracyRecord record;
  record.workload = plan.workload_name;
  record.domain = plan.domain;
  record.config = config.scheme.label();
  record.fp32_accuracy = plan.fp32_score;
  record.quant_accuracy = quant_acc.score();
  record.model_size_mb = plan.model_size_mb;
  return record;
}

AccuracyRecord evaluate_workload_config(const Workload& w, const ModelQuantConfig& config,
                                        const EvalProtocol& protocol) {
  return evaluate_with_plan(make_eval_plan(w, protocol), config);
}

}  // namespace fp8q
