// The 75-workload study suite (paper section 4.1).
//
// Mirrors the paper's composition: 34 computer-vision networks, 38 NLP
// networks, 2 speech models and 1 recommender (75 total). Each entry is a
// synthetic stand-in for a named architecture family with distribution
// personalities chosen to land in the regimes the paper documents
// (activation-outlier NLP models, precision-bound CV models, depthwise
// channel-imbalanced CNNs, etc.). Representative entries carry the names
// used in paper Table 3 ("resnet50-ish", "bloom7b-ish", ...).
#pragma once

#include <functional>
#include <vector>

#include "workloads/workload.h"

namespace fp8q {

/// Builds the full 75-entry suite (deterministic).
[[nodiscard]] std::vector<Workload> build_suite();

/// Evaluates every (workload, scheme) pair of the cross product --
/// suite-level task parallelism over the global thread pool (see
/// docs/THREADING.md). Records are returned grouped by workload, with the
/// schemes in the given order within each group: exactly the order a
/// serial double loop would produce, regardless of which task finished
/// first. `progress`, if set, is invoked once per completed pair with the
/// running completion count; it may be called from any pool thread
/// concurrently with other tasks, so it must be thread-safe.
[[nodiscard]] std::vector<AccuracyRecord> evaluate_suite(
    const std::vector<Workload>& suite, const std::vector<SchemeConfig>& schemes,
    const EvalProtocol& protocol = {},
    const std::function<void(int)>& progress = nullptr);

/// Finds a workload by exact name; throws std::out_of_range if absent.
[[nodiscard]] const Workload& find_workload(const std::vector<Workload>& suite,
                                            const std::string& name);

/// The named Table-3 representative workloads, in the paper's row order.
[[nodiscard]] std::vector<std::string> table3_workload_names();

/// The 6 study configurations of paper Table 2, in row order:
/// E5M2 direct, E4M3 static, E4M3 dynamic, E3M4 static, E3M4 dynamic,
/// INT8 (static on CV, dynamic on NLP -- the caller resolves per domain
/// via int8_scheme(domain != "CV")).
[[nodiscard]] std::vector<SchemeConfig> table2_fp8_schemes();

}  // namespace fp8q
