// Workload definitions and the fidelity evaluation protocol.
//
// A workload = a model builder + input generators + a task metric. The
// evaluation substitutes the paper's dataset accuracy with FP32-teacher
// fidelity (DESIGN.md section 1): ground-truth labels/targets come from the
// FP32 network on clean inputs; both the FP32 and the quantized network are
// then scored on perturbed inputs (Gaussian feature noise, or token
// substitution for discrete inputs). The FP32 score lands below 1.0 (noise
// flips marginal decisions), and quantization error shows up as additional
// score loss -- exactly the quantity the paper's <=1%-relative-loss
// criterion measures.
#pragma once

#include <functional>
#include <string>

#include "metrics/passrate.h"
#include "nn/graph.h"
#include "quant/quantized_graph.h"
#include "tensor/rng.h"

namespace fp8q {

/// Task metric used to score a workload.
enum class MetricKind : std::uint8_t {
  kTop1,     ///< classification / next-token: argmax agreement with labels
  kPearson,  ///< STS-B-style correlation against FP32 targets
  kNmse,     ///< bounded regression accuracy 1 - NMSE (segmentation, ASR)
};

[[nodiscard]] std::string_view to_string(MetricKind kind);

struct Workload {
  std::string name;
  std::string domain;  ///< "CV" or "NLP" (speech/rec grouped under NLP)
  std::string task;    ///< e.g. "image-classification"
  std::string family;  ///< architecture family, e.g. "resnet-ish"
  bool is_cnn = false;
  MetricKind metric = MetricKind::kTop1;
  /// For kTop1: rows whose clean-FP32 top-2 logit margin falls below this
  /// quantile of the batch are excluded from scoring. Trained classifiers
  /// make confident (high-margin) predictions on most samples; random
  /// synthetic networks do not, so without a margin floor the top-1 metric
  /// would be pathologically sensitive for every format. 0 disables.
  double margin_quantile = 0.0;
  std::uint64_t data_seed = 0;

  /// Builds a fresh (deterministic) copy of the model.
  std::function<Graph()> build;
  /// Generates one clean batch of graph inputs.
  std::function<std::vector<Tensor>(Rng&, int batch)> make_batch;
  /// Optional calibration-set generator (defaults to make_batch). Used by
  /// the BatchNorm-calibration transform study (paper Figure 7), where the
  /// calibration data is augmented but evaluation data is not.
  std::function<std::vector<Tensor>(Rng&, int batch)> make_calib_batch;
  /// Perturbs a clean batch (noise / token substitution).
  std::function<std::vector<Tensor>(Rng&, const std::vector<Tensor>&)> perturb;
};

/// Evaluation-budget knobs. Defaults are sized so the full 75-workload x
/// 6-configuration sweep finishes in minutes on one core.
struct EvalProtocol {
  int calib_batches = 4;
  int calib_batch_size = 32;
  /// ~1k evaluation samples: the paired fp32/quant comparison needs enough
  /// samples for the 1%-relative-loss criterion to be outside sampling
  /// noise (stderr of the paired accuracy difference ~0.2-0.3%).
  int eval_batches = 14;
  int eval_batch_size = 128;
  int bn_calibration_batches = 4;
  double pass_threshold = kDefaultPassThreshold;
};

/// Precomputed evaluation state shared across every quantization trial of
/// one (workload, protocol) pair. Building a plan performs the expensive
/// trial-invariant work once -- model construction, calibration and
/// evaluation data generation, the clean FP32 forward passes that produce
/// the teacher targets, and the FP32 baseline score. Each trial then only
/// pays for a Graph::clone() plus the quantized passes.
///
/// The prototype's weight identities are stamped (Tensor::identity()) at
/// plan-build time, so every per-trial clone adopts them and the
/// quantized-weight cache (quant/weight_cache.h) recognizes the repeated
/// weights across trials without rehashing their contents.
struct EvalPlan {
  std::string workload_name;
  std::string domain;
  MetricKind metric = MetricKind::kTop1;
  double margin_quantile = 0.0;
  double model_size_mb = 0.0;

  /// Pristine FP32 model; trials clone it, never mutate it.
  Graph prototype;
  /// Calibration batches (clean data, or the workload's calib generator).
  std::vector<std::vector<Tensor>> calib;

  struct PlanBatch {
    std::vector<Tensor> perturbed;  ///< inputs both networks are scored on
    Tensor clean_fp32_out;          ///< FP32 teacher targets (clean inputs)
  };
  std::vector<PlanBatch> batches;

  /// FP32 score on the perturbed batches (the baseline of the record).
  double fp32_score = 0.0;
};

/// Builds the trial-invariant evaluation state. Uses exactly the data
/// streams of evaluate_workload_config (same seeds, same draw order), so
/// evaluate_with_plan() reproduces its results bit for bit.
[[nodiscard]] EvalPlan make_eval_plan(const Workload& workload,
                                      const EvalProtocol& protocol = {});

/// Scores one quantization configuration against a prebuilt plan. Clones
/// the prototype, runs the PTQ pipeline on the clone, and returns the same
/// AccuracyRecord evaluate_workload_config would produce.
[[nodiscard]] AccuracyRecord evaluate_with_plan(const EvalPlan& plan,
                                                const ModelQuantConfig& config);

/// Runs the full PTQ pipeline for `scheme` on one workload and returns the
/// (fp32, quantized) accuracy record. SmoothQuant is enabled automatically
/// on NLP-domain workloads (paper section 4.2.1); the CNN first/last and
/// BatchNorm-calibration rules apply to is_cnn workloads.
[[nodiscard]] AccuracyRecord evaluate_workload(const Workload& workload,
                                               const SchemeConfig& scheme,
                                               const EvalProtocol& protocol = {});

/// Same pipeline, but with full control over the model-level quantization
/// configuration (fallback sets, BN calibration, SmoothQuant) -- the entry
/// point used by the accuracy-driven tuner. The config is taken as-is; no
/// domain defaults are applied.
[[nodiscard]] AccuracyRecord evaluate_workload_config(const Workload& workload,
                                                      const ModelQuantConfig& config,
                                                      const EvalProtocol& protocol = {});

/// The ModelQuantConfig that evaluate_workload derives from a scheme for
/// this workload (SmoothQuant on NLP, CNN flags, BN calibration).
[[nodiscard]] ModelQuantConfig default_model_config(const Workload& workload,
                                                    const SchemeConfig& scheme,
                                                    const EvalProtocol& protocol = {});

/// FP32 baseline score of a workload under the protocol (no quantization).
[[nodiscard]] double fp32_baseline(const Workload& workload,
                                   const EvalProtocol& protocol = {});

}  // namespace fp8q
