#include "tensor/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fp8q {

float absmax(std::span<const float> v) {
  float m = 0.0f;
  for (float x : v) {
    if (std::isnan(x)) continue;
    m = std::max(m, std::fabs(x));
  }
  return m;
}

std::pair<float, float> minmax(std::span<const float> v) {
  bool seen = false;
  float lo = 0.0f;
  float hi = 0.0f;
  for (float x : v) {
    if (std::isnan(x)) continue;
    if (!seen) {
      lo = hi = x;
      seen = true;
    } else {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  return {lo, hi};
}

namespace {

template <typename Fn>
void for_each_channel(const Tensor& t, int axis, Fn&& fn) {
  if (t.dim() == 0) return;
  if (axis < 0) axis += t.dim();
  if (axis < 0 || axis >= t.dim()) throw std::invalid_argument("bad channel axis");
  const std::int64_t channels = t.size(axis);
  const std::int64_t stride = t.strides()[static_cast<size_t>(axis)];
  const auto data = t.flat();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t c = (i / stride) % channels;
    fn(c, data[static_cast<size_t>(i)]);
  }
}

}  // namespace

std::vector<float> absmax_per_channel(const Tensor& t, int axis) {
  if (axis < 0) axis += t.dim();
  if (axis < 0 || axis >= t.dim()) throw std::invalid_argument("bad channel axis");
  std::vector<float> result(static_cast<size_t>(t.size(axis)), 0.0f);
  for_each_channel(t, axis, [&](std::int64_t c, float x) {
    if (!std::isnan(x)) {
      result[static_cast<size_t>(c)] = std::max(result[static_cast<size_t>(c)], std::fabs(x));
    }
  });
  return result;
}

std::vector<std::pair<float, float>> minmax_per_channel(const Tensor& t, int axis) {
  if (axis < 0) axis += t.dim();
  if (axis < 0 || axis >= t.dim()) throw std::invalid_argument("bad channel axis");
  const auto channels = static_cast<size_t>(t.size(axis));
  std::vector<std::pair<float, float>> result(channels,
                                              {std::numeric_limits<float>::infinity(),
                                               -std::numeric_limits<float>::infinity()});
  for_each_channel(t, axis, [&](std::int64_t c, float x) {
    if (std::isnan(x)) return;
    auto& [lo, hi] = result[static_cast<size_t>(c)];
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  });
  for (auto& [lo, hi] : result) {
    if (lo > hi) lo = hi = 0.0f;  // empty channel
  }
  return result;
}

SummaryStats summarize(std::span<const float> v) {
  SummaryStats s;
  if (v.empty()) return s;
  double sum = 0.0;
  std::int64_t n = 0;
  bool seen = false;
  for (float x : v) {
    if (std::isnan(x)) continue;
    if (!seen) {
      s.min = s.max = x;
      seen = true;
    }
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    s.absmax = std::max(s.absmax, std::fabs(x));
    sum += x;
    ++n;
  }
  if (n == 0) return s;
  s.mean = sum / static_cast<double>(n);
  double m2 = 0.0;
  double m4 = 0.0;
  for (float x : v) {
    if (std::isnan(x)) continue;
    const double d = x - s.mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  s.stddev = std::sqrt(m2);
  s.kurtosis = m2 > 0.0 ? m4 / (m2 * m2) - 3.0 : 0.0;
  return s;
}

float abs_quantile(std::span<const float> v, double q) {
  if (v.empty()) return 0.0f;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<float> mags;
  mags.reserve(v.size());
  for (float x : v) {
    if (!std::isnan(x)) mags.push_back(std::fabs(x));
  }
  if (mags.empty()) return 0.0f;
  const auto k = static_cast<size_t>(q * static_cast<double>(mags.size() - 1) + 0.5);
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k), mags.end());
  return mags[k];
}

std::vector<double> abs_histogram(std::span<const float> v, int bins, float hi) {
  if (bins <= 0) throw std::invalid_argument("abs_histogram: bins must be positive");
  std::vector<double> h(static_cast<size_t>(bins), 0.0);
  if (!(hi > 0.0f)) return h;
  for (float x : v) {
    if (std::isnan(x)) continue;
    const float a = std::fabs(x);
    auto b = static_cast<std::int64_t>(a / hi * static_cast<float>(bins));
    b = std::min<std::int64_t>(b, bins - 1);
    h[static_cast<size_t>(b)] += 1.0;
  }
  return h;
}

double fraction_within_sigma(std::span<const float> v, double k) {
  if (v.empty()) return 0.0;
  const SummaryStats s = summarize(v);
  if (s.stddev <= 0.0) return 1.0;
  std::int64_t inside = 0;
  std::int64_t total = 0;
  for (float x : v) {
    if (std::isnan(x)) continue;
    ++total;
    if (std::fabs(x - s.mean) <= k * s.stddev) ++inside;
  }
  return total > 0 ? static_cast<double>(inside) / static_cast<double>(total) : 0.0;
}

}  // namespace fp8q
