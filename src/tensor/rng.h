// Deterministic random number generation for synthetic weights, inputs and
// the controlled tensor distributions of the study (paper Figures 1 and 3).
//
// A self-contained xoshiro-style generator keeps every workload, test and
// bench bit-reproducible across platforms and standard libraries.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace fp8q {

/// splitmix64-seeded xorshift generator with Box-Muller normals.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x8E5A2D1CB7F3A941ull);

  /// Raw 64-bit draw.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform01();

  /// Uniform in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard Box-Muller normal with the given mean and stddev.
  float normal(float mean = 0.0f, float stddev = 1.0f);

  /// Integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi);

  /// Student-t draw with `dof` degrees of freedom (heavy-tailed activations).
  float student_t(float dof);

  /// Forks a decorrelated child stream (for per-workload determinism).
  [[nodiscard]] Rng fork();

 private:
  std::uint64_t state_;
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

/// Tensor filled with N(mean, stddev^2) draws.
[[nodiscard]] Tensor randn(Rng& rng, Shape shape, float mean = 0.0f, float stddev = 1.0f);

/// Tensor filled with U[lo, hi) draws.
[[nodiscard]] Tensor rand_uniform(Rng& rng, Shape shape, float lo = 0.0f, float hi = 1.0f);

/// Tensor of heavy-tailed Student-t draws scaled by `scale`.
[[nodiscard]] Tensor rand_student_t(Rng& rng, Shape shape, float dof, float scale = 1.0f);

/// Replaces a `fraction` of elements with uniform draws in [lo, hi] —
/// the outlier-injection protocol of paper Figure 1 (1% outliers in +/-6).
void inject_outliers(Tensor& t, Rng& rng, double fraction, float lo, float hi);

/// Scales a random subset of `channel_fraction` channels (axis `axis`) by
/// `gain` — emulates the LayerNorm-amplified outlier *channels* observed in
/// LLM activations (paper section 1, Wei et al. 2022).
void amplify_channels(Tensor& t, Rng& rng, int axis, double channel_fraction, float gain);

}  // namespace fp8q
