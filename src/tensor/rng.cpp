#include "tensor/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fp8q {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  state_ = splitmix64(s);
  if (state_ == 0) state_ = 0x1234567890ABCDEFull;
}

std::uint64_t Rng::next() {
  std::uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545F4914F6CDD1Dull;
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(uniform01()) * (hi - lo);
}

float Rng::normal(float mean, float stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = uniform01();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = static_cast<float>(r * std::sin(theta));
  has_cached_normal_ = true;
  return mean + stddev * static_cast<float>(r * std::cos(theta));
}

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("randint: hi < lo");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

float Rng::student_t(float dof) {
  // t = Z / sqrt(ChiSq(dof)/dof); ChiSq via sum of squared normals for small
  // integer dof, which is all the synthetic distributions need.
  const int k = std::max(1, static_cast<int>(dof));
  double chi = 0.0;
  for (int i = 0; i < k; ++i) {
    const double z = normal();
    chi += z * z;
  }
  return static_cast<float>(normal() / std::sqrt(chi / k));
}

Rng Rng::fork() { return Rng(next()); }

Tensor randn(Rng& rng, Shape shape, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.flat()) v = rng.normal(mean, stddev);
  return t;
}

Tensor rand_uniform(Rng& rng, Shape shape, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.flat()) v = rng.uniform(lo, hi);
  return t;
}

Tensor rand_student_t(Rng& rng, Shape shape, float dof, float scale) {
  Tensor t(std::move(shape));
  for (float& v : t.flat()) v = scale * rng.student_t(dof);
  return t;
}

void inject_outliers(Tensor& t, Rng& rng, double fraction, float lo, float hi) {
  if (fraction <= 0.0) return;
  for (float& v : t.flat()) {
    if (rng.uniform01() < fraction) v = rng.uniform(lo, hi);
  }
}

void amplify_channels(Tensor& t, Rng& rng, int axis, double channel_fraction, float gain) {
  if (t.dim() == 0 || channel_fraction <= 0.0) return;
  if (axis < 0) axis += t.dim();
  if (axis < 0 || axis >= t.dim()) throw std::invalid_argument("amplify_channels: bad axis");

  const std::int64_t channels = t.size(axis);
  std::vector<bool> amplified(static_cast<size_t>(channels), false);
  for (std::int64_t c = 0; c < channels; ++c) {
    amplified[static_cast<size_t>(c)] = rng.uniform01() < channel_fraction;
  }

  const auto strides = t.strides();
  const std::int64_t stride = strides[static_cast<size_t>(axis)];
  const std::int64_t n = t.numel();
  auto data = t.flat();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t c = (i / stride) % channels;
    if (amplified[static_cast<size_t>(c)]) data[static_cast<size_t>(i)] *= gain;
  }
}

}  // namespace fp8q
