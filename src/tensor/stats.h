// Tensor statistics used by calibration observers, distribution taxonomy
// (paper Figure 3) and the experiment harnesses.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace fp8q {

/// Largest absolute value; 0 for empty input. NaNs are ignored.
[[nodiscard]] float absmax(std::span<const float> v);
[[nodiscard]] inline float absmax(const Tensor& t) { return absmax(t.flat()); }

/// (min, max); (0, 0) for empty input. NaNs are ignored.
[[nodiscard]] std::pair<float, float> minmax(std::span<const float> v);
[[nodiscard]] inline std::pair<float, float> minmax(const Tensor& t) {
  return minmax(t.flat());
}

/// Per-channel absmax along `axis` (e.g. axis 0 of a [out, in] weight for
/// the paper's per-channel weight scaling).
[[nodiscard]] std::vector<float> absmax_per_channel(const Tensor& t, int axis);

/// Per-channel (min, max) along `axis`.
[[nodiscard]] std::vector<std::pair<float, float>> minmax_per_channel(const Tensor& t,
                                                                      int axis);

/// Moment summary for distribution classification.
struct SummaryStats {
  float min = 0.0f;
  float max = 0.0f;
  float absmax = 0.0f;
  double mean = 0.0;
  double stddev = 0.0;
  double kurtosis = 0.0;  ///< excess kurtosis; >> 0 means outlier-heavy
};

[[nodiscard]] SummaryStats summarize(std::span<const float> v);
[[nodiscard]] inline SummaryStats summarize(const Tensor& t) { return summarize(t.flat()); }

/// `q`-quantile of |v| (q in [0,1]) via sorting; used by the percentile
/// calibrator. Returns 0 for empty input.
[[nodiscard]] float abs_quantile(std::span<const float> v, double q);

/// Histogram of |v| over [0, hi] with `bins` equal-width buckets; values
/// beyond hi land in the last bucket. Used by the KL calibrator.
[[nodiscard]] std::vector<double> abs_histogram(std::span<const float> v, int bins, float hi);

/// Fraction of |v| that falls within k standard deviations of the mean —
/// the "3-sigma region" coverage analysis from paper section 2.
[[nodiscard]] double fraction_within_sigma(std::span<const float> v, double k);

}  // namespace fp8q
