#include "tensor/tensor.h"

#include <atomic>
#include <cassert>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "obs/memory.h"

namespace fp8q {

namespace {
// Global stamp source for TensorIdentity ids and versions. Monotonic and
// never reused, so a (id, version) pair observed once can never later name
// different contents.
std::uint64_t next_tensor_stamp() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

TensorIdentity Tensor::identity() {
  if (dirty_) {
    if (id_ == 0) id_ = next_tensor_stamp();
    version_ = next_tensor_stamp();
    dirty_ = false;
  }
  return {id_, version_};
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t s : shape) {
    if (s < 0) throw std::invalid_argument("negative axis in shape");
    n *= s;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<size_t>(shape_numel(shape_)), 0.0f) {
  alloc_counter_add(data_.size() * sizeof(float));
}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(static_cast<size_t>(shape_numel(shape_)), value) {
  alloc_counter_add(data_.size() * sizeof(float));
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_numel(shape_)) {
    throw std::invalid_argument("data size does not match shape");
  }
  alloc_counter_add(data_.size() * sizeof(float));
}

// Copies duplicate the payload, so they count as allocations. All five
// members come across unchanged -- including (id_, version_, dirty_) --
// because a copy holds the same bits as the source and must ADOPT its
// identity (see identity()).
Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_),
      data_(other.data_),
      id_(other.id_),
      version_(other.version_),
      dirty_(other.dirty_) {
  alloc_counter_add(data_.size() * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  data_ = other.data_;
  id_ = other.id_;
  version_ = other.version_;
  dirty_ = other.dirty_;
  alloc_counter_add(data_.size() * sizeof(float));
  return *this;
}

std::int64_t Tensor::size(int axis) const {
  if (axis < 0) axis += dim();
  if (axis < 0 || axis >= dim()) throw std::out_of_range("axis out of range");
  return shape_[static_cast<size_t>(axis)];
}

std::vector<std::int64_t> Tensor::strides() const {
  std::vector<std::int64_t> st(shape_.size(), 1);
  for (int i = dim() - 2; i >= 0; --i) {
    st[static_cast<size_t>(i)] = st[static_cast<size_t>(i) + 1] * shape_[static_cast<size_t>(i) + 1];
  }
  return st;
}

namespace {
std::int64_t flatten_index(const Shape& shape, std::initializer_list<std::int64_t> idx) {
  if (idx.size() != shape.size()) throw std::out_of_range("index rank mismatch");
  std::int64_t flat = 0;
  size_t i = 0;
  for (std::int64_t v : idx) {
    assert(v >= 0 && v < shape[i]);
    flat = flat * shape[i] + v;
    ++i;
  }
  return flat;
}
}  // namespace

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  dirty_ = true;
  return data_[static_cast<size_t>(flatten_index(shape_, idx))];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_[static_cast<size_t>(flatten_index(shape_, idx))];
}

Tensor Tensor::reshape(Shape new_shape) const {
  std::int64_t known = 1;
  int infer_axis = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (infer_axis >= 0) throw std::invalid_argument("multiple -1 axes in reshape");
      infer_axis = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_axis >= 0) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument("cannot infer reshape axis");
    }
    new_shape[static_cast<size_t>(infer_axis)] = numel() / known;
  }
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape changes element count");
  }
  return Tensor(std::move(new_shape), data_);
}

Tensor& Tensor::fill(float v) {
  dirty_ = true;
  std::fill(data_.begin(), data_.end(), v);
  return *this;
}

Tensor& Tensor::scale(float s) {
  dirty_ = true;
  for (float& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::add_scalar(float s) {
  dirty_ = true;
  for (float& v : data_) v += s;
  return *this;
}

Tensor& Tensor::add(const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("add: shape mismatch");
  dirty_ = true;
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::mul(const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("mul: shape mismatch");
  dirty_ = true;
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

std::string Tensor::descriptor() const {
  std::ostringstream os;
  os << "f32[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace fp8q
