// A minimal dense float32 tensor: row-major, contiguous, owning.
//
// The emulation framework runs every kernel in FP32 (as the paper's setup
// does on FP32 hardware), so a single-dtype tensor is sufficient; FP8/INT8
// participation happens by snapping values onto the quantization grid.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace fp8q {

using Shape = std::vector<std::int64_t>;

/// Stable (id, version) pair naming one observed state of a tensor's
/// contents (see Tensor::identity()). Two tensors with equal identities
/// hold bit-identical data; a mutated tensor never repeats an old version.
struct TensorIdentity {
  std::uint64_t id = 0;       ///< allocation identity (0 = never observed)
  std::uint64_t version = 0;  ///< bumped past every observed mutation

  [[nodiscard]] bool operator==(const TensorIdentity&) const = default;
};

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `value`.
  Tensor(Shape shape, float value);

  /// Wraps existing data (copied) into the given shape. `data.size()` must
  /// equal the shape's element count.
  Tensor(Shape shape, std::vector<float> data);

  // Every constructor that materializes a payload -- including copies --
  // reports its bytes to the obs allocation tally (obs/memory.h), so run
  // reports can account per-stage tensor-allocation traffic. Moves
  // transfer ownership without allocating and are not counted.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(Tensor&& other) noexcept = default;
  ~Tensor() = default;

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor full(Shape shape, float v) { return {std::move(shape), v}; }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] int dim() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] std::int64_t size(int axis) const;
  [[nodiscard]] std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::span<float> flat() {
    dirty_ = true;
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const float> flat() const { return {data_.data(), data_.size()}; }
  [[nodiscard]] float* data() {
    dirty_ = true;
    return data_.data();
  }
  [[nodiscard]] const float* data() const { return data_.data(); }

  /// Row-major strides (in elements).
  [[nodiscard]] std::vector<std::int64_t> strides() const;

  /// Element access by multi-index; bounds-checked in debug builds.
  [[nodiscard]] float& at(std::initializer_list<std::int64_t> idx);
  [[nodiscard]] float at(std::initializer_list<std::int64_t> idx) const;

  [[nodiscard]] float& operator[](std::int64_t i) {
    dirty_ = true;
    return data_[static_cast<size_t>(i)];
  }
  [[nodiscard]] float operator[](std::int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Returns a copy with a new shape covering the same number of elements.
  /// One axis may be -1 (inferred).
  [[nodiscard]] Tensor reshape(Shape new_shape) const;

  /// In-place scalar ops.
  Tensor& fill(float v);
  Tensor& scale(float s);
  Tensor& add_scalar(float s);

  /// In-place elementwise ops with a same-shaped tensor.
  Tensor& add(const Tensor& other);
  Tensor& mul(const Tensor& other);

  /// Human-readable "f32[2, 3, 4]" string.
  [[nodiscard]] std::string descriptor() const;

  [[nodiscard]] bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Returns a (id, version) pair that names this tensor's CURRENT
  /// contents, for memoization (quant/weight_cache.h): the id is minted on
  /// first observation, and the version is re-stamped from a global
  /// monotonic counter whenever the data may have changed since the last
  /// call. "May have changed" is tracked with a dirty bit set by every
  /// non-const accessor and in-place op -- a plain bool store, so hot
  /// loops pay nothing. Copies ADOPT the source's identity (the copy holds
  /// the same bits), so restoring a backup by copy-assignment revalidates
  /// cached entries instead of orphaning them.
  ///
  /// Caveat: a raw pointer or span obtained before the identity() call and
  /// written through afterwards bypasses the dirty bit. Callers that hold
  /// long-lived views must re-acquire them (or call data()) after mutating.
  [[nodiscard]] TensorIdentity identity();

 private:
  Shape shape_;
  std::vector<float> data_;
  std::uint64_t id_ = 0;
  std::uint64_t version_ = 0;
  bool dirty_ = true;
};

/// Total element count of a shape; throws on negative axes.
[[nodiscard]] std::int64_t shape_numel(const Shape& shape);

}  // namespace fp8q
