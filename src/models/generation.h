// Autoregressive generation utilities for the decoder LM (paper Table 4 /
// Appendix A.3: Bloom text generation with beam search of size 4).
//
// The model is driven through a logits callback so both the FP32 Graph and
// a QuantizedGraph can generate. No KV cache: each step re-runs the prefix
// (models are tiny). Because only the generated prefix is ever fed, no
// causal mask is needed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace fp8q {

/// Produces [1, len, vocab] logits for a [1, len] id tensor plus matching
/// positions.
using LmForward = std::function<Tensor(const Tensor& ids, const Tensor& pos)>;

/// Greedy decoding: appends `steps` argmax tokens to the prompt.
[[nodiscard]] std::vector<int> greedy_generate(const LmForward& forward,
                                               std::vector<int> prompt, int steps);

/// Beam-search decoding with length-normalized log-probabilities.
/// Returns the best beam's full token sequence (prompt included).
[[nodiscard]] std::vector<int> beam_generate(const LmForward& forward,
                                             std::vector<int> prompt, int steps,
                                             int beam_size = 4);

/// Fraction of n-grams that already occurred earlier in the sequence --
/// the degeneracy ("She saw many strange...") measure for Table 4.
[[nodiscard]] double repeated_ngram_fraction(const std::vector<int>& tokens, int n);

/// Distinct-n: unique n-grams / total n-grams (higher = more diverse).
[[nodiscard]] double distinct_n(const std::vector<int>& tokens, int n);

/// Fraction of positions where two generations agree.
[[nodiscard]] double token_agreement(const std::vector<int>& a, const std::vector<int>& b);

/// Adapts a graph-like object (Graph / QuantizedGraph) into an LmForward.
template <typename GraphLike>
[[nodiscard]] LmForward make_lm_forward(GraphLike& g) {
  return [&g](const Tensor& ids, const Tensor& pos) {
    std::vector<Tensor> in;
    in.push_back(ids);
    in.push_back(pos);
    return g.forward(in);
  };
}

}  // namespace fp8q
