#include "models/zoo.h"

#include <cmath>
#include <memory>
#include <string>

#include "nn/conv.h"
#include "nn/elementwise.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/matmul.h"
#include "nn/norm.h"
#include "nn/shape_ops.h"
#include "tensor/rng.h"

namespace fp8q {

namespace {

/// Kaiming-style [out, in] weight; each output channel optionally scaled by
/// 2^U(-spread/2, spread/2) to emulate wide per-channel ranges.
Tensor linear_weight(Rng& rng, std::int64_t out, std::int64_t in, float spread = 0.0f) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in));
  Tensor w = randn(rng, {out, in}, 0.0f, stddev);
  if (spread > 0.0f) {
    for (std::int64_t o = 0; o < out; ++o) {
      const float gain = std::exp2(rng.uniform(-spread / 2.0f, spread / 2.0f));
      for (std::int64_t i = 0; i < in; ++i) w.at({o, i}) *= gain;
    }
  }
  return w;
}

Tensor conv_weight(Rng& rng, std::int64_t oc, std::int64_t icg, std::int64_t k,
                   float spread = 0.0f) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(icg * k * k));
  Tensor w = randn(rng, {oc, icg, k, k}, 0.0f, stddev);
  if (spread > 0.0f) {
    const std::int64_t block = icg * k * k;
    for (std::int64_t o = 0; o < oc; ++o) {
      const float gain = std::exp2(rng.uniform(-spread / 2.0f, spread / 2.0f));
      float* row = w.data() + o * block;
      for (std::int64_t i = 0; i < block; ++i) row[i] *= gain;
    }
  }
  return w;
}

/// LayerNorm gamma near 1 with a fraction of channels amplified -- the
/// mechanism by which LayerNorm produces activation outlier channels in
/// LLMs (paper section 1, Wei et al. 2022).
Tensor outlier_gamma(Rng& rng, std::int64_t dim, float fraction, float gain) {
  Tensor g({dim});
  for (std::int64_t i = 0; i < dim; ++i) {
    float v = 1.0f + rng.normal(0.0f, 0.1f);
    if (v < 0.2f) v = 0.2f;
    if (fraction > 0.0f && rng.uniform01() < fraction) v *= gain;
    g[i] = v;
  }
  return g;
}

Tensor small_bias(Rng& rng, std::int64_t n) { return randn(rng, {n}, 0.0f, 0.02f); }

OpPtr relu() { return std::make_unique<ActivationOp>(OpKind::kRelu); }
OpPtr gelu() { return std::make_unique<ActivationOp>(OpKind::kGelu); }

/// One transformer block appended to `g` at node `x`; returns the output id.
Graph::NodeId transformer_block(Graph& g, Graph::NodeId x, Rng& rng, int dim, int ffn_mult,
                                float out_frac, float out_gain, int glu_gates,
                                const std::string& prefix) {
  const auto ln1 = g.add(prefix + ".ln1",
                         std::make_unique<LayerNormOp>(
                             outlier_gamma(rng, dim, out_frac, out_gain), Tensor(Shape{dim})),
                         {x});
  const auto q = g.add(prefix + ".q",
                       std::make_unique<LinearOp>(linear_weight(rng, dim, dim),
                                                  small_bias(rng, dim)),
                       {ln1});
  const auto k = g.add(prefix + ".k",
                       std::make_unique<LinearOp>(linear_weight(rng, dim, dim),
                                                  small_bias(rng, dim)),
                       {ln1});
  const auto v = g.add(prefix + ".v",
                       std::make_unique<LinearOp>(linear_weight(rng, dim, dim),
                                                  small_bias(rng, dim)),
                       {ln1});
  const auto scores = g.add(prefix + ".scores",
                            std::make_unique<MatMulOp>(/*batched=*/true, /*transpose_b=*/true),
                            {q, k});
  const auto scaled = g.add(prefix + ".scale",
                            std::make_unique<ScaleOp>(1.0f / std::sqrt(static_cast<float>(dim))),
                            {scores});
  const auto attn = g.add(prefix + ".softmax", std::make_unique<SoftmaxOp>(), {scaled});
  const auto ctx = g.add(prefix + ".ctx",
                         std::make_unique<MatMulOp>(/*batched=*/true, /*transpose_b=*/false),
                         {attn, v});
  const auto proj = g.add(prefix + ".proj",
                          std::make_unique<LinearOp>(linear_weight(rng, dim, dim),
                                                     small_bias(rng, dim)),
                          {ctx});
  const auto res1 = g.add(prefix + ".res1", std::make_unique<BinaryOp>(OpKind::kAdd),
                          {x, proj});
  const auto ln2 = g.add(prefix + ".ln2",
                         std::make_unique<LayerNormOp>(
                             outlier_gamma(rng, dim, out_frac, out_gain), Tensor(Shape{dim})),
                         {res1});
  const std::int64_t hidden = static_cast<std::int64_t>(dim) * ffn_mult;
  const auto f1 = g.add(prefix + ".ffn1",
                        std::make_unique<LinearOp>(linear_weight(rng, hidden, dim),
                                                   small_bias(rng, hidden)),
                        {ln2});
  Graph::NodeId h = g.add(prefix + ".gelu", gelu(), {f1});
  for (int gate = 0; gate < glu_gates; ++gate) {
    const auto gp = g.add(prefix + ".gate" + std::to_string(gate),
                          std::make_unique<LinearOp>(linear_weight(rng, hidden, dim),
                                                     small_bias(rng, hidden)),
                          {ln2});
    h = g.add(prefix + ".glu" + std::to_string(gate),
              std::make_unique<BinaryOp>(OpKind::kMul), {h, gp});
  }
  const auto f2 = g.add(prefix + ".ffn2",
                        std::make_unique<LinearOp>(linear_weight(rng, dim, hidden),
                                                   small_bias(rng, dim)),
                        {h});
  return g.add(prefix + ".res2", std::make_unique<BinaryOp>(OpKind::kAdd), {res1, f2});
}

}  // namespace

Graph make_cnn(const CnnSpec& spec) {
  Rng rng(spec.seed);
  Graph g;
  const auto in = g.add_input("image");
  const int ch = spec.base_channels;

  auto add_bn_relu = [&](Graph::NodeId x, int c, const std::string& prefix) {
    Graph::NodeId cur = x;
    if (spec.batchnorm) {
      Tensor mean = randn(rng, {c}, 0.0f, 0.05f);
      Tensor var = Tensor::full({c}, 1.0f);
      for (float& vv : var.flat()) vv = std::max(0.2f, vv + rng.normal(0.0f, 0.1f));
      Tensor gamma = outlier_gamma(rng, c, 0.0f, 1.0f);
      if (spec.act_spread > 0.0f) {
        for (float& gv : gamma.flat()) {
          gv *= std::exp2(rng.uniform(-spec.act_spread / 2.0f, spec.act_spread / 2.0f));
        }
      }
      cur = g.add(prefix + ".bn",
                  std::make_unique<BatchNorm2dOp>(std::move(gamma), Tensor(Shape{c}),
                                                  std::move(mean), std::move(var)),
                  {cur});
    }
    return g.add(prefix + ".relu", relu(), {cur});
  };

  auto stem = g.add("stem.conv",
                    std::make_unique<Conv2dOp>(
                        conv_weight(rng, ch, spec.in_channels, 3, spec.weight_spread),
                        small_bias(rng, ch), 1, 1),
                    {in});
  Graph::NodeId x = add_bn_relu(stem, ch, "stem");

  for (int b = 0; b < spec.blocks; ++b) {
    const std::string prefix = "block" + std::to_string(b);
    const Graph::NodeId block_in = x;
    Graph::NodeId cur;
    if (spec.depthwise) {
      const auto dw = g.add(prefix + ".dw",
                            std::make_unique<Conv2dOp>(
                                conv_weight(rng, ch, 1, 3, spec.weight_spread),
                                Tensor{}, 1, 1, ch),
                            {x});
      const auto dwr = add_bn_relu(dw, ch, prefix + ".dwpost");
      cur = g.add(prefix + ".pw",
                  std::make_unique<Conv2dOp>(
                      conv_weight(rng, ch, ch, 1, spec.weight_spread),
                      small_bias(rng, ch), 1, 0),
                  {dwr});
    } else {
      cur = g.add(prefix + ".conv",
                  std::make_unique<Conv2dOp>(
                      conv_weight(rng, ch, ch, 3, spec.weight_spread),
                      small_bias(rng, ch), 1, 1),
                  {x});
    }
    Graph::NodeId post = add_bn_relu(cur, ch, prefix);
    if (spec.residual) {
      post = g.add(prefix + ".res", std::make_unique<BinaryOp>(OpKind::kAdd),
                   {post, block_in});
    }
    x = post;
  }

  const auto pool = g.add("pool", std::make_unique<GlobalAvgPoolOp>(), {x});
  g.add("head",
        std::make_unique<LinearOp>(linear_weight(rng, spec.classes, ch),
                                   small_bias(rng, spec.classes)),
        {pool});
  return g;
}

Graph make_transformer_encoder(const TransformerSpec& spec) {
  Rng rng(spec.seed);
  Graph g;
  const auto in = g.add_input("features");
  Graph::NodeId x = in;
  if (spec.input_proj) {
    x = g.add("input_proj",
              std::make_unique<LinearOp>(linear_weight(rng, spec.dim, spec.dim),
                                         small_bias(rng, spec.dim)),
              {x});
  }
  for (int l = 0; l < spec.layers; ++l) {
    x = transformer_block(g, x, rng, spec.dim, spec.ffn_mult,
                          spec.outlier_channel_fraction, spec.outlier_gamma_gain,
                          spec.glu_gates, "layer" + std::to_string(l));
  }
  const auto ln = g.add("final.ln",
                        std::make_unique<LayerNormOp>(
                            outlier_gamma(rng, spec.dim, 0.0f, 1.0f), Tensor(Shape{spec.dim})),
                        {x});
  const auto flat = g.add("flatten", std::make_unique<ReshapeOp>(Shape{0, -1}), {ln});
  g.add("classifier",
        std::make_unique<LinearOp>(
            linear_weight(rng, spec.classes,
                          static_cast<std::int64_t>(spec.seq) * spec.dim),
            small_bias(rng, spec.classes)),
        {flat});
  return g;
}

Graph make_decoder_lm(const DecoderLmSpec& spec) {
  Rng rng(spec.seed);
  Graph g;
  const auto ids = g.add_input("ids");
  const auto pos = g.add_input("pos");
  Tensor table = randn(rng, {spec.vocab, spec.dim}, 0.0f, 0.5f);
  if (spec.embedding_outlier_fraction > 0.0f) {
    // Token-level outliers: rare tokens carry outsized embeddings.
    for (std::int64_t v = 0; v < spec.vocab; ++v) {
      if (rng.uniform01() < spec.embedding_outlier_fraction) {
        float* row = table.data() + v * spec.dim;
        for (int j = 0; j < spec.dim; ++j) row[j] *= spec.embedding_outlier_gain;
      }
    }
  }
  const auto tok_emb = g.add("tok_emb", std::make_unique<EmbeddingOp>(std::move(table)),
                             {ids});
  const auto pos_emb = g.add(
      "pos_emb",
      std::make_unique<EmbeddingOp>(randn(rng, {256, spec.dim}, 0.0f, 0.2f)),
      {pos});
  Graph::NodeId x = g.add("emb_add", std::make_unique<BinaryOp>(OpKind::kAdd),
                          {tok_emb, pos_emb});
  if (spec.embed_proj) {
    x = g.add("embed_proj",
              std::make_unique<LinearOp>(linear_weight(rng, spec.dim, spec.dim),
                                         small_bias(rng, spec.dim)),
              {x});
  }
  for (int l = 0; l < spec.layers; ++l) {
    x = transformer_block(g, x, rng, spec.dim, spec.ffn_mult,
                          spec.outlier_channel_fraction, spec.outlier_gamma_gain,
                          spec.glu_gates, "layer" + std::to_string(l));
  }
  const auto ln = g.add("final.ln",
                        std::make_unique<LayerNormOp>(
                            outlier_gamma(rng, spec.dim, 0.0f, 1.0f), Tensor(Shape{spec.dim})),
                        {x});
  // The LM head carries a token-frequency prior (bias). When quantization
  // degrades the content signal, beam search falls back to the prior and
  // the generation degenerates into repeating high-frequency tokens -- the
  // failure mode of paper Table 4's INT8 output.
  g.add("lm_head",
        std::make_unique<LinearOp>(linear_weight(rng, spec.vocab, spec.dim),
                                   randn(rng, {spec.vocab}, 0.0f, 1.2f)),
        {ln});
  return g;
}

Graph make_dlrm(const DlrmSpec& spec) {
  Rng rng(spec.seed);
  Graph g;
  const auto dense = g.add_input("dense");
  const auto ids = g.add_input("ids");

  const auto b1 = g.add("bottom.fc1",
                        std::make_unique<LinearOp>(
                            linear_weight(rng, spec.hidden, spec.dense_features),
                            small_bias(rng, spec.hidden)),
                        {dense});
  const auto b1r = g.add("bottom.relu1", relu(), {b1});
  const auto b2 = g.add("bottom.fc2",
                        std::make_unique<LinearOp>(
                            linear_weight(rng, spec.emb_dim, spec.hidden),
                            small_bias(rng, spec.emb_dim)),
                        {b1r});
  const auto b2r = g.add("bottom.relu2", relu(), {b2});

  const auto emb = g.add(
      "embedding",
      std::make_unique<EmbeddingOp>(randn(rng, {spec.vocab, spec.emb_dim}, 0.0f, 0.3f)),
      {ids});

  // Feature interaction: elementwise product plus residual sum.
  const auto inter = g.add("interact.mul", std::make_unique<BinaryOp>(OpKind::kMul),
                           {b2r, emb});
  const auto mix = g.add("interact.add", std::make_unique<BinaryOp>(OpKind::kAdd),
                         {inter, b2r});

  const auto t1 = g.add("top.fc1",
                        std::make_unique<LinearOp>(
                            linear_weight(rng, spec.hidden, spec.emb_dim),
                            small_bias(rng, spec.hidden)),
                        {mix});
  const auto t1r = g.add("top.relu", relu(), {t1});
  const auto t2 = g.add("top.fc2",
                        std::make_unique<LinearOp>(linear_weight(rng, 1, spec.hidden),
                                                   small_bias(rng, 1)),
                        {t1r});
  g.add("sigmoid", std::make_unique<ActivationOp>(OpKind::kSigmoid), {t2});
  return g;
}

Graph make_unet(const UnetSpec& spec) {
  Rng rng(spec.seed);
  Graph g;
  const auto in = g.add_input("noisy");
  const int b = spec.base_channels;

  auto conv_relu = [&](Graph::NodeId x, int ic, int oc, int kernel, int pad,
                       const std::string& name) {
    const auto c = g.add(name,
                         std::make_unique<Conv2dOp>(conv_weight(rng, oc, ic, kernel),
                                                    small_bias(rng, oc), 1, pad),
                         {x});
    return g.add(name + ".relu", relu(), {c});
  };

  const auto e1 = conv_relu(in, spec.in_channels, b, 3, 1, "enc1");
  const auto p1 = g.add("down1", std::make_unique<MaxPool2x2Op>(), {e1});
  const auto e2 = conv_relu(p1, b, 2 * b, 3, 1, "enc2");
  const auto p2 = g.add("down2", std::make_unique<MaxPool2x2Op>(), {e2});
  const auto bott = conv_relu(p2, 2 * b, 2 * b, 3, 1, "bottleneck");

  const auto u1 = g.add("up1", std::make_unique<Upsample2xOp>(), {bott});
  const auto d1 = conv_relu(u1, 2 * b, 2 * b, 3, 1, "dec1");
  const auto s1 = g.add("skip1", std::make_unique<BinaryOp>(OpKind::kAdd), {d1, e2});
  const auto u2 = g.add("up2", std::make_unique<Upsample2xOp>(), {s1});
  const auto d2 = conv_relu(u2, 2 * b, b, 3, 1, "dec2");
  const auto s2 = g.add("skip2", std::make_unique<BinaryOp>(OpKind::kAdd), {d2, e1});
  g.add("out",
        std::make_unique<Conv2dOp>(conv_weight(rng, spec.in_channels, b, 1),
                                   small_bias(rng, spec.in_channels), 1, 0),
        {s2});
  return g;
}

Graph make_mlp_model(const MlpSpec& spec) {
  Rng rng(spec.seed);
  Graph g;
  const auto in = g.add_input("features");
  Graph::NodeId x = in;
  std::int64_t cur_dim = spec.in_dim;
  for (int l = 0; l < spec.layers; ++l) {
    const std::string prefix = "fc" + std::to_string(l);
    if (spec.layernorm) {
      x = g.add(prefix + ".ln",
                std::make_unique<LayerNormOp>(
                    outlier_gamma(rng, cur_dim, spec.outlier_channel_fraction,
                                  spec.outlier_gamma_gain),
                    Tensor(Shape{cur_dim})),
                {x});
    }
    const std::int64_t next = (l + 1 == spec.layers) ? spec.out_dim : spec.hidden;
    x = g.add(prefix,
              std::make_unique<LinearOp>(linear_weight(rng, next, cur_dim),
                                         small_bias(rng, next)),
              {x});
    if (l + 1 < spec.layers) x = g.add(prefix + ".relu", relu(), {x});
    cur_dim = next;
  }
  return g;
}

}  // namespace fp8q
