#include "models/generation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace fp8q {

namespace {

/// Runs the model on a token sequence and returns the last position's
/// log-softmax scores.
std::vector<double> next_token_logprobs(const LmForward& forward,
                                        const std::vector<int>& tokens) {
  const auto len = static_cast<std::int64_t>(tokens.size());
  Tensor ids({1, len});
  Tensor pos({1, len});
  for (std::int64_t i = 0; i < len; ++i) {
    ids[i] = static_cast<float>(tokens[static_cast<size_t>(i)]);
    pos[i] = static_cast<float>(i);
  }
  const Tensor logits = forward(ids, pos);
  const std::int64_t vocab = logits.size(-1);
  const auto last = logits.flat().subspan(static_cast<size_t>((len - 1) * vocab),
                                          static_cast<size_t>(vocab));
  double mx = last[0];
  for (float v : last) mx = std::max(mx, static_cast<double>(v));
  double sum = 0.0;
  for (float v : last) sum += std::exp(static_cast<double>(v) - mx);
  const double log_z = mx + std::log(sum);
  std::vector<double> lp(static_cast<size_t>(vocab));
  for (std::int64_t i = 0; i < vocab; ++i) lp[static_cast<size_t>(i)] = last[static_cast<size_t>(i)] - log_z;
  return lp;
}

}  // namespace

std::vector<int> greedy_generate(const LmForward& forward, std::vector<int> prompt,
                                 int steps) {
  if (prompt.empty()) throw std::invalid_argument("greedy_generate: empty prompt");
  for (int s = 0; s < steps; ++s) {
    const auto lp = next_token_logprobs(forward, prompt);
    const auto best = std::max_element(lp.begin(), lp.end());
    prompt.push_back(static_cast<int>(best - lp.begin()));
  }
  return prompt;
}

std::vector<int> beam_generate(const LmForward& forward, std::vector<int> prompt,
                               int steps, int beam_size) {
  if (prompt.empty()) throw std::invalid_argument("beam_generate: empty prompt");
  if (beam_size < 1) throw std::invalid_argument("beam_generate: beam_size < 1");

  struct Beam {
    std::vector<int> tokens;
    double logprob = 0.0;
  };
  std::vector<Beam> beams = {{std::move(prompt), 0.0}};

  for (int s = 0; s < steps; ++s) {
    std::vector<Beam> candidates;
    for (const Beam& b : beams) {
      const auto lp = next_token_logprobs(forward, b.tokens);
      // Expand only the top beam_size tokens of each beam.
      std::vector<int> order(lp.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
      std::partial_sort(order.begin(),
                        order.begin() + std::min<size_t>(order.size(),
                                                         static_cast<size_t>(beam_size)),
                        order.end(),
                        [&](int a, int c) { return lp[static_cast<size_t>(a)] > lp[static_cast<size_t>(c)]; });
      for (int k = 0; k < beam_size && k < static_cast<int>(order.size()); ++k) {
        Beam next = b;
        next.tokens.push_back(order[static_cast<size_t>(k)]);
        next.logprob += lp[static_cast<size_t>(order[static_cast<size_t>(k)])];
        candidates.push_back(std::move(next));
      }
    }
    // Keep the best beam_size by length-normalized score.
    std::sort(candidates.begin(), candidates.end(), [](const Beam& a, const Beam& b) {
      return a.logprob / static_cast<double>(a.tokens.size()) >
             b.logprob / static_cast<double>(b.tokens.size());
    });
    candidates.resize(std::min<size_t>(candidates.size(), static_cast<size_t>(beam_size)));
    beams = std::move(candidates);
  }
  return beams.front().tokens;
}

double repeated_ngram_fraction(const std::vector<int>& tokens, int n) {
  if (n <= 0 || static_cast<int>(tokens.size()) < n) return 0.0;
  std::map<std::vector<int>, int> seen;
  int repeated = 0;
  int total = 0;
  for (size_t i = 0; i + static_cast<size_t>(n) <= tokens.size(); ++i) {
    std::vector<int> gram(tokens.begin() + static_cast<std::ptrdiff_t>(i),
                          tokens.begin() + static_cast<std::ptrdiff_t>(i) + n);
    if (seen[gram]++ > 0) ++repeated;
    ++total;
  }
  return total > 0 ? static_cast<double>(repeated) / total : 0.0;
}

double distinct_n(const std::vector<int>& tokens, int n) {
  if (n <= 0 || static_cast<int>(tokens.size()) < n) return 0.0;
  std::map<std::vector<int>, int> seen;
  int total = 0;
  for (size_t i = 0; i + static_cast<size_t>(n) <= tokens.size(); ++i) {
    std::vector<int> gram(tokens.begin() + static_cast<std::ptrdiff_t>(i),
                          tokens.begin() + static_cast<std::ptrdiff_t>(i) + n);
    ++seen[gram];
    ++total;
  }
  return total > 0 ? static_cast<double>(seen.size()) / total : 0.0;
}

double token_agreement(const std::vector<int>& a, const std::vector<int>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n == 0) return 1.0;
  size_t agree = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(n);
}

}  // namespace fp8q
