// Synthetic model zoo.
//
// The paper evaluates 75 pretrained architectures. Pretrained weights are
// not available here, so these generators build architecturally faithful
// networks whose weight/activation *distributions* are controlled to match
// the regimes the paper documents (Figure 3):
//   * NLP transformers: LayerNorm-amplified activation outlier channels
//     (gamma gain knob), normal weights -> range-bound activations;
//   * CV CNNs: well-behaved activations, optionally widely spread
//     per-channel weight ranges (EfficientNet-like depthwise) ->
//     precision-bound tensors;
//   * DLRM, U-Net, decoder LMs for the remaining task families.
// Quantization fidelity against the FP32 network is then a faithful probe
// of the formats' behaviour (see DESIGN.md section 1).
#pragma once

#include <cstdint>

#include "nn/graph.h"

namespace fp8q {

/// Convolutional classifier: [conv-(bn)-relu] blocks with optional
/// residual connections and depthwise stages, global-avg-pool + FC head.
/// Input [n, in_channels, image_hw, image_hw] -> logits [n, classes].
struct CnnSpec {
  int in_channels = 3;
  int image_hw = 16;
  int base_channels = 8;
  int blocks = 3;
  int classes = 10;
  bool batchnorm = true;
  bool residual = true;
  bool depthwise = false;       ///< EfficientNet/MobileNet-style stages
  float weight_spread = 0.0f;   ///< per-out-channel gain spread in octaves
  /// Per-channel BatchNorm gamma spread in octaves: large values emulate
  /// the activation channel imbalance that breaks per-tensor INT8 on
  /// EfficientNet/MobileNetV3-class models (paper Figure 4 discussion).
  float act_spread = 0.0f;
  std::uint64_t seed = 1;
};
[[nodiscard]] Graph make_cnn(const CnnSpec& spec);

/// Single-head transformer encoder classifier (BERT-ish).
/// Input [n, seq, dim] -> logits [n, classes].
struct TransformerSpec {
  int dim = 32;
  int seq = 16;
  int layers = 2;
  int ffn_mult = 4;
  int classes = 8;
  /// Gated FFN (SwiGLU-style). Each gate multiplies the FFN hidden state
  /// elementwise; products of Gaussians are heavy-tailed *within* each
  /// channel, producing the SmoothQuant-resistant activation outliers of
  /// real LLMs. 0 = plain FFN, 1 = single gate, 2 = double gate (extreme).
  int glu_gates = 0;
  /// Patch/feature projection: a Linear applied to the raw input before the
  /// first (LayerNorm-capped) block. Raw-input outliers reach this
  /// quantized operator unattenuated -- the range-bound tensor regime of
  /// paper Figure 3.
  bool input_proj = false;
  /// Fraction of LayerNorm channels whose gamma is amplified -- the
  /// LayerNorm outlier mechanism of LLM activations (paper section 1).
  float outlier_channel_fraction = 0.0f;
  float outlier_gamma_gain = 1.0f;
  std::uint64_t seed = 2;
};
[[nodiscard]] Graph make_transformer_encoder(const TransformerSpec& spec);

/// Decoder-only LM (Bloom-ish, single head, no causal mask needed because
/// generation feeds exactly the generated prefix).
/// Input: token ids [n, seq] -> logits [n, seq, vocab].
struct DecoderLmSpec {
  int vocab = 64;
  int dim = 32;
  int layers = 2;
  int ffn_mult = 4;
  int glu_gates = 0;   ///< see TransformerSpec::glu_gates
  /// Factorized-embedding projection (ALBERT-style): a Linear applied to
  /// the summed token+position embeddings before the first block. Outlier
  /// token embeddings reach this quantized operator before any LayerNorm.
  bool embed_proj = false;
  float outlier_channel_fraction = 0.0f;
  float outlier_gamma_gain = 1.0f;
  /// Fraction of vocabulary rows with amplified embeddings: produces
  /// *token-level* activation outliers that per-channel smoothing cannot
  /// migrate into weights (the residual outliers that break per-tensor
  /// INT8 on LLMs).
  float embedding_outlier_fraction = 0.0f;
  float embedding_outlier_gain = 1.0f;
  std::uint64_t seed = 3;
};
[[nodiscard]] Graph make_decoder_lm(const DecoderLmSpec& spec);

/// DLRM-style two-tower recommender: dense features through a bottom MLP,
/// one categorical feature through an embedding, multiplicative feature
/// interaction, top MLP, sigmoid CTR score.
/// Inputs: dense [n, dense_features], ids [n] -> score [n, 1].
struct DlrmSpec {
  int dense_features = 13;
  int vocab = 200;
  int emb_dim = 16;
  int hidden = 32;
  std::uint64_t seed = 4;
};
[[nodiscard]] Graph make_dlrm(const DlrmSpec& spec);

/// Small U-Net denoiser (Stable Diffusion stand-in): two down stages, a
/// bottleneck, two up stages with additive skip connections.
/// Input [n, in_channels, hw, hw] -> denoised [n, in_channels, hw, hw].
struct UnetSpec {
  int in_channels = 2;
  int hw = 16;
  int base_channels = 8;
  std::uint64_t seed = 5;
};
[[nodiscard]] Graph make_unet(const UnetSpec& spec);

/// Plain MLP regressor/classifier (speech- and tabular-model stand-in).
/// Input [n, in_dim] -> [n, out_dim].
struct MlpSpec {
  int in_dim = 32;
  int hidden = 64;
  int layers = 3;
  int out_dim = 8;
  bool layernorm = false;
  float outlier_channel_fraction = 0.0f;
  float outlier_gamma_gain = 1.0f;
  std::uint64_t seed = 6;
};
[[nodiscard]] Graph make_mlp_model(const MlpSpec& spec);

}  // namespace fp8q
