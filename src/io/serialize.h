// Model-weight serialization and study-result export.
//
// Weights are stored in a simple versioned binary container ("FP8Q"): a
// header, then one record per graph node that owns weights (node id +
// tensor count + per-tensor shape and raw float32 data). Loading validates
// that the target graph has the same weight structure, so a quantized
// checkpoint can be snapshotted after QuantizedGraph::prepare() and
// restored into a freshly built graph later.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/passrate.h"
#include "nn/graph.h"
#include "obs/report.h"

namespace fp8q {

/// Writes every weight tensor of the graph to `out`. Throws on I/O error.
void save_weights(Graph& graph, std::ostream& out);
void save_weights(Graph& graph, const std::string& path);

/// Reads weights previously written by save_weights into the graph. The
/// graph must have an identical weight structure (same nodes, same tensor
/// shapes); throws std::runtime_error otherwise.
void load_weights(Graph& graph, std::istream& in);
void load_weights(Graph& graph, const std::string& path);

/// Serializes accuracy records as CSV (header + one row per record).
void records_to_csv(const std::vector<AccuracyRecord>& records, std::ostream& out);
[[nodiscard]] std::string records_to_csv(const std::vector<AccuracyRecord>& records);

/// Parses records back from CSV produced by records_to_csv.
[[nodiscard]] std::vector<AccuracyRecord> records_from_csv(std::istream& in);

/// Parses a structured run report written by RunReport::write_json (the
/// FP8Q_REPORT output, docs/OBSERVABILITY.md). Uses a self-contained JSON
/// reader (no external dependencies); unknown keys are ignored so newer
/// writers stay readable. Throws std::runtime_error on malformed input or
/// an unsupported fp8q_report_version.
[[nodiscard]] RunReport report_from_json(std::istream& in);

}  // namespace fp8q
