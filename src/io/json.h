// A minimal, hardened JSON reader (no external dependencies).
//
// Grown out of the report reader in io/serialize.cpp and promoted to a
// public module so every tool that consumes the library's own JSON
// artifacts (run reports, BENCH_*.json snapshots, Chrome trace exports)
// parses through one audited path. Strictness is the point -- a truncated
// or corrupted artifact must fail loudly, never yield partial state:
//
//   - full escape handling, including UTF-16 surrogate pairs (a lone
//     surrogate is an error) and rejection of raw control characters
//     inside strings
//   - JSON-spec numbers (no leading zeros, no bare '.', no trailing 'e')
//   - a recursion depth limit (kMaxDepth) so adversarial nesting cannot
//     blow the stack
//   - trailing garbage after the document is an error
//
// Every failure throws std::runtime_error with the byte offset, and
// nothing is returned until the whole document parsed -- callers never
// observe partial state. Objects keep insertion order; duplicate keys
// resolve to the first occurrence (find()).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fp8q::json {

/// Maximum array/object nesting depth accepted by parse().
inline constexpr int kMaxDepth = 256;

/// One parsed JSON value (a tree; arrays/objects own their children).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }

  /// First value under `key` in an object, or nullptr (also for
  /// non-objects).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Number under `key` if present and numeric, else `fallback`.
  [[nodiscard]] double number_or(std::string_view key, double fallback = 0.0) const;

  /// String under `key` if present and a string, else "".
  [[nodiscard]] std::string string_or(std::string_view key) const;
};

/// Parses one complete JSON document. Throws std::runtime_error (with the
/// byte offset) on any malformed, truncated or over-deep input.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace fp8q::json
