#include "io/json.h"

#include <charconv>
#include <stdexcept>

namespace fp8q::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("fp8q json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = peek() == 't';
        if (!consume_literal(v.boolean ? "true" : "false")) fail("bad literal");
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return v;
    }
  }

  Value parse_array() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return v;
    }
  }

  /// One \uXXXX escape's code unit (the leading "\u" already consumed).
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: the low half must follow as another \uXXXX.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              fail("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("unpaired UTF-16 surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // Integer part: a single 0, or a nonzero digit followed by digits.
    if (pos_ >= text_.size()) fail("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    } else {
      fail("expected a value");
    }
    // Fraction: '.' requires at least one digit.
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("bad number: missing fraction digits");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    // Exponent: 'e'/'E', optional sign, at least one digit.
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("bad number: missing exponent digits");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    const std::string_view token = text_.substr(start, pos_ - start);
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), v.number);
    if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
}

std::string Value::string_or(std::string_view key) const {
  const Value* v = find(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->str : std::string();
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace fp8q::json
