#include "io/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/json.h"

namespace fp8q {

namespace {

constexpr char kMagic[4] = {'F', 'P', '8', 'Q'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_i64(std::ostream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("fp8q load: truncated stream");
  return v;
}

std::int64_t read_i64(std::istream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("fp8q load: truncated stream");
  return v;
}

/// CSV field escaping: quotes fields containing separators.
std::string escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

void save_weights(Graph& graph, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  write_u32(out, kVersion);

  // Count weight-owning nodes first.
  std::uint32_t owner_count = 0;
  for (Graph::NodeId id : graph.node_ids()) {
    auto& node = graph.node(id);
    if (node.op && !node.op->weights().empty()) ++owner_count;
  }
  write_u32(out, owner_count);

  for (Graph::NodeId id : graph.node_ids()) {
    auto& node = graph.node(id);
    if (!node.op) continue;
    const auto ws = node.op->weights();
    if (ws.empty()) continue;
    write_u32(out, static_cast<std::uint32_t>(id));
    write_u32(out, static_cast<std::uint32_t>(ws.size()));
    for (Tensor* w : ws) {
      write_u32(out, static_cast<std::uint32_t>(w->dim()));
      for (std::int64_t axis : w->shape()) write_i64(out, axis);
      out.write(reinterpret_cast<const char*>(w->data()),
                static_cast<std::streamsize>(w->numel() * sizeof(float)));
    }
  }
  if (!out) throw std::runtime_error("fp8q save: write failed");
}

void save_weights(Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("fp8q save: cannot open " + path);
  save_weights(graph, out);
}

void load_weights(Graph& graph, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("fp8q load: bad magic");
  }
  if (read_u32(in) != kVersion) throw std::runtime_error("fp8q load: unsupported version");

  const std::uint32_t owner_count = read_u32(in);
  for (std::uint32_t rec = 0; rec < owner_count; ++rec) {
    const auto id = static_cast<Graph::NodeId>(read_u32(in));
    if (id < 0 || id >= graph.node_count() || !graph.node(id).op) {
      throw std::runtime_error("fp8q load: node id mismatch");
    }
    auto ws = graph.node(id).op->weights();
    const std::uint32_t tensor_count = read_u32(in);
    if (tensor_count != ws.size()) {
      throw std::runtime_error("fp8q load: weight count mismatch at node " +
                               std::to_string(id));
    }
    for (Tensor* w : ws) {
      const std::uint32_t rank = read_u32(in);
      Shape shape(rank);
      for (auto& axis : shape) axis = read_i64(in);
      if (shape != w->shape()) {
        throw std::runtime_error("fp8q load: shape mismatch at node " + std::to_string(id));
      }
      in.read(reinterpret_cast<char*>(w->data()),
              static_cast<std::streamsize>(w->numel() * sizeof(float)));
      if (!in) throw std::runtime_error("fp8q load: truncated tensor data");
    }
  }
}

void load_weights(Graph& graph, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fp8q load: cannot open " + path);
  load_weights(graph, in);
}

void records_to_csv(const std::vector<AccuracyRecord>& records, std::ostream& out) {
  out << "workload,domain,config,fp32_accuracy,quant_accuracy,model_size_mb,"
         "relative_loss,passes\n";
  for (const auto& r : records) {
    out << escape(r.workload) << ',' << escape(r.domain) << ',' << escape(r.config) << ','
        << r.fp32_accuracy << ',' << r.quant_accuracy << ',' << r.model_size_mb << ','
        << r.relative_loss() << ',' << (r.passes() ? 1 : 0) << '\n';
  }
}

std::string records_to_csv(const std::vector<AccuracyRecord>& records) {
  std::ostringstream os;
  records_to_csv(records, os);
  return os.str();
}

namespace {

using json::Value;

CounterSnapshot parse_counters(const Value* v) {
  CounterSnapshot snap;
  if (v == nullptr || !v->is_object()) return snap;
  for (int f = 0; f < kObsFormatCount; ++f) {
    const Value* fmt = v->find(to_string(static_cast<ObsFormat>(f)));
    if (fmt == nullptr || !fmt->is_object()) continue;
    for (int e = 0; e < kObsEventCount; ++e) {
      snap.counts[f][e] = static_cast<std::uint64_t>(
          fmt->number_or(to_string(static_cast<ObsEvent>(e))));
    }
  }
  return snap;
}

/// Rebuilds a histogram from the sparse "buckets" list (the exact form);
/// the headline p50/p95/p99 fields are derived and recomputed on demand.
HistogramSnapshot parse_histogram(const Value& v) {
  HistogramSnapshot snap;
  if (const Value* buckets = v.find("buckets");
      buckets != nullptr && buckets->is_array()) {
    for (const Value& pair : buckets->array) {
      if (!pair.is_array() || pair.array.size() != 2) continue;
      const auto idx = static_cast<int>(pair.array[0].number);
      if (idx < 0 || idx >= kHistBucketCount) continue;
      const auto count = static_cast<std::uint64_t>(pair.array[1].number);
      snap.counts[idx] += count;
      snap.total += count;
    }
  }
  snap.min_value = v.number_or("min");
  snap.max_value = v.number_or("max");
  return snap;
}

}  // namespace

RunReport report_from_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const Value root = json::parse(text);
  if (!root.is_object()) {
    throw std::runtime_error("fp8q report: document is not an object");
  }
  const Value* version = root.find("fp8q_report_version");
  if (version == nullptr || version->kind != Value::Kind::kNumber) {
    throw std::runtime_error("fp8q report: missing fp8q_report_version");
  }
  // Older reports (v1: no "weight_cache"; v2: no "memory"/"histograms")
  // parse fine with the missing fields defaulted, so accept every version
  // up to the current. Newer reports are rejected outright: fields this
  // reader does not know about would be silently dropped, which matters
  // when a resident fp8qd daemon and the fp8q_report CLI are built at
  // different versions.
  const int doc_version = static_cast<int>(version->number);
  if (doc_version > kReportVersion) {
    throw std::runtime_error(
        "fp8q report: version " + std::to_string(doc_version) +
        " is newer than this reader supports (max " + std::to_string(kReportVersion) +
        "); it was written by a newer fp8q build -- rebuild this tool or "
        "re-capture the report");
  }
  if (doc_version < 1) {
    throw std::runtime_error("fp8q report: unsupported version " +
                             std::to_string(doc_version));
  }

  RunReport report;
  report.tool = root.string_or("tool");
  report.num_threads = static_cast<int>(root.number_or("num_threads"));
  report.isa = root.string_or("isa");
  report.counters = parse_counters(root.find("counters"));
  if (const Value* wc = root.find("weight_cache"); wc != nullptr && wc->is_object()) {
    for (int e = 0; e < kObsCacheEventCount; ++e) {
      report.weight_cache.counts[e] = static_cast<std::uint64_t>(
          wc->number_or(to_string(static_cast<ObsCacheEvent>(e))));
    }
  }
  if (const Value* kp = root.find("kernel_paths"); kp != nullptr && kp->is_object()) {
    for (int e = 0; e < kObsKernelPathCount; ++e) {
      report.kernel_paths.counts[e] = static_cast<std::uint64_t>(
          kp->number_or(to_string(static_cast<ObsKernelPath>(e))));
    }
  }
  if (const Value* mem = root.find("memory"); mem != nullptr && mem->is_object()) {
    report.memory.peak_rss_bytes =
        static_cast<std::uint64_t>(mem->number_or("peak_rss_bytes"));
    report.memory.alloc_bytes = static_cast<std::uint64_t>(mem->number_or("alloc_bytes"));
    report.memory.allocs = static_cast<std::uint64_t>(mem->number_or("allocs"));
  }
  if (const Value* hists = root.find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const auto& [name, h] : hists->object) {
      if (!h.is_object()) continue;
      report.histograms.push_back({name, parse_histogram(h)});
    }
  }
  report.spans_dropped = static_cast<std::uint64_t>(root.number_or("spans_dropped"));

  if (const Value* stages = root.find("stages"); stages != nullptr && stages->is_array()) {
    for (const Value& s : stages->array) {
      if (!s.is_object()) continue;
      StageReport stage;
      stage.name = s.string_or("name");
      stage.wall_ms = s.number_or("wall_ms");
      stage.counters = parse_counters(s.find("counters"));
      stage.alloc_bytes = static_cast<std::uint64_t>(s.number_or("alloc_bytes"));
      stage.allocs = static_cast<std::uint64_t>(s.number_or("allocs"));
      report.stages.push_back(std::move(stage));
    }
  }

  if (const Value* records = root.find("records");
      records != nullptr && records->is_array()) {
    for (const Value& rec : records->array) {
      if (!rec.is_object()) continue;
      AccuracyRecord r;
      r.workload = rec.string_or("workload");
      r.domain = rec.string_or("domain");
      r.config = rec.string_or("config");
      r.fp32_accuracy = rec.number_or("fp32_accuracy");
      r.quant_accuracy = rec.number_or("quant_accuracy");
      r.model_size_mb = rec.number_or("model_size_mb");
      // relative_loss / passes are derived quantities; recomputed on read.
      report.records.push_back(std::move(r));
    }
  }

  if (const Value* spans = root.find("spans"); spans != nullptr && spans->is_array()) {
    for (const Value& s : spans->array) {
      if (!s.is_object()) continue;
      SpanRecord span;
      span.id = static_cast<std::int64_t>(s.number_or("id", -1.0));
      span.parent = static_cast<std::int64_t>(s.number_or("parent", -1.0));
      span.thread_id = static_cast<std::uint32_t>(s.number_or("thread"));
      span.name = s.string_or("name");
      span.start_ns = static_cast<std::uint64_t>(s.number_or("start_ns"));
      span.duration_ns = static_cast<std::uint64_t>(s.number_or("duration_ns"));
      report.spans.push_back(std::move(span));
    }
  }
  return report;
}

std::vector<AccuracyRecord> records_from_csv(std::istream& in) {
  std::vector<AccuracyRecord> records;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const auto fields = split_csv_line(line);
    if (fields.size() < 6) throw std::runtime_error("fp8q csv: malformed row: " + line);
    AccuracyRecord r;
    r.workload = fields[0];
    r.domain = fields[1];
    r.config = fields[2];
    r.fp32_accuracy = std::stod(fields[3]);
    r.quant_accuracy = std::stod(fields[4]);
    r.model_size_mb = std::stod(fields[5]);
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace fp8q
