#include "io/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fp8q {

namespace {

constexpr char kMagic[4] = {'F', 'P', '8', 'Q'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_i64(std::ostream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("fp8q load: truncated stream");
  return v;
}

std::int64_t read_i64(std::istream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("fp8q load: truncated stream");
  return v;
}

/// CSV field escaping: quotes fields containing separators.
std::string escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

void save_weights(Graph& graph, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  write_u32(out, kVersion);

  // Count weight-owning nodes first.
  std::uint32_t owner_count = 0;
  for (Graph::NodeId id : graph.node_ids()) {
    auto& node = graph.node(id);
    if (node.op && !node.op->weights().empty()) ++owner_count;
  }
  write_u32(out, owner_count);

  for (Graph::NodeId id : graph.node_ids()) {
    auto& node = graph.node(id);
    if (!node.op) continue;
    const auto ws = node.op->weights();
    if (ws.empty()) continue;
    write_u32(out, static_cast<std::uint32_t>(id));
    write_u32(out, static_cast<std::uint32_t>(ws.size()));
    for (Tensor* w : ws) {
      write_u32(out, static_cast<std::uint32_t>(w->dim()));
      for (std::int64_t axis : w->shape()) write_i64(out, axis);
      out.write(reinterpret_cast<const char*>(w->data()),
                static_cast<std::streamsize>(w->numel() * sizeof(float)));
    }
  }
  if (!out) throw std::runtime_error("fp8q save: write failed");
}

void save_weights(Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("fp8q save: cannot open " + path);
  save_weights(graph, out);
}

void load_weights(Graph& graph, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("fp8q load: bad magic");
  }
  if (read_u32(in) != kVersion) throw std::runtime_error("fp8q load: unsupported version");

  const std::uint32_t owner_count = read_u32(in);
  for (std::uint32_t rec = 0; rec < owner_count; ++rec) {
    const auto id = static_cast<Graph::NodeId>(read_u32(in));
    if (id < 0 || id >= graph.node_count() || !graph.node(id).op) {
      throw std::runtime_error("fp8q load: node id mismatch");
    }
    auto ws = graph.node(id).op->weights();
    const std::uint32_t tensor_count = read_u32(in);
    if (tensor_count != ws.size()) {
      throw std::runtime_error("fp8q load: weight count mismatch at node " +
                               std::to_string(id));
    }
    for (Tensor* w : ws) {
      const std::uint32_t rank = read_u32(in);
      Shape shape(rank);
      for (auto& axis : shape) axis = read_i64(in);
      if (shape != w->shape()) {
        throw std::runtime_error("fp8q load: shape mismatch at node " + std::to_string(id));
      }
      in.read(reinterpret_cast<char*>(w->data()),
              static_cast<std::streamsize>(w->numel() * sizeof(float)));
      if (!in) throw std::runtime_error("fp8q load: truncated tensor data");
    }
  }
}

void load_weights(Graph& graph, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fp8q load: cannot open " + path);
  load_weights(graph, in);
}

void records_to_csv(const std::vector<AccuracyRecord>& records, std::ostream& out) {
  out << "workload,domain,config,fp32_accuracy,quant_accuracy,model_size_mb,"
         "relative_loss,passes\n";
  for (const auto& r : records) {
    out << escape(r.workload) << ',' << escape(r.domain) << ',' << escape(r.config) << ','
        << r.fp32_accuracy << ',' << r.quant_accuracy << ',' << r.model_size_mb << ','
        << r.relative_loss() << ',' << (r.passes() ? 1 : 0) << '\n';
  }
}

std::string records_to_csv(const std::vector<AccuracyRecord>& records) {
  std::ostringstream os;
  records_to_csv(records, os);
  return os.str();
}

std::vector<AccuracyRecord> records_from_csv(std::istream& in) {
  std::vector<AccuracyRecord> records;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const auto fields = split_csv_line(line);
    if (fields.size() < 6) throw std::runtime_error("fp8q csv: malformed row: " + line);
    AccuracyRecord r;
    r.workload = fields[0];
    r.domain = fields[1];
    r.config = fields[2];
    r.fp32_accuracy = std::stod(fields[3]);
    r.quant_accuracy = std::stod(fields[4]);
    r.model_size_mb = std::stod(fields[5]);
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace fp8q
