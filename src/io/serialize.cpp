#include "io/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fp8q {

namespace {

constexpr char kMagic[4] = {'F', 'P', '8', 'Q'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_i64(std::ostream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("fp8q load: truncated stream");
  return v;
}

std::int64_t read_i64(std::istream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("fp8q load: truncated stream");
  return v;
}

/// CSV field escaping: quotes fields containing separators.
std::string escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

void save_weights(Graph& graph, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  write_u32(out, kVersion);

  // Count weight-owning nodes first.
  std::uint32_t owner_count = 0;
  for (Graph::NodeId id : graph.node_ids()) {
    auto& node = graph.node(id);
    if (node.op && !node.op->weights().empty()) ++owner_count;
  }
  write_u32(out, owner_count);

  for (Graph::NodeId id : graph.node_ids()) {
    auto& node = graph.node(id);
    if (!node.op) continue;
    const auto ws = node.op->weights();
    if (ws.empty()) continue;
    write_u32(out, static_cast<std::uint32_t>(id));
    write_u32(out, static_cast<std::uint32_t>(ws.size()));
    for (Tensor* w : ws) {
      write_u32(out, static_cast<std::uint32_t>(w->dim()));
      for (std::int64_t axis : w->shape()) write_i64(out, axis);
      out.write(reinterpret_cast<const char*>(w->data()),
                static_cast<std::streamsize>(w->numel() * sizeof(float)));
    }
  }
  if (!out) throw std::runtime_error("fp8q save: write failed");
}

void save_weights(Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("fp8q save: cannot open " + path);
  save_weights(graph, out);
}

void load_weights(Graph& graph, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("fp8q load: bad magic");
  }
  if (read_u32(in) != kVersion) throw std::runtime_error("fp8q load: unsupported version");

  const std::uint32_t owner_count = read_u32(in);
  for (std::uint32_t rec = 0; rec < owner_count; ++rec) {
    const auto id = static_cast<Graph::NodeId>(read_u32(in));
    if (id < 0 || id >= graph.node_count() || !graph.node(id).op) {
      throw std::runtime_error("fp8q load: node id mismatch");
    }
    auto ws = graph.node(id).op->weights();
    const std::uint32_t tensor_count = read_u32(in);
    if (tensor_count != ws.size()) {
      throw std::runtime_error("fp8q load: weight count mismatch at node " +
                               std::to_string(id));
    }
    for (Tensor* w : ws) {
      const std::uint32_t rank = read_u32(in);
      Shape shape(rank);
      for (auto& axis : shape) axis = read_i64(in);
      if (shape != w->shape()) {
        throw std::runtime_error("fp8q load: shape mismatch at node " + std::to_string(id));
      }
      in.read(reinterpret_cast<char*>(w->data()),
              static_cast<std::streamsize>(w->numel() * sizeof(float)));
      if (!in) throw std::runtime_error("fp8q load: truncated tensor data");
    }
  }
}

void load_weights(Graph& graph, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fp8q load: cannot open " + path);
  load_weights(graph, in);
}

void records_to_csv(const std::vector<AccuracyRecord>& records, std::ostream& out) {
  out << "workload,domain,config,fp32_accuracy,quant_accuracy,model_size_mb,"
         "relative_loss,passes\n";
  for (const auto& r : records) {
    out << escape(r.workload) << ',' << escape(r.domain) << ',' << escape(r.config) << ','
        << r.fp32_accuracy << ',' << r.quant_accuracy << ',' << r.model_size_mb << ','
        << r.relative_loss() << ',' << (r.passes() ? 1 : 0) << '\n';
  }
}

std::string records_to_csv(const std::vector<AccuracyRecord>& records) {
  std::ostringstream os;
  records_to_csv(records, os);
  return os.str();
}

namespace {

/// Minimal JSON document model for report_from_json. Objects keep
/// insertion order; duplicate keys resolve to the first occurrence.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Recursive-descent parser over the full JSON grammar (sufficient for the
/// report schema; \uXXXX escapes decode to UTF-8).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("fp8q json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = peek() == 't';
        if (!consume_literal(v.boolean ? "true" : "false")) fail("bad literal");
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not emitted by the
          // writer, which escapes only control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

double get_number(const JsonValue& obj, std::string_view key, double fallback = 0.0) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number : fallback;
}

std::string get_string(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kString) ? v->str : std::string();
}

CounterSnapshot parse_counters(const JsonValue* v) {
  CounterSnapshot snap;
  if (v == nullptr || v->kind != JsonValue::Kind::kObject) return snap;
  for (int f = 0; f < kObsFormatCount; ++f) {
    const JsonValue* fmt = v->find(to_string(static_cast<ObsFormat>(f)));
    if (fmt == nullptr || fmt->kind != JsonValue::Kind::kObject) continue;
    for (int e = 0; e < kObsEventCount; ++e) {
      snap.counts[f][e] = static_cast<std::uint64_t>(
          get_number(*fmt, to_string(static_cast<ObsEvent>(e))));
    }
  }
  return snap;
}

}  // namespace

RunReport report_from_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const JsonValue root = JsonParser(text).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("fp8q report: document is not an object");
  }
  const JsonValue* version = root.find("fp8q_report_version");
  if (version == nullptr || version->kind != JsonValue::Kind::kNumber) {
    throw std::runtime_error("fp8q report: missing fp8q_report_version");
  }
  // Older reports (v1: no "weight_cache" block) parse fine with the
  // missing fields defaulted, so accept every version up to the current.
  if (static_cast<int>(version->number) < 1 ||
      static_cast<int>(version->number) > kReportVersion) {
    throw std::runtime_error("fp8q report: unsupported version " +
                             std::to_string(static_cast<int>(version->number)));
  }

  RunReport report;
  report.tool = get_string(root, "tool");
  report.num_threads = static_cast<int>(get_number(root, "num_threads"));
  report.counters = parse_counters(root.find("counters"));
  if (const JsonValue* wc = root.find("weight_cache");
      wc != nullptr && wc->kind == JsonValue::Kind::kObject) {
    for (int e = 0; e < kObsCacheEventCount; ++e) {
      report.weight_cache.counts[e] = static_cast<std::uint64_t>(
          get_number(*wc, to_string(static_cast<ObsCacheEvent>(e))));
    }
  }
  report.spans_dropped = static_cast<std::uint64_t>(get_number(root, "spans_dropped"));

  if (const JsonValue* stages = root.find("stages");
      stages != nullptr && stages->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& s : stages->array) {
      if (s.kind != JsonValue::Kind::kObject) continue;
      StageReport stage;
      stage.name = get_string(s, "name");
      stage.wall_ms = get_number(s, "wall_ms");
      stage.counters = parse_counters(s.find("counters"));
      report.stages.push_back(std::move(stage));
    }
  }

  if (const JsonValue* records = root.find("records");
      records != nullptr && records->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& rec : records->array) {
      if (rec.kind != JsonValue::Kind::kObject) continue;
      AccuracyRecord r;
      r.workload = get_string(rec, "workload");
      r.domain = get_string(rec, "domain");
      r.config = get_string(rec, "config");
      r.fp32_accuracy = get_number(rec, "fp32_accuracy");
      r.quant_accuracy = get_number(rec, "quant_accuracy");
      r.model_size_mb = get_number(rec, "model_size_mb");
      // relative_loss / passes are derived quantities; recomputed on read.
      report.records.push_back(std::move(r));
    }
  }

  if (const JsonValue* spans = root.find("spans");
      spans != nullptr && spans->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& s : spans->array) {
      if (s.kind != JsonValue::Kind::kObject) continue;
      SpanRecord span;
      span.id = static_cast<std::int64_t>(get_number(s, "id", -1.0));
      span.parent = static_cast<std::int64_t>(get_number(s, "parent", -1.0));
      span.thread_id = static_cast<std::uint32_t>(get_number(s, "thread"));
      span.name = get_string(s, "name");
      span.start_ns = static_cast<std::uint64_t>(get_number(s, "start_ns"));
      span.duration_ns = static_cast<std::uint64_t>(get_number(s, "duration_ns"));
      report.spans.push_back(std::move(span));
    }
  }
  return report;
}

std::vector<AccuracyRecord> records_from_csv(std::istream& in) {
  std::vector<AccuracyRecord> records;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const auto fields = split_csv_line(line);
    if (fields.size() < 6) throw std::runtime_error("fp8q csv: malformed row: " + line);
    AccuracyRecord r;
    r.workload = fields[0];
    r.domain = fields[1];
    r.config = fields[2];
    r.fp32_accuracy = std::stod(fields[3]);
    r.quant_accuracy = std::stod(fields[4]);
    r.model_size_mb = std::stod(fields[5]);
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace fp8q
