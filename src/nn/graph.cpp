#include "nn/graph.h"

#include <stdexcept>

namespace fp8q {

Graph::NodeId Graph::add_input(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), nullptr, {}, OpKind::kInput});
  input_ids_.push_back(id);
  output_ = id;
  return id;
}

Graph::NodeId Graph::add(std::string name, OpPtr op, std::vector<NodeId> inputs) {
  if (!op) throw std::invalid_argument("Graph::add: null op");
  const auto id = static_cast<NodeId>(nodes_.size());
  if (static_cast<int>(inputs.size()) != op->arity()) {
    throw std::invalid_argument("Graph::add: arity mismatch for " + name);
  }
  for (NodeId in : inputs) {
    if (in < 0 || in >= id) {
      throw std::invalid_argument("Graph::add: input id out of order for " + name);
    }
  }
  const OpKind kind = op->kind();
  nodes_.push_back(Node{std::move(name), std::move(op), std::move(inputs), kind});
  output_ = id;
  return id;
}

void Graph::set_output(NodeId id) {
  if (id < 0 || id >= node_count()) throw std::invalid_argument("Graph::set_output: bad id");
  output_ = id;
}

void Graph::clear_taps() {
  input_tap_ = nullptr;
  output_tap_ = nullptr;
}

Graph Graph::clone() const {
  Graph copy;
  copy.nodes_.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    copy.nodes_.push_back(
        Node{node.name, node.op ? node.op->clone() : nullptr, node.inputs, node.kind});
  }
  copy.input_ids_ = input_ids_;
  copy.output_ = output_;
  return copy;
}

Tensor Graph::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != input_ids_.size()) {
    throw std::invalid_argument("Graph::forward: wrong number of inputs");
  }
  if (output_ < 0) throw std::logic_error("Graph::forward: empty graph");

  std::vector<Tensor> values(nodes_.size());
  for (size_t i = 0; i < input_ids_.size(); ++i) {
    values[static_cast<size_t>(input_ids_[i])] = inputs[i];
    if (output_tap_) output_tap_(input_ids_[i], values[static_cast<size_t>(input_ids_[i])]);
  }

  std::vector<Tensor> modified;        // storage for tap-replaced inputs
  std::vector<const Tensor*> effective;  // pointers into values/modified
  for (size_t n = 0; n < nodes_.size(); ++n) {
    Node& node = nodes_[n];
    if (!node.op) continue;  // graph input
    const auto id = static_cast<NodeId>(n);

    modified.clear();
    modified.reserve(node.inputs.size());
    effective.clear();
    for (size_t s = 0; s < node.inputs.size(); ++s) {
      const Tensor& src = values[static_cast<size_t>(node.inputs[s])];
      if (input_tap_) {
        if (auto replaced = input_tap_(id, static_cast<int>(s), src)) {
          modified.push_back(std::move(*replaced));
          effective.push_back(&modified.back());
          continue;
        }
      }
      effective.push_back(&src);
    }

    // Materialize the op's input span. Ops take contiguous Tensor spans, so
    // gather (cheap: at most 2 inputs, and untouched ones share no copy --
    // Tensor copies do copy data, so only copy when a tap replaced).
    if (effective.size() == 1) {
      values[n] = node.op->forward({effective[0], 1});
    } else {
      std::vector<Tensor> gathered;
      gathered.reserve(effective.size());
      for (const Tensor* t : effective) gathered.push_back(*t);
      values[n] = node.op->forward(gathered);
    }
    if (output_tap_) output_tap_(id, values[n]);
  }
  return values[static_cast<size_t>(output_)];
}

std::vector<Graph::NodeId> Graph::node_ids() const {
  std::vector<NodeId> ids(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) ids[i] = static_cast<NodeId>(i);
  return ids;
}

std::vector<Graph::NodeId> Graph::quantizable_nodes() const {
  std::vector<NodeId> ids;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (is_quantizable_op(nodes_[i].kind)) ids.push_back(static_cast<NodeId>(i));
  }
  return ids;
}

Graph::NodeId Graph::first_compute_node() const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (is_compute_op(nodes_[i].kind)) return static_cast<NodeId>(i);
  }
  return -1;
}

Graph::NodeId Graph::last_compute_node() const {
  for (size_t i = nodes_.size(); i-- > 0;) {
    if (is_compute_op(nodes_[i].kind)) return static_cast<NodeId>(i);
  }
  return -1;
}

std::int64_t Graph::param_count() const {
  std::int64_t n = 0;
  for (const auto& node : nodes_) {
    if (node.op) n += node.op->param_count();
  }
  return n;
}

}  // namespace fp8q
