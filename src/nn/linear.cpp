#include "nn/linear.h"

#include <stdexcept>

namespace fp8q {

LinearOp::LinearOp(Tensor weight, Tensor bias)
    : weight_(std::move(weight)), bias_(std::move(bias)) {
  if (weight_.dim() != 2) throw std::invalid_argument("LinearOp: weight must be [out, in]");
  if (!bias_.empty() && (bias_.dim() != 1 || bias_.size(0) != weight_.size(0))) {
    throw std::invalid_argument("LinearOp: bias must be [out]");
  }
}

std::vector<Tensor*> LinearOp::weights() {
  std::vector<Tensor*> ws = {&weight_};
  if (!bias_.empty()) ws.push_back(&bias_);
  return ws;
}

Tensor LinearOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("LinearOp: expects 1 input");
  const Tensor& x = inputs[0];
  const std::int64_t in = in_features();
  const std::int64_t out = out_features();
  if (x.dim() < 1 || x.size(-1) != in) {
    throw std::invalid_argument("LinearOp: input feature dim mismatch");
  }
  const std::int64_t rows = x.numel() / in;

  Shape out_shape = x.shape();
  out_shape.back() = out;
  Tensor y(std::move(out_shape));

  const float* xd = x.data();
  const float* wd = weight_.data();
  const float* bd = bias_.empty() ? nullptr : bias_.data();
  float* yd = y.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = xd + r * in;
    float* yr = yd + r * out;
    for (std::int64_t o = 0; o < out; ++o) {
      const float* wr = wd + o * in;
      float acc = bd ? bd[o] : 0.0f;
      for (std::int64_t i = 0; i < in; ++i) acc += xr[i] * wr[i];
      yr[o] = acc;
    }
  }
  return y;
}

}  // namespace fp8q
