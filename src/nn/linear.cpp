#include "nn/linear.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace fp8q {

LinearOp::LinearOp(Tensor weight, Tensor bias)
    : weight_(std::move(weight)), bias_(std::move(bias)) {
  if (weight_.dim() != 2) throw std::invalid_argument("LinearOp: weight must be [out, in]");
  if (!bias_.empty() && (bias_.dim() != 1 || bias_.size(0) != weight_.size(0))) {
    throw std::invalid_argument("LinearOp: bias must be [out]");
  }
}

std::vector<Tensor*> LinearOp::weights() {
  std::vector<Tensor*> ws = {&weight_};
  if (!bias_.empty()) ws.push_back(&bias_);
  return ws;
}

void LinearOp::set_packed_weight(std::shared_ptr<const PackedWeightMatrix> packed) {
  if (packed && (packed->k != in_features() || packed->n != out_features())) {
    throw std::invalid_argument("LinearOp: packed weight dims mismatch");
  }
  packed_ = std::move(packed);
}

namespace {

// Computes `rows` consecutive input rows: y[r*out + o] = bias[o] +
// dot(x[r*in ..], w[o*in ..]), every accumulation strictly ascending in
// the feature index so results match the naive serial loop bit for bit.
// Four rows share one pass over each weight row (the large operand): four
// independent accumulators for ILP, 4x less weight traffic, and no change
// to any element's own summation order.
void linear_row_block(const float* x, const float* w, const float* bias, float* y,
                      std::int64_t rows, std::int64_t out, std::int64_t in) {
  std::int64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* x0 = x + (r + 0) * in;
    const float* x1 = x + (r + 1) * in;
    const float* x2 = x + (r + 2) * in;
    const float* x3 = x + (r + 3) * in;
    for (std::int64_t o = 0; o < out; ++o) {
      const float* wr = w + o * in;
      const float bias_v = bias ? bias[o] : 0.0f;
      float acc0 = bias_v;
      float acc1 = bias_v;
      float acc2 = bias_v;
      float acc3 = bias_v;
      for (std::int64_t i = 0; i < in; ++i) {
        const float wv = wr[i];
        acc0 += x0[i] * wv;
        acc1 += x1[i] * wv;
        acc2 += x2[i] * wv;
        acc3 += x3[i] * wv;
      }
      y[(r + 0) * out + o] = acc0;
      y[(r + 1) * out + o] = acc1;
      y[(r + 2) * out + o] = acc2;
      y[(r + 3) * out + o] = acc3;
    }
  }
  for (; r < rows; ++r) {
    const float* xr = x + r * in;
    float* yr = y + r * out;
    for (std::int64_t o = 0; o < out; ++o) {
      const float* wr = w + o * in;
      float acc = bias ? bias[o] : 0.0f;
      for (std::int64_t i = 0; i < in; ++i) acc += xr[i] * wr[i];
      yr[o] = acc;
    }
  }
}

}  // namespace

Tensor LinearOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("LinearOp: expects 1 input");
  const Tensor& x = inputs[0];
  const std::int64_t in = in_features();
  const std::int64_t out = out_features();
  if (x.dim() < 1 || x.size(-1) != in) {
    throw std::invalid_argument("LinearOp: input feature dim mismatch");
  }
  const std::int64_t rows = x.numel() / in;

  Shape out_shape = x.shape();
  out_shape.back() = out;
  Tensor y(std::move(out_shape));

  const float* xd = x.data();
  const float* bd = bias_.empty() ? nullptr : bias_.data();
  float* yd = y.data();

  if (packed_) {
    // Packed path: stream the 8-bit codes through the dispatched GEMM
    // tier. Bit-identical to the FP32 path below on the fake-quantized
    // weight (docs/KERNELS.md), so this is purely a bandwidth win.
    kernel_counter_add(ObsKernelPath::kLinearPacked, 1);
    TraceSpan span("linear_packed");
    const bool hists = histograms_enabled();
    const std::uint64_t start_ns = hists ? obs_now_ns() : 0;
    packed_gemm_forward(xd, *packed_, bd, yd, rows);
    if (hists) {
      hist_record_named("kernel:linear_packed",
                        static_cast<double>(obs_now_ns() - start_ns));
    }
    return y;
  }

  kernel_counter_add(ObsKernelPath::kLinearFp32, 1);
  const float* wd = weight_.data();
  // Parallel over input rows: each row owns a disjoint slice of y with
  // row-local accumulators, so the result is bit-identical to the serial
  // loop at any thread count. Grain targets ~kParallelGrainFlops
  // multiply-adds per chunk (overflow-safe for huge out*in).
  const std::int64_t cost_per_row = std::max<std::int64_t>(
      std::int64_t{1}, capped_cost(out, in, kParallelGrainFlops));
  const std::int64_t grain =
      std::max<std::int64_t>(std::int64_t{1}, kParallelGrainFlops / cost_per_row);
  parallel_for(0, rows, grain, [&](std::int64_t lo, std::int64_t hi) {
    linear_row_block(xd + lo * in, wd, bd, yd + lo * out, hi - lo, out, in);
  });
  return y;
}

}  // namespace fp8q
