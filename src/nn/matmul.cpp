#include "nn/matmul.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"
#include "obs/counters.h"

namespace fp8q {
namespace {

// Computes `rows` consecutive output rows of one batch against a B operand
// packed as [n, k]: y[i*n + j] = dot(a[i*k ..], bpack[j*k ..]) with the
// k-summation strictly ascending, so every output element matches the
// naive serial loop bit for bit. Rows are processed four at a time sharing
// a single pass over each packed B row -- four independent accumulators
// give the core ILP and cut B-operand traffic 4x, and the grouping never
// changes any individual element's own summation order.
void matmul_row_block(const float* a, const float* bpack, float* y, std::int64_t rows,
                      std::int64_t n, std::int64_t k) {
  std::int64_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* br = bpack + j * k;
      float acc0 = 0.0f;
      float acc1 = 0.0f;
      float acc2 = 0.0f;
      float acc3 = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float bv = br[kk];
        acc0 += a0[kk] * bv;
        acc1 += a1[kk] * bv;
        acc2 += a2[kk] * bv;
        acc3 += a3[kk] * bv;
      }
      y[(i + 0) * n + j] = acc0;
      y[(i + 1) * n + j] = acc1;
      y[(i + 2) * n + j] = acc2;
      y[(i + 3) * n + j] = acc3;
    }
  }
  for (; i < rows; ++i) {
    const float* ar = a + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* br = bpack + j * k;
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += ar[kk] * br[kk];
      y[i * n + j] = acc;
    }
  }
}

}  // namespace

MatMulOp::MatMulOp(bool batched, bool transpose_b)
    : batched_(batched), transpose_b_(transpose_b) {}

Tensor MatMulOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 2) throw std::invalid_argument("MatMulOp: expects 2 inputs");
  kernel_counter_add(ObsKernelPath::kMatmulFp32, 1);
  const Tensor& a = inputs[0];
  const Tensor& b = inputs[1];
  if (a.dim() < 2 || b.dim() < 2 || a.dim() != b.dim()) {
    throw std::invalid_argument("MatMulOp: operands must share rank >= 2");
  }
  for (int i = 0; i < a.dim() - 2; ++i) {
    if (a.size(i) != b.size(i)) throw std::invalid_argument("MatMulOp: batch dims differ");
  }

  const std::int64_t m = a.size(-2);
  const std::int64_t k = a.size(-1);
  const std::int64_t bk = transpose_b_ ? b.size(-1) : b.size(-2);
  const std::int64_t n = transpose_b_ ? b.size(-2) : b.size(-1);
  if (bk != k) throw std::invalid_argument("MatMulOp: inner dims differ");

  std::int64_t batch = 1;
  for (int i = 0; i < a.dim() - 2; ++i) batch *= a.size(i);

  Shape out_shape = a.shape();
  out_shape[out_shape.size() - 2] = m;
  out_shape[out_shape.size() - 1] = n;
  Tensor y(std::move(out_shape));

  const float* ad = a.data();
  const float* bd = b.data();
  float* yd = y.data();
  const std::int64_t a_stride = m * k;
  const std::int64_t b_stride = transpose_b_ ? n * k : k * n;
  const std::int64_t y_stride = m * n;

  // The inner kernel wants B as [n, k] so both operands stream
  // contiguously. transpose_b_ already has that layout; otherwise B is
  // transposed ONCE per call (not once per row as the old per-element
  // strided loads effectively did). Packed size is exactly b.numel().
  const float* bpack = bd;
  std::int64_t bp_stride = b_stride;
  std::vector<float> packed;
  if (!transpose_b_) {
    packed.resize(static_cast<std::size_t>(b.numel()));
    float* pd = packed.data();
    const std::int64_t pack_grain = std::max<std::int64_t>(
        std::int64_t{1},
        kParallelGrainBytes / static_cast<std::int64_t>(sizeof(float)) /
            std::max<std::int64_t>(std::int64_t{1}, k));
    parallel_for(0, batch * n, pack_grain, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        const std::int64_t bi = t / n;
        const std::int64_t j = t - bi * n;
        const float* src = bd + bi * b_stride + j;
        float* dst = pd + t * k;
        for (std::int64_t kk = 0; kk < k; ++kk) dst[kk] = src[kk * n];
      }
    });
    bpack = pd;
    bp_stride = n * k;
  }

  // Row-blocked parallel loop over all batch*m output rows. Each row owns
  // a disjoint slice of y and accumulates into row-local scalars, so the
  // result is bit-identical to the serial loop at any thread count. Grain
  // targets ~kParallelGrainFlops multiply-adds per chunk (overflow-safe
  // for huge n*k) so small matmuls stay inline.
  const std::int64_t cost_per_row = std::max<std::int64_t>(
      std::int64_t{1}, capped_cost(n, k, kParallelGrainFlops));
  const std::int64_t grain =
      std::max<std::int64_t>(std::int64_t{1}, kParallelGrainFlops / cost_per_row);
  parallel_for(0, batch * m, grain, [&](std::int64_t lo, std::int64_t hi) {
    // Decode (batch, row) once per chunk and step incrementally; the
    // division leaves the hot loop entirely.
    std::int64_t bi = lo / m;
    std::int64_t i = lo - bi * m;
    std::int64_t r = lo;
    while (r < hi) {
      const std::int64_t rows = std::min(m - i, hi - r);
      matmul_row_block(ad + bi * a_stride + i * k, bpack + bi * bp_stride,
                       yd + bi * y_stride + i * n, rows, n, k);
      r += rows;
      i = 0;
      ++bi;
    }
  });
  return y;
}

}  // namespace fp8q
