#include "nn/matmul.h"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.h"

namespace fp8q {

MatMulOp::MatMulOp(bool batched, bool transpose_b)
    : batched_(batched), transpose_b_(transpose_b) {}

Tensor MatMulOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 2) throw std::invalid_argument("MatMulOp: expects 2 inputs");
  const Tensor& a = inputs[0];
  const Tensor& b = inputs[1];
  if (a.dim() < 2 || b.dim() < 2 || a.dim() != b.dim()) {
    throw std::invalid_argument("MatMulOp: operands must share rank >= 2");
  }
  for (int i = 0; i < a.dim() - 2; ++i) {
    if (a.size(i) != b.size(i)) throw std::invalid_argument("MatMulOp: batch dims differ");
  }

  const std::int64_t m = a.size(-2);
  const std::int64_t k = a.size(-1);
  const std::int64_t bk = transpose_b_ ? b.size(-1) : b.size(-2);
  const std::int64_t n = transpose_b_ ? b.size(-2) : b.size(-1);
  if (bk != k) throw std::invalid_argument("MatMulOp: inner dims differ");

  std::int64_t batch = 1;
  for (int i = 0; i < a.dim() - 2; ++i) batch *= a.size(i);

  Shape out_shape = a.shape();
  out_shape[out_shape.size() - 2] = m;
  out_shape[out_shape.size() - 1] = n;
  Tensor y(std::move(out_shape));

  const float* ad = a.data();
  const float* bd = b.data();
  float* yd = y.data();
  const std::int64_t a_stride = m * k;
  const std::int64_t b_stride = transpose_b_ ? n * k : k * n;
  const std::int64_t y_stride = m * n;

  // Row-blocked parallel loop over all batch*m output rows. Each row owns
  // a disjoint slice of y and accumulates into row-local scalars, so the
  // result is bit-identical to the serial loop at any thread count. Grain
  // targets ~64k multiply-adds per chunk so small matmuls stay inline.
  const std::int64_t flops_per_row = std::max<std::int64_t>(std::int64_t{1}, n * k);
  const std::int64_t grain = std::max<std::int64_t>(std::int64_t{1}, 65536 / flops_per_row);
  parallel_for(0, batch * m, grain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      const std::int64_t bi = r / m;
      const std::int64_t i = r % m;
      const float* ab = ad + bi * a_stride;
      const float* bb = bd + bi * b_stride;
      float* yb = yd + bi * y_stride;
      for (std::int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        if (transpose_b_) {
          const float* br = bb + j * k;
          const float* ar = ab + i * k;
          for (std::int64_t kk = 0; kk < k; ++kk) acc += ar[kk] * br[kk];
        } else {
          const float* ar = ab + i * k;
          for (std::int64_t kk = 0; kk < k; ++kk) acc += ar[kk] * bb[kk * n + j];
        }
        yb[i * n + j] = acc;
      }
    }
  });
  return y;
}

}  // namespace fp8q
