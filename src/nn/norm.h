// LayerNorm and BatchNorm2d.
//
// BatchNorm2d supports a calibration mode used by the paper's BatchNorm
// Calibration step (section 3, Sun et al. 2019): while calibrating, the op
// re-estimates its running mean/variance from the (quantized) activations
// flowing through it, compensating for the variance shift quantization
// introduces.
#pragma once

#include "nn/op.h"

namespace fp8q {

class LayerNormOp final : public Op {
 public:
  /// `gamma`/`beta` are [dim] over the last axis.
  LayerNormOp(Tensor gamma, Tensor beta, float eps = 1e-5f);

  Tensor forward(std::span<const Tensor> inputs) override;

  [[nodiscard]] OpKind kind() const override { return OpKind::kLayerNorm; }
  [[nodiscard]] std::vector<Tensor*> weights() override { return {&gamma_, &beta_}; }
  [[nodiscard]] Tensor& gamma() { return gamma_; }
  [[nodiscard]] Tensor& beta() { return beta_; }

  [[nodiscard]] OpPtr clone() const override { return std::make_unique<LayerNormOp>(*this); }

 private:
  Tensor gamma_;
  Tensor beta_;
  float eps_;
};

/// GroupNorm over [n, c, h, w]: channels are split into `groups`, each
/// group normalized by its own per-sample statistics (the normalization of
/// diffusion U-Nets). groups == c is InstanceNorm; groups == 1 is
/// LayerNorm-over-CHW.
class GroupNormOp final : public Op {
 public:
  GroupNormOp(int groups, Tensor gamma, Tensor beta, float eps = 1e-5f);

  Tensor forward(std::span<const Tensor> inputs) override;

  [[nodiscard]] OpKind kind() const override { return OpKind::kGroupNorm; }
  [[nodiscard]] std::vector<Tensor*> weights() override { return {&gamma_, &beta_}; }
  [[nodiscard]] int groups() const { return groups_; }

  [[nodiscard]] OpPtr clone() const override { return std::make_unique<GroupNormOp>(*this); }

 private:
  int groups_;
  Tensor gamma_;  ///< [c]
  Tensor beta_;   ///< [c]
  float eps_;
};

class BatchNorm2dOp final : public Op {
 public:
  /// All parameters are [channels]; input is [n, c, h, w].
  BatchNorm2dOp(Tensor gamma, Tensor beta, Tensor running_mean, Tensor running_var,
                float eps = 1e-5f);

  Tensor forward(std::span<const Tensor> inputs) override;

  [[nodiscard]] OpKind kind() const override { return OpKind::kBatchNorm; }
  [[nodiscard]] std::vector<Tensor*> weights() override { return {&gamma_, &beta_}; }

  /// Calibration mode: batches are normalized with running stats as usual,
  /// but batch statistics are accumulated; finish_calibration() commits the
  /// averaged statistics as the new running stats.
  void begin_calibration();
  void finish_calibration();
  [[nodiscard]] bool calibrating() const { return calibrating_; }

  [[nodiscard]] Tensor& running_mean() { return running_mean_; }
  [[nodiscard]] Tensor& running_var() { return running_var_; }

  [[nodiscard]] OpPtr clone() const override { return std::make_unique<BatchNorm2dOp>(*this); }

 private:
  Tensor gamma_;
  Tensor beta_;
  Tensor running_mean_;
  Tensor running_var_;
  float eps_;
  bool calibrating_ = false;
  std::vector<double> acc_mean_;
  std::vector<double> acc_sqmean_;
  std::int64_t acc_count_ = 0;
};

}  // namespace fp8q
