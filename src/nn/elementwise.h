// Elementwise and activation operators: Add, Mul (two-input), ReLU, GELU,
// Sigmoid, Tanh, Softmax and constant Scale.
#pragma once

#include "nn/op.h"

namespace fp8q {

/// Two-input elementwise Add (residual connections) or Mul (gating).
class BinaryOp final : public Op {
 public:
  explicit BinaryOp(OpKind kind);  ///< kAdd or kMul

  Tensor forward(std::span<const Tensor> inputs) override;
  [[nodiscard]] OpKind kind() const override { return kind_; }
  [[nodiscard]] int arity() const override { return 2; }

  [[nodiscard]] OpPtr clone() const override { return std::make_unique<BinaryOp>(*this); }

 private:
  OpKind kind_;
};

/// One-input activation: ReLU / GELU / Sigmoid / Tanh.
class ActivationOp final : public Op {
 public:
  explicit ActivationOp(OpKind kind);

  Tensor forward(std::span<const Tensor> inputs) override;
  [[nodiscard]] OpKind kind() const override { return kind_; }

  [[nodiscard]] OpPtr clone() const override { return std::make_unique<ActivationOp>(*this); }

 private:
  OpKind kind_;
};

/// Softmax over the last axis.
class SoftmaxOp final : public Op {
 public:
  Tensor forward(std::span<const Tensor> inputs) override;
  [[nodiscard]] OpKind kind() const override { return OpKind::kSoftmax; }
  [[nodiscard]] OpPtr clone() const override { return std::make_unique<SoftmaxOp>(*this); }
};

/// Multiplies by a compile-time constant (e.g. attention 1/sqrt(d)).
class ScaleOp final : public Op {
 public:
  explicit ScaleOp(float factor) : factor_(factor) {}

  Tensor forward(std::span<const Tensor> inputs) override;
  [[nodiscard]] OpKind kind() const override { return OpKind::kScale; }
  [[nodiscard]] float factor() const { return factor_; }

  [[nodiscard]] OpPtr clone() const override { return std::make_unique<ScaleOp>(*this); }

 private:
  float factor_;
};

}  // namespace fp8q
