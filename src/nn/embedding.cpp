#include "nn/embedding.h"

#include <cmath>
#include <stdexcept>

namespace fp8q {

EmbeddingOp::EmbeddingOp(Tensor table) : table_(std::move(table)) {
  if (table_.dim() != 2) throw std::invalid_argument("EmbeddingOp: table must be [vocab, dim]");
}

Tensor EmbeddingOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("EmbeddingOp: expects 1 input");
  const Tensor& idx = inputs[0];
  const std::int64_t vocab = table_.size(0);
  const std::int64_t d = table_.size(1);

  Shape out_shape = idx.shape();
  out_shape.push_back(d);
  Tensor y(std::move(out_shape));

  const float* td = table_.data();
  float* yd = y.data();
  const auto ids = idx.flat();
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto id = static_cast<std::int64_t>(std::lround(ids[i]));
    if (id < 0 || id >= vocab) throw std::out_of_range("EmbeddingOp: index out of range");
    const float* row = td + id * d;
    float* out = yd + static_cast<std::int64_t>(i) * d;
    for (std::int64_t j = 0; j < d; ++j) out[j] = row[j];
  }
  return y;
}

}  // namespace fp8q
