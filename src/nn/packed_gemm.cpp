#include "nn/packed_gemm.h"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.h"
#include "fp8/format.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace fp8q {
namespace {

// Column-tile width for the portable tiers: wide enough that the decode
// and accumulate loops amortize their setup and auto-vectorize cleanly,
// small enough that four rows of accumulators stay in L1.
constexpr std::int64_t kTileN = 64;

// ---------------------------------------------------------------------------
// kScalar tier: table-lookup decode, plain loops. This is the reference
// every other tier is tested bit-equal against, so it favors obviousness
// over speed: one row at a time, one output element's ascending
// kk-summation clearly visible.
// ---------------------------------------------------------------------------

void decode_mul_scalar_tier(const std::uint8_t* codes, float inv, float* out,
                            std::int64_t count, Fp8Kind kind) {
  const Fp8DecodeTable& lut = fp8_decode_table(kind);
  for (std::int64_t i = 0; i < count; ++i) out[i] = lut.values[codes[i]] * inv;
}

void gemm_scalar_tier(const float* x, const PackedWeightMatrix& w, const float* bias,
                      float* y, std::int64_t rows) {
  const Fp8DecodeTable& lut = fp8_decode_table(w.kind);
  const std::int64_t n = w.n;
  const std::int64_t k = w.k;
  const std::uint8_t* codes = w.codes.data();
  const float* invs = w.inv_scales.data();
  float acc[kTileN];
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * k;
    float* yr = y + r * n;
    for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
      const std::int64_t jw = std::min(kTileN, n - j0);
      for (std::int64_t j = 0; j < jw; ++j) acc[j] = bias ? bias[j0 + j] : 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float xv = xr[kk];
        const std::uint8_t* crow = codes + kk * n + j0;
        for (std::int64_t j = 0; j < jw; ++j) {
          const float wv = lut.values[crow[j]] * invs[j0 + j];
          acc[j] += xv * wv;
        }
      }
      for (std::int64_t j = 0; j < jw; ++j) yr[j0 + j] = acc[j];
    }
  }
}

// ---------------------------------------------------------------------------
// kBatched tier: branch-free uint32-lane decode (fp8_decode_bits) in loops
// shaped for the auto-vectorizer -- decode a tile of weights into a local
// buffer, then stream four rows of activations against it. This TU is
// compiled -O3 -ffp-contract=off, so each acc update is an exact mul+add
// in both the scalar and vector lowering.
// ---------------------------------------------------------------------------

void decode_mul_batched_tier(const std::uint8_t* codes, float inv, float* out,
                             std::int64_t count, Fp8Kind kind) {
  const Fp8DecodeSpec& spec = fp8_decode_spec(kind);
  for (std::int64_t i = 0; i < count; ++i) {
    out[i] = std::bit_cast<float>(fp8_decode_bits(codes[i], spec)) * inv;
  }
}

void gemm_batched_tier(const float* x, const PackedWeightMatrix& w, const float* bias,
                       float* y, std::int64_t rows) {
  const Fp8DecodeSpec& spec = fp8_decode_spec(w.kind);
  const std::int64_t n = w.n;
  const std::int64_t k = w.k;
  const std::uint8_t* codes = w.codes.data();
  const float* invs = w.inv_scales.data();
  float wbuf[kTileN];
  float acc0[kTileN];
  float acc1[kTileN];
  float acc2[kTileN];
  float acc3[kTileN];
  std::int64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* x0 = x + (r + 0) * k;
    const float* x1 = x + (r + 1) * k;
    const float* x2 = x + (r + 2) * k;
    const float* x3 = x + (r + 3) * k;
    for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
      const std::int64_t jw = std::min(kTileN, n - j0);
      for (std::int64_t j = 0; j < jw; ++j) {
        const float b = bias ? bias[j0 + j] : 0.0f;
        acc0[j] = b;
        acc1[j] = b;
        acc2[j] = b;
        acc3[j] = b;
      }
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const std::uint8_t* crow = codes + kk * n + j0;
        const float* inv = invs + j0;
        // Decode once, reuse across the four rows: the decoded weight is
        // the same value whichever row consumes it, so sharing it cannot
        // change any element's arithmetic.
        for (std::int64_t j = 0; j < jw; ++j) {
          wbuf[j] = std::bit_cast<float>(fp8_decode_bits(crow[j], spec)) * inv[j];
        }
        const float xv0 = x0[kk];
        const float xv1 = x1[kk];
        const float xv2 = x2[kk];
        const float xv3 = x3[kk];
        for (std::int64_t j = 0; j < jw; ++j) {
          const float wv = wbuf[j];
          acc0[j] += xv0 * wv;
          acc1[j] += xv1 * wv;
          acc2[j] += xv2 * wv;
          acc3[j] += xv3 * wv;
        }
      }
      for (std::int64_t j = 0; j < jw; ++j) {
        y[(r + 0) * n + j0 + j] = acc0[j];
        y[(r + 1) * n + j0 + j] = acc1[j];
        y[(r + 2) * n + j0 + j] = acc2[j];
        y[(r + 3) * n + j0 + j] = acc3[j];
      }
    }
  }
  for (; r < rows; ++r) {
    const float* xr = x + r * k;
    float* yr = y + r * n;
    for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
      const std::int64_t jw = std::min(kTileN, n - j0);
      for (std::int64_t j = 0; j < jw; ++j) acc0[j] = bias ? bias[j0 + j] : 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const std::uint8_t* crow = codes + kk * n + j0;
        const float* inv = invs + j0;
        const float xv = xr[kk];
        for (std::int64_t j = 0; j < jw; ++j) {
          const float wv = std::bit_cast<float>(fp8_decode_bits(crow[j], spec)) * inv[j];
          acc0[j] += xv * wv;
        }
      }
      for (std::int64_t j = 0; j < jw; ++j) yr[j0 + j] = acc0[j];
    }
  }
}

constexpr PackedKernelTable kScalarTable{decode_mul_scalar_tier, gemm_scalar_tier};
constexpr PackedKernelTable kBatchedTable{decode_mul_batched_tier, gemm_batched_tier};

}  // namespace

const PackedKernelTable& packed_kernels(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return kScalarTable;
    case IsaTier::kBatched:
      return kBatchedTable;
    case IsaTier::kNative:
#if defined(FP8Q_PACKED_NATIVE_TU)
      if (isa_native_available()) return detail::packed_kernels_native_impl();
#endif
      return kBatchedTable;
  }
  return kScalarTable;
}

PackedWeightMatrix pack_gemm_weight(const PackedFp8Tensor& packed) {
  const Shape& shape = packed.shape();
  if (shape.size() != 2) {
    throw std::invalid_argument("pack_gemm_weight: weight must be [out, in]");
  }
  PackedWeightMatrix w;
  w.n = shape[0];
  w.k = shape[1];
  w.kind = packed.kind();
  const auto& scales = packed.scales();
  if (scales.size() != static_cast<std::size_t>(w.n) && scales.size() != 1) {
    throw std::invalid_argument("pack_gemm_weight: need a scale per output channel");
  }
  w.inv_scales.resize(static_cast<std::size_t>(w.n));
  for (std::int64_t j = 0; j < w.n; ++j) {
    const float s = scales.size() == 1 ? scales[0] : scales[static_cast<std::size_t>(j)];
    // The same reciprocal the dequantize path multiplies by
    // (fp8/cast_fast.cpp), so decode * inv reproduces its bits.
    w.inv_scales[static_cast<std::size_t>(j)] = 1.0f / s;
  }
  // Transpose [n][k] row-major codes into the k-major kernel layout.
  const std::uint8_t* src = packed.codes().data();
  w.codes.resize(static_cast<std::size_t>(w.k * w.n));
  for (std::int64_t j = 0; j < w.n; ++j) {
    for (std::int64_t kk = 0; kk < w.k; ++kk) {
      w.codes[static_cast<std::size_t>(kk * w.n + j)] =
          src[static_cast<std::size_t>(j * w.k + kk)];
    }
  }
  return w;
}

PackedConvWeight pack_conv_weight(const PackedFp8Tensor& packed) {
  const Shape& shape = packed.shape();
  if (shape.size() != 4) {
    throw std::invalid_argument("pack_conv_weight: weight must be [oc, ic/g, kh, kw]");
  }
  PackedConvWeight w;
  w.oc = shape[0];
  w.block = shape[1] * shape[2] * shape[3];
  w.kind = packed.kind();
  const auto& scales = packed.scales();
  if (scales.size() != static_cast<std::size_t>(w.oc) && scales.size() != 1) {
    throw std::invalid_argument("pack_conv_weight: need a scale per output channel");
  }
  w.inv_scales.resize(static_cast<std::size_t>(w.oc));
  for (std::int64_t o = 0; o < w.oc; ++o) {
    const float s = scales.size() == 1 ? scales[0] : scales[static_cast<std::size_t>(o)];
    w.inv_scales[static_cast<std::size_t>(o)] = 1.0f / s;
  }
  w.codes = packed.codes();
  return w;
}

void packed_gemm_forward(const float* x, const PackedWeightMatrix& w, const float* bias,
                         float* y, std::int64_t rows) {
  const PackedKernelTable& kt = packed_kernels(isa_tier());
  // Same row-partition grain policy as LinearOp::forward: rows own
  // disjoint output slices with row-local accumulators, so any partition
  // -- and any tier -- yields identical bits.
  const std::int64_t cost_per_row = std::max<std::int64_t>(
      std::int64_t{1}, capped_cost(w.n, w.k, kParallelGrainFlops));
  const std::int64_t grain =
      std::max<std::int64_t>(std::int64_t{1}, kParallelGrainFlops / cost_per_row);
  parallel_for(0, rows, grain, [&](std::int64_t lo, std::int64_t hi) {
    kt.gemm(x + lo * w.k, w, bias, y + lo * w.n, hi - lo);
  });
}

Tensor packed_matmul(const Tensor& a, const PackedWeightMatrix& w) {
  if (a.dim() < 1 || a.size(-1) != w.k) {
    throw std::invalid_argument("packed_matmul: inner dims differ");
  }
  kernel_counter_add(ObsKernelPath::kMatmulPacked, 1);
  TraceSpan span("matmul_packed");
  Shape out_shape = a.shape();
  out_shape.back() = w.n;
  Tensor y(std::move(out_shape));
  const std::int64_t rows = a.numel() / w.k;
  const bool hists = histograms_enabled();
  const std::uint64_t start_ns = hists ? obs_now_ns() : 0;
  packed_gemm_forward(a.data(), w, nullptr, y.data(), rows);
  if (hists) {
    hist_record_named("kernel:matmul_packed",
                      static_cast<double>(obs_now_ns() - start_ns));
  }
  return y;
}

}  // namespace fp8q
