#include "nn/elementwise.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fp8q {

BinaryOp::BinaryOp(OpKind kind) : kind_(kind) {
  if (kind != OpKind::kAdd && kind != OpKind::kMul) {
    throw std::invalid_argument("BinaryOp: kind must be Add or Mul");
  }
}

Tensor BinaryOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 2) throw std::invalid_argument("BinaryOp: expects 2 inputs");
  if (!inputs[0].same_shape(inputs[1])) {
    throw std::invalid_argument("BinaryOp: shape mismatch");
  }
  Tensor y = inputs[0];
  if (kind_ == OpKind::kAdd) {
    y.add(inputs[1]);
  } else {
    y.mul(inputs[1]);
  }
  return y;
}

ActivationOp::ActivationOp(OpKind kind) : kind_(kind) {
  switch (kind) {
    case OpKind::kRelu:
    case OpKind::kGelu:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kSilu:
    case OpKind::kHardSwish:
    case OpKind::kLeakyRelu:
      break;
    default:
      throw std::invalid_argument("ActivationOp: unsupported kind");
  }
}

Tensor ActivationOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("ActivationOp: expects 1 input");
  Tensor y = inputs[0];
  switch (kind_) {
    case OpKind::kRelu:
      for (float& v : y.flat()) v = v > 0.0f ? v : 0.0f;
      break;
    case OpKind::kGelu: {
      // tanh approximation of GELU.
      const auto c = static_cast<float>(std::sqrt(2.0 / std::numbers::pi));
      for (float& v : y.flat()) {
        v = 0.5f * v * (1.0f + std::tanh(c * (v + 0.044715f * v * v * v)));
      }
      break;
    }
    case OpKind::kSigmoid:
      for (float& v : y.flat()) v = 1.0f / (1.0f + std::exp(-v));
      break;
    case OpKind::kTanh:
      for (float& v : y.flat()) v = std::tanh(v);
      break;
    case OpKind::kSilu:
      // x * sigmoid(x): the swish activation of EfficientNet.
      for (float& v : y.flat()) v = v / (1.0f + std::exp(-v));
      break;
    case OpKind::kHardSwish:
      // x * relu6(x + 3) / 6: MobileNetV3's cheap swish.
      for (float& v : y.flat()) {
        const float r = std::min(6.0f, std::max(0.0f, v + 3.0f));
        v = v * r / 6.0f;
      }
      break;
    case OpKind::kLeakyRelu:
      for (float& v : y.flat()) v = v > 0.0f ? v : 0.01f * v;
      break;
    default:
      break;
  }
  return y;
}

Tensor SoftmaxOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("SoftmaxOp: expects 1 input");
  const Tensor& x = inputs[0];
  if (x.dim() < 1) throw std::invalid_argument("SoftmaxOp: rank must be >= 1");
  const std::int64_t d = x.size(-1);
  const std::int64_t rows = x.numel() / d;
  Tensor y(x.shape());
  const float* xd = x.data();
  float* yd = y.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = xd + r * d;
    float* yr = yd + r * d;
    float mx = xr[0];
    for (std::int64_t i = 1; i < d; ++i) mx = std::max(mx, xr[i]);
    double sum = 0.0;
    for (std::int64_t i = 0; i < d; ++i) {
      yr[i] = std::exp(xr[i] - mx);
      sum += yr[i];
    }
    const auto inv = static_cast<float>(1.0 / sum);
    for (std::int64_t i = 0; i < d; ++i) yr[i] *= inv;
  }
  return y;
}

Tensor ScaleOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("ScaleOp: expects 1 input");
  Tensor y = inputs[0];
  y.scale(factor_);
  return y;
}

}  // namespace fp8q
