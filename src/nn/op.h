// Operator base class for the FP32 emulation substrate.
//
// Every kernel computes in FP32, exactly like the paper's emulation setup;
// quantization happens by snapping weights and operator inputs onto the
// FP8/INT8 grid around these kernels (see src/quant/quantizer.h).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"

namespace fp8q {

/// Operator kinds, used by the quantization schemes to decide coverage
/// (paper section 3: standard scheme covers Conv/Linear/Embedding plus the
/// MatMuls; the extended scheme adds LayerNorm/BatchNorm/Add/Mul).
enum class OpKind : std::uint8_t {
  kInput,
  kLinear,
  kConv2d,
  kMatMul,
  kBatchMatMul,
  kEmbedding,
  kLayerNorm,
  kBatchNorm,
  kAdd,
  kMul,
  kRelu,
  kGelu,
  kSigmoid,
  kTanh,
  kSilu,
  kHardSwish,
  kLeakyRelu,
  kGroupNorm,
  kConcat,
  kSoftmax,
  kAvgPool,
  kMaxPool,
  kReshape,
  kTranspose,
  kScale,
};

[[nodiscard]] std::string_view to_string(OpKind kind);

/// True for operators that carry trainable weights and do real compute --
/// the standard quantization scheme's operator set.
[[nodiscard]] bool is_compute_op(OpKind kind);

/// True for the memory-bound operators the extended scheme additionally
/// quantizes (LayerNorm, BatchNorm, Add, Mul; paper section 3.2).
[[nodiscard]] bool is_extended_op(OpKind kind);

/// True if the op is quantizable at all under some scheme.
[[nodiscard]] inline bool is_quantizable_op(OpKind kind) {
  return is_compute_op(kind) || is_extended_op(kind);
}

class Op {
 public:
  virtual ~Op() = default;

  /// Runs the FP32 kernel. The number of inputs must match `arity()`.
  virtual Tensor forward(std::span<const Tensor> inputs) = 0;

  [[nodiscard]] virtual OpKind kind() const = 0;

  /// Number of graph inputs the op consumes.
  [[nodiscard]] virtual int arity() const { return 1; }

  /// Mutable views of the op's weight tensors (empty for weightless ops).
  /// Quantization passes fake-quantize these in place.
  [[nodiscard]] virtual std::vector<Tensor*> weights() { return {}; }

  /// Deep copy (weights included, copied tensors adopt the source's
  /// identity -- see Tensor::identity()). Lets Graph::clone() produce
  /// independent graphs for concurrent evaluation of one prototype.
  [[nodiscard]] virtual std::unique_ptr<Op> clone() const = 0;

  /// Total parameter count, used for the model-size buckets of Figure 5.
  [[nodiscard]] std::int64_t param_count() {
    std::int64_t n = 0;
    for (Tensor* w : weights()) n += w->numel();
    return n;
  }
};

using OpPtr = std::unique_ptr<Op>;

}  // namespace fp8q
