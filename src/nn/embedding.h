// Embedding table lookup. Indices arrive as a float tensor (the substrate
// is single-dtype); they are rounded and bounds-checked.
#pragma once

#include "nn/op.h"

namespace fp8q {

class EmbeddingOp final : public Op {
 public:
  /// `table` is [vocab, dim].
  explicit EmbeddingOp(Tensor table);

  /// Input [...] of indices -> output [..., dim].
  Tensor forward(std::span<const Tensor> inputs) override;

  [[nodiscard]] OpKind kind() const override { return OpKind::kEmbedding; }
  [[nodiscard]] std::vector<Tensor*> weights() override { return {&table_}; }

  [[nodiscard]] std::int64_t vocab_size() const { return table_.size(0); }
  [[nodiscard]] std::int64_t dim() const { return table_.size(1); }
  [[nodiscard]] Tensor& table() { return table_; }

  [[nodiscard]] OpPtr clone() const override { return std::make_unique<EmbeddingOp>(*this); }

 private:
  Tensor table_;
};

}  // namespace fp8q
