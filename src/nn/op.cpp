#include "nn/op.h"

namespace fp8q {

std::string_view to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "Input";
    case OpKind::kLinear: return "Linear";
    case OpKind::kConv2d: return "Conv2d";
    case OpKind::kMatMul: return "MatMul";
    case OpKind::kBatchMatMul: return "BatchMatMul";
    case OpKind::kEmbedding: return "Embedding";
    case OpKind::kLayerNorm: return "LayerNorm";
    case OpKind::kBatchNorm: return "BatchNorm";
    case OpKind::kAdd: return "Add";
    case OpKind::kMul: return "Mul";
    case OpKind::kRelu: return "ReLU";
    case OpKind::kGelu: return "GELU";
    case OpKind::kSigmoid: return "Sigmoid";
    case OpKind::kTanh: return "Tanh";
    case OpKind::kSilu: return "SiLU";
    case OpKind::kHardSwish: return "HardSwish";
    case OpKind::kLeakyRelu: return "LeakyReLU";
    case OpKind::kGroupNorm: return "GroupNorm";
    case OpKind::kConcat: return "Concat";
    case OpKind::kSoftmax: return "Softmax";
    case OpKind::kAvgPool: return "AvgPool";
    case OpKind::kMaxPool: return "MaxPool";
    case OpKind::kReshape: return "Reshape";
    case OpKind::kTranspose: return "Transpose";
    case OpKind::kScale: return "Scale";
  }
  return "Unknown";
}

bool is_compute_op(OpKind kind) {
  switch (kind) {
    case OpKind::kLinear:
    case OpKind::kConv2d:
    case OpKind::kMatMul:
    case OpKind::kBatchMatMul:
    case OpKind::kEmbedding:
      return true;
    default:
      return false;
  }
}

bool is_extended_op(OpKind kind) {
  switch (kind) {
    case OpKind::kLayerNorm:
    case OpKind::kBatchNorm:
    case OpKind::kGroupNorm:
    case OpKind::kAdd:
    case OpKind::kMul:
      return true;
    default:
      return false;
  }
}

}  // namespace fp8q
