// kNative tier for AArch64: NEON packed-FP8 decode + GEMM.
//
// Advanced SIMD is baseline on AArch64, so no -march flag is needed; the
// TU is still compiled -ffp-contract=off and uses explicit vmulq/vaddq
// (never vfmaq) so each element sees the same exact mul+add sequence as
// the scalar reference tier (docs/KERNELS.md).
#include "nn/packed_gemm.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

namespace fp8q {
namespace {

/// Broadcast decode constants for one format, mirroring Fp8DecodeSpec.
struct DecodeCtx {
  int32x4_t man_shift;    ///< 23 - man_bits, as a per-lane shift count
  uint32x4_t exp_add;     ///< (127 - bias) << 23: integer exponent rebias
  float32x4_t sub_scale;  ///< 2^(1 - bias - man_bits)
  uint32x4_t sub_lo;      ///< 1 << man_bits: mag < this  <=>  subnormal
  uint32x4_t special_lo;  ///< mag >= this  <=>  Inf/NaN code
  uint32x4_t inf_bits;    ///< 0x7F800000
  uint32x4_t nan_bits;    ///< 0x7FC00000 (canonical unsigned quiet NaN)
  bool ieee;
};

DecodeCtx make_ctx(Fp8Kind kind) {
  const Fp8DecodeSpec& spec = fp8_decode_spec(kind);
  DecodeCtx d;
  d.man_shift = vdupq_n_s32(static_cast<std::int32_t>(spec.man_shift));
  d.exp_add = vdupq_n_u32(spec.exp_add);
  d.sub_scale = vdupq_n_f32(spec.sub_scale);
  d.sub_lo = vdupq_n_u32(spec.sub_lo);
  d.special_lo = vdupq_n_u32(spec.special_lo);
  d.inf_bits = vdupq_n_u32(0x7F800000u);
  d.nan_bits = vdupq_n_u32(0x7FC00000u);
  d.ieee = spec.ieee;
  return d;
}

/// Decodes 4 widened codes -- the 4-lane transcription of fp8_decode_bits
/// (fp8/packed.h): integer exponent rebias for normal lanes, exact convert
/// + power-of-two multiply for subnormal lanes, then the special selects.
inline float32x4_t decode4(uint32x4_t c, const DecodeCtx& d) {
  const uint32x4_t mag = vandq_u32(c, vdupq_n_u32(0x7Fu));
  const uint32x4_t sgn = vshlq_n_u32(vandq_u32(c, vdupq_n_u32(0x80u)), 24);
  const uint32x4_t norm = vaddq_u32(vshlq_u32(mag, d.man_shift), d.exp_add);
  const float32x4_t sub =
      vmulq_f32(vcvtq_f32_u32(mag), d.sub_scale);
  const uint32x4_t is_sub = vcltq_u32(mag, d.sub_lo);
  const uint32x4_t val = vbslq_u32(is_sub, vreinterpretq_u32_f32(sub), norm);
  uint32x4_t bits = vorrq_u32(val, sgn);
  const uint32x4_t special = vcgeq_u32(mag, d.special_lo);
  const uint32x4_t is_nan = d.ieee ? vcgtq_u32(mag, d.special_lo) : special;
  const uint32x4_t spec_bits = vbslq_u32(is_nan, d.nan_bits, vorrq_u32(sgn, d.inf_bits));
  bits = vbslq_u32(special, spec_bits, bits);
  return vreinterpretq_f32_u32(bits);
}

/// Decodes 8 consecutive codes into two float32x4 halves.
inline void decode8(const std::uint8_t* codes, const DecodeCtx& d, float32x4_t& lo,
                    float32x4_t& hi) {
  const uint16x8_t w16 = vmovl_u8(vld1_u8(codes));
  lo = decode4(vmovl_u16(vget_low_u16(w16)), d);
  hi = decode4(vmovl_u16(vget_high_u16(w16)), d);
}

void decode_mul_neon(const std::uint8_t* codes, float inv, float* out, std::int64_t count,
                     Fp8Kind kind) {
  const DecodeCtx d = make_ctx(kind);
  const float32x4_t invv = vdupq_n_f32(inv);
  std::int64_t i = 0;
  for (; i + 8 <= count; i += 8) {
    float32x4_t lo;
    float32x4_t hi;
    decode8(codes + i, d, lo, hi);
    vst1q_f32(out + i, vmulq_f32(lo, invv));
    vst1q_f32(out + i + 4, vmulq_f32(hi, invv));
  }
  const Fp8DecodeSpec& spec = fp8_decode_spec(kind);
  for (; i < count; ++i) {
    out[i] = std::bit_cast<float>(fp8_decode_bits(codes[i], spec)) * inv;
  }
}

void gemm_neon(const float* x, const PackedWeightMatrix& w, const float* bias, float* y,
               std::int64_t rows) {
  const DecodeCtx d = make_ctx(w.kind);
  const Fp8DecodeSpec& spec = fp8_decode_spec(w.kind);
  const std::int64_t n = w.n;
  const std::int64_t k = w.k;
  const std::uint8_t* codes = w.codes.data();
  const float* invs = w.inv_scales.data();
  std::int64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* x0 = x + (r + 0) * k;
    const float* x1 = x + (r + 1) * k;
    const float* x2 = x + (r + 2) * k;
    const float* x3 = x + (r + 3) * k;
    std::int64_t j = 0;
    // 4 rows x 8 output channels: decode each 8-channel weight strip once
    // per reduction step and broadcast four activations against it.
    for (; j + 8 <= n; j += 8) {
      const float32x4_t inv_lo = vld1q_f32(invs + j);
      const float32x4_t inv_hi = vld1q_f32(invs + j + 4);
      const float32x4_t b_lo = bias ? vld1q_f32(bias + j) : vdupq_n_f32(0.0f);
      const float32x4_t b_hi = bias ? vld1q_f32(bias + j + 4) : vdupq_n_f32(0.0f);
      float32x4_t acc0_lo = b_lo;
      float32x4_t acc0_hi = b_hi;
      float32x4_t acc1_lo = b_lo;
      float32x4_t acc1_hi = b_hi;
      float32x4_t acc2_lo = b_lo;
      float32x4_t acc2_hi = b_hi;
      float32x4_t acc3_lo = b_lo;
      float32x4_t acc3_hi = b_hi;
      const std::uint8_t* cp = codes + j;
      for (std::int64_t kk = 0; kk < k; ++kk, cp += n) {
        float32x4_t w_lo;
        float32x4_t w_hi;
        decode8(cp, d, w_lo, w_hi);
        w_lo = vmulq_f32(w_lo, inv_lo);
        w_hi = vmulq_f32(w_hi, inv_hi);
        const float32x4_t xv0 = vdupq_n_f32(x0[kk]);
        const float32x4_t xv1 = vdupq_n_f32(x1[kk]);
        const float32x4_t xv2 = vdupq_n_f32(x2[kk]);
        const float32x4_t xv3 = vdupq_n_f32(x3[kk]);
        acc0_lo = vaddq_f32(acc0_lo, vmulq_f32(xv0, w_lo));
        acc0_hi = vaddq_f32(acc0_hi, vmulq_f32(xv0, w_hi));
        acc1_lo = vaddq_f32(acc1_lo, vmulq_f32(xv1, w_lo));
        acc1_hi = vaddq_f32(acc1_hi, vmulq_f32(xv1, w_hi));
        acc2_lo = vaddq_f32(acc2_lo, vmulq_f32(xv2, w_lo));
        acc2_hi = vaddq_f32(acc2_hi, vmulq_f32(xv2, w_hi));
        acc3_lo = vaddq_f32(acc3_lo, vmulq_f32(xv3, w_lo));
        acc3_hi = vaddq_f32(acc3_hi, vmulq_f32(xv3, w_hi));
      }
      vst1q_f32(y + (r + 0) * n + j, acc0_lo);
      vst1q_f32(y + (r + 0) * n + j + 4, acc0_hi);
      vst1q_f32(y + (r + 1) * n + j, acc1_lo);
      vst1q_f32(y + (r + 1) * n + j + 4, acc1_hi);
      vst1q_f32(y + (r + 2) * n + j, acc2_lo);
      vst1q_f32(y + (r + 2) * n + j + 4, acc2_hi);
      vst1q_f32(y + (r + 3) * n + j, acc3_lo);
      vst1q_f32(y + (r + 3) * n + j + 4, acc3_hi);
    }
    for (; j < n; ++j) {
      const float inv = invs[j];
      float acc0 = bias ? bias[j] : 0.0f;
      float acc1 = acc0;
      float acc2 = acc0;
      float acc3 = acc0;
      const std::uint8_t* cp = codes + j;
      for (std::int64_t kk = 0; kk < k; ++kk, cp += n) {
        const float wv = std::bit_cast<float>(fp8_decode_bits(*cp, spec)) * inv;
        acc0 += x0[kk] * wv;
        acc1 += x1[kk] * wv;
        acc2 += x2[kk] * wv;
        acc3 += x3[kk] * wv;
      }
      y[(r + 0) * n + j] = acc0;
      y[(r + 1) * n + j] = acc1;
      y[(r + 2) * n + j] = acc2;
      y[(r + 3) * n + j] = acc3;
    }
  }
  for (; r < rows; ++r) {
    const float* xr = x + r * k;
    float* yr = y + r * n;
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const float32x4_t inv_lo = vld1q_f32(invs + j);
      const float32x4_t inv_hi = vld1q_f32(invs + j + 4);
      float32x4_t acc_lo = bias ? vld1q_f32(bias + j) : vdupq_n_f32(0.0f);
      float32x4_t acc_hi = bias ? vld1q_f32(bias + j + 4) : vdupq_n_f32(0.0f);
      const std::uint8_t* cp = codes + j;
      for (std::int64_t kk = 0; kk < k; ++kk, cp += n) {
        float32x4_t w_lo;
        float32x4_t w_hi;
        decode8(cp, d, w_lo, w_hi);
        w_lo = vmulq_f32(w_lo, inv_lo);
        w_hi = vmulq_f32(w_hi, inv_hi);
        const float32x4_t xv = vdupq_n_f32(xr[kk]);
        acc_lo = vaddq_f32(acc_lo, vmulq_f32(xv, w_lo));
        acc_hi = vaddq_f32(acc_hi, vmulq_f32(xv, w_hi));
      }
      vst1q_f32(yr + j, acc_lo);
      vst1q_f32(yr + j + 4, acc_hi);
    }
    for (; j < n; ++j) {
      const float inv = invs[j];
      float acc = bias ? bias[j] : 0.0f;
      const std::uint8_t* cp = codes + j;
      for (std::int64_t kk = 0; kk < k; ++kk, cp += n) {
        const float wv = std::bit_cast<float>(fp8_decode_bits(*cp, spec)) * inv;
        acc += xr[kk] * wv;
      }
      yr[j] = acc;
    }
  }
}

constexpr PackedKernelTable kNeonTable{decode_mul_neon, gemm_neon};

}  // namespace

namespace detail {

const PackedKernelTable& packed_kernels_native_impl() { return kNeonTable; }

}  // namespace detail
}  // namespace fp8q

#endif  // defined(__aarch64__)
