// 2D convolution (NCHW, optionally grouped/depthwise).
//
// Like LinearOp, the op has an FP32 path over weight_ and a packed path
// (docs/KERNELS.md): with a PackedConvWeight attached, each (image,
// output-channel) plane decodes its channel's taps once into a scratch
// row via the dispatched decode kernel, then runs the same clamped tap
// loops -- bit-identical to the FP32 path on the fake-quantized weight,
// while streaming 1 byte per tap instead of 4 from memory.
#pragma once

#include <memory>

#include "nn/op.h"
#include "nn/packed_gemm.h"

namespace fp8q {

class Conv2dOp final : public Op {
 public:
  /// `weight` is [out_ch, in_ch/groups, kh, kw]; `bias` is [out_ch] or empty.
  Conv2dOp(Tensor weight, Tensor bias, int stride = 1, int padding = 0, int groups = 1);

  /// Input [n, in_ch, h, w] -> [n, out_ch, h', w'].
  Tensor forward(std::span<const Tensor> inputs) override;

  [[nodiscard]] OpKind kind() const override { return OpKind::kConv2d; }
  [[nodiscard]] std::vector<Tensor*> weights() override;

  [[nodiscard]] std::int64_t out_channels() const { return weight_.size(0); }
  [[nodiscard]] std::int64_t in_channels() const { return weight_.size(1) * groups_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] int padding() const { return padding_; }
  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] Tensor& weight() { return weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }

  [[nodiscard]] OpPtr clone() const override { return std::make_unique<Conv2dOp>(*this); }

  /// Attaches packed 8-bit weight codes; subsequent forwards decode per
  /// output channel instead of reading weight_. Shared and immutable
  /// (clones share it). Throws if its dims don't match the op's weight.
  void set_packed_weight(std::shared_ptr<const PackedConvWeight> packed);
  /// Detaches the packed weight; forward returns to the FP32 path.
  void clear_packed_weight() { packed_.reset(); }
  [[nodiscard]] bool has_packed_weight() const { return packed_ != nullptr; }

 private:
  Tensor weight_;  ///< [oc, ic/groups, kh, kw]
  Tensor bias_;    ///< [oc] or empty
  int stride_;
  int padding_;
  int groups_;
  std::shared_ptr<const PackedConvWeight> packed_;  ///< nullptr = FP32 path
};

}  // namespace fp8q
