// 2D convolution (NCHW, optionally grouped/depthwise).
#pragma once

#include "nn/op.h"

namespace fp8q {

class Conv2dOp final : public Op {
 public:
  /// `weight` is [out_ch, in_ch/groups, kh, kw]; `bias` is [out_ch] or empty.
  Conv2dOp(Tensor weight, Tensor bias, int stride = 1, int padding = 0, int groups = 1);

  /// Input [n, in_ch, h, w] -> [n, out_ch, h', w'].
  Tensor forward(std::span<const Tensor> inputs) override;

  [[nodiscard]] OpKind kind() const override { return OpKind::kConv2d; }
  [[nodiscard]] std::vector<Tensor*> weights() override;

  [[nodiscard]] std::int64_t out_channels() const { return weight_.size(0); }
  [[nodiscard]] std::int64_t in_channels() const { return weight_.size(1) * groups_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] int padding() const { return padding_; }
  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] Tensor& weight() { return weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }

  [[nodiscard]] OpPtr clone() const override { return std::make_unique<Conv2dOp>(*this); }

 private:
  Tensor weight_;  ///< [oc, ic/groups, kh, kw]
  Tensor bias_;    ///< [oc] or empty
  int stride_;
  int padding_;
  int groups_;
};

}  // namespace fp8q
