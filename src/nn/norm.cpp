#include "nn/norm.h"

#include <cmath>
#include <stdexcept>

namespace fp8q {

LayerNormOp::LayerNormOp(Tensor gamma, Tensor beta, float eps)
    : gamma_(std::move(gamma)), beta_(std::move(beta)), eps_(eps) {
  if (gamma_.dim() != 1 || !gamma_.same_shape(beta_)) {
    throw std::invalid_argument("LayerNormOp: gamma/beta must be matching [dim]");
  }
}

Tensor LayerNormOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("LayerNormOp: expects 1 input");
  const Tensor& x = inputs[0];
  const std::int64_t d = gamma_.size(0);
  if (x.dim() < 1 || x.size(-1) != d) {
    throw std::invalid_argument("LayerNormOp: last axis must match gamma dim");
  }
  const std::int64_t rows = x.numel() / d;
  Tensor y(x.shape());
  const float* xd = x.data();
  const float* g = gamma_.data();
  const float* b = beta_.data();
  float* yd = y.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = xd + r * d;
    float* yr = yd + r * d;
    double mean = 0.0;
    for (std::int64_t i = 0; i < d; ++i) mean += xr[i];
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (std::int64_t i = 0; i < d; ++i) {
      const double dv = xr[i] - mean;
      var += dv * dv;
    }
    var /= static_cast<double>(d);
    const auto inv = static_cast<float>(1.0 / std::sqrt(var + eps_));
    const auto mu = static_cast<float>(mean);
    for (std::int64_t i = 0; i < d; ++i) {
      yr[i] = (xr[i] - mu) * inv * g[i] + b[i];
    }
  }
  return y;
}

BatchNorm2dOp::BatchNorm2dOp(Tensor gamma, Tensor beta, Tensor running_mean,
                             Tensor running_var, float eps)
    : gamma_(std::move(gamma)),
      beta_(std::move(beta)),
      running_mean_(std::move(running_mean)),
      running_var_(std::move(running_var)),
      eps_(eps) {
  if (gamma_.dim() != 1 || !gamma_.same_shape(beta_) ||
      !gamma_.same_shape(running_mean_) || !gamma_.same_shape(running_var_)) {
    throw std::invalid_argument("BatchNorm2dOp: all parameters must be matching [c]");
  }
}

void BatchNorm2dOp::begin_calibration() {
  calibrating_ = true;
  acc_mean_.assign(static_cast<size_t>(gamma_.size(0)), 0.0);
  acc_sqmean_.assign(static_cast<size_t>(gamma_.size(0)), 0.0);
  acc_count_ = 0;
}

void BatchNorm2dOp::finish_calibration() {
  calibrating_ = false;
  if (acc_count_ == 0) return;
  const auto c = gamma_.size(0);
  for (std::int64_t i = 0; i < c; ++i) {
    const double mean = acc_mean_[static_cast<size_t>(i)] / static_cast<double>(acc_count_);
    const double sq = acc_sqmean_[static_cast<size_t>(i)] / static_cast<double>(acc_count_);
    running_mean_[i] = static_cast<float>(mean);
    running_var_[i] = static_cast<float>(std::max(0.0, sq - mean * mean));
  }
}

Tensor BatchNorm2dOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("BatchNorm2dOp: expects 1 input");
  const Tensor& x = inputs[0];
  if (x.dim() != 4 || x.size(1) != gamma_.size(0)) {
    throw std::invalid_argument("BatchNorm2dOp: input must be [n, c, h, w] with matching c");
  }
  const std::int64_t n = x.size(0);
  const std::int64_t c = x.size(1);
  const std::int64_t hw = x.size(2) * x.size(3);

  // During calibration the op runs in training mode: each batch is
  // normalized with its *own* per-channel statistics while those statistics
  // are accumulated for the new running stats. This makes the calibration
  // self-consistent in one pass at any network depth -- the outputs each
  // downstream layer sees already match what inference with the committed
  // statistics will produce.
  std::vector<float> batch_mean;
  std::vector<float> batch_var;
  if (calibrating_) {
    batch_mean.assign(static_cast<size_t>(c), 0.0f);
    batch_var.assign(static_cast<size_t>(c), 0.0f);
    const float* xd = x.data();
    const double denom = static_cast<double>(n) * static_cast<double>(hw);
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double s = 0.0;
      double s2 = 0.0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* plane = xd + (b * c + ch) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          s += plane[i];
          s2 += static_cast<double>(plane[i]) * plane[i];
        }
      }
      const double mean = s / denom;
      const double var = std::max(0.0, s2 / denom - mean * mean);
      batch_mean[static_cast<size_t>(ch)] = static_cast<float>(mean);
      batch_var[static_cast<size_t>(ch)] = static_cast<float>(var);
      acc_mean_[static_cast<size_t>(ch)] += mean;
      acc_sqmean_[static_cast<size_t>(ch)] += s2 / denom;
    }
    acc_count_ += 1;  // one batch-level sample per forward
  }

  Tensor y(x.shape());
  const float* xd = x.data();
  float* yd = y.data();
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float mu = calibrating_ ? batch_mean[static_cast<size_t>(ch)] : running_mean_[ch];
      const float var = calibrating_ ? batch_var[static_cast<size_t>(ch)] : running_var_[ch];
      const float inv = 1.0f / std::sqrt(var + eps_);
      const float g = gamma_[ch] * inv;
      const float bv = beta_[ch] - mu * g;
      const float* xp = xd + (b * c + ch) * hw;
      float* yp = yd + (b * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) yp[i] = xp[i] * g + bv;
    }
  }
  return y;
}

}  // namespace fp8q

namespace fp8q {

GroupNormOp::GroupNormOp(int groups, Tensor gamma, Tensor beta, float eps)
    : groups_(groups), gamma_(std::move(gamma)), beta_(std::move(beta)), eps_(eps) {
  if (groups_ < 1 || gamma_.dim() != 1 || !gamma_.same_shape(beta_)) {
    throw std::invalid_argument("GroupNormOp: need groups >= 1 and matching [c] params");
  }
  if (gamma_.size(0) % groups_ != 0) {
    throw std::invalid_argument("GroupNormOp: channels not divisible by groups");
  }
}

Tensor GroupNormOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("GroupNormOp: expects 1 input");
  const Tensor& x = inputs[0];
  if (x.dim() != 4 || x.size(1) != gamma_.size(0)) {
    throw std::invalid_argument("GroupNormOp: input must be [n, c, h, w] with matching c");
  }
  const std::int64_t n = x.size(0);
  const std::int64_t c = x.size(1);
  const std::int64_t hw = x.size(2) * x.size(3);
  const std::int64_t cpg = c / groups_;

  Tensor y(x.shape());
  const float* xd = x.data();
  float* yd = y.data();
  for (std::int64_t b = 0; b < n; ++b) {
    for (int g = 0; g < groups_; ++g) {
      // Per-sample, per-group statistics over (channels-in-group x h x w).
      double s = 0.0;
      double s2 = 0.0;
      for (std::int64_t cc = 0; cc < cpg; ++cc) {
        const float* plane = xd + ((b * c) + g * cpg + cc) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          s += plane[i];
          s2 += static_cast<double>(plane[i]) * plane[i];
        }
      }
      const double denom = static_cast<double>(cpg * hw);
      const double mean = s / denom;
      const double var = std::max(0.0, s2 / denom - mean * mean);
      const auto inv = static_cast<float>(1.0 / std::sqrt(var + eps_));
      const auto mu = static_cast<float>(mean);
      for (std::int64_t cc = 0; cc < cpg; ++cc) {
        const std::int64_t ch = g * cpg + cc;
        const float gain = gamma_[ch] * inv;
        const float shift = beta_[ch] - mu * gain;
        const float* xp = xd + (b * c + ch) * hw;
        float* yp = yd + (b * c + ch) * hw;
        for (std::int64_t i = 0; i < hw; ++i) yp[i] = xp[i] * gain + shift;
      }
    }
  }
  return y;
}

}  // namespace fp8q
