#include "nn/conv.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace fp8q {

Conv2dOp::Conv2dOp(Tensor weight, Tensor bias, int stride, int padding, int groups)
    : weight_(std::move(weight)),
      bias_(std::move(bias)),
      stride_(stride),
      padding_(padding),
      groups_(groups) {
  if (weight_.dim() != 4) {
    throw std::invalid_argument("Conv2dOp: weight must be [oc, ic/g, kh, kw]");
  }
  if (stride_ < 1 || padding_ < 0 || groups_ < 1) {
    throw std::invalid_argument("Conv2dOp: bad stride/padding/groups");
  }
  if (weight_.size(0) % groups_ != 0) {
    throw std::invalid_argument("Conv2dOp: out channels not divisible by groups");
  }
  if (!bias_.empty() && (bias_.dim() != 1 || bias_.size(0) != weight_.size(0))) {
    throw std::invalid_argument("Conv2dOp: bias must be [oc]");
  }
}

std::vector<Tensor*> Conv2dOp::weights() {
  std::vector<Tensor*> ws = {&weight_};
  if (!bias_.empty()) ws.push_back(&bias_);
  return ws;
}

void Conv2dOp::set_packed_weight(std::shared_ptr<const PackedConvWeight> packed) {
  if (packed && (packed->oc != weight_.size(0) ||
                 packed->block != weight_.size(1) * weight_.size(2) * weight_.size(3))) {
    throw std::invalid_argument("Conv2dOp: packed weight dims mismatch");
  }
  packed_ = std::move(packed);
}

Tensor Conv2dOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("Conv2dOp: expects 1 input");
  const Tensor& x = inputs[0];
  if (x.dim() != 4) throw std::invalid_argument("Conv2dOp: input must be [n, c, h, w]");

  const std::int64_t n = x.size(0);
  const std::int64_t ic = x.size(1);
  const std::int64_t h = x.size(2);
  const std::int64_t w = x.size(3);
  const std::int64_t oc = weight_.size(0);
  const std::int64_t icg = weight_.size(1);
  const std::int64_t kh = weight_.size(2);
  const std::int64_t kw = weight_.size(3);
  if (ic != icg * groups_) throw std::invalid_argument("Conv2dOp: channel mismatch");

  const std::int64_t oh = (h + 2 * padding_ - kh) / stride_ + 1;
  const std::int64_t ow = (w + 2 * padding_ - kw) / stride_ + 1;
  if (oh < 1 || ow < 1) throw std::invalid_argument("Conv2dOp: output would be empty");

  Tensor y({n, oc, oh, ow});
  const float* xd = x.data();
  const float* wd = weight_.data();
  const float* bd = bias_.empty() ? nullptr : bias_.data();
  float* yd = y.data();

  // Packed path: same loops, but each plane's weights come from decoding
  // that output channel's codes into a scratch row (decode once per
  // channel per chunk, amortized over the oh*ow positions). The decoded
  // row is bitwise the fake-quantized weight row, and the tap accumulation
  // order below is untouched, so both paths produce identical bits.
  const PackedConvWeight* pw = packed_.get();
  kernel_counter_add(pw ? ObsKernelPath::kConvPacked : ObsKernelPath::kConvFp32, 1);
  TraceSpan span(pw ? "conv_packed" : "conv_fp32");
  const bool hists = pw && histograms_enabled();
  const std::uint64_t start_ns = hists ? obs_now_ns() : 0;

  const std::int64_t oc_per_group = oc / groups_;
  // Parallel over the n*oc output planes: each plane writes a disjoint
  // oh*ow block of y with a plane-local accumulator, so results match the
  // serial loop bit-for-bit. Grain targets ~kParallelGrainFlops
  // multiply-adds per chunk; the chained capped_cost keeps the five-factor
  // product from overflowing for huge shapes.
  const std::int64_t flops_per_plane = std::max<std::int64_t>(
      std::int64_t{1},
      capped_cost(capped_cost(capped_cost(capped_cost(oh, ow, kParallelGrainFlops), icg,
                                          kParallelGrainFlops),
                              kh, kParallelGrainFlops),
                  kw, kParallelGrainFlops));
  const std::int64_t grain =
      std::max<std::int64_t>(std::int64_t{1}, kParallelGrainFlops / flops_per_plane);
  const PackedKernelTable* kt = pw ? &packed_kernels(isa_tier()) : nullptr;
  parallel_for(0, n * oc, grain, [&](std::int64_t plane_lo, std::int64_t plane_hi) {
    // Decode (batch, out-channel) once per chunk and step incrementally;
    // the division leaves the plane loop entirely.
    std::int64_t b = plane_lo / oc;
    std::int64_t o = plane_lo - b * oc;
    std::vector<float> wdec;
    std::int64_t decoded_o = -1;
    for (std::int64_t plane = plane_lo; plane < plane_hi; ++plane) {
      const std::int64_t g = o / oc_per_group;
      const float bias_v = bd ? bd[o] : 0.0f;
      const float* wbase;
      if (pw != nullptr) {
        if (o != decoded_o) {
          wdec.resize(static_cast<std::size_t>(pw->block));
          kt->decode_mul(pw->codes.data() + o * pw->block,
                         pw->inv_scales[static_cast<std::size_t>(o)], wdec.data(),
                         pw->block, pw->kind);
          decoded_o = o;
        }
        wbase = wdec.data();
      } else {
        wbase = wd + o * icg * kh * kw;
      }
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        const std::int64_t iy0 = oy * stride_ - padding_;
        // Clamp the kernel window to the input once per output row /
        // column instead of bounds-testing every tap. Out-of-range taps
        // never contributed to the sum, so skipping them wholesale leaves
        // the in-range accumulation order -- and thus the result bits --
        // unchanged.
        const std::int64_t ky_lo = std::max<std::int64_t>(std::int64_t{0}, -iy0);
        const std::int64_t ky_hi = std::min<std::int64_t>(kh, h - iy0);
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float acc = bias_v;
          const std::int64_t ix0 = ox * stride_ - padding_;
          const std::int64_t kx_lo = std::max<std::int64_t>(std::int64_t{0}, -ix0);
          const std::int64_t kx_hi = std::min<std::int64_t>(kw, w - ix0);
          for (std::int64_t c = 0; c < icg; ++c) {
            const std::int64_t in_c = g * icg + c;
            const float* xplane = xd + ((b * ic + in_c) * h) * w;
            const float* wplane = wbase + (c * kh) * kw;
            for (std::int64_t ky = ky_lo; ky < ky_hi; ++ky) {
              const float* xrow = xplane + (iy0 + ky) * w + ix0;
              const float* wrow = wplane + ky * kw;
              for (std::int64_t kx = kx_lo; kx < kx_hi; ++kx) {
                acc += xrow[kx] * wrow[kx];
              }
            }
          }
          yd[((b * oc + o) * oh + oy) * ow + ox] = acc;
        }
      }
      if (++o == oc) {
        o = 0;
        ++b;
      }
    }
  });
  if (hists) {
    hist_record_named("kernel:conv_packed", static_cast<double>(obs_now_ns() - start_ns));
  }
  return y;
}

}  // namespace fp8q
