// A static dataflow graph of Ops with taps for quantization.
//
// Nodes are appended in topological order (each node's inputs must already
// exist). Execution walks the node list; two hooks let the quantization
// layer participate without the graph knowing about formats:
//   * input_tap: may replace a node's input tensor (fake-quantization of
//     activations at operator boundaries);
//   * output_tap: observes each node's output (range calibration).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "nn/op.h"

namespace fp8q {

class Graph {
 public:
  using NodeId = int;

  struct Node {
    std::string name;
    OpPtr op;                    ///< null for graph inputs
    std::vector<NodeId> inputs;  ///< producer node ids
    OpKind kind = OpKind::kInput;
  };

  /// Declares a graph input; returns its node id. Inputs are fed to
  /// forward() in declaration order.
  NodeId add_input(std::string name);

  /// Appends an op node consuming the given producers; returns its id.
  /// The last added node is the default output.
  NodeId add(std::string name, OpPtr op, std::vector<NodeId> inputs);

  void set_output(NodeId id);
  [[nodiscard]] NodeId output() const { return output_; }

  /// Runs the graph on the given input tensors (one per declared input)
  /// and returns the output node's tensor.
  [[nodiscard]] Tensor forward(std::span<const Tensor> inputs);
  [[nodiscard]] Tensor forward(const Tensor& input) { return forward({&input, 1}); }

  /// Hook replacing a node input before the op runs. Return std::nullopt to
  /// pass the producer's tensor through untouched (no copy).
  using InputTap =
      std::function<std::optional<Tensor>(NodeId node, int slot, const Tensor& value)>;
  /// Hook observing each node's freshly computed output.
  using OutputTap = std::function<void(NodeId node, const Tensor& value)>;

  void set_input_tap(InputTap tap) { input_tap_ = std::move(tap); }
  void set_output_tap(OutputTap tap) { output_tap_ = std::move(tap); }
  void clear_taps();

  /// Deep copy: every op (and its weights) is cloned, so the copy can be
  /// mutated, quantized and run concurrently with the original. Cloned
  /// weight tensors adopt the source's identity (Tensor::identity()), so
  /// quantizing a clone hits the weight cache warmed by a sibling. Taps
  /// are NOT copied -- they hold caller context bound to this graph.
  [[nodiscard]] Graph clone() const;

  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(NodeId id) { return nodes_[static_cast<size_t>(id)]; }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  [[nodiscard]] int input_count() const { return static_cast<int>(input_ids_.size()); }

  /// Node ids in execution order (== id order).
  [[nodiscard]] std::vector<NodeId> node_ids() const;

  /// Ids of nodes with a quantizable op kind.
  [[nodiscard]] std::vector<NodeId> quantizable_nodes() const;

  /// First and last *compute* nodes (paper section 3.1: first Conv / last
  /// Linear are kept in high precision for conv nets). Returns -1 if none.
  [[nodiscard]] NodeId first_compute_node() const;
  [[nodiscard]] NodeId last_compute_node() const;

  /// Total parameter count across all ops.
  [[nodiscard]] std::int64_t param_count() const;

  /// Model size in MB assuming FP32 storage (Figure 5 size buckets).
  [[nodiscard]] double size_mb() const {
    return static_cast<double>(param_count()) * 4.0 / (1024.0 * 1024.0);
  }

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> input_ids_;
  NodeId output_ = -1;
  InputTap input_tap_;
  OutputTap output_tap_;
};

}  // namespace fp8q
