// Packed FP8 GEMM/conv kernels: compute directly on 8-bit weight codes.
//
// The quantization pipeline used to dequantize every weight into a full
// FP32 tensor before calling the blocked matmul, so the 4x memory win of
// the FP8 formats never reached the hot path. These kernels keep the
// weight as uint8 codes and decode in-register inside the microkernel --
// one code byte streams in where four float bytes used to.
//
// Memory layout (docs/KERNELS.md has diagrams):
//
//   PackedWeightMatrix  GEMM operand for y = x * W^T (+ bias). Codes are
//     repacked k-major / channel-last: codes[kk * n + j] is output channel
//     j at reduction index kk, so the microkernel loads a contiguous run
//     of 8/16 output channels per reduction step and broadcasts one
//     activation. inv_scales[j] = 1 / scale_j is precomputed once.
//   PackedConvWeight    Conv2d operand; codes stay in the op's native
//     [oc][ic/g * kh * kw] order with inv_scales per output channel. The
//     conv forward decodes one output channel's taps per (image, plane)
//     into a scratch row, then runs the legacy tap loops over it.
//
// Microkernel contract (every tier, every thread count):
//
//   y[r][j] = bias[j] (+) sum_kk x[r][kk] * (decode(code[kk][j]) * inv[j])
//
// with the kk-summation strictly ascending per output element, the weight
// produced by exactly one decode multiply and one scale multiply, and the
// sum accumulated with separate mul+add (fp contraction is disabled on
// every kernel TU). decode() is bit-identical across tiers -- the LUT and
// the arithmetic decode agree on all 256 codes (fp8/packed.h) -- so every
// tier produces bit-identical outputs, and because decode(code) * inv is
// bitwise the fake-quantized weight, the packed path also matches the
// dequantize-to-FP32 path bit for bit (the bit-exactness policy in
// docs/KERNELS.md).
//
// Dispatch: packed_kernels(tier) returns a per-tier function table;
// callers index it with isa_tier() (core/cpu_dispatch.h). The kNative
// table is compiled in arch-specific TUs (packed_gemm_avx2.cpp,
// packed_gemm_neon.cpp) and falls back to kBatched when the CPU or the
// build lacks a native path.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cpu_dispatch.h"
#include "fp8/packed.h"
#include "tensor/tensor.h"

namespace fp8q {

/// GEMM weight operand: k-major codes + per-output-channel reciprocal
/// scales (layout in the file comment).
struct PackedWeightMatrix {
  std::int64_t k = 0;                ///< reduction depth (in_features)
  std::int64_t n = 0;                ///< output channels (out_features)
  Fp8Kind kind = Fp8Kind::E4M3;
  std::vector<std::uint8_t> codes;   ///< [k][n]: codes[kk * n + j]
  std::vector<float> inv_scales;     ///< [n]: 1 / scale_j

  /// Bytes held (codes + scales), vs k * n * 4 for the FP32 weight.
  [[nodiscard]] std::size_t storage_bytes() const {
    return codes.size() + inv_scales.size() * sizeof(float);
  }
};

/// Builds the GEMM operand from a per-channel packed [n, k] weight
/// (LinearOp's [out, in] layout; scales on axis 0). Per-tensor packings
/// broadcast their single scale.
[[nodiscard]] PackedWeightMatrix pack_gemm_weight(const PackedFp8Tensor& packed);

/// Conv2d weight operand: codes in the op's native layout + per-oc
/// reciprocal scales.
struct PackedConvWeight {
  std::int64_t oc = 0;               ///< output channels
  std::int64_t block = 0;            ///< taps per channel: (ic/g) * kh * kw
  Fp8Kind kind = Fp8Kind::E4M3;
  std::vector<std::uint8_t> codes;   ///< [oc][block], same order as the weight
  std::vector<float> inv_scales;     ///< [oc]: 1 / scale_o

  [[nodiscard]] std::size_t storage_bytes() const {
    return codes.size() + inv_scales.size() * sizeof(float);
  }
};

/// Builds the conv operand from a per-channel packed [oc, ic/g, kh, kw]
/// weight (scales on axis 0).
[[nodiscard]] PackedConvWeight pack_conv_weight(const PackedFp8Tensor& packed);

/// Per-tier kernel entry points (one table per IsaTier; see file comment
/// for the bit-exactness contract they all satisfy).
struct PackedKernelTable {
  /// Decodes `count` codes sharing one reciprocal scale:
  /// out[i] = decode(codes[i]) * inv. Used for conv weight rows and
  /// weight-cache hits, where the scale is constant per channel.
  void (*decode_mul)(const std::uint8_t* codes, float inv, float* out, std::int64_t count,
                     Fp8Kind kind);

  /// The GEMM microkernel: `rows` rows of x [rows, k] against w, writing
  /// y [rows, n]. bias is [n] or nullptr. Single-threaded over its slice;
  /// packed_gemm_forward parallelizes across row chunks.
  void (*gemm)(const float* x, const PackedWeightMatrix& w, const float* bias, float* y,
               std::int64_t rows);
};

/// Function table for one tier. kNative falls back to the batched table
/// when no native path exists (missing CPU feature or non-SIMD build).
[[nodiscard]] const PackedKernelTable& packed_kernels(IsaTier tier);

/// Parallel GEMM driver: row-partitioned with the same grain policy as
/// LinearOp, dispatching to packed_kernels(isa_tier()).
void packed_gemm_forward(const float* x, const PackedWeightMatrix& w, const float* bias,
                         float* y, std::int64_t rows);

/// A [..., m, k] times the packed weight's decode as B^T ([k, n]) ->
/// [..., m, n]. The packed counterpart of unpacking to FP32 and calling
/// MatMulOp with transpose_b; bit-identical to that path.
[[nodiscard]] Tensor packed_matmul(const Tensor& a, const PackedWeightMatrix& w);

namespace detail {
/// Defined by the arch TU compiled into this build (AVX2 or NEON).
[[nodiscard]] const PackedKernelTable& packed_kernels_native_impl();
}  // namespace detail

}  // namespace fp8q
