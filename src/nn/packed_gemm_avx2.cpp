// kNative tier for x86-64: AVX2 packed-FP8 decode + GEMM.
//
// Compiled with -mavx2 (and NOT -mfma) for this TU only; entered only
// after the runtime probe confirms AVX2 (core/cpu_dispatch.h). Every
// multiply/add is an explicit _mm256_mul_ps / _mm256_add_ps, mirroring
// the scalar tier's mul+add per element, so results are bit-identical to
// the reference at every shape and thread count (docs/KERNELS.md).
#include "nn/packed_gemm.h"

#if defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>

namespace fp8q {
namespace {

/// Broadcast decode constants for one format, mirroring Fp8DecodeSpec.
struct DecodeCtx {
  __m256i mask7;       ///< 0x7F magnitude mask
  __m256i mask_sign;   ///< 0x80 sign bit
  __m128i man_shift;   ///< 23 - man_bits, as a shift count
  __m256i exp_add;     ///< (127 - bias) << 23: integer exponent rebias
  __m256 sub_scale;    ///< 2^(1 - bias - man_bits)
  __m256i sub_lo;      ///< 1 << man_bits: sub_lo > mag  <=>  subnormal
  __m256i special_m1;  ///< special_lo - 1: mag > this  <=>  mag >= special_lo
  __m256i special_lo;  ///< mag > this  <=>  NaN range (IEEE family)
  __m256i inf_bits;    ///< 0x7F800000
  __m256i nan_bits;    ///< 0x7FC00000 (canonical unsigned quiet NaN)
  bool ieee;
};

DecodeCtx make_ctx(Fp8Kind kind) {
  const Fp8DecodeSpec& spec = fp8_decode_spec(kind);
  DecodeCtx d;
  d.mask7 = _mm256_set1_epi32(0x7F);
  d.mask_sign = _mm256_set1_epi32(0x80);
  d.man_shift = _mm_cvtsi32_si128(static_cast<int>(spec.man_shift));
  d.exp_add = _mm256_set1_epi32(static_cast<int>(spec.exp_add));
  d.sub_scale = _mm256_set1_ps(spec.sub_scale);
  d.sub_lo = _mm256_set1_epi32(static_cast<int>(spec.sub_lo));
  d.special_m1 = _mm256_set1_epi32(static_cast<int>(spec.special_lo) - 1);
  d.special_lo = _mm256_set1_epi32(static_cast<int>(spec.special_lo));
  d.inf_bits = _mm256_set1_epi32(0x7F800000);
  d.nan_bits = _mm256_set1_epi32(0x7FC00000);
  d.ieee = spec.ieee;
  return d;
}

/// Decodes 8 consecutive codes to float32 -- the 8-lane transcription of
/// fp8_decode_bits (fp8/packed.h): integer exponent rebias for normal
/// lanes, exact convert + power-of-two multiply for subnormal lanes (no
/// denormal float32 operand in either, so no FP assists), sign OR, then
/// compare-select the Inf/NaN lanes.
inline __m256 decode8(const std::uint8_t* codes, const DecodeCtx& d) {
  const __m256i c =
      _mm256_cvtepu8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes)));
  const __m256i mag = _mm256_and_si256(c, d.mask7);
  const __m256i sgn = _mm256_slli_epi32(_mm256_and_si256(c, d.mask_sign), 24);
  const __m256i norm =
      _mm256_add_epi32(_mm256_sll_epi32(mag, d.man_shift), d.exp_add);
  const __m256 sub = _mm256_mul_ps(_mm256_cvtepi32_ps(mag), d.sub_scale);
  const __m256i is_sub = _mm256_cmpgt_epi32(d.sub_lo, mag);
  const __m256i val = _mm256_blendv_epi8(norm, _mm256_castps_si256(sub), is_sub);
  __m256i bits = _mm256_or_si256(val, sgn);
  const __m256i special = _mm256_cmpgt_epi32(mag, d.special_m1);
  const __m256i is_nan = d.ieee ? _mm256_cmpgt_epi32(mag, d.special_lo) : special;
  const __m256i spec_bits =
      _mm256_blendv_epi8(_mm256_or_si256(sgn, d.inf_bits), d.nan_bits, is_nan);
  bits = _mm256_blendv_epi8(bits, spec_bits, special);
  return _mm256_castsi256_ps(bits);
}

void decode_mul_avx2(const std::uint8_t* codes, float inv, float* out, std::int64_t count,
                     Fp8Kind kind) {
  const DecodeCtx d = make_ctx(kind);
  const __m256 invv = _mm256_set1_ps(inv);
  std::int64_t i = 0;
  for (; i + 8 <= count; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(decode8(codes + i, d), invv));
  }
  const Fp8DecodeSpec& spec = fp8_decode_spec(kind);
  for (; i < count; ++i) {
    out[i] = std::bit_cast<float>(fp8_decode_bits(codes[i], spec)) * inv;
  }
}

void gemm_avx2(const float* x, const PackedWeightMatrix& w, const float* bias, float* y,
               std::int64_t rows) {
  const DecodeCtx d = make_ctx(w.kind);
  const Fp8DecodeSpec& spec = fp8_decode_spec(w.kind);
  const std::int64_t n = w.n;
  const std::int64_t k = w.k;
  const std::uint8_t* codes = w.codes.data();
  const float* invs = w.inv_scales.data();
  std::int64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* x0 = x + (r + 0) * k;
    const float* x1 = x + (r + 1) * k;
    const float* x2 = x + (r + 2) * k;
    const float* x3 = x + (r + 3) * k;
    std::int64_t j = 0;
    // 4 rows x 8 output channels: decode each 8-channel weight strip once
    // per reduction step and broadcast four activations against it.
    for (; j + 8 <= n; j += 8) {
      const __m256 inv = _mm256_loadu_ps(invs + j);
      const __m256 binit = bias ? _mm256_loadu_ps(bias + j) : _mm256_setzero_ps();
      __m256 acc0 = binit;
      __m256 acc1 = binit;
      __m256 acc2 = binit;
      __m256 acc3 = binit;
      const std::uint8_t* cp = codes + j;
      for (std::int64_t kk = 0; kk < k; ++kk, cp += n) {
        const __m256 wv = _mm256_mul_ps(decode8(cp, d), inv);
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(x0[kk]), wv));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(x1[kk]), wv));
        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(x2[kk]), wv));
        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(x3[kk]), wv));
      }
      _mm256_storeu_ps(y + (r + 0) * n + j, acc0);
      _mm256_storeu_ps(y + (r + 1) * n + j, acc1);
      _mm256_storeu_ps(y + (r + 2) * n + j, acc2);
      _mm256_storeu_ps(y + (r + 3) * n + j, acc3);
    }
    for (; j < n; ++j) {
      const float inv = invs[j];
      float acc0 = bias ? bias[j] : 0.0f;
      float acc1 = acc0;
      float acc2 = acc0;
      float acc3 = acc0;
      const std::uint8_t* cp = codes + j;
      for (std::int64_t kk = 0; kk < k; ++kk, cp += n) {
        const float wv = std::bit_cast<float>(fp8_decode_bits(*cp, spec)) * inv;
        acc0 += x0[kk] * wv;
        acc1 += x1[kk] * wv;
        acc2 += x2[kk] * wv;
        acc3 += x3[kk] * wv;
      }
      y[(r + 0) * n + j] = acc0;
      y[(r + 1) * n + j] = acc1;
      y[(r + 2) * n + j] = acc2;
      y[(r + 3) * n + j] = acc3;
    }
  }
  for (; r < rows; ++r) {
    const float* xr = x + r * k;
    float* yr = y + r * n;
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 inv = _mm256_loadu_ps(invs + j);
      __m256 acc = bias ? _mm256_loadu_ps(bias + j) : _mm256_setzero_ps();
      const std::uint8_t* cp = codes + j;
      for (std::int64_t kk = 0; kk < k; ++kk, cp += n) {
        const __m256 wv = _mm256_mul_ps(decode8(cp, d), inv);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(xr[kk]), wv));
      }
      _mm256_storeu_ps(yr + j, acc);
    }
    for (; j < n; ++j) {
      const float inv = invs[j];
      float acc = bias ? bias[j] : 0.0f;
      const std::uint8_t* cp = codes + j;
      for (std::int64_t kk = 0; kk < k; ++kk, cp += n) {
        const float wv = std::bit_cast<float>(fp8_decode_bits(*cp, spec)) * inv;
        acc += xr[kk] * wv;
      }
      yr[j] = acc;
    }
  }
}

constexpr PackedKernelTable kAvx2Table{decode_mul_avx2, gemm_avx2};

}  // namespace

namespace detail {

const PackedKernelTable& packed_kernels_native_impl() { return kAvx2Table; }

}  // namespace detail
}  // namespace fp8q

#endif  // defined(__x86_64__)
