#include "nn/shape_ops.h"

#include <stdexcept>

namespace fp8q {

Tensor ReshapeOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("ReshapeOp: expects 1 input");
  Shape shape = target_;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == 0) {
      if (static_cast<int>(i) >= inputs[0].dim()) {
        throw std::invalid_argument("ReshapeOp: passthrough axis beyond input rank");
      }
      shape[i] = inputs[0].size(static_cast<int>(i));
    }
  }
  return inputs[0].reshape(std::move(shape));
}

Tensor TransposeLastTwoOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("TransposeOp: expects 1 input");
  const Tensor& x = inputs[0];
  if (x.dim() < 2) throw std::invalid_argument("TransposeOp: rank must be >= 2");
  const std::int64_t m = x.size(-2);
  const std::int64_t n = x.size(-1);
  const std::int64_t batch = x.numel() / (m * n);

  Shape out_shape = x.shape();
  std::swap(out_shape[out_shape.size() - 2], out_shape[out_shape.size() - 1]);
  Tensor y(std::move(out_shape));
  const float* xd = x.data();
  float* yd = y.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* xb = xd + b * m * n;
    float* yb = yd + b * m * n;
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) yb[j * m + i] = xb[i * n + j];
    }
  }
  return y;
}

Tensor GlobalAvgPoolOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("GlobalAvgPoolOp: expects 1 input");
  const Tensor& x = inputs[0];
  if (x.dim() != 4) throw std::invalid_argument("GlobalAvgPoolOp: input must be [n, c, h, w]");
  const std::int64_t n = x.size(0);
  const std::int64_t c = x.size(1);
  const std::int64_t hw = x.size(2) * x.size(3);
  Tensor y({n, c});
  const float* xd = x.data();
  float* yd = y.data();
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = xd + (b * c + ch) * hw;
      double s = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) s += plane[i];
      yd[b * c + ch] = static_cast<float>(s / static_cast<double>(hw));
    }
  }
  return y;
}

Tensor MaxPool2x2Op::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("MaxPool2x2Op: expects 1 input");
  const Tensor& x = inputs[0];
  if (x.dim() != 4) throw std::invalid_argument("MaxPool2x2Op: input must be [n, c, h, w]");
  const std::int64_t n = x.size(0);
  const std::int64_t c = x.size(1);
  const std::int64_t h = x.size(2);
  const std::int64_t w = x.size(3);
  if (h % 2 != 0 || w % 2 != 0) {
    throw std::invalid_argument("MaxPool2x2Op: spatial dims must be even");
  }
  const std::int64_t oh = h / 2;
  const std::int64_t ow = w / 2;
  Tensor y({n, c, oh, ow});
  const float* xd = x.data();
  float* yd = y.data();
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* xp = xd + (b * c + ch) * h * w;
      float* yp = yd + (b * c + ch) * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const std::int64_t iy = oy * 2;
          const std::int64_t ix = ox * 2;
          float m = xp[iy * w + ix];
          m = std::max(m, xp[iy * w + ix + 1]);
          m = std::max(m, xp[(iy + 1) * w + ix]);
          m = std::max(m, xp[(iy + 1) * w + ix + 1]);
          yp[oy * ow + ox] = m;
        }
      }
    }
  }
  return y;
}

}  // namespace fp8q

namespace fp8q {

Tensor Upsample2xOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 1) throw std::invalid_argument("Upsample2xOp: expects 1 input");
  const Tensor& x = inputs[0];
  if (x.dim() != 4) throw std::invalid_argument("Upsample2xOp: input must be [n, c, h, w]");
  const std::int64_t n = x.size(0);
  const std::int64_t c = x.size(1);
  const std::int64_t h = x.size(2);
  const std::int64_t w = x.size(3);
  Tensor y({n, c, 2 * h, 2 * w});
  const float* xd = x.data();
  float* yd = y.data();
  for (std::int64_t p = 0; p < n * c; ++p) {
    const float* xp = xd + p * h * w;
    float* yp = yd + p * 4 * h * w;
    for (std::int64_t i = 0; i < h; ++i) {
      for (std::int64_t j = 0; j < w; ++j) {
        const float v = xp[i * w + j];
        yp[(2 * i) * 2 * w + 2 * j] = v;
        yp[(2 * i) * 2 * w + 2 * j + 1] = v;
        yp[(2 * i + 1) * 2 * w + 2 * j] = v;
        yp[(2 * i + 1) * 2 * w + 2 * j + 1] = v;
      }
    }
  }
  return y;
}

}  // namespace fp8q

namespace fp8q {

Tensor ConcatChannelsOp::forward(std::span<const Tensor> inputs) {
  if (inputs.size() != 2) throw std::invalid_argument("ConcatChannelsOp: expects 2 inputs");
  const Tensor& a = inputs[0];
  const Tensor& b = inputs[1];
  if (a.dim() < 2 || a.dim() != b.dim()) {
    throw std::invalid_argument("ConcatChannelsOp: rank mismatch");
  }
  for (int i = 0; i < a.dim(); ++i) {
    if (i != 1 && a.size(i) != b.size(i)) {
      throw std::invalid_argument("ConcatChannelsOp: non-channel axes must match");
    }
  }
  Shape out_shape = a.shape();
  out_shape[1] = a.size(1) + b.size(1);
  Tensor y(std::move(out_shape));

  const std::int64_t n = a.size(0);
  std::int64_t inner = 1;
  for (int i = 2; i < a.dim(); ++i) inner *= a.size(i);
  const std::int64_t ablk = a.size(1) * inner;
  const std::int64_t bblk = b.size(1) * inner;
  const float* ad = a.data();
  const float* bd = b.data();
  float* yd = y.data();
  for (std::int64_t s = 0; s < n; ++s) {
    std::copy(ad + s * ablk, ad + (s + 1) * ablk, yd + s * (ablk + bblk));
    std::copy(bd + s * bblk, bd + (s + 1) * bblk, yd + s * (ablk + bblk) + ablk);
  }
  return y;
}

}  // namespace fp8q
