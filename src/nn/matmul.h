// MatMul and BatchMatMul between two graph tensors (e.g. attention scores
// and context products). Both operands come from the graph, so under the
// extended scheme *both* inputs are quantized -- which also means there is
// no persistent weight to attach packed codes to; MatMulOp always runs the
// FP32 blocked kernel. For a matmul against a *stored* FP8 operand, use
// packed_matmul (nn/packed_gemm.h), which consumes the 8-bit codes
// directly and is bit-identical to unpacking + MatMulOp with transpose_b.
#pragma once

#include "nn/op.h"

namespace fp8q {

class MatMulOp final : public Op {
 public:
  /// If `batched`, the op reports kind BatchMatMul; the kernel is shared.
  /// `transpose_b` computes A * B^T over the last two axes.
  explicit MatMulOp(bool batched = false, bool transpose_b = false);

  /// A [..., m, k] x B [..., k, n] -> [..., m, n]. Leading batch dims must
  /// match elementwise.
  Tensor forward(std::span<const Tensor> inputs) override;

  [[nodiscard]] OpKind kind() const override {
    return batched_ ? OpKind::kBatchMatMul : OpKind::kMatMul;
  }
  [[nodiscard]] int arity() const override { return 2; }
  [[nodiscard]] OpPtr clone() const override { return std::make_unique<MatMulOp>(*this); }

 private:
  bool batched_;
  bool transpose_b_;
};

}  // namespace fp8q
