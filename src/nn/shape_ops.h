// Shape manipulation and pooling operators.
#pragma once

#include "nn/op.h"

namespace fp8q {

/// Reshape to a fixed target shape; one axis may be -1 (inferred), and axis
/// value 0 copies the input's axis at that position (batch passthrough).
class ReshapeOp final : public Op {
 public:
  explicit ReshapeOp(Shape target) : target_(std::move(target)) {}

  Tensor forward(std::span<const Tensor> inputs) override;
  [[nodiscard]] OpKind kind() const override { return OpKind::kReshape; }

  [[nodiscard]] OpPtr clone() const override { return std::make_unique<ReshapeOp>(*this); }

 private:
  Shape target_;
};

/// Swaps the last two axes (used to build attention from MatMul primitives).
class TransposeLastTwoOp final : public Op {
 public:
  Tensor forward(std::span<const Tensor> inputs) override;
  [[nodiscard]] OpKind kind() const override { return OpKind::kTranspose; }
  [[nodiscard]] OpPtr clone() const override { return std::make_unique<TransposeLastTwoOp>(*this); }
};

/// Global average pooling over the spatial dims: [n, c, h, w] -> [n, c].
class GlobalAvgPoolOp final : public Op {
 public:
  Tensor forward(std::span<const Tensor> inputs) override;
  [[nodiscard]] OpKind kind() const override { return OpKind::kAvgPool; }
  [[nodiscard]] OpPtr clone() const override { return std::make_unique<GlobalAvgPoolOp>(*this); }
};

/// 2x2 stride-2 max pooling: [n, c, h, w] -> [n, c, h/2, w/2].
class MaxPool2x2Op final : public Op {
 public:
  Tensor forward(std::span<const Tensor> inputs) override;
  [[nodiscard]] OpKind kind() const override { return OpKind::kMaxPool; }
  [[nodiscard]] OpPtr clone() const override { return std::make_unique<MaxPool2x2Op>(*this); }
};

/// Concatenates two tensors along the channel axis (axis 1):
/// [n, c1, ...] + [n, c2, ...] -> [n, c1+c2, ...]. U-Net skip connections.
class ConcatChannelsOp final : public Op {
 public:
  Tensor forward(std::span<const Tensor> inputs) override;
  [[nodiscard]] OpKind kind() const override { return OpKind::kConcat; }
  [[nodiscard]] int arity() const override { return 2; }
  [[nodiscard]] OpPtr clone() const override { return std::make_unique<ConcatChannelsOp>(*this); }
};

/// Nearest-neighbour 2x upsampling: [n, c, h, w] -> [n, c, 2h, 2w]
/// (U-Net decoder path). Reported as a Reshape-class (never quantized) op.
class Upsample2xOp final : public Op {
 public:
  Tensor forward(std::span<const Tensor> inputs) override;
  [[nodiscard]] OpKind kind() const override { return OpKind::kReshape; }
  [[nodiscard]] OpPtr clone() const override { return std::make_unique<Upsample2xOp>(*this); }
};

}  // namespace fp8q
