// Fully-connected layer: y = x W^T + b.
#pragma once

#include "nn/op.h"

namespace fp8q {

class LinearOp final : public Op {
 public:
  /// `weight` is [out_features, in_features]; `bias` is [out_features] or
  /// empty for no bias.
  LinearOp(Tensor weight, Tensor bias);

  /// Input [..., in_features] -> output [..., out_features].
  Tensor forward(std::span<const Tensor> inputs) override;

  [[nodiscard]] OpKind kind() const override { return OpKind::kLinear; }
  [[nodiscard]] std::vector<Tensor*> weights() override;
  [[nodiscard]] OpPtr clone() const override { return std::make_unique<LinearOp>(*this); }

  [[nodiscard]] std::int64_t in_features() const { return weight_.size(1); }
  [[nodiscard]] std::int64_t out_features() const { return weight_.size(0); }
  [[nodiscard]] Tensor& weight() { return weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }

 private:
  Tensor weight_;  ///< [out, in]
  Tensor bias_;    ///< [out] or empty
};

}  // namespace fp8q
