// Fully-connected layer: y = x W^T + b.
//
// Two forward paths (docs/KERNELS.md):
//   * FP32: the blocked row-kernel over the weight_ tensor -- always
//     available, and what runs for unquantized graphs.
//   * Packed: when a PackedWeightMatrix is attached (set_packed_weight,
//     done by QuantizedGraph::prepare when FP8Q_PACKED is on), forward
//     streams the 8-bit weight codes through packed_gemm_forward and never
//     touches weight_. Bit-identical to running the FP32 path on the
//     fake-quantized weight, at every ISA tier and thread count.
#pragma once

#include <memory>

#include "nn/op.h"
#include "nn/packed_gemm.h"

namespace fp8q {

class LinearOp final : public Op {
 public:
  /// `weight` is [out_features, in_features]; `bias` is [out_features] or
  /// empty for no bias.
  LinearOp(Tensor weight, Tensor bias);

  /// Input [..., in_features] -> output [..., out_features]. Dispatches to
  /// the packed kernel when a packed weight is attached (file comment).
  Tensor forward(std::span<const Tensor> inputs) override;

  [[nodiscard]] OpKind kind() const override { return OpKind::kLinear; }
  [[nodiscard]] std::vector<Tensor*> weights() override;
  [[nodiscard]] OpPtr clone() const override { return std::make_unique<LinearOp>(*this); }

  [[nodiscard]] std::int64_t in_features() const { return weight_.size(1); }
  [[nodiscard]] std::int64_t out_features() const { return weight_.size(0); }
  [[nodiscard]] Tensor& weight() { return weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }

  /// Attaches packed 8-bit weight codes; subsequent forwards compute on
  /// them directly. The operand is shared and immutable (clones share it).
  /// Throws if its dims don't match the op's weight.
  void set_packed_weight(std::shared_ptr<const PackedWeightMatrix> packed);
  /// Detaches the packed weight; forward returns to the FP32 path.
  void clear_packed_weight() { packed_.reset(); }
  [[nodiscard]] bool has_packed_weight() const { return packed_ != nullptr; }

 private:
  Tensor weight_;  ///< [out, in]
  Tensor bias_;    ///< [out] or empty
  std::shared_ptr<const PackedWeightMatrix> packed_;  ///< nullptr = FP32 path
};

}  // namespace fp8q
