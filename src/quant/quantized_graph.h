// QuantizedGraph: the end-to-end post-training quantization workflow of
// paper Figure 2 applied to one Graph.
//
// prepare() runs the pipeline:
//   1. (NLP, optional) SmoothQuant statistics pass + weight folding
//   2. per-channel weight fake-quantization (originals backed up)
//   3. static range calibration of activations (skipped for E5M2 direct
//      quantization and for dynamic mode)
//   4. (CV, optional) BatchNorm calibration through the quantized model
// forward() then executes the graph with activations snapped onto the
// configured grid at every covered operator boundary.
#pragma once

#include <map>
#include <set>
#include <utility>

#include "nn/graph.h"
#include "quant/observer.h"
#include "quant/quantizer.h"

namespace fp8q {

/// Per-model quantization configuration: the scheme plus model-level
/// knobs (CNN exceptions, tuner-driven fallbacks).
struct ModelQuantConfig {
  SchemeConfig scheme;
  bool is_cnn = false;  ///< enables first/last exception and BN calibration
  /// Individual nodes forced to FP32 (accuracy-driven tuning, A.1).
  std::set<Graph::NodeId> fallback_nodes;
  /// Whole op kinds forced to FP32.
  std::set<OpKind> fallback_kinds;
  /// Re-estimate BatchNorm statistics through the quantized network using
  /// this many calibration batches (0 = disabled; paper recommends 3K
  /// samples; section 4.3.1).
  int bn_calibration_batches = 0;
};

class QuantizedGraph {
 public:
  /// The graph must outlive this object. Weights are modified in place
  /// during prepare() and restored by restore_weights() / the destructor.
  QuantizedGraph(Graph* graph, ModelQuantConfig config);
  ~QuantizedGraph();

  QuantizedGraph(const QuantizedGraph&) = delete;
  QuantizedGraph& operator=(const QuantizedGraph&) = delete;

  /// Runs the PTQ pipeline on a calibration set. Each element holds one
  /// batch of graph inputs (size == graph input count).
  void prepare(std::span<const std::vector<Tensor>> calib_batches);

  /// Convenience for single-input graphs.
  void prepare(std::span<const Tensor> calib_batches);

  /// Quantized inference.
  [[nodiscard]] Tensor forward(std::span<const Tensor> inputs);
  [[nodiscard]] Tensor forward(const Tensor& input) { return forward({&input, 1}); }

  /// Restores the FP32 weights (prepare() may be called again afterwards,
  /// e.g. with a different scheme).
  void restore_weights();

  [[nodiscard]] const ModelQuantConfig& config() const { return config_; }
  [[nodiscard]] bool prepared() const { return prepared_; }

  /// True if the node participates in quantization under this config.
  [[nodiscard]] bool node_quantized(Graph::NodeId id) const {
    return quantized_nodes_.contains(id);
  }
  [[nodiscard]] const std::set<Graph::NodeId>& quantized_nodes() const {
    return quantized_nodes_;
  }

  /// Calibrated clip magnitude for a static activation (testing/tuning).
  /// Returns 0 if the slot has no static parameters.
  [[nodiscard]] float activation_clip(Graph::NodeId id, int slot) const;

  /// Parameter-weighted fraction of compute operators running quantized --
  /// the efficiency axis of the tuner's accuracy/performance trade-off
  /// (Appendix A.1: "the more operators converted to low precision, the
  /// worse the precision"). 1.0 = every compute op quantized.
  [[nodiscard]] double quantized_compute_fraction() const;

 private:
  void select_quantized_nodes();
  void run_smoothquant(std::span<const std::vector<Tensor>> calib_batches);
  void quantize_weights();
  void calibrate_activations(std::span<const std::vector<Tensor>> calib_batches);
  void calibrate_batchnorm(std::span<const std::vector<Tensor>> calib_batches);

  /// True if input `slot` of node `id` should be fake-quantized
  /// (Embedding indices are never quantized).
  [[nodiscard]] bool slot_quantized(Graph::NodeId id, int slot) const;

  /// The fake-quant input tap used for quantized inference.
  [[nodiscard]] std::optional<Tensor> quantize_input(Graph::NodeId id, int slot,
                                                     const Tensor& value);

  Graph* graph_;
  ModelQuantConfig config_;
  bool prepared_ = false;

  std::set<Graph::NodeId> quantized_nodes_;
  std::map<Graph::NodeId, std::vector<Tensor>> weight_backup_;
  std::map<std::pair<Graph::NodeId, int>, Observer> observers_;
  std::map<std::pair<Graph::NodeId, int>, QuantParams> static_params_;
  std::map<std::pair<Graph::NodeId, int>, float> clips_;
  std::map<Graph::NodeId, std::vector<float>> smooth_factors_;  ///< per Linear node
};

}  // namespace fp8q
