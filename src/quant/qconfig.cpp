#include "quant/qconfig.h"

#include <stdexcept>

namespace fp8q {

std::string_view to_string(DType dtype) {
  switch (dtype) {
    case DType::kFP32: return "FP32";
    case DType::kE5M2: return "E5M2";
    case DType::kE4M3: return "E4M3";
    case DType::kE3M4: return "E3M4";
    case DType::kINT8: return "INT8";
  }
  return "Unknown";
}

bool is_fp8(DType dtype) {
  return dtype == DType::kE5M2 || dtype == DType::kE4M3 || dtype == DType::kE3M4;
}

Fp8Kind fp8_kind(DType dtype) {
  switch (dtype) {
    case DType::kE5M2: return Fp8Kind::E5M2;
    case DType::kE4M3: return Fp8Kind::E4M3;
    case DType::kE3M4: return Fp8Kind::E3M4;
    default:
      throw std::invalid_argument("fp8_kind: not an FP8 dtype");
  }
}

const FormatSpec& fp8_spec(DType dtype) { return format_spec(fp8_kind(dtype)); }

std::string_view to_string(CalibMethod method) {
  switch (method) {
    case CalibMethod::kAbsMax: return "max";
    case CalibMethod::kPercentile: return "percentile";
    case CalibMethod::kKlDivergence: return "kl";
    case CalibMethod::kMseSweep: return "mse";
  }
  return "unknown";
}

std::string SchemeConfig::label() const {
  std::string s(to_string(act_dtype));
  if (weight_dtype != act_dtype) {
    s += "w";
    s += to_string(weight_dtype);
  }
  if (act_dtype == DType::kE5M2) {
    s += "/direct";
  } else {
    s += dynamic_activations ? "/dynamic" : "/static";
  }
  return s;
}

SchemeConfig standard_fp8_scheme(DType fmt, bool dynamic) {
  if (!is_fp8(fmt)) throw std::invalid_argument("standard_fp8_scheme: fmt must be FP8");
  SchemeConfig cfg;
  cfg.act_dtype = fmt;
  cfg.weight_dtype = fmt;
  // E5M2 uses direct quantization: no range calibration, no dynamic mode
  // (paper section 3: "E5M2 uses direct quantization").
  cfg.dynamic_activations = fmt == DType::kE5M2 ? false : dynamic;
  return cfg;
}

SchemeConfig mixed_fp8_scheme() {
  SchemeConfig cfg;
  cfg.act_dtype = DType::kE4M3;
  cfg.weight_dtype = DType::kE3M4;
  return cfg;
}

SchemeConfig int8_scheme(bool dynamic) {
  SchemeConfig cfg;
  cfg.act_dtype = DType::kINT8;
  cfg.weight_dtype = DType::kINT8;
  cfg.dynamic_activations = dynamic;
  return cfg;
}

}  // namespace fp8q
