// Quantization configuration vocabulary: data types, granularity,
// calibration methods and the whole-model scheme description.
//
// A SchemeConfig is one column of paper Table 2 -- the complete recipe
// for quantizing a model. The paper's two recipes map onto it directly:
//
//   standard scheme (section 3.1, standard_fp8_scheme): one FP8 format
//   for weights and activations, per-channel weight scales, per-tensor
//   static activation scales from absmax calibration, compute ops only
//   (Linear/MatMul/Conv), CNN first-conv/last-FC kept in FP32.
//
//   extended scheme (section 3.2): everything the standard scheme leaves
//   on the table, each behind its own flag so the ablations can toggle
//   them independently -- quantize_extended_ops (LayerNorm/BatchNorm/
//   Add/Mul coverage), dynamic_activations (Table 6), mixed formats
//   (mixed_fp8_scheme: E4M3 activations + E3M4 weights), smoothquant
//   (NLP outlier smoothing), per_token_activations (ablation only).
//
// The auto-tuner (tune/tuner.h) searches over exactly this space: its
// ladder arms are SchemeConfigs, its fallbacks mutate the per-op
// coverage a SchemeConfig implies.
#pragma once

#include <string>
#include <string_view>

#include "fp8/format.h"

namespace fp8q {

/// Numeric type a tensor is snapped to at operator boundaries.
enum class DType : std::uint8_t { kFP32, kE5M2, kE4M3, kE3M4, kINT8 };

[[nodiscard]] std::string_view to_string(DType dtype);

/// True if `dtype` is one of the three FP8 formats.
[[nodiscard]] bool is_fp8(DType dtype);

/// Maps an FP8 DType to its format spec; throws for non-FP8 types.
[[nodiscard]] const FormatSpec& fp8_spec(DType dtype);

[[nodiscard]] Fp8Kind fp8_kind(DType dtype);

/// Scale-factor granularity (paper section 3.1: per-channel weights,
/// per-tensor activations; per-group scaling from the related work --
/// Zhou et al. / Mellempudi et al. -- is provided for the ablation bench).
enum class Granularity : std::uint8_t { kPerTensor, kPerChannel, kPerGroup };

/// Range-calibration algorithm for static activation quantization
/// (Appendix A.1). The paper found simple absmax ("max") sufficient for
/// FP8; KL/percentile/MSE are implemented for the comparison studies.
enum class CalibMethod : std::uint8_t { kAbsMax, kPercentile, kKlDivergence, kMseSweep };

[[nodiscard]] std::string_view to_string(CalibMethod method);

/// Whole-model quantization scheme: which formats, which approach, which
/// operator coverage. One instance describes one column of paper Table 2.
struct SchemeConfig {
  DType act_dtype = DType::kFP32;     ///< activation format
  DType weight_dtype = DType::kFP32;  ///< weight format (differs under mixed)
  bool dynamic_activations = false;   ///< dynamic vs static (Table 2/6)
  /// Per-token (last-axis row) dynamic activation scales -- the
  /// per-channel/per-token activation scaling the paper cites (Xiao et
  /// al., Dettmers et al.) but excludes from its study because real
  /// kernels pay overhead for it. Implemented here as an ablation;
  /// implies dynamic_activations.
  bool per_token_activations = false;
  bool quantize_extended_ops = false; ///< LayerNorm/BatchNorm/Add/Mul coverage
  bool skip_first_last = true;        ///< CNN first-conv/last-FC exception (3.1)
  CalibMethod act_calib = CalibMethod::kAbsMax;
  double percentile = 0.999;          ///< used when act_calib == kPercentile
  bool smoothquant = false;           ///< SmoothQuant preprocessing (NLP)
  float smoothquant_alpha = 0.5f;     ///< default smoothing alpha

  /// Human-readable config label for result tables, e.g. "E4M3/static".
  [[nodiscard]] std::string label() const;
};

/// The paper's standard scheme for a single FP8 format: per-channel
/// weights, per-tensor activations, compute ops only, first/last kept in
/// high precision. E5M2 uses direct quantization (scale 1) which the
/// quantizer applies automatically for E5M2 activations.
[[nodiscard]] SchemeConfig standard_fp8_scheme(DType fmt, bool dynamic = false);

/// Mixed FP8 format scheme (section 3.2): E4M3 activations (range-bound)
/// with E3M4 weights (precision-bound).
[[nodiscard]] SchemeConfig mixed_fp8_scheme();

/// The INT8 baseline of Table 2: static for CV, dynamic for NLP.
[[nodiscard]] SchemeConfig int8_scheme(bool dynamic);

}  // namespace fp8q
