// Tensor-level fake quantization: resolved parameters + application.
//
// The bottom of the quantization stack: a QuantParams is a fully
// resolved recipe for one tensor (format, granularity, scales), and
// apply_quant snaps the tensor through the FP8/INT8 grid and back to
// FP32 -- the software emulation of a hardware cast that the whole
// repro rests on. Everything above (QuantizedGraph, the tuner) only
// decides *which* QuantParams each tensor gets.
//
// The paper's standard scheme (section 3.1) maps to: weights via
// make_weight_params (per-channel symmetric absmax on axis 0),
// activations via make_activation_params from a calibrated range
// (per-tensor; E5M2 direct with scale 1). The extended additions map
// to make_dynamic_activation_params (runtime per-batch scales, section
// 3.2) and the ablation-only make_group_weight_params /
// apply_per_token_dynamic granularities.
//
// Observability: apply_quant_inplace and apply_per_token_dynamic open
// trace spans (quant/apply-tensor, -channel, -group, -per-token) when
// FP8Q_TRACE is on, and the bulk casts they call feed the
// quantization-event counters (docs/OBSERVABILITY.md).
#pragma once

#include <vector>

#include "fp8/int8.h"
#include "quant/qconfig.h"
#include "tensor/tensor.h"

namespace fp8q {

/// Resolved quantization parameters for one tensor.
struct QuantParams {
  DType dtype = DType::kFP32;
  Granularity granularity = Granularity::kPerTensor;
  int channel_axis = 0;
  std::int64_t group_size = 0;  ///< kPerGroup: elements per scale group

  // Per-tensor parameters.
  float scale = 1.0f;  ///< FP8: s = float_max / max_T
  Int8Params int8;

  // Per-channel parameters (weights).
  std::vector<float> channel_scales;
  std::vector<Int8Params> channel_int8;

  [[nodiscard]] bool is_noop() const { return dtype == DType::kFP32; }
};

/// Builds weight parameters from the weight tensor itself (per-channel
/// absmax on `axis`, or per-tensor when `granularity` says so).
[[nodiscard]] QuantParams make_weight_params(const Tensor& w, DType dtype,
                                             Granularity granularity = Granularity::kPerChannel,
                                             int axis = 0);

/// Per-group weight parameters: consecutive runs of `group_size` elements
/// (flattened, row-major) share one symmetric scale. Finer than per-channel
/// when group_size is below the channel stride; the ablation bench studies
/// the accuracy/scale-count trade-off (related work: Zhou et al. 2016,
/// Mellempudi et al. 2017).
[[nodiscard]] QuantParams make_group_weight_params(const Tensor& w, DType dtype,
                                                   std::int64_t group_size);

/// Builds static activation parameters from a calibrated range.
/// FP8 uses symmetric max scaling (E5M2: direct, scale 1); INT8 uses the
/// asymmetric affine grid over [min_v, max_v].
[[nodiscard]] QuantParams make_activation_params(DType dtype, float min_v, float max_v);

/// Convenience for symmetric ranges: [-clip, clip].
[[nodiscard]] inline QuantParams make_activation_params(DType dtype, float clip) {
  return make_activation_params(dtype, -clip, clip);
}

/// Builds dynamic activation parameters from the runtime tensor (per-batch
/// min/max; paper section 3.2, "Static vs. Dynamic Quantization").
[[nodiscard]] QuantParams make_dynamic_activation_params(DType dtype, const Tensor& x);

/// Per-token dynamic fake quantization: each last-axis row gets its own
/// scale from its runtime absmax (FP8) or min/max (INT8). The ablation
/// counterpart of the paper's per-tensor activation scheme.
void apply_per_token_dynamic(Tensor& x, DType dtype);

/// Fake-quantizes out-of-place / in-place.
[[nodiscard]] Tensor apply_quant(const Tensor& t, const QuantParams& params);
void apply_quant_inplace(Tensor& t, const QuantParams& params);

}  // namespace fp8q
