// Range calibration: turns observed statistics into the clip value max_T
// from which the scale s = float_max / max_T is derived (paper section 3.1
// and Appendix A.1).
//
// This is the middle third of the static-activation pipeline of the
// paper's standard scheme: observers (quant/observer.h) collect ranges,
// calibrate_clip reduces them to one clip magnitude per activation edge,
// fp8_activation_scale turns the clip into the scale the quantizer
// (quant/quantizer.h) applies at inference. E5M2 is the exception at
// every step: the paper uses direct quantization for it (scale 1, its
// dynamic range already covers activations), so its scale ignores the
// calibrated clip.
//
// The paper found plain absmax ("max") scaling sufficient for FP8 and
// reports that KL / percentile / MSE bring no additional benefit; all four
// are implemented so the Appendix A.1 / Figure 9 study can be reproduced.
#pragma once

#include "quant/observer.h"
#include "quant/qconfig.h"

namespace fp8q {

/// Computes the calibrated clip magnitude max_T for one activation tensor.
/// `target` determines the quantization grid used by the KL and MSE
/// methods (they optimize grid-specific distortion).
[[nodiscard]] float calibrate_clip(const Observer& obs, CalibMethod method, DType target,
                                   double percentile = 0.999);

/// Scale factor mapping a tensor with clip max_T onto the FP8 format's full
/// encoding range: s = float_max / max_T (paper section 3.1). Returns 1 for
/// degenerate inputs and for E5M2 (direct quantization).
[[nodiscard]] float fp8_activation_scale(DType fmt, float max_t);

/// Mean-squared quantization error of `values` when clipped at `clip` and
/// snapped to `target`'s grid. Exposed for the Figure 9 KL pathology demo.
[[nodiscard]] double clip_quantization_mse(std::span<const float> values, float clip,
                                           DType target);

/// Discrete KL divergence between the |value| histogram and its quantized
/// counterpart when clipping at `clip`. Lower = distributions more alike.
/// Mirrors the TensorRT-style KL calibration adapted to non-uniform grids.
[[nodiscard]] double clip_kl_divergence(std::span<const float> values, float clip,
                                        DType target, int bins = 2048);

}  // namespace fp8q
