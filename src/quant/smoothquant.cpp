#include "quant/smoothquant.h"

#include <cmath>
#include <stdexcept>

namespace fp8q {

std::vector<float> smoothquant_factors(std::span<const float> act_absmax,
                                       std::span<const float> weight_absmax,
                                       float alpha) {
  if (act_absmax.size() != weight_absmax.size()) {
    throw std::invalid_argument("smoothquant_factors: size mismatch");
  }
  std::vector<float> s(act_absmax.size(), 1.0f);
  for (size_t j = 0; j < s.size(); ++j) {
    const float a = std::max(act_absmax[j], 1e-8f);
    const float w = std::max(weight_absmax[j], 1e-8f);
    const float f = std::pow(a, alpha) / std::pow(w, 1.0f - alpha);
    s[j] = (std::isfinite(f) && f > 1e-8f) ? f : 1.0f;
  }
  return s;
}

void scale_weight_columns(Tensor& weight, std::span<const float> factors) {
  if (weight.dim() != 2 || static_cast<size_t>(weight.size(1)) != factors.size()) {
    throw std::invalid_argument("scale_weight_columns: weight must be [out, in] matching factors");
  }
  const std::int64_t out = weight.size(0);
  const std::int64_t in = weight.size(1);
  float* wd = weight.data();
  for (std::int64_t o = 0; o < out; ++o) {
    float* row = wd + o * in;
    for (std::int64_t j = 0; j < in; ++j) row[j] *= factors[static_cast<size_t>(j)];
  }
}

void divide_channels(Tensor& x, std::span<const float> factors) {
  if (x.dim() < 1 || static_cast<size_t>(x.size(-1)) != factors.size()) {
    throw std::invalid_argument("divide_channels: last axis must match factors");
  }
  const auto d = static_cast<std::int64_t>(factors.size());
  const std::int64_t rows = x.numel() / d;
  float* xd = x.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = xd + r * d;
    for (std::int64_t j = 0; j < d; ++j) row[j] /= factors[static_cast<size_t>(j)];
  }
}

}  // namespace fp8q
