#include "quant/quantized_graph.h"

#include <optional>
#include <stdexcept>

#include "core/cpu_dispatch.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/packed_gemm.h"
#include "obs/trace.h"
#include "quant/calibrate.h"
#include "quant/smoothquant.h"
#include "quant/weight_cache.h"
#include "tensor/stats.h"

namespace fp8q {

QuantizedGraph::QuantizedGraph(Graph* graph, ModelQuantConfig config)
    : graph_(graph), config_(std::move(config)) {
  if (!graph_) throw std::invalid_argument("QuantizedGraph: null graph");
  select_quantized_nodes();
}

QuantizedGraph::~QuantizedGraph() {
  restore_weights();
  graph_->clear_taps();
}

void QuantizedGraph::select_quantized_nodes() {
  quantized_nodes_.clear();
  const Graph::NodeId first = graph_->first_compute_node();
  const Graph::NodeId last = graph_->last_compute_node();
  for (Graph::NodeId id : graph_->quantizable_nodes()) {
    const OpKind kind = graph_->node(id).kind;
    if (is_extended_op(kind) && !config_.scheme.quantize_extended_ops) continue;
    if (config_.fallback_nodes.contains(id)) continue;
    if (config_.fallback_kinds.contains(kind)) continue;
    if (config_.is_cnn && config_.scheme.skip_first_last && (id == first || id == last)) {
      continue;
    }
    quantized_nodes_.insert(id);
  }
}

bool QuantizedGraph::slot_quantized(Graph::NodeId id, int slot) const {
  if (!quantized_nodes_.contains(id)) return false;
  // Embedding input is an index tensor, not numeric data.
  if (graph_->node(id).kind == OpKind::kEmbedding) return false;
  (void)slot;
  return true;
}

void QuantizedGraph::run_smoothquant(std::span<const std::vector<Tensor>> calib_batches) {
  TraceSpan span("qgraph/smoothquant");
  // Collect per-channel absmax of every quantized Linear's input.
  std::map<Graph::NodeId, std::vector<float>> act_cmax;
  graph_->set_input_tap(
      [&](Graph::NodeId id, int slot, const Tensor& v) -> std::optional<Tensor> {
        if (slot == 0 && quantized_nodes_.contains(id) &&
            graph_->node(id).kind == OpKind::kLinear && v.dim() >= 1) {
          const auto cm = absmax_per_channel(v, -1);
          auto& acc = act_cmax[id];
          if (acc.empty()) acc.assign(cm.size(), 0.0f);
          for (size_t j = 0; j < cm.size() && j < acc.size(); ++j) {
            acc[j] = std::max(acc[j], cm[j]);
          }
        }
        return std::nullopt;
      });
  for (const auto& batch : calib_batches) (void)graph_->forward(batch);
  graph_->clear_taps();

  // Fold: W' = W * s, remember s so forward divides the activation.
  for (auto& [id, cmax] : act_cmax) {
    auto* op = graph_->node(id).op.get();
    auto ws = op->weights();
    if (ws.empty()) continue;
    Tensor& w = *ws[0];
    if (w.dim() != 2 || static_cast<size_t>(w.size(1)) != cmax.size()) continue;
    const auto wmax = absmax_per_channel(w, 1);
    auto factors =
        smoothquant_factors(cmax, wmax, config_.scheme.smoothquant_alpha);
    scale_weight_columns(w, factors);
    smooth_factors_[id] = std::move(factors);
  }
}

void QuantizedGraph::quantize_weights() {
  TraceSpan span("qgraph/quantize-weights");
  for (Graph::NodeId id : quantized_nodes_) {
    auto& node = graph_->node(id);
    if (!is_compute_op(node.kind)) continue;  // gamma/beta etc. stay FP32
    auto ws = node.op->weights();
    if (ws.empty()) continue;
    // The main weight (index 0) is quantized per-channel on axis 0; biases
    // and other parameters stay FP32.
    Tensor& w = *ws[0];
    if (!packed_compute_enabled()) {
      quantize_weight_cached(w, config_.scheme.weight_dtype, Granularity::kPerChannel, 0);
      continue;
    }
    // Packed compute (docs/KERNELS.md): hand Linear/Conv ops the verified
    // 8-bit codes so their forward decodes in-register instead of reading
    // the fake-quantized FP32 weight. A null handle (non-FP8 dtype,
    // non-standard recipe, NaN payloads) leaves the op on the
    // bit-identical FP32 path; so does any op kind without a packed
    // kernel.
    auto packed = quantize_weight_cached_packed(w, config_.scheme.weight_dtype,
                                                Granularity::kPerChannel, 0);
    if (auto* lin = dynamic_cast<LinearOp*>(node.op.get())) {
      lin->set_packed_weight(
          packed ? std::make_shared<PackedWeightMatrix>(pack_gemm_weight(*packed))
                 : nullptr);
    } else if (auto* conv = dynamic_cast<Conv2dOp*>(node.op.get())) {
      conv->set_packed_weight(
          packed ? std::make_shared<PackedConvWeight>(pack_conv_weight(*packed))
                 : nullptr);
    }
  }
}

void QuantizedGraph::calibrate_activations(
    std::span<const std::vector<Tensor>> calib_batches) {
  TraceSpan span("qgraph/calibrate-activations");
  observers_.clear();
  graph_->set_input_tap(
      [&](Graph::NodeId id, int slot, const Tensor& v) -> std::optional<Tensor> {
        if (!slot_quantized(id, slot)) return std::nullopt;
        const auto it = smooth_factors_.find(id);
        if (it != smooth_factors_.end() && slot == 0) {
          Tensor smoothed = v;
          divide_channels(smoothed, it->second);
          observers_[{id, slot}].observe(smoothed);
          return smoothed;  // folded weights need the divided activation
        }
        observers_[{id, slot}].observe(v);
        return std::nullopt;
      });
  for (const auto& batch : calib_batches) (void)graph_->forward(batch);
  graph_->clear_taps();

  const DType act = config_.scheme.act_dtype;
  for (auto& [key, obs] : observers_) {
    if (obs.empty()) continue;
    const float clip =
        calibrate_clip(obs, config_.scheme.act_calib, act, config_.scheme.percentile);
    clips_[key] = clip;
    if (act == DType::kINT8 && config_.scheme.act_calib == CalibMethod::kAbsMax) {
      // INT8 static activations use the asymmetric affine grid over the
      // observed range (the Neural Compressor default).
      static_params_[key] = make_activation_params(act, obs.min(), obs.max());
    } else {
      static_params_[key] = make_activation_params(act, clip);
    }
  }
}

void QuantizedGraph::calibrate_batchnorm(
    std::span<const std::vector<Tensor>> calib_batches) {
  TraceSpan span("qgraph/calibrate-batchnorm");
  std::vector<BatchNorm2dOp*> bns;
  for (Graph::NodeId id : graph_->node_ids()) {
    if (auto* bn = dynamic_cast<BatchNorm2dOp*>(graph_->node(id).op.get())) {
      bn->begin_calibration();
      bns.push_back(bn);
    }
  }
  if (bns.empty()) return;
  const auto n = std::min<std::size_t>(calib_batches.size(),
                                       static_cast<std::size_t>(config_.bn_calibration_batches));
  for (std::size_t i = 0; i < n; ++i) (void)forward(calib_batches[i]);
  for (auto* bn : bns) bn->finish_calibration();
}

void QuantizedGraph::prepare(std::span<const std::vector<Tensor>> calib_batches) {
  TraceSpan span("qgraph/prepare");
  if (prepared_) restore_weights();
  select_quantized_nodes();

  // Back up every weight we may touch (SmoothQuant folding included).
  weight_backup_.clear();
  for (Graph::NodeId id : graph_->node_ids()) {
    auto& node = graph_->node(id);
    if (!node.op) continue;
    const auto ws = node.op->weights();
    if (ws.empty()) continue;
    std::vector<Tensor> copy;
    copy.reserve(ws.size());
    for (Tensor* w : ws) {
      // Stamp the identity before copying: the backup then carries the
      // stamped (id, version), and restoring it by copy-assignment gives
      // the live tensor the SAME identity -- so the weight cache's
      // identity memo keeps hitting across prepare() cycles instead of
      // rehashing unchanged weights every trial (quant/weight_cache.h).
      (void)w->identity();
      copy.push_back(*w);
    }
    weight_backup_[id] = std::move(copy);
  }

  smooth_factors_.clear();
  if (config_.scheme.smoothquant && !calib_batches.empty()) {
    run_smoothquant(calib_batches);
  }

  quantize_weights();

  static_params_.clear();
  clips_.clear();
  const DType act = config_.scheme.act_dtype;
  const bool needs_range_calibration =
      !config_.scheme.dynamic_activations && !config_.scheme.per_token_activations &&
      (act == DType::kE4M3 || act == DType::kE3M4 || act == DType::kINT8);
  if (needs_range_calibration && !calib_batches.empty()) {
    calibrate_activations(calib_batches);
  }

  prepared_ = true;

  if (config_.is_cnn && config_.bn_calibration_batches > 0) {
    calibrate_batchnorm(calib_batches);
  }
}

void QuantizedGraph::prepare(std::span<const Tensor> calib_batches) {
  std::vector<std::vector<Tensor>> wrapped;
  wrapped.reserve(calib_batches.size());
  for (const Tensor& t : calib_batches) {
    std::vector<Tensor> one;
    one.push_back(t);
    wrapped.push_back(std::move(one));
  }
  prepare(std::span<const std::vector<Tensor>>(wrapped));
}

std::optional<Tensor> QuantizedGraph::quantize_input(Graph::NodeId id, int slot,
                                                     const Tensor& value) {
  if (!slot_quantized(id, slot)) return std::nullopt;

  // Per-op span; the name (with the op kind) is only built when tracing
  // is on, so the quantize boundary stays allocation-free otherwise.
  std::optional<TraceSpan> span;
  if (trace_enabled()) {
    span.emplace("qgraph/input:" + std::string(to_string(graph_->node(id).kind)));
  }

  Tensor out = value;
  const auto sf = smooth_factors_.find(id);
  if (sf != smooth_factors_.end() && slot == 0) divide_channels(out, sf->second);

  const DType act = config_.scheme.act_dtype;
  if (config_.scheme.per_token_activations) {
    apply_per_token_dynamic(out, act);
    return out;
  }
  if (config_.scheme.dynamic_activations) {
    apply_quant_inplace(out, make_dynamic_activation_params(act, out));
    return out;
  }
  const auto it = static_params_.find({id, slot});
  if (it != static_params_.end()) {
    apply_quant_inplace(out, it->second);
  } else {
    // No calibrated range: E5M2 direct quantization (scale 1), or a
    // defensive dynamic fallback for formats that need a range.
    if (act == DType::kE5M2) {
      apply_quant_inplace(out, make_activation_params(act, 1.0f));
    } else {
      apply_quant_inplace(out, make_dynamic_activation_params(act, out));
    }
  }
  return out;
}

Tensor QuantizedGraph::forward(std::span<const Tensor> inputs) {
  TraceSpan span("qgraph/forward");
  if (!prepared_) throw std::logic_error("QuantizedGraph::forward: call prepare() first");
  graph_->set_input_tap([this](Graph::NodeId id, int slot, const Tensor& v) {
    return quantize_input(id, slot, v);
  });
  Tensor out = graph_->forward(inputs);
  graph_->clear_taps();
  return out;
}

void QuantizedGraph::restore_weights() {
  for (auto& [id, backup] : weight_backup_) {
    auto ws = graph_->node(id).op->weights();
    for (size_t i = 0; i < ws.size() && i < backup.size(); ++i) *ws[i] = backup[i];
  }
  // Detach packed weights everywhere: the restored FP32 tensors are the
  // pre-quantization originals, and stale codes must not shadow them.
  for (Graph::NodeId id : graph_->node_ids()) {
    auto& node = graph_->node(id);
    if (!node.op) continue;
    if (auto* lin = dynamic_cast<LinearOp*>(node.op.get())) {
      lin->clear_packed_weight();
    } else if (auto* conv = dynamic_cast<Conv2dOp*>(node.op.get())) {
      conv->clear_packed_weight();
    }
  }
  weight_backup_.clear();
  smooth_factors_.clear();
  static_params_.clear();
  clips_.clear();
  observers_.clear();
  prepared_ = false;
}

float QuantizedGraph::activation_clip(Graph::NodeId id, int slot) const {
  const auto it = clips_.find({id, slot});
  return it != clips_.end() ? it->second : 0.0f;
}

double QuantizedGraph::quantized_compute_fraction() const {
  // Weight each compute op by its parameter count (weightless MatMuls
  // count a nominal 1 so attention coverage is still visible).
  double total = 0.0;
  double covered = 0.0;
  for (Graph::NodeId id : graph_->node_ids()) {
    auto& node = graph_->node(id);
    if (!node.op || !is_compute_op(node.kind)) continue;
    const double weight =
        std::max<double>(1.0, static_cast<double>(node.op->param_count()));
    total += weight;
    if (quantized_nodes_.contains(id)) covered += weight;
  }
  return total > 0.0 ? covered / total : 0.0;
}

}  // namespace fp8q
