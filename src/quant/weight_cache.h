// Cross-trial quantized-weight cache (docs/PERFORMANCE.md).
//
// The accuracy-driven tuner (paper section 3.2) evaluates dozens of arm
// configs against the same model, and every trial re-quantizes the same
// weight tensors with the same per-channel recipe. This cache memoizes the
// result of the standard weight path -- per-channel symmetric absmax on
// axis 0 (make_weight_params + apply_quant_inplace) -- so repeat trials
// copy the quantized block instead of recomputing it.
//
// Correctness model (two levels, both keyed on CONTENT):
//   * An identity memo maps Tensor::identity() -- a (id, version) pair that
//     is invalidated by every observed mutation -- to the content hash, so
//     unchanged tensors skip even the rehash.
//   * The main map keys on a 128-bit hash of (shape, element bits) plus the
//     target dtype; the stored shape is compared on every hit, so a
//     colliding or stale identity can never serve wrong data. A mutated
//     weight gets a fresh version, misses the memo, rehashes, and matches
//     only if the bytes are genuinely identical.
//
// Determinism: the cached payload is the bit-exact output of the uncached
// kernels, and every entry stores the quantization-event tally computed at
// miss time; hits replay it into the counters, so counter totals are
// independent of hit/miss patterns and identical to an uncached run.
//
// Storage (docs/KERNELS.md): entries hold the PACKED form -- uint8 codes +
// per-channel scales, ~1/4 the bytes of the FP32 payload -- and a hit
// decodes them back through the dispatched decode kernel. Insertion
// verifies bit-for-bit that decoding the codes reproduces the quantized
// payload; weights where an 8-bit code cannot carry the payload (NaN
// payloads survive fake quantization but not an encode/decode round trip)
// fall back to storing the FP32 payload, so hits are unconditionally
// bit-exact either way. The verified packed form is also what
// quantize_weight_cached_packed hands to the packed compute kernels.
//
// Capacity: bounded LRU, default 64 MB, configurable with the
// FP8Q_WEIGHT_CACHE_MB environment variable (0 disables caching) or
// programmatically via set_weight_cache_capacity_bytes. Capacity is
// accounted against each entry's ACTUAL bytes (packed entries cost
// codes + scales, ~numel bytes; FP32 fallback entries cost numel * 4), so
// a budget sized for FP32 entries now holds roughly 4x as many weights.
// Events are mirrored into the obs cache counters (cache_counter_add) and
// surface in the run report's "weight_cache" block.
#pragma once

#include <cstdint>
#include <memory>

#include "fp8/packed.h"
#include "quant/qconfig.h"
#include "tensor/tensor.h"

namespace fp8q {

/// Quantizes the main weight tensor in place through the cache. Equivalent
/// to apply_quant_inplace(w, make_weight_params(w, dtype, granularity,
/// axis)) bit-for-bit. Only the standard paper recipe (FP8 dtype,
/// per-channel, axis 0) is cached; anything else falls through to the
/// uncached path and counts as a bypass.
void quantize_weight_cached(Tensor& w, DType dtype,
                            Granularity granularity = Granularity::kPerChannel,
                            int axis = 0);

/// Same in-place quantization, but also returns the verified packed form
/// of the quantized weight -- decode(code) * (1/scale) reproduces w's new
/// contents bit for bit -- for attachment to an op's packed compute path
/// (nn/packed_gemm.h). Returns nullptr when the recipe is not the standard
/// cached one or the weight failed the decode check (e.g. NaN payloads);
/// callers then stay on the FP32 path. Works with the cache disabled
/// (FP8Q_WEIGHT_CACHE_MB=0): the packed form is built and verified either
/// way, it just isn't retained.
[[nodiscard]] std::shared_ptr<const PackedFp8Tensor> quantize_weight_cached_packed(
    Tensor& w, DType dtype, Granularity granularity = Granularity::kPerChannel,
    int axis = 0);

/// Point-in-time cache statistics (process-wide).
struct WeightCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bypasses = 0;
  std::uint64_t bytes = 0;    ///< current payload bytes resident
  std::uint64_t entries = 0;  ///< current entry count
};

[[nodiscard]] WeightCacheStats weight_cache_stats();

/// Drops every entry and the identity memo; keeps the event totals.
void weight_cache_clear();

/// Current capacity in bytes (0 = caching disabled).
[[nodiscard]] std::int64_t weight_cache_capacity_bytes();

/// Sets the capacity; evicts immediately if shrinking. Negative restores
/// the FP8Q_WEIGHT_CACHE_MB / built-in default.
void set_weight_cache_capacity_bytes(std::int64_t bytes);

}  // namespace fp8q
