#include "quant/weight_cache.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/cpu_dispatch.h"
#include "core/thread_annotations.h"
#include "fp8/cast_fast.h"
#include "nn/packed_gemm.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "quant/quantizer.h"
#include "tensor/stats.h"

namespace fp8q {

namespace {

constexpr std::int64_t kDefaultCapacityMb = 64;

std::int64_t env_capacity_bytes() {
  const char* v = std::getenv("FP8Q_WEIGHT_CACHE_MB");
  if (v == nullptr || v[0] == '\0') return kDefaultCapacityMb * (1 << 20);
  char* end = nullptr;
  const long long mb = std::strtoll(v, &end, 10);
  if (end == v || mb < 0) return kDefaultCapacityMb * (1 << 20);
  return static_cast<std::int64_t>(mb) * (1 << 20);
}

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: full-avalanche, cheap.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// 128-bit content hash: two independently-seeded 64-bit lanes over the
/// shape dims and the raw element bits. 128 bits makes an accidental
/// collision astronomically unlikely; the stored-shape compare on hit
/// guards the remaining possibility of serving a wrong-shaped payload.
struct Hash128 {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;

  [[nodiscard]] bool operator==(const Hash128&) const = default;
};

Hash128 hash_tensor(const Tensor& w) {
  Hash128 h{0x8BADF00D5EEDC0DEull, 0xC0FFEE0DDF00DF17ull};
  auto feed = [&h](std::uint64_t word) {
    h.h1 = mix64(h.h1 ^ word);
    h.h2 = mix64(h.h2 ^ (word * 0x9E3779B97F4A7C15ull + 1));
  };
  for (const std::int64_t d : w.shape()) feed(static_cast<std::uint64_t>(d));
  const auto data = w.flat();
  std::size_t i = 0;
  for (; i + 2 <= data.size(); i += 2) {
    const auto lo = static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(data[i]));
    const auto hi = static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(data[i + 1]));
    feed(lo | (hi << 32));
  }
  if (i < data.size()) {
    feed(static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(data[i])));
  }
  return h;
}

struct Key {
  Hash128 content;
  DType dtype = DType::kFP32;

  [[nodiscard]] bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return static_cast<std::size_t>(
        mix64(k.content.h1 ^ (k.content.h2 << 1) ^ static_cast<std::uint64_t>(k.dtype)));
  }
};

struct Entry {
  /// Preferred payload: verified packed codes + per-channel scales, ~1/4
  /// the FP32 bytes. Null when the decode check failed at insert (NaN
  /// payloads), in which case `data` holds the FP32 payload instead.
  std::shared_ptr<const PackedFp8Tensor> packed;
  /// FP32 fallback payload (packed == nullptr). shared_ptr so a hit can
  /// pin the payload and deliver it *outside* the cache mutex -- under
  /// concurrent fp8qd jobs the mutex covers only map/LRU bookkeeping, and
  /// a concurrent eviction cannot free bytes a hit is still copying.
  std::shared_ptr<const std::vector<float>> data;
  Shape shape;     ///< collision guard, compared on every hit
  CastTally tally; ///< events the miss computation produced
  ObsFormat fmt = ObsFormat::kOther;
  std::list<Key>::iterator lru_it;
};

/// Identity memo: (tensor id) -> (version, content hash). Lets an
/// unmutated tensor skip the content rehash entirely. Bounded; cleared
/// wholesale when it outgrows the bound (entries are one pointer-sized
/// record each, so the bound is generous).
struct MemoEntry {
  std::uint64_t version = 0;
  Hash128 content;
};
constexpr std::size_t kMemoCap = 4096;

struct Cache {
  std::mutex mutex;
  std::unordered_map<Key, Entry, KeyHash> map FP8Q_GUARDED_BY(mutex);
  std::list<Key> lru FP8Q_GUARDED_BY(mutex);  ///< front = most recent
  std::unordered_map<std::uint64_t, MemoEntry> memo FP8Q_GUARDED_BY(mutex);
  std::int64_t capacity FP8Q_GUARDED_BY(mutex) = env_capacity_bytes();  ///< bytes; 0 disables
  std::int64_t bytes FP8Q_GUARDED_BY(mutex) = 0;
  WeightCacheStats stats FP8Q_GUARDED_BY(mutex);
};

Cache& cache() {
  static Cache* c = new Cache();  // leaked: usable during static teardown
  return *c;
}

// Capacity charge: the entry's ACTUAL resident payload. Packed entries
// cost codes + scales (~numel bytes); FP32 fallback entries cost numel*4.
// The flat 64 covers the map/LRU node overhead either way. This is what
// makes a fixed FP8Q_WEIGHT_CACHE_MB budget hold ~4x as many weights now
// that entries store codes (weight_cache.h, "Capacity").
std::int64_t entry_bytes(const Entry& e) {
  const std::int64_t payload =
      e.packed ? static_cast<std::int64_t>(e.packed->storage_bytes())
               : static_cast<std::int64_t>((e.data ? e.data->size() : 0) * sizeof(float));
  return payload + 64;
}

void evict_until_within(Cache& c) FP8Q_REQUIRES(c.mutex) {
  while (c.bytes > c.capacity && !c.lru.empty()) {
    const Key victim = c.lru.back();
    auto it = c.map.find(victim);
    if (it != c.map.end()) {
      c.bytes -= entry_bytes(it->second);
      c.map.erase(it);
    }
    c.lru.pop_back();
    ++c.stats.evictions;
    cache_counter_add(ObsCacheEvent::kEvict, 1);
  }
  c.stats.bytes = static_cast<std::uint64_t>(c.bytes);
  c.stats.entries = static_cast<std::uint64_t>(c.map.size());
}

/// The uncached miss computation: per-channel absmax scales exactly as
/// make_weight_params builds them (absmax_per_channel, zero-max channels
/// get scale 1), each contiguous channel block pushed through the batched
/// kernel with the same scale sanitization fp8_quantize_scaled_fast
/// applies. Bit-identical to the uncached path; the tally is always
/// collected so a later hit can replay it.
///
/// Also produces the PACKED form of the result: codes are encoded from the
/// ORIGINAL values with the same sanitized scales before the in-place
/// overwrite, then every element is verified -- decode(code) * (1/scale)
/// must reproduce the quantized payload bit for bit (verified against the
/// reference decode table, which all dispatch tiers are tested bit-equal
/// to). Returns null when verification fails (NaN payloads survive fake
/// quantization but cannot round-trip an 8-bit code); the in-place result
/// is bit-identical to the uncached path either way.
std::shared_ptr<const PackedFp8Tensor> quantize_standard(Tensor& w, DType dtype,
                                                         CastTally* tally) {
  const auto maxima = absmax_per_channel(w, 0);
  const std::int64_t channels = w.size(0);
  const std::int64_t block = w.numel() / channels;
  const float fmax = fp8_spec(dtype).max_value();
  std::vector<float> scales(static_cast<std::size_t>(channels));
  for (std::size_t c = 0; c < scales.size(); ++c) {
    float scale = maxima[c] > 0.0f ? fmax / maxima[c] : 1.0f;
    if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
    scales[c] = scale;
  }
  const Fp8Kind kind = fp8_kind(dtype);
  auto packed = std::make_shared<PackedFp8Tensor>(
      PackedFp8Tensor::pack_per_channel_scaled(w, kind, scales));
  const FastCastSpec& spec = fast_cast_spec(kind);
  auto data = w.flat();
  for (std::int64_t c = 0; c < channels; ++c) {
    auto span = data.subspan(static_cast<std::size_t>(c * block),
                             static_cast<std::size_t>(block));
    fp8_quantize_batch(span, span, spec, scales[static_cast<std::size_t>(c)], tally);
  }
  const Fp8DecodeTable& lut = fp8_decode_table(kind);
  const std::uint8_t* codes = packed->codes().data();
  for (std::int64_t c = 0; c < channels; ++c) {
    const float inv = 1.0f / scales[static_cast<std::size_t>(c)];
    const float* payload = data.data() + c * block;
    const std::uint8_t* crow = codes + c * block;
    for (std::int64_t i = 0; i < block; ++i) {
      if (std::bit_cast<std::uint32_t>(lut.values[crow[i]] * inv) !=
          std::bit_cast<std::uint32_t>(payload[i])) {
        return nullptr;
      }
    }
  }
  return packed;
}

void replay_tally(const CastTally& tally, ObsFormat fmt) {
  if (!counters_enabled()) return;
  counter_add(fmt, ObsEvent::kQuantized, tally.quantized);
  counter_add(fmt, ObsEvent::kSaturated, tally.saturated);
  counter_add(fmt, ObsEvent::kFlushedToZero, tally.flushed);
}

/// Writes a hit's payload into w. FP32 fallback entries memcpy; packed
/// entries decode each channel through the dispatched kernel. Every tier
/// decodes bit-identically (docs/KERNELS.md), so the delivered payload --
/// already verified equal to the miss-time bits at insert -- does not
/// depend on FP8Q_ISA. Called WITHOUT the cache mutex: both payload forms
/// are shared_ptr-pinned by the caller, so delivery races nothing -- the
/// mutex stays a pure bookkeeping lock, the only cross-job serialization
/// point the fp8qd scheduler has (docs/THREADING.md).
void deliver_payload(const std::shared_ptr<const PackedFp8Tensor>& packed,
                     const std::shared_ptr<const std::vector<float>>& fp32, Tensor& w) {
  float* dst = w.flat().data();
  if (packed) {
    const PackedFp8Tensor& p = *packed;
    const auto channels = static_cast<std::int64_t>(p.scales().size());
    const std::int64_t block = static_cast<std::int64_t>(p.codes().size()) / channels;
    const PackedKernelTable& kt = packed_kernels(isa_tier());
    for (std::int64_t c = 0; c < channels; ++c) {
      kt.decode_mul(p.codes().data() + c * block,
                    1.0f / p.scales()[static_cast<std::size_t>(c)], dst + c * block,
                    block, p.kind());
    }
    kernel_counter_add(ObsKernelPath::kCacheDecode, 1);
  } else {
    std::memcpy(dst, fp32->data(), fp32->size() * sizeof(float));
  }
}

void count_bypass() {
  Cache& c = cache();
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    ++c.stats.bypasses;
  }
  cache_counter_add(ObsCacheEvent::kBypass, 1);
}

std::shared_ptr<const PackedFp8Tensor> quantize_weight_impl(Tensor& w, DType dtype,
                                                            Granularity granularity,
                                                            int axis, bool want_packed) {
  // Only the standard paper recipe is cached (and packable). Everything
  // else -- FP32 no-op, INT8, per-tensor/group, nonzero axis -- computes
  // directly through the uncached kernels.
  const bool standard = is_fp8(dtype) && granularity == Granularity::kPerChannel &&
                        axis == 0 && w.dim() >= 1 && w.size(0) > 0 && !w.empty();
  if (!standard) {
    if (dtype != DType::kFP32) count_bypass();
    const auto params = make_weight_params(w, dtype, granularity, axis);
    apply_quant_inplace(w, params);
    return nullptr;
  }
  if (weight_cache_capacity_bytes() <= 0) {
    // Caching disabled: still a bypass for the cache, but when the caller
    // wants the packed form it is built and verified anyway --
    // FP8Q_WEIGHT_CACHE_MB=0 turns off retention, not packed compute.
    count_bypass();
    if (!want_packed) {
      const auto params = make_weight_params(w, dtype, granularity, axis);
      apply_quant_inplace(w, params);
      return nullptr;
    }
    CastTally tally;
    auto packed = quantize_standard(w, dtype, &tally);
    replay_tally(tally, fast_cast_spec(fp8_kind(dtype)).obs_fmt);
    return packed;
  }

  TraceSpan span("quant/weight-cache");
  Cache& c = cache();
  // Hit/miss latency histograms (latency/cache_*): observational
  // wall-clock from here through payload delivery, recorded only when
  // histograms are on so the disabled path stays a branch-on-atomic.
  const bool histed = histograms_enabled();
  const std::uint64_t t0 = histed ? obs_now_ns() : 0;
  const TensorIdentity ident = w.identity();

  // Resolve the content hash: memo first, rehash on miss.
  Hash128 content;
  bool memo_hit = false;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    auto mit = c.memo.find(ident.id);
    if (mit != c.memo.end() && mit->second.version == ident.version) {
      content = mit->second.content;
      memo_hit = true;
    }
  }
  if (!memo_hit) {
    content = hash_tensor(w);
    std::lock_guard<std::mutex> lock(c.mutex);
    if (c.memo.size() >= kMemoCap) c.memo.clear();
    c.memo[ident.id] = MemoEntry{ident.version, content};
  }
  const Key key{content, dtype};
  {
    // Hit path: the lock covers only the lookup and LRU/stat bookkeeping.
    // Payload delivery and tally replay happen after release, against the
    // pinned shared_ptrs -- with N concurrent jobs, decode work (the
    // expensive part of a hit) overlaps freely, and the replayed counters
    // land in the *calling* job's observation domain (obs/domain.h).
    std::shared_ptr<const PackedFp8Tensor> hit_packed;
    std::shared_ptr<const std::vector<float>> hit_fp32;
    CastTally hit_tally;
    ObsFormat hit_fmt = ObsFormat::kOther;
    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(c.mutex);
      auto it = c.map.find(key);
      if (it != c.map.end() && it->second.shape == w.shape()) {
        Entry& e = it->second;
        c.lru.splice(c.lru.begin(), c.lru, e.lru_it);
        ++c.stats.hits;
        cache_counter_add(ObsCacheEvent::kHit, 1);
        hit_packed = e.packed;
        hit_fp32 = e.data;
        hit_tally = e.tally;
        hit_fmt = e.fmt;
        hit = true;
      }
    }
    if (hit) {
      // Writing through flat() re-dirties w -- correct: its contents
      // change from the hashed state to the quantized state.
      deliver_payload(hit_packed, hit_fp32, w);
      replay_tally(hit_tally, hit_fmt);
      if (histed) {
        hist_record(HistChannel::kCacheHitNs, static_cast<double>(obs_now_ns() - t0));
      }
      return hit_packed;
    }
  }

  // Miss: quantize in place (bit-identical to the uncached path), then
  // insert the verified packed form -- or, if verification failed, an FP32
  // copy of the result.
  Entry fresh;
  fresh.shape = w.shape();
  fresh.fmt = fast_cast_spec(fp8_kind(dtype)).obs_fmt;
  std::shared_ptr<const PackedFp8Tensor> packed;
  {
    CastTally tally;
    packed = quantize_standard(w, dtype, &tally);
    fresh.tally = tally;
    if (packed) {
      fresh.packed = packed;
    } else {
      const auto data = std::as_const(w).flat();
      fresh.data = std::make_shared<const std::vector<float>>(data.begin(), data.end());
    }
  }
  replay_tally(fresh.tally, fresh.fmt);

  std::lock_guard<std::mutex> lock(c.mutex);
  ++c.stats.misses;
  cache_counter_add(ObsCacheEvent::kMiss, 1);
  const std::int64_t cost = entry_bytes(fresh);
  if (cost <= c.capacity) {
    auto [it, inserted] = c.map.try_emplace(key);
    if (!inserted) {
      // Raced with another thread (or a shape-mismatched stale entry):
      // replace the payload, keep the LRU node.
      c.bytes -= entry_bytes(it->second);
      fresh.lru_it = it->second.lru_it;
      c.lru.splice(c.lru.begin(), c.lru, fresh.lru_it);
    } else {
      c.lru.push_front(key);
      fresh.lru_it = c.lru.begin();
    }
    it->second = std::move(fresh);
    c.bytes += cost;
    evict_until_within(c);
  }
  c.stats.bytes = static_cast<std::uint64_t>(c.bytes);
  c.stats.entries = static_cast<std::uint64_t>(c.map.size());
  if (histed) {
    hist_record(HistChannel::kCacheMissNs, static_cast<double>(obs_now_ns() - t0));
  }
  return packed;
}

}  // namespace

void quantize_weight_cached(Tensor& w, DType dtype, Granularity granularity, int axis) {
  (void)quantize_weight_impl(w, dtype, granularity, axis, /*want_packed=*/false);
}

std::shared_ptr<const PackedFp8Tensor> quantize_weight_cached_packed(
    Tensor& w, DType dtype, Granularity granularity, int axis) {
  return quantize_weight_impl(w, dtype, granularity, axis, /*want_packed=*/true);
}

WeightCacheStats weight_cache_stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.stats;
}

void weight_cache_clear() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.map.clear();
  c.lru.clear();
  c.memo.clear();
  c.bytes = 0;
  c.stats.bytes = 0;
  c.stats.entries = 0;
}

std::int64_t weight_cache_capacity_bytes() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.capacity;
}

void set_weight_cache_capacity_bytes(std::int64_t bytes) {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.capacity = bytes < 0 ? env_capacity_bytes() : bytes;
  evict_until_within(c);
}

}  // namespace fp8q
