#include "quant/weight_cache.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"
#include "fp8/cast_fast.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "quant/quantizer.h"
#include "tensor/stats.h"

namespace fp8q {

namespace {

constexpr std::int64_t kDefaultCapacityMb = 64;

std::int64_t env_capacity_bytes() {
  const char* v = std::getenv("FP8Q_WEIGHT_CACHE_MB");
  if (v == nullptr || v[0] == '\0') return kDefaultCapacityMb * (1 << 20);
  char* end = nullptr;
  const long long mb = std::strtoll(v, &end, 10);
  if (end == v || mb < 0) return kDefaultCapacityMb * (1 << 20);
  return static_cast<std::int64_t>(mb) * (1 << 20);
}

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: full-avalanche, cheap.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// 128-bit content hash: two independently-seeded 64-bit lanes over the
/// shape dims and the raw element bits. 128 bits makes an accidental
/// collision astronomically unlikely; the stored-shape compare on hit
/// guards the remaining possibility of serving a wrong-shaped payload.
struct Hash128 {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;

  [[nodiscard]] bool operator==(const Hash128&) const = default;
};

Hash128 hash_tensor(const Tensor& w) {
  Hash128 h{0x8BADF00D5EEDC0DEull, 0xC0FFEE0DDF00DF17ull};
  auto feed = [&h](std::uint64_t word) {
    h.h1 = mix64(h.h1 ^ word);
    h.h2 = mix64(h.h2 ^ (word * 0x9E3779B97F4A7C15ull + 1));
  };
  for (const std::int64_t d : w.shape()) feed(static_cast<std::uint64_t>(d));
  const auto data = w.flat();
  std::size_t i = 0;
  for (; i + 2 <= data.size(); i += 2) {
    const auto lo = static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(data[i]));
    const auto hi = static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(data[i + 1]));
    feed(lo | (hi << 32));
  }
  if (i < data.size()) {
    feed(static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(data[i])));
  }
  return h;
}

struct Key {
  Hash128 content;
  DType dtype = DType::kFP32;

  [[nodiscard]] bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return static_cast<std::size_t>(
        mix64(k.content.h1 ^ (k.content.h2 << 1) ^ static_cast<std::uint64_t>(k.dtype)));
  }
};

struct Entry {
  std::vector<float> data;  ///< bit-exact quantized payload
  Shape shape;              ///< collision guard, compared on every hit
  CastTally tally;          ///< events the miss computation produced
  ObsFormat fmt = ObsFormat::kOther;
  std::list<Key>::iterator lru_it;
};

/// Identity memo: (tensor id) -> (version, content hash). Lets an
/// unmutated tensor skip the content rehash entirely. Bounded; cleared
/// wholesale when it outgrows the bound (entries are one pointer-sized
/// record each, so the bound is generous).
struct MemoEntry {
  std::uint64_t version = 0;
  Hash128 content;
};
constexpr std::size_t kMemoCap = 4096;

struct Cache {
  std::mutex mutex;
  std::unordered_map<Key, Entry, KeyHash> map FP8Q_GUARDED_BY(mutex);
  std::list<Key> lru FP8Q_GUARDED_BY(mutex);  ///< front = most recent
  std::unordered_map<std::uint64_t, MemoEntry> memo FP8Q_GUARDED_BY(mutex);
  std::int64_t capacity FP8Q_GUARDED_BY(mutex) = env_capacity_bytes();  ///< bytes; 0 disables
  std::int64_t bytes FP8Q_GUARDED_BY(mutex) = 0;
  WeightCacheStats stats FP8Q_GUARDED_BY(mutex);
};

Cache& cache() {
  static Cache* c = new Cache();  // leaked: usable during static teardown
  return *c;
}

std::int64_t entry_bytes(const Entry& e) {
  return static_cast<std::int64_t>(e.data.size() * sizeof(float)) + 64;
}

void evict_until_within(Cache& c) FP8Q_REQUIRES(c.mutex) {
  while (c.bytes > c.capacity && !c.lru.empty()) {
    const Key victim = c.lru.back();
    auto it = c.map.find(victim);
    if (it != c.map.end()) {
      c.bytes -= entry_bytes(it->second);
      c.map.erase(it);
    }
    c.lru.pop_back();
    ++c.stats.evictions;
    cache_counter_add(ObsCacheEvent::kEvict, 1);
  }
  c.stats.bytes = static_cast<std::uint64_t>(c.bytes);
  c.stats.entries = static_cast<std::uint64_t>(c.map.size());
}

/// The uncached miss computation: per-channel absmax scales exactly as
/// make_weight_params builds them (absmax_per_channel, zero-max channels
/// get scale 1), each contiguous channel block pushed through the batched
/// kernel with the same scale sanitization fp8_quantize_scaled_fast
/// applies. Bit-identical to the uncached path; the tally is always
/// collected so a later hit can replay it.
void quantize_fp8_per_channel(Tensor& w, DType dtype, CastTally* tally) {
  const auto maxima = absmax_per_channel(w, 0);
  const std::int64_t channels = w.size(0);
  const std::int64_t block = w.numel() / channels;
  const float fmax = fp8_spec(dtype).max_value();
  const FastCastSpec& spec = fast_cast_spec(fp8_kind(dtype));
  auto data = w.flat();
  for (std::int64_t c = 0; c < channels; ++c) {
    auto span = data.subspan(static_cast<std::size_t>(c * block),
                             static_cast<std::size_t>(block));
    float scale = maxima[static_cast<std::size_t>(c)] > 0.0f
                      ? fmax / maxima[static_cast<std::size_t>(c)]
                      : 1.0f;
    if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
    fp8_quantize_batch(span, span, spec, scale, tally);
  }
}

void replay_tally(const Entry& e) {
  if (!counters_enabled()) return;
  counter_add(e.fmt, ObsEvent::kQuantized, e.tally.quantized);
  counter_add(e.fmt, ObsEvent::kSaturated, e.tally.saturated);
  counter_add(e.fmt, ObsEvent::kFlushedToZero, e.tally.flushed);
}

}  // namespace

void quantize_weight_cached(Tensor& w, DType dtype, Granularity granularity, int axis) {
  // Only the standard paper recipe is cached. Everything else -- FP32
  // no-op, INT8, per-tensor/group, nonzero axis -- computes directly.
  const bool cacheable = is_fp8(dtype) && granularity == Granularity::kPerChannel &&
                         axis == 0 && w.dim() >= 1 && w.size(0) > 0 && !w.empty() &&
                         weight_cache_capacity_bytes() > 0;
  if (!cacheable) {
    if (dtype != DType::kFP32) {
      Cache& c = cache();
      {
        std::lock_guard<std::mutex> lock(c.mutex);
        ++c.stats.bypasses;
      }
      cache_counter_add(ObsCacheEvent::kBypass, 1);
    }
    const auto params = make_weight_params(w, dtype, granularity, axis);
    apply_quant_inplace(w, params);
    return;
  }

  TraceSpan span("quant/weight-cache");
  Cache& c = cache();
  // Hit/miss latency histograms (latency/cache_*): observational
  // wall-clock from here through payload delivery, recorded only when
  // histograms are on so the disabled path stays a branch-on-atomic.
  const bool histed = histograms_enabled();
  const std::uint64_t t0 = histed ? obs_now_ns() : 0;
  const TensorIdentity ident = w.identity();

  // Resolve the content hash: memo first, rehash on miss.
  Hash128 content;
  bool memo_hit = false;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    auto mit = c.memo.find(ident.id);
    if (mit != c.memo.end() && mit->second.version == ident.version) {
      content = mit->second.content;
      memo_hit = true;
    }
  }
  if (!memo_hit) {
    content = hash_tensor(w);
    std::lock_guard<std::mutex> lock(c.mutex);
    if (c.memo.size() >= kMemoCap) c.memo.clear();
    c.memo[ident.id] = MemoEntry{ident.version, content};
  }
  const Key key{content, dtype};
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    auto it = c.map.find(key);
    if (it != c.map.end() && it->second.shape == w.shape()) {
      Entry& e = it->second;
      c.lru.splice(c.lru.begin(), c.lru, e.lru_it);
      ++c.stats.hits;
      cache_counter_add(ObsCacheEvent::kHit, 1);
      // Copying through flat() re-dirties w -- correct: its contents
      // change from the hashed state to the quantized state.
      std::memcpy(w.flat().data(), e.data.data(), e.data.size() * sizeof(float));
      replay_tally(e);
      if (histed) {
        hist_record(HistChannel::kCacheHitNs, static_cast<double>(obs_now_ns() - t0));
      }
      return;
    }
  }

  // Miss: quantize in place (bit-identical to the uncached path), then
  // insert a copy of the result.
  Entry fresh;
  fresh.shape = w.shape();
  fresh.fmt = fast_cast_spec(fp8_kind(dtype)).obs_fmt;
  {
    CastTally tally;
    quantize_fp8_per_channel(w, dtype, &tally);
    fresh.tally = tally;
    const auto data = std::as_const(w).flat();
    fresh.data.assign(data.begin(), data.end());
  }
  replay_tally(fresh);

  std::lock_guard<std::mutex> lock(c.mutex);
  ++c.stats.misses;
  cache_counter_add(ObsCacheEvent::kMiss, 1);
  const std::int64_t cost = entry_bytes(fresh);
  if (cost <= c.capacity) {
    auto [it, inserted] = c.map.try_emplace(key);
    if (!inserted) {
      // Raced with another thread (or a shape-mismatched stale entry):
      // replace the payload, keep the LRU node.
      c.bytes -= entry_bytes(it->second);
      fresh.lru_it = it->second.lru_it;
      c.lru.splice(c.lru.begin(), c.lru, fresh.lru_it);
    } else {
      c.lru.push_front(key);
      fresh.lru_it = c.lru.begin();
    }
    it->second = std::move(fresh);
    c.bytes += cost;
    evict_until_within(c);
  }
  c.stats.bytes = static_cast<std::uint64_t>(c.bytes);
  c.stats.entries = static_cast<std::uint64_t>(c.map.size());
  if (histed) {
    hist_record(HistChannel::kCacheMissNs, static_cast<double>(obs_now_ns() - t0));
  }
}

WeightCacheStats weight_cache_stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.stats;
}

void weight_cache_clear() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.map.clear();
  c.lru.clear();
  c.memo.clear();
  c.bytes = 0;
  c.stats.bytes = 0;
  c.stats.entries = 0;
}

std::int64_t weight_cache_capacity_bytes() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.capacity;
}

void set_weight_cache_capacity_bytes(std::int64_t bytes) {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.capacity = bytes < 0 ? env_capacity_bytes() : bytes;
  evict_until_within(c);
}

}  // namespace fp8q
