#include "quant/observer.h"

#include <algorithm>
#include <cmath>

namespace fp8q {

Observer::Observer(std::size_t reservoir_capacity) : capacity_(reservoir_capacity) {
  sample_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void Observer::reset() {
  absmax_ = 0.0f;
  min_ = 0.0f;
  max_ = 0.0f;
  count_ = 0;
  sample_.clear();
}

void Observer::observe(const Tensor& t) { observe(t.flat()); }

void Observer::observe(std::span<const float> values) {
  for (float x : values) {
    if (std::isnan(x)) continue;
    if (count_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    absmax_ = std::max(absmax_, std::fabs(x));
    ++count_;
    // Vitter's algorithm R keeps a uniform sample without storing the
    // whole stream.
    if (sample_.size() < capacity_) {
      sample_.push_back(x);
    } else {
      std::uint64_t r = rng_state_;
      r ^= r >> 12;
      r ^= r << 25;
      r ^= r >> 27;
      rng_state_ = r;
      const auto j = static_cast<std::int64_t>((r * 0x2545F4914F6CDD1Dull) %
                                               static_cast<std::uint64_t>(count_));
      if (j < static_cast<std::int64_t>(capacity_)) {
        sample_[static_cast<size_t>(j)] = x;
      }
    }
  }
}

}  // namespace fp8q
