#include "quant/calibrate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fp8/cast.h"
#include "fp8/int8.h"
#include "tensor/stats.h"

namespace fp8q {

namespace {

/// Fake-quantizes one value with the grid induced by clipping at `clip`.
float quantize_at_clip(float x, float clip, DType target) {
  x = std::clamp(x, -clip, clip);
  if (is_fp8(target)) {
    const auto& spec = fp8_spec(target);
    const float scale = spec.max_value() / clip;
    return fp8_quantize(x * scale, spec) / scale;
  }
  if (target == DType::kINT8) {
    return int8_quantize(x, int8_symmetric_params(clip));
  }
  return x;
}

}  // namespace

double clip_quantization_mse(std::span<const float> values, float clip, DType target) {
  if (values.empty() || !(clip > 0.0f)) return 0.0;
  double acc = 0.0;
  for (float x : values) {
    if (std::isnan(x)) continue;
    const double d = static_cast<double>(x) - quantize_at_clip(x, clip, target);
    acc += d * d;
  }
  return acc / static_cast<double>(values.size());
}

double clip_kl_divergence(std::span<const float> values, float clip, DType target,
                          int bins) {
  if (bins <= 1) throw std::invalid_argument("clip_kl_divergence: need > 1 bins");
  if (values.empty() || !(clip > 0.0f)) return 0.0;

  // Reference distribution P: histogram of |x| over [0, clip]; mass beyond
  // the clip folds into the top bin (it saturates there after quantization).
  std::vector<double> p(static_cast<size_t>(bins), 0.0);
  const float bin_w = clip / static_cast<float>(bins);
  for (float x : values) {
    if (std::isnan(x)) continue;
    const float a = std::fabs(x);
    auto b = static_cast<std::int64_t>(a / bin_w);
    b = std::min<std::int64_t>(b, bins - 1);
    p[static_cast<size_t>(b)] += 1.0;
  }

  // Candidate distribution Q: each source bin maps to the quantized value
  // of its center; bins sharing a grid point share their total mass
  // uniformly across the member bins where P is non-zero.
  std::vector<float> qval(static_cast<size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    const float center = (static_cast<float>(b) + 0.5f) * bin_w;
    qval[static_cast<size_t>(b)] = quantize_at_clip(center, clip, target);
  }
  std::vector<double> q(static_cast<size_t>(bins), 0.0);
  size_t group_start = 0;
  while (group_start < static_cast<size_t>(bins)) {
    size_t group_end = group_start + 1;
    while (group_end < static_cast<size_t>(bins) &&
           qval[group_end] == qval[group_start]) {
      ++group_end;
    }
    double mass = 0.0;
    int nonzero = 0;
    for (size_t b = group_start; b < group_end; ++b) {
      mass += p[b];
      if (p[b] > 0.0) ++nonzero;
    }
    if (nonzero > 0) {
      const double share = mass / nonzero;
      for (size_t b = group_start; b < group_end; ++b) {
        if (p[b] > 0.0) q[b] = share;
      }
    }
    group_start = group_end;
  }

  // Normalize and accumulate KL(P || Q).
  double psum = 0.0;
  double qsum = 0.0;
  for (int b = 0; b < bins; ++b) {
    psum += p[static_cast<size_t>(b)];
    qsum += q[static_cast<size_t>(b)];
  }
  if (psum == 0.0 || qsum == 0.0) return 0.0;
  double kl = 0.0;
  for (int b = 0; b < bins; ++b) {
    const double pb = p[static_cast<size_t>(b)] / psum;
    const double qb = q[static_cast<size_t>(b)] / qsum;
    if (pb > 0.0 && qb > 0.0) kl += pb * std::log(pb / qb);
  }
  return kl;
}

float calibrate_clip(const Observer& obs, CalibMethod method, DType target,
                     double percentile) {
  const float amax = obs.absmax();
  if (!(amax > 0.0f) || obs.empty()) return 1.0f;

  switch (method) {
    case CalibMethod::kAbsMax:
      return amax;

    case CalibMethod::kPercentile: {
      const float clip = abs_quantile(obs.sample(), percentile);
      return clip > 0.0f ? clip : amax;
    }

    case CalibMethod::kMseSweep: {
      float best_clip = amax;
      double best_mse = clip_quantization_mse(obs.sample(), amax, target);
      for (int i = 19; i >= 4; --i) {  // ratios 0.95 .. 0.20
        const float clip = amax * static_cast<float>(i) / 20.0f;
        const double m = clip_quantization_mse(obs.sample(), clip, target);
        if (m < best_mse) {
          best_mse = m;
          best_clip = clip;
        }
      }
      return best_clip;
    }

    case CalibMethod::kKlDivergence: {
      float best_clip = amax;
      double best_kl = clip_kl_divergence(obs.sample(), amax, target, 512);
      for (int i = 19; i >= 4; --i) {
        const float clip = amax * static_cast<float>(i) / 20.0f;
        const double kl = clip_kl_divergence(obs.sample(), clip, target, 512);
        if (kl < best_kl) {
          best_kl = kl;
          best_clip = clip;
        }
      }
      return best_clip;
    }
  }
  return amax;
}

float fp8_activation_scale(DType fmt, float max_t) {
  if (!is_fp8(fmt)) throw std::invalid_argument("fp8_activation_scale: fmt must be FP8");
  if (fmt == DType::kE5M2) return 1.0f;  // direct quantization
  if (!(max_t > 0.0f) || !std::isfinite(max_t)) return 1.0f;
  return fp8_spec(fmt).max_value() / max_t;
}

}  // namespace fp8q
