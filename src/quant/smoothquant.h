// SmoothQuant (Xiao et al. 2022): migrates activation outlier magnitude
// into weights via a per-channel smoothing vector
//   s_j = max|X_j|^alpha / max|W_j|^(1-alpha)
// so X' = X / s and W' = W * s give the same product with a flatter
// activation distribution. The paper enables it on NLP models with the
// default alpha (section 4.2.1).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace fp8q {

/// Computes per-input-channel smoothing factors. `act_absmax[j]` is the
/// calibrated absmax of activation channel j; `weight_absmax[j]` is the
/// absmax over the weight column j (input-channel granularity). Factors are
/// clamped to be positive and finite.
[[nodiscard]] std::vector<float> smoothquant_factors(std::span<const float> act_absmax,
                                                     std::span<const float> weight_absmax,
                                                     float alpha = 0.5f);

/// Scales weight column j of a [out, in] weight by factors[j] (W' = W * s).
void scale_weight_columns(Tensor& weight, std::span<const float> factors);

/// Divides the last axis of an activation tensor by the factors
/// (X' = X / s). `x` is modified in place.
void divide_channels(Tensor& x, std::span<const float> factors);

}  // namespace fp8q
