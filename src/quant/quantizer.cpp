#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fp8/cast.h"
#include "fp8/cast_fast.h"
#include "obs/trace.h"
#include "quant/calibrate.h"
#include "tensor/stats.h"

namespace fp8q {

QuantParams make_weight_params(const Tensor& w, DType dtype, Granularity granularity,
                               int axis) {
  QuantParams p;
  p.dtype = dtype;
  if (dtype == DType::kFP32) return p;
  p.granularity = granularity;
  p.channel_axis = axis;

  if (granularity == Granularity::kPerTensor) {
    const float amax = absmax(w);
    if (is_fp8(dtype)) {
      p.scale = fp8_activation_scale(dtype, amax);
      if (dtype == DType::kE5M2) {
        // Weights always use max scaling, even for E5M2: the direct-cast
        // exception applies to activations only.
        p.scale = amax > 0.0f ? fp8_spec(dtype).max_value() / amax : 1.0f;
      }
    } else {
      p.int8 = int8_symmetric_params(amax);
    }
    return p;
  }

  const auto maxima = absmax_per_channel(w, axis);
  if (is_fp8(dtype)) {
    const float fmax = fp8_spec(dtype).max_value();
    p.channel_scales.resize(maxima.size());
    for (size_t c = 0; c < maxima.size(); ++c) {
      p.channel_scales[c] = maxima[c] > 0.0f ? fmax / maxima[c] : 1.0f;
    }
  } else {
    p.channel_int8.resize(maxima.size());
    for (size_t c = 0; c < maxima.size(); ++c) {
      p.channel_int8[c] = int8_symmetric_params(maxima[c]);
    }
  }
  return p;
}

QuantParams make_activation_params(DType dtype, float min_v, float max_v) {
  QuantParams p;
  p.dtype = dtype;
  if (dtype == DType::kFP32) return p;
  if (is_fp8(dtype)) {
    const float amax = std::max(std::fabs(min_v), std::fabs(max_v));
    p.scale = fp8_activation_scale(dtype, amax);
  } else {
    p.int8 = int8_asymmetric_params(min_v, max_v);
  }
  return p;
}

QuantParams make_dynamic_activation_params(DType dtype, const Tensor& x) {
  if (dtype == DType::kFP32) return QuantParams{};
  const auto [lo, hi] = minmax(x);
  return make_activation_params(dtype, lo, hi);
}

namespace {

void apply_per_channel(Tensor& t, const QuantParams& p) {
  int axis = p.channel_axis;
  if (axis < 0) axis += t.dim();
  if (axis < 0 || axis >= t.dim()) {
    throw std::invalid_argument("apply_quant: bad channel axis");
  }
  const std::int64_t channels = t.size(axis);
  const std::int64_t stride = t.strides()[static_cast<size_t>(axis)];
  const bool fp8 = is_fp8(p.dtype);
  if (fp8 && static_cast<std::int64_t>(p.channel_scales.size()) != channels) {
    throw std::invalid_argument("apply_quant: channel scale count mismatch");
  }
  if (!fp8 && static_cast<std::int64_t>(p.channel_int8.size()) != channels) {
    throw std::invalid_argument("apply_quant: channel int8 param count mismatch");
  }

  auto data = t.flat();
  if (axis == 0 && t.dim() >= 1) {
    // Fast path: contiguous blocks per channel.
    const std::int64_t block = t.numel() / channels;
    for (std::int64_t c = 0; c < channels; ++c) {
      auto span = data.subspan(static_cast<size_t>(c * block), static_cast<size_t>(block));
      if (fp8) {
        fp8_quantize_scaled_fast(span, span, fast_cast_spec(fp8_kind(p.dtype)),
                                 p.channel_scales[static_cast<size_t>(c)]);
      } else {
        int8_quantize(span, span, p.channel_int8[static_cast<size_t>(c)]);
      }
    }
    return;
  }
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const auto c = static_cast<size_t>((i / stride) % channels);
    auto& v = data[static_cast<size_t>(i)];
    if (fp8) {
      const float s = p.channel_scales[c];
      v = fp8_quantize_fast(v * s, fast_cast_spec(fp8_kind(p.dtype))) * (1.0f / s);
    } else {
      v = int8_quantize(v, p.channel_int8[c]);
    }
  }
}

}  // namespace

namespace {

void apply_per_group(Tensor& t, const QuantParams& p) {
  if (p.group_size <= 0) throw std::invalid_argument("apply_quant: bad group size");
  const std::int64_t n = t.numel();
  const auto groups = static_cast<std::int64_t>((n + p.group_size - 1) / p.group_size);
  const bool fp8 = is_fp8(p.dtype);
  if (fp8 && static_cast<std::int64_t>(p.channel_scales.size()) != groups) {
    throw std::invalid_argument("apply_quant: group scale count mismatch");
  }
  if (!fp8 && static_cast<std::int64_t>(p.channel_int8.size()) != groups) {
    throw std::invalid_argument("apply_quant: group int8 param count mismatch");
  }
  auto data = t.flat();
  for (std::int64_t g = 0; g < groups; ++g) {
    const auto begin = static_cast<size_t>(g * p.group_size);
    const auto len = static_cast<size_t>(std::min<std::int64_t>(p.group_size, n - g * p.group_size));
    auto span = data.subspan(begin, len);
    if (fp8) {
      fp8_quantize_scaled_fast(span, span, fast_cast_spec(fp8_kind(p.dtype)),
                               p.channel_scales[static_cast<size_t>(g)]);
    } else {
      int8_quantize(span, span, p.channel_int8[static_cast<size_t>(g)]);
    }
  }
}

}  // namespace

QuantParams make_group_weight_params(const Tensor& w, DType dtype, std::int64_t group_size) {
  if (group_size <= 0) throw std::invalid_argument("make_group_weight_params: bad group size");
  QuantParams p;
  p.dtype = dtype;
  if (dtype == DType::kFP32) return p;
  p.granularity = Granularity::kPerGroup;
  p.group_size = group_size;
  const std::int64_t n = w.numel();
  const auto groups = static_cast<std::int64_t>((n + group_size - 1) / group_size);
  const auto data = w.flat();
  for (std::int64_t g = 0; g < groups; ++g) {
    const auto begin = static_cast<size_t>(g * group_size);
    const auto len = static_cast<size_t>(std::min<std::int64_t>(group_size, n - g * group_size));
    const float amax = absmax(data.subspan(begin, len));
    if (is_fp8(dtype)) {
      p.channel_scales.push_back(amax > 0.0f ? fp8_spec(dtype).max_value() / amax : 1.0f);
    } else {
      p.channel_int8.push_back(int8_symmetric_params(amax));
    }
  }
  return p;
}

void apply_quant_inplace(Tensor& t, const QuantParams& p) {
  if (p.is_noop() || t.empty()) return;
  if (p.granularity == Granularity::kPerGroup) {
    TraceSpan span("quant/apply-group");
    apply_per_group(t, p);
    return;
  }
  if (p.granularity == Granularity::kPerChannel) {
    TraceSpan span("quant/apply-channel");
    apply_per_channel(t, p);
    return;
  }
  TraceSpan span("quant/apply-tensor");
  auto data = t.flat();
  if (is_fp8(p.dtype)) {
    fp8_quantize_scaled_fast(data, data, fast_cast_spec(fp8_kind(p.dtype)), p.scale);
  } else {
    int8_quantize(data, data, p.int8);
  }
}

void apply_per_token_dynamic(Tensor& x, DType dtype) {
  if (dtype == DType::kFP32 || x.dim() < 1 || x.empty()) return;
  TraceSpan span("quant/apply-per-token");
  const std::int64_t d = x.size(-1);
  const std::int64_t rows = x.numel() / d;
  auto data = x.flat();
  for (std::int64_t r = 0; r < rows; ++r) {
    auto row = data.subspan(static_cast<size_t>(r * d), static_cast<size_t>(d));
    if (is_fp8(dtype)) {
      const float amax = absmax(row);
      const float scale = fp8_activation_scale(dtype, amax);
      // E5M2 keeps its direct cast (scale 1) even per-token.
      fp8_quantize_scaled_fast(row, row, fast_cast_spec(fp8_kind(dtype)), scale);
    } else {
      const auto [lo, hi] = minmax(row);
      int8_quantize(row, row, int8_asymmetric_params(lo, hi));
    }
  }
}

Tensor apply_quant(const Tensor& t, const QuantParams& p) {
  Tensor out = t;
  apply_quant_inplace(out, p);
  return out;
}

}  // namespace fp8q
