// Range observers: accumulate statistics of activation tensors during the
// calibration pass.
//
// Static activation quantization (the paper's standard scheme, section
// 3.1) needs the activation range before inference: QuantizedGraph
// attaches one Observer per quantized activation edge, streams the
// calibration batches through the FP32 graph, then hands each observer
// to calibrate_clip (quant/calibrate.h) to produce the clip value its
// scale is derived from. Dynamic quantization (section 3.2) skips this
// machinery entirely -- scales come from the runtime tensor.
//
// Besides the running absmax/min/max the observer keeps a bounded
// uniform reservoir sample of values so the percentile / KL / MSE
// calibrators can be evaluated after the fact (Appendix A.1) without
// retaining whole tensors. absmax/min/max are always exact; only the
// sample-based methods see the reservoir. observe() mutates state and is
// intentionally serial -- calibration streams batches in batch order
// (docs/THREADING.md, "What is intentionally serial").
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fp8q {

class Observer {
 public:
  /// `reservoir_capacity` bounds the memory kept for the sample-based
  /// calibration methods; absmax/minmax are always exact.
  explicit Observer(std::size_t reservoir_capacity = 16384);

  /// Accumulates one calibration tensor.
  void observe(const Tensor& t);
  void observe(std::span<const float> values);

  [[nodiscard]] float absmax() const { return absmax_; }
  [[nodiscard]] float min() const { return min_; }
  [[nodiscard]] float max() const { return max_; }
  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Uniform reservoir sample of observed values (signed).
  [[nodiscard]] const std::vector<float>& sample() const { return sample_; }

  void reset();

 private:
  float absmax_ = 0.0f;
  float min_ = 0.0f;
  float max_ = 0.0f;
  std::int64_t count_ = 0;
  std::size_t capacity_;
  std::vector<float> sample_;
  std::uint64_t rng_state_ = 0x6A09E667F3BCC909ull;
};

}  // namespace fp8q
