#include "obs/histogram.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "core/thread_annotations.h"
#include "obs/domain.h"

namespace fp8q {

namespace {

/// One thread's histogram shard: every channel, guarded by one mutex.
/// Recording locks only the owning thread's shard (uncontended in steady
/// state); snapshots lock each shard briefly while merging. Shards are
/// shared_ptr-held by both the registry and the owning thread, so data
/// survives thread exit (pool resizes), mirroring obs/trace.cpp.
struct HistShard {
  std::mutex mutex;
  HistogramSnapshot channels[kHistChannelCount] FP8Q_GUARDED_BY(mutex);
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<HistShard>> shards FP8Q_GUARDED_BY(mutex);
  /// Open-ended named histograms (per-stage latencies): global table,
  /// per-region event rate, so one mutex is fine.
  std::map<std::string, HistogramSnapshot, std::less<>> named FP8Q_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* reg = new Registry();  // leaked: see obs/counters.cpp
  return *reg;
}

HistShard& local_shard() {
  thread_local std::shared_ptr<HistShard> shard = [] {
    auto s = std::make_shared<HistShard>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.shards.push_back(s);
    return s;
  }();
  return *shard;
}

/// -1 = use the environment default; 0/1 = explicit override.
std::atomic<int> g_enabled_override{-1};

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool env_default_enabled() {
  static const bool value = env_truthy("FP8Q_HIST") || env_truthy("FP8Q_TRACE") ||
                            std::getenv("FP8Q_REPORT") != nullptr;
  return value;
}

}  // namespace

int hist_bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // zero, negative and NaN (fails the compare)
  const std::uint64_t u = std::bit_cast<std::uint64_t>(v);
  // Unbiased exponent; subnormal doubles read as -1023 and clamp below.
  const int exp = static_cast<int>(u >> 52) - 1023;
  if (exp > kHistMaxExp2) return kHistBucketCount - 1;  // incl. +Inf
  if (exp < kHistMinExp2) return 1;
  const int sub = static_cast<int>((u >> (52 - kHistSubBucketBits)) &
                                   static_cast<std::uint64_t>(kHistSubBuckets - 1));
  return 1 + (exp - kHistMinExp2) * kHistSubBuckets + sub;
}

double hist_bucket_lower_bound(int bucket) {
  if (bucket <= 0) return 0.0;
  if (bucket >= kHistBucketCount) bucket = kHistBucketCount - 1;
  const int i = bucket - 1;
  const int exp = kHistMinExp2 + i / kHistSubBuckets;
  const int sub = i % kHistSubBuckets;
  // Exact: a dyadic rational scaled by a power of two.
  return std::ldexp(1.0 + static_cast<double>(sub) / kHistSubBuckets, exp);
}

double HistogramSnapshot::quantile(double q) const {
  if (total == 0) return 0.0;
  if (q >= 1.0) return max_value;
  // 1-based rank of the requested order statistic (nearest-rank method).
  double r = std::ceil(q * static_cast<double>(total));
  if (r < 1.0) r = 1.0;
  const auto rank = static_cast<std::uint64_t>(r);
  std::uint64_t cum = 0;
  for (int i = 0; i < kHistBucketCount; ++i) {
    cum += counts[i];
    if (cum >= rank) {
      double rep = hist_bucket_lower_bound(i);
      // The exact extremes tighten the bucket bound (and make a
      // single-value histogram report that value at every q).
      if (rep < min_value) rep = min_value;
      if (rep > max_value) rep = max_value;
      return rep;
    }
  }
  return max_value;  // unreachable when counts sum to total
}

void HistogramSnapshot::merge_from(const HistogramSnapshot& other) {
  if (other.total == 0) return;
  for (int i = 0; i < kHistBucketCount; ++i) counts[i] += other.counts[i];
  if (total == 0) {
    min_value = other.min_value;
    max_value = other.max_value;
  } else {
    if (other.min_value < min_value) min_value = other.min_value;
    if (other.max_value > max_value) max_value = other.max_value;
  }
  total += other.total;
}

const char* to_string(HistChannel channel) {
  switch (channel) {
    case HistChannel::kCastMagE5M2: return "cast_mag/e5m2";
    case HistChannel::kCastMagE4M3: return "cast_mag/e4m3";
    case HistChannel::kCastMagE3M4: return "cast_mag/e3m4";
    case HistChannel::kCastMagInt8: return "cast_mag/int8";
    case HistChannel::kCastMagOther: return "cast_mag/other";
    case HistChannel::kStageWallNs: return "latency/stage_ns";
    case HistChannel::kTuneTrialNs: return "latency/tune_trial_ns";
    case HistChannel::kCacheHitNs: return "latency/cache_hit_ns";
    case HistChannel::kCacheMissNs: return "latency/cache_miss_ns";
    case HistChannel::kParallelTaskNs: return "latency/parallel_task_ns";
  }
  return "?";
}

HistChannel cast_mag_channel(ObsFormat fmt) {
  static_assert(static_cast<int>(HistChannel::kCastMagE5M2) ==
                static_cast<int>(ObsFormat::kE5M2));
  static_assert(static_cast<int>(HistChannel::kCastMagOther) ==
                static_cast<int>(ObsFormat::kOther));
  return static_cast<HistChannel>(static_cast<int>(fmt));
}

bool histograms_enabled() {
  const int override_v = g_enabled_override.load(std::memory_order_relaxed);
  return override_v >= 0 ? override_v != 0 : env_default_enabled();
}

void set_histograms_enabled(bool enabled) {
  g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void hist_record(HistChannel channel, double v) {
  LocalHistogram one;
  one.record(v);
  if (CounterDomain* domain = current_counter_domain()) {
    domain->merge_histogram(channel, one.snap);
    return;
  }
  HistShard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.channels[static_cast<int>(channel)].merge_from(one.snap);
}

void hist_merge(HistChannel channel, const LocalHistogram& local) {
  if (local.snap.total == 0) return;
  if (CounterDomain* domain = current_counter_domain()) {
    domain->merge_histogram(channel, local.snap);
    return;
  }
  HistShard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.channels[static_cast<int>(channel)].merge_from(local.snap);
}

void hist_record_named(std::string_view name, double v) {
  LocalHistogram one;
  one.record(v);
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.named.find(name);
  if (it == reg.named.end()) it = reg.named.emplace(std::string(name), HistogramSnapshot{}).first;
  it->second.merge_from(one.snap);
}

HistogramSnapshot histogram_snapshot(HistChannel channel) {
  if (const CounterDomain* domain = current_counter_domain()) return domain->histogram(channel);
  Registry& reg = registry();
  std::vector<std::shared_ptr<HistShard>> shards;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    shards = reg.shards;
  }
  HistogramSnapshot merged;
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    merged.merge_from(shard->channels[static_cast<int>(channel)]);
  }
  return merged;
}

std::vector<NamedHistogram> named_histogram_snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<NamedHistogram> out;
  out.reserve(reg.named.size());
  for (const auto& [name, hist] : reg.named) out.push_back({name, hist});
  return out;  // std::map iteration is already name-sorted
}

std::vector<NamedHistogram> all_histograms_snapshot() {
  std::vector<NamedHistogram> out;
  for (int c = 0; c < kHistChannelCount; ++c) {
    const auto channel = static_cast<HistChannel>(c);
    HistogramSnapshot snap = histogram_snapshot(channel);
    if (snap.any()) out.push_back({to_string(channel), std::move(snap)});
  }
  std::vector<NamedHistogram> named = named_histogram_snapshot();
  out.insert(out.end(), std::make_move_iterator(named.begin()),
             std::make_move_iterator(named.end()));
  std::sort(out.begin(), out.end(),
            [](const NamedHistogram& a, const NamedHistogram& b) { return a.name < b.name; });
  return out;
}

void histograms_reset() {
  if (CounterDomain* domain = current_counter_domain()) {
    domain->reset_histograms();
    return;
  }
  Registry& reg = registry();
  std::vector<std::shared_ptr<HistShard>> shards;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    shards = reg.shards;
    reg.named.clear();
  }
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto& channel : shard->channels) channel = HistogramSnapshot{};
  }
}

}  // namespace fp8q
