// Quantization-event counters (docs/OBSERVABILITY.md).
//
// Counts the numerical events that decide whether an FP8 recipe works --
// the saturation / underflow / NaN effects that make E4M3 vs E3M4 diverge
// (Kuzmin et al., Micikevicius et al.) -- per format, process-wide:
//
//   kQuantized      elements pushed through a counted bulk cast
//   kSaturated      finite magnitude beyond max_value clamped to +/-max
//                   (includes +/-Inf inputs under the saturating policy)
//   kFlushedToZero  nonzero input rounded to +/-0 (below half the
//                   smallest subnormal after scaling)
//   kNanProduced    NaN output from a non-NaN input (kInfinityNan
//                   overflow on formats without Inf); NaN pass-through is
//                   not counted
//   kInfProduced    Inf output from a finite input (kInfinityNan, E5M2)
//
// Design: counters are sharded per thread. counter_add() touches only the
// calling thread's shard (a relaxed atomic add, no cross-thread cache-line
// contention on the hot path), and counters_snapshot() aggregates every
// live shard plus the totals of already-exited threads. This is compatible
// with the docs/THREADING.md determinism contract: counting never changes
// a computed value, and aggregated totals are identical at every thread
// count (per-shard split differs, the sum does not).
//
// Cost when disabled: instrumented sites check counters_enabled() once per
// *bulk call* (one relaxed atomic load), never per element, and run their
// original uninstrumented loops. Enable with FP8Q_TRACE=1, by setting
// FP8Q_REPORT, or programmatically via set_counters_enabled(true).
//
// Scoped routing: a thread bound to a CounterDomain (obs/domain.h,
// ScopedCounterDomain) redirects every add/snapshot/reset in this header
// to that domain instead of the shards/globals -- how fp8qd isolates one
// job's events under concurrent execution. Unbound threads (every
// non-daemon caller) behave exactly as documented above.
#pragma once

#include <cstdint>

namespace fp8q {

/// Format dimension of the counter matrix. Kept obs-local (not DType) so
/// the obs layer stays below fp8/ and quant/ in the link order. kOther
/// buckets custom EeMm formats built with make_format.
enum class ObsFormat : std::uint8_t { kE5M2, kE4M3, kE3M4, kInt8, kOther };
inline constexpr int kObsFormatCount = 5;

/// Event dimension of the counter matrix (see file comment).
enum class ObsEvent : std::uint8_t {
  kQuantized,
  kSaturated,
  kFlushedToZero,
  kNanProduced,
  kInfProduced,
};
inline constexpr int kObsEventCount = 5;

/// Stable lowercase names used in report.json ("e4m3", "saturated", ...).
[[nodiscard]] const char* to_string(ObsFormat fmt);
[[nodiscard]] const char* to_string(ObsEvent event);

/// True when instrumented sites should count. Defaults to the environment:
/// enabled when FP8Q_TRACE is truthy or FP8Q_REPORT is set.
[[nodiscard]] bool counters_enabled();

/// Programmatic override of the environment default (tests, embedders).
void set_counters_enabled(bool enabled);

/// Adds `n` to one cell of the calling thread's shard. Thread-safe and
/// wait-free against other writers; callers batch per-chunk local tallies
/// into one add rather than incrementing per element.
void counter_add(ObsFormat fmt, ObsEvent event, std::uint64_t n);

/// Point-in-time aggregate of all shards (live threads + exited threads).
struct CounterSnapshot {
  std::uint64_t counts[kObsFormatCount][kObsEventCount] = {};

  [[nodiscard]] std::uint64_t get(ObsFormat fmt, ObsEvent event) const {
    return counts[static_cast<int>(fmt)][static_cast<int>(event)];
  }
  /// Sum of one event over every format.
  [[nodiscard]] std::uint64_t total(ObsEvent event) const;
  /// True if any cell is nonzero.
  [[nodiscard]] bool any() const;
  /// Cell-wise difference (for "delta over a stage"); saturates at 0 if a
  /// reset happened in between.
  [[nodiscard]] CounterSnapshot since(const CounterSnapshot& earlier) const;

  friend bool operator==(const CounterSnapshot&, const CounterSnapshot&);
};

/// Aggregates every shard. Safe to call concurrently with counter_add;
/// concurrent adds may or may not be included (each cell is internally
/// consistent, the snapshot is not a cross-cell atomic cut).
[[nodiscard]] CounterSnapshot counters_snapshot();

/// Zeroes every shard. Call only while no instrumented work is running.
void counters_reset();

// ---------------------------------------------------------------------------
// Cache-event counters (the quantized-weight cache, quant/weight_cache.h).
//
// Orders of magnitude rarer than quantization events (one per weight-quant
// call, not per element), so these are plain process-global atomics rather
// than per-thread shards, and they are always on -- the cache mirrors its
// internal stats here unconditionally so a report written after the fact
// still sees them. Kept obs-local so the cache's owner (quant/) stays above
// obs/ in the link order, same as the format counters.

/// What happened to one cache lookup.
enum class ObsCacheEvent : std::uint8_t {
  kHit,     ///< entry found; quantized data copied out, tally replayed
  kMiss,    ///< computed and inserted
  kEvict,   ///< entry dropped to satisfy the capacity cap
  kBypass,  ///< uncacheable request (dtype/granularity), computed directly
};
inline constexpr int kObsCacheEventCount = 4;

/// Stable lowercase names used in report.json ("hit", "miss", ...).
[[nodiscard]] const char* to_string(ObsCacheEvent event);

/// Adds `n` to one cache-event cell. Thread-safe, relaxed.
void cache_counter_add(ObsCacheEvent event, std::uint64_t n);

/// Point-in-time aggregate of the cache-event counters.
struct CacheCounterSnapshot {
  std::uint64_t counts[kObsCacheEventCount] = {};

  [[nodiscard]] std::uint64_t get(ObsCacheEvent event) const {
    return counts[static_cast<int>(event)];
  }
  [[nodiscard]] bool any() const;
  /// Cell-wise difference (per-job deltas in the fp8qd service); saturates
  /// at 0 if a reset happened in between.
  [[nodiscard]] CacheCounterSnapshot since(const CacheCounterSnapshot& earlier) const;

  friend bool operator==(const CacheCounterSnapshot&, const CacheCounterSnapshot&) = default;
};

[[nodiscard]] CacheCounterSnapshot cache_counters_snapshot();

/// Zeroes the cache-event counters. Call only between runs.
void cache_counters_reset();

// ---------------------------------------------------------------------------
// Kernel-path counters (the packed-FP8 compute paths, docs/KERNELS.md).
//
// Records, per forward call (not per element), whether a compute op ran on
// packed 8-bit weight codes or fell back to the dequantized FP32 path, so
// a run report shows at a glance how much of the graph the packed kernels
// actually covered. One event per op forward -- rare like cache events --
// so these are the same always-on process-global atomics.

/// Which compute path one op forward (or cache decode) took.
enum class ObsKernelPath : std::uint8_t {
  kLinearPacked,  ///< LinearOp forward on packed codes
  kLinearFp32,    ///< LinearOp forward on the FP32 weight
  kConvPacked,    ///< Conv2dOp forward on packed codes
  kConvFp32,      ///< Conv2dOp forward on the FP32 weight
  kMatmulPacked,  ///< packed_matmul on packed codes
  kMatmulFp32,    ///< MatMulOp forward (both operands FP32)
  kCacheDecode,   ///< weight-cache hit served by decoding packed codes
};
inline constexpr int kObsKernelPathCount = 7;

/// Stable lowercase names used in report.json ("linear_packed", ...).
[[nodiscard]] const char* to_string(ObsKernelPath path);

/// Adds `n` to one kernel-path cell. Thread-safe, relaxed.
void kernel_counter_add(ObsKernelPath path, std::uint64_t n);

/// Point-in-time aggregate of the kernel-path counters.
struct KernelCounterSnapshot {
  std::uint64_t counts[kObsKernelPathCount] = {};

  [[nodiscard]] std::uint64_t get(ObsKernelPath path) const {
    return counts[static_cast<int>(path)];
  }
  [[nodiscard]] bool any() const;
  /// Cell-wise difference (per-job deltas in the fp8qd service); saturates
  /// at 0 if a reset happened in between.
  [[nodiscard]] KernelCounterSnapshot since(const KernelCounterSnapshot& earlier) const;

  friend bool operator==(const KernelCounterSnapshot&, const KernelCounterSnapshot&) = default;
};

[[nodiscard]] KernelCounterSnapshot kernel_counters_snapshot();

/// Zeroes the kernel-path counters. Call only between runs.
void kernel_counters_reset();

}  // namespace fp8q
