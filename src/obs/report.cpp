#include "obs/report.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/thread_annotations.h"

namespace fp8q {

namespace {

std::atomic<RunReport*> g_active_report{nullptr};

/// Per-thread shadow of the global report (ScopedThreadReport). The flag
/// distinguishes "bound to nullptr" from "not bound at all".
thread_local ThreadReportBinding tls_report;

/// Guards appends to the active report's stage list. The report pointer
/// itself is the atomic above (lock-free null check on the hot path); the
/// *pointed-to* stages vector is only mutated under this mutex.
std::mutex g_report_mutex;

/// JSON string escaping (control characters, quotes, backslash).
void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Shortest round-trippable decimal for a double (%.17g is always exact).
void write_double(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

void write_counters(std::ostream& out, const CounterSnapshot& snap,
                    const char* indent) {
  out << "{";
  for (int f = 0; f < kObsFormatCount; ++f) {
    out << (f == 0 ? "\n" : ",\n") << indent << "  \""
        << to_string(static_cast<ObsFormat>(f)) << "\": {";
    for (int e = 0; e < kObsEventCount; ++e) {
      out << (e == 0 ? "" : ", ") << '"' << to_string(static_cast<ObsEvent>(e))
          << "\": " << snap.counts[f][e];
    }
    out << "}";
  }
  out << "\n" << indent << "}";
}

/// One histogram: headline stats (count/min/max/p50/p95/p99, derived --
/// recomputed on read) plus the sparse bucket list [[index, count], ...]
/// that round-trips the distribution exactly.
void write_histogram(std::ostream& out, const HistogramSnapshot& h) {
  out << "{\"count\": " << h.total << ", \"min\": ";
  write_double(out, h.any() ? h.min_value : 0.0);
  out << ", \"max\": ";
  write_double(out, h.any() ? h.max_value : 0.0);
  out << ", \"p50\": ";
  write_double(out, h.quantile(0.50));
  out << ", \"p95\": ";
  write_double(out, h.quantile(0.95));
  out << ", \"p99\": ";
  write_double(out, h.quantile(0.99));
  out << ", \"buckets\": [";
  bool first = true;
  for (int i = 0; i < kHistBucketCount; ++i) {
    if (h.counts[i] == 0) continue;
    out << (first ? "" : ", ") << "[" << i << ", " << h.counts[i] << "]";
    first = false;
  }
  out << "]}";
}

}  // namespace

void RunReport::write_json(std::ostream& out) const {
  out << "{\n";
  out << "  \"fp8q_report_version\": " << kReportVersion << ",\n";
  out << "  \"tool\": ";
  write_escaped(out, tool);
  out << ",\n  \"num_threads\": " << num_threads << ",\n";
  out << "  \"isa\": ";
  write_escaped(out, isa);
  out << ",\n";

  out << "  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageReport& s = stages[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
    write_escaped(out, s.name);
    out << ", \"wall_ms\": ";
    write_double(out, s.wall_ms);
    out << ", \"alloc_bytes\": " << s.alloc_bytes << ", \"allocs\": " << s.allocs
        << ", \"counters\": ";
    write_counters(out, s.counters, "    ");
    out << "}";
  }
  out << (stages.empty() ? "],\n" : "\n  ],\n");

  out << "  \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const AccuracyRecord& r = records[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"workload\": ";
    write_escaped(out, r.workload);
    out << ", \"domain\": ";
    write_escaped(out, r.domain);
    out << ", \"config\": ";
    write_escaped(out, r.config);
    out << ", \"fp32_accuracy\": ";
    write_double(out, r.fp32_accuracy);
    out << ", \"quant_accuracy\": ";
    write_double(out, r.quant_accuracy);
    out << ", \"model_size_mb\": ";
    write_double(out, r.model_size_mb);
    out << ", \"relative_loss\": ";
    write_double(out, r.relative_loss());
    out << ", \"passes\": " << (r.passes() ? "true" : "false") << "}";
  }
  out << (records.empty() ? "],\n" : "\n  ],\n");

  out << "  \"counters\": ";
  write_counters(out, counters, "  ");
  out << ",\n";

  out << "  \"weight_cache\": {";
  for (int e = 0; e < kObsCacheEventCount; ++e) {
    out << (e == 0 ? "" : ", ") << '"' << to_string(static_cast<ObsCacheEvent>(e))
        << "\": " << weight_cache.counts[e];
  }
  out << "},\n";

  out << "  \"kernel_paths\": {";
  for (int e = 0; e < kObsKernelPathCount; ++e) {
    out << (e == 0 ? "" : ", ") << '"' << to_string(static_cast<ObsKernelPath>(e))
        << "\": " << kernel_paths.counts[e];
  }
  out << "},\n";

  out << "  \"memory\": {\"peak_rss_bytes\": " << memory.peak_rss_bytes
      << ", \"alloc_bytes\": " << memory.alloc_bytes << ", \"allocs\": " << memory.allocs
      << "},\n";

  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    write_escaped(out, histograms[i].name);
    out << ": ";
    write_histogram(out, histograms[i].hist);
  }
  out << (histograms.empty() ? "},\n" : "\n  },\n");

  out << "  \"spans_dropped\": " << spans_dropped << ",\n";
  out << "  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"id\": " << s.id
        << ", \"parent\": " << s.parent << ", \"thread\": " << s.thread_id
        << ", \"name\": ";
    write_escaped(out, s.name);
    out << ", \"start_ns\": " << s.start_ns << ", \"duration_ns\": " << s.duration_ns
        << "}";
  }
  out << (spans.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

RunReport* active_report() {
  if (tls_report.bound) return tls_report.report;
  return g_active_report.load(std::memory_order_acquire);
}

void set_active_report(RunReport* report) {
  g_active_report.store(report, std::memory_order_release);
}

ThreadReportBinding current_thread_report() { return tls_report; }

ThreadReportBinding set_thread_report(ThreadReportBinding binding) {
  const ThreadReportBinding previous = tls_report;
  tls_report = binding;
  return previous;
}

ScopedThreadReport::ScopedThreadReport(RunReport* report)
    : prev_(tls_report.report), prev_bound_(tls_report.bound) {
  tls_report.report = report;
  tls_report.bound = true;
}

ScopedThreadReport::~ScopedThreadReport() {
  tls_report.report = prev_;
  tls_report.bound = prev_bound_;
}

ScopedStage::ScopedStage(std::string_view name) : span_(name) {
  report_armed_ = active_report() != nullptr;
  if (!report_armed_ && !histograms_enabled()) return;
  armed_ = true;
  name_ = name;
  start_ns_ = obs_now_ns();
  if (report_armed_) {
    start_counters_ = counters_snapshot();
    start_allocs_ = alloc_counters_snapshot();
  }
}

ScopedStage::~ScopedStage() {
  if (!armed_) return;
  const std::uint64_t wall_ns = obs_now_ns() - start_ns_;
  if (histograms_enabled()) {
    hist_record(HistChannel::kStageWallNs, static_cast<double>(wall_ns));
    hist_record_named("stage:" + name_, static_cast<double>(wall_ns));
  }
  if (!report_armed_) return;
  const AllocCounterSnapshot alloc_delta = alloc_counters_snapshot().since(start_allocs_);
  report_add_stage(name_, static_cast<double>(wall_ns) / 1e6,
                   counters_snapshot().since(start_counters_), alloc_delta.bytes,
                   alloc_delta.allocs);
}

void report_add_stage(std::string_view name, double wall_ms,
                      const CounterSnapshot& counters, std::uint64_t alloc_bytes,
                      std::uint64_t allocs) {
  std::lock_guard<std::mutex> lock(g_report_mutex);
  RunReport* report = active_report();
  if (report == nullptr) return;
  StageReport stage;
  stage.name = name;
  stage.wall_ms = wall_ms;
  stage.counters = counters;
  stage.alloc_bytes = alloc_bytes;
  stage.allocs = allocs;
  report->stages.push_back(std::move(stage));
}

const char* report_env_path() {
  const char* path = std::getenv("FP8Q_REPORT");
  return (path != nullptr && path[0] != '\0') ? path : nullptr;
}

bool write_report_if_requested(RunReport& report) {
  const char* path = report_env_path();
  if (path == nullptr) return false;
  report.counters = counters_snapshot();
  report.weight_cache = cache_counters_snapshot();
  report.kernel_paths = kernel_counters_snapshot();
  const AllocCounterSnapshot allocs = alloc_counters_snapshot();
  report.memory.peak_rss_bytes = peak_rss_bytes();
  report.memory.alloc_bytes = allocs.bytes;
  report.memory.allocs = allocs.allocs;
  report.histograms = all_histograms_snapshot();
  report.spans = trace_snapshot();
  report.spans_dropped = trace_dropped();
  std::ofstream out(path);
  if (!out) throw std::runtime_error(std::string("fp8q report: cannot open ") + path);
  report.write_json(out);
  if (!out) throw std::runtime_error(std::string("fp8q report: write failed: ") + path);
  return true;
}

}  // namespace fp8q
