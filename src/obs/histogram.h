// Log-bucketed value/latency histograms (docs/OBSERVABILITY.md).
//
// The paper's analysis is distributional -- tensor-value histograms
// (Fig. 3), per-format saturation behavior -- and so are the operational
// questions the telemetry layer must answer (tail latency, cache lookup
// cost). Scalars cannot express either; these histograms can, while
// keeping the two properties the rest of the obs layer guarantees:
//
//   determinism   Bucket counts are integers and bucket assignment is a
//                 pure function of the recorded value's bits, so merged
//                 totals -- and every quantile derived from them -- are
//                 identical at any thread count (docs/THREADING.md). No
//                 floating-point sums are kept: a sum's value depends on
//                 accumulation order, a count's does not. min/max are
//                 exact and order-invariant.
//
//   disabled cost Instrumented sites check histograms_enabled() once per
//                 bulk call (one relaxed atomic load) and skip all
//                 recording, exactly like counters_enabled().
//
// Bucket layout (HDR-histogram style): nonpositive/NaN values land in
// bucket 0; positive values are split by power-of-two binade (exponent
// clamped to [kHistMinExp2, kHistMaxExp2]) with kHistSubBuckets
// log-spaced sub-buckets per binade (top mantissa bits), giving a
// constant ~9% relative resolution over ~38 decades. quantile(q) returns
// the lower bound of the bucket holding the rank-ceil(q*total) value
// (clamped into [min, max]), so p50/p95/p99 are exact to one bucket and
// max is exact.
//
// Sharding mirrors obs/trace.cpp: each thread owns a registry-held shard
// (kept alive by shared_ptr across pool resizes); recording locks only
// the calling thread's shard, and snapshots merge every shard plus a
// global named-histogram table. Channels (HistChannel) are the fixed,
// hot instrumentation points; named histograms cover open-ended keys
// (per-stage latencies) at map-lookup cost.
//
// Scoped routing: a thread bound to a CounterDomain (obs/domain.h)
// redirects the *channel* record/merge/snapshot/reset functions to the
// domain. The named table stays process-global -- open-ended telemetry,
// not part of a job's deterministic result surface.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/counters.h"

namespace fp8q {

/// Sub-buckets per power-of-two binade (log-spaced, from the top
/// mantissa bits): resolution is a constant factor 2^(1/8) ~ 9%.
inline constexpr int kHistSubBucketBits = 3;
inline constexpr int kHistSubBuckets = 1 << kHistSubBucketBits;

/// Binade range covered exactly: [2^-80, 2^48). Below, values clamp into
/// the first finite bucket; above (and +Inf), into the last. The range
/// spans both fake-quant magnitudes (FP8 subnormals sit near 2^-27 after
/// per-channel scaling) and nanosecond latencies (2^48 ns ~ 3 days).
inline constexpr int kHistMinExp2 = -80;
inline constexpr int kHistMaxExp2 = 47;

/// Bucket 0 = zero/negative/NaN; then one bucket per (binade, sub-bucket).
inline constexpr int kHistBucketCount =
    1 + (kHistMaxExp2 - kHistMinExp2 + 1) * kHistSubBuckets;

/// Bucket index for a value: pure bit arithmetic on the double, no
/// branches on data beyond the clamps. Deterministic by construction.
[[nodiscard]] int hist_bucket_index(double v);

/// Lower bound of bucket i (0.0 for bucket 0). Exact: built from ldexp of
/// a dyadic rational, and the deterministic quantile representative.
[[nodiscard]] double hist_bucket_lower_bound(int bucket);

/// A merged (or merging) histogram: integer bucket counts plus exact
/// min/max. Also the per-thread shard cell and the JSON round-trip form.
struct HistogramSnapshot {
  std::uint64_t counts[kHistBucketCount] = {};
  std::uint64_t total = 0;
  double min_value = 0.0;  ///< exact smallest recorded value (valid when total > 0)
  double max_value = 0.0;  ///< exact largest recorded value (valid when total > 0)

  [[nodiscard]] bool any() const { return total != 0; }

  /// Lower bound of the bucket containing the value of rank ceil(q*total)
  /// (1-based), clamped into [min_value, max_value] so quantile(1.0) is
  /// the exact max and a single-value histogram reports that value for
  /// every q. Returns 0 when empty. Bitwise-deterministic given equal
  /// bucket counts.
  [[nodiscard]] double quantile(double q) const;

  /// Commutative, associative merge; the shard-fold primitive.
  void merge_from(const HistogramSnapshot& other);

  friend bool operator==(const HistogramSnapshot&, const HistogramSnapshot&) = default;
};

/// Stack-local accumulator for hot loops: record per element, fold into
/// the shared shard once per chunk with hist_merge (one lock per chunk,
/// mirroring how CastTally folds into counter_add).
struct LocalHistogram {
  HistogramSnapshot snap;

  void record(double v) {
    ++snap.counts[static_cast<std::size_t>(hist_bucket_index(v))];
    if (snap.total == 0) {
      snap.min_value = v;
      snap.max_value = v;
    } else {
      if (v < snap.min_value) snap.min_value = v;
      if (v > snap.max_value) snap.max_value = v;
    }
    ++snap.total;
  }
};

/// Fixed instrumentation channels. The cast_mag/* channels record the
/// pre-quantization |x| distribution in the scaled domain (the format's
/// own range), one channel per ObsFormat; they are deterministic and
/// thread-count-invariant. The latency/* channels record wall-clock
/// durations in nanoseconds; their *values* are nondeterministic (clock)
/// and their counts may vary with thread count (chunking, cache hits) --
/// they are performance observations, not results.
enum class HistChannel : std::uint8_t {
  kCastMagE5M2,
  kCastMagE4M3,
  kCastMagE3M4,
  kCastMagInt8,
  kCastMagOther,
  kStageWallNs,      ///< ScopedStage durations
  kTuneTrialNs,      ///< tuner per-trial evaluation times
  kCacheHitNs,       ///< weight-cache lookups that hit
  kCacheMissNs,      ///< weight-cache lookups that missed (incl. quantize)
  kParallelTaskNs,   ///< parallel_run task durations (needs tracing on)
};
inline constexpr int kHistChannelCount = 10;

/// Stable names used in report.json ("cast_mag/e4m3", "latency/stage_ns").
[[nodiscard]] const char* to_string(HistChannel channel);

/// The magnitude channel for a format (same order as ObsFormat).
[[nodiscard]] HistChannel cast_mag_channel(ObsFormat fmt);

/// True when instrumented sites should record. Defaults to the
/// environment: enabled when FP8Q_HIST or FP8Q_TRACE is truthy or
/// FP8Q_REPORT is set; set_histograms_enabled overrides.
[[nodiscard]] bool histograms_enabled();
void set_histograms_enabled(bool enabled);

/// Records one value into the calling thread's shard. Callers on hot
/// loops accumulate a LocalHistogram and fold with hist_merge instead.
void hist_record(HistChannel channel, double v);

/// Folds a chunk-local accumulation into the calling thread's shard.
void hist_merge(HistChannel channel, const LocalHistogram& local);

/// Records into the open-ended named table (per-stage latencies). The
/// table is process-global and mutex-guarded; use for per-region events,
/// not per-element ones.
void hist_record_named(std::string_view name, double v);

/// One named histogram as surfaced in reports.
struct NamedHistogram {
  std::string name;
  HistogramSnapshot hist;
};

/// Merged snapshot of one channel across every shard (live and retired).
[[nodiscard]] HistogramSnapshot histogram_snapshot(HistChannel channel);

/// Every named histogram, sorted by name.
[[nodiscard]] std::vector<NamedHistogram> named_histogram_snapshot();

/// All channels with any() data plus all named histograms, each under its
/// stable name, sorted. The report writer's source.
[[nodiscard]] std::vector<NamedHistogram> all_histograms_snapshot();

/// Zeroes every shard and the named table. Call only while no
/// instrumented work is running.
void histograms_reset();

}  // namespace fp8q
