// Scoped observation domains (docs/OBSERVABILITY.md, docs/THREADING.md).
//
// A CounterDomain is a private copy of the observation state one unit of
// work accumulates: the quantization-event counter matrix, the cache- and
// kernel-path counters, an allocation sink, and the fixed histogram
// channels. A thread binds a domain with ScopedCounterDomain; while
// bound, every obs write primitive (counter_add, cache_counter_add,
// kernel_counter_add, hist_record, hist_merge, alloc_counter_add) lands
// in the domain instead of the process globals, and every matching
// snapshot function reads the domain's view. Unbound threads are
// untouched: with no domain bound, the primitives hit the same sharded /
// global state they always have, so non-daemon callers see no change.
//
// This exists for concurrent job execution in fp8qd (docs/SERVICE.md):
// with N executor workers running jobs at once, "global counters before
// minus after" no longer isolates one job's events. Instead each job runs
// under a fresh domain -- bound on the executor worker and propagated to
// the core/parallel threads the job fans out to (core/parallel.h) -- so
// its report-v4 counter blocks are exact deltas by construction, at any
// worker count and any interleaving. When the job finishes,
// fold_into_global() moves the domain's totals into the enclosing sink
// (the caller's currently bound domain, or the process globals), so
// cumulative process-wide totals -- the daemon's exit report, the stats
// endpoint -- still add up as if no domain had ever been bound.
//
// Determinism: a domain is pure routing. It never changes a computed
// value, and a fold preserves every count exactly (integer adds, exact
// min/max histogram merges), so "sum over domains + globals" is invariant.
//
// Named histograms (hist_record_named) and trace spans stay process-
// global: both are open-ended observational telemetry keyed by name/time,
// not part of a job's deterministic result surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "core/thread_annotations.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/memory.h"

namespace fp8q {

/// One unit of work's private observation state. Writes are relaxed
/// atomics (histograms: a domain-local mutex), so any number of threads
/// bound to the same domain may record concurrently -- the fan-out of one
/// job over the core/parallel pool.
class CounterDomain {
 public:
  CounterDomain() = default;
  CounterDomain(const CounterDomain&) = delete;
  CounterDomain& operator=(const CounterDomain&) = delete;

  // -- write primitives (called by the obs routing layer, not directly) --
  void add(ObsFormat fmt, ObsEvent event, std::uint64_t n);
  void add_cache(ObsCacheEvent event, std::uint64_t n);
  void add_kernel(ObsKernelPath path, std::uint64_t n);
  void merge_histogram(HistChannel channel, const HistogramSnapshot& snap);
  [[nodiscard]] AllocSink& alloc_sink() { return alloc_sink_; }

  // -- the domain's view (what the snapshot functions return when bound) --
  [[nodiscard]] CounterSnapshot counters() const;
  [[nodiscard]] CacheCounterSnapshot cache_counters() const;
  [[nodiscard]] KernelCounterSnapshot kernel_counters() const;
  [[nodiscard]] AllocCounterSnapshot alloc_counters() const { return alloc_sink_.snapshot(); }
  [[nodiscard]] HistogramSnapshot histogram(HistChannel channel) const;

  /// Zeroes one counter family (the reset functions route here when a
  /// domain is bound) or everything.
  void reset_counters();
  void reset_cache_counters();
  void reset_kernel_counters();
  void reset_histograms();
  void reset();

  /// Moves (not copies: the domain is left empty) every tally into the
  /// calling thread's enclosing sink -- the currently bound domain when
  /// domains nest, else the process globals. Call after the last
  /// ScopedCounterDomain binding this domain has been destroyed; folding
  /// while still bound routes the counts straight back (a no-op, nothing
  /// is lost). Not safe to call while other threads still write to this
  /// domain.
  void fold_into_global();

 private:
  std::atomic<std::uint64_t> counts_[kObsFormatCount][kObsEventCount] = {};
  std::atomic<std::uint64_t> cache_counts_[kObsCacheEventCount] = {};
  std::atomic<std::uint64_t> kernel_counts_[kObsKernelPathCount] = {};
  AllocSink alloc_sink_;
  mutable std::mutex hist_mutex_;
  HistogramSnapshot hist_channels_[kHistChannelCount] FP8Q_GUARDED_BY(hist_mutex_);
};

/// The calling thread's bound domain, or nullptr (global routing).
[[nodiscard]] CounterDomain* current_counter_domain();

/// Binds `domain` to the calling thread (nullptr restores global routing)
/// and returns the previous binding. Prefer ScopedCounterDomain; this raw
/// form exists for the parallel runtime, which saves/restores around each
/// pool job when propagating the dispatching thread's obs context
/// (core/parallel.cpp).
CounterDomain* set_thread_counter_domain(CounterDomain* domain);

/// RAII binding: routes this thread's obs writes (and the allocation
/// sink, obs/memory.h) to `domain` for the scope's lifetime, restoring
/// the previous binding -- bindings nest -- on destruction. Passing
/// nullptr pins global routing for the scope (a job explicitly opting
/// out of an enclosing domain).
class ScopedCounterDomain {
 public:
  explicit ScopedCounterDomain(CounterDomain* domain);
  ~ScopedCounterDomain();

  ScopedCounterDomain(const ScopedCounterDomain&) = delete;
  ScopedCounterDomain& operator=(const ScopedCounterDomain&) = delete;

 private:
  CounterDomain* prev_domain_;
  AllocSink* prev_sink_;
};

}  // namespace fp8q
