#include "obs/counters.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "core/thread_annotations.h"
#include "obs/domain.h"

namespace fp8q {

namespace {

/// One thread's slice of the counter matrix. Cells are atomics only so the
/// aggregator can read them without tearing; the owning thread is the sole
/// writer, so relaxed ordering is sufficient everywhere.
struct Shard {
  std::atomic<std::uint64_t> counts[kObsFormatCount][kObsEventCount] = {};
};

/// Registry of live shards plus the folded totals of exited threads.
/// Intentionally leaked (never destroyed) so thread-local destructors that
/// outlive static destruction can still flush into it safely.
struct Registry {
  std::mutex mutex;
  std::vector<Shard*> live FP8Q_GUARDED_BY(mutex);
  CounterSnapshot retired FP8Q_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* reg = new Registry();
  return *reg;
}

/// Owns this thread's shard: registers on first use, and on thread exit
/// folds the shard's totals into the retired accumulator so no events are
/// lost when pool workers are torn down (e.g. a set_num_threads resize).
struct ShardOwner {
  Shard* shard;

  ShardOwner() : shard(new Shard()) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.live.push_back(shard);
  }

  ~ShardOwner() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (int f = 0; f < kObsFormatCount; ++f) {
      for (int e = 0; e < kObsEventCount; ++e) {
        reg.retired.counts[f][e] += shard->counts[f][e].load(std::memory_order_relaxed);
      }
    }
    std::erase(reg.live, shard);
    delete shard;
  }
};

Shard& local_shard() {
  thread_local ShardOwner owner;
  return *owner.shard;
}

/// -1 = use the environment default; 0/1 = explicit override.
std::atomic<int> g_enabled_override{-1};

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool env_default_enabled() {
  static const bool value =
      env_truthy("FP8Q_TRACE") || std::getenv("FP8Q_REPORT") != nullptr;
  return value;
}

}  // namespace

const char* to_string(ObsFormat fmt) {
  switch (fmt) {
    case ObsFormat::kE5M2: return "e5m2";
    case ObsFormat::kE4M3: return "e4m3";
    case ObsFormat::kE3M4: return "e3m4";
    case ObsFormat::kInt8: return "int8";
    case ObsFormat::kOther: return "other";
  }
  return "?";
}

const char* to_string(ObsEvent event) {
  switch (event) {
    case ObsEvent::kQuantized: return "quantized";
    case ObsEvent::kSaturated: return "saturated";
    case ObsEvent::kFlushedToZero: return "flushed_to_zero";
    case ObsEvent::kNanProduced: return "nan_produced";
    case ObsEvent::kInfProduced: return "inf_produced";
  }
  return "?";
}

bool counters_enabled() {
  const int override_v = g_enabled_override.load(std::memory_order_relaxed);
  return override_v >= 0 ? override_v != 0 : env_default_enabled();
}

void set_counters_enabled(bool enabled) {
  g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void counter_add(ObsFormat fmt, ObsEvent event, std::uint64_t n) {
  if (n == 0) return;
  if (CounterDomain* domain = current_counter_domain()) {
    domain->add(fmt, event, n);
    return;
  }
  local_shard()
      .counts[static_cast<int>(fmt)][static_cast<int>(event)]
      .fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t CounterSnapshot::total(ObsEvent event) const {
  std::uint64_t sum = 0;
  for (int f = 0; f < kObsFormatCount; ++f) sum += counts[f][static_cast<int>(event)];
  return sum;
}

bool CounterSnapshot::any() const {
  for (int f = 0; f < kObsFormatCount; ++f) {
    for (int e = 0; e < kObsEventCount; ++e) {
      if (counts[f][e] != 0) return true;
    }
  }
  return false;
}

CounterSnapshot CounterSnapshot::since(const CounterSnapshot& earlier) const {
  CounterSnapshot delta;
  for (int f = 0; f < kObsFormatCount; ++f) {
    for (int e = 0; e < kObsEventCount; ++e) {
      delta.counts[f][e] =
          counts[f][e] >= earlier.counts[f][e] ? counts[f][e] - earlier.counts[f][e] : 0;
    }
  }
  return delta;
}

bool operator==(const CounterSnapshot& a, const CounterSnapshot& b) {
  for (int f = 0; f < kObsFormatCount; ++f) {
    for (int e = 0; e < kObsEventCount; ++e) {
      if (a.counts[f][e] != b.counts[f][e]) return false;
    }
  }
  return true;
}

CounterSnapshot counters_snapshot() {
  if (const CounterDomain* domain = current_counter_domain()) return domain->counters();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  CounterSnapshot snap = reg.retired;
  for (const Shard* shard : reg.live) {
    for (int f = 0; f < kObsFormatCount; ++f) {
      for (int e = 0; e < kObsEventCount; ++e) {
        snap.counts[f][e] += shard->counts[f][e].load(std::memory_order_relaxed);
      }
    }
  }
  return snap;
}

void counters_reset() {
  if (CounterDomain* domain = current_counter_domain()) {
    domain->reset_counters();
    return;
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.retired = CounterSnapshot{};
  for (Shard* shard : reg.live) {
    for (int f = 0; f < kObsFormatCount; ++f) {
      for (int e = 0; e < kObsEventCount; ++e) {
        shard->counts[f][e].store(0, std::memory_order_relaxed);
      }
    }
  }
}

namespace {
std::atomic<std::uint64_t> g_cache_counts[kObsCacheEventCount] = {};
}  // namespace

const char* to_string(ObsCacheEvent event) {
  switch (event) {
    case ObsCacheEvent::kHit: return "hit";
    case ObsCacheEvent::kMiss: return "miss";
    case ObsCacheEvent::kEvict: return "evict";
    case ObsCacheEvent::kBypass: return "bypass";
  }
  return "?";
}

void cache_counter_add(ObsCacheEvent event, std::uint64_t n) {
  if (n == 0) return;
  if (CounterDomain* domain = current_counter_domain()) {
    domain->add_cache(event, n);
    return;
  }
  g_cache_counts[static_cast<int>(event)].fetch_add(n, std::memory_order_relaxed);
}

bool CacheCounterSnapshot::any() const {
  for (int e = 0; e < kObsCacheEventCount; ++e) {
    if (counts[e] != 0) return true;
  }
  return false;
}

CacheCounterSnapshot CacheCounterSnapshot::since(const CacheCounterSnapshot& earlier) const {
  CacheCounterSnapshot delta;
  for (int e = 0; e < kObsCacheEventCount; ++e) {
    delta.counts[e] = counts[e] >= earlier.counts[e] ? counts[e] - earlier.counts[e] : 0;
  }
  return delta;
}

CacheCounterSnapshot cache_counters_snapshot() {
  if (const CounterDomain* domain = current_counter_domain()) return domain->cache_counters();
  CacheCounterSnapshot snap;
  for (int e = 0; e < kObsCacheEventCount; ++e) {
    snap.counts[e] = g_cache_counts[e].load(std::memory_order_relaxed);
  }
  return snap;
}

void cache_counters_reset() {
  if (CounterDomain* domain = current_counter_domain()) {
    domain->reset_cache_counters();
    return;
  }
  for (auto& c : g_cache_counts) c.store(0, std::memory_order_relaxed);
}

namespace {
std::atomic<std::uint64_t> g_kernel_counts[kObsKernelPathCount] = {};
}  // namespace

const char* to_string(ObsKernelPath path) {
  switch (path) {
    case ObsKernelPath::kLinearPacked: return "linear_packed";
    case ObsKernelPath::kLinearFp32: return "linear_fp32";
    case ObsKernelPath::kConvPacked: return "conv_packed";
    case ObsKernelPath::kConvFp32: return "conv_fp32";
    case ObsKernelPath::kMatmulPacked: return "matmul_packed";
    case ObsKernelPath::kMatmulFp32: return "matmul_fp32";
    case ObsKernelPath::kCacheDecode: return "cache_decode";
  }
  return "?";
}

void kernel_counter_add(ObsKernelPath path, std::uint64_t n) {
  if (n == 0) return;
  if (CounterDomain* domain = current_counter_domain()) {
    domain->add_kernel(path, n);
    return;
  }
  g_kernel_counts[static_cast<int>(path)].fetch_add(n, std::memory_order_relaxed);
}

bool KernelCounterSnapshot::any() const {
  for (int e = 0; e < kObsKernelPathCount; ++e) {
    if (counts[e] != 0) return true;
  }
  return false;
}

KernelCounterSnapshot KernelCounterSnapshot::since(const KernelCounterSnapshot& earlier) const {
  KernelCounterSnapshot delta;
  for (int e = 0; e < kObsKernelPathCount; ++e) {
    delta.counts[e] = counts[e] >= earlier.counts[e] ? counts[e] - earlier.counts[e] : 0;
  }
  return delta;
}

KernelCounterSnapshot kernel_counters_snapshot() {
  if (const CounterDomain* domain = current_counter_domain()) return domain->kernel_counters();
  KernelCounterSnapshot snap;
  for (int e = 0; e < kObsKernelPathCount; ++e) {
    snap.counts[e] = g_kernel_counts[e].load(std::memory_order_relaxed);
  }
  return snap;
}

void kernel_counters_reset() {
  if (CounterDomain* domain = current_counter_domain()) {
    domain->reset_kernel_counters();
    return;
  }
  for (auto& c : g_kernel_counts) c.store(0, std::memory_order_relaxed);
}

}  // namespace fp8q
