// Structured run reports (docs/OBSERVABILITY.md).
//
// A RunReport is the machine-readable record of one run: coarse named
// stages (wall time + the quantization-event counter delta over the
// stage), the final AccuracyRecords, and -- when tracing was on -- the
// full span list. It serializes to JSON with no external dependencies;
// io/serialize.h provides the matching reader (report_from_json) so
// reports round-trip through the library's own I/O layer.
//
// Wiring: a tool (bench, CLI, test) owns a RunReport and publishes it with
// set_active_report(); instrumented code (the tuner's stages, the benches'
// sweep phases) appends stages through ScopedStage without knowing who is
// collecting. With no active report, ScopedStage only emits a TraceSpan
// (itself a no-op when tracing is off). write_report_if_requested() writes
// the JSON to the path in FP8Q_REPORT, making every instrumented binary
// report-capable via the environment alone.
//
// Determinism note (docs/THREADING.md): stage wall times are
// nondeterministic, and a stage's counter delta is the *process-global*
// total over the stage's wall window -- under concurrent stages (the
// tuner's parallel ladder) events are attributed to every stage whose
// window they fall in. Stage order, record order and counter totals over
// the whole run are deterministic.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/passrate.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/memory.h"
#include "obs/trace.h"

namespace fp8q {

/// Schema version written as "fp8q_report_version".
/// v2 added the "weight_cache" block (quantized-weight cache counters);
/// v3 added the "memory" block (peak RSS + allocation totals), per-stage
/// allocation deltas, and the "histograms" block (obs/histogram.h);
/// v4 added the "isa" field (selected dispatch tier, core/cpu_dispatch.h)
/// and the "kernel_paths" block (packed-vs-FP32 path counts).
/// The reader accepts every version from 1 up, defaulting missing blocks.
inline constexpr int kReportVersion = 4;

/// One named phase of a run.
struct StageReport {
  std::string name;
  double wall_ms = 0.0;
  /// Counter delta over the stage window (see determinism note above).
  CounterSnapshot counters;
  /// Tensor-allocation delta over the stage window (obs/memory.h). Like
  /// the counter delta, process-global over the wall window.
  std::uint64_t alloc_bytes = 0;
  std::uint64_t allocs = 0;
};

/// Process memory figures at write time (obs/memory.h).
struct MemoryReport {
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t allocs = 0;
};

/// The full structured record of one run.
struct RunReport {
  std::string tool;     ///< producing binary, e.g. "bench_table2_passrate"
  int num_threads = 0;  ///< fp8q::num_threads() at collection time
  /// Resolved kernel dispatch label, e.g. "native:avx2" (schema v4). Set
  /// by the caller like tool/num_threads: obs sits below core in the link
  /// graph, so it cannot ask cpu_dispatch itself.
  std::string isa;
  std::vector<StageReport> stages;
  std::vector<AccuracyRecord> records;
  /// Cumulative counters at write time (totals, independent of stages).
  CounterSnapshot counters;
  /// Quantized-weight cache events at write time (quant/weight_cache.h).
  CacheCounterSnapshot weight_cache;
  /// Packed-vs-FP32 kernel path counts at write time (schema v4).
  KernelCounterSnapshot kernel_paths;
  /// Peak RSS and allocation totals at write time (schema v3).
  MemoryReport memory;
  /// Every histogram with data at write time, sorted by name (schema v3).
  std::vector<NamedHistogram> histograms;
  std::vector<SpanRecord> spans;
  std::uint64_t spans_dropped = 0;  ///< trace_dropped() at write time

  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;
};

/// The report instrumented code appends to, or nullptr: the calling
/// thread's bound report (ScopedThreadReport) when one is set, else the
/// process-wide one. Appends are internally synchronized.
[[nodiscard]] RunReport* active_report();

/// Publishes the process-wide report (the tool main()s' path). Threads
/// with a ScopedThreadReport binding shadow it.
void set_active_report(RunReport* report);

/// RAII per-thread report binding: while alive, active_report() on this
/// thread resolves to `report` instead of the process-wide pointer, and
/// the parallel runtime propagates the binding to pool threads a region
/// fans out to (core/parallel.cpp). This is how fp8qd runs N jobs
/// concurrently, each appending stages to its own report: a global
/// set_active_report would interleave them. Passing nullptr shadows the
/// global report with "no report" for the scope. Bindings nest; the
/// previous binding is restored on destruction.
class ScopedThreadReport {
 public:
  explicit ScopedThreadReport(RunReport* report);
  ~ScopedThreadReport();

  ScopedThreadReport(const ScopedThreadReport&) = delete;
  ScopedThreadReport& operator=(const ScopedThreadReport&) = delete;

 private:
  RunReport* prev_;
  bool prev_bound_;
};

/// Raw TLS accessors for the parallel runtime's save/restore around pool
/// jobs: `bound` distinguishes "bound to nullptr" (shadowing the global
/// report) from "not bound" (global routing). Prefer ScopedThreadReport.
struct ThreadReportBinding {
  RunReport* report = nullptr;
  bool bound = false;
};
[[nodiscard]] ThreadReportBinding current_thread_report();
ThreadReportBinding set_thread_report(ThreadReportBinding binding);

/// RAII stage: measures wall time, the counter delta and the allocation
/// delta of a scope and appends a StageReport to the active report (if
/// any) on destruction. Also opens a TraceSpan of the same name, and --
/// when histograms are enabled -- records the stage duration into the
/// latency/stage_ns channel plus a per-name "stage:<name>" histogram.
/// With no active report, tracing off and histograms off, cost is three
/// relaxed flag checks.
class ScopedStage {
 public:
  explicit ScopedStage(std::string_view name);
  ~ScopedStage();

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  bool armed_ = false;         ///< timing is live (report active or hists on)
  bool report_armed_ = false;  ///< a report was active at construction
  std::string name_;
  std::uint64_t start_ns_ = 0;
  CounterSnapshot start_counters_;
  AllocCounterSnapshot start_allocs_;
  TraceSpan span_;
};

/// Appends a pre-measured stage to the active report (thread-safe; no-op
/// without an active report). For sites that time work themselves, e.g.
/// the tuner recording each trial in deterministic history order.
void report_add_stage(std::string_view name, double wall_ms,
                      const CounterSnapshot& counters = {},
                      std::uint64_t alloc_bytes = 0, std::uint64_t allocs = 0);

/// The FP8Q_REPORT path, or nullptr when unset/empty.
[[nodiscard]] const char* report_env_path();

/// If FP8Q_REPORT is set: finalizes `report` (fills counters and spans
/// from the process-wide buffers) and writes JSON to that path. The caller
/// sets `tool` and `num_threads` itself (obs sits below core in the link
/// graph, so it cannot ask the runtime). Returns true when a report was
/// written; throws on I/O failure.
bool write_report_if_requested(RunReport& report);

}  // namespace fp8q
