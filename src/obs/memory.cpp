#include "obs/memory.h"

#include <atomic>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define FP8Q_HAVE_GETRUSAGE 1
#endif

namespace fp8q {

namespace {
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_count{0};
thread_local AllocSink* tls_alloc_sink = nullptr;
}  // namespace

void alloc_counter_add(std::uint64_t bytes) {
  if (bytes == 0) return;
  if (AllocSink* sink = tls_alloc_sink) {
    sink->bytes.fetch_add(bytes, std::memory_order_relaxed);
    sink->allocs.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
}

AllocCounterSnapshot alloc_counters_snapshot() {
  if (const AllocSink* sink = tls_alloc_sink) return sink->snapshot();
  AllocCounterSnapshot snap;
  snap.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  snap.allocs = g_alloc_count.load(std::memory_order_relaxed);
  return snap;
}

void alloc_counters_reset() {
  if (AllocSink* sink = tls_alloc_sink) {
    sink->reset();
    return;
  }
  g_alloc_bytes.store(0, std::memory_order_relaxed);
  g_alloc_count.store(0, std::memory_order_relaxed);
}

AllocSink* current_alloc_sink() { return tls_alloc_sink; }

AllocSink* set_thread_alloc_sink(AllocSink* sink) {
  AllocSink* previous = tls_alloc_sink;
  tls_alloc_sink = sink;
  return previous;
}

void alloc_counter_merge(const AllocCounterSnapshot& delta) {
  if (delta.bytes == 0 && delta.allocs == 0) return;
  if (AllocSink* sink = tls_alloc_sink) {
    sink->bytes.fetch_add(delta.bytes, std::memory_order_relaxed);
    sink->allocs.fetch_add(delta.allocs, std::memory_order_relaxed);
    return;
  }
  g_alloc_bytes.fetch_add(delta.bytes, std::memory_order_relaxed);
  g_alloc_count.fetch_add(delta.allocs, std::memory_order_relaxed);
}

std::uint64_t peak_rss_bytes() {
#ifdef FP8Q_HAVE_GETRUSAGE
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#ifdef __APPLE__
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long pages_total = 0;
  unsigned long long pages_resident = 0;
  const int matched = std::fscanf(f, "%llu %llu", &pages_total, &pages_resident);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::uint64_t>(pages_resident) * static_cast<std::uint64_t>(page);
#else
  return 0;
#endif
}

}  // namespace fp8q
