#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "core/thread_annotations.h"

namespace fp8q {

namespace {

/// One thread's completed-span buffer. Appends and snapshot reads are
/// serialized per buffer; spans are per-region (not per-element) events, so
/// the uncontended lock is noise next to the work being measured.
struct SpanBuffer {
  std::mutex mutex;
  std::vector<SpanRecord> records FP8Q_GUARDED_BY(mutex);
  std::uint64_t dropped FP8Q_GUARDED_BY(mutex) = 0;
  std::uint32_t thread_id = 0;  ///< set once at registration, then read-only
};

/// Registry of all span buffers ever created. Buffers are shared_ptr-held
/// by both the registry and the owning thread, so records survive thread
/// exit (pool resizes) and the registry can snapshot them afterwards.
/// Intentionally leaked for the same static-destruction reason as the
/// counters registry.
struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<SpanBuffer>> buffers FP8Q_GUARDED_BY(mutex);
  std::uint32_t next_thread_id FP8Q_GUARDED_BY(mutex) = 0;
};

Registry& registry() {
  static Registry* reg = new Registry();
  return *reg;
}

SpanBuffer& local_buffer() {
  thread_local std::shared_ptr<SpanBuffer> buffer = [] {
    auto b = std::make_shared<SpanBuffer>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    b->thread_id = reg.next_thread_id++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

/// Innermost open span ids on this thread (parent chain for new spans).
thread_local std::vector<std::int64_t> tls_open_spans;

std::atomic<std::int64_t> g_next_span_id{0};

/// -1 = use the environment default; 0/1 = explicit override.
std::atomic<int> g_enabled_override{-1};

bool env_default_enabled() {
  static const bool value = [] {
    const char* v = std::getenv("FP8Q_TRACE");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return value;
}

}  // namespace

std::uint64_t obs_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool trace_enabled() {
  const int override_v = g_enabled_override.load(std::memory_order_relaxed);
  return override_v >= 0 ? override_v != 0 : env_default_enabled();
}

void set_trace_enabled(bool enabled) {
  g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::int64_t current_span_id() {
  return tls_open_spans.empty() ? -1 : tls_open_spans.back();
}

TraceSpan::TraceSpan(std::string_view name)
    : TraceSpan(name, current_span_id()) {}

TraceSpan::TraceSpan(std::string_view name, std::int64_t parent) {
  if (!trace_enabled()) return;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = parent;
  name_ = name;
  start_ns_ = obs_now_ns();
  tls_open_spans.push_back(id_);
}

TraceSpan::~TraceSpan() {
  if (id_ < 0) return;
  const std::uint64_t end = obs_now_ns();
  // Pop this span (it is the innermost open one on this thread; spans are
  // stack-scoped by construction).
  if (!tls_open_spans.empty() && tls_open_spans.back() == id_) tls_open_spans.pop_back();

  SpanBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.records.size() >= kMaxSpansPerThread) {
    ++buf.dropped;
    return;
  }
  SpanRecord rec;
  rec.name = std::move(name_);
  rec.start_ns = start_ns_;
  rec.duration_ns = end - start_ns_;
  rec.thread_id = buf.thread_id;
  rec.id = id_;
  rec.parent = parent_;
  buf.records.push_back(std::move(rec));
}

std::vector<SpanRecord> trace_snapshot() {
  Registry& reg = registry();
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  std::vector<SpanRecord> all;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    all.insert(all.end(), buf->records.begin(), buf->records.end());
  }
  std::sort(all.begin(), all.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.id < b.id;
  });
  return all;
}

std::uint64_t trace_dropped() {
  Registry& reg = registry();
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  std::uint64_t dropped = 0;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    dropped += buf->dropped;
  }
  return dropped;
}

void trace_reset() {
  Registry& reg = registry();
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    buf->records.clear();
    buf->dropped = 0;
  }
}

}  // namespace fp8q
