// Chrome trace-event export for the span tree (docs/OBSERVABILITY.md).
//
// Streams the SpanRecords collected by obs/trace.h as Chrome trace-event
// JSON ({"traceEvents": [...]}), loadable in Perfetto (ui.perfetto.dev)
// or chrome://tracing. Each span becomes one complete ("ph":"X") event on
// its recording thread's track; timestamps are microseconds relative to
// the earliest span so traces start at t=0.
//
// Cross-thread parent linkage -- a parallel_run task whose logical parent
// span lives on the dispatching thread -- cannot be expressed by track
// nesting alone, so every child whose parent recorded on a *different*
// thread additionally gets a flow-event pair ("ph":"s" on the parent
// track, "ph":"f" on the child track, same id), which the viewers draw as
// an arrow from parent to child. Same-thread nesting needs nothing: the
// viewers nest by time containment per track.
//
// The span id and parent id are preserved in each event's "args", so the
// exact tree (not just the rendering) round-trips; tools/fp8q_report
// check-trace re-validates nesting from those fields.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/trace.h"

namespace fp8q {

/// Writes `spans` (as returned by trace_snapshot()) as Chrome trace-event
/// JSON. Deterministic for a fixed span list.
void write_chrome_trace(std::ostream& out, const std::vector<SpanRecord>& spans);

/// The FP8Q_TRACE_JSON path, or nullptr when unset/empty.
[[nodiscard]] const char* trace_json_env_path();

/// If FP8Q_TRACE_JSON is set: snapshots the trace buffers and writes the
/// Chrome trace JSON to that path. Returns true when a file was written;
/// throws on I/O failure. Pair with FP8Q_TRACE=1 (or set_trace_enabled)
/// or the trace will be empty.
bool write_chrome_trace_if_requested();

}  // namespace fp8q
