// Memory accounting: RSS sampling and tensor-allocation counters
// (docs/OBSERVABILITY.md).
//
// Two complementary views of a run's memory behavior:
//
//   peak_rss_bytes()     the OS's high-water mark for the process
//                        (getrusage ru_maxrss), sampled at call time --
//                        monotonically nondecreasing over a process
//                        lifetime, 0 where unsupported.
//   current_rss_bytes()  the resident set right now (/proc/self/statm),
//                        0 where unsupported.
//   alloc counters       bytes/allocations routed through Tensor's
//                        allocating constructors (tensor/tensor.cpp) --
//                        allocation *traffic*, counting copies too, which
//                        is what per-stage deltas in the run report need.
//
// The counters are always-on process-global relaxed atomics (one add per
// tensor construction, not per element -- the same always-on rationale as
// the cache counters in obs/counters.h). This header is the bottom of the
// obs layer: it must stay dependency-free because fp8q_tensor links it
// (as fp8q_obs_base) while the rest of obs sits above tensor via metrics.
#pragma once

#include <cstdint>

namespace fp8q {

/// Adds one allocation of `bytes` to the global tally. No-op for 0 bytes.
void alloc_counter_add(std::uint64_t bytes);

/// Point-in-time allocation totals since process start (or the last reset).
struct AllocCounterSnapshot {
  std::uint64_t bytes = 0;   ///< total bytes routed through counted allocations
  std::uint64_t allocs = 0;  ///< number of counted allocations

  /// Component-wise delta (for per-stage accounting); saturates at 0 if a
  /// reset happened in between.
  [[nodiscard]] AllocCounterSnapshot since(const AllocCounterSnapshot& earlier) const {
    AllocCounterSnapshot d;
    d.bytes = bytes >= earlier.bytes ? bytes - earlier.bytes : 0;
    d.allocs = allocs >= earlier.allocs ? allocs - earlier.allocs : 0;
    return d;
  }

  friend bool operator==(const AllocCounterSnapshot&, const AllocCounterSnapshot&) = default;
};

[[nodiscard]] AllocCounterSnapshot alloc_counters_snapshot();

/// Zeroes the allocation tally. Call only between runs.
void alloc_counters_reset();

/// Peak resident set size of the process in bytes, sampled now; 0 when the
/// platform offers no getrusage. Never decreases within a process.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (/proc/self/statm); 0 when
/// unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes();

}  // namespace fp8q
