// Memory accounting: RSS sampling and tensor-allocation counters
// (docs/OBSERVABILITY.md).
//
// Two complementary views of a run's memory behavior:
//
//   peak_rss_bytes()     the OS's high-water mark for the process
//                        (getrusage ru_maxrss), sampled at call time --
//                        monotonically nondecreasing over a process
//                        lifetime, 0 where unsupported.
//   current_rss_bytes()  the resident set right now (/proc/self/statm),
//                        0 where unsupported.
//   alloc counters       bytes/allocations routed through Tensor's
//                        allocating constructors (tensor/tensor.cpp) --
//                        allocation *traffic*, counting copies too, which
//                        is what per-stage deltas in the run report need.
//
// The counters are always-on process-global relaxed atomics (one add per
// tensor construction, not per element -- the same always-on rationale as
// the cache counters in obs/counters.h). This header is the bottom of the
// obs layer: it must stay dependency-free because fp8q_tensor links it
// (as fp8q_obs_base) while the rest of obs sits above tensor via metrics.
//
// Scoped routing: a thread may bind an AllocSink (set_thread_alloc_sink);
// while bound, alloc_counter_add and alloc_counters_snapshot act on the
// sink instead of the process globals. This is the obs-base slice of the
// scoped observation domains in obs/domain.h -- a CounterDomain owns one
// AllocSink and binds it together with the counter/histogram routing, so
// per-job allocation deltas in the fp8qd service are computed against the
// job's own domain (docs/OBSERVABILITY.md, "Observation domains").
#pragma once

#include <atomic>
#include <cstdint>

namespace fp8q {

/// Adds one allocation of `bytes` to the calling thread's bound sink, or
/// to the global tally when no sink is bound. No-op for 0 bytes.
void alloc_counter_add(std::uint64_t bytes);

/// Point-in-time allocation totals since process start (or the last reset).
struct AllocCounterSnapshot {
  std::uint64_t bytes = 0;   ///< total bytes routed through counted allocations
  std::uint64_t allocs = 0;  ///< number of counted allocations

  /// Component-wise delta (for per-stage accounting); saturates at 0 if a
  /// reset happened in between.
  [[nodiscard]] AllocCounterSnapshot since(const AllocCounterSnapshot& earlier) const {
    AllocCounterSnapshot d;
    d.bytes = bytes >= earlier.bytes ? bytes - earlier.bytes : 0;
    d.allocs = allocs >= earlier.allocs ? allocs - earlier.allocs : 0;
    return d;
  }

  friend bool operator==(const AllocCounterSnapshot&, const AllocCounterSnapshot&) = default;
};

/// Totals of the calling thread's bound sink when one is bound, else the
/// process globals.
[[nodiscard]] AllocCounterSnapshot alloc_counters_snapshot();

/// Zeroes the calling thread's bound sink when one is bound, else the
/// process globals. Call only between runs.
void alloc_counters_reset();

/// A private allocation tally a thread binds in place of the process
/// globals -- the obs-base slice of an observation domain (obs/domain.h).
/// Writers are relaxed atomics exactly like the globals, so any number of
/// threads bound to the same sink may add concurrently.
struct AllocSink {
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> allocs{0};

  [[nodiscard]] AllocCounterSnapshot snapshot() const {
    AllocCounterSnapshot snap;
    snap.bytes = bytes.load(std::memory_order_relaxed);
    snap.allocs = allocs.load(std::memory_order_relaxed);
    return snap;
  }

  void reset() {
    bytes.store(0, std::memory_order_relaxed);
    allocs.store(0, std::memory_order_relaxed);
  }
};

/// The calling thread's bound sink, or nullptr (global routing).
[[nodiscard]] AllocSink* current_alloc_sink();

/// Binds `sink` to the calling thread (nullptr restores global routing)
/// and returns the previously bound sink so callers can nest. The usual
/// owner of the save/restore pairing is ScopedCounterDomain (obs/domain.h),
/// which binds its domain's sink together with the counter routing.
AllocSink* set_thread_alloc_sink(AllocSink* sink);

/// Adds a pre-aggregated (bytes, allocs) delta to the calling thread's
/// bound sink or the globals -- the domain fold primitive. Unlike
/// alloc_counter_add this does not count one allocation per call.
void alloc_counter_merge(const AllocCounterSnapshot& delta);

/// Peak resident set size of the process in bytes, sampled now; 0 when the
/// platform offers no getrusage. Never decreases within a process.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (/proc/self/statm); 0 when
/// unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes();

}  // namespace fp8q
