// Scoped tracing: RAII wall-clock spans (docs/OBSERVABILITY.md).
//
// A TraceSpan measures one named region -- a tuner stage, one op's
// quantize-at-the-boundary, one parallel_for chunk -- and on destruction
// appends a SpanRecord (name, start, duration, thread, parent) to the
// calling thread's buffer. Buffers are aggregated by trace_snapshot().
//
// Parent linkage is per thread: a span's parent is the innermost span
// still open on the same thread when it was created. Regions dispatched to
// pool workers cross threads, so the dispatching site captures
// current_span_id() *before* the fan-out and passes it as an explicit
// parent (core/parallel.cpp does this for per-chunk spans); the span tree
// therefore stays connected across the thread pool.
//
// Cost when disabled (FP8Q_TRACE unset/0 and no set_trace_enabled(true)):
// the constructor is one relaxed atomic load plus a branch, and nothing is
// recorded or allocated. Hot sites pass string literals so no name is
// built when tracing is off.
//
// Tracing is an inspection tool, not a result: span timings are
// nondeterministic (wall clock), only the nesting structure is stable.
// Buffers are bounded (kMaxSpansPerThread); spans beyond the cap are
// dropped and counted in trace_dropped() rather than silently lost.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fp8q {

/// Upper bound on recorded spans per thread; see trace_dropped().
inline constexpr std::size_t kMaxSpansPerThread = 1 << 20;

/// One completed span. `parent` is -1 for roots. `thread_id` is a small
/// dense index assigned per recording thread (not the OS tid).
struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;     ///< steady_clock, process-relative
  std::uint64_t duration_ns = 0;  ///< wall time between ctor and dtor
  std::uint32_t thread_id = 0;
  std::int64_t id = -1;
  std::int64_t parent = -1;
};

/// Monotonic nanosecond timestamp (steady_clock). The observability layer
/// owns the process's wall clocks: library code outside src/obs/ must take
/// timing through this helper rather than <chrono> directly, so every
/// nondeterministic clock read is auditable in one place (the `determinism`
/// rule of tools/fp8q_lint.cpp enforces this).
[[nodiscard]] std::uint64_t obs_now_ns();

/// True when spans record. Defaults to the FP8Q_TRACE environment variable
/// (truthy = on); set_trace_enabled overrides it.
[[nodiscard]] bool trace_enabled();
void set_trace_enabled(bool enabled);

/// Id of the innermost span currently open on the calling thread, or -1.
/// Capture this before dispatching work to other threads and pass it as
/// the explicit parent of the spans they open.
[[nodiscard]] std::int64_t current_span_id();

/// RAII span. Does nothing when tracing is disabled at construction time.
class TraceSpan {
 public:
  /// Parent defaults to the innermost open span on this thread.
  explicit TraceSpan(std::string_view name);
  /// Explicit parent (for spans whose logical parent ran on another
  /// thread); pass -1 for a root span.
  TraceSpan(std::string_view name, std::int64_t parent);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// -1 when tracing was disabled at construction.
  [[nodiscard]] std::int64_t id() const { return id_; }

 private:
  std::int64_t id_ = -1;
  std::int64_t parent_ = -1;
  std::uint64_t start_ns_ = 0;
  std::string name_;
};

/// All completed spans from every thread, sorted by start time. Safe to
/// call while other threads are still recording (their in-flight spans are
/// simply not included yet).
[[nodiscard]] std::vector<SpanRecord> trace_snapshot();

/// Number of spans dropped because a thread hit kMaxSpansPerThread.
[[nodiscard]] std::uint64_t trace_dropped();

/// Discards all recorded spans (and the dropped-span count). Call only
/// while no traced work is running.
void trace_reset();

}  // namespace fp8q
