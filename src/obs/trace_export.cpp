#include "obs/trace_export.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace fp8q {

namespace {

/// JSON string escaping (same contract as the report writer's).
void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Trace-event timestamps are microseconds; keep nanosecond precision as
/// a decimal fraction (exact: value is n/1000 with n < 2^53 after the
/// epoch shift).
void write_us(std::ostream& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out << buf;
}

}  // namespace

void write_chrome_trace(std::ostream& out, const std::vector<SpanRecord>& spans) {
  // Shift timestamps so the trace starts at 0 (steady_clock's epoch is
  // arbitrary and its raw nanoseconds overflow the viewers' double math).
  std::uint64_t epoch_ns = 0;
  bool have_epoch = false;
  std::unordered_map<std::int64_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const SpanRecord& s : spans) {
    if (!have_epoch || s.start_ns < epoch_ns) {
      epoch_ns = s.start_ns;
      have_epoch = true;
    }
    by_id.emplace(s.id, &s);
  }

  out << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    out << (first ? "\n" : ",\n");
    first = false;
  };
  for (const SpanRecord& s : spans) {
    sep();
    out << "    {\"name\": ";
    write_escaped(out, s.name);
    out << ", \"ph\": \"X\", \"ts\": ";
    write_us(out, s.start_ns - epoch_ns);
    out << ", \"dur\": ";
    write_us(out, s.duration_ns);
    out << ", \"pid\": 1, \"tid\": " << s.thread_id << ", \"args\": {\"id\": " << s.id
        << ", \"parent\": " << s.parent << "}}";

    // Flow arrow for parents that recorded on another thread. The start
    // ("s") binds to the innermost slice open at `ts` on the parent's
    // track, the finish ("f", bp:"e") to the child slice.
    const SpanRecord* parent =
        s.parent >= 0 ? (by_id.count(s.parent) != 0 ? by_id.at(s.parent) : nullptr) : nullptr;
    if (parent != nullptr && parent->thread_id != s.thread_id) {
      sep();
      out << "    {\"name\": \"fanout\", \"cat\": \"fanout\", \"ph\": \"s\", \"id\": " << s.id
          << ", \"ts\": ";
      write_us(out, s.start_ns - epoch_ns);
      out << ", \"pid\": 1, \"tid\": " << parent->thread_id << "}";
      sep();
      out << "    {\"name\": \"fanout\", \"cat\": \"fanout\", \"ph\": \"f\", \"bp\": \"e\", "
             "\"id\": "
          << s.id << ", \"ts\": ";
      write_us(out, s.start_ns - epoch_ns);
      out << ", \"pid\": 1, \"tid\": " << s.thread_id << "}";
    }
  }
  out << (first ? "]\n}\n" : "\n  ]\n}\n");
}

const char* trace_json_env_path() {
  const char* path = std::getenv("FP8Q_TRACE_JSON");
  return (path != nullptr && path[0] != '\0') ? path : nullptr;
}

bool write_chrome_trace_if_requested() {
  const char* path = trace_json_env_path();
  if (path == nullptr) return false;
  const std::vector<SpanRecord> spans = trace_snapshot();
  std::ofstream out(path);
  if (!out) throw std::runtime_error(std::string("fp8q trace: cannot open ") + path);
  write_chrome_trace(out, spans);
  if (!out) throw std::runtime_error(std::string("fp8q trace: write failed: ") + path);
  return true;
}

}  // namespace fp8q
