#include "obs/domain.h"

namespace fp8q {

namespace {
thread_local CounterDomain* tls_domain = nullptr;
}  // namespace

void CounterDomain::add(ObsFormat fmt, ObsEvent event, std::uint64_t n) {
  counts_[static_cast<int>(fmt)][static_cast<int>(event)].fetch_add(
      n, std::memory_order_relaxed);
}

void CounterDomain::add_cache(ObsCacheEvent event, std::uint64_t n) {
  cache_counts_[static_cast<int>(event)].fetch_add(n, std::memory_order_relaxed);
}

void CounterDomain::add_kernel(ObsKernelPath path, std::uint64_t n) {
  kernel_counts_[static_cast<int>(path)].fetch_add(n, std::memory_order_relaxed);
}

void CounterDomain::merge_histogram(HistChannel channel, const HistogramSnapshot& snap) {
  if (snap.total == 0) return;
  std::lock_guard<std::mutex> lock(hist_mutex_);
  hist_channels_[static_cast<int>(channel)].merge_from(snap);
}

CounterSnapshot CounterDomain::counters() const {
  CounterSnapshot snap;
  for (int f = 0; f < kObsFormatCount; ++f) {
    for (int e = 0; e < kObsEventCount; ++e) {
      snap.counts[f][e] = counts_[f][e].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

CacheCounterSnapshot CounterDomain::cache_counters() const {
  CacheCounterSnapshot snap;
  for (int e = 0; e < kObsCacheEventCount; ++e) {
    snap.counts[e] = cache_counts_[e].load(std::memory_order_relaxed);
  }
  return snap;
}

KernelCounterSnapshot CounterDomain::kernel_counters() const {
  KernelCounterSnapshot snap;
  for (int e = 0; e < kObsKernelPathCount; ++e) {
    snap.counts[e] = kernel_counts_[e].load(std::memory_order_relaxed);
  }
  return snap;
}

HistogramSnapshot CounterDomain::histogram(HistChannel channel) const {
  std::lock_guard<std::mutex> lock(hist_mutex_);
  return hist_channels_[static_cast<int>(channel)];
}

void CounterDomain::reset_counters() {
  for (auto& row : counts_) {
    for (auto& cell : row) cell.store(0, std::memory_order_relaxed);
  }
}

void CounterDomain::reset_cache_counters() {
  for (auto& cell : cache_counts_) cell.store(0, std::memory_order_relaxed);
}

void CounterDomain::reset_kernel_counters() {
  for (auto& cell : kernel_counts_) cell.store(0, std::memory_order_relaxed);
}

void CounterDomain::reset_histograms() {
  std::lock_guard<std::mutex> lock(hist_mutex_);
  for (auto& channel : hist_channels_) channel = HistogramSnapshot{};
}

void CounterDomain::reset() {
  reset_counters();
  reset_cache_counters();
  reset_kernel_counters();
  reset_histograms();
  alloc_sink_.reset();
}

void CounterDomain::fold_into_global() {
  // Each tally is *moved* (exchange/swap with zero), then re-emitted
  // through the ordinary write primitives so the fold lands wherever the
  // calling thread currently routes -- an enclosing domain when domains
  // nest, else the process globals.
  for (int f = 0; f < kObsFormatCount; ++f) {
    for (int e = 0; e < kObsEventCount; ++e) {
      const std::uint64_t n = counts_[f][e].exchange(0, std::memory_order_relaxed);
      if (n != 0) counter_add(static_cast<ObsFormat>(f), static_cast<ObsEvent>(e), n);
    }
  }
  for (int e = 0; e < kObsCacheEventCount; ++e) {
    const std::uint64_t n = cache_counts_[e].exchange(0, std::memory_order_relaxed);
    if (n != 0) cache_counter_add(static_cast<ObsCacheEvent>(e), n);
  }
  for (int e = 0; e < kObsKernelPathCount; ++e) {
    const std::uint64_t n = kernel_counts_[e].exchange(0, std::memory_order_relaxed);
    if (n != 0) kernel_counter_add(static_cast<ObsKernelPath>(e), n);
  }
  HistogramSnapshot hists[kHistChannelCount];
  {
    std::lock_guard<std::mutex> lock(hist_mutex_);
    for (int c = 0; c < kHistChannelCount; ++c) {
      hists[c] = hist_channels_[c];
      hist_channels_[c] = HistogramSnapshot{};
    }
  }
  for (int c = 0; c < kHistChannelCount; ++c) {
    if (hists[c].total == 0) continue;
    LocalHistogram local;
    local.snap = hists[c];
    hist_merge(static_cast<HistChannel>(c), local);
  }
  AllocCounterSnapshot allocs;
  allocs.bytes = alloc_sink_.bytes.exchange(0, std::memory_order_relaxed);
  allocs.allocs = alloc_sink_.allocs.exchange(0, std::memory_order_relaxed);
  alloc_counter_merge(allocs);
}

CounterDomain* current_counter_domain() { return tls_domain; }

CounterDomain* set_thread_counter_domain(CounterDomain* domain) {
  CounterDomain* previous = tls_domain;
  tls_domain = domain;
  return previous;
}

ScopedCounterDomain::ScopedCounterDomain(CounterDomain* domain)
    : prev_domain_(set_thread_counter_domain(domain)),
      prev_sink_(set_thread_alloc_sink(domain != nullptr ? &domain->alloc_sink() : nullptr)) {}

ScopedCounterDomain::~ScopedCounterDomain() {
  set_thread_alloc_sink(prev_sink_);
  set_thread_counter_domain(prev_domain_);
}

}  // namespace fp8q
