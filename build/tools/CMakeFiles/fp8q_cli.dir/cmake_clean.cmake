file(REMOVE_RECURSE
  "CMakeFiles/fp8q_cli.dir/fp8q_cli.cpp.o"
  "CMakeFiles/fp8q_cli.dir/fp8q_cli.cpp.o.d"
  "fp8q_cli"
  "fp8q_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8q_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
