# Empty compiler generated dependencies file for fp8q_cli.
# This may be replaced when dependencies are built.
