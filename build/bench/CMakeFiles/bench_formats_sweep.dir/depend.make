# Empty dependencies file for bench_formats_sweep.
# This may be replaced when dependencies are built.
