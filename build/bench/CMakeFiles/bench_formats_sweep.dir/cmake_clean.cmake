file(REMOVE_RECURSE
  "CMakeFiles/bench_formats_sweep.dir/bench_formats_sweep.cpp.o"
  "CMakeFiles/bench_formats_sweep.dir/bench_formats_sweep.cpp.o.d"
  "bench_formats_sweep"
  "bench_formats_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_formats_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
