# Empty dependencies file for bench_table2_passrate.
# This may be replaced when dependencies are built.
