file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_passrate.dir/bench_table2_passrate.cpp.o"
  "CMakeFiles/bench_table2_passrate.dir/bench_table2_passrate.cpp.o.d"
  "bench_table2_passrate"
  "bench_table2_passrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_passrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
