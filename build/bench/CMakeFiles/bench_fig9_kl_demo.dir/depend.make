# Empty dependencies file for bench_fig9_kl_demo.
# This may be replaced when dependencies are built.
