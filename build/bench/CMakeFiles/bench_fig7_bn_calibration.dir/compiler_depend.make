# Empty compiler generated dependencies file for bench_fig7_bn_calibration.
# This may be replaced when dependencies are built.
