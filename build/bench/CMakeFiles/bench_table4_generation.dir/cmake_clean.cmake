file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_generation.dir/bench_table4_generation.cpp.o"
  "CMakeFiles/bench_table4_generation.dir/bench_table4_generation.cpp.o.d"
  "bench_table4_generation"
  "bench_table4_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
