file(REMOVE_RECURSE
  "CMakeFiles/bench_table_firstlast.dir/bench_table_firstlast.cpp.o"
  "CMakeFiles/bench_table_firstlast.dir/bench_table_firstlast.cpp.o.d"
  "bench_table_firstlast"
  "bench_table_firstlast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_firstlast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
