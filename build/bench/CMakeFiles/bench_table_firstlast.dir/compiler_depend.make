# Empty compiler generated dependencies file for bench_table_firstlast.
# This may be replaced when dependencies are built.
