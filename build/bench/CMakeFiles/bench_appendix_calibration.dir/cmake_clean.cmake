file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_calibration.dir/bench_appendix_calibration.cpp.o"
  "CMakeFiles/bench_appendix_calibration.dir/bench_appendix_calibration.cpp.o.d"
  "bench_appendix_calibration"
  "bench_appendix_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
