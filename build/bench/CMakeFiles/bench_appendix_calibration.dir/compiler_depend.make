# Empty compiler generated dependencies file for bench_appendix_calibration.
# This may be replaced when dependencies are built.
