# Empty compiler generated dependencies file for bench_table6_static_dynamic.
# This may be replaced when dependencies are built.
