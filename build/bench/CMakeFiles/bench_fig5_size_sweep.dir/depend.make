# Empty dependencies file for bench_fig5_size_sweep.
# This may be replaced when dependencies are built.
