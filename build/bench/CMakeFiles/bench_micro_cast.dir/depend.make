# Empty dependencies file for bench_micro_cast.
# This may be replaced when dependencies are built.
