file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_cast.dir/bench_micro_cast.cpp.o"
  "CMakeFiles/bench_micro_cast.dir/bench_micro_cast.cpp.o.d"
  "bench_micro_cast"
  "bench_micro_cast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
