file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mixed_mse.dir/bench_fig8_mixed_mse.cpp.o"
  "CMakeFiles/bench_fig8_mixed_mse.dir/bench_fig8_mixed_mse.cpp.o.d"
  "bench_fig8_mixed_mse"
  "bench_fig8_mixed_mse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mixed_mse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
