# Empty dependencies file for bench_fig8_mixed_mse.
# This may be replaced when dependencies are built.
