file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pertoken.dir/bench_ablation_pertoken.cpp.o"
  "CMakeFiles/bench_ablation_pertoken.dir/bench_ablation_pertoken.cpp.o.d"
  "bench_ablation_pertoken"
  "bench_ablation_pertoken.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pertoken.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
