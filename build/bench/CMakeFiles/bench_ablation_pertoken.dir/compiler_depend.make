# Empty compiler generated dependencies file for bench_ablation_pertoken.
# This may be replaced when dependencies are built.
