# Empty dependencies file for bench_fig4_variability.
# This may be replaced when dependencies are built.
