# Empty compiler generated dependencies file for bench_fig6_diffusion_fid.
# This may be replaced when dependencies are built.
