# Empty compiler generated dependencies file for bench_fig1_quant_error.
# This may be replaced when dependencies are built.
