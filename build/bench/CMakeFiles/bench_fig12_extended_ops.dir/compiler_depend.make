# Empty compiler generated dependencies file for bench_fig12_extended_ops.
# This may be replaced when dependencies are built.
