
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_extended_ops.cpp" "bench/CMakeFiles/bench_fig12_extended_ops.dir/bench_fig12_extended_ops.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_extended_ops.dir/bench_fig12_extended_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/fp8q_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fp8q_models.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/fp8q_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fp8q_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fp8/CMakeFiles/fp8q_fp8.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/fp8q_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fp8q_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
