file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_mixed_formats.dir/bench_table5_mixed_formats.cpp.o"
  "CMakeFiles/bench_table5_mixed_formats.dir/bench_table5_mixed_formats.cpp.o.d"
  "bench_table5_mixed_formats"
  "bench_table5_mixed_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_mixed_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
