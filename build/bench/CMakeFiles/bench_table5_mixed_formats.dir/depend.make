# Empty dependencies file for bench_table5_mixed_formats.
# This may be replaced when dependencies are built.
