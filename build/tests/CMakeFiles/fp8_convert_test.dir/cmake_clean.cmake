file(REMOVE_RECURSE
  "CMakeFiles/fp8_convert_test.dir/fp8/convert_test.cpp.o"
  "CMakeFiles/fp8_convert_test.dir/fp8/convert_test.cpp.o.d"
  "fp8_convert_test"
  "fp8_convert_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8_convert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
