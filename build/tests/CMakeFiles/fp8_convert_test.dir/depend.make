# Empty dependencies file for fp8_convert_test.
# This may be replaced when dependencies are built.
