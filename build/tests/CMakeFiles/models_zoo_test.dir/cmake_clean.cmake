file(REMOVE_RECURSE
  "CMakeFiles/models_zoo_test.dir/models/zoo_test.cpp.o"
  "CMakeFiles/models_zoo_test.dir/models/zoo_test.cpp.o.d"
  "models_zoo_test"
  "models_zoo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
