# Empty dependencies file for fp8_format_test.
# This may be replaced when dependencies are built.
