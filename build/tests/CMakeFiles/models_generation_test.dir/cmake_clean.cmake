file(REMOVE_RECURSE
  "CMakeFiles/models_generation_test.dir/models/generation_test.cpp.o"
  "CMakeFiles/models_generation_test.dir/models/generation_test.cpp.o.d"
  "models_generation_test"
  "models_generation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_generation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
