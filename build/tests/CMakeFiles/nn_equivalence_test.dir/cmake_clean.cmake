file(REMOVE_RECURSE
  "CMakeFiles/nn_equivalence_test.dir/nn/equivalence_test.cpp.o"
  "CMakeFiles/nn_equivalence_test.dir/nn/equivalence_test.cpp.o.d"
  "nn_equivalence_test"
  "nn_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
