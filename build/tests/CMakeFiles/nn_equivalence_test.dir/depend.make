# Empty dependencies file for nn_equivalence_test.
# This may be replaced when dependencies are built.
