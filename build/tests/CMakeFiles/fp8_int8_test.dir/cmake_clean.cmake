file(REMOVE_RECURSE
  "CMakeFiles/fp8_int8_test.dir/fp8/int8_test.cpp.o"
  "CMakeFiles/fp8_int8_test.dir/fp8/int8_test.cpp.o.d"
  "fp8_int8_test"
  "fp8_int8_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8_int8_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
