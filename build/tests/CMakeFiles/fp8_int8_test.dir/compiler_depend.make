# Empty compiler generated dependencies file for fp8_int8_test.
# This may be replaced when dependencies are built.
