
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fp8/int8_test.cpp" "tests/CMakeFiles/fp8_int8_test.dir/fp8/int8_test.cpp.o" "gcc" "tests/CMakeFiles/fp8_int8_test.dir/fp8/int8_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fp8/CMakeFiles/fp8q_fp8.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
