file(REMOVE_RECURSE
  "CMakeFiles/workloads_workload_test.dir/workloads/workload_test.cpp.o"
  "CMakeFiles/workloads_workload_test.dir/workloads/workload_test.cpp.o.d"
  "workloads_workload_test"
  "workloads_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
