file(REMOVE_RECURSE
  "CMakeFiles/io_serialize_test.dir/io/serialize_test.cpp.o"
  "CMakeFiles/io_serialize_test.dir/io/serialize_test.cpp.o.d"
  "io_serialize_test"
  "io_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
