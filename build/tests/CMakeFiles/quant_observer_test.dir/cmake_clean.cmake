file(REMOVE_RECURSE
  "CMakeFiles/quant_observer_test.dir/quant/observer_test.cpp.o"
  "CMakeFiles/quant_observer_test.dir/quant/observer_test.cpp.o.d"
  "quant_observer_test"
  "quant_observer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_observer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
