file(REMOVE_RECURSE
  "CMakeFiles/quant_group_quant_test.dir/quant/group_quant_test.cpp.o"
  "CMakeFiles/quant_group_quant_test.dir/quant/group_quant_test.cpp.o.d"
  "quant_group_quant_test"
  "quant_group_quant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_group_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
