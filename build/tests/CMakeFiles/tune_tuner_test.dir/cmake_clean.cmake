file(REMOVE_RECURSE
  "CMakeFiles/tune_tuner_test.dir/tune/tuner_test.cpp.o"
  "CMakeFiles/tune_tuner_test.dir/tune/tuner_test.cpp.o.d"
  "tune_tuner_test"
  "tune_tuner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
