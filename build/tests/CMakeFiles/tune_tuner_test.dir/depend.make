# Empty dependencies file for tune_tuner_test.
# This may be replaced when dependencies are built.
