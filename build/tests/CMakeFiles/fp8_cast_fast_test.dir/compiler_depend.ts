# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fp8_cast_fast_test.
