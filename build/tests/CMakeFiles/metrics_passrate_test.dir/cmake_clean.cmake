file(REMOVE_RECURSE
  "CMakeFiles/metrics_passrate_test.dir/metrics/passrate_test.cpp.o"
  "CMakeFiles/metrics_passrate_test.dir/metrics/passrate_test.cpp.o.d"
  "metrics_passrate_test"
  "metrics_passrate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_passrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
