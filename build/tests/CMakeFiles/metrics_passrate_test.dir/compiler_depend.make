# Empty compiler generated dependencies file for metrics_passrate_test.
# This may be replaced when dependencies are built.
