file(REMOVE_RECURSE
  "CMakeFiles/nn_graph_test.dir/nn/graph_test.cpp.o"
  "CMakeFiles/nn_graph_test.dir/nn/graph_test.cpp.o.d"
  "nn_graph_test"
  "nn_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
