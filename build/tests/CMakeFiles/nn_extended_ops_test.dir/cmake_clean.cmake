file(REMOVE_RECURSE
  "CMakeFiles/nn_extended_ops_test.dir/nn/extended_ops_test.cpp.o"
  "CMakeFiles/nn_extended_ops_test.dir/nn/extended_ops_test.cpp.o.d"
  "nn_extended_ops_test"
  "nn_extended_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_extended_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
