file(REMOVE_RECURSE
  "CMakeFiles/tensor_stats_test.dir/tensor/stats_test.cpp.o"
  "CMakeFiles/tensor_stats_test.dir/tensor/stats_test.cpp.o.d"
  "tensor_stats_test"
  "tensor_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
