# Empty dependencies file for tensor_stats_test.
# This may be replaced when dependencies are built.
