# Empty compiler generated dependencies file for quant_quantized_graph_test.
# This may be replaced when dependencies are built.
