file(REMOVE_RECURSE
  "CMakeFiles/quant_quantized_graph_test.dir/quant/quantized_graph_test.cpp.o"
  "CMakeFiles/quant_quantized_graph_test.dir/quant/quantized_graph_test.cpp.o.d"
  "quant_quantized_graph_test"
  "quant_quantized_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_quantized_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
