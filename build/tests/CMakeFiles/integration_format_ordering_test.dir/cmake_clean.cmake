file(REMOVE_RECURSE
  "CMakeFiles/integration_format_ordering_test.dir/integration/format_ordering_test.cpp.o"
  "CMakeFiles/integration_format_ordering_test.dir/integration/format_ordering_test.cpp.o.d"
  "integration_format_ordering_test"
  "integration_format_ordering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_format_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
