# Empty dependencies file for integration_format_ordering_test.
# This may be replaced when dependencies are built.
