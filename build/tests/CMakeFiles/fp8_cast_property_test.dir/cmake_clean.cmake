file(REMOVE_RECURSE
  "CMakeFiles/fp8_cast_property_test.dir/fp8/cast_property_test.cpp.o"
  "CMakeFiles/fp8_cast_property_test.dir/fp8/cast_property_test.cpp.o.d"
  "fp8_cast_property_test"
  "fp8_cast_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8_cast_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
