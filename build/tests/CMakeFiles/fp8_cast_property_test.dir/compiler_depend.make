# Empty compiler generated dependencies file for fp8_cast_property_test.
# This may be replaced when dependencies are built.
