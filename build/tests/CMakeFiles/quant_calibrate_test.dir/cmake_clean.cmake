file(REMOVE_RECURSE
  "CMakeFiles/quant_calibrate_test.dir/quant/calibrate_test.cpp.o"
  "CMakeFiles/quant_calibrate_test.dir/quant/calibrate_test.cpp.o.d"
  "quant_calibrate_test"
  "quant_calibrate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_calibrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
