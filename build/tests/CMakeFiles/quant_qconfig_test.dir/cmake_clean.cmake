file(REMOVE_RECURSE
  "CMakeFiles/quant_qconfig_test.dir/quant/qconfig_test.cpp.o"
  "CMakeFiles/quant_qconfig_test.dir/quant/qconfig_test.cpp.o.d"
  "quant_qconfig_test"
  "quant_qconfig_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_qconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
