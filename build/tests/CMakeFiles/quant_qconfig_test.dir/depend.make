# Empty dependencies file for quant_qconfig_test.
# This may be replaced when dependencies are built.
