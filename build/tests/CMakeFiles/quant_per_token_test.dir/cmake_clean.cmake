file(REMOVE_RECURSE
  "CMakeFiles/quant_per_token_test.dir/quant/per_token_test.cpp.o"
  "CMakeFiles/quant_per_token_test.dir/quant/per_token_test.cpp.o.d"
  "quant_per_token_test"
  "quant_per_token_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_per_token_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
