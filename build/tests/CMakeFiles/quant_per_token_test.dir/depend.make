# Empty dependencies file for quant_per_token_test.
# This may be replaced when dependencies are built.
