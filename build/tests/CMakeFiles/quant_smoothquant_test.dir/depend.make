# Empty dependencies file for quant_smoothquant_test.
# This may be replaced when dependencies are built.
