file(REMOVE_RECURSE
  "CMakeFiles/quant_smoothquant_test.dir/quant/smoothquant_test.cpp.o"
  "CMakeFiles/quant_smoothquant_test.dir/quant/smoothquant_test.cpp.o.d"
  "quant_smoothquant_test"
  "quant_smoothquant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_smoothquant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
