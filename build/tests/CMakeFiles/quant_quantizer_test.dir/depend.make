# Empty dependencies file for quant_quantizer_test.
# This may be replaced when dependencies are built.
