file(REMOVE_RECURSE
  "CMakeFiles/quant_quantizer_test.dir/quant/quantizer_test.cpp.o"
  "CMakeFiles/quant_quantizer_test.dir/quant/quantizer_test.cpp.o.d"
  "quant_quantizer_test"
  "quant_quantizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_quantizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
