# Empty dependencies file for fp8_packed_test.
# This may be replaced when dependencies are built.
