# Empty dependencies file for cv_resnet_ptq.
# This may be replaced when dependencies are built.
