file(REMOVE_RECURSE
  "CMakeFiles/cv_resnet_ptq.dir/cv_resnet_ptq.cpp.o"
  "CMakeFiles/cv_resnet_ptq.dir/cv_resnet_ptq.cpp.o.d"
  "cv_resnet_ptq"
  "cv_resnet_ptq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_resnet_ptq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
