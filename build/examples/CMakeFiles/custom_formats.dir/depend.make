# Empty dependencies file for custom_formats.
# This may be replaced when dependencies are built.
