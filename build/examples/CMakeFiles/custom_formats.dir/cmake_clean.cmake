file(REMOVE_RECURSE
  "CMakeFiles/custom_formats.dir/custom_formats.cpp.o"
  "CMakeFiles/custom_formats.dir/custom_formats.cpp.o.d"
  "custom_formats"
  "custom_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
