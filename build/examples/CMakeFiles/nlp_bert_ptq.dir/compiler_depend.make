# Empty compiler generated dependencies file for nlp_bert_ptq.
# This may be replaced when dependencies are built.
