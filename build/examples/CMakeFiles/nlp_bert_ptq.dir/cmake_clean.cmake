file(REMOVE_RECURSE
  "CMakeFiles/nlp_bert_ptq.dir/nlp_bert_ptq.cpp.o"
  "CMakeFiles/nlp_bert_ptq.dir/nlp_bert_ptq.cpp.o.d"
  "nlp_bert_ptq"
  "nlp_bert_ptq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_bert_ptq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
