# Empty dependencies file for llm_generation.
# This may be replaced when dependencies are built.
