file(REMOVE_RECURSE
  "CMakeFiles/llm_generation.dir/llm_generation.cpp.o"
  "CMakeFiles/llm_generation.dir/llm_generation.cpp.o.d"
  "llm_generation"
  "llm_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
