# Empty dependencies file for fp8q_workloads.
# This may be replaced when dependencies are built.
