file(REMOVE_RECURSE
  "CMakeFiles/fp8q_workloads.dir/registry.cpp.o"
  "CMakeFiles/fp8q_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/fp8q_workloads.dir/workload.cpp.o"
  "CMakeFiles/fp8q_workloads.dir/workload.cpp.o.d"
  "libfp8q_workloads.a"
  "libfp8q_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8q_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
