file(REMOVE_RECURSE
  "libfp8q_workloads.a"
)
