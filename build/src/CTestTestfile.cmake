# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("fp8")
subdirs("tensor")
subdirs("metrics")
subdirs("nn")
subdirs("quant")
subdirs("models")
subdirs("workloads")
subdirs("io")
subdirs("tune")
subdirs("core")
