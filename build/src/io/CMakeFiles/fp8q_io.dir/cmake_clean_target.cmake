file(REMOVE_RECURSE
  "libfp8q_io.a"
)
