# Empty dependencies file for fp8q_io.
# This may be replaced when dependencies are built.
