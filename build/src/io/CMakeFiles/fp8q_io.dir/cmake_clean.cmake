file(REMOVE_RECURSE
  "CMakeFiles/fp8q_io.dir/serialize.cpp.o"
  "CMakeFiles/fp8q_io.dir/serialize.cpp.o.d"
  "libfp8q_io.a"
  "libfp8q_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8q_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
