file(REMOVE_RECURSE
  "libfp8q_quant.a"
)
