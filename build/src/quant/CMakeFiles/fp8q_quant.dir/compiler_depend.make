# Empty compiler generated dependencies file for fp8q_quant.
# This may be replaced when dependencies are built.
