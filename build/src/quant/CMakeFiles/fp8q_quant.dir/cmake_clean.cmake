file(REMOVE_RECURSE
  "CMakeFiles/fp8q_quant.dir/calibrate.cpp.o"
  "CMakeFiles/fp8q_quant.dir/calibrate.cpp.o.d"
  "CMakeFiles/fp8q_quant.dir/observer.cpp.o"
  "CMakeFiles/fp8q_quant.dir/observer.cpp.o.d"
  "CMakeFiles/fp8q_quant.dir/qconfig.cpp.o"
  "CMakeFiles/fp8q_quant.dir/qconfig.cpp.o.d"
  "CMakeFiles/fp8q_quant.dir/quantized_graph.cpp.o"
  "CMakeFiles/fp8q_quant.dir/quantized_graph.cpp.o.d"
  "CMakeFiles/fp8q_quant.dir/quantizer.cpp.o"
  "CMakeFiles/fp8q_quant.dir/quantizer.cpp.o.d"
  "CMakeFiles/fp8q_quant.dir/smoothquant.cpp.o"
  "CMakeFiles/fp8q_quant.dir/smoothquant.cpp.o.d"
  "libfp8q_quant.a"
  "libfp8q_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8q_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
