
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/calibrate.cpp" "src/quant/CMakeFiles/fp8q_quant.dir/calibrate.cpp.o" "gcc" "src/quant/CMakeFiles/fp8q_quant.dir/calibrate.cpp.o.d"
  "/root/repo/src/quant/observer.cpp" "src/quant/CMakeFiles/fp8q_quant.dir/observer.cpp.o" "gcc" "src/quant/CMakeFiles/fp8q_quant.dir/observer.cpp.o.d"
  "/root/repo/src/quant/qconfig.cpp" "src/quant/CMakeFiles/fp8q_quant.dir/qconfig.cpp.o" "gcc" "src/quant/CMakeFiles/fp8q_quant.dir/qconfig.cpp.o.d"
  "/root/repo/src/quant/quantized_graph.cpp" "src/quant/CMakeFiles/fp8q_quant.dir/quantized_graph.cpp.o" "gcc" "src/quant/CMakeFiles/fp8q_quant.dir/quantized_graph.cpp.o.d"
  "/root/repo/src/quant/quantizer.cpp" "src/quant/CMakeFiles/fp8q_quant.dir/quantizer.cpp.o" "gcc" "src/quant/CMakeFiles/fp8q_quant.dir/quantizer.cpp.o.d"
  "/root/repo/src/quant/smoothquant.cpp" "src/quant/CMakeFiles/fp8q_quant.dir/smoothquant.cpp.o" "gcc" "src/quant/CMakeFiles/fp8q_quant.dir/smoothquant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fp8/CMakeFiles/fp8q_fp8.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fp8q_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fp8q_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
