# Empty dependencies file for fp8q_tune.
# This may be replaced when dependencies are built.
