file(REMOVE_RECURSE
  "CMakeFiles/fp8q_tune.dir/tuner.cpp.o"
  "CMakeFiles/fp8q_tune.dir/tuner.cpp.o.d"
  "libfp8q_tune.a"
  "libfp8q_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8q_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
