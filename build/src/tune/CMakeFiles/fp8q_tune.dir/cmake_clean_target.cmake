file(REMOVE_RECURSE
  "libfp8q_tune.a"
)
