file(REMOVE_RECURSE
  "CMakeFiles/fp8q_metrics.dir/metrics.cpp.o"
  "CMakeFiles/fp8q_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/fp8q_metrics.dir/passrate.cpp.o"
  "CMakeFiles/fp8q_metrics.dir/passrate.cpp.o.d"
  "libfp8q_metrics.a"
  "libfp8q_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8q_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
