# Empty compiler generated dependencies file for fp8q_metrics.
# This may be replaced when dependencies are built.
