file(REMOVE_RECURSE
  "libfp8q_metrics.a"
)
