file(REMOVE_RECURSE
  "CMakeFiles/fp8q_models.dir/generation.cpp.o"
  "CMakeFiles/fp8q_models.dir/generation.cpp.o.d"
  "CMakeFiles/fp8q_models.dir/zoo.cpp.o"
  "CMakeFiles/fp8q_models.dir/zoo.cpp.o.d"
  "libfp8q_models.a"
  "libfp8q_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8q_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
