# Empty dependencies file for fp8q_models.
# This may be replaced when dependencies are built.
