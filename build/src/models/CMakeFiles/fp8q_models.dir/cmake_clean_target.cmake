file(REMOVE_RECURSE
  "libfp8q_models.a"
)
