
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fp8/cast.cpp" "src/fp8/CMakeFiles/fp8q_fp8.dir/cast.cpp.o" "gcc" "src/fp8/CMakeFiles/fp8q_fp8.dir/cast.cpp.o.d"
  "/root/repo/src/fp8/cast_fast.cpp" "src/fp8/CMakeFiles/fp8q_fp8.dir/cast_fast.cpp.o" "gcc" "src/fp8/CMakeFiles/fp8q_fp8.dir/cast_fast.cpp.o.d"
  "/root/repo/src/fp8/convert.cpp" "src/fp8/CMakeFiles/fp8q_fp8.dir/convert.cpp.o" "gcc" "src/fp8/CMakeFiles/fp8q_fp8.dir/convert.cpp.o.d"
  "/root/repo/src/fp8/format.cpp" "src/fp8/CMakeFiles/fp8q_fp8.dir/format.cpp.o" "gcc" "src/fp8/CMakeFiles/fp8q_fp8.dir/format.cpp.o.d"
  "/root/repo/src/fp8/int8.cpp" "src/fp8/CMakeFiles/fp8q_fp8.dir/int8.cpp.o" "gcc" "src/fp8/CMakeFiles/fp8q_fp8.dir/int8.cpp.o.d"
  "/root/repo/src/fp8/packed.cpp" "src/fp8/CMakeFiles/fp8q_fp8.dir/packed.cpp.o" "gcc" "src/fp8/CMakeFiles/fp8q_fp8.dir/packed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
