file(REMOVE_RECURSE
  "CMakeFiles/fp8q_fp8.dir/cast.cpp.o"
  "CMakeFiles/fp8q_fp8.dir/cast.cpp.o.d"
  "CMakeFiles/fp8q_fp8.dir/cast_fast.cpp.o"
  "CMakeFiles/fp8q_fp8.dir/cast_fast.cpp.o.d"
  "CMakeFiles/fp8q_fp8.dir/convert.cpp.o"
  "CMakeFiles/fp8q_fp8.dir/convert.cpp.o.d"
  "CMakeFiles/fp8q_fp8.dir/format.cpp.o"
  "CMakeFiles/fp8q_fp8.dir/format.cpp.o.d"
  "CMakeFiles/fp8q_fp8.dir/int8.cpp.o"
  "CMakeFiles/fp8q_fp8.dir/int8.cpp.o.d"
  "CMakeFiles/fp8q_fp8.dir/packed.cpp.o"
  "CMakeFiles/fp8q_fp8.dir/packed.cpp.o.d"
  "libfp8q_fp8.a"
  "libfp8q_fp8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8q_fp8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
