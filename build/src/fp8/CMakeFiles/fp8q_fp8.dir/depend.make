# Empty dependencies file for fp8q_fp8.
# This may be replaced when dependencies are built.
