file(REMOVE_RECURSE
  "libfp8q_fp8.a"
)
