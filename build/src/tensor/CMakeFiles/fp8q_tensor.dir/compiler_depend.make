# Empty compiler generated dependencies file for fp8q_tensor.
# This may be replaced when dependencies are built.
