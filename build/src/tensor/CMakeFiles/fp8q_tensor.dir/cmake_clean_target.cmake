file(REMOVE_RECURSE
  "libfp8q_tensor.a"
)
