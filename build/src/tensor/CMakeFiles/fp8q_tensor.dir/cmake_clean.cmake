file(REMOVE_RECURSE
  "CMakeFiles/fp8q_tensor.dir/rng.cpp.o"
  "CMakeFiles/fp8q_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/fp8q_tensor.dir/stats.cpp.o"
  "CMakeFiles/fp8q_tensor.dir/stats.cpp.o.d"
  "CMakeFiles/fp8q_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fp8q_tensor.dir/tensor.cpp.o.d"
  "libfp8q_tensor.a"
  "libfp8q_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8q_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
