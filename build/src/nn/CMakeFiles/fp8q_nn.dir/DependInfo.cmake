
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/fp8q_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/fp8q_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/elementwise.cpp" "src/nn/CMakeFiles/fp8q_nn.dir/elementwise.cpp.o" "gcc" "src/nn/CMakeFiles/fp8q_nn.dir/elementwise.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/fp8q_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/fp8q_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/graph.cpp" "src/nn/CMakeFiles/fp8q_nn.dir/graph.cpp.o" "gcc" "src/nn/CMakeFiles/fp8q_nn.dir/graph.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/fp8q_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/fp8q_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/matmul.cpp" "src/nn/CMakeFiles/fp8q_nn.dir/matmul.cpp.o" "gcc" "src/nn/CMakeFiles/fp8q_nn.dir/matmul.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/fp8q_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/fp8q_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/op.cpp" "src/nn/CMakeFiles/fp8q_nn.dir/op.cpp.o" "gcc" "src/nn/CMakeFiles/fp8q_nn.dir/op.cpp.o.d"
  "/root/repo/src/nn/shape_ops.cpp" "src/nn/CMakeFiles/fp8q_nn.dir/shape_ops.cpp.o" "gcc" "src/nn/CMakeFiles/fp8q_nn.dir/shape_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fp8q_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
