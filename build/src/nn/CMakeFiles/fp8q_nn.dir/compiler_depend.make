# Empty compiler generated dependencies file for fp8q_nn.
# This may be replaced when dependencies are built.
