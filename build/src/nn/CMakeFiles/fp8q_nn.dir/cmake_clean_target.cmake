file(REMOVE_RECURSE
  "libfp8q_nn.a"
)
