file(REMOVE_RECURSE
  "CMakeFiles/fp8q_nn.dir/conv.cpp.o"
  "CMakeFiles/fp8q_nn.dir/conv.cpp.o.d"
  "CMakeFiles/fp8q_nn.dir/elementwise.cpp.o"
  "CMakeFiles/fp8q_nn.dir/elementwise.cpp.o.d"
  "CMakeFiles/fp8q_nn.dir/embedding.cpp.o"
  "CMakeFiles/fp8q_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/fp8q_nn.dir/graph.cpp.o"
  "CMakeFiles/fp8q_nn.dir/graph.cpp.o.d"
  "CMakeFiles/fp8q_nn.dir/linear.cpp.o"
  "CMakeFiles/fp8q_nn.dir/linear.cpp.o.d"
  "CMakeFiles/fp8q_nn.dir/matmul.cpp.o"
  "CMakeFiles/fp8q_nn.dir/matmul.cpp.o.d"
  "CMakeFiles/fp8q_nn.dir/norm.cpp.o"
  "CMakeFiles/fp8q_nn.dir/norm.cpp.o.d"
  "CMakeFiles/fp8q_nn.dir/op.cpp.o"
  "CMakeFiles/fp8q_nn.dir/op.cpp.o.d"
  "CMakeFiles/fp8q_nn.dir/shape_ops.cpp.o"
  "CMakeFiles/fp8q_nn.dir/shape_ops.cpp.o.d"
  "libfp8q_nn.a"
  "libfp8q_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp8q_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
