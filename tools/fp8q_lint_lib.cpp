#include "fp8q_lint_lib.h"

#include <algorithm>
#include <fstream>
#include <regex>
#include <sstream>

namespace fp8q::lint {

namespace {

/// One textual rule: files for which `exempt` returns true are skipped.
struct Rule {
  const char* id;
  const char* pattern;
  bool (*exempt)(const std::string& rel);
  const char* message;
};

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

const Rule kRules[] = {
    {"raw-thread",
     R"(std::(thread|jthread|async)\b|#\s*include\s*<(thread|future)>)",
     [](const std::string& rel) {
       // service/server.{h,cpp} owns the daemon's single executor thread
       // (jobs still fan out through core/parallel; docs/SERVICE.md).
       return starts_with(rel, "core/parallel.") || starts_with(rel, "service/server.");
     },
     "raw threading primitive outside core/parallel.{h,cpp}; use "
     "parallel_for/parallel_run (docs/THREADING.md)"},
    {"raw-socket-io",
     R"((^|[^\w.>])(::)?(socket|accept|accept4|bind|listen|connect|recv|recvfrom|recvmsg|send|sendto|sendmsg|read|write|setsockopt|getsockopt|getsockname|poll|select|epoll_wait)\s*\()",
     [](const std::string& rel) { return starts_with(rel, "service/net_"); },
     "raw socket/poll syscall outside src/service/net_*; go through the "
     "framed Connection/Listener wrappers (service/net.h) so every byte "
     "on the wire passes one audited length-checked path "
     "(docs/SERVICE.md)"},
    {"determinism",
     R"(\bsrand\s*\(|\brand\s*\(|\brandom_device\b|\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b|\btime\s*\(|\bclock\s*\(|#\s*include\s*<chrono>|#\s*include\s*<random>)",
     [](const std::string& rel) {
       return starts_with(rel, "obs/") || rel == "tensor/rng.cpp" || rel == "tensor/rng.h";
     },
     "nondeterminism source (clock/rand) outside src/obs/ and tensor/rng; "
     "library results must be pure functions of their inputs (use "
     "obs_now_ns() for timing, fp8q::Rng for randomness)"},
    {"raw-clock",
     R"(\bclock_gettime\s*\(|\btimespec_get\s*\(|\bstd::chrono\b|#\s*include\s*<(chrono|ctime|sys/time\.h)>)",
     [](const std::string& rel) { return starts_with(rel, "obs/"); },
     "raw clock/timing primitive outside src/obs/; take timestamps through "
     "obs_now_ns() (obs/trace.h) so latency histograms and trace exports "
     "share one clock domain (docs/OBSERVABILITY.md)"},
    {"io-stream",
     R"(#\s*include\s*<iostream>|std::(cout|cerr|clog)\b|\b(printf|fprintf|puts|fputs|putchar)\s*\()",
     [](const std::string& rel) { return starts_with(rel, "obs/"); },
     "console output from library code; only the gated obs report/trace "
     "writers may emit (docs/OBSERVABILITY.md)"},
    {"parallel-grain",
     R"(\bparallel_for\s*\([^)]*\b\d{4,})",
     [](const std::string& rel) { return starts_with(rel, "core/parallel."); },
     "hard-coded parallelization grain; derive it from kParallelGrainBytes "
     "or kParallelGrainFlops (core/parallel.h) so chunk boundaries stay "
     "consistent tree-wide (docs/PERFORMANCE.md)"},
};

bool is_header(const std::string& rel) {
  return rel.size() > 2 && (rel.ends_with(".h") || rel.ends_with(".hpp"));
}

/// Splits into lines (newline excluded). A trailing newline does not add
/// an empty final line.
std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos <= s.size()) {
    const auto nl = s.find('\n', pos);
    if (nl == std::string::npos) {
      if (pos < s.size()) lines.push_back(s.substr(pos));
      break;
    }
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

bool line_allows(const std::string& raw_line, const char* rule_id) {
  const std::string marker = std::string("fp8q-lint: allow(") + rule_id + ")";
  return raw_line.find(marker) != std::string::npos;
}

bool file_allows(const std::string& raw_content, const char* rule_id) {
  const std::string marker = std::string("fp8q-lint: allow-file(") + rule_id + ")";
  return raw_content.find(marker) != std::string::npos;
}

}  // namespace

std::string format_finding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

std::string strip_comments_and_strings(const std::string& content) {
  std::string out = content;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // for raw strings: )delim"
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(out[i - 1])) &&
                               out[i - 1] != '_'))) {
          // Raw string literal R"delim( ... )delim".
          std::size_t p = i + 2;
          std::string delim;
          while (p < out.size() && out[p] != '(') delim += out[p++];
          raw_terminator = ")" + delim + "\"";
          state = State::kRawString;
          for (std::size_t k = i; k <= p && k < out.size(); ++k) {
            if (out[k] != '\n') out[k] = ' ';
          }
          i = p;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          state = State::kCode;
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
      case State::kRawString:
        if (out.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (std::size_t k = i; k < i + raw_terminator.size(); ++k) out[k] = ' ';
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> lint_file(const std::string& rel_path, const std::string& content) {
  std::vector<Finding> findings;
  const std::string stripped = strip_comments_and_strings(content);
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::vector<std::string> code_lines = split_lines(stripped);

  for (const Rule& rule : kRules) {
    if (rule.exempt(rel_path) || file_allows(content, rule.id)) continue;
    const std::regex pattern(rule.pattern);
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      if (!std::regex_search(code_lines[i], pattern)) continue;
      if (i < raw_lines.size() && line_allows(raw_lines[i], rule.id)) continue;
      findings.push_back({rel_path, static_cast<int>(i) + 1, rule.id, rule.message});
    }
  }

  if (is_header(rel_path) && !file_allows(content, "pragma-once") &&
      stripped.find("#pragma once") == std::string::npos) {
    findings.push_back({rel_path, 1, "pragma-once",
                        "header missing #pragma once (headers must be include-once and "
                        "self-contained; see cmake/HeaderSelfContain.cmake)"});
  }
  return findings;
}

std::vector<Finding> lint_tree(const std::filesystem::path& src_root, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(src_root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
      files.push_back(it->path());
    }
  }
  if (ec && error != nullptr) {
    *error += "fp8q_lint: error walking " + src_root.string() + ": " + ec.message() + "\n";
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      const std::string rel = path.lexically_relative(src_root).generic_string();
      findings.push_back({rel, 0, "io-error", "cannot read file"});
      if (error != nullptr) *error += "fp8q_lint: cannot read " + path.string() + "\n";
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel = path.lexically_relative(src_root).generic_string();
    auto file_findings = lint_file(rel, buf.str());
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

}  // namespace fp8q::lint
