// Project-invariant linter for the fp8q source tree (docs/STATIC_ANALYSIS.md).
//
// Enforces repo-specific rules the compiler cannot check — the invariants
// the paper reproduction's claims rest on (bit-exact casts, thread-count
// determinism, silent library code):
//
//   raw-thread    std::thread / std::jthread / std::async and the
//                 <thread>/<future> headers are confined to
//                 core/parallel.{h,cpp}; everything else goes through
//                 parallel_for / parallel_run so the documented threading
//                 model (docs/THREADING.md) is the only one in the tree.
//   determinism   rand()/srand(), std::random_device and wall clocks
//                 (<chrono> clocks, time(), gettimeofday, ...) are
//                 confined to src/obs/ (owns the process clocks; see
//                 obs_now_ns) and tensor/rng.{h,cpp} (the deterministic
//                 generator). Everything else must be a pure function of
//                 its inputs.
//   io-stream     no <iostream>, std::cout/cerr/clog or printf-family
//                 console output from library code; only src/obs/ (the
//                 gated report/trace writers) may emit. Benches, tests,
//                 examples and tools live outside src/ and are exempt.
//   pragma-once   every header carries #pragma once. (Deep header
//                 self-containment — "does it compile alone?" — is the
//                 compiled check: cmake/HeaderSelfContain.cmake.)
//
// Comments and string literals are stripped before matching, so prose
// mentioning std::thread does not trip the linter. Suppressions:
//   // fp8q-lint: allow(<rule>)       on the offending line
//   // fp8q-lint: allow-file(<rule>)  anywhere in the file
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace fp8q::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;     ///< path relative to the scanned root
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule id (raw-thread, determinism, ...)
  std::string message;  ///< human-readable explanation
};

/// "file:line: [rule] message" — the CLI's (and test failures') format.
[[nodiscard]] std::string format_finding(const Finding& f);

/// Replaces the contents of comments and string/char literals with spaces
/// (newlines preserved, so line numbers survive). Exposed for tests.
[[nodiscard]] std::string strip_comments_and_strings(const std::string& content);

/// Lints one file's contents. `rel_path` is the path relative to src/
/// (forward slashes); it decides which rules apply and appears in findings.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& rel_path,
                                             const std::string& content);

/// Lints every .h/.hpp/.cpp/.cc under `src_root`. Findings are sorted by
/// (file, line, rule) so output is deterministic. On I/O failure appends a
/// message to `*error` (when non-null) and reports a finding for the file.
[[nodiscard]] std::vector<Finding> lint_tree(const std::filesystem::path& src_root,
                                             std::string* error = nullptr);

}  // namespace fp8q::lint
