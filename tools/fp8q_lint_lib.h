// Compatibility facade for the fp8q_lint rule engine.
//
// The v1 linter lived entirely in this header/source pair; v2 is a real
// static-analysis library under tools/lint/ (tokenizer, per-TU model,
// manifest-driven rules, SARIF — see lint/engine.h for the overview and
// docs/STATIC_ANALYSIS.md for the operator's guide). The v1 entry points
// (Finding, format_finding, strip_comments_and_strings, lint_file,
// lint_tree) kept their signatures and live in the same fp8q::lint
// namespace, so existing callers — the fixture test suite above all —
// compile unchanged against the new engine.
#pragma once

#include "lint/engine.h"  // IWYU pragma: export
#include "lint/token.h"   // IWYU pragma: export
