// fp8qd_bench: load generator for the fp8qd service (docs/SERVICE.md).
//
//   fp8qd_bench --socket=PATH [--connections=N] [--jobs=M] [--workload=W]
//               [--mix=eval,quantize] [--format=F] [--quick]
//               [--out=BENCH_service.json] [--shutdown]
//
// Drives N concurrent connections against a running daemon: each
// connection loops submit -> result(wait) over a shared job counter, so
// the daemon sees a sustained closed-loop load at concurrency N. Measures
// sustained jobs/sec and the p50/p95/p99 tail of the per-job round-trip
// latency (submit sent -> result received), embeds the server's own stats
// endpoint snapshot, and writes a BENCH_service.json that
// `fp8q_report check-bench --min-jobs-per-sec=J` gates in CI.
//
// Lint exemptions (docs/STATIC_ANALYSIS.md): the load generator is a
// standalone client, so it owns its own threads instead of depending on
// the library pool, and it is inherently wall-clock paced.
// fp8q-lint: allow-file(raw-thread) one client thread per connection is the tool's whole job
// fp8q-lint: allow-file(raw-clock) <chrono> only feeds the queue_full backoff sleep; measurement uses obs_now_ns
// fp8q-lint: allow-file(determinism) closed-loop pacing against a live daemon cannot be deterministic
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "io/json.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "service/net.h"
#include "service/protocol.h"

using namespace fp8q;

namespace {

struct BenchOptions {
  std::string socket_path;
  int tcp_port = -1;
  int connections = 4;
  int jobs = 16;
  std::string workload = "dlrm-ish";
  std::string mix = "eval,quantize";
  std::string format = "E4M3";
  bool quick = false;
  bool shutdown = false;
  std::string out_path = "BENCH_service.json";
};

struct WorkerResult {
  LocalHistogram latency_ns;
  int completed = 0;
  int failed = 0;
  int queue_full_retries = 0;
};

service::Connection connect_to_daemon(const BenchOptions& opts) {
  if (!opts.socket_path.empty()) return service::connect_unix(opts.socket_path);
  return service::connect_tcp_loopback(opts.tcp_port);
}

std::vector<std::string> split_mix(const std::string& mix) {
  std::vector<std::string> kinds;
  std::string current;
  for (const char c : mix + ",") {
    if (c == ',') {
      if (!current.empty()) kinds.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  return kinds;
}

std::string submit_payload(const BenchOptions& opts, const std::string& kind) {
  std::string payload = "{\"cmd\":\"submit\",\"kind\":";
  service::append_json_string(payload, kind);
  payload += ",\"workload\":";
  service::append_json_string(payload, opts.workload);
  payload += ",\"format\":";
  service::append_json_string(payload, opts.format);
  payload += opts.quick ? ",\"quick\":true}" : "}";
  return payload;
}

/// One closed-loop worker: submit, wait for the result, repeat until the
/// shared job counter is exhausted. queue_full rejections back off and
/// retry (the daemon's admission control at work).
void worker(const BenchOptions& opts, const std::vector<std::string>& kinds,
            std::atomic<int>& next_job, WorkerResult& result) {
  service::Connection conn = connect_to_daemon(opts);
  for (;;) {
    const int index = next_job.fetch_add(1, std::memory_order_relaxed);
    if (index >= opts.jobs) return;
    const std::string& kind = kinds[static_cast<std::size_t>(index) % kinds.size()];

    const std::uint64_t t0 = obs_now_ns();
    std::uint64_t job_id = 0;
    for (;;) {
      conn.send_frame(submit_payload(opts, kind));
      const auto reply = conn.recv_frame();
      if (!reply) throw std::runtime_error("daemon closed the connection on submit");
      const json::Value v = json::parse(*reply);
      const json::Value* ok = v.find("ok");
      if (ok != nullptr && ok->boolean) {
        job_id = static_cast<std::uint64_t>(v.number_or("job_id"));
        break;
      }
      if (v.string_or("code") == "queue_full") {
        ++result.queue_full_retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      throw std::runtime_error("submit rejected: " + *reply);
    }

    std::string payload = "{\"cmd\":\"result\",\"job_id\":";
    payload += std::to_string(job_id);
    payload += ",\"wait\":true}";
    conn.send_frame(payload);
    const auto reply = conn.recv_frame();
    if (!reply) throw std::runtime_error("daemon closed the connection on result");
    const json::Value v = json::parse(*reply);
    const std::uint64_t t1 = obs_now_ns();
    if (v.string_or("state") == "done") {
      ++result.completed;
      result.latency_ns.record(static_cast<double>(t1 - t0));
    } else {
      ++result.failed;
      std::fprintf(stderr, "[fp8qd_bench] job %llu ended %s: %s\n",
                   static_cast<unsigned long long>(job_id), v.string_or("state").c_str(),
                   v.string_or("error").c_str());
    }
  }
}

void append_quantiles_ms(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\":";
  out += std::to_string(h.total);
  const double to_ms = 1.0 / 1e6;
  out += ",\"p50\":" + std::to_string(h.quantile(0.50) * to_ms);
  out += ",\"p95\":" + std::to_string(h.quantile(0.95) * to_ms);
  out += ",\"p99\":" + std::to_string(h.quantile(0.99) * to_ms);
  out += ",\"max\":" + std::to_string((h.total != 0 ? h.max_value : 0.0) * to_ms);
  out += "}";
}

int usage() {
  std::fprintf(
      stderr,
      "usage: fp8qd_bench --socket=PATH | --tcp-port=N\n"
      "  [--connections=N]   concurrent client connections (default 4)\n"
      "  [--jobs=M]          total jobs across all connections (default 16)\n"
      "  [--workload=W]      suite workload name (default dlrm-ish)\n"
      "  [--mix=K1,K2]       job kinds to cycle through (default eval,quantize)\n"
      "  [--format=F]        E5M2|E4M3|E3M4|INT8|mixed (default E4M3)\n"
      "  [--quick]           smoke-sized evaluation protocol per job\n"
      "  [--out=PATH]        snapshot path (default BENCH_service.json)\n"
      "  [--shutdown]        ask the daemon to drain and exit afterwards\n");
  return 2;
}

bool flag_value(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts;
  if (const char* sock = std::getenv("FP8QD_SOCKET"); sock != nullptr && sock[0] != '\0') {
    opts.socket_path = sock;
  }
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (flag_value(argv[i], "--socket", &value)) {
      opts.socket_path = value;
    } else if (flag_value(argv[i], "--tcp-port", &value)) {
      opts.tcp_port = std::atoi(value);
      opts.socket_path.clear();
    } else if (flag_value(argv[i], "--connections", &value)) {
      opts.connections = std::atoi(value);
    } else if (flag_value(argv[i], "--jobs", &value)) {
      opts.jobs = std::atoi(value);
    } else if (flag_value(argv[i], "--workload", &value)) {
      opts.workload = value;
    } else if (flag_value(argv[i], "--mix", &value)) {
      opts.mix = value;
    } else if (flag_value(argv[i], "--format", &value)) {
      opts.format = value;
    } else if (flag_value(argv[i], "--out", &value)) {
      opts.out_path = value;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      opts.shutdown = true;
    } else {
      return usage();
    }
  }
  if ((opts.socket_path.empty() && opts.tcp_port < 0) || opts.connections < 1 ||
      opts.jobs < 1) {
    return usage();
  }
  const std::vector<std::string> kinds = split_mix(opts.mix);
  if (kinds.empty()) return usage();

  try {
    std::atomic<int> next_job{0};
    std::vector<WorkerResult> results(static_cast<std::size_t>(opts.connections));
    std::vector<std::thread> threads;
    threads.reserve(results.size());

    const std::uint64_t bench_start = obs_now_ns();
    for (std::size_t i = 0; i < results.size(); ++i) {
      threads.emplace_back(
          [&, i] { worker(opts, kinds, next_job, results[i]); });
    }
    for (auto& t : threads) t.join();
    const double wall_s = static_cast<double>(obs_now_ns() - bench_start) / 1e9;

    HistogramSnapshot latency;
    int completed = 0, failed = 0, retries = 0;
    for (const WorkerResult& r : results) {
      latency.merge_from(r.latency_ns.snap);
      completed += r.completed;
      failed += r.failed;
      retries += r.queue_full_retries;
    }
    const double jobs_per_sec = wall_s > 0.0 ? completed / wall_s : 0.0;

    // Fetch the daemon's own stats snapshot over a fresh control
    // connection, then optionally ask it to drain.
    std::string server_stats = "{}";
    {
      service::Connection control = connect_to_daemon(opts);
      control.send_frame("{\"cmd\":\"stats\"}");
      if (const auto reply = control.recv_frame()) server_stats = *reply;
      if (opts.shutdown) {
        control.send_frame("{\"cmd\":\"shutdown\",\"drain\":true}");
        (void)control.recv_frame();
      }
    }

    std::string json = "{\n  \"service\": {\n    \"connections\": ";
    json += std::to_string(opts.connections);
    json += ",\n    \"jobs\": " + std::to_string(opts.jobs);
    json += ",\n    \"completed\": " + std::to_string(completed);
    json += ",\n    \"failed\": " + std::to_string(failed);
    json += ",\n    \"queue_full_retries\": " + std::to_string(retries);
    json += ",\n    \"workload\": ";
    service::append_json_string(json, opts.workload);
    json += ",\n    \"mix\": ";
    service::append_json_string(json, opts.mix);
    json += ",\n    \"format\": ";
    service::append_json_string(json, opts.format);
    json += ",\n    \"quick\": ";
    json += opts.quick ? "true" : "false";
    json += ",\n    \"wall_s\": " + std::to_string(wall_s);
    json += ",\n    \"jobs_per_sec\": " + std::to_string(jobs_per_sec);
    json += ",\n    \"latency_ms\": ";
    append_quantiles_ms(json, latency);
    json += "\n  },\n  \"server_stats\": " + server_stats + "\n}\n";

    std::ofstream out(opts.out_path);
    if (!out) throw std::runtime_error("cannot write " + opts.out_path);
    out << json;
    out.close();

    std::printf("connections: %d  jobs: %d (%d completed, %d failed, %d retries)\n",
                opts.connections, opts.jobs, completed, failed, retries);
    std::printf("wall: %.2f s  sustained: %.2f jobs/sec\n", wall_s, jobs_per_sec);
    std::printf("latency: p50 %.1f ms  p95 %.1f ms  p99 %.1f ms  max %.1f ms\n",
                latency.quantile(0.50) / 1e6, latency.quantile(0.95) / 1e6,
                latency.quantile(0.99) / 1e6,
                (latency.total != 0 ? latency.max_value : 0.0) / 1e6);
    std::printf("snapshot written to %s\n", opts.out_path.c_str());
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fp8qd_bench: %s\n", e.what());
    return 1;
  }
}
