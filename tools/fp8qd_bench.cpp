// fp8qd_bench: load generator for the fp8qd service (docs/SERVICE.md).
//
//   fp8qd_bench --socket=PATH [--connections=N] [--jobs=M] [--workload=W]
//               [--mix=eval,quantize] [--format=F] [--quick]
//               [--out=BENCH_service.json] [--append] [--shutdown]
//
// Drives N concurrent connections against a running daemon: each
// connection loops submit -> result(wait) over a shared job counter, so
// the daemon sees a sustained closed-loop load at concurrency N. Measures
// sustained jobs/sec and the p50/p95/p99 tail of the per-job round-trip
// latency (submit sent -> result received) plus the per-job queue-full
// retry distribution (merged across connections like the latency
// histogram, not just a total), embeds the server's own stats endpoint
// snapshot, and writes a BENCH_service.json that `fp8q_report check-bench
// --min-jobs-per-sec=J` gates in CI.
//
// Worker-count scaling rows: every run appends one row to the snapshot's
// "runs" array tagged with the daemon's executor worker count (read off
// the stats endpoint's scheduler block), so a script that restarts the
// daemon at FP8QD_WORKERS=1/2/4 and re-runs the bench with --append gets
// the whole jobs/sec scaling curve in ONE BENCH_service.json.
//
// Lint exemptions (docs/STATIC_ANALYSIS.md): the load generator is a
// standalone client, so it owns its own threads instead of depending on
// the library pool, and it is inherently wall-clock paced.
// fp8q-lint: allow-file(raw-thread) one client thread per connection is the tool's whole job
// fp8q-lint: allow-file(raw-clock) <chrono> only feeds the queue_full backoff sleep; measurement uses obs_now_ns
// fp8q-lint: allow-file(determinism) closed-loop pacing against a live daemon cannot be deterministic
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "io/json.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "service/net.h"
#include "service/protocol.h"

using namespace fp8q;

namespace {

struct BenchOptions {
  std::string socket_path;
  int tcp_port = -1;
  int connections = 4;
  int jobs = 16;
  std::string workload = "dlrm-ish";
  std::string mix = "eval,quantize";
  std::string format = "E4M3";
  bool quick = false;
  bool shutdown = false;
  bool append = false;
  std::string out_path = "BENCH_service.json";
  /// When set, one canonical job (first mix kind, same workload/format)
  /// runs after the timed load and its report-v4 JSON lands here -- the
  /// artifact `fp8q_report diff --max-counter-drift-pct=0` compares
  /// across daemon worker counts.
  std::string report_out_path;
};

struct WorkerResult {
  LocalHistogram latency_ns;
  /// Queue-full retries PER JOB -- a distribution merged across the
  /// connections exactly like latency_ns, so admission-control pressure
  /// shows up as quantiles instead of vanishing into one total.
  LocalHistogram retries_per_job;
  int completed = 0;
  int failed = 0;
  int queue_full_retries = 0;
};

service::Connection connect_to_daemon(const BenchOptions& opts) {
  if (!opts.socket_path.empty()) return service::connect_unix(opts.socket_path);
  return service::connect_tcp_loopback(opts.tcp_port);
}

std::vector<std::string> split_mix(const std::string& mix) {
  std::vector<std::string> kinds;
  std::string current;
  for (const char c : mix + ",") {
    if (c == ',') {
      if (!current.empty()) kinds.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  return kinds;
}

std::string submit_payload(const BenchOptions& opts, const std::string& kind) {
  std::string payload = "{\"cmd\":\"submit\",\"kind\":";
  service::append_json_string(payload, kind);
  payload += ",\"workload\":";
  service::append_json_string(payload, opts.workload);
  payload += ",\"format\":";
  service::append_json_string(payload, opts.format);
  payload += opts.quick ? ",\"quick\":true}" : "}";
  return payload;
}

/// One closed-loop worker: submit, wait for the result, repeat until the
/// shared job counter is exhausted. queue_full rejections back off and
/// retry (the daemon's admission control at work).
void worker(const BenchOptions& opts, const std::vector<std::string>& kinds,
            std::atomic<int>& next_job, WorkerResult& result) {
  service::Connection conn = connect_to_daemon(opts);
  for (;;) {
    const int index = next_job.fetch_add(1, std::memory_order_relaxed);
    if (index >= opts.jobs) return;
    const std::string& kind = kinds[static_cast<std::size_t>(index) % kinds.size()];

    const std::uint64_t t0 = obs_now_ns();
    std::uint64_t job_id = 0;
    int job_retries = 0;
    for (;;) {
      conn.send_frame(submit_payload(opts, kind));
      const auto reply = conn.recv_frame();
      if (!reply) throw std::runtime_error("daemon closed the connection on submit");
      const json::Value v = json::parse(*reply);
      const json::Value* ok = v.find("ok");
      if (ok != nullptr && ok->boolean) {
        job_id = static_cast<std::uint64_t>(v.number_or("job_id"));
        break;
      }
      if (v.string_or("code") == "queue_full") {
        ++job_retries;
        ++result.queue_full_retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      throw std::runtime_error("submit rejected: " + *reply);
    }
    result.retries_per_job.record(static_cast<double>(job_retries));

    std::string payload = "{\"cmd\":\"result\",\"job_id\":";
    payload += std::to_string(job_id);
    payload += ",\"wait\":true}";
    conn.send_frame(payload);
    const auto reply = conn.recv_frame();
    if (!reply) throw std::runtime_error("daemon closed the connection on result");
    const json::Value v = json::parse(*reply);
    const std::uint64_t t1 = obs_now_ns();
    if (v.string_or("state") == "done") {
      ++result.completed;
      result.latency_ns.record(static_cast<double>(t1 - t0));
    } else {
      ++result.failed;
      std::fprintf(stderr, "[fp8qd_bench] job %llu ended %s: %s\n",
                   static_cast<unsigned long long>(job_id), v.string_or("state").c_str(),
                   v.string_or("error").c_str());
    }
  }
}

void append_quantiles(std::string& out, const HistogramSnapshot& h, double scale) {
  out += "{\"count\":";
  out += std::to_string(h.total);
  out += ",\"p50\":" + std::to_string(h.quantile(0.50) * scale);
  out += ",\"p95\":" + std::to_string(h.quantile(0.95) * scale);
  out += ",\"p99\":" + std::to_string(h.quantile(0.99) * scale);
  out += ",\"max\":" + std::to_string((h.total != 0 ? h.max_value : 0.0) * scale);
  out += "}";
}

void append_quantiles_ms(std::string& out, const HistogramSnapshot& h) {
  append_quantiles(out, h, 1.0 / 1e6);
}

/// Re-serializes one quantile block parsed back out of a prior snapshot.
void append_parsed_quantiles(std::string& out, const json::Value* q) {
  out += "{\"count\":";
  out += std::to_string(
      q != nullptr ? static_cast<std::uint64_t>(q->number_or("count")) : 0);
  for (const char* key : {"p50", "p95", "p99", "max"}) {
    out += ",\"";
    out += key;
    out += "\":" + std::to_string(q != nullptr ? q->number_or(key) : 0.0);
  }
  out += "}";
}

/// Re-serializes one "runs" row from a prior --append snapshot. The row
/// schema is fixed, so a field-by-field round-trip is exact enough for
/// the scaling-curve comparison the rows exist for.
void append_parsed_run_row(std::string& out, const json::Value& row) {
  out += "{\"workers\":";
  out += std::to_string(static_cast<int>(row.number_or("workers", 1.0)));
  out += ",\"connections\":" + std::to_string(static_cast<int>(row.number_or("connections")));
  out += ",\"jobs\":" + std::to_string(static_cast<int>(row.number_or("jobs")));
  out += ",\"completed\":" + std::to_string(static_cast<int>(row.number_or("completed")));
  out += ",\"failed\":" + std::to_string(static_cast<int>(row.number_or("failed")));
  out += ",\"queue_full_retries\":" +
         std::to_string(static_cast<int>(row.number_or("queue_full_retries")));
  out += ",\"wall_s\":" + std::to_string(row.number_or("wall_s"));
  out += ",\"jobs_per_sec\":" + std::to_string(row.number_or("jobs_per_sec"));
  out += ",\"latency_ms\":";
  append_parsed_quantiles(out, row.find("latency_ms"));
  out += ",\"retries_per_job\":";
  append_parsed_quantiles(out, row.find("retries_per_job"));
  out += "}";
}

/// Prior rows from an existing snapshot when --append is on; a missing or
/// unparseable file just starts a fresh curve.
std::vector<std::string> load_prior_runs(const BenchOptions& opts) {
  std::vector<std::string> rows;
  if (!opts.append) return rows;
  std::ifstream in(opts.out_path);
  if (!in) return rows;
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  try {
    const json::Value prior = json::parse(text);
    if (const json::Value* runs = prior.find("runs");
        runs != nullptr && runs->is_array()) {
      for (const json::Value& row : runs->array) {
        if (!row.is_object()) continue;
        std::string serialized;
        append_parsed_run_row(serialized, row);
        rows.push_back(std::move(serialized));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[fp8qd_bench] --append: ignoring unreadable %s (%s)\n",
                 opts.out_path.c_str(), e.what());
    rows.clear();
  }
  return rows;
}

/// Submits one canonical job over `conn`, waits for its result, and
/// returns the embedded report-v4 JSON object. The result frame ends
/// ...,"report":{...}} with nothing after the report, so the object is
/// the substring from the key to the frame's closing brace.
std::string fetch_canonical_report(service::Connection& conn, const BenchOptions& opts,
                                   const std::string& kind) {
  conn.send_frame(submit_payload(opts, kind));
  const auto submitted = conn.recv_frame();
  if (!submitted) throw std::runtime_error("daemon closed the connection on submit");
  const json::Value v = json::parse(*submitted);
  const json::Value* ok = v.find("ok");
  if (ok == nullptr || !ok->boolean) {
    throw std::runtime_error("--report-out submit rejected: " + *submitted);
  }
  std::string payload = "{\"cmd\":\"result\",\"job_id\":";
  payload += std::to_string(static_cast<std::uint64_t>(v.number_or("job_id")));
  payload += ",\"wait\":true}";
  conn.send_frame(payload);
  const auto reply = conn.recv_frame();
  if (!reply) throw std::runtime_error("daemon closed the connection on result");
  const json::Value result = json::parse(*reply);
  if (result.string_or("state") != "done") {
    throw std::runtime_error("--report-out job ended " + result.string_or("state") + ": " +
                             result.string_or("error"));
  }
  const std::string key = "\"report\":";
  const std::size_t at = reply->find(key);
  if (at == std::string::npos || reply->back() != '}') {
    throw std::runtime_error("--report-out result carries no report: " + *reply);
  }
  return reply->substr(at + key.size(), reply->size() - 1 - (at + key.size()));
}

int usage() {
  std::fprintf(
      stderr,
      "usage: fp8qd_bench --socket=PATH | --tcp-port=N\n"
      "  [--connections=N]   concurrent client connections (default 4)\n"
      "  [--jobs=M]          total jobs across all connections (default 16)\n"
      "  [--workload=W]      suite workload name (default dlrm-ish)\n"
      "  [--mix=K1,K2]       job kinds to cycle through (default eval,quantize)\n"
      "  [--format=F]        E5M2|E4M3|E3M4|INT8|mixed (default E4M3)\n"
      "  [--quick]           smoke-sized evaluation protocol per job\n"
      "  [--out=PATH]        snapshot path (default BENCH_service.json)\n"
      "  [--append]          keep prior runs' rows in the snapshot's \"runs\"\n"
      "                      array (one scaling curve across daemon restarts)\n"
      "  [--report-out=PATH] run one canonical job after the load and save its\n"
      "                      report-v4 JSON (for fp8q_report diff across worker\n"
      "                      counts)\n"
      "  [--shutdown]        ask the daemon to drain and exit afterwards\n");
  return 2;
}

bool flag_value(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts;
  if (const char* sock = std::getenv("FP8QD_SOCKET"); sock != nullptr && sock[0] != '\0') {
    opts.socket_path = sock;
  }
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (flag_value(argv[i], "--socket", &value)) {
      opts.socket_path = value;
    } else if (flag_value(argv[i], "--tcp-port", &value)) {
      opts.tcp_port = std::atoi(value);
      opts.socket_path.clear();
    } else if (flag_value(argv[i], "--connections", &value)) {
      opts.connections = std::atoi(value);
    } else if (flag_value(argv[i], "--jobs", &value)) {
      opts.jobs = std::atoi(value);
    } else if (flag_value(argv[i], "--workload", &value)) {
      opts.workload = value;
    } else if (flag_value(argv[i], "--mix", &value)) {
      opts.mix = value;
    } else if (flag_value(argv[i], "--format", &value)) {
      opts.format = value;
    } else if (flag_value(argv[i], "--out", &value)) {
      opts.out_path = value;
    } else if (flag_value(argv[i], "--report-out", &value)) {
      opts.report_out_path = value;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--append") == 0) {
      opts.append = true;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      opts.shutdown = true;
    } else {
      return usage();
    }
  }
  if ((opts.socket_path.empty() && opts.tcp_port < 0) || opts.connections < 1 ||
      opts.jobs < 1) {
    return usage();
  }
  const std::vector<std::string> kinds = split_mix(opts.mix);
  if (kinds.empty()) return usage();

  try {
    std::atomic<int> next_job{0};
    std::vector<WorkerResult> results(static_cast<std::size_t>(opts.connections));
    std::vector<std::thread> threads;
    threads.reserve(results.size());

    const std::uint64_t bench_start = obs_now_ns();
    for (std::size_t i = 0; i < results.size(); ++i) {
      threads.emplace_back(
          [&, i] { worker(opts, kinds, next_job, results[i]); });
    }
    for (auto& t : threads) t.join();
    const double wall_s = static_cast<double>(obs_now_ns() - bench_start) / 1e9;

    HistogramSnapshot latency;
    HistogramSnapshot retries_per_job;
    int completed = 0, failed = 0, retries = 0;
    for (const WorkerResult& r : results) {
      latency.merge_from(r.latency_ns.snap);
      retries_per_job.merge_from(r.retries_per_job.snap);
      completed += r.completed;
      failed += r.failed;
      retries += r.queue_full_retries;
    }
    const double jobs_per_sec = wall_s > 0.0 ? completed / wall_s : 0.0;

    // Fetch the daemon's own stats snapshot over a fresh control
    // connection, then optionally ask it to drain. The scheduler block
    // tags this run's row with the daemon's worker count.
    std::string server_stats = "{}";
    {
      service::Connection control = connect_to_daemon(opts);
      if (!opts.report_out_path.empty()) {
        const std::string report = fetch_canonical_report(control, opts, kinds[0]);
        std::ofstream report_file(opts.report_out_path);
        if (!report_file) {
          throw std::runtime_error("cannot write " + opts.report_out_path);
        }
        report_file << report << "\n";
        report_file.close();
        std::printf("canonical %s report written to %s\n", kinds[0].c_str(),
                    opts.report_out_path.c_str());
      }
      control.send_frame("{\"cmd\":\"stats\"}");
      if (const auto reply = control.recv_frame()) server_stats = *reply;
      if (opts.shutdown) {
        control.send_frame("{\"cmd\":\"shutdown\",\"drain\":true}");
        (void)control.recv_frame();
      }
    }
    int server_workers = 1;
    try {
      const json::Value stats = json::parse(server_stats);
      if (const json::Value* scheduler = stats.find("scheduler")) {
        server_workers = static_cast<int>(scheduler->number_or("workers", 1.0));
      }
    } catch (const std::exception&) {
      // stats endpoint unreadable: the row keeps workers=1
    }

    std::string row = "{\"workers\":";
    row += std::to_string(server_workers);
    row += ",\"connections\":" + std::to_string(opts.connections);
    row += ",\"jobs\":" + std::to_string(opts.jobs);
    row += ",\"completed\":" + std::to_string(completed);
    row += ",\"failed\":" + std::to_string(failed);
    row += ",\"queue_full_retries\":" + std::to_string(retries);
    row += ",\"wall_s\":" + std::to_string(wall_s);
    row += ",\"jobs_per_sec\":" + std::to_string(jobs_per_sec);
    row += ",\"latency_ms\":";
    append_quantiles_ms(row, latency);
    row += ",\"retries_per_job\":";
    append_quantiles(row, retries_per_job, 1.0);
    row += "}";

    std::vector<std::string> runs = load_prior_runs(opts);
    runs.push_back(row);

    std::string json = "{\n  \"service\": {\n    \"workers\": ";
    json += std::to_string(server_workers);
    json += ",\n    \"connections\": " + std::to_string(opts.connections);
    json += ",\n    \"jobs\": " + std::to_string(opts.jobs);
    json += ",\n    \"completed\": " + std::to_string(completed);
    json += ",\n    \"failed\": " + std::to_string(failed);
    json += ",\n    \"queue_full_retries\": " + std::to_string(retries);
    json += ",\n    \"workload\": ";
    service::append_json_string(json, opts.workload);
    json += ",\n    \"mix\": ";
    service::append_json_string(json, opts.mix);
    json += ",\n    \"format\": ";
    service::append_json_string(json, opts.format);
    json += ",\n    \"quick\": ";
    json += opts.quick ? "true" : "false";
    json += ",\n    \"wall_s\": " + std::to_string(wall_s);
    json += ",\n    \"jobs_per_sec\": " + std::to_string(jobs_per_sec);
    json += ",\n    \"latency_ms\": ";
    append_quantiles_ms(json, latency);
    json += ",\n    \"retries_per_job\": ";
    append_quantiles(json, retries_per_job, 1.0);
    json += "\n  },\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      json += "    " + runs[i];
      json += i + 1 < runs.size() ? ",\n" : "\n";
    }
    json += "  ],\n  \"server_stats\": " + server_stats + "\n}\n";

    std::ofstream out(opts.out_path);
    if (!out) throw std::runtime_error("cannot write " + opts.out_path);
    out << json;
    out.close();

    std::printf("workers: %d  connections: %d  jobs: %d (%d completed, %d failed, "
                "%d retries)\n",
                server_workers, opts.connections, opts.jobs, completed, failed, retries);
    std::printf("wall: %.2f s  sustained: %.2f jobs/sec\n", wall_s, jobs_per_sec);
    std::printf("latency: p50 %.1f ms  p95 %.1f ms  p99 %.1f ms  max %.1f ms\n",
                latency.quantile(0.50) / 1e6, latency.quantile(0.95) / 1e6,
                latency.quantile(0.99) / 1e6,
                (latency.total != 0 ? latency.max_value : 0.0) / 1e6);
    if (retries > 0) {
      std::printf("queue-full retries/job: p50 %.0f  p95 %.0f  max %.0f\n",
                  retries_per_job.quantile(0.50), retries_per_job.quantile(0.95),
                  retries_per_job.max_value);
    }
    std::printf("snapshot written to %s (%zu run row%s)\n", opts.out_path.c_str(),
                runs.size(), runs.size() == 1 ? "" : "s");
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fp8qd_bench: %s\n", e.what());
    return 1;
  }
}
