// fp8q_lint — project-invariant linter CLI (docs/STATIC_ANALYSIS.md).
//
//   fp8q_lint <src-root>
//
// Scans every .h/.hpp/.cpp/.cc under <src-root> (normally the repo's src/
// directory) against the repo-specific rules in fp8q_lint_lib.h and prints
// one "file:line: [rule] message" per violation. Exit status 0 on a clean
// tree, 1 when findings exist, 2 on usage/I-O errors. Registered with
// ctest as `check_lint` and runs as one leg of `check_static`.
#include <filesystem>
#include <iostream>

#include "fp8q_lint_lib.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: fp8q_lint <src-root>\n";
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "fp8q_lint: not a directory: " << root.string() << "\n";
    return 2;
  }

  std::string io_errors;
  const auto findings = fp8q::lint::lint_tree(root, &io_errors);
  if (!io_errors.empty()) {
    std::cerr << io_errors;
    return 2;
  }
  for (const auto& f : findings) {
    std::cout << fp8q::lint::format_finding(f) << "\n";
  }
  if (!findings.empty()) {
    std::cout << "fp8q_lint: " << findings.size() << " finding(s) in "
              << root.string() << "\n";
    return 1;
  }
  std::cout << "fp8q_lint: OK (" << root.string() << " clean)\n";
  return 0;
}
