// fp8q_lint — project-invariant linter CLI (docs/STATIC_ANALYSIS.md).
//
//   fp8q_lint [--manifest=FILE] [--sarif=FILE] <root>...
//
// Scans every .h/.hpp/.cpp/.cc under each <root> against the token-aware
// rule engine in tools/lint/ and prints one "file:line: [rule] message"
// per violation. Each root's basename becomes the path prefix and selects
// the rule profile: a root named src gets the full library rule set,
// tools/ and bench/ get the app profile (may print, may getenv if
// declared — clocks, threads and unordered iteration still policed).
//
//   --manifest=FILE  arms the manifest-driven rules (include-layers,
//                    env-access, the unordered-ok allowlist); normally
//                    tools/lint/layers.manifest
//   --sarif=FILE     additionally writes a SARIF 2.1.0 report for CI
//                    annotation (written on clean runs too, so the
//                    artifact always exists)
//
// Exit status 0 on a clean tree, 1 when findings exist, 2 on usage/I-O/
// manifest errors. Registered with ctest as `check_lint` (full roots +
// manifest) and runs as one leg of `check_static`; tools/ci.sh adds the
// --sarif artifact.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/sarif.h"
#include "fp8q_lint_lib.h"

namespace {

int usage() {
  std::cerr << "usage: fp8q_lint [--manifest=FILE] [--sarif=FILE] <root>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string sarif_path;
  std::vector<std::filesystem::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--manifest=", 0) == 0) {
      manifest_path = arg.substr(11);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return usage();
  for (const auto& root : roots) {
    if (!std::filesystem::is_directory(root)) {
      std::cerr << "fp8q_lint: not a directory: " << root.string() << "\n";
      return 2;
    }
  }

  std::string errors;
  fp8q::lint::Manifest manifest;
  fp8q::lint::ScanOptions options;
  if (!manifest_path.empty()) {
    manifest = fp8q::lint::load_manifest(manifest_path, &errors);
    if (!errors.empty()) {
      std::cerr << errors;
      return 2;
    }
    options.manifest = &manifest;
  }
  for (const auto& root : roots) {
    // The basename is the reported prefix and the rule profile ("src",
    // "tools", "bench"); trailing slashes are tolerated.
    auto normalized = root;
    normalized.make_preferred();
    std::string label = normalized.filename().string();
    if (label.empty() || label == ".") label = normalized.parent_path().filename().string();
    options.roots.push_back({root, label});
  }

  const auto findings = fp8q::lint::lint_roots(options, &errors);
  if (!errors.empty()) {
    std::cerr << errors;
    return 2;
  }

  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path);
    if (!sarif) {
      std::cerr << "fp8q_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
    fp8q::lint::write_sarif(sarif, findings);
  }

  for (const auto& f : findings) {
    std::cout << fp8q::lint::format_finding(f) << "\n";
  }
  if (!findings.empty()) {
    std::cout << "fp8q_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  std::cout << "fp8q_lint: OK (";
  for (std::size_t i = 0; i < options.roots.size(); ++i) {
    std::cout << (i != 0 ? " " : "") << options.roots[i].label;
  }
  std::cout << " clean)\n";
  return 0;
}
