// fp8q_report engine (docs/OBSERVABILITY.md): pretty-prints one run
// report, diffs two against explicit regression thresholds, validates a
// Chrome trace export, and gates BENCH_*.json kernel snapshots. A static
// library so tests/tools/report_cli_test.cpp drives every mode
// in-process; tools/fp8q_report.cpp is the thin CLI that tools/ci.sh uses
// as the perf regression gate.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "io/json.h"
#include "obs/report.h"

namespace fp8q::report_cli {

/// Regression thresholds for diff_reports. A negative value disables that
/// check; 0 demands exact equality (counters) or no increase (the rest).
struct DiffThresholds {
  /// Per-stage wall-time growth, percent of the baseline stage. Stages
  /// are matched by name; unmatched stages are reported but never fail.
  double max_wall_regress_pct = -1.0;
  /// Growth of total tensor-allocation bytes ("memory.alloc_bytes"), pct.
  double max_alloc_growth_pct = -1.0;
  /// Growth of peak RSS ("memory.peak_rss_bytes"), percent.
  double max_rss_growth_pct = -1.0;
  /// Absolute drop of quant_accuracy per record (matched workload+config).
  double max_accuracy_drop = -1.0;
  /// Absolute drop of the overall pass rate, in percentage points.
  double max_pass_rate_drop = -1.0;
  /// Relative drift of any cumulative quantization-event counter cell,
  /// percent. 0 demands bit-identical counters (the determinism gate).
  double max_counter_drift_pct = -1.0;
};

/// Human-readable rendering of one report (stages, counters, memory,
/// histograms with p50/p95/p99/max, accuracy records).
[[nodiscard]] std::string format_report(const RunReport& report);

/// Compares candidate against base under `t`, writing one line per
/// observation to `out`. Returns the number of threshold breaches
/// (0 = gate passes).
int diff_reports(const RunReport& base, const RunReport& candidate,
                 const DiffThresholds& t, std::ostream& out);

/// Structural validation of a Chrome trace-event JSON document (the
/// FP8Q_TRACE_JSON export): must parse, hold a "traceEvents" array whose
/// entries carry name/ph/ts/pid/tid, "X" events need a non-negative dur
/// and must nest properly per thread, and every flow step ("f") must have
/// a matching start ("s") with the same id. Returns the list of problems;
/// empty = valid.
[[nodiscard]] std::vector<std::string> validate_chrome_trace(std::string_view json_text);

/// Gate over one BENCH_*.json snapshot. Kernel snapshots (bench_kernels):
/// every "cast" entry's batched/scalar speedup must be >= min_speedup,
/// and -- when min_packed_speedup > 0 -- every "packed_gemm" entry's
/// packed/dequant speedup must be >= min_packed_speedup (a missing
/// packed_gemm section is then a breach; <= 0 skips the packed gate).
/// Service snapshots (fp8qd_bench, docs/SERVICE.md): when
/// min_jobs_per_sec > 0, the "service" section's sustained jobs_per_sec
/// must be >= that floor (a missing service section is then a breach;
/// <= 0 skips the service gate), and a multi-row "runs" array (the
/// --append worker-scaling curve) is echoed one note per row. A snapshot
/// with neither a cast nor a service section is always a breach. Returns
/// breach count.
int check_bench(const json::Value& bench, double min_speedup, double min_packed_speedup,
                double min_jobs_per_sec, std::ostream& out);

/// Diffs two BENCH_kernels*.json snapshots: batched cast throughput (per
/// format), matmul GFLOP/s (per shape) and packed-GEMM GFLOP/s (per
/// shape+format) may regress at most max_regress_pct percent. Returns
/// breach count.
int diff_bench(const json::Value& base, const json::Value& candidate,
               double max_regress_pct, std::ostream& out);

/// Entry point shared by the CLI and the in-process tests: argv-style
/// arguments, 0 on success, 1 on gate failure, 2 on usage/IO errors.
int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace fp8q::report_cli
