// fp8q command-line tool.
//
//   fp8q_cli formats                      FP8 format constants (Table 1)
//   fp8q_cli cast <value> <fmt>           quantize one value (fmt: E5M2/E4M3/E3M4)
//   fp8q_cli list                         list the 75 study workloads
//   fp8q_cli eval <workload> <fmt> [dyn]  PTQ + evaluate one workload
//   fp8q_cli tune <workload> <fmt>        accuracy-driven auto-tuning
//   fp8q_cli sweep <out.csv> [quick]      full Table-2 sweep to CSV
//
// `eval` and `tune` honor FP8Q_REPORT=<path> (and FP8Q_TRACE=1): the run
// emits a structured JSON report with quantization-event counters and,
// for tune, one stage per trial -- see docs/OBSERVABILITY.md and the
// "Debugging a failed tuning trial" walkthrough in EXPERIMENTS.md. With
// FP8Q_TRACE=1 FP8Q_TRACE_JSON=<path> the span tree is also exported as
// Chrome trace-event JSON (open in ui.perfetto.dev).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/fp8q.h"
#include "obs/trace_export.h"

using namespace fp8q;

namespace {

int cmd_formats() {
  std::printf("%-8s %6s %6s %6s %14s %14s %10s\n", "format", "e", "m", "bias", "max",
              "min subnormal", "infinity");
  for (Fp8Kind kind : kAllFp8Kinds) {
    const auto& f = format_spec(kind);
    std::printf("%-8s %6d %6d %6d %14.6g %14.6g %10s\n",
                std::string(to_string(kind)).c_str(), f.exp_bits, f.man_bits, f.bias,
                f.max_value(), f.min_subnormal(), f.has_infinity() ? "yes" : "no");
  }
  return 0;
}

int cmd_cast(const char* value_str, const char* fmt_str) {
  const float value = std::strtof(value_str, nullptr);
  const Fp8Kind kind = fp8_kind_from_string(fmt_str);
  const std::uint8_t code = fp8_encode(value, kind);
  std::printf("%g -> %s: value %g, code 0x%02X, abs error %g\n", value,
              std::string(to_string(kind)).c_str(), fp8_quantize(value, kind), code,
              std::fabs(value - fp8_quantize(value, kind)));
  return 0;
}

int cmd_list() {
  const auto suite = build_suite();
  std::printf("%-26s %-6s %-22s %-18s %10s\n", "name", "domain", "task", "family",
              "size (MB)");
  for (const auto& w : suite) {
    Graph g = w.build();
    std::printf("%-26s %-6s %-22s %-18s %10.3f\n", w.name.c_str(), w.domain.c_str(),
                w.task.c_str(), w.family.c_str(), g.size_mb());
  }
  return 0;
}

SchemeConfig scheme_from_args(const char* fmt_str, bool dynamic) {
  const std::string fmt(fmt_str);
  if (fmt == "INT8" || fmt == "int8") return int8_scheme(dynamic);
  if (fmt == "mixed") return mixed_fp8_scheme();
  const Fp8Kind kind = fp8_kind_from_string(fmt);
  switch (kind) {
    case Fp8Kind::E5M2: return standard_fp8_scheme(DType::kE5M2, dynamic);
    case Fp8Kind::E4M3: return standard_fp8_scheme(DType::kE4M3, dynamic);
    case Fp8Kind::E3M4: return standard_fp8_scheme(DType::kE3M4, dynamic);
  }
  throw std::invalid_argument("unknown scheme");
}

int cmd_eval(const char* workload, const char* fmt, bool dynamic) {
  const auto suite = build_suite();
  const Workload& w = find_workload(suite, workload);
  RunReport report;
  report.tool = "fp8q_cli eval";
  report.num_threads = num_threads();
  report.isa = isa_label();
  set_active_report(&report);
  const auto rec = evaluate_workload(w, scheme_from_args(fmt, dynamic));
  set_active_report(nullptr);
  std::printf("workload:  %s (%s, %s)\n", rec.workload.c_str(), rec.domain.c_str(),
              w.task.c_str());
  std::printf("config:    %s\n", rec.config.c_str());
  std::printf("fp32:      %.4f\n", rec.fp32_accuracy);
  std::printf("quantized: %.4f\n", rec.quant_accuracy);
  std::printf("loss:      %.2f%%  -> %s (criterion: <= 1%% relative loss)\n",
              100.0 * rec.relative_loss(), rec.passes() ? "PASS" : "FAIL");
  report.records.push_back(rec);
  if (write_report_if_requested(report)) {
    std::fprintf(stderr, "[eval] report written to %s\n", report_env_path());
  }
  if (write_chrome_trace_if_requested()) {
    std::fprintf(stderr, "[eval] chrome trace written to %s\n", trace_json_env_path());
  }
  return rec.passes() ? 0 : 1;
}

int cmd_tune(const char* workload, const char* fmt) {
  const auto suite = build_suite();
  const Workload& w = find_workload(suite, workload);
  DType preferred = DType::kE4M3;
  const std::string f(fmt);
  if (f == "E5M2" || f == "e5m2") preferred = DType::kE5M2;
  if (f == "E3M4" || f == "e3m4") preferred = DType::kE3M4;
  RunReport report;
  report.tool = "fp8q_cli tune";
  report.num_threads = num_threads();
  report.isa = isa_label();
  set_active_report(&report);
  const TuneResult r = autotune(w, preferred);
  set_active_report(nullptr);
  for (const auto& step : r.history) {
    std::printf("%-30s loss %6.2f%%  %s\n", step.description.c_str(),
                100.0 * step.record.relative_loss(), step.met ? "MET" : "");
    report.records.push_back(step.record);
  }
  std::printf("%s; best %s at %.2f%% loss (%d trials)\n",
              r.success ? "criterion met" : "criterion not met",
              r.best.scheme.label().c_str(), 100.0 * r.best_record.relative_loss(),
              r.trials());
  if (write_report_if_requested(report)) {
    std::fprintf(stderr, "[tune] report written to %s\n", report_env_path());
  }
  if (write_chrome_trace_if_requested()) {
    std::fprintf(stderr, "[tune] chrome trace written to %s\n", trace_json_env_path());
  }
  return r.success ? 0 : 1;
}

int cmd_sweep(const char* out_path, bool quick) {
  auto suite = build_suite();
  if (quick) {
    std::vector<Workload> subset;
    for (size_t i = 0; i < suite.size(); i += 5) subset.push_back(suite[i]);
    suite = std::move(subset);
  }
  std::vector<AccuracyRecord> records;
  int done = 0;
  for (const auto& w : suite) {
    for (const auto& scheme : table2_fp8_schemes()) {
      records.push_back(evaluate_workload(w, scheme));
    }
    auto rec = evaluate_workload(w, int8_scheme(w.domain != "CV"));
    rec.config = "INT8";
    records.push_back(rec);
    std::fprintf(stderr, "\r%d/%zu", ++done, suite.size());
  }
  std::fprintf(stderr, "\n");
  std::ofstream out(out_path);
  records_to_csv(records, out);
  std::printf("wrote %zu records to %s\n", records.size(), out_path);
  for (const char* config : {"E5M2/direct", "E4M3/static", "E4M3/dynamic", "E3M4/static",
                             "E3M4/dynamic", "INT8"}) {
    const auto sel = filter_config(records, config);
    std::printf("%-14s pass rate: CV %6.2f%%  NLP %6.2f%%  All %6.2f%%\n", config,
                pass_rate(filter_domain(sel, "CV")), pass_rate(filter_domain(sel, "NLP")),
                pass_rate(sel));
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: fp8q_cli formats\n"
               "       fp8q_cli cast <value> <E5M2|E4M3|E3M4>\n"
               "       fp8q_cli list\n"
               "       fp8q_cli eval <workload> <E5M2|E4M3|E3M4|INT8|mixed> [dynamic]\n"
               "       fp8q_cli tune <workload> <format>\n"
               "       fp8q_cli sweep <out.csv> [quick]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "formats") return cmd_formats();
    if (cmd == "cast" && argc >= 4) return cmd_cast(argv[2], argv[3]);
    if (cmd == "list") return cmd_list();
    if (cmd == "eval" && argc >= 4) {
      return cmd_eval(argv[2], argv[3], argc >= 5 && std::strcmp(argv[4], "dynamic") == 0);
    }
    if (cmd == "tune" && argc >= 4) return cmd_tune(argv[2], argv[3]);
    if (cmd == "sweep" && argc >= 3) {
      return cmd_sweep(argv[2], argc >= 4 && std::strcmp(argv[3], "quick") == 0);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
