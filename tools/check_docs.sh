#!/usr/bin/env bash
# Docs freshness check, wired into ctest as `check_docs` (tests/CMakeLists.txt).
#
# Docs rot by referencing code that later moves or dies. This script greps
# the prose docs for four kinds of reference and fails when one no longer
# resolves against the tree:
#
#   1. repo paths        src/..., tests/..., bench/..., docs/..., tools/...,
#                        examples/... — must exist; brace lists
#                        (parallel.{h,cpp}) expand, globs (src/quant/*.h)
#                        must match at least one file
#   2. bench binaries    bench_foo — bench/bench_foo.cpp must exist AND the
#                        name must be registered in bench/CMakeLists.txt
#                        (a source file that never builds is as stale as a
#                        missing one)
#   3. FP8Q_* knobs      env vars / CMake options — must appear in the
#                        source tree or a CMakeLists.txt
#   4. backticked        `like_this` / `Class::member` / `CamelCaseType` —
#      identifiers       inline-code tokens that look like identifiers
#                        (underscore, ::, or CamelCase with an interior
#                        capital) must appear somewhere in the source tree
#   5. check_* targets   build/ctest gate names (check_static, check_tsan,
#                        ...) — must be defined in a CMakeLists.txt
#
# Heuristics, deliberately: the goal is catching renames and deletions,
# not proving the docs correct. Tokens that don't look like identifiers
# (no underscore/::, or containing ., <, =, spaces) are ignored.
set -u

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$ROOT" || exit 2

DOCS=(README.md EXPERIMENTS.md docs/*.md)
SRC_DIRS=(src tests bench tools examples)
# Generated artifacts and prose-only names that legitimately match the
# token patterns but are not tree paths / identifiers.
ALLOW="bench_output report.json bench_report"

fail=0
err() { echo "check_docs: $*" >&2; fail=1; }
allowed() { case " $ALLOW " in *" $1 "*) return 0 ;; *) return 1 ;; esac; }
in_tree() { grep -rqF --include='*' -- "$1" "${SRC_DIRS[@]}" CMakeLists.txt; }

# --- 1. repo paths ---------------------------------------------------------
# Lookbehind rejects matches inside longer paths (./build/bench/... must not
# count as bench/...). Trailing sentence punctuation is stripped.
while IFS= read -r p; do
  p="${p%.}" p="${p%,}" p="${p%)}"
  if [[ $p == *"{"* && $p == *"}"* ]]; then
    base="${p%%\{*}" rest="${p#*\{}"
    alts="${rest%%\}*}" tail="${rest#*\}}"
    IFS=',' read -ra parts <<<"$alts"
    expanded=()
    for a in "${parts[@]}"; do expanded+=("$base$a$tail"); done
  else
    expanded=("$p")
  fi
  for e in "${expanded[@]}"; do
    if [[ $e == *"*"* ]]; then
      compgen -G "$e" >/dev/null || err "stale glob '$e' (matches nothing)"
    elif [[ ! -e $e ]]; then
      err "stale path '$e' (does not exist)"
    fi
  done
done < <(grep -ohP '(?<![/\w.])(src|tests|bench|docs|tools|examples)/[A-Za-z0-9_./{},*-]+' \
         "${DOCS[@]}" | sort -u)

# --- 2. bench binaries -----------------------------------------------------
while IFS= read -r b; do
  allowed "$b" && continue
  [[ -f bench/$b.cpp ]] || err "unknown bench binary '$b' (no bench/$b.cpp)"
  grep -qE "\b$b\b" bench/CMakeLists.txt ||
    err "bench binary '$b' not registered in bench/CMakeLists.txt"
done < <(grep -ohE '\bbench_[a-z0-9_]+' "${DOCS[@]}" | sort -u)

# --- 2b. check_* gate targets ----------------------------------------------
# Docs that tell the operator to run `--target check_foo` (or a ctest test
# named check_foo) must name a target/test some CMakeLists actually defines.
while IFS= read -r t; do
  grep -rq --include=CMakeLists.txt -E "\b$t\b" "${SRC_DIRS[@]}" CMakeLists.txt ||
    err "gate target '$t' not defined in any CMakeLists.txt"
done < <(grep -ohE '\bcheck_[a-z0-9_]+' "${DOCS[@]}" | sort -u)

# --- 3. FP8Q_* knobs -------------------------------------------------------
while IFS= read -r v; do
  in_tree "$v" || err "knob '$v' not found in the source tree"
done < <(grep -ohE '\bFP8Q_[A-Z][A-Z_]+' "${DOCS[@]}" | sort -u)

# --- 4. backticked identifiers --------------------------------------------
# Inline code only; fenced blocks contain no backticks so they are skipped.
# CamelCase: a lowercase run followed later by another capital
# (PackedFp8Tensor, IsaTier) — single words like `Tensor` stay prose.
camelcase() { [[ $1 =~ ^[A-Z][A-Za-z0-9]*[a-z][A-Za-z0-9]*[A-Z] ]]; }
while IFS= read -r id; do
  name="${id%%(*}"       # drop call parens: foo() -> foo
  name="${name#fp8q::}"  # docs qualify, source defines inside the namespace
  [[ $name == *_* || $name == *::* ]] || camelcase "$name" || continue
  [[ $name == FP8Q_* ]] && continue  # covered by the knob check
  allowed "$name" && continue
  in_tree "$name" || err "identifier '$name' not found in the source tree"
done < <(grep -ohE '`[A-Za-z_][A-Za-z0-9_:()]*`' "${DOCS[@]}" | tr -d '`' | sort -u)

if [[ $fail -ne 0 ]]; then
  echo "check_docs: FAILED — update the docs or the allowlist in $0" >&2
  exit 1
fi
echo "check_docs: OK (${#DOCS[@]} doc files checked)"
