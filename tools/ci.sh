#!/usr/bin/env bash
# One-shot correctness gate (docs/STATIC_ANALYSIS.md). Runs, in order:
#
#   1. warnings-as-errors build (FP8Q_WERROR=ON) + full ctest suite
#   2. static-analysis gate: project linter, linter self-test, header
#      self-containment, docs freshness (`check_static`)
#   3. perf smoke: bench_kernels --smoke fails if the batched fake-quant
#      kernel is slower than the scalar loop (docs/PERFORMANCE.md)
#   4. AddressSanitizer build + full ctest suite (`check_asan`)
#   5. UndefinedBehaviorSanitizer build + full ctest suite (`check_ubsan`)
#   6. ThreadSanitizer build + concurrency suite (`check_tsan`)
#
# Any failure stops the script with a non-zero exit. Build trees default to
# build-ci-* next to the source tree; override the prefix with
# FP8Q_CI_BUILD_PREFIX. FP8Q_CI_SKIP_SANITIZERS=1 runs only steps 1-3
# (useful on machines where three extra build trees are too slow).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
PREFIX="${FP8Q_CI_BUILD_PREFIX:-$ROOT/build-ci}"
JOBS="${FP8Q_CI_JOBS:-$(nproc)}"

step() { echo; echo "=== ci: $* ==="; }

step "warnings-as-errors build + full suite"
cmake -B "$PREFIX" -S "$ROOT" -DFP8Q_WERROR=ON
cmake --build "$PREFIX" -j "$JOBS"
ctest --test-dir "$PREFIX" --output-on-failure

step "static-analysis gate (check_static)"
cmake --build "$PREFIX" --target check_static

step "perf smoke (bench_kernels --smoke)"
# Fails when the batched fake-quant kernel regresses below the scalar loop
# (docs/PERFORMANCE.md); writes the measured rates next to the build tree.
"$PREFIX/bench/bench_kernels" --smoke --out="$PREFIX/BENCH_kernels_smoke.json"

if [[ "${FP8Q_CI_SKIP_SANITIZERS:-0}" != "1" ]]; then
  step "AddressSanitizer build + full suite (check_asan)"
  cmake -B "$PREFIX-asan" -S "$ROOT" -DFP8Q_SANITIZE=address -DFP8Q_WERROR=ON
  cmake --build "$PREFIX-asan" -j "$JOBS"
  cmake --build "$PREFIX-asan" --target check_asan

  step "UndefinedBehaviorSanitizer build + full suite (check_ubsan)"
  cmake -B "$PREFIX-ubsan" -S "$ROOT" -DFP8Q_SANITIZE=undefined -DFP8Q_WERROR=ON
  cmake --build "$PREFIX-ubsan" -j "$JOBS"
  cmake --build "$PREFIX-ubsan" --target check_ubsan

  step "ThreadSanitizer build + concurrency suite (check_tsan)"
  cmake -B "$PREFIX-tsan" -S "$ROOT" -DFP8Q_SANITIZE=thread -DFP8Q_WERROR=ON
  cmake --build "$PREFIX-tsan" -j "$JOBS" --target check_tsan
fi

echo
echo "=== ci: all gates passed ==="
