#!/usr/bin/env bash
# One-shot correctness gate (docs/STATIC_ANALYSIS.md). Runs, in order:
#
#   1. warnings-as-errors build (FP8Q_WERROR=ON) + full ctest suite
#   2. static-analysis gate: project linter, linter self-test, header
#      self-containment, docs freshness (`check_static`); then the linter
#      once more with --sarif so every CI run leaves a SARIF artifact for
#      annotation tooling (fails on any finding)
#   3. perf + telemetry smoke: bench_kernels --smoke twice, with report /
#      trace export on; `fp8q_report check-bench` enforces the batched >=
#      scalar cast-speedup floor and the packed-GEMM >= 2x dequantize
#      floor (docs/KERNELS.md), `fp8q_report check-trace` validates the
#      Chrome trace JSON, and `fp8q_report diff` between the two runs
#      gates counter determinism and wall/memory regressions with explicit
#      thresholds (docs/PERFORMANCE.md, docs/OBSERVABILITY.md). A third
#      bench run pinned to FP8Q_ISA=scalar re-checks counter determinism
#      across dispatch tiers (the packed kernels' bit-exactness contract).
#   4. service smoke: boot fp8qd at 1 worker and again at 2 workers on a
#      private socket, drive both with fp8qd_bench (--append folds the two
#      runs into one BENCH_service.json scaling curve), gate the snapshot
#      on a sustained jobs/sec floor via `fp8q_report check-bench
#      --min-jobs-per-sec`, and diff a canonical job's report between the
#      two worker counts at --max-counter-drift-pct=0 -- the scoped
#      observation domains' bit-identity contract (docs/SERVICE.md,
#      docs/THREADING.md)
#   5. AddressSanitizer build + full ctest suite (`check_asan`)
#   6. UndefinedBehaviorSanitizer build + full ctest suite (`check_ubsan`)
#   7. ThreadSanitizer build + concurrency suite (`check_tsan`)
#   8. fuzz build (FP8Q_SANITIZE=fuzzer: ASan + the tests/fuzz/ harnesses)
#      + a 30-second bounded run of both network-facing parser fuzzers
#      over the checked-in corpora (`check_fuzz`)
#
# Any failure stops the script with a non-zero exit. Build trees default to
# build-ci-* next to the source tree; override the prefix with
# FP8Q_CI_BUILD_PREFIX. FP8Q_CI_SKIP_SANITIZERS=1 runs only steps 1-4
# (useful on machines where four extra build trees are too slow).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
PREFIX="${FP8Q_CI_BUILD_PREFIX:-$ROOT/build-ci}"
JOBS="${FP8Q_CI_JOBS:-$(nproc)}"

step() { echo; echo "=== ci: $* ==="; }

step "warnings-as-errors build + full suite"
cmake -B "$PREFIX" -S "$ROOT" -DFP8Q_WERROR=ON
cmake --build "$PREFIX" -j "$JOBS"
ctest --test-dir "$PREFIX" --output-on-failure

step "static-analysis gate (check_static)"
cmake --build "$PREFIX" --target check_static

# The same scan once more with SARIF on: CI annotation tooling ingests
# the artifact, and the run doubles as the "linter is clean" gate (exit 1
# on any finding stops the script). The artifact is written even when
# clean, so the upload step never 404s.
"$PREFIX/tools/fp8q_lint" --manifest="$ROOT/tools/lint/layers.manifest" \
  --sarif="$PREFIX/lint.sarif" "$ROOT/src" "$ROOT/tools" "$ROOT/bench"
echo "ci: SARIF artifact: $PREFIX/lint.sarif"

step "perf + telemetry smoke (bench_kernels --smoke through fp8q_report)"
# Instrumented run: report + histograms + trace export all on. The gates
# live in fp8q_report, each with an explicit threshold:
#   check-bench   batched cast kernel must not lose to the scalar loop;
#                 packed FP8 GEMM must beat dequantize-then-matmul >= 2x
#                 (docs/KERNELS.md -- the decode-in-register win)
#   check-trace   FP8Q_TRACE_JSON output must be valid, properly nested
#                 Chrome trace JSON
#   print         the run report must round-trip through the hardened
#                 JSON reader (io/json.h)
FP8Q_TRACE=1 FP8Q_TRACE_JSON="$PREFIX/trace_smoke.json" \
  FP8Q_REPORT="$PREFIX/report_smoke.json" \
  "$PREFIX/bench/bench_kernels" --smoke --out="$PREFIX/BENCH_kernels_smoke.json"
"$PREFIX/tools/fp8q_report" check-bench "$PREFIX/BENCH_kernels_smoke.json" \
  --min-cast-speedup=1.0 --min-packed-gemm-speedup=2.0
"$PREFIX/tools/fp8q_report" check-trace "$PREFIX/trace_smoke.json"
"$PREFIX/tools/fp8q_report" print "$PREFIX/report_smoke.json" > /dev/null

# Second instrumented run, diffed against the first: quantization-event
# counters must be bit-identical (drift 0% -- the determinism contract,
# docs/THREADING.md); wall time and memory may wobble but not explode.
FP8Q_REPORT="$PREFIX/report_smoke2.json" \
  "$PREFIX/bench/bench_kernels" --smoke --out="$PREFIX/BENCH_kernels_smoke2.json"
"$PREFIX/tools/fp8q_report" diff "$PREFIX/report_smoke.json" "$PREFIX/report_smoke2.json" \
  --max-counter-drift-pct=0 --max-wall-regress-pct=400 \
  --max-alloc-growth-pct=50 --max-rss-growth-pct=100

# Third run pinned to the scalar dispatch tier: the quantization-event
# counters must STILL be bit-identical to the native-tier runs above (the
# packed kernels' cross-tier bit-exactness contract, docs/KERNELS.md).
# No packed-gemm floor here -- the scalar tier measures the reference, not
# the optimized path.
FP8Q_ISA=scalar FP8Q_REPORT="$PREFIX/report_smoke_scalar.json" \
  "$PREFIX/bench/bench_kernels" --smoke --out="$PREFIX/BENCH_kernels_smoke_scalar.json"
"$PREFIX/tools/fp8q_report" diff "$PREFIX/report_smoke.json" \
  "$PREFIX/report_smoke_scalar.json" \
  --max-counter-drift-pct=0 --max-wall-regress-pct=400 \
  --max-alloc-growth-pct=50 --max-rss-growth-pct=100

step "service smoke (fp8qd at 1 and 2 workers + fp8qd_bench through fp8q_report)"
# Boot the resident daemon twice -- one executor worker, then two -- and
# drive both with the load generator. --append folds the runs into one
# BENCH_service.json scaling curve; the throughput floor stays
# deliberately low (the point is "the daemon serves concurrent jobs at
# all", not a perf race on shared CI hardware, docs/SERVICE.md). The real
# concurrency gate is the report diff: the SAME canonical job, run under
# 1 worker and under 2, must produce bit-identical quantization-event
# counters (--max-counter-drift-pct=0) -- the scoped observation domains'
# isolation contract (docs/THREADING.md).
SERVICE_SOCK="$(mktemp -u /tmp/fp8qd_ci_XXXXXX.sock)"
service_bench() {
  local workers=$1
  shift
  rm -f "$SERVICE_SOCK"
  "$PREFIX/tools/fp8qd" --socket="$SERVICE_SOCK" --queue-max=16 --workers="$workers" &
  local daemon_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "$SERVICE_SOCK" ]] && break
    sleep 0.1
  done
  [[ -S "$SERVICE_SOCK" ]] || { echo "ci: fp8qd never bound $SERVICE_SOCK" >&2; exit 1; }
  "$PREFIX/tools/fp8qd_bench" --socket="$SERVICE_SOCK" --connections=2 --jobs=8 \
    --quick --shutdown --out="$PREFIX/BENCH_service.json" \
    --report-out="$PREFIX/report_service_w$workers.json" "$@"
  wait "$daemon_pid"
}
service_bench 1
service_bench 2 --append
"$PREFIX/tools/fp8q_report" check-bench "$PREFIX/BENCH_service.json" \
  --min-jobs-per-sec=0.4
"$PREFIX/tools/fp8q_report" diff "$PREFIX/report_service_w1.json" \
  "$PREFIX/report_service_w2.json" --max-counter-drift-pct=0

if [[ "${FP8Q_CI_SKIP_SANITIZERS:-0}" != "1" ]]; then
  step "AddressSanitizer build + full suite (check_asan)"
  cmake -B "$PREFIX-asan" -S "$ROOT" -DFP8Q_SANITIZE=address -DFP8Q_WERROR=ON
  cmake --build "$PREFIX-asan" -j "$JOBS"
  cmake --build "$PREFIX-asan" --target check_asan

  step "UndefinedBehaviorSanitizer build + full suite (check_ubsan)"
  cmake -B "$PREFIX-ubsan" -S "$ROOT" -DFP8Q_SANITIZE=undefined -DFP8Q_WERROR=ON
  cmake --build "$PREFIX-ubsan" -j "$JOBS"
  cmake --build "$PREFIX-ubsan" --target check_ubsan

  step "ThreadSanitizer build + concurrency suite (check_tsan)"
  cmake -B "$PREFIX-tsan" -S "$ROOT" -DFP8Q_SANITIZE=thread -DFP8Q_WERROR=ON
  cmake --build "$PREFIX-tsan" -j "$JOBS" --target check_tsan

  step "fuzz the network-facing parsers (check_fuzz, 30s bounded)"
  cmake -B "$PREFIX-fuzz" -S "$ROOT" -DFP8Q_SANITIZE=fuzzer -DFP8Q_WERROR=ON
  cmake --build "$PREFIX-fuzz" -j "$JOBS" --target check_fuzz
fi

echo
echo "=== ci: all gates passed ==="
