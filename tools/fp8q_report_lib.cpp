#include "fp8q_report_lib.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "io/serialize.h"
#include "metrics/passrate.h"

namespace fp8q::report_cli {

namespace {

std::string human_bytes(std::uint64_t bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  const auto b = static_cast<double>(bytes);
  if (bytes >= (1ull << 30)) os << b / (1ull << 30) << " GiB";
  else if (bytes >= (1ull << 20)) os << b / (1ull << 20) << " MiB";
  else if (bytes >= (1ull << 10)) os << b / (1ull << 10) << " KiB";
  else os << bytes << " B";
  return os.str();
}

bool counters_any(const CounterSnapshot& snap) {
  for (int f = 0; f < kObsFormatCount; ++f) {
    for (int e = 0; e < kObsEventCount; ++e) {
      if (snap.counts[f][e] != 0) return true;
    }
  }
  return false;
}

void print_counters(std::ostream& os, const CounterSnapshot& snap, const char* indent) {
  for (int f = 0; f < kObsFormatCount; ++f) {
    bool any = false;
    for (int e = 0; e < kObsEventCount; ++e) any = any || snap.counts[f][e] != 0;
    if (!any) continue;
    os << indent << to_string(static_cast<ObsFormat>(f)) << ":";
    for (int e = 0; e < kObsEventCount; ++e) {
      os << "  " << to_string(static_cast<ObsEvent>(e)) << "=" << snap.counts[f][e];
    }
    os << "\n";
  }
}

/// Percent growth of candidate over base; +inf when base is 0 and the
/// candidate is not.
double growth_pct(double base, double candidate) {
  if (base > 0.0) return (candidate - base) / base * 100.0;
  return candidate > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
}

struct Gate {
  std::ostream& out;
  int breaches = 0;

  void check(bool breach, const std::string& line) {
    out << (breach ? "FAIL  " : "  ok  ") << line << "\n";
    if (breach) ++breaches;
  }
  void note(const std::string& line) { out << "note  " << line << "\n"; }
};

std::string pct(double v) {
  std::ostringstream os;
  if (std::isinf(v)) {
    os << (v > 0 ? "+inf%" : "-inf%");
  } else {
    os << std::showpos << std::fixed << std::setprecision(2) << v << "%";
  }
  return os.str();
}

}  // namespace

std::string format_report(const RunReport& report) {
  std::ostringstream os;
  os << "report: tool=" << (report.tool.empty() ? "(unset)" : report.tool)
     << " threads=" << report.num_threads << "\n";

  os << "memory: peak_rss=" << human_bytes(report.memory.peak_rss_bytes)
     << " tensor_alloc=" << human_bytes(report.memory.alloc_bytes) << " ("
     << report.memory.allocs << " allocations)\n";

  if (!report.stages.empty()) {
    os << "stages (" << report.stages.size() << "):\n";
    for (const auto& s : report.stages) {
      os << "  " << std::left << std::setw(40) << s.name << std::right << std::fixed
         << std::setprecision(3) << std::setw(12) << s.wall_ms << " ms";
      if (s.allocs != 0) os << "  alloc " << human_bytes(s.alloc_bytes);
      os << "\n";
    }
  }

  if (counters_any(report.counters)) {
    os << "counters:\n";
    print_counters(os, report.counters, "  ");
  }

  {
    bool any = false;
    for (int e = 0; e < kObsCacheEventCount; ++e) {
      any = any || report.weight_cache.counts[e] != 0;
    }
    if (any) {
      os << "weight_cache:";
      for (int e = 0; e < kObsCacheEventCount; ++e) {
        os << "  " << to_string(static_cast<ObsCacheEvent>(e)) << "="
           << report.weight_cache.counts[e];
      }
      os << "\n";
    }
  }

  if (!report.histograms.empty()) {
    os << "histograms (" << report.histograms.size() << "):\n";
    for (const auto& nh : report.histograms) {
      const auto& h = nh.hist;
      os << "  " << std::left << std::setw(30) << nh.name << std::right
         << " n=" << std::setw(10) << h.total << std::scientific << std::setprecision(3)
         << "  min=" << h.min_value << "  p50=" << h.quantile(0.50)
         << "  p95=" << h.quantile(0.95) << "  p99=" << h.quantile(0.99)
         << "  max=" << h.max_value << "\n";
      os << std::defaultfloat;
    }
  }

  if (!report.records.empty()) {
    os << "records (" << report.records.size()
       << "), pass rate: " << std::fixed << std::setprecision(1)
       << pass_rate(report.records) << "%\n";
    for (const auto& r : report.records) {
      os << "  " << (r.passes() ? "pass" : "FAIL") << "  " << std::left << std::setw(24)
         << r.workload << " " << std::setw(16) << r.config << std::right << std::fixed
         << std::setprecision(4) << " fp32=" << r.fp32_accuracy
         << " quant=" << r.quant_accuracy << " rel_loss=" << std::setprecision(5)
         << r.relative_loss() << "\n";
    }
  }

  if (report.spans_dropped != 0) {
    os << "spans_dropped: " << report.spans_dropped << "\n";
  }
  return os.str();
}

int diff_reports(const RunReport& base, const RunReport& candidate,
                 const DiffThresholds& t, std::ostream& out) {
  Gate gate{out};

  if (t.max_wall_regress_pct >= 0.0) {
    // Stages matched by (name, occurrence index): duplicate names pair up
    // in order. Unmatched stages are noted, never failed.
    std::vector<bool> used(candidate.stages.size(), false);
    for (const auto& bs : base.stages) {
      const StageReport* cs = nullptr;
      for (std::size_t i = 0; i < candidate.stages.size(); ++i) {
        if (!used[i] && candidate.stages[i].name == bs.name) {
          used[i] = true;
          cs = &candidate.stages[i];
          break;
        }
      }
      if (cs == nullptr) {
        gate.note("stage '" + bs.name + "' missing from candidate");
        continue;
      }
      const double g = growth_pct(bs.wall_ms, cs->wall_ms);
      std::ostringstream line;
      line << "stage '" << bs.name << "' wall " << std::fixed << std::setprecision(3)
           << bs.wall_ms << " -> " << cs->wall_ms << " ms (" << pct(g)
           << ", limit +" << t.max_wall_regress_pct << "%)";
      gate.check(g > t.max_wall_regress_pct, line.str());
    }
    for (std::size_t i = 0; i < candidate.stages.size(); ++i) {
      if (!used[i]) gate.note("stage '" + candidate.stages[i].name + "' new in candidate");
    }
  }

  if (t.max_counter_drift_pct >= 0.0) {
    for (int f = 0; f < kObsFormatCount; ++f) {
      for (int e = 0; e < kObsEventCount; ++e) {
        const std::uint64_t b = base.counters.counts[f][e];
        const std::uint64_t c = candidate.counters.counts[f][e];
        if (b == 0 && c == 0) continue;
        const double drift =
            b == 0 ? std::numeric_limits<double>::infinity()
                   : std::fabs(static_cast<double>(c) - static_cast<double>(b)) /
                         static_cast<double>(b) * 100.0;
        std::ostringstream line;
        line << "counter " << to_string(static_cast<ObsFormat>(f)) << "/"
             << to_string(static_cast<ObsEvent>(e)) << " " << b << " -> " << c << " ("
             << pct(drift) << " drift, limit " << t.max_counter_drift_pct << "%)";
        gate.check(drift > t.max_counter_drift_pct, line.str());
      }
    }
  }

  if (t.max_accuracy_drop >= 0.0 || t.max_pass_rate_drop >= 0.0) {
    if (t.max_accuracy_drop >= 0.0) {
      for (const auto& br : base.records) {
        const AccuracyRecord* cr = nullptr;
        for (const auto& r : candidate.records) {
          if (r.workload == br.workload && r.config == br.config) {
            cr = &r;
            break;
          }
        }
        if (cr == nullptr) {
          gate.note("record " + br.workload + "/" + br.config + " missing from candidate");
          continue;
        }
        const double drop = br.quant_accuracy - cr->quant_accuracy;
        std::ostringstream line;
        line << "record " << br.workload << "/" << br.config << " quant_accuracy "
             << std::fixed << std::setprecision(5) << br.quant_accuracy << " -> "
             << cr->quant_accuracy << " (drop " << drop << ", limit "
             << t.max_accuracy_drop << ")";
        gate.check(drop > t.max_accuracy_drop, line.str());
      }
    }
    if (t.max_pass_rate_drop >= 0.0 && (!base.records.empty() || !candidate.records.empty())) {
      const double drop = pass_rate(base.records) - pass_rate(candidate.records);
      std::ostringstream line;
      line << "pass rate " << std::fixed << std::setprecision(1) << pass_rate(base.records)
           << "% -> " << pass_rate(candidate.records) << "% (drop " << drop
           << " pts, limit " << t.max_pass_rate_drop << ")";
      gate.check(drop > t.max_pass_rate_drop, line.str());
    }
  }

  if (t.max_alloc_growth_pct >= 0.0) {
    const double g = growth_pct(static_cast<double>(base.memory.alloc_bytes),
                                static_cast<double>(candidate.memory.alloc_bytes));
    std::ostringstream line;
    line << "tensor alloc bytes " << base.memory.alloc_bytes << " -> "
         << candidate.memory.alloc_bytes << " (" << pct(g) << ", limit +"
         << t.max_alloc_growth_pct << "%)";
    gate.check(g > t.max_alloc_growth_pct, line.str());
  }

  if (t.max_rss_growth_pct >= 0.0) {
    const double g = growth_pct(static_cast<double>(base.memory.peak_rss_bytes),
                                static_cast<double>(candidate.memory.peak_rss_bytes));
    std::ostringstream line;
    line << "peak RSS " << base.memory.peak_rss_bytes << " -> "
         << candidate.memory.peak_rss_bytes << " (" << pct(g) << ", limit +"
         << t.max_rss_growth_pct << "%)";
    gate.check(g > t.max_rss_growth_pct, line.str());
  }

  return gate.breaches;
}

std::vector<std::string> validate_chrome_trace(std::string_view json_text) {
  std::vector<std::string> problems;
  json::Value root;
  try {
    root = json::parse(json_text);
  } catch (const std::exception& e) {
    problems.emplace_back(e.what());
    return problems;
  }
  if (!root.is_object()) {
    problems.emplace_back("top level is not an object");
    return problems;
  }
  const json::Value* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    problems.emplace_back("missing traceEvents array");
    return problems;
  }

  struct XEvent {
    double ts = 0.0;
    double dur = 0.0;
  };
  std::vector<std::pair<double, XEvent>> x_by_tid;  // (tid, event)
  std::unordered_set<long long> flow_starts;
  std::vector<long long> flow_finishes;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const json::Value& e = events->array[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (!e.is_object()) {
      problems.push_back(at + " is not an object");
      continue;
    }
    const std::string ph = e.string_or("ph");
    if (ph.empty()) {
      problems.push_back(at + " missing ph");
      continue;
    }
    for (const char* key : {"name", "pid", "tid", "ts"}) {
      if (e.find(key) == nullptr) problems.push_back(at + " missing " + key);
    }
    if (ph == "X") {
      const json::Value* dur = e.find("dur");
      if (dur == nullptr || dur->kind != json::Value::Kind::kNumber || dur->number < 0.0) {
        problems.push_back(at + " X event needs a non-negative dur");
        continue;
      }
      x_by_tid.emplace_back(e.number_or("tid"), XEvent{e.number_or("ts"), dur->number});
    } else if (ph == "s") {
      flow_starts.insert(static_cast<long long>(e.number_or("id", -1.0)));
    } else if (ph == "f") {
      flow_finishes.push_back(static_cast<long long>(e.number_or("id", -1.0)));
    }
  }

  for (const long long id : flow_finishes) {
    if (flow_starts.find(id) == flow_starts.end()) {
      problems.push_back("flow finish id " + std::to_string(id) + " has no matching start");
    }
  }

  // Per-thread nesting: sorted by (start asc, duration desc), every X event
  // must lie entirely inside the enclosing open interval (stack discipline;
  // partial overlap means a corrupt span tree).
  std::stable_sort(x_by_tid.begin(), x_by_tid.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    if (a.second.ts != b.second.ts) return a.second.ts < b.second.ts;
    return a.second.dur > b.second.dur;
  });
  constexpr double kSlopUs = 1e-6;
  std::vector<double> open_ends;
  for (std::size_t i = 0; i < x_by_tid.size(); ++i) {
    if (i > 0 && x_by_tid[i].first != x_by_tid[i - 1].first) open_ends.clear();
    const XEvent& ev = x_by_tid[i].second;
    while (!open_ends.empty() && open_ends.back() <= ev.ts + kSlopUs) open_ends.pop_back();
    if (!open_ends.empty() && ev.ts + ev.dur > open_ends.back() + kSlopUs) {
      problems.push_back("X events overlap without nesting on tid " +
                         std::to_string(static_cast<long long>(x_by_tid[i].first)));
    }
    open_ends.push_back(ev.ts + ev.dur);
  }
  return problems;
}

int check_bench(const json::Value& bench, double min_speedup, double min_packed_speedup,
                double min_jobs_per_sec, std::ostream& out) {
  Gate gate{out};
  const json::Value* casts = bench.is_object() ? bench.find("cast") : nullptr;
  const json::Value* service = bench.is_object() ? bench.find("service") : nullptr;
  const bool has_casts = casts != nullptr && casts->is_array() && !casts->array.empty();
  const bool has_service = service != nullptr && service->is_object();
  // A snapshot must carry at least one gateable section: kernel numbers
  // (bench_kernels) or service numbers (fp8qd_bench).
  if (!has_casts && !has_service) {
    gate.check(true, "bench json has no cast or service measurements");
    return gate.breaches;
  }
  if (has_casts) {
    for (const json::Value& c : casts->array) {
      if (!c.is_object()) continue;
      const double scalar = c.number_or("scalar_elems_per_sec");
      const double batched = c.number_or("batched_elems_per_sec");
      const double speedup = c.number_or("speedup", scalar > 0.0 ? batched / scalar : 0.0);
      std::ostringstream line;
      line << "cast " << c.string_or("format") << " batched/scalar speedup " << std::fixed
           << std::setprecision(2) << speedup << "x (min " << min_speedup << "x)";
      gate.check(speedup < min_speedup, line.str());
    }
  }
  if (min_packed_speedup > 0.0) {
    const json::Value* packed = bench.is_object() ? bench.find("packed_gemm") : nullptr;
    if (packed == nullptr || !packed->is_array() || packed->array.empty()) {
      gate.check(true, "bench json has no packed_gemm measurements");
      return gate.breaches;
    }
    for (const json::Value& p : packed->array) {
      if (!p.is_object()) continue;
      const double pg = p.number_or("packed_gflops");
      const double dg = p.number_or("dequant_gflops");
      const double speedup = p.number_or("speedup", dg > 0.0 ? pg / dg : 0.0);
      std::ostringstream line;
      line << "packed_gemm " << p.number_or("m") << "x" << p.number_or("k") << "x"
           << p.number_or("n") << " " << p.string_or("format")
           << " packed/dequant speedup " << std::fixed << std::setprecision(2) << speedup
           << "x (min " << min_packed_speedup << "x)";
      gate.check(speedup < min_packed_speedup, line.str());
    }
  }
  if (min_jobs_per_sec > 0.0) {
    if (!has_service) {
      gate.check(true, "bench json has no service measurements");
      return gate.breaches;
    }
    const double jobs_per_sec = service->number_or("jobs_per_sec");
    std::ostringstream line;
    line << "service sustained " << std::fixed << std::setprecision(2) << jobs_per_sec
         << " jobs/sec (min " << min_jobs_per_sec << ")";
    gate.check(jobs_per_sec < min_jobs_per_sec, line.str());
    if (const json::Value* latency = service->find("latency_ms");
        latency != nullptr && latency->is_object()) {
      std::ostringstream tail;
      tail << "service latency p50/p95/p99 " << std::fixed << std::setprecision(1)
           << latency->number_or("p50") << "/" << latency->number_or("p95") << "/"
           << latency->number_or("p99") << " ms over "
           << static_cast<std::uint64_t>(latency->number_or("count")) << " jobs";
      gate.note(tail.str());
    }
    // Worker-count scaling rows (fp8qd_bench --append across daemon
    // restarts): surface the whole curve so a CI log shows how jobs/sec
    // moved with FP8QD_WORKERS, not just the gated final run.
    if (const json::Value* runs = bench.find("runs");
        runs != nullptr && runs->is_array() && runs->array.size() > 1) {
      for (const json::Value& row : runs->array) {
        if (!row.is_object()) continue;
        std::ostringstream run_note;
        run_note << "service run: workers=" << static_cast<int>(row.number_or("workers", 1.0))
                 << " sustained " << std::fixed << std::setprecision(2)
                 << row.number_or("jobs_per_sec") << " jobs/sec ("
                 << static_cast<int>(row.number_or("completed")) << " jobs, "
                 << static_cast<int>(row.number_or("queue_full_retries")) << " retries)";
        gate.note(run_note.str());
      }
    }
  }
  return gate.breaches;
}

int diff_bench(const json::Value& base, const json::Value& candidate,
               double max_regress_pct, std::ostream& out) {
  Gate gate{out};
  auto gate_rate = [&](const std::string& what, double b, double c) {
    const double regress = b > 0.0 ? (b - c) / b * 100.0 : 0.0;
    std::ostringstream line;
    line << what << " " << std::scientific << std::setprecision(3) << b << " -> " << c
         << " (" << pct(-regress) << ", limit -" << max_regress_pct << "%)";
    gate.check(regress > max_regress_pct, line.str());
  };

  const json::Value* base_casts = base.is_object() ? base.find("cast") : nullptr;
  const json::Value* cand_casts = candidate.is_object() ? candidate.find("cast") : nullptr;
  if (base_casts != nullptr && base_casts->is_array() && cand_casts != nullptr &&
      cand_casts->is_array()) {
    for (const json::Value& bc : base_casts->array) {
      const std::string fmt = bc.string_or("format");
      for (const json::Value& cc : cand_casts->array) {
        if (cc.string_or("format") != fmt) continue;
        gate_rate("cast " + fmt + " batched elem/s", bc.number_or("batched_elems_per_sec"),
                  cc.number_or("batched_elems_per_sec"));
        break;
      }
    }
  }

  const json::Value* base_mm = base.is_object() ? base.find("matmul") : nullptr;
  const json::Value* cand_mm = candidate.is_object() ? candidate.find("matmul") : nullptr;
  if (base_mm != nullptr && base_mm->is_array() && cand_mm != nullptr &&
      cand_mm->is_array()) {
    for (const json::Value& bm : base_mm->array) {
      for (const json::Value& cm : cand_mm->array) {
        if (cm.number_or("m") != bm.number_or("m") ||
            cm.number_or("k") != bm.number_or("k") ||
            cm.number_or("n") != bm.number_or("n")) {
          continue;
        }
        std::ostringstream shape;
        shape << "matmul " << bm.number_or("m") << "x" << bm.number_or("k") << "x"
              << bm.number_or("n") << " GFLOP/s";
        gate_rate(shape.str(), bm.number_or("gflops"), cm.number_or("gflops"));
        break;
      }
    }
  }

  const json::Value* base_pg = base.is_object() ? base.find("packed_gemm") : nullptr;
  const json::Value* cand_pg = candidate.is_object() ? candidate.find("packed_gemm") : nullptr;
  if (base_pg != nullptr && base_pg->is_array() && cand_pg != nullptr &&
      cand_pg->is_array()) {
    for (const json::Value& bp : base_pg->array) {
      for (const json::Value& cp : cand_pg->array) {
        if (cp.number_or("m") != bp.number_or("m") ||
            cp.number_or("k") != bp.number_or("k") ||
            cp.number_or("n") != bp.number_or("n") ||
            cp.string_or("format") != bp.string_or("format")) {
          continue;
        }
        std::ostringstream shape;
        shape << "packed_gemm " << bp.number_or("m") << "x" << bp.number_or("k") << "x"
              << bp.number_or("n") << " " << bp.string_or("format") << " GFLOP/s";
        gate_rate(shape.str(), bp.number_or("packed_gflops"),
                  cp.number_or("packed_gflops"));
        break;
      }
    }
  }
  return gate.breaches;
}

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

RunReport load_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return report_from_json(in);
}

/// --key=value flag; returns true and parses the value when it matches.
bool flag_value(const std::string& arg, const char* name, double* out_value) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out_value = std::stod(arg.substr(prefix.size()));
  return true;
}

constexpr const char* kUsage =
    "usage: fp8q_report <command> ...\n"
    "  print <report.json>\n"
    "  diff <base.json> <candidate.json> [--max-wall-regress-pct=P]\n"
    "       [--max-alloc-growth-pct=P] [--max-rss-growth-pct=P]\n"
    "       [--max-accuracy-drop=D] [--max-pass-rate-drop=P]\n"
    "       [--max-counter-drift-pct=P]   (negative disables a check)\n"
    "  check-trace <trace.json>\n"
    "  check-bench <BENCH.json> [--min-cast-speedup=S]\n"
    "       [--min-packed-gemm-speedup=S]   (<= 0 skips the packed gate)\n"
    "       [--min-jobs-per-sec=J]          (<= 0 skips the service gate)\n"
    "  diff-bench <base_BENCH.json> <candidate_BENCH.json> [--max-regress-pct=P]\n";

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  try {
    if (args.empty()) {
      err << kUsage;
      return 2;
    }
    const std::string& cmd = args[0];

    if (cmd == "print" && args.size() == 2) {
      out << format_report(load_report(args[1]));
      return 0;
    }

    if (cmd == "diff" && args.size() >= 3) {
      DiffThresholds t;
      for (std::size_t i = 3; i < args.size(); ++i) {
        if (!flag_value(args[i], "--max-wall-regress-pct", &t.max_wall_regress_pct) &&
            !flag_value(args[i], "--max-alloc-growth-pct", &t.max_alloc_growth_pct) &&
            !flag_value(args[i], "--max-rss-growth-pct", &t.max_rss_growth_pct) &&
            !flag_value(args[i], "--max-accuracy-drop", &t.max_accuracy_drop) &&
            !flag_value(args[i], "--max-pass-rate-drop", &t.max_pass_rate_drop) &&
            !flag_value(args[i], "--max-counter-drift-pct", &t.max_counter_drift_pct)) {
          err << "fp8q_report: unknown flag " << args[i] << "\n" << kUsage;
          return 2;
        }
      }
      const int breaches = diff_reports(load_report(args[1]), load_report(args[2]), t, out);
      if (breaches > 0) {
        out << "fp8q_report: diff FAILED (" << breaches << " threshold breach"
            << (breaches == 1 ? "" : "es") << ")\n";
        return 1;
      }
      out << "fp8q_report: diff ok\n";
      return 0;
    }

    if (cmd == "check-trace" && args.size() == 2) {
      const auto problems = validate_chrome_trace(read_file(args[1]));
      for (const auto& p : problems) out << "FAIL  " << p << "\n";
      if (!problems.empty()) {
        out << "fp8q_report: trace INVALID (" << problems.size() << " problems)\n";
        return 1;
      }
      out << "fp8q_report: trace ok\n";
      return 0;
    }

    if (cmd == "check-bench" && args.size() >= 2) {
      double min_speedup = 1.0;
      double min_packed_speedup = 0.0;  // off unless requested: old snapshots stay valid
      double min_jobs_per_sec = 0.0;    // off unless requested: kernel snapshots stay valid
      for (std::size_t i = 2; i < args.size(); ++i) {
        if (!flag_value(args[i], "--min-cast-speedup", &min_speedup) &&
            !flag_value(args[i], "--min-packed-gemm-speedup", &min_packed_speedup) &&
            !flag_value(args[i], "--min-jobs-per-sec", &min_jobs_per_sec)) {
          err << "fp8q_report: unknown flag " << args[i] << "\n" << kUsage;
          return 2;
        }
      }
      const int breaches = check_bench(json::parse(read_file(args[1])), min_speedup,
                                       min_packed_speedup, min_jobs_per_sec, out);
      out << (breaches > 0 ? "fp8q_report: bench gate FAILED\n" : "fp8q_report: bench ok\n");
      return breaches > 0 ? 1 : 0;
    }

    if (cmd == "diff-bench" && args.size() >= 3) {
      double max_regress_pct = 20.0;
      for (std::size_t i = 3; i < args.size(); ++i) {
        if (!flag_value(args[i], "--max-regress-pct", &max_regress_pct)) {
          err << "fp8q_report: unknown flag " << args[i] << "\n" << kUsage;
          return 2;
        }
      }
      const int breaches = diff_bench(json::parse(read_file(args[1])),
                                      json::parse(read_file(args[2])), max_regress_pct, out);
      out << (breaches > 0 ? "fp8q_report: bench diff FAILED\n"
                           : "fp8q_report: bench diff ok\n");
      return breaches > 0 ? 1 : 0;
    }

    err << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "fp8q_report: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace fp8q::report_cli
