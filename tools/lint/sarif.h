// SARIF 2.1.0 emission for fp8q_lint findings (docs/STATIC_ANALYSIS.md).
//
// SARIF (Static Analysis Results Interchange Format) is what CI systems
// ingest for inline annotations: one `run` for the fp8q_lint driver, one
// `rule` per distinct rule id seen, one `result` per finding with its
// file/line region. The writer emits deterministic output (findings in
// the engine's sorted order, rules sorted by id) so SARIF artifacts diff
// cleanly between runs.
#pragma once

#include <ostream>
#include <vector>

#include "lint/engine.h"

namespace fp8q::lint {

/// Writes one SARIF 2.1.0 document covering `findings` to `out`.
void write_sarif(std::ostream& out, const std::vector<Finding>& findings);

}  // namespace fp8q::lint
