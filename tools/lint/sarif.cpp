#include "lint/sarif.h"

#include <cstdio>
#include <map>
#include <string>

namespace fp8q::lint {

namespace {

/// JSON string escaping (the minimal audited subset: control chars,
/// quote, backslash — finding messages are ASCII by construction).
void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void write_sarif(std::ostream& out, const std::vector<Finding>& findings) {
  // Rule table: id -> one representative message (the per-rule text is
  // identical across findings of the same rule).
  std::map<std::string, std::string> rules;
  for (const Finding& f : findings) rules.emplace(f.rule, f.message);

  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"fp8q_lint\",\n"
      << "          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [";
  bool first = true;
  for (const auto& [id, message] : rules) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "            {\"id\": ";
    write_escaped(out, id);
    out << ", \"shortDescription\": {\"text\": ";
    write_escaped(out, message);
    out << "}}";
  }
  out << (first ? "]\n" : "\n          ]\n");
  out << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "        {\"ruleId\": ";
    write_escaped(out, f.rule);
    out << ", \"level\": \"error\", \"message\": {\"text\": ";
    write_escaped(out, f.message);
    out << "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": ";
    write_escaped(out, f.file);
    out << "}, \"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1) << "}}}]}";
  }
  out << (first ? "]\n" : "\n      ]\n");
  out << "    }\n  ]\n}\n";
}

}  // namespace fp8q::lint
