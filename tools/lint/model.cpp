#include "lint/model.h"

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace fp8q::lint {

namespace {

bool is_unordered_container(const std::string& name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset";
}

/// Parses "#   include <x>" / "#include \"x\"" out of a directive token.
bool parse_include(const std::string& directive, Include* out) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < directive.size() && (directive[i] == ' ' || directive[i] == '\t')) ++i;
  };
  if (i >= directive.size() || directive[i] != '#') return false;
  ++i;
  skip_ws();
  if (directive.compare(i, 7, "include") != 0) return false;
  i += 7;
  skip_ws();
  if (i >= directive.size()) return false;
  const char open = directive[i];
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') return false;
  ++i;
  const std::size_t end = directive.find(close, i);
  if (end == std::string::npos) return false;
  out->path = directive.substr(i, end - i);
  out->angled = open == '<';
  return true;
}

bool parse_pragma_once(const std::string& directive) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < directive.size() && (directive[i] == ' ' || directive[i] == '\t')) ++i;
  };
  if (i >= directive.size() || directive[i] != '#') return false;
  ++i;
  skip_ws();
  if (directive.compare(i, 6, "pragma") != 0) return false;
  i += 6;
  skip_ws();
  return directive.compare(i, 4, "once") == 0;
}

/// The model builder walks the comment-free, directive-free code stream.
class ModelBuilder {
 public:
  explicit ModelBuilder(TuModel& model) : m_(model) {
    code_.reserve(m_.tokens.size());
    for (std::size_t i = 0; i < m_.tokens.size(); ++i) {
      const TokKind k = m_.tokens[i].kind;
      if (k == TokKind::kComment) continue;
      if (k == TokKind::kDirective) {
        Include inc;
        if (parse_include(m_.tokens[i].text, &inc)) {
          inc.line = m_.tokens[i].line;
          m_.includes.push_back(inc);
        } else if (parse_pragma_once(m_.tokens[i].text)) {
          m_.has_pragma_once = true;
        }
        continue;
      }
      code_.push_back(i);
    }
  }

  void run() {
    scan_structure();
    collect_unordered_idents();
    collect_range_fors();
  }

 private:
  const Token& tok(std::size_t ci) const { return m_.tokens[code_[ci]]; }
  std::size_t size() const { return code_.size(); }

  bool is_ident(std::size_t ci, const char* text) const {
    return ci < size() && tok(ci).kind == TokKind::kIdent && tok(ci).text == text;
  }
  bool is_punct(std::size_t ci, const char* text) const {
    return ci < size() && tok(ci).kind == TokKind::kPunct && tok(ci).text == text;
  }

  /// ci points at '<': returns the index one past the matching '>', or
  /// size() when unbalanced. Single-char puncts mean '>>' closes two.
  std::size_t skip_angles(std::size_t ci) const {
    int depth = 0;
    for (; ci < size(); ++ci) {
      if (is_punct(ci, "<")) ++depth;
      if (is_punct(ci, ">")) {
        --depth;
        if (depth == 0) return ci + 1;
      }
      if (is_punct(ci, ";")) break;  // runaway '<' (a comparison): bail
    }
    return size();
  }

  /// One pass over the code stream: classes with their mutex members and
  /// FP8Q_GUARDED_BY siblings, plus free/global-qualified call sites.
  void scan_structure() {
    struct OpenClass {
      std::size_t class_index;  ///< into m_.classes
      int depth_at_open;        ///< brace depth just before the '{'
    };
    std::vector<OpenClass> open;
    int depth = 0;

    for (std::size_t ci = 0; ci < size(); ++ci) {
      const Token& t = tok(ci);
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") ++depth;
        if (t.text == "}") {
          --depth;
          while (!open.empty() && depth <= open.back().depth_at_open) open.pop_back();
        }
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;

      if (!open.empty() && t.text == "FP8Q_GUARDED_BY") {
        m_.classes[open.back().class_index].has_guarded_member = true;
      }

      // Mutex member: `std :: (shared_)mutex NAME` at the innermost open
      // class's member depth. Requiring a following identifier keeps
      // `std::lock_guard<std::mutex>` (name followed by '>') out.
      if (!open.empty() && depth == open.back().depth_at_open + 1 &&
          (t.text == "mutex" || t.text == "shared_mutex") && ci >= 2 &&
          is_punct(ci - 1, "::") && is_ident(ci - 2, "std") &&
          ci + 1 < size() && tok(ci + 1).kind == TokKind::kIdent) {
        m_.classes[open.back().class_index].mutex_member_lines.push_back(t.line);
      }

      // Call sites: IDENT '(' that is not a member or namespace access.
      if (ci + 1 < size() && is_punct(ci + 1, "(")) {
        bool qualified = false;
        if (ci >= 1) {
          if (is_punct(ci - 1, ".") || is_punct(ci - 1, "->")) qualified = true;
          if (is_punct(ci - 1, "::") && ci >= 2 &&
              (tok(ci - 2).kind == TokKind::kIdent || is_punct(ci - 2, ">"))) {
            qualified = true;  // ns::call() — but bare ::call() still counts
          }
        }
        if (!qualified) m_.calls.push_back({t.text, t.line});
      }

      // Class/struct definitions (not `enum class`, not template params).
      if ((t.text == "class" || t.text == "struct") &&
          !(ci >= 1 && is_ident(ci - 1, "enum"))) {
        try_open_class(ci, depth, open);
      }
    }
  }

  /// ci points at the class-key. Walks the class-head; when it ends in a
  /// '{' (a definition), records the class and pushes it as open.
  template <class OpenVec>
  void try_open_class(std::size_t ci, int depth, OpenVec& open) {
    std::string name;
    int angle_depth = 0;
    for (std::size_t j = ci + 1; j < size(); ++j) {
      const Token& t = tok(j);
      if (t.kind == TokKind::kIdent) {
        if (angle_depth == 0 && name.empty()) name = t.text;
        continue;
      }
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "<") ++angle_depth;
      else if (t.text == ">") --angle_depth;
      else if (t.text == "{" && angle_depth <= 0) {
        m_.classes.push_back(ClassInfo{name, tok(ci).line, false, {}});
        open.push_back({m_.classes.size() - 1, depth});
        return;
      } else if (t.text == ";") {
        return;  // forward declaration
      } else if (angle_depth <= 0 && t.text != "::" && t.text != ":" &&
                 t.text != "," && t.text != "[" && t.text != "]") {
        return;  // `template <class T>`, `class Foo*` param, etc.
      }
      if (t.text == ":" ) {
        // Base clause: anything up to the '{' belongs to it.
        for (std::size_t k = j + 1; k < size(); ++k) {
          if (is_punct(k, "{")) {
            m_.classes.push_back(ClassInfo{name, tok(ci).line, false, {}});
            open.push_back({m_.classes.size() - 1, depth});
            return;
          }
          if (is_punct(k, ";")) return;
        }
        return;
      }
    }
  }

  void collect_unordered_idents() {
    std::set<std::string> types;  // unordered container spellings + aliases
    std::set<std::string> vars;

    // Pass 1: `using Alias = ...unordered_*...;` and
    // `typedef ... unordered_*<...> Alias;`.
    for (std::size_t ci = 0; ci + 3 < size(); ++ci) {
      if (is_ident(ci, "using") && tok(ci + 1).kind == TokKind::kIdent &&
          is_punct(ci + 2, "=")) {
        for (std::size_t j = ci + 3; j < size() && !is_punct(j, ";"); ++j) {
          if (tok(j).kind == TokKind::kIdent && is_unordered_container(tok(j).text)) {
            types.insert(tok(ci + 1).text);
            break;
          }
        }
      }
      if (is_ident(ci, "typedef")) {
        bool unordered = false;
        std::string last_ident;
        for (std::size_t j = ci + 1; j < size() && !is_punct(j, ";"); ++j) {
          if (tok(j).kind != TokKind::kIdent) continue;
          if (is_unordered_container(tok(j).text)) unordered = true;
          last_ident = tok(j).text;
        }
        if (unordered && !last_ident.empty()) types.insert(last_ident);
      }
    }

    // Pass 2: declarations. `unordered_map<...> name` (first identifier
    // after the closing '>', skipping cv/ref tokens) and `Alias name`.
    for (std::size_t ci = 0; ci < size(); ++ci) {
      if (tok(ci).kind != TokKind::kIdent) continue;
      const bool builtin = is_unordered_container(tok(ci).text);
      const bool alias = types.count(tok(ci).text) != 0;
      if (!builtin && !alias) continue;
      std::size_t j = ci + 1;
      if (is_punct(j, "<")) j = skip_angles(j);
      while (j < size() &&
             (is_punct(j, "*") || is_punct(j, "&") || is_ident(j, "const"))) {
        ++j;
      }
      if (j < size() && tok(j).kind == TokKind::kIdent && !is_ident(j, "const")) {
        vars.insert(tok(j).text);
      }
    }

    // Pass 3: `auto[&] name = <expr mentioning a tracked ident>;`.
    for (std::size_t ci = 0; ci + 2 < size(); ++ci) {
      if (!is_ident(ci, "auto")) continue;
      std::size_t j = ci + 1;
      while (j < size() && (is_punct(j, "&") || is_punct(j, "*") || is_ident(j, "const")))
        ++j;
      if (j + 1 >= size() || tok(j).kind != TokKind::kIdent || !is_punct(j + 1, "="))
        continue;
      for (std::size_t k = j + 2; k < size() && !is_punct(k, ";"); ++k) {
        if (tok(k).kind == TokKind::kIdent && vars.count(tok(k).text) != 0) {
          vars.insert(tok(j).text);
          break;
        }
      }
    }

    m_.unordered_idents.assign(vars.begin(), vars.end());
  }

  void collect_range_fors() {
    for (std::size_t ci = 0; ci + 1 < size(); ++ci) {
      if (!is_ident(ci, "for") || !is_punct(ci + 1, "(")) continue;
      int paren = 0;
      std::size_t colon = 0;
      bool classic = false;
      std::size_t close = size();
      for (std::size_t j = ci + 1; j < size(); ++j) {
        if (is_punct(j, "(")) ++paren;
        if (is_punct(j, ")")) {
          --paren;
          if (paren == 0) {
            close = j;
            break;
          }
        }
        if (paren == 1 && is_punct(j, ";")) classic = true;
        if (paren == 1 && colon == 0 && !classic && is_punct(j, ":")) colon = j;
      }
      if (classic || colon == 0 || close == size()) continue;
      RangeFor rf;
      rf.line = tok(ci).line;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (tok(j).kind == TokKind::kIdent) rf.range_idents.push_back(tok(j).text);
      }
      m_.range_fors.push_back(std::move(rf));
    }
  }

  TuModel& m_;
  std::vector<std::size_t> code_;  ///< indices of code tokens in m_.tokens
};

}  // namespace

TuModel build_model(const std::string& content) {
  TuModel model;
  model.tokens = tokenize(content);
  ModelBuilder(model).run();
  return model;
}

}  // namespace fp8q::lint
