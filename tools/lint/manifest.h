// The lint manifest: the declared architecture fp8q_lint enforces
// (tools/lint/layers.manifest, docs/STATIC_ANALYSIS.md).
//
// Three declarations live here, all consumed by the rule engine:
//
//   layer <name> <member>...   The include-layer DAG, lowest layer first.
//                              Members are path prefixes ("src/nn") or
//                              exact files ("src/obs/memory.h") — exact
//                              files win, so a directory can sit in one
//                              layer while a header it owns sits lower
//                              (mirroring the fp8q_obs_base link split).
//                              A quoted include from layer A to layer B
//                              with B above A is a back-edge finding;
//                              because layers form a total order, any
//                              include cycle necessarily contains a
//                              back-edge and is therefore a finding too.
//   sealed <layer> <root>...   Nothing may include this layer except the
//                              layer itself and files under the listed
//                              extra roots (e.g. "tools"). Tests are not
//                              scanned, so they are implicitly free.
//   allow-include <file> <layer|*> <reason...>
//                              A declared, justified exception (e.g. the
//                              core/fp8q.h umbrella header).
//   env <tu> <reason...>       TUs allowed to call getenv() — the
//                              declared config/dispatch surface.
//   unordered-ok <tu> <reason...>
//                              TUs where range-for over an unordered
//                              container is tolerated (order provably
//                              does not reach any output).
//
// '#' starts a comment; blank lines are ignored. Every exception carries
// its reason in the manifest itself, so the policy file reads as the
// architecture document it is.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace fp8q::lint {

struct Layer {
  std::string name;
  int rank = 0;                      ///< position in the file, 0 = lowest
  std::vector<std::string> members;  ///< path prefixes or exact files
};

struct AllowInclude {
  std::string file;          ///< exact path, e.g. "src/core/fp8q.h"
  std::string target_layer;  ///< layer name, or "*" for any
  std::string reason;
};

struct SealedLayer {
  std::string layer;
  std::vector<std::string> extra_roots;  ///< e.g. "tools"
};

struct Manifest {
  std::vector<Layer> layers;
  std::vector<SealedLayer> sealed;
  std::vector<AllowInclude> allow_includes;
  std::vector<std::string> env_tus;
  std::vector<std::string> unordered_ok_tus;

  /// Rank of the layer owning `path` ("src/nn/linear.cpp"), or -1 when no
  /// layer covers it. Exact-file members beat directory prefixes.
  [[nodiscard]] int layer_rank(const std::string& path) const;
  /// Name for a rank returned by layer_rank().
  [[nodiscard]] const std::string& layer_name(int rank) const;

  [[nodiscard]] bool is_env_tu(const std::string& path) const;
  [[nodiscard]] bool is_unordered_ok(const std::string& path) const;
  [[nodiscard]] const SealedLayer* sealed_entry(const std::string& layer) const;
  [[nodiscard]] bool include_allowed(const std::string& file,
                                     const std::string& target_layer) const;
};

/// Parses manifest text. Unknown directives or malformed lines append to
/// `*error` (when non-null) and are skipped — the linter still runs.
[[nodiscard]] Manifest parse_manifest(const std::string& text, std::string* error);

/// Loads and parses a manifest file; I/O failure reports via `*error`.
[[nodiscard]] Manifest load_manifest(const std::filesystem::path& path, std::string* error);

}  // namespace fp8q::lint
