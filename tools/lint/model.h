// Per-translation-unit model for the fp8q_lint analysis engine.
//
// Built from the token stream (lint/token.h), this is the syntactic view
// the rules match against instead of raw text: the include list, every
// class/struct body with its members (mutex members and FP8Q_GUARDED_BY
// siblings in particular), every range-for statement with the identifiers
// its range expression mentions, every free-function-style call site, and
// the set of identifiers declared with an unordered (hash-ordered)
// container type — including `using` aliases of such types and `auto`
// bindings initialized from tracked identifiers.
//
// The model is a deliberate approximation (no semantic analysis, no
// headers followed): good enough to express rules a line-regex cannot —
// "mutex member without a guarded sibling in the same class body",
// "range-for over a container with nondeterministic iteration order",
// "include crossing the layer DAG" — while staying a few hundred lines.
#pragma once

#include <string>
#include <vector>

#include "lint/token.h"

namespace fp8q::lint {

/// One #include directive.
struct Include {
  std::string path;    ///< the include target, without <> or ""
  bool angled = false; ///< <...> (system) vs "..." (project)
  int line = 0;
};

/// One class/struct body.
struct ClassInfo {
  std::string name;                 ///< "" for anonymous
  int line = 0;                     ///< line of the class-key
  bool has_guarded_member = false;  ///< FP8Q_GUARDED_BY appears in the body
  /// Lines of members whose declared type is std::mutex or
  /// std::shared_mutex (member depth only, not function locals).
  std::vector<int> mutex_member_lines;
};

/// One range-based for statement.
struct RangeFor {
  int line = 0;
  /// Every identifier appearing in the range expression (after the ':').
  std::vector<std::string> range_idents;
};

/// One call through a plain or globally-qualified name: `foo(` or
/// `::foo(`, but not `x.foo(`, `x->foo(` or `ns::foo(`. This mirrors how
/// the rules distinguish a raw syscall/libc call from a method of the
/// same name.
struct CallSite {
  std::string callee;
  int line = 0;
};

struct TuModel {
  std::vector<Token> tokens;  ///< the full stream, comments included
  std::vector<Include> includes;
  std::vector<ClassInfo> classes;
  std::vector<RangeFor> range_fors;
  std::vector<CallSite> calls;
  /// Identifiers declared (directly, via alias, or via `auto x = tracked`)
  /// with an unordered container type.
  std::vector<std::string> unordered_idents;
  bool has_pragma_once = false;

  [[nodiscard]] bool includes_header(const std::string& path) const {
    for (const Include& inc : includes) {
      if (inc.path == path) return true;
    }
    return false;
  }
};

/// Builds the model for one TU.
[[nodiscard]] TuModel build_model(const std::string& content);

}  // namespace fp8q::lint
