#include "lint/manifest.h"

#include <fstream>
#include <sstream>

namespace fp8q::lint {

namespace {

/// Splits one manifest line into whitespace-separated fields, dropping
/// everything from the first '#' on.
std::vector<std::string> fields_of(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (const char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) fields.push_back(std::move(cur));
  return fields;
}

std::string join_from(const std::vector<std::string>& fields, std::size_t start) {
  std::string out;
  for (std::size_t i = start; i < fields.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += fields[i];
  }
  return out;
}

/// True when `path` equals `member` or lives under it as a directory.
bool covers(const std::string& member, const std::string& path) {
  if (path == member) return true;
  return path.size() > member.size() + 1 && path.compare(0, member.size(), member) == 0 &&
         path[member.size()] == '/';
}

}  // namespace

int Manifest::layer_rank(const std::string& path) const {
  int best = -1;
  std::size_t best_len = 0;  // longest matching member wins (exact file beats dir)
  for (const Layer& layer : layers) {
    for (const std::string& member : layer.members) {
      if (covers(member, path) && member.size() >= best_len) {
        best = layer.rank;
        best_len = member.size();
      }
    }
  }
  return best;
}

const std::string& Manifest::layer_name(int rank) const {
  static const std::string unknown = "?";
  for (const Layer& layer : layers) {
    if (layer.rank == rank) return layer.name;
  }
  return unknown;
}

bool Manifest::is_env_tu(const std::string& path) const {
  for (const std::string& tu : env_tus) {
    if (tu == path) return true;
  }
  return false;
}

bool Manifest::is_unordered_ok(const std::string& path) const {
  for (const std::string& tu : unordered_ok_tus) {
    if (tu == path) return true;
  }
  return false;
}

const SealedLayer* Manifest::sealed_entry(const std::string& layer) const {
  for (const SealedLayer& s : sealed) {
    if (s.layer == layer) return &s;
  }
  return nullptr;
}

bool Manifest::include_allowed(const std::string& file,
                               const std::string& target_layer) const {
  for (const AllowInclude& a : allow_includes) {
    if (a.file == file && (a.target_layer == "*" || a.target_layer == target_layer)) {
      return true;
    }
  }
  return false;
}

Manifest parse_manifest(const std::string& text, std::string* error) {
  Manifest m;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto complain = [&](const std::string& what) {
    if (error != nullptr) {
      *error += "layers.manifest:" + std::to_string(lineno) + ": " + what + "\n";
    }
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> f = fields_of(line);
    if (f.empty()) continue;
    if (f[0] == "layer") {
      if (f.size() < 3) {
        complain("layer needs a name and at least one member");
        continue;
      }
      Layer layer;
      layer.name = f[1];
      layer.rank = static_cast<int>(m.layers.size());
      layer.members.assign(f.begin() + 2, f.end());
      m.layers.push_back(std::move(layer));
    } else if (f[0] == "sealed") {
      if (f.size() < 2) {
        complain("sealed needs a layer name");
        continue;
      }
      SealedLayer s;
      s.layer = f[1];
      s.extra_roots.assign(f.begin() + 2, f.end());
      m.sealed.push_back(std::move(s));
    } else if (f[0] == "allow-include") {
      if (f.size() < 4) {
        complain("allow-include needs <file> <layer|*> <reason>");
        continue;
      }
      m.allow_includes.push_back({f[1], f[2], join_from(f, 3)});
    } else if (f[0] == "env") {
      if (f.size() < 3) {
        complain("env needs <tu> <reason>");
        continue;
      }
      m.env_tus.push_back(f[1]);
    } else if (f[0] == "unordered-ok") {
      if (f.size() < 3) {
        complain("unordered-ok needs <tu> <reason>");
        continue;
      }
      m.unordered_ok_tus.push_back(f[1]);
    } else {
      complain("unknown directive '" + f[0] + "'");
    }
  }
  return m;
}

Manifest load_manifest(const std::filesystem::path& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error += "fp8q_lint: cannot read manifest " + path.string() + "\n";
    }
    return Manifest{};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_manifest(buf.str(), error);
}

}  // namespace fp8q::lint
