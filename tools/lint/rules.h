// Rule implementations for the fp8q_lint v2 engine (internal header).
//
// The engine (lint/engine.cpp) classifies the path, builds the TU model
// and applies suppressions; run_rules() is the pure middle: model in,
// findings out. Rule semantics are documented on lint/engine.h and in
// docs/STATIC_ANALYSIS.md.
#pragma once

#include <string>
#include <vector>

#include "lint/engine.h"
#include "lint/model.h"

namespace fp8q::lint {

/// A scanned file's path, classified by the engine.
struct FilePath {
  std::string reported;  ///< as it appears in findings (caller's spelling)
  std::string root;      ///< "src", "tools" or "bench" (rule profile)
  std::string sub;       ///< path below the root ("nn/linear.cpp")
  std::string canonical; ///< root-prefixed path for manifest lookups
};

/// Classifies a rel path: "src/..."/"tools/..."/"bench/..." keep their
/// root; anything else is treated as src-relative (v1 convention).
[[nodiscard]] FilePath classify_path(const std::string& rel_path);

/// Runs every armed rule for `path`'s profile over the model. `manifest`
/// may be null (manifest-armed rules are skipped). Suppressions are NOT
/// applied here — the engine filters afterwards against the raw lines.
void run_rules(const FilePath& path, const TuModel& model, const Manifest* manifest,
               std::vector<Finding>* out);

}  // namespace fp8q::lint
