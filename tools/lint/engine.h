// fp8q_lint v2 — token-aware analysis engine (docs/STATIC_ANALYSIS.md).
//
// Rebuild of the original line-regex linter as a small static-analysis
// library: each file is tokenized (lint/token.h) into a per-TU model
// (lint/model.h), and the rules (lint/rules.cpp) match includes, call
// sites, class members and range-for statements instead of raw lines.
// The original rule set (raw-thread, raw-socket-io, determinism,
// raw-clock, io-stream, parallel-grain, pragma-once) is ported onto the
// token stream, plus four rules only a syntactic engine can express:
//
//   include-layers  quoted includes must respect the layer DAG declared
//                   in tools/lint/layers.manifest (back-edges — and
//                   therefore cycles — are findings; src/service is
//                   sealed to tools/tests)
//   naked-mutex     a std::mutex / std::shared_mutex class member in
//                   src/ requires an FP8Q_GUARDED_BY sibling in the same
//                   class body (the clang thread-safety annotations only
//                   check what is annotated; this rule makes "annotated
//                   at all" itself enforced)
//   unordered-iteration
//                   range-for over an unordered container is a
//                   determinism leak (iteration order varies across
//                   libstdc++ versions and address layouts); sort keys
//                   first, or declare the TU unordered-ok with a reason
//   env-access      getenv()/setenv() confined to the config/dispatch
//                   TUs declared in the manifest — configuration enters
//                   the library through one auditable surface
//
// Scan roots: src/ (library rules), tools/ and bench/ (app profile: may
// print and use getenv if declared, but clocks/threads/unordered
// iteration are still policed). Suppressions are unchanged:
//   // fp8q-lint: allow(<rule>)       on the offending line
//   // fp8q-lint: allow-file(<rule>)  anywhere in the file
// Output: "file:line: [rule] message" plus optional SARIF (lint/sarif.h).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "lint/manifest.h"

namespace fp8q::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;     ///< path relative to the repo root (or scan root)
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule id (raw-thread, include-layers, ...)
  std::string message;  ///< human-readable explanation
};

/// "file:line: [rule] message" — the CLI's (and test failures') format.
[[nodiscard]] std::string format_finding(const Finding& f);

/// Lints one file's contents. `rel_path` decides which rules apply and
/// appears in findings: "src/..." / "tools/..." / "bench/..." select the
/// root profile; a bare path ("nn/linear.cpp") is treated as src-relative
/// (the v1 calling convention, kept for the fixture suite). Manifest-less
/// calls skip the manifest-armed rules (include-layers, env-access) and
/// the manifest's unordered-ok allowlist.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& rel_path,
                                             const std::string& content,
                                             const Manifest* manifest = nullptr);

/// v1 compatibility: lints every .h/.hpp/.cpp/.cc under `src_root` with
/// src-relative paths and no manifest. Findings are sorted by
/// (file, line, rule). On I/O failure appends to `*error` (when non-null)
/// and reports a finding for the file.
[[nodiscard]] std::vector<Finding> lint_tree(const std::filesystem::path& src_root,
                                             std::string* error = nullptr);

/// One scan root: `path` on disk, reported as `label/<rel>` (label also
/// selects the rule profile: "src" = library, "tools"/"bench" = app).
struct ScanRoot {
  std::filesystem::path path;
  std::string label;
};

struct ScanOptions {
  std::vector<ScanRoot> roots;
  const Manifest* manifest = nullptr;
};

/// The full v2 scan: every root, manifest-armed rules included. Findings
/// sorted by (file, line, rule).
[[nodiscard]] std::vector<Finding> lint_roots(const ScanOptions& options,
                                              std::string* error = nullptr);

}  // namespace fp8q::lint
