#include "lint/rules.h"

#include <algorithm>
#include <cstring>
#include <set>

namespace fp8q::lint {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_header(const std::string& sub) {
  return sub.size() > 2 && (sub.ends_with(".h") || sub.ends_with(".hpp"));
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// Tokens `std :: NAME` ending at index `i` (i points at NAME).
bool std_qualified(const std::vector<Token>& toks, const std::vector<std::size_t>& code,
                   std::size_t ci) {
  return ci >= 2 && toks[code[ci - 1]].kind == TokKind::kPunct &&
         toks[code[ci - 1]].text == "::" && toks[code[ci - 2]].kind == TokKind::kIdent &&
         toks[code[ci - 2]].text == "std";
}

/// The rule context: the classified path, the model, a comment-free token
/// index, and the sink.
struct Ctx {
  const FilePath& path;
  const TuModel& model;
  const Manifest* manifest;
  std::vector<Finding>* out;
  std::vector<std::size_t> code;  ///< indices of non-comment/directive tokens

  explicit Ctx(const FilePath& p, const TuModel& m, const Manifest* man,
               std::vector<Finding>* o)
      : path(p), model(m), manifest(man), out(o) {
    code.reserve(m.tokens.size());
    for (std::size_t i = 0; i < m.tokens.size(); ++i) {
      if (m.tokens[i].kind != TokKind::kComment &&
          m.tokens[i].kind != TokKind::kDirective) {
        code.push_back(i);
      }
    }
  }

  const Token& tok(std::size_t ci) const { return model.tokens[code[ci]]; }

  void emit(int line, const char* rule, std::string message) const {
    out->push_back({path.reported, line, rule, std::move(message)});
  }

  /// Emits one finding per angled include of a header in `headers`.
  void flag_includes(const std::vector<std::string>& headers, const char* rule,
                     const std::string& message) const {
    for (const Include& inc : model.includes) {
      if (inc.angled && contains(headers, inc.path)) emit(inc.line, rule, message);
    }
  }

  /// Emits one finding per `std::NAME` token sequence with NAME in `names`.
  void flag_std_idents(const std::vector<std::string>& names, const char* rule,
                       const std::string& message) const {
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      if (tok(ci).kind == TokKind::kIdent && contains(names, tok(ci).text) &&
          std_qualified(model.tokens, code, ci)) {
        emit(tok(ci).line, rule, message);
      }
    }
  }

  /// Emits one finding per bare identifier use (qualified or not) of a
  /// name in `names`.
  void flag_idents(const std::vector<std::string>& names, const char* rule,
                   const std::string& message) const {
    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      if (tok(ci).kind == TokKind::kIdent && contains(names, tok(ci).text)) {
        emit(tok(ci).line, rule, message);
      }
    }
  }

  /// Emits one finding per free/global-qualified call of a name in `names`.
  void flag_calls(const std::vector<std::string>& names, const char* rule,
                  const std::string& message) const {
    for (const CallSite& call : model.calls) {
      if (contains(names, call.callee)) emit(call.line, rule, message);
    }
  }
};

// --- ported v1 rules --------------------------------------------------------

void rule_raw_thread(const Ctx& c) {
  if (c.path.root == "src" && (starts_with(c.path.sub, "core/parallel.") ||
                               starts_with(c.path.sub, "service/server."))) {
    // core/parallel owns the pool; service/server owns the daemon's
    // single executor thread (docs/SERVICE.md).
    return;
  }
  const std::string msg =
      "raw threading primitive outside core/parallel.{h,cpp}; use "
      "parallel_for/parallel_run (docs/THREADING.md)";
  c.flag_includes({"thread", "future"}, "raw-thread", msg);
  c.flag_std_idents({"thread", "jthread", "async"}, "raw-thread", msg);
}

void rule_raw_socket_io(const Ctx& c) {
  if (c.path.root == "src" && starts_with(c.path.sub, "service/net_")) return;
  c.flag_calls({"socket", "accept", "accept4", "bind", "listen", "connect", "recv",
                "recvfrom", "recvmsg", "send", "sendto", "sendmsg", "read", "write",
                "setsockopt", "getsockopt", "getsockname", "poll", "select",
                "epoll_wait"},
               "raw-socket-io",
               "raw socket/poll syscall outside src/service/net_*; go through the "
               "framed Connection/Listener wrappers (service/net.h) so every byte "
               "on the wire passes one audited length-checked path "
               "(docs/SERVICE.md)");
}

void rule_determinism(const Ctx& c) {
  if (c.path.root == "src" &&
      (starts_with(c.path.sub, "obs/") || c.path.sub == "tensor/rng.cpp" ||
       c.path.sub == "tensor/rng.h")) {
    return;  // obs owns the process clocks; tensor/rng owns seeded randomness
  }
  const std::string msg =
      "nondeterminism source (clock/rand) outside src/obs/ and tensor/rng; "
      "library results must be pure functions of their inputs (use "
      "obs_now_ns() for timing, fp8q::Rng for randomness)";
  c.flag_includes({"chrono", "random"}, "determinism", msg);
  c.flag_idents({"random_device", "system_clock", "steady_clock",
                 "high_resolution_clock", "gettimeofday"},
                "determinism", msg);
  c.flag_calls({"srand", "rand", "time", "clock"}, "determinism", msg);
}

void rule_raw_clock(const Ctx& c) {
  if (c.path.root == "src" && starts_with(c.path.sub, "obs/")) return;
  const std::string msg =
      "raw clock/timing primitive outside src/obs/; take timestamps through "
      "obs_now_ns() (obs/trace.h) so latency histograms and trace exports "
      "share one clock domain (docs/OBSERVABILITY.md)";
  c.flag_includes({"chrono", "ctime", "sys/time.h"}, "raw-clock", msg);
  c.flag_std_idents({"chrono"}, "raw-clock", msg);
  c.flag_calls({"clock_gettime", "timespec_get"}, "raw-clock", msg);
}

void rule_io_stream(const Ctx& c) {
  if (c.path.root != "src") return;  // tools/bench CLIs print by design
  if (starts_with(c.path.sub, "obs/")) return;
  const std::string msg =
      "console output from library code; only the gated obs report/trace "
      "writers may emit (docs/OBSERVABILITY.md)";
  c.flag_includes({"iostream"}, "io-stream", msg);
  c.flag_std_idents({"cout", "cerr", "clog"}, "io-stream", msg);
  c.flag_calls({"printf", "fprintf", "puts", "fputs", "putchar"}, "io-stream", msg);
}

void rule_parallel_grain(const Ctx& c) {
  if (c.path.root == "src" && starts_with(c.path.sub, "core/parallel.")) return;
  for (std::size_t ci = 0; ci + 1 < c.code.size(); ++ci) {
    if (c.tok(ci).kind != TokKind::kIdent || c.tok(ci).text != "parallel_for" ||
        !(c.tok(ci + 1).kind == TokKind::kPunct && c.tok(ci + 1).text == "(")) {
      continue;
    }
    int depth = 0;
    for (std::size_t j = ci + 1; j < c.code.size(); ++j) {
      const Token& t = c.tok(j);
      if (t.kind == TokKind::kPunct && t.text == "(") ++depth;
      if (t.kind == TokKind::kPunct && t.text == ")") {
        if (--depth == 0) break;
      }
      if (t.kind == TokKind::kNumber && t.value >= 1000.0) {
        c.emit(t.line, "parallel-grain",
               "hard-coded parallelization grain; derive it from "
               "kParallelGrainBytes or kParallelGrainFlops (core/parallel.h) so "
               "chunk boundaries stay consistent tree-wide "
               "(docs/PERFORMANCE.md)");
      }
    }
  }
}

void rule_pragma_once(const Ctx& c) {
  if (!is_header(c.path.sub)) return;
  if (c.model.has_pragma_once) return;
  c.emit(1, "pragma-once",
         "header missing #pragma once (headers must be include-once and "
         "self-contained; see cmake/HeaderSelfContain.cmake)");
}

// --- v2 syntactic rules -----------------------------------------------------

void rule_naked_mutex(const Ctx& c) {
  if (c.path.root != "src") return;
  for (const ClassInfo& cls : c.model.classes) {
    if (cls.mutex_member_lines.empty() || cls.has_guarded_member) continue;
    for (const int line : cls.mutex_member_lines) {
      c.emit(line, "naked-mutex",
             "class '" + (cls.name.empty() ? std::string("<anonymous>") : cls.name) +
                 "' holds a std::mutex/std::shared_mutex member but no "
                 "FP8Q_GUARDED_BY sibling; annotate the guarded data "
                 "(core/thread_annotations.h) so clang -Wthread-safety can "
                 "check the locking (docs/STATIC_ANALYSIS.md)");
    }
  }
}

void rule_unordered_iteration(const Ctx& c) {
  if (c.manifest != nullptr && c.manifest->is_unordered_ok(c.path.canonical)) return;
  if (c.model.unordered_idents.empty()) return;
  const std::set<std::string> tracked(c.model.unordered_idents.begin(),
                                      c.model.unordered_idents.end());
  for (const RangeFor& rf : c.model.range_fors) {
    for (const std::string& ident : rf.range_idents) {
      if (tracked.count(ident) == 0) continue;
      c.emit(rf.line, "unordered-iteration",
             "range-for over unordered container '" + ident +
                 "': iteration order is hash/address dependent, a determinism "
                 "leak if it reaches any output — sort keys first, or declare "
                 "the TU unordered-ok in tools/lint/layers.manifest with a "
                 "reason (docs/STATIC_ANALYSIS.md)");
      break;  // one finding per loop, not per mention
    }
  }
}

void rule_env_access(const Ctx& c) {
  if (c.manifest == nullptr) return;  // manifest declares the allowed TUs
  if (c.manifest->is_env_tu(c.path.canonical)) return;
  const std::set<std::string> env_calls = {"getenv", "secure_getenv", "setenv",
                                           "putenv", "unsetenv"};
  for (std::size_t ci = 0; ci + 1 < c.code.size(); ++ci) {
    const Token& t = c.tok(ci);
    if (t.kind != TokKind::kIdent || env_calls.count(t.text) == 0) continue;
    if (!(c.tok(ci + 1).kind == TokKind::kPunct && c.tok(ci + 1).text == "(")) continue;
    if (ci >= 1 && c.tok(ci - 1).kind == TokKind::kPunct &&
        (c.tok(ci - 1).text == "." || c.tok(ci - 1).text == "->")) {
      continue;  // a method that happens to share the name
    }
    if (ci >= 2 && c.tok(ci - 1).kind == TokKind::kPunct && c.tok(ci - 1).text == "::" &&
        c.tok(ci - 2).kind == TokKind::kIdent && c.tok(ci - 2).text != "std") {
      continue;  // some_ns::getenv — not the libc entry point
    }
    c.emit(t.line, "env-access",
           "getenv/setenv outside the declared config/dispatch TUs; environment "
           "reads are configuration surface and must be listed (with the knob "
           "names) under [env] in tools/lint/layers.manifest "
           "(docs/STATIC_ANALYSIS.md)");
  }
}

void rule_include_layers(const Ctx& c) {
  if (c.manifest == nullptr || c.manifest->layers.empty()) return;
  const Manifest& m = *c.manifest;
  const bool in_src = c.path.root == "src";
  const int file_rank = in_src ? m.layer_rank(c.path.canonical) : -1;

  if (in_src && file_rank < 0) {
    c.emit(1, "include-layers",
           "file is not covered by any layer in tools/lint/layers.manifest; "
           "add its directory (or the file) to a layer so the include DAG "
           "stays total (docs/STATIC_ANALYSIS.md)");
    return;
  }

  for (const Include& inc : c.model.includes) {
    if (inc.angled) continue;  // system headers are not layered
    const std::string target = "src/" + inc.path;
    const int target_rank = m.layer_rank(target);
    if (target_rank < 0) continue;  // tool-local header, not a src include
    const std::string& target_layer = m.layer_name(target_rank);

    // Sealed layers: only the layer itself and the declared extra roots.
    if (const SealedLayer* sealed = m.sealed_entry(target_layer)) {
      const bool same_layer = in_src && file_rank == target_rank;
      const bool root_ok = contains(sealed->extra_roots, c.path.root);
      if (!same_layer && !root_ok && !m.include_allowed(c.path.canonical, target_layer)) {
        c.emit(inc.line, "include-layers",
               "\"" + inc.path + "\" is sealed (layer '" + target_layer +
                   "'): only the layer itself and " +
                   (sealed->extra_roots.empty() ? std::string("tests")
                                                : "tests/" + sealed->extra_roots[0]) +
                   " may include it (tools/lint/layers.manifest)");
        continue;
      }
    }

    // Back-edges: a src file may only include its own or lower layers.
    if (in_src && target_rank > file_rank &&
        !m.include_allowed(c.path.canonical, target_layer)) {
      c.emit(inc.line, "include-layers",
             "layer back-edge: '" + m.layer_name(file_rank) + "' (this file) may not "
                 "include \"" + inc.path + "\" from the higher layer '" + target_layer +
                 "'; invert the dependency, move the shared piece down, or add a "
                 "justified allow-include to tools/lint/layers.manifest");
    }
  }
}

}  // namespace

FilePath classify_path(const std::string& rel_path) {
  FilePath p;
  p.reported = rel_path;
  for (const char* root : {"src/", "tools/", "bench/"}) {
    if (starts_with(rel_path, root)) {
      p.root = std::string(root, std::strlen(root) - 1);
      p.sub = rel_path.substr(std::strlen(root));
      p.canonical = rel_path;
      return p;
    }
  }
  p.root = "src";  // v1 convention: bare paths are src-relative
  p.sub = rel_path;
  p.canonical = "src/" + rel_path;
  return p;
}

void run_rules(const FilePath& path, const TuModel& model, const Manifest* manifest,
               std::vector<Finding>* out) {
  const Ctx c(path, model, manifest, out);
  rule_raw_thread(c);
  rule_raw_socket_io(c);
  rule_determinism(c);
  rule_raw_clock(c);
  rule_io_stream(c);
  rule_parallel_grain(c);
  rule_pragma_once(c);
  rule_naked_mutex(c);
  rule_unordered_iteration(c);
  rule_env_access(c);
  rule_include_layers(c);
}

}  // namespace fp8q::lint
