// C++ tokenizer for the fp8q_lint analysis engine (docs/STATIC_ANALYSIS.md).
//
// Lexes one translation unit into a flat token stream the rule engine and
// the per-TU model (lint/model.h) walk instead of re-matching regexes per
// line. The lexer understands exactly as much C++ as the rules need:
//
//   - identifiers and keywords (one kind; rules match by spelling)
//   - numeric literals (decimal / hex / octal / binary, separators,
//     suffixes, floating forms), with the parsed magnitude attached
//   - string, char and raw-string literals (escape sequences consumed so
//     an escaped quote never ends a literal early; raw-string delimiters
//     matched exactly)
//   - // and /* */ comments, kept as tokens so suppression markers
//     ("fp8q-lint: allow(...)") stay visible to the engine
//   - preprocessor directives as one logical token each, with
//     backslash-newline continuations spliced
//   - punctuation, with '::' and '->' fused (rules need them to decide
//     whether a call is member/namespace-qualified) and everything else
//     single-char, so '>>' closes two template args
//
// Backslash-newline splices are handled inside every token form, matching
// phase-2 translation; `line` is always the token's *start* line, so
// findings keep stable line numbers across continuations. Malformed input
// (unterminated literal/comment) never fails: the token ends at EOF —
// a linter must degrade gracefully on code the compiler would reject.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fp8q::lint {

enum class TokKind : std::uint8_t {
  kIdent,      ///< identifier or keyword
  kNumber,     ///< numeric literal (value() holds the magnitude)
  kString,     ///< "..." or R"delim(...)delim" (text excludes quotes)
  kChar,       ///< '...'
  kComment,    ///< // or /* */ (text includes the comment markers)
  kDirective,  ///< one whole preprocessor directive, continuations spliced
  kPunct,      ///< operator/punctuation ("::" and "->" fused, else 1 char)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;        ///< spliced spelling (see per-kind notes above)
  int line = 0;            ///< 1-based line of the token's first character
  std::size_t begin = 0;   ///< byte offset of the first character
  std::size_t end = 0;     ///< one past the last byte (original content)
  double value = 0.0;      ///< kNumber only: parsed magnitude (0 if huge)
};

/// Lexes `content` into tokens. Never throws; unterminated constructs end
/// at EOF. Comments and directives are included in the stream.
[[nodiscard]] std::vector<Token> tokenize(const std::string& content);

/// Replaces comment and string/char literal spans with spaces (newlines
/// preserved, so line numbers and file shape survive). Built on the
/// tokenizer; exposed for tests and for callers that still want a text
/// view with prose removed.
[[nodiscard]] std::string strip_comments_and_strings(const std::string& content);

}  // namespace fp8q::lint
