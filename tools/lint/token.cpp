#include "lint/token.h"

#include <cctype>
#include <cstdlib>

namespace fp8q::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// The only identifiers that can prefix a raw-string literal. Requiring an
/// exact match keeps `FOUR"..."` an identifier followed by a plain string.
bool is_raw_prefix(const std::string& s) {
  return s == "R" || s == "u8R" || s == "LR" || s == "uR" || s == "UR";
}

/// True when content[i] starts a backslash-newline splice; sets `len`.
bool is_splice(const std::string& s, std::size_t i, std::size_t& len) {
  if (i + 1 < s.size() && s[i] == '\\' && s[i + 1] == '\n') {
    len = 2;
    return true;
  }
  if (i + 2 < s.size() && s[i] == '\\' && s[i + 1] == '\r' && s[i + 2] == '\n') {
    len = 3;
    return true;
  }
  return false;
}

/// Best-effort magnitude of a numeric literal (separators stripped,
/// suffixes ignored). 0.0 when unparseable — rules only compare against
/// thresholds, so "can't tell" must read as "small".
double number_value(const std::string& text) {
  std::string digits;
  digits.reserve(text.size());
  for (const char c : text) {
    if (c != '\'') digits += c;
  }
  const char* begin = digits.c_str();
  char* end = nullptr;
  if (digits.size() > 1 && digits[0] == '0' && (digits[1] == 'b' || digits[1] == 'B')) {
    const unsigned long long v = std::strtoull(begin + 2, &end, 2);
    return end != begin + 2 ? static_cast<double>(v) : 0.0;
  }
  const double v = std::strtod(begin, &end);
  return end != begin ? v : 0.0;
}

class Lexer {
 public:
  explicit Lexer(const std::string& content) : s_(content) {}

  std::vector<Token> run() {
    while (i_ < s_.size()) {
      const char c = s_[i_];
      std::size_t splice_len = 0;
      if (c == '\n') {
        ++line_;
        ++i_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++i_;
        continue;
      }
      if (is_splice(s_, i_, splice_len)) {
        ++line_;
        i_ += splice_len;
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && i_ + 1 < s_.size() && (s_[i_ + 1] == '/' || s_[i_ + 1] == '*')) {
        lex_comment();
        continue;
      }
      if (is_ident_start(c)) {
        lex_ident_or_raw_string();
        continue;
      }
      if (is_digit(c) || (c == '.' && i_ + 1 < s_.size() && is_digit(s_[i_ + 1]))) {
        lex_number();
        continue;
      }
      if (c == '"') {
        lex_quoted(TokKind::kString, '"', i_, line_);
        continue;
      }
      if (c == '\'') {
        lex_quoted(TokKind::kChar, '\'', i_, line_);
        continue;
      }
      lex_punct();
    }
    return std::move(tokens_);
  }

 private:
  void emit(TokKind kind, std::string text, int line, std::size_t begin, double value = 0.0) {
    tokens_.push_back(Token{kind, std::move(text), line, begin, i_, value});
  }

  /// Appends s_[i_] to `out` and advances, transparently consuming any
  /// splice that follows. Returns false at end of input.
  bool take(std::string& out) {
    if (i_ >= s_.size()) return false;
    out += s_[i_++];
    std::size_t len = 0;
    while (is_splice(s_, i_, len)) {
      ++line_;
      i_ += len;
    }
    return true;
  }

  void lex_directive() {
    const std::size_t begin = i_;
    const int line = line_;
    std::string text;
    while (i_ < s_.size() && s_[i_] != '\n') {
      std::size_t len = 0;
      if (is_splice(s_, i_, len)) {
        ++line_;
        i_ += len;
        text += ' ';
        continue;
      }
      text += s_[i_++];
    }
    emit(TokKind::kDirective, std::move(text), line, begin);
    at_line_start_ = false;
  }

  void lex_comment() {
    const std::size_t begin = i_;
    const int line = line_;
    std::string text;
    if (s_[i_ + 1] == '/') {
      while (i_ < s_.size() && s_[i_] != '\n') {
        std::size_t len = 0;
        if (is_splice(s_, i_, len)) {  // a spliced // comment continues
          ++line_;
          i_ += len;
          text += ' ';
          continue;
        }
        text += s_[i_++];
      }
    } else {
      // Block comment: ends at the *first* "*/" — C++ comments do not
      // nest, so "/* a /* b */" ends after "b ".
      text += s_[i_++];
      text += s_[i_++];
      while (i_ < s_.size()) {
        if (s_[i_] == '*' && i_ + 1 < s_.size() && s_[i_ + 1] == '/') {
          text += "*/";
          i_ += 2;
          break;
        }
        if (s_[i_] == '\n') ++line_;
        text += s_[i_++];
      }
    }
    emit(TokKind::kComment, std::move(text), line, begin);
  }

  void lex_ident_or_raw_string() {
    const std::size_t begin = i_;
    const int line = line_;
    std::string text;
    while (i_ < s_.size() && is_ident_char(s_[i_])) {
      if (!take(text)) break;
    }
    if (i_ < s_.size() && s_[i_] == '"' && is_raw_prefix(text)) {
      lex_raw_string(begin, line);
      return;
    }
    emit(TokKind::kIdent, std::move(text), line, begin);
  }

  /// R"delim( ... )delim" — i_ sits on the opening quote; `begin`/`line`
  /// cover the prefix identifier, which folds into the string token.
  void lex_raw_string(std::size_t begin, int line) {
    ++i_;  // opening quote
    std::string delim;
    while (i_ < s_.size() && s_[i_] != '(' && s_[i_] != '\n') delim += s_[i_++];
    if (i_ < s_.size() && s_[i_] == '(') ++i_;
    const std::string terminator = ")" + delim + "\"";
    std::string text;
    while (i_ < s_.size()) {
      if (s_.compare(i_, terminator.size(), terminator) == 0) {
        i_ += terminator.size();
        break;
      }
      if (s_[i_] == '\n') ++line_;
      text += s_[i_++];
    }
    emit(TokKind::kString, std::move(text), line, begin);
  }

  void lex_number() {
    const std::size_t begin = i_;
    const int line = line_;
    std::string text;
    // pp-number: digits, identifier chars, ' separators, '.' and
    // exponent signs. Consuming greedily matches how the preprocessor
    // lexes, so "1e+5f" and "0x1p-3" stay one token.
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        if (!take(text)) break;
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          if (!take(text)) break;
          continue;
        }
      }
      break;
    }
    const double value = number_value(text);
    emit(TokKind::kNumber, std::move(text), line, begin, value);
  }

  void lex_quoted(TokKind kind, char quote, std::size_t begin, int line) {
    ++i_;  // opening quote
    std::string text;
    while (i_ < s_.size()) {
      std::size_t len = 0;
      if (is_splice(s_, i_, len)) {
        ++line_;
        i_ += len;
        continue;
      }
      const char c = s_[i_];
      if (c == '\\') {  // escape: consume the backslash and the next char
        ++i_;
        if (i_ < s_.size()) {
          if (s_[i_] == '\n') ++line_;
          text += s_[i_];
          ++i_;
        }
        continue;
      }
      if (c == quote) {
        ++i_;
        break;
      }
      if (c == '\n') {
        // Unterminated literal: stop at the line break so the rest of
        // the file still tokenizes (linters must not cascade).
        break;
      }
      text += c;
      ++i_;
    }
    emit(kind, std::move(text), line, begin);
  }

  void lex_punct() {
    const std::size_t begin = i_;
    const int line = line_;
    const char c = s_[i_];
    // '::' and '->' are fused (rules use them to classify call sites);
    // everything else is one char, so '>>' closes two template args.
    if (c == ':' && i_ + 1 < s_.size() && s_[i_ + 1] == ':') {
      i_ += 2;
      emit(TokKind::kPunct, "::", line, begin);
      return;
    }
    if (c == '-' && i_ + 1 < s_.size() && s_[i_ + 1] == '>') {
      i_ += 2;
      emit(TokKind::kPunct, "->", line, begin);
      return;
    }
    ++i_;
    emit(TokKind::kPunct, std::string(1, c), line, begin);
  }

  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> tokenize(const std::string& content) { return Lexer(content).run(); }

std::string strip_comments_and_strings(const std::string& content) {
  std::string out = content;
  for (const Token& t : tokenize(content)) {
    if (t.kind != TokKind::kComment && t.kind != TokKind::kString &&
        t.kind != TokKind::kChar) {
      continue;
    }
    for (std::size_t i = t.begin; i < t.end && i < out.size(); ++i) {
      if (out[i] != '\n') out[i] = ' ';
    }
  }
  return out;
}

}  // namespace fp8q::lint
