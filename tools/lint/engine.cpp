#include "lint/engine.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "lint/model.h"
#include "lint/rules.h"

namespace fp8q::lint {

namespace {

/// Splits into lines (newline excluded). A trailing newline does not add
/// an empty final line.
std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos <= s.size()) {
    const auto nl = s.find('\n', pos);
    if (nl == std::string::npos) {
      if (pos < s.size()) lines.push_back(s.substr(pos));
      break;
    }
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

bool line_allows(const std::string& raw_line, const std::string& rule_id) {
  const std::string marker = "fp8q-lint: allow(" + rule_id + ")";
  return raw_line.find(marker) != std::string::npos;
}

bool file_allows(const std::string& raw_content, const std::string& rule_id) {
  const std::string marker = "fp8q-lint: allow-file(" + rule_id + ")";
  return raw_content.find(marker) != std::string::npos;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
}

bool lintable_extension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// Collects the lintable files under `root`, sorted for determinism.
std::vector<std::filesystem::path> collect_files(const std::filesystem::path& root,
                                                 std::string* error) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end; it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file() && lintable_extension(it->path())) {
      files.push_back(it->path());
    }
  }
  if (ec && error != nullptr) {
    *error += "fp8q_lint: error walking " + root.string() + ": " + ec.message() + "\n";
  }
  std::sort(files.begin(), files.end());
  return files;
}

void lint_one_path(const std::filesystem::path& path, const std::string& rel,
                   const Manifest* manifest, std::vector<Finding>* findings,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    findings->push_back({rel, 0, "io-error", "cannot read file"});
    if (error != nullptr) *error += "fp8q_lint: cannot read " + path.string() + "\n";
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto file_findings = lint_file(rel, buf.str(), manifest);
  findings->insert(findings->end(), file_findings.begin(), file_findings.end());
}

}  // namespace

std::string format_finding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

std::vector<Finding> lint_file(const std::string& rel_path, const std::string& content,
                               const Manifest* manifest) {
  const FilePath path = classify_path(rel_path);
  const TuModel model = build_model(content);

  std::vector<Finding> raw;
  run_rules(path, model, manifest, &raw);

  // Suppressions are matched against the raw source lines, so a marker
  // works no matter which token the rule anchored the finding to.
  const std::vector<std::string> raw_lines = split_lines(content);
  std::vector<Finding> findings;
  findings.reserve(raw.size());
  for (Finding& f : raw) {
    if (file_allows(content, f.rule)) continue;
    const std::size_t idx = f.line > 0 ? static_cast<std::size_t>(f.line) - 1 : 0;
    if (idx < raw_lines.size() && line_allows(raw_lines[idx], f.rule)) continue;
    findings.push_back(std::move(f));
  }
  sort_findings(findings);
  return findings;
}

std::vector<Finding> lint_tree(const std::filesystem::path& src_root, std::string* error) {
  std::vector<Finding> findings;
  for (const auto& path : collect_files(src_root, error)) {
    const std::string rel = path.lexically_relative(src_root).generic_string();
    lint_one_path(path, rel, /*manifest=*/nullptr, &findings, error);
  }
  sort_findings(findings);
  return findings;
}

std::vector<Finding> lint_roots(const ScanOptions& options, std::string* error) {
  std::vector<Finding> findings;
  for (const ScanRoot& root : options.roots) {
    for (const auto& path : collect_files(root.path, error)) {
      const std::string rel =
          root.label + "/" + path.lexically_relative(root.path).generic_string();
      lint_one_path(path, rel, options.manifest, &findings, error);
    }
  }
  sort_findings(findings);
  return findings;
}

}  // namespace fp8q::lint
