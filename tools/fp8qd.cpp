// fp8qd: the resident quantization daemon (docs/SERVICE.md).
//
//   fp8qd [--socket=PATH] [--tcp-port=N] [--queue-max=N] [--workers=N]
//
// Listens on a Unix-domain socket (and optionally loopback TCP), accepts
// quantize/eval/tune jobs over the length-prefixed line-JSON protocol,
// and serves back per-job report-v4 JSON. --workers executor threads run
// jobs concurrently, each under its own observation domain and a
// num_threads()/workers parallel arena (docs/SERVICE.md, "Scheduler").
// Flags override the FP8QD_* environment knobs (FP8QD_SOCKET,
// FP8QD_TCP_PORT, FP8QD_QUEUE_MAX, FP8QD_WORKERS). SIGINT/SIGTERM
// trigger a draining shutdown: queued jobs finish, new submits are
// rejected with code "draining", then the process exits.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.h"

namespace {

fp8q::service::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

int usage() {
  std::fprintf(stderr,
               "usage: fp8qd [--socket=PATH] [--tcp-port=N] [--queue-max=N] "
               "[--workers=N]\n"
               "  --socket=PATH    Unix-domain socket path (FP8QD_SOCKET; default "
               "fp8qd.sock)\n"
               "  --tcp-port=N     also listen on 127.0.0.1:N; 0 = ephemeral "
               "(FP8QD_TCP_PORT)\n"
               "  --queue-max=N    admission-queue capacity (FP8QD_QUEUE_MAX; default "
               "64)\n"
               "  --workers=N      concurrent executor workers, 1-64 (FP8QD_WORKERS; "
               "default 1)\n");
  return 2;
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  fp8q::service::ServerOptions options = fp8q::service::options_from_env();
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (parse_flag(argv[i], "--socket", &value)) {
      options.unix_path = value;
    } else if (parse_flag(argv[i], "--tcp-port", &value)) {
      options.tcp_port = std::atoi(value);
    } else if (parse_flag(argv[i], "--queue-max", &value)) {
      const int n = std::atoi(value);
      if (n <= 0) {
        std::fprintf(stderr, "fp8qd: --queue-max must be positive\n");
        return 2;
      }
      options.queue_max = static_cast<std::size_t>(n);
    } else if (parse_flag(argv[i], "--workers", &value)) {
      const int n = std::atoi(value);
      if (n <= 0) {
        std::fprintf(stderr, "fp8qd: --workers must be positive\n");
        return 2;
      }
      options.workers = n;
    } else {
      return usage();
    }
  }

  try {
    fp8q::service::Server server(options);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::fprintf(stderr, "[fp8qd] listening on %s", server.unix_path().c_str());
    if (server.tcp_port() >= 0) {
      std::fprintf(stderr, " and 127.0.0.1:%d", server.tcp_port());
    }
    std::fprintf(stderr, " (queue capacity %zu, %d worker%s)\n",
                 static_cast<std::size_t>(options.queue_max), options.workers,
                 options.workers == 1 ? "" : "s");

    server.run();

    const fp8q::service::ServiceStats stats = server.stats_snapshot();
    std::fprintf(stderr,
                 "[fp8qd] shut down after %.1f s: %llu submitted, %llu completed, "
                 "%llu failed, %llu cancelled, %llu expired, %llu rejected\n",
                 static_cast<double>(stats.uptime_ns) / 1e9,
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.failed),
                 static_cast<unsigned long long>(stats.cancelled),
                 static_cast<unsigned long long>(stats.expired),
                 static_cast<unsigned long long>(stats.rejected));
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fp8qd: %s\n", e.what());
    return 1;
  }
  return 0;
}
