// CLI wrapper over tools/fp8q_report_lib.h: print one run report, diff
// two against regression thresholds (the tools/ci.sh perf gate), validate
// a Chrome trace export, or gate a BENCH_*.json kernel snapshot.
#include <iostream>
#include <string>
#include <vector>

#include "fp8q_report_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return fp8q::report_cli::run(args, std::cout, std::cerr);
}
