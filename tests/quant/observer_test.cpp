#include "quant/observer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.h"

namespace fp8q {
namespace {

TEST(Observer, TracksExactExtremes) {
  Observer obs;
  obs.observe(Tensor({3}, {1.0f, -5.0f, 2.0f}));
  EXPECT_FLOAT_EQ(obs.absmax(), 5.0f);
  EXPECT_FLOAT_EQ(obs.min(), -5.0f);
  EXPECT_FLOAT_EQ(obs.max(), 2.0f);
  EXPECT_EQ(obs.count(), 3);
  obs.observe(Tensor({1}, {10.0f}));
  EXPECT_FLOAT_EQ(obs.absmax(), 10.0f);
  EXPECT_FLOAT_EQ(obs.max(), 10.0f);
}

TEST(Observer, EmptyState) {
  Observer obs;
  EXPECT_TRUE(obs.empty());
  EXPECT_FLOAT_EQ(obs.absmax(), 0.0f);
}

TEST(Observer, IgnoresNan) {
  Observer obs;
  obs.observe(Tensor({2}, {std::nanf(""), 3.0f}));
  EXPECT_EQ(obs.count(), 1);
  EXPECT_FLOAT_EQ(obs.absmax(), 3.0f);
}

TEST(Observer, ResetClears) {
  Observer obs;
  obs.observe(Tensor({2}, {1.0f, 2.0f}));
  obs.reset();
  EXPECT_TRUE(obs.empty());
  EXPECT_FLOAT_EQ(obs.absmax(), 0.0f);
  EXPECT_TRUE(obs.sample().empty());
}

TEST(Observer, ReservoirBoundedAndRepresentative) {
  Observer obs(1000);
  Rng rng(3);
  // Stream far more data than the capacity.
  for (int b = 0; b < 50; ++b) obs.observe(randn(rng, {1000}, 5.0f, 1.0f));
  EXPECT_EQ(obs.count(), 50000);
  EXPECT_EQ(obs.sample().size(), 1000u);
  // Sample mean should be near the stream mean.
  double mean = 0.0;
  for (float v : obs.sample()) mean += v;
  mean /= static_cast<double>(obs.sample().size());
  EXPECT_NEAR(mean, 5.0, 0.15);
}

TEST(Observer, SmallStreamKeptVerbatim) {
  Observer obs(100);
  obs.observe(Tensor({3}, {1.0f, 2.0f, 3.0f}));
  ASSERT_EQ(obs.sample().size(), 3u);
  EXPECT_FLOAT_EQ(obs.sample()[0], 1.0f);
  EXPECT_FLOAT_EQ(obs.sample()[2], 3.0f);
}

TEST(Observer, AbsmaxExactEvenWhenSampled) {
  // The absmax must never be lost to reservoir sampling: plant a single
  // outlier in a long stream.
  Observer obs(64);
  Rng rng(5);
  Tensor t = randn(rng, {10000});
  t[5000] = 99.0f;
  obs.observe(t);
  EXPECT_FLOAT_EQ(obs.absmax(), 99.0f);
}

}  // namespace
}  // namespace fp8q
