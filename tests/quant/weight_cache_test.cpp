// Cross-trial quantized-weight cache: hits must be bit-identical to the
// uncached computation, mutated tensors must never serve stale entries,
// and counter totals must be independent of the hit/miss pattern.
#include "quant/weight_cache.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "obs/counters.h"
#include "quant/quantizer.h"
#include "tensor/rng.h"

namespace fp8q {
namespace {

Tensor make_weight(std::uint64_t seed, Shape shape = {8, 32}) {
  Rng rng(seed);
  return randn(rng, std::move(shape));
}

/// The uncached reference result for the cached recipe.
Tensor uncached_quantize(const Tensor& w, DType dtype) {
  Tensor copy = w;
  apply_quant_inplace(copy, make_weight_params(copy, dtype, Granularity::kPerChannel, 0));
  return copy;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.numel(), b.numel());
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(fa[i]), std::bit_cast<std::uint32_t>(fb[i]))
        << i;
  }
}

class WeightCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    weight_cache_clear();
    set_weight_cache_capacity_bytes(64 << 20);
    start_ = weight_cache_stats();
  }
  void TearDown() override {
    weight_cache_clear();
    set_weight_cache_capacity_bytes(-1);  // restore the env/default capacity
    set_counters_enabled(false);
  }

  /// Stats delta since SetUp (the cache totals are process-wide).
  [[nodiscard]] WeightCacheStats delta() const {
    const auto now = weight_cache_stats();
    WeightCacheStats d;
    d.hits = now.hits - start_.hits;
    d.misses = now.misses - start_.misses;
    d.evictions = now.evictions - start_.evictions;
    d.bypasses = now.bypasses - start_.bypasses;
    d.bytes = now.bytes;
    d.entries = now.entries;
    return d;
  }

 private:
  WeightCacheStats start_;
};

TEST_F(WeightCacheTest, MissThenHitIsBitIdenticalToUncached) {
  const Tensor base = make_weight(1);
  const Tensor expected = uncached_quantize(base, DType::kE4M3);

  Tensor w1 = base;
  quantize_weight_cached(w1, DType::kE4M3);
  expect_bitwise_equal(w1, expected);
  EXPECT_EQ(delta().misses, 1u);
  EXPECT_EQ(delta().hits, 0u);

  // A distinct tensor with identical contents hits by content hash.
  Tensor w2 = make_weight(1);
  quantize_weight_cached(w2, DType::kE4M3);
  expect_bitwise_equal(w2, expected);
  EXPECT_EQ(delta().misses, 1u);
  EXPECT_EQ(delta().hits, 1u);
}

TEST_F(WeightCacheTest, DtypeIsPartOfTheKey) {
  Tensor w1 = make_weight(2);
  Tensor w2 = make_weight(2);
  quantize_weight_cached(w1, DType::kE4M3);
  quantize_weight_cached(w2, DType::kE3M4);
  EXPECT_EQ(delta().misses, 2u);
  EXPECT_EQ(delta().hits, 0u);
  expect_bitwise_equal(w2, uncached_quantize(make_weight(2), DType::kE3M4));
}

TEST_F(WeightCacheTest, EveryMutatorInvalidates) {
  struct NamedMutator {
    const char* name;
    void (*apply)(Tensor&);
  };
  const NamedMutator mutators[] = {
      {"fill", [](Tensor& t) { t.fill(0.25f); }},
      {"scale", [](Tensor& t) { t.scale(3.0f); }},
      {"add_scalar", [](Tensor& t) { t.add_scalar(0.125f); }},
      {"flat", [](Tensor& t) { t.flat()[0] = 17.0f; }},
      {"data", [](Tensor& t) { t.data()[1] = -9.0f; }},
      {"index", [](Tensor& t) { t[2] = 4.5f; }},
      {"at", [](Tensor& t) { t.at({1, 1}) = -2.0f; }},
  };
  for (const auto& m : mutators) {
    Tensor w = make_weight(3);
    quantize_weight_cached(w, DType::kE4M3);  // warm the cache on the base

    Tensor v = make_weight(3);
    (void)v.identity();  // stamp, then mutate: version must move
    const auto before = v.identity();
    m.apply(v);
    const auto after = v.identity();
    EXPECT_EQ(before.id, after.id) << m.name;
    EXPECT_NE(before.version, after.version) << m.name;

    const Tensor expected = uncached_quantize(v, DType::kE4M3);
    quantize_weight_cached(v, DType::kE4M3);
    expect_bitwise_equal(v, expected);  // never the stale base payload
  }
}

TEST_F(WeightCacheTest, CopyAdoptsIdentity) {
  Tensor w = make_weight(4);
  const auto ident = w.identity();
  Tensor copy = w;
  EXPECT_EQ(copy.identity().id, ident.id);
  EXPECT_EQ(copy.identity().version, ident.version);

  // Copy-assignment adopts too (the restore-from-backup path).
  Tensor other = make_weight(5);
  other = w;
  EXPECT_EQ(other.identity().id, ident.id);
  EXPECT_EQ(other.identity().version, ident.version);
}

TEST_F(WeightCacheTest, CapacityEvictsLeastRecentlyUsed) {
  // Entries are charged their ACTUAL bytes, and standard-recipe entries
  // store packed codes: an {8, 32} entry costs 8*32 code bytes + 8*4
  // scale bytes + 64 overhead = 352 bytes (vs 1088 for FP32). Cap at two.
  set_weight_cache_capacity_bytes(2 * (8 * 32 + 8 * 4 + 64));
  Tensor a = make_weight(10);
  Tensor b = make_weight(11);
  Tensor c = make_weight(12);
  quantize_weight_cached(a, DType::kE4M3);
  quantize_weight_cached(b, DType::kE4M3);
  quantize_weight_cached(c, DType::kE4M3);  // evicts the oldest (a)
  EXPECT_EQ(delta().evictions, 1u);
  EXPECT_EQ(delta().entries, 2u);

  Tensor b2 = make_weight(11);
  quantize_weight_cached(b2, DType::kE4M3);
  EXPECT_EQ(delta().hits, 1u);  // b survived

  Tensor a2 = make_weight(10);
  quantize_weight_cached(a2, DType::kE4M3);  // a was evicted: a miss again
  EXPECT_EQ(delta().misses, 4u);
  expect_bitwise_equal(a2, uncached_quantize(make_weight(10), DType::kE4M3));
}

TEST_F(WeightCacheTest, UncacheableRequestsBypass) {
  Tensor w = make_weight(6);
  quantize_weight_cached(w, DType::kE4M3, Granularity::kPerTensor);
  Tensor v = make_weight(6);
  quantize_weight_cached(v, DType::kINT8);
  EXPECT_EQ(delta().bypasses, 2u);
  EXPECT_EQ(delta().misses, 0u);
  // Bypass still computes the right answer.
  Tensor ref = make_weight(6);
  apply_quant_inplace(ref, make_weight_params(ref, DType::kINT8, Granularity::kPerChannel, 0));
  expect_bitwise_equal(v, ref);

  // FP32 is a no-op, not even a bypass event.
  Tensor f = make_weight(6);
  quantize_weight_cached(f, DType::kFP32);
  EXPECT_EQ(delta().bypasses, 2u);
  expect_bitwise_equal(f, make_weight(6));
}

TEST_F(WeightCacheTest, ZeroCapacityDisablesCaching) {
  set_weight_cache_capacity_bytes(0);
  Tensor w = make_weight(7);
  quantize_weight_cached(w, DType::kE4M3);
  EXPECT_EQ(delta().misses, 0u);
  EXPECT_EQ(delta().entries, 0u);
  EXPECT_EQ(delta().bypasses, 1u);
  expect_bitwise_equal(w, uncached_quantize(make_weight(7), DType::kE4M3));
}

TEST_F(WeightCacheTest, HitsReplayTheMissTally) {
  set_counters_enabled(true);
  counters_reset();
  Tensor w1 = make_weight(8);
  quantize_weight_cached(w1, DType::kE4M3);  // miss: counts the real events
  const CounterSnapshot miss_counts = counters_snapshot();
  EXPECT_GT(miss_counts.get(ObsFormat::kE4M3, ObsEvent::kQuantized), 0u);

  counters_reset();
  Tensor w2 = make_weight(8);
  quantize_weight_cached(w2, DType::kE4M3);  // hit: replays the same tally
  const CounterSnapshot hit_counts = counters_snapshot();
  EXPECT_TRUE(miss_counts == hit_counts);
}

TEST_F(WeightCacheTest, EventsMirrorIntoObsCacheCounters) {
  const auto before = cache_counters_snapshot();
  Tensor w1 = make_weight(9);
  quantize_weight_cached(w1, DType::kE4M3);
  Tensor w2 = make_weight(9);
  quantize_weight_cached(w2, DType::kE4M3);
  const auto after = cache_counters_snapshot();
  EXPECT_EQ(after.get(ObsCacheEvent::kMiss) - before.get(ObsCacheEvent::kMiss), 1u);
  EXPECT_EQ(after.get(ObsCacheEvent::kHit) - before.get(ObsCacheEvent::kHit), 1u);
}

TEST_F(WeightCacheTest, PackedEntriesAreRoughlyQuarterOfFp32Bytes) {
  Tensor w = make_weight(20, {16, 64});
  quantize_weight_cached(w, DType::kE4M3);
  ASSERT_EQ(delta().entries, 1u);
  // 16*64 code bytes + 16*4 scale bytes + 64 overhead, far below the
  // 16*64*4 + 64 an FP32 payload would charge.
  EXPECT_EQ(delta().bytes, 16u * 64u + 16u * 4u + 64u);
}

TEST_F(WeightCacheTest, PackedHandleDecodesBitIdenticalOnMissAndHit) {
  Tensor w1 = make_weight(21);
  const auto p1 = quantize_weight_cached_packed(w1, DType::kE4M3);
  ASSERT_NE(p1, nullptr);
  expect_bitwise_equal(w1, uncached_quantize(make_weight(21), DType::kE4M3));
  expect_bitwise_equal(p1->unpack(), w1);  // codes decode to the payload

  Tensor w2 = make_weight(21);
  const auto p2 = quantize_weight_cached_packed(w2, DType::kE4M3);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(delta().hits, 1u);
  EXPECT_EQ(p2.get(), p1.get());  // the hit shares the cached codes
  expect_bitwise_equal(w2, w1);
}

TEST_F(WeightCacheTest, ZeroCapacityStillReturnsPackedCodes) {
  // FP8Q_WEIGHT_CACHE_MB=0 turns off retention, not packed compute: the
  // graph still gets codes to attach, recomputed per call.
  set_weight_cache_capacity_bytes(0);
  Tensor w = make_weight(22);
  const auto packed = quantize_weight_cached_packed(w, DType::kE3M4);
  ASSERT_NE(packed, nullptr);
  EXPECT_EQ(delta().entries, 0u);
  EXPECT_EQ(delta().bypasses, 1u);
  expect_bitwise_equal(w, uncached_quantize(make_weight(22), DType::kE3M4));
  expect_bitwise_equal(packed->unpack(), w);
}

TEST_F(WeightCacheTest, NonFinitePayloadFallsBackToFp32Entry) {
  // Fake quantization passes NaN payloads through, but a code can only
  // decode to the canonical quiet NaN -- a negative NaN with payload bits
  // cannot round-trip, so the insert-time verification must reject the
  // packed form: the entry stores FP32 and the packed handle is null. The
  // cached payload still matches uncached exactly.
  Tensor w = make_weight(23);
  w.flat()[5] = std::bit_cast<float>(0xFFC00001u);
  Tensor copy = w;
  const auto packed = quantize_weight_cached_packed(copy, DType::kE4M3);
  EXPECT_EQ(packed, nullptr);
  expect_bitwise_equal(copy, uncached_quantize(w, DType::kE4M3));

  // And the FP32 fallback entry serves hits bit-identically too.
  Tensor again = w;
  EXPECT_EQ(quantize_weight_cached_packed(again, DType::kE4M3), nullptr);
  EXPECT_EQ(delta().hits, 1u);
  expect_bitwise_equal(again, copy);
}

TEST_F(WeightCacheTest, NonStandardRecipeYieldsNoPackedHandle) {
  Tensor w = make_weight(24);
  EXPECT_EQ(quantize_weight_cached_packed(w, DType::kINT8), nullptr);
  Tensor v = make_weight(24);
  EXPECT_EQ(quantize_weight_cached_packed(v, DType::kE4M3, Granularity::kPerTensor),
            nullptr);
  EXPECT_EQ(delta().bypasses, 2u);
}

TEST_F(WeightCacheTest, PackedHitsCountTheCacheDecodePath) {
  kernel_counters_reset();
  Tensor w1 = make_weight(25);
  quantize_weight_cached(w1, DType::kE4M3);  // miss: no decode
  EXPECT_EQ(kernel_counters_snapshot().get(ObsKernelPath::kCacheDecode), 0u);
  Tensor w2 = make_weight(25);
  quantize_weight_cached(w2, DType::kE4M3);  // hit: served by decoding codes
  EXPECT_EQ(kernel_counters_snapshot().get(ObsKernelPath::kCacheDecode), 1u);
}

TEST_F(WeightCacheTest, IdentityMemoSkipsRehashAcrossRestore) {
  // The tuner's pattern: quantize, restore from a backup copy, quantize
  // again. The restored tensor carries the backup's identity, so the
  // second call memo-hits and must still produce the identical payload.
  Tensor w = make_weight(13);
  (void)w.identity();
  const Tensor backup = w;

  quantize_weight_cached(w, DType::kE4M3);
  const Tensor first = w;

  w = backup;  // restore: adopts the backup's (id, version)
  quantize_weight_cached(w, DType::kE4M3);
  expect_bitwise_equal(w, first);
  EXPECT_EQ(delta().hits, 1u);
  EXPECT_EQ(delta().misses, 1u);
}

}  // namespace
}  // namespace fp8q
