// Range-calibration algorithms (Appendix A.1): absmax, percentile, MSE
// sweep, KL divergence, and the s = float_max / max_T scale rule.
#include "quant/calibrate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.h"

namespace fp8q {
namespace {

Observer observe_fig1_tensor(std::uint64_t seed = 11) {
  // Paper Figure 1 protocol: N(0, 0.5) with 1% outliers in [-6, 6].
  Rng rng(seed);
  Tensor t = randn(rng, {60000}, 0.0f, std::sqrt(0.5f));
  inject_outliers(t, rng, 0.01, -6.0f, 6.0f);
  Observer obs(60000);
  obs.observe(t);
  return obs;
}

TEST(Calibrate, AbsMaxReturnsExactMaximum) {
  Observer obs;
  obs.observe(Tensor({3}, {1.0f, -4.0f, 2.0f}));
  EXPECT_FLOAT_EQ(calibrate_clip(obs, CalibMethod::kAbsMax, DType::kE4M3), 4.0f);
}

TEST(Calibrate, EmptyObserverFallsBackToOne) {
  Observer obs;
  EXPECT_FLOAT_EQ(calibrate_clip(obs, CalibMethod::kAbsMax, DType::kE4M3), 1.0f);
  EXPECT_FLOAT_EQ(calibrate_clip(obs, CalibMethod::kKlDivergence, DType::kINT8), 1.0f);
}

TEST(Calibrate, PercentileClipsOutliers) {
  Observer obs = observe_fig1_tensor();
  const float p999 = calibrate_clip(obs, CalibMethod::kPercentile, DType::kINT8, 0.99);
  // 99th percentile of the magnitude sits well under the 6.0 outliers.
  EXPECT_LT(p999, 3.0f);
  EXPECT_GT(p999, 1.0f);
  // Higher percentile -> larger clip.
  const float p9999 = calibrate_clip(obs, CalibMethod::kPercentile, DType::kINT8, 0.9999);
  EXPECT_GT(p9999, p999);
}

TEST(Calibrate, MseClipsExtremeOutliersForInt8) {
  // A tiny fraction of extreme outliers (LLM-style, ~50x the bulk) makes
  // clipping clearly beneficial for INT8: the sweep must choose a clip
  // below absmax. (With mild 8-sigma outliers clipping is a wash -- the
  // squared error of truncated outliers cancels the finer grid.)
  Rng rng(17);
  Tensor t = randn(rng, {50000});
  t[100] = 50.0f;
  t[200] = -50.0f;
  Observer obs(60000);
  obs.observe(t);
  const float clip = calibrate_clip(obs, CalibMethod::kMseSweep, DType::kINT8);
  EXPECT_LT(clip, obs.absmax() * 0.95f);
}

TEST(Calibrate, MseKeepsFullRangeForE3M4) {
  // FP8's non-uniform grid already spends precision near zero, so clipping
  // helps far less (Appendix A.1): the chosen clip stays near absmax.
  Observer obs = observe_fig1_tensor();
  const float clip = calibrate_clip(obs, CalibMethod::kMseSweep, DType::kE3M4);
  EXPECT_GT(clip, obs.absmax() * 0.5f);
}

TEST(Calibrate, ClipMseMonotoneAtExtremes) {
  Observer obs = observe_fig1_tensor();
  const auto vals = obs.sample();
  // Clipping at 1% of the range is catastrophically worse than absmax.
  const double tiny = clip_quantization_mse(vals, obs.absmax() * 0.01f, DType::kE4M3);
  const double full = clip_quantization_mse(vals, obs.absmax(), DType::kE4M3);
  EXPECT_GT(tiny, full * 10.0);
  EXPECT_EQ(clip_quantization_mse({}, 1.0f, DType::kE4M3), 0.0);
  EXPECT_EQ(clip_quantization_mse(vals, 0.0f, DType::kE4M3), 0.0);
}

TEST(Calibrate, KlDemoFromAppendixFigure9) {
  // Appendix Figure 9: a tensor with outliers around 6; KL-style clipping
  // at 2.0 yields a *larger* FP8 MSE than keeping the full range -- the
  // enhanced small-value representation does not pay for the truncated
  // outliers.
  Observer obs = observe_fig1_tensor();
  const auto vals = obs.sample();
  const double mse_clip2 = clip_quantization_mse(vals, 2.0f, DType::kE4M3);
  const double mse_full = clip_quantization_mse(vals, obs.absmax(), DType::kE4M3);
  EXPECT_GT(mse_clip2, mse_full);
}

TEST(Calibrate, KlDivergenceBasicProperties) {
  Observer obs = observe_fig1_tensor();
  const auto vals = obs.sample();
  const double kl = clip_kl_divergence(vals, obs.absmax(), DType::kINT8, 512);
  EXPECT_GE(kl, 0.0);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_THROW((void)clip_kl_divergence(vals, 1.0f, DType::kINT8, 1), std::invalid_argument);
  EXPECT_EQ(clip_kl_divergence({}, 1.0f, DType::kINT8), 0.0);
}

TEST(Calibrate, KlCoarserGridHasHigherDivergence) {
  // Fewer mantissa bits -> coarser grid -> quantized histogram is a worse
  // match of the original.
  Observer obs = observe_fig1_tensor();
  const auto vals = obs.sample();
  const float clip = obs.absmax();
  const double kl_e5m2 = clip_kl_divergence(vals, clip, DType::kE5M2, 512);
  const double kl_e3m4 = clip_kl_divergence(vals, clip, DType::kE3M4, 512);
  EXPECT_GT(kl_e5m2, kl_e3m4);
}

TEST(Calibrate, ScaleRuleMatchesPaperSection31) {
  // s = float_max / max_T.
  EXPECT_FLOAT_EQ(fp8_activation_scale(DType::kE4M3, 10.0f), 44.8f);
  EXPECT_FLOAT_EQ(fp8_activation_scale(DType::kE3M4, 30.0f), 1.0f);
  // E5M2 is direct: always 1.
  EXPECT_FLOAT_EQ(fp8_activation_scale(DType::kE5M2, 1000.0f), 1.0f);
  // Degenerate ranges fall back to 1.
  EXPECT_FLOAT_EQ(fp8_activation_scale(DType::kE4M3, 0.0f), 1.0f);
  EXPECT_FLOAT_EQ(fp8_activation_scale(DType::kE4M3, -3.0f), 1.0f);
  EXPECT_THROW((void)fp8_activation_scale(DType::kINT8, 1.0f), std::invalid_argument);
}

}  // namespace
}  // namespace fp8q
