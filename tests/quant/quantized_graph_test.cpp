// End-to-end tests of the QuantizedGraph PTQ workflow (paper Figure 2).
#include "quant/quantized_graph.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "core/cpu_dispatch.h"
#include "metrics/metrics.h"
#include "obs/counters.h"
#include "nn/conv.h"
#include "nn/elementwise.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/shape_ops.h"
#include "nn/embedding.h"
#include "quant/smoothquant.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

namespace fp8q {
namespace {

/// fc1 -> relu -> fc2 with a LayerNorm in front and a residual Add.
Graph make_mlp(Rng& rng, std::int64_t dim = 16) {
  Graph g;
  const auto in = g.add_input("x");
  const auto ln = g.add("ln",
                        std::make_unique<LayerNormOp>(Tensor({dim}, 1.0f),
                                                      Tensor(Shape{dim})),
                        {in});
  const auto fc1 = g.add(
      "fc1",
      std::make_unique<LinearOp>(randn(rng, {dim, dim}, 0.0f, 0.3f), randn(rng, {dim}, 0.0f, 0.1f)),
      {ln});
  const auto relu = g.add("relu", std::make_unique<ActivationOp>(OpKind::kRelu), {fc1});
  const auto fc2 = g.add(
      "fc2",
      std::make_unique<LinearOp>(randn(rng, {dim, dim}, 0.0f, 0.3f), Tensor{}),
      {relu});
  g.add("res", std::make_unique<BinaryOp>(OpKind::kAdd), {fc2, ln});
  return g;
}

std::vector<Tensor> make_batches(Rng& rng, int n, Shape shape, float stddev = 1.0f) {
  std::vector<Tensor> batches;
  batches.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) batches.push_back(randn(rng, shape, 0.0f, stddev));
  return batches;
}

TEST(QuantizedGraph, Fp32ConfigIsIdentity) {
  Rng rng(3);
  Graph g = make_mlp(rng);
  Tensor x = randn(rng, {4, 16});
  const Tensor ref = g.forward(x);

  ModelQuantConfig cfg;  // FP32 everything
  QuantizedGraph qg(&g, cfg);
  auto calib = make_batches(rng, 2, {4, 16});
  qg.prepare(std::span<const Tensor>(calib));
  const Tensor got = qg.forward(x);
  EXPECT_EQ(max_abs_error(ref.flat(), got.flat()), 0.0);
}

TEST(QuantizedGraph, ForwardBeforePrepareThrows) {
  Rng rng(5);
  Graph g = make_mlp(rng);
  QuantizedGraph qg(&g, ModelQuantConfig{});
  Tensor x({1, 16});
  EXPECT_THROW((void)qg.forward(x), std::logic_error);
}

TEST(QuantizedGraph, WeightsQuantizedAndRestored) {
  Rng rng(7);
  Graph g = make_mlp(rng);
  auto* fc1 = dynamic_cast<LinearOp*>(g.node(2).op.get());
  ASSERT_NE(fc1, nullptr);
  const Tensor original = fc1->weight();

  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  {
    QuantizedGraph qg(&g, cfg);
    auto calib = make_batches(rng, 2, {4, 16});
    qg.prepare(std::span<const Tensor>(calib));
    // Weights now differ (quantized in place)...
    EXPECT_GT(max_abs_error(original.flat(), fc1->weight().flat()), 0.0);
    // ...and every element sits on the E4M3 per-channel grid (idempotent).
    const auto params = make_weight_params(fc1->weight(), DType::kE4M3);
    const Tensor again = apply_quant(fc1->weight(), params);
    // Not bit-exact: the re-derived channel scale differs by one float ULP
    // when the channel max itself was the scaled value; grid points match
    // to that tolerance.
    EXPECT_LT(max_abs_error(fc1->weight().flat(), again.flat()), 1e-6);
  }
  // Destructor restored FP32 weights.
  EXPECT_EQ(max_abs_error(original.flat(), fc1->weight().flat()), 0.0);
}

TEST(QuantizedGraph, RepreparationWithDifferentSchemeWorks) {
  Rng rng(9);
  Graph g = make_mlp(rng);
  auto* fc1 = dynamic_cast<LinearOp*>(g.node(2).op.get());
  const Tensor original = fc1->weight();

  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE5M2);
  QuantizedGraph qg(&g, cfg);
  auto calib = make_batches(rng, 2, {4, 16});
  qg.prepare(std::span<const Tensor>(calib));
  const Tensor w_e5m2 = fc1->weight();
  // Re-prepare restores and re-quantizes from the FP32 originals.
  qg.prepare(std::span<const Tensor>(calib));
  EXPECT_EQ(max_abs_error(w_e5m2.flat(), fc1->weight().flat()), 0.0);
  qg.restore_weights();
  EXPECT_EQ(max_abs_error(original.flat(), fc1->weight().flat()), 0.0);
}

TEST(QuantizedGraph, QuantizationPerturbsButTracksReference) {
  Rng rng(11);
  Graph g = make_mlp(rng);
  Tensor x = randn(rng, {8, 16});
  const Tensor ref = g.forward(x);

  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  QuantizedGraph qg(&g, cfg);
  auto calib = make_batches(rng, 4, {8, 16});
  qg.prepare(std::span<const Tensor>(calib));
  const Tensor got = qg.forward(x);
  const double err = mse(ref.flat(), got.flat());
  EXPECT_GT(err, 0.0);                         // quantization is lossy...
  EXPECT_GT(sqnr_db(ref.flat(), got.flat()), 20.0);  // ...but close (> 20 dB)
}

TEST(QuantizedGraph, ExtendedOpsCoverageToggle) {
  Rng rng(13);
  Graph g = make_mlp(rng);

  ModelQuantConfig std_cfg;
  std_cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  QuantizedGraph std_qg(&g, std_cfg);
  // Standard scheme: only the two Linears (LayerNorm/Add excluded).
  EXPECT_EQ(std_qg.quantized_nodes().size(), 2u);
  EXPECT_FALSE(std_qg.node_quantized(1));  // LayerNorm
  EXPECT_TRUE(std_qg.node_quantized(2));   // fc1

  ModelQuantConfig ext_cfg;
  ext_cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  ext_cfg.scheme.quantize_extended_ops = true;
  QuantizedGraph ext_qg(&g, ext_cfg);
  EXPECT_EQ(ext_qg.quantized_nodes().size(), 4u);  // + LayerNorm + Add
  EXPECT_TRUE(ext_qg.node_quantized(1));
  EXPECT_TRUE(ext_qg.node_quantized(5));
}

TEST(QuantizedGraph, FallbackNodeAndKindExclusions) {
  Rng rng(15);
  Graph g = make_mlp(rng);
  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  cfg.scheme.quantize_extended_ops = true;
  cfg.fallback_nodes = {2};                    // fc1 forced FP32
  cfg.fallback_kinds = {OpKind::kLayerNorm};   // all LayerNorms FP32
  QuantizedGraph qg(&g, cfg);
  EXPECT_FALSE(qg.node_quantized(2));
  EXPECT_FALSE(qg.node_quantized(1));
  EXPECT_TRUE(qg.node_quantized(4));  // fc2 still on
}

TEST(QuantizedGraph, CnnFirstLastException) {
  Rng rng(17);
  Graph g;
  const auto in = g.add_input("x");
  const auto c1 = g.add("conv1",
                        std::make_unique<Conv2dOp>(randn(rng, {4, 3, 3, 3}, 0.0f, 0.2f),
                                                   Tensor{}, 1, 1),
                        {in});
  const auto r = g.add("relu", std::make_unique<ActivationOp>(OpKind::kRelu), {c1});
  const auto c2 = g.add("conv2",
                        std::make_unique<Conv2dOp>(randn(rng, {4, 4, 3, 3}, 0.0f, 0.2f),
                                                   Tensor{}, 1, 1),
                        {r});
  const auto pool = g.add("pool", std::make_unique<GlobalAvgPoolOp>(), {c2});
  g.add("head", std::make_unique<LinearOp>(randn(rng, {10, 4}, 0.0f, 0.3f), Tensor{}),
        {pool});

  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  cfg.is_cnn = true;
  QuantizedGraph qg(&g, cfg);
  EXPECT_FALSE(qg.node_quantized(1));  // first conv stays FP32
  EXPECT_FALSE(qg.node_quantized(5));  // last linear stays FP32
  EXPECT_TRUE(qg.node_quantized(3));   // middle conv quantized

  // With the exception disabled (tuning option, section 4.3.1) they join.
  cfg.scheme.skip_first_last = false;
  QuantizedGraph qg2(&g, cfg);
  EXPECT_TRUE(qg2.node_quantized(1));
  EXPECT_TRUE(qg2.node_quantized(5));

  // Non-CNN models never apply the exception.
  cfg.scheme.skip_first_last = true;
  cfg.is_cnn = false;
  QuantizedGraph qg3(&g, cfg);
  EXPECT_TRUE(qg3.node_quantized(1));
}

TEST(QuantizedGraph, StaticMatchesDynamicWhenCalibMatchesEval) {
  // With identical calibration and evaluation distributions and per-batch
  // absmax close to the global one, static and dynamic should be close.
  Rng rng(19);
  Graph g = make_mlp(rng);
  Tensor x = randn(rng, {64, 16});
  const Tensor ref = g.forward(x);

  ModelQuantConfig scfg;
  scfg.scheme = standard_fp8_scheme(DType::kE4M3, false);
  QuantizedGraph sqg(&g, scfg);
  std::vector<Tensor> calib = {x};
  sqg.prepare(std::span<const Tensor>(calib));
  const Tensor ys = sqg.forward(x);
  sqg.restore_weights();

  ModelQuantConfig dcfg;
  dcfg.scheme = standard_fp8_scheme(DType::kE4M3, true);
  QuantizedGraph dqg(&g, dcfg);
  dqg.prepare(std::span<const Tensor>(calib));
  const Tensor yd = dqg.forward(x);

  // Calibration observes activations before *activation* quantization (the
  // standard PTQ pass), so downstream clips differ slightly from the
  // dynamic per-batch ones: expect agreement within roughly one grid step,
  // and both faithful to the FP32 reference.
  EXPECT_LT(max_abs_error(ys.flat(), yd.flat()), 0.5);
  EXPECT_GT(sqnr_db(ref.flat(), ys.flat()), 20.0);
  EXPECT_GT(sqnr_db(ref.flat(), yd.flat()), 20.0);
}

TEST(QuantizedGraph, E5M2NeedsNoCalibration) {
  Rng rng(21);
  Graph g = make_mlp(rng);
  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE5M2);
  QuantizedGraph qg(&g, cfg);
  // Empty calibration set: direct quantization must still work.
  qg.prepare(std::span<const Tensor>{});
  Tensor x = randn(rng, {4, 16});
  const Tensor y = qg.forward(x);
  EXPECT_EQ(y.numel(), 4 * 16);
  // No clips recorded (no range calibration for E5M2).
  EXPECT_EQ(qg.activation_clip(2, 0), 0.0f);
}

TEST(QuantizedGraph, StaticCalibrationRecordsClips) {
  Rng rng(23);
  Graph g = make_mlp(rng);
  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  QuantizedGraph qg(&g, cfg);
  auto calib = make_batches(rng, 4, {8, 16});
  qg.prepare(std::span<const Tensor>(calib));
  EXPECT_GT(qg.activation_clip(2, 0), 0.0f);  // fc1 input observed
  EXPECT_GT(qg.activation_clip(4, 0), 0.0f);  // fc2 input observed
  EXPECT_EQ(qg.activation_clip(3, 0), 0.0f);  // relu not quantized
}

TEST(QuantizedGraph, BatchNormCalibrationRecoversShiftedStats) {
  Rng rng(25);
  // conv -> bn -> relu -> pool -> fc, with BN stats deliberately wrong.
  Graph g;
  const auto in = g.add_input("x");
  const auto c1 = g.add("conv1",
                        std::make_unique<Conv2dOp>(randn(rng, {4, 2, 3, 3}, 0.0f, 0.3f),
                                                   Tensor{}, 1, 1),
                        {in});
  const auto bn = g.add("bn",
                        std::make_unique<BatchNorm2dOp>(Tensor({4}, 1.0f), Tensor(Shape{4}),
                                                        Tensor({4}, 5.0f),  // wrong mean
                                                        Tensor({4}, 9.0f)), // wrong var
                        {c1});
  const auto r = g.add("relu", std::make_unique<ActivationOp>(OpKind::kRelu), {bn});
  const auto pool = g.add("pool", std::make_unique<GlobalAvgPoolOp>(), {r});
  g.add("head", std::make_unique<LinearOp>(randn(rng, {3, 4}, 0.0f, 0.4f), Tensor{}),
        {pool});

  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  cfg.is_cnn = true;
  cfg.bn_calibration_batches = 8;
  QuantizedGraph qg(&g, cfg);
  auto calib = make_batches(rng, 8, {4, 2, 8, 8});
  qg.prepare(std::span<const Tensor>(calib));

  auto* bn_op = dynamic_cast<BatchNorm2dOp*>(g.node(bn).op.get());
  ASSERT_NE(bn_op, nullptr);
  // Conv output of N(0,1) inputs has roughly zero mean: the calibrated
  // mean must move from 5.0 towards 0.
  EXPECT_LT(std::fabs(bn_op->running_mean()[0]), 1.0f);
  EXPECT_FALSE(bn_op->calibrating());
}

TEST(QuantizedGraph, SmoothQuantImprovesOutlierModelUnderInt8) {
  // A linear model whose input has outlier channels: enabling SmoothQuant
  // must reduce the INT8 output error (the paper applies it to all NLP
  // workloads before quantization).
  Rng rng(27);
  const std::int64_t dim = 32;
  Graph g;
  const auto in = g.add_input("x");
  const auto fc1 = g.add(
      "fc1", std::make_unique<LinearOp>(randn(rng, {dim, dim}, 0.0f, 0.2f), Tensor{}),
      {in});
  const auto r = g.add("gelu", std::make_unique<ActivationOp>(OpKind::kGelu), {fc1});
  g.add("fc2", std::make_unique<LinearOp>(randn(rng, {dim, dim}, 0.0f, 0.2f), Tensor{}),
        {r});

  auto outlier_batch = [&](Rng& r2) {
    Tensor t = randn(r2, {16, dim});
    Rng channel_rng(99);  // same channels amplified every batch
    amplify_channels(t, channel_rng, 1, 0.1, 50.0f);
    return t;
  };
  Rng data_rng(31);
  std::vector<Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(outlier_batch(data_rng));
  Tensor x = outlier_batch(data_rng);
  const Tensor ref = g.forward(x);

  auto run = [&](bool smooth) {
    ModelQuantConfig cfg;
    cfg.scheme = int8_scheme(false);
    cfg.scheme.smoothquant = smooth;
    QuantizedGraph qg(&g, cfg);
    qg.prepare(std::span<const Tensor>(calib));
    const Tensor y = qg.forward(x);
    return mse(ref.flat(), y.flat());
  };
  const double plain = run(false);
  const double smoothed = run(true);
  EXPECT_LT(smoothed, plain);
}

TEST(QuantizedGraph, EmbeddingIndicesNeverQuantized) {
  // The embedding table is quantized; the integer index input must pass
  // through untouched (otherwise ids like 7 would be rounded onto a grid).
  Rng rng(33);
  Graph g;
  const auto in = g.add_input("ids");
  Tensor table = randn(rng, {100, 8}, 0.0f, 0.02f);  // small values: grid-sensitive
  const auto emb = g.add("emb", std::make_unique<EmbeddingOp>(table), {in});
  g.add("fc", std::make_unique<LinearOp>(randn(rng, {4, 8}, 0.0f, 0.3f), Tensor{}),
        {emb});

  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  QuantizedGraph qg(&g, cfg);
  Tensor ids({5}, {0.0f, 17.0f, 42.0f, 99.0f, 3.0f});
  std::vector<Tensor> calib = {ids};
  qg.prepare(std::span<const Tensor>(calib));
  EXPECT_TRUE(qg.node_quantized(1));  // the table is covered...
  // ...but forward must not throw (quantizing id 99 against the table's
  // tiny scale would produce out-of-range garbage indices).
  const Tensor y = qg.forward(ids);
  EXPECT_EQ(y.shape(), (Shape{5, 4}));
}

TEST(QuantizedGraph, QuantizedComputeFraction) {
  Rng rng(41);
  Graph g = make_mlp(rng);
  // All compute ops quantized (non-CNN, no fallbacks): fraction 1.
  ModelQuantConfig all;
  all.scheme = standard_fp8_scheme(DType::kE4M3);
  QuantizedGraph qa(&g, all);
  EXPECT_DOUBLE_EQ(qa.quantized_compute_fraction(), 1.0);

  // Falling back fc1 (the larger share of parameters) drops the fraction
  // below 1 but above 0.
  ModelQuantConfig part = all;
  part.fallback_nodes = {2};
  QuantizedGraph qp(&g, part);
  EXPECT_GT(qp.quantized_compute_fraction(), 0.0);
  EXPECT_LT(qp.quantized_compute_fraction(), 1.0);

  // FP32-everything config: nothing covered.
  ModelQuantConfig none;
  none.fallback_kinds = {OpKind::kLinear, OpKind::kConv2d, OpKind::kMatMul,
                         OpKind::kBatchMatMul, OpKind::kEmbedding};
  QuantizedGraph qn(&g, none);
  EXPECT_DOUBLE_EQ(qn.quantized_compute_fraction(), 0.0);
}

TEST(QuantizedGraph, PackedComputeIsBitIdenticalToDequantizedPath) {
  // FP8Q_PACKED is a performance switch, never a numerics switch
  // (docs/KERNELS.md): the packed kernels must reproduce the
  // dequantize-to-FP32 forward bit for bit, on MLPs and CNNs alike.
  struct PackedToggleGuard {
    ~PackedToggleGuard() { reset_packed_compute_enabled(); }
  } guard;

  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  cfg.scheme.skip_first_last = false;

  {
    Rng rng(43);
    Graph g = make_mlp(rng);
    Tensor x = randn(rng, {4, 16});
    auto calib = make_batches(rng, 2, {4, 16});

    set_packed_compute_enabled(false);
    Tensor ref;
    {
      QuantizedGraph qg(&g, cfg);
      qg.prepare(std::span<const Tensor>(calib));
      ref = qg.forward(x);
    }
    set_packed_compute_enabled(true);
    kernel_counters_reset();
    QuantizedGraph qg(&g, cfg);
    qg.prepare(std::span<const Tensor>(calib));
    const Tensor got = qg.forward(x);
    ASSERT_EQ(ref.numel(), got.numel());
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(ref[i]), std::bit_cast<std::uint32_t>(got[i]))
          << i;
    }
    // Every forward of a quantized Linear took the packed path: 2 ops
    // across 2 calibration batches plus the eval forward, none on FP32.
    EXPECT_EQ(kernel_counters_snapshot().get(ObsKernelPath::kLinearPacked), 6u);
    EXPECT_EQ(kernel_counters_snapshot().get(ObsKernelPath::kLinearFp32), 0u);
  }

  {
    Rng rng(47);
    Graph g;
    const auto in = g.add_input("x");
    const auto c1 = g.add("conv1",
                          std::make_unique<Conv2dOp>(randn(rng, {4, 3, 3, 3}, 0.0f, 0.2f),
                                                     randn(rng, {4}, 0.0f, 0.1f), 1, 1),
                          {in});
    g.add("relu", std::make_unique<ActivationOp>(OpKind::kRelu), {c1});
    Tensor x = randn(rng, {2, 3, 8, 8});
    auto calib = make_batches(rng, 2, {2, 3, 8, 8});

    set_packed_compute_enabled(false);
    Tensor ref;
    {
      QuantizedGraph qg(&g, cfg);
      qg.prepare(std::span<const Tensor>(calib));
      ref = qg.forward(x);
    }
    set_packed_compute_enabled(true);
    kernel_counters_reset();
    QuantizedGraph qg(&g, cfg);
    qg.prepare(std::span<const Tensor>(calib));
    const Tensor got = qg.forward(x);
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(ref[i]), std::bit_cast<std::uint32_t>(got[i]))
          << i;
    }
    // 1 conv op x (2 calibration batches + 1 eval forward), all packed.
    EXPECT_EQ(kernel_counters_snapshot().get(ObsKernelPath::kConvPacked), 3u);
  }
}

TEST(QuantizedGraph, RestoreClearsPackedWeights) {
  // After the QuantizedGraph restores FP32 weights, the ops must not keep
  // serving stale packed codes: the original graph's forward has to match
  // its pre-quantization output exactly.
  struct PackedToggleGuard {
    ~PackedToggleGuard() { reset_packed_compute_enabled(); }
  } guard;
  set_packed_compute_enabled(true);

  Rng rng(53);
  Graph g = make_mlp(rng);
  Tensor x = randn(rng, {4, 16});
  const Tensor before = g.forward(x);

  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  {
    QuantizedGraph qg(&g, cfg);
    auto calib = make_batches(rng, 2, {4, 16});
    qg.prepare(std::span<const Tensor>(calib));
    (void)qg.forward(x);
  }
  kernel_counters_reset();
  const Tensor after = g.forward(x);
  EXPECT_EQ(max_abs_error(before.flat(), after.flat()), 0.0);
  EXPECT_EQ(kernel_counters_snapshot().get(ObsKernelPath::kLinearPacked), 0u);
}

}  // namespace
}  // namespace fp8q
