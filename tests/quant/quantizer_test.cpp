// Tensor-level fake quantization: weight / activation parameter resolution
// and application, per-tensor and per-channel.
#include "quant/quantizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fp8/cast.h"
#include "metrics/metrics.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

namespace fp8q {
namespace {

TEST(WeightParams, PerChannelScalesUseFullEncodingRange) {
  // Two output channels with very different ranges.
  Tensor w({2, 2}, {0.01f, -0.02f, 100.0f, 50.0f});
  const auto p = make_weight_params(w, DType::kE4M3);
  ASSERT_EQ(p.channel_scales.size(), 2u);
  EXPECT_FLOAT_EQ(p.channel_scales[0], 448.0f / 0.02f);
  EXPECT_FLOAT_EQ(p.channel_scales[1], 448.0f / 100.0f);
  EXPECT_EQ(p.granularity, Granularity::kPerChannel);
}

TEST(WeightParams, PerChannelBeatsPerTensorOnSpreadWeights) {
  // Paper section 3.1: per-channel scaling reduces rounding error when
  // channel ranges differ widely.
  Rng rng(3);
  Tensor w = randn(rng, {8, 64});
  // Scale each output channel differently (x1 .. x128).
  for (std::int64_t o = 0; o < 8; ++o) {
    const float gain = std::ldexp(1.0f, static_cast<int>(o));
    for (std::int64_t i = 0; i < 64; ++i) w.at({o, i}) *= gain;
  }
  const Tensor per_ch =
      apply_quant(w, make_weight_params(w, DType::kE4M3, Granularity::kPerChannel));
  const Tensor per_t =
      apply_quant(w, make_weight_params(w, DType::kE4M3, Granularity::kPerTensor));
  EXPECT_LT(mse(w, per_ch), mse(w, per_t));
}

TEST(WeightParams, ZeroChannelGetsNeutralScale) {
  Tensor w({2, 2}, {0.0f, 0.0f, 1.0f, -1.0f});
  const auto p = make_weight_params(w, DType::kE4M3);
  EXPECT_FLOAT_EQ(p.channel_scales[0], 1.0f);
  const Tensor q = apply_quant(w, p);
  EXPECT_FLOAT_EQ(q[0], 0.0f);
  EXPECT_FLOAT_EQ(q[2], 1.0f);
}

TEST(WeightParams, Int8PerChannel) {
  Tensor w({2, 2}, {1.0f, -2.0f, 0.5f, 0.25f});
  const auto p = make_weight_params(w, DType::kINT8);
  ASSERT_EQ(p.channel_int8.size(), 2u);
  EXPECT_FLOAT_EQ(p.channel_int8[0].scale, 2.0f / 127.0f);
  EXPECT_FLOAT_EQ(p.channel_int8[1].scale, 0.5f / 127.0f);
  const Tensor q = apply_quant(w, p);
  EXPECT_NEAR(q[0], 1.0f, 0.01f);
  EXPECT_FLOAT_EQ(q[1], -2.0f);  // channel absmax is exact
}

TEST(WeightParams, E5M2WeightsStillMaxScaled) {
  // The direct-cast exception is activation-only; weights get max scaling.
  Tensor w({1, 2}, {0.001f, 0.002f});
  const auto p = make_weight_params(w, DType::kE5M2, Granularity::kPerTensor);
  EXPECT_GT(p.scale, 1.0f);
}

TEST(WeightParams, Fp32IsNoop) {
  Tensor w({2, 2}, {1.1f, 2.2f, 3.3f, 4.4f});
  const auto p = make_weight_params(w, DType::kFP32);
  EXPECT_TRUE(p.is_noop());
  const Tensor q = apply_quant(w, p);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q[i], w[i]);
}

TEST(ActivationParams, Fp8MaxScaling) {
  const auto p = make_activation_params(DType::kE4M3, 10.0f);
  EXPECT_FLOAT_EQ(p.scale, 44.8f);
  EXPECT_EQ(p.granularity, Granularity::kPerTensor);
}

TEST(ActivationParams, E5M2DirectScaleOne) {
  const auto p = make_activation_params(DType::kE5M2, 1234.0f);
  EXPECT_FLOAT_EQ(p.scale, 1.0f);
}

TEST(ActivationParams, Int8AsymmetricRange) {
  const auto p = make_activation_params(DType::kINT8, 0.0f, 2.55f);
  EXPECT_EQ(p.int8.zero_point, -128);
  EXPECT_NEAR(p.int8.scale, 0.01f, 1e-6f);
}

TEST(ActivationParams, DynamicUsesRuntimeRange) {
  Tensor x({4}, {-1.0f, 0.5f, 3.0f, 2.0f});
  const auto p = make_dynamic_activation_params(DType::kE4M3, x);
  EXPECT_FLOAT_EQ(p.scale, 448.0f / 3.0f);
  const auto pi = make_dynamic_activation_params(DType::kINT8, x);
  EXPECT_NEAR(pi.int8.scale, 4.0f / 255.0f, 1e-6f);
}

TEST(ApplyQuant, ValuesLandOnGrid) {
  Rng rng(7);
  Tensor x = randn(rng, {1000});
  const auto p = make_activation_params(DType::kE4M3, absmax(x));
  const Tensor q = apply_quant(x, p);
  // Idempotence: the quantized tensor is a fixed point.
  const Tensor q2 = apply_quant(q, p);
  for (std::int64_t i = 0; i < q.numel(); ++i) EXPECT_EQ(q[i], q2[i]);
}

TEST(ApplyQuant, InPlaceMatchesOutOfPlace) {
  Rng rng(9);
  Tensor x = randn(rng, {256});
  const auto p = make_activation_params(DType::kE3M4, 2.0f);
  Tensor inplace = x;
  apply_quant_inplace(inplace, p);
  const Tensor out = apply_quant(x, p);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(inplace[i], out[i]);
}

TEST(ApplyQuant, PerChannelAxisMismatchThrows) {
  Tensor w({2, 2});
  QuantParams p;
  p.dtype = DType::kE4M3;
  p.granularity = Granularity::kPerChannel;
  p.channel_scales = {1.0f, 1.0f, 1.0f};  // wrong count
  EXPECT_THROW(apply_quant_inplace(w, p), std::invalid_argument);
  p.channel_scales = {1.0f, 1.0f};
  p.channel_axis = 7;
  EXPECT_THROW(apply_quant_inplace(w, p), std::invalid_argument);
}

TEST(ApplyQuant, PerChannelNonZeroAxis) {
  // Per-channel on the last axis (paths other than the contiguous fast
  // path).
  Tensor x({2, 2}, {1.0f, 100.0f, -1.0f, -100.0f});
  QuantParams p;
  p.dtype = DType::kE4M3;
  p.granularity = Granularity::kPerChannel;
  p.channel_axis = 1;
  p.channel_scales = {448.0f, 4.48f};
  const Tensor q = apply_quant(x, p);
  EXPECT_FLOAT_EQ(q[0], 1.0f);
  EXPECT_FLOAT_EQ(q[1], 100.0f);
  EXPECT_FLOAT_EQ(q[3], -100.0f);
}

TEST(ApplyQuant, FormatPrecisionOrderingOnSmoothTensor) {
  // On a well-behaved tensor, max-scaled MSE ranks E3M4 < E4M3 < E5M2
  // (more mantissa bits = finer grid), reproducing the Figure 1 ordering
  // for the non-outlier case.
  Rng rng(11);
  Tensor x = randn(rng, {20000});
  const float amax = absmax(x);
  const double e3 = mse(x, apply_quant(x, make_activation_params(DType::kE3M4, amax)));
  const double e4 = mse(x, apply_quant(x, make_activation_params(DType::kE4M3, amax)));
  const double e5 = mse(x, apply_quant(x, make_activation_params(DType::kE5M2, amax)));
  EXPECT_LT(e3, e4);
  EXPECT_LT(e4, e5);
}

TEST(ApplyQuant, MildOutliersAlreadyHurtInt8MoreThanE3M4) {
  // Figure 1 protocol (1% outliers at +/-6 over N(0, 0.5)): E3M4's dense
  // near-zero grid beats INT8's outlier-stretched uniform grid.
  Rng rng(13);
  Tensor x = randn(rng, {40000}, 0.0f, std::sqrt(0.5f));
  inject_outliers(x, rng, 0.01, -6.0f, 6.0f);
  const float amax = absmax(x);
  const auto [lo, hi] = minmax(x);
  const double e3 = mse(x, apply_quant(x, make_activation_params(DType::kE3M4, amax)));
  const double i8 = mse(x, apply_quant(x, make_activation_params(DType::kINT8, lo, hi)));
  EXPECT_LT(e3, i8);
}

TEST(ApplyQuant, LlmScaleOutliersHurtInt8MoreThanAllCalibratedFp8) {
  // The regime the paper's LLM results live in: outliers ~30x the bulk.
  // INT8's fixed step is stretched 30x while FP8's relative precision is
  // untouched, so both E4M3 and E3M4 win decisively.
  Rng rng(15);
  Tensor x = randn(rng, {40000}, 0.0f, std::sqrt(0.5f));
  inject_outliers(x, rng, 0.002, -20.0f, 20.0f);
  const float amax = absmax(x);
  const auto [lo, hi] = minmax(x);
  const double e4 = mse(x, apply_quant(x, make_activation_params(DType::kE4M3, amax)));
  const double e3 = mse(x, apply_quant(x, make_activation_params(DType::kE3M4, amax)));
  const double i8 = mse(x, apply_quant(x, make_activation_params(DType::kINT8, lo, hi)));
  EXPECT_LT(e4, i8);
  EXPECT_LT(e3, i8);
}

}  // namespace
}  // namespace fp8q
