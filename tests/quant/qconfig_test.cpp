#include "quant/qconfig.h"

#include <gtest/gtest.h>

namespace fp8q {
namespace {

TEST(DTypeHelpers, Fp8Classification) {
  EXPECT_TRUE(is_fp8(DType::kE5M2));
  EXPECT_TRUE(is_fp8(DType::kE4M3));
  EXPECT_TRUE(is_fp8(DType::kE3M4));
  EXPECT_FALSE(is_fp8(DType::kINT8));
  EXPECT_FALSE(is_fp8(DType::kFP32));
}

TEST(DTypeHelpers, SpecMapping) {
  EXPECT_FLOAT_EQ(fp8_spec(DType::kE4M3).max_value(), 448.0f);
  EXPECT_FLOAT_EQ(fp8_spec(DType::kE3M4).max_value(), 30.0f);
  EXPECT_EQ(fp8_kind(DType::kE5M2), Fp8Kind::E5M2);
  EXPECT_THROW((void)fp8_spec(DType::kINT8), std::invalid_argument);
  EXPECT_THROW((void)fp8_kind(DType::kFP32), std::invalid_argument);
}

TEST(DTypeHelpers, Names) {
  EXPECT_EQ(to_string(DType::kE4M3), "E4M3");
  EXPECT_EQ(to_string(DType::kINT8), "INT8");
  EXPECT_EQ(to_string(CalibMethod::kAbsMax), "max");
  EXPECT_EQ(to_string(CalibMethod::kKlDivergence), "kl");
}

TEST(SchemeConfig, StandardFp8Defaults) {
  const auto cfg = standard_fp8_scheme(DType::kE4M3);
  EXPECT_EQ(cfg.act_dtype, DType::kE4M3);
  EXPECT_EQ(cfg.weight_dtype, DType::kE4M3);
  EXPECT_FALSE(cfg.dynamic_activations);
  EXPECT_FALSE(cfg.quantize_extended_ops);
  EXPECT_TRUE(cfg.skip_first_last);
  EXPECT_EQ(cfg.act_calib, CalibMethod::kAbsMax);
  EXPECT_THROW((void)standard_fp8_scheme(DType::kINT8), std::invalid_argument);
}

TEST(SchemeConfig, E5M2ForcedStatic) {
  // Paper: E5M2 always uses direct quantization (Table 2 has only a
  // "Direct" row for E5M2).
  const auto cfg = standard_fp8_scheme(DType::kE5M2, /*dynamic=*/true);
  EXPECT_FALSE(cfg.dynamic_activations);
  EXPECT_EQ(cfg.label(), "E5M2/direct");
}

TEST(SchemeConfig, MixedFormatsMatchPaper) {
  // Section 3.2: E4M3 activations, E3M4 weights.
  const auto cfg = mixed_fp8_scheme();
  EXPECT_EQ(cfg.act_dtype, DType::kE4M3);
  EXPECT_EQ(cfg.weight_dtype, DType::kE3M4);
  EXPECT_EQ(cfg.label(), "E4M3wE3M4/static");
}

TEST(SchemeConfig, Int8Baseline) {
  EXPECT_EQ(int8_scheme(false).label(), "INT8/static");
  EXPECT_EQ(int8_scheme(true).label(), "INT8/dynamic");
}

TEST(SchemeConfig, Labels) {
  EXPECT_EQ(standard_fp8_scheme(DType::kE4M3).label(), "E4M3/static");
  EXPECT_EQ(standard_fp8_scheme(DType::kE3M4, true).label(), "E3M4/dynamic");
}

}  // namespace
}  // namespace fp8q
