// Per-group weight quantization (ablation granularity).
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"
#include "quant/quantizer.h"
#include "tensor/rng.h"

namespace fp8q {
namespace {

TEST(GroupQuant, ParamsCoverAllGroups) {
  Rng rng(3);
  Tensor w = randn(rng, {4, 64});  // 256 elements
  const auto p = make_group_weight_params(w, DType::kE4M3, 64);
  EXPECT_EQ(p.granularity, Granularity::kPerGroup);
  EXPECT_EQ(p.group_size, 64);
  EXPECT_EQ(p.channel_scales.size(), 4u);
}

TEST(GroupQuant, RaggedTailGroupHandled) {
  Rng rng(5);
  Tensor w = randn(rng, {100});  // 100 / 32 -> 4 groups (last has 4 elements)
  const auto p = make_group_weight_params(w, DType::kE3M4, 32);
  EXPECT_EQ(p.channel_scales.size(), 4u);
  const Tensor q = apply_quant(w, p);
  // Idempotent on the grid.
  const Tensor q2 = apply_quant(q, make_group_weight_params(q, DType::kE3M4, 32));
  EXPECT_LT(max_abs_error(q.flat(), q2.flat()), 1e-6);
}

TEST(GroupQuant, FinerGroupsImproveInt8OnSpreadWeights) {
  Rng rng(7);
  Tensor w = randn(rng, {16, 64});
  for (std::int64_t o = 0; o < 16; ++o) {
    const float gain = std::exp2(static_cast<float>(o) / 2.0f);
    for (std::int64_t i = 0; i < 64; ++i) w.at({o, i}) *= gain;
  }
  const Tensor coarse = apply_quant(w, make_group_weight_params(w, DType::kINT8, 512));
  const Tensor fine = apply_quant(w, make_group_weight_params(w, DType::kINT8, 64));
  EXPECT_LT(mse(w, fine), mse(w, coarse));
}

TEST(GroupQuant, GroupOfWholeTensorMatchesPerTensor) {
  Rng rng(9);
  Tensor w = randn(rng, {8, 8});
  const Tensor grouped = apply_quant(w, make_group_weight_params(w, DType::kE4M3, 64));
  // Per-tensor uses the same absmax-derived scale.
  QuantParams pt = make_weight_params(w, DType::kE4M3, Granularity::kPerTensor);
  // E4M3 per-tensor weights go through fp8_activation_scale; compare values.
  const Tensor tensorwise = apply_quant(w, pt);
  EXPECT_LT(max_abs_error(grouped.flat(), tensorwise.flat()), 1e-6);
}

TEST(GroupQuant, Validation) {
  Rng rng(11);
  Tensor w = randn(rng, {8});
  EXPECT_THROW((void)make_group_weight_params(w, DType::kE4M3, 0), std::invalid_argument);
  QuantParams p = make_group_weight_params(w, DType::kE4M3, 4);
  p.channel_scales.pop_back();  // corrupt
  EXPECT_THROW(apply_quant_inplace(w, p), std::invalid_argument);
  QuantParams bad = make_group_weight_params(w, DType::kINT8, 4);
  bad.group_size = 0;
  EXPECT_THROW(apply_quant_inplace(w, bad), std::invalid_argument);
}

TEST(GroupQuant, Fp32Noop) {
  Rng rng(13);
  Tensor w = randn(rng, {16});
  const auto p = make_group_weight_params(w, DType::kFP32, 4);
  EXPECT_TRUE(p.is_noop());
  const Tensor q = apply_quant(w, p);
  EXPECT_EQ(max_abs_error(w.flat(), q.flat()), 0.0);
}

}  // namespace
}  // namespace fp8q
