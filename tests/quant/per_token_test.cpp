// Per-token dynamic activation scaling (the extension the paper excludes
// for kernel-overhead reasons; related work Xiao et al. / Dettmers et al.).
#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "models/zoo.h"
#include "quant/quantized_graph.h"
#include "quant/quantizer.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

namespace fp8q {
namespace {

TEST(PerTokenQuant, EachRowOnItsOwnGrid) {
  // Two rows with wildly different scales: per-token scaling represents
  // both at full relative precision.
  Tensor x({2, 4}, {0.001f, 0.002f, -0.003f, 0.004f, 100.0f, 200.0f, -300.0f, 400.0f});
  Tensor q = x;
  apply_per_token_dynamic(q, DType::kE3M4);
  // Small row error stays proportional to the small values, not to 400.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(q[i], x[i], std::abs(x[i]) * 0.05f + 1e-9f) << i;
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_NEAR(q[i], x[i], std::abs(x[i]) * 0.05f) << i;
  }
}

TEST(PerTokenQuant, BeatsPerTensorOnTokenOutliers) {
  // One outlier token stretches the per-tensor grid but not the per-token
  // grids of the other rows.
  Rng rng(3);
  Tensor x = randn(rng, {64, 32});
  for (std::int64_t j = 0; j < 32; ++j) x.at({7, j}) *= 500.0f;

  Tensor per_tensor = x;
  apply_quant_inplace(per_tensor, make_dynamic_activation_params(DType::kINT8, x));
  Tensor per_token = x;
  apply_per_token_dynamic(per_token, DType::kINT8);
  EXPECT_LT(mse(x, per_token), mse(x, per_tensor) * 0.1);
}

TEST(PerTokenQuant, Fp32AndEmptyAreNoops) {
  Tensor x({2, 2}, {1, 2, 3, 4});
  Tensor q = x;
  apply_per_token_dynamic(q, DType::kFP32);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q[i], x[i]);
  Tensor empty({0, 4});
  apply_per_token_dynamic(empty, DType::kE4M3);  // must not crash
}

TEST(PerTokenQuant, E5M2KeepsDirectCast) {
  Tensor x({1, 2}, {1.0f, 2.0f});
  Tensor q = x;
  apply_per_token_dynamic(q, DType::kE5M2);
  EXPECT_EQ(q[0], 1.0f);  // exact values unchanged (scale 1)
  EXPECT_EQ(q[1], 2.0f);
}

TEST(PerTokenQuant, SchemeFlagRunsEndToEnd) {
  TransformerSpec spec;
  spec.dim = 16;
  spec.seq = 4;
  spec.layers = 1;
  Graph g = make_transformer_encoder(spec);
  Rng rng(5);
  Tensor x = randn(rng, {8, 4, 16});
  const Tensor ref = g.forward(x);

  ModelQuantConfig cfg;
  cfg.scheme = standard_fp8_scheme(DType::kE4M3);
  cfg.scheme.per_token_activations = true;
  QuantizedGraph qg(&g, cfg);
  qg.prepare(std::span<const Tensor>{});  // no range calibration needed
  const Tensor got = qg.forward(x);
  EXPECT_GT(sqnr_db(ref.flat(), got.flat()), 15.0);

  // Per-token at least matches plain per-tensor dynamic on this model.
  ModelQuantConfig dyn = cfg;
  dyn.scheme.per_token_activations = false;
  dyn.scheme.dynamic_activations = true;
  QuantizedGraph qd(&g, dyn);
  qd.prepare(std::span<const Tensor>{});
  const Tensor got_dyn = qd.forward(x);
  EXPECT_GE(sqnr_db(ref.flat(), got.flat()), sqnr_db(ref.flat(), got_dyn.flat()) - 1.0);
}

}  // namespace
}  // namespace fp8q
