#include "quant/smoothquant.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"
#include "nn/linear.h"
#include "quant/quantizer.h"
#include "tensor/rng.h"
#include "tensor/stats.h"

namespace fp8q {
namespace {

TEST(SmoothQuant, FactorsFormula) {
  // s_j = a_j^alpha / w_j^(1-alpha); with alpha = 0.5 this is sqrt(a/w).
  std::vector<float> a = {4.0f, 16.0f};
  std::vector<float> w = {1.0f, 4.0f};
  const auto s = smoothquant_factors(a, w, 0.5f);
  EXPECT_FLOAT_EQ(s[0], 2.0f);
  EXPECT_FLOAT_EQ(s[1], 2.0f);
}

TEST(SmoothQuant, AlphaOneMovesEverythingToWeights) {
  std::vector<float> a = {8.0f};
  std::vector<float> w = {2.0f};
  EXPECT_FLOAT_EQ(smoothquant_factors(a, w, 1.0f)[0], 8.0f);
  EXPECT_FLOAT_EQ(smoothquant_factors(a, w, 0.0f)[0], 0.5f);
}

TEST(SmoothQuant, DegenerateInputsNeutral) {
  std::vector<float> a = {0.0f};
  std::vector<float> w = {0.0f};
  EXPECT_GT(smoothquant_factors(a, w)[0], 0.0f);
  EXPECT_THROW(smoothquant_factors(a, std::vector<float>{1.0f, 2.0f}),
               std::invalid_argument);
}

TEST(SmoothQuant, TransformIsExactAtFp32) {
  // X W^T == (X/s) (W s)^T: folding must not change FP32 results.
  Rng rng(3);
  Tensor w = randn(rng, {4, 8});
  Tensor x = randn(rng, {5, 8});
  amplify_channels(x, rng, 1, 0.25, 50.0f);  // outlier channels

  LinearOp ref(w, Tensor{});
  std::vector<Tensor> in;
  in.push_back(x);
  const Tensor y_ref = ref.forward(in);

  const auto act_cmax = absmax_per_channel(x, 1);
  const auto w_cmax = absmax_per_channel(w, 1);
  const auto s = smoothquant_factors(act_cmax, w_cmax, 0.5f);

  Tensor w2 = w;
  scale_weight_columns(w2, s);
  Tensor x2 = x;
  divide_channels(x2, s);
  LinearOp smoothed(w2, Tensor{});
  std::vector<Tensor> in2;
  in2.push_back(x2);
  const Tensor y_smooth = smoothed.forward(in2);

  EXPECT_LT(max_abs_error(y_ref.flat(), y_smooth.flat()),
            1e-3 * (1.0 + max_abs_error(y_ref.flat(), Tensor(y_ref.shape()).flat())));
}

TEST(SmoothQuant, FlattensActivationOutliers) {
  Rng rng(5);
  Tensor x = randn(rng, {64, 32});
  amplify_channels(x, rng, 1, 0.2, 80.0f);
  Tensor w = randn(rng, {16, 32}, 0.0f, 0.1f);

  const auto s = smoothquant_factors(absmax_per_channel(x, 1), absmax_per_channel(w, 1));
  Tensor x2 = x;
  divide_channels(x2, s);
  // Outlier ratio (absmax / median channel max) must shrink substantially.
  auto ratio = [](const Tensor& t) {
    const auto cm = absmax_per_channel(t, 1);
    std::vector<float> sorted(cm);
    std::sort(sorted.begin(), sorted.end());
    return absmax(t) / sorted[sorted.size() / 2];
  };
  EXPECT_LT(ratio(x2), ratio(x) * 0.25f);
}

TEST(SmoothQuant, ImprovesInt8QuantizationOfOutlierActivations) {
  // The end-to-end motivation: per-tensor INT8 on outlier activations is
  // bad; after smoothing, the product X W^T quantizes with less error.
  Rng rng(7);
  Tensor x = randn(rng, {32, 64});
  amplify_channels(x, rng, 1, 0.1, 60.0f);
  Tensor w = randn(rng, {16, 64}, 0.0f, 0.2f);

  auto quant_product_mse = [&](const Tensor& xs, const Tensor& ws) {
    LinearOp fp32(ws, Tensor{});
    std::vector<Tensor> in;
    in.push_back(xs);
    const Tensor ref = fp32.forward(in);

    const auto [lo, hi] = minmax(xs);
    Tensor xq = apply_quant(xs, make_activation_params(DType::kINT8, lo, hi));
    Tensor wq = apply_quant(ws, make_weight_params(ws, DType::kINT8));
    LinearOp qop(wq, Tensor{});
    std::vector<Tensor> qin;
    qin.push_back(xq);
    const Tensor got = qop.forward(qin);
    return mse(ref.flat(), got.flat());
  };

  const double before = quant_product_mse(x, w);
  const auto s = smoothquant_factors(absmax_per_channel(x, 1), absmax_per_channel(w, 1));
  Tensor x2 = x;
  divide_channels(x2, s);
  Tensor w2 = w;
  scale_weight_columns(w2, s);
  const double after = quant_product_mse(x2, w2);
  EXPECT_LT(after, before * 0.5);
}

TEST(SmoothQuant, ShapeValidation) {
  Tensor w({2, 3});
  std::vector<float> s = {1.0f, 2.0f};
  EXPECT_THROW(scale_weight_columns(w, s), std::invalid_argument);
  Tensor x({4, 3});
  EXPECT_THROW(divide_channels(x, s), std::invalid_argument);
}

}  // namespace
}  // namespace fp8q
