// Structured run reports (src/obs/report.h): JSON round-trip through the
// io/serialize reader, ScopedStage collection, and env-gated emission.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "io/serialize.h"
#include "obs/counters.h"
#include "obs/report.h"

namespace fp8q {
namespace {

struct ReportGuard {
  ~ReportGuard() {
    set_active_report(nullptr);
    set_counters_enabled(false);
    counters_reset();
    ::unsetenv("FP8Q_REPORT");
  }
};

RunReport sample_report() {
  RunReport r;
  r.tool = "unit-test";
  r.num_threads = 3;
  r.isa = "native:avx2";
  r.kernel_paths.counts[static_cast<int>(ObsKernelPath::kLinearPacked)] = 17;
  r.kernel_paths.counts[static_cast<int>(ObsKernelPath::kCacheDecode)] = 4;

  StageReport stage;
  stage.name = "phase \"one\"\nwith newline";  // exercises escaping
  stage.wall_ms = 12.625;
  stage.counters.counts[static_cast<int>(ObsFormat::kE4M3)]
                       [static_cast<int>(ObsEvent::kSaturated)] = 42;
  r.stages.push_back(stage);

  AccuracyRecord rec;
  rec.workload = "resnet50-ish";
  rec.domain = "CV";
  rec.config = "E4M3/static";
  rec.fp32_accuracy = 0.7615;
  rec.quant_accuracy = 0.7592;
  rec.model_size_mb = 97.5;
  r.records.push_back(rec);

  r.counters.counts[static_cast<int>(ObsFormat::kE5M2)]
                   [static_cast<int>(ObsEvent::kQuantized)] = 123456789;
  r.spans_dropped = 2;

  SpanRecord span;
  span.name = "qgraph/forward";
  span.start_ns = 1000;
  span.duration_ns = 2500;
  span.thread_id = 1;
  span.id = 7;
  span.parent = 3;
  r.spans.push_back(span);
  return r;
}

TEST(Report, JsonRoundTripsThroughSerializeReader) {
  const RunReport original = sample_report();
  std::istringstream in(original.to_json());
  const RunReport parsed = report_from_json(in);

  EXPECT_EQ(parsed.tool, original.tool);
  EXPECT_EQ(parsed.num_threads, original.num_threads);
  EXPECT_EQ(parsed.isa, original.isa);
  EXPECT_TRUE(parsed.kernel_paths == original.kernel_paths);
  EXPECT_TRUE(parsed.counters == original.counters);
  EXPECT_EQ(parsed.spans_dropped, original.spans_dropped);

  ASSERT_EQ(parsed.stages.size(), 1u);
  EXPECT_EQ(parsed.stages[0].name, original.stages[0].name);
  EXPECT_EQ(parsed.stages[0].wall_ms, original.stages[0].wall_ms);
  EXPECT_TRUE(parsed.stages[0].counters == original.stages[0].counters);

  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].workload, original.records[0].workload);
  EXPECT_EQ(parsed.records[0].domain, original.records[0].domain);
  EXPECT_EQ(parsed.records[0].config, original.records[0].config);
  EXPECT_EQ(parsed.records[0].fp32_accuracy, original.records[0].fp32_accuracy);
  EXPECT_EQ(parsed.records[0].quant_accuracy, original.records[0].quant_accuracy);
  EXPECT_EQ(parsed.records[0].model_size_mb, original.records[0].model_size_mb);

  ASSERT_EQ(parsed.spans.size(), 1u);
  EXPECT_EQ(parsed.spans[0].name, original.spans[0].name);
  EXPECT_EQ(parsed.spans[0].start_ns, original.spans[0].start_ns);
  EXPECT_EQ(parsed.spans[0].duration_ns, original.spans[0].duration_ns);
  EXPECT_EQ(parsed.spans[0].thread_id, original.spans[0].thread_id);
  EXPECT_EQ(parsed.spans[0].id, original.spans[0].id);
  EXPECT_EQ(parsed.spans[0].parent, original.spans[0].parent);
}

TEST(Report, V3MemoryHistogramAndStageAllocBlocksRoundTrip) {
  RunReport original = sample_report();
  original.stages[0].alloc_bytes = 4096;
  original.stages[0].allocs = 3;
  original.memory.peak_rss_bytes = 123456789;
  original.memory.alloc_bytes = 777;
  original.memory.allocs = 9;
  original.weight_cache.counts[static_cast<int>(ObsCacheEvent::kHit)] = 11;

  NamedHistogram nh;
  nh.name = "cast_mag/e4m3";
  LocalHistogram local;
  local.record(0.5);
  local.record(7.25);
  local.record(7.25);
  nh.hist = local.snap;
  original.histograms.push_back(nh);

  std::istringstream in(original.to_json());
  const RunReport parsed = report_from_json(in);

  ASSERT_EQ(parsed.stages.size(), 1u);
  EXPECT_EQ(parsed.stages[0].alloc_bytes, 4096u);
  EXPECT_EQ(parsed.stages[0].allocs, 3u);
  EXPECT_EQ(parsed.memory.peak_rss_bytes, 123456789u);
  EXPECT_EQ(parsed.memory.alloc_bytes, 777u);
  EXPECT_EQ(parsed.memory.allocs, 9u);
  EXPECT_EQ(parsed.weight_cache.counts[static_cast<int>(ObsCacheEvent::kHit)], 11u);

  ASSERT_EQ(parsed.histograms.size(), 1u);
  EXPECT_EQ(parsed.histograms[0].name, "cast_mag/e4m3");
  // Bitwise: the sparse bucket encoding must rebuild the exact counts,
  // total and min/max, so every quantile matches too.
  EXPECT_TRUE(parsed.histograms[0].hist == nh.hist);
  EXPECT_EQ(parsed.histograms[0].hist.quantile(0.5), nh.hist.quantile(0.5));
}

TEST(Report, PreV3ReportsDefaultTheNewBlocks) {
  // A v1 document (no memory/histograms/stage alloc fields) must load with
  // the new blocks defaulted, not throw.
  std::istringstream in(
      R"({"fp8q_report_version": 1, "tool": "old", "num_threads": 2,
          "stages": [{"name": "s", "wall_ms": 1.5}]})");
  const RunReport parsed = report_from_json(in);
  EXPECT_EQ(parsed.tool, "old");
  EXPECT_EQ(parsed.memory.peak_rss_bytes, 0u);
  EXPECT_EQ(parsed.memory.alloc_bytes, 0u);
  EXPECT_TRUE(parsed.histograms.empty());
  ASSERT_EQ(parsed.stages.size(), 1u);
  EXPECT_EQ(parsed.stages[0].alloc_bytes, 0u);
}

TEST(Report, EmptyReportRoundTrips) {
  RunReport empty;
  std::istringstream in(empty.to_json());
  const RunReport parsed = report_from_json(in);
  EXPECT_TRUE(parsed.stages.empty());
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_TRUE(parsed.spans.empty());
  EXPECT_FALSE(parsed.counters.any());
}

TEST(Report, ScopedStageAppendsToActiveReport) {
  ReportGuard guard;
  set_counters_enabled(true);
  counters_reset();

  RunReport report;
  set_active_report(&report);
  {
    ScopedStage stage("stage-a");
    counter_add(ObsFormat::kE4M3, ObsEvent::kSaturated, 5);
  }
  set_active_report(nullptr);

  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_EQ(report.stages[0].name, "stage-a");
  EXPECT_GE(report.stages[0].wall_ms, 0.0);
  EXPECT_EQ(report.stages[0].counters.get(ObsFormat::kE4M3, ObsEvent::kSaturated), 5u);
}

TEST(Report, StageAppendsAreNoopsWithoutActiveReport) {
  ReportGuard guard;
  set_active_report(nullptr);
  report_add_stage("orphan", 1.0);
  { ScopedStage stage("also-orphan"); }
  // Nothing to observe beyond "does not crash"; a later active report must
  // not receive stages from before it was published.
  RunReport report;
  set_active_report(&report);
  set_active_report(nullptr);
  EXPECT_TRUE(report.stages.empty());
}

TEST(Report, WriteIsGatedOnEnvironment) {
  ReportGuard guard;
  ::unsetenv("FP8Q_REPORT");
  RunReport report = sample_report();
  EXPECT_EQ(report_env_path(), nullptr);
  EXPECT_FALSE(write_report_if_requested(report));

  const std::string path = testing::TempDir() + "fp8q_report_test.json";
  ::setenv("FP8Q_REPORT", path.c_str(), 1);
  EXPECT_TRUE(write_report_if_requested(report));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const RunReport parsed = report_from_json(in);
  EXPECT_EQ(parsed.tool, "unit-test");
  // write_report_if_requested refreshed these from the live buffers.
  EXPECT_TRUE(parsed.counters == counters_snapshot());
  std::remove(path.c_str());
}

TEST(Report, MalformedJsonThrows) {
  std::istringstream truncated("{\"fp8q_report_version\": 1,");
  EXPECT_THROW((void)report_from_json(truncated), std::runtime_error);

  std::istringstream not_object("[1, 2, 3]");
  EXPECT_THROW((void)report_from_json(not_object), std::runtime_error);

  std::istringstream wrong_version("{\"fp8q_report_version\": 99}");
  EXPECT_THROW((void)report_from_json(wrong_version), std::runtime_error);

  std::istringstream no_version("{\"tool\": \"x\"}");
  EXPECT_THROW((void)report_from_json(no_version), std::runtime_error);
}

TEST(Report, FutureVersionIsRejectedWithAClearError) {
  // A report written by a newer build (e.g. an fp8qd daemon ahead of this
  // CLI) must fail loudly -- unknown future fields would otherwise be
  // silently dropped -- and the error must say the document is *newer*,
  // not just "unsupported".
  std::istringstream future("{\"fp8q_report_version\": 99, \"tool\": \"fp8qd eval\"}");
  try {
    (void)report_from_json(future);
    FAIL() << "future schema version must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("newer"), std::string::npos) << what;
    EXPECT_NE(what.find("99"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace fp8q
